// Host-side micro-benchmarks (google-benchmark): real measured wall time of
// the preprocessing pipeline the paper amortizes across power-method
// iterations — column sort, symmetric relabeling, tiling, composite packing,
// format conversions — plus the functional SpMV loops. These justify the
// "Sorting Cost" paragraph of Section 3.1: preprocessing is a small number
// of SpMV-equivalents.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/composite.h"
#include "core/tiling.h"
#include "gen/power_law.h"
#include "kernels/spmv.h"
#include "sparse/convert.h"
#include "sparse/hyb.h"
#include "sparse/permute.h"

namespace tilespmv {
namespace {

const CsrMatrix& TestGraph() {
  static const CsrMatrix* kGraph =
      new CsrMatrix(GenerateRmat(1 << 17, 1 << 21, RmatOptions{.seed = 77}));
  return *kGraph;
}

void BM_SortColumnsByLength(benchmark::State& state) {
  const CsrMatrix& a = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortColumnsByLengthDesc(a));
  }
  state.SetItemsProcessed(state.iterations() * a.cols);
}
BENCHMARK(BM_SortColumnsByLength);

void BM_SymmetricPermutation(benchmark::State& state) {
  const CsrMatrix& a = TestGraph();
  Permutation perm = SortColumnsByLengthDesc(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplySymmetricPermutation(a, perm));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SymmetricPermutation);

void BM_BuildTiling(benchmark::State& state) {
  const CsrMatrix& a = TestGraph();
  CsrMatrix sorted = ApplyColumnPermutation(a, SortColumnsByLengthDesc(a));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildTiling(sorted, TilingOptions{}));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_BuildTiling);

void BM_BuildComposite(benchmark::State& state) {
  const CsrMatrix& a = TestGraph();
  gpusim::DeviceSpec spec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildComposite(a, state.range(0), spec, true));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_BuildComposite)->Arg(512)->Arg(4096)->Arg(32768);

void BM_HybConversion(benchmark::State& state) {
  const CsrMatrix& a = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HybFromCsr(a));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_HybConversion);

void BM_Transpose(benchmark::State& state) {
  const CsrMatrix& a = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Transpose(a));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Transpose);

void BM_HostSpmvCsr(benchmark::State& state) {
  const CsrMatrix& a = TestGraph();
  std::vector<float> x(a.cols, 1.0f), y;
  for (auto _ : state) {
    CsrMultiply(a, x, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_HostSpmvCsr);

void BM_KernelSetupSimulation(benchmark::State& state) {
  // Cost of one full kernel construction + execution simulation; this is
  // the repo's substitute for a real CUDA launch, so its wall cost matters.
  const CsrMatrix& a = TestGraph();
  gpusim::DeviceSpec spec;
  for (auto _ : state) {
    auto k = CreateKernel("tile-composite", spec);
    benchmark::DoNotOptimize(k->Setup(a).ok());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_KernelSetupSimulation);

// Console output as usual, plus every run forwarded into the shared
// tilespmv-bench-v1 JSON line so all bench binaries share one schema.
class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.iterations <= 0) continue;
      bench::JsonReporter::Global().Add(
          run.benchmark_name(), "host-wall",
          run.real_accumulated_time / run.iterations * 1e3, 0.0,
          run.iterations);
    }
  }
};

}  // namespace
}  // namespace tilespmv

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  tilespmv::JsonForwardingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  tilespmv::bench::JsonReporter::Global().Emit("microbench");
  return 0;
}
