// Device generality sweep: the paper's approach is "non-parametric and
// self-tunable" — the tile width comes from the measured texture-cache
// size and the workload sizes from the performance model, so nothing is
// hard-coded to the Tesla C1060. This bench runs the kernel zoo on the
// Tesla and on a Fermi-generation C2050 preset (more bandwidth, bigger
// cache, fewer/wider SMs) and checks that the self-tuning carries over:
// tile width triples with the cache, rankings are preserved, absolute
// numbers rise with the hardware.
#include <memory>

#include "bench_common.h"
#include "core/tile_composite.h"
#include "core/tiling.h"
#include "util/check.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  const std::vector<std::string> kernels = {"coo", "hyb", "tile-coo",
                                            "tile-composite"};

  std::printf("=== Device sweep: Tesla C1060 vs Fermi C2050 ===\n");
  for (auto [label, spec] :
       std::vector<std::pair<const char*, gpusim::DeviceSpec>>{
           {"tesla-c1060", gpusim::DeviceSpec::TeslaC1060()},
           {"fermi-c2050", gpusim::DeviceSpec::FermiC2050()}}) {
    std::printf("\n%s: %d SMs, %.0f GB/s, %lld KB cache -> tile width %d\n",
                label, spec.num_sms, spec.mem_bandwidth_gbps,
                static_cast<long long>(spec.texture_cache_bytes >> 10),
                TilingOptionsForDevice(spec).tile_width);
    PrintHeader("dataset", kernels);
    for (const char* ds : {"flickr", "wikipedia", "youtube"}) {
      Result<CsrMatrix> a =
          MakeDataset(ds, opts.quick ? 0.03 : 0.0625);
      TILESPMV_CHECK(a.ok());
      std::printf("%-14s", ds);
      for (const std::string& name : kernels) {
        auto kernel = CreateKernel(name, spec);
        bool ok = kernel->Setup(a.value()).ok();
        PrintCell(ok ? kernel->timing().gflops() : 0, ok);
        if (ok) {
          JsonReporter::Global().Add(std::string(ds) + "/" + name,
                                     std::string("device=") + label,
                                     kernel->timing().seconds * 1e3,
                                     kernel->timing().gflops(), 1);
        }
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nexpected: the same ranking on both devices, higher absolute GFLOPS "
      "on the Fermi, and a tile width that tracks the cache (64K -> 192K "
      "columns) with no code changes — the \"adaptive algorithm designs in "
      "next generation hybrid architectures\" the paper closes with.\n");
  JsonReporter::Global().Emit("device_sweep");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
