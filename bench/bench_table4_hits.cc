// Reproduces Table 4: total HITS running time (seconds) on the four graph
// datasets for the CPU baseline and COO / HYB / TILE-COO / TILE-Composite,
// iterating the combined 2n x 2n system of Equation 8 until convergence.
//
// Expected shape (paper): 17x-29x GPU-over-CPU speedup; the tile kernels
// beat COO/HYB on all four graphs — including Youtube, because the combined
// matrix is larger and sparser, "making it more amenable to our
// optimizations".
#include "bench_common.h"
#include "graph/hits.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  const std::vector<std::string> kernels = {"cpu-csr", "coo", "hyb",
                                            "tile-coo", "tile-composite"};
  const std::vector<std::string> graphs = {"flickr", "livejournal",
                                           "wikipedia", "youtube"};

  std::printf("=== Table 4: HITS total running time (seconds) ===\n");
  PrintHeader("graph", kernels);
  for (const std::string& g : graphs) {
    CsrMatrix a = LoadDataset(g, opts);
    std::printf("%-14s", g.c_str());
    int iterations = 0;
    double cpu_time = 0, best_gpu = 1e30;
    for (const std::string& name : kernels) {
      auto kernel = CreateKernel(name, spec);
      HitsOptions hopts;
      hopts.max_iterations = 150;
      Result<HitsScores> r = RunHits(a, kernel.get(), hopts);
      if (!r.ok()) {
        PrintCell3(0, false);
        continue;
      }
      PrintCell3(r.value().stats.gpu_seconds, true);
      iterations = r.value().stats.iterations;
      JsonReporter::Global().Add(g + "/" + name, "hits-total",
                                 r.value().stats.gpu_seconds * 1e3,
                                 r.value().stats.gflops(),
                                 r.value().stats.iterations);
      if (name == "cpu-csr") {
        cpu_time = r.value().stats.gpu_seconds;
      } else {
        best_gpu = std::min(best_gpu, r.value().stats.gpu_seconds);
      }
    }
    std::printf("   iters=%d  cpu/best-gpu=%.1fx\n", iterations,
                cpu_time / best_gpu);
    std::fflush(stdout);
  }
  std::printf(
      "\npaper Table 4 (seconds): flickr 4.97/0.40/0.38/0.23/0.21, "
      "livejournal 44.88/3.82/3.33/2.41/2.24, wikipedia "
      "39.36/2.73/2.45/1.52/1.37, youtube 4.35/0.33/0.30/0.26/0.25\n");
  JsonReporter::Global().Emit("table4_hits");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
