// Reproduces Table 5: average Random Walk with Restart running time
// (seconds) over random query nodes on the four graph datasets (treated as
// undirected, restart probability c = 0.9).
//
// The paper averages 25 random queries; every query costs the same per
// iteration (the matrix is fixed), so we run a handful of real queries per
// kernel and average, printing the query count used.
//
// Expected shape (paper): TILE-COO / TILE-Composite 1.5x-2.0x as fast as
// COO/HYB on Flickr / LiveJournal / Wikipedia; all about even on Youtube;
// 13x-37x over the CPU.
#include "bench_common.h"
#include "graph/rwr.h"
#include "util/random.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  const std::vector<std::string> kernels = {"cpu-csr", "coo", "hyb",
                                            "tile-coo", "tile-composite"};
  const std::vector<std::string> graphs = {"flickr", "livejournal",
                                           "wikipedia", "youtube"};
  const int num_queries = opts.quick ? 2 : 5;

  std::printf(
      "=== Table 5: RWR average running time (seconds) over %d random "
      "queries ===\n",
      num_queries);
  PrintHeader("graph", kernels);
  for (const std::string& g : graphs) {
    CsrMatrix a = LoadDataset(g, opts);
    Pcg32 rng(2025);
    std::vector<int32_t> queries;
    for (int q = 0; q < num_queries; ++q) {
      queries.push_back(static_cast<int32_t>(rng.NextBounded(a.rows)));
    }
    std::printf("%-14s", g.c_str());
    double cpu_time = 0, best_gpu = 1e30;
    for (const std::string& name : kernels) {
      auto kernel = CreateKernel(name, spec);
      RwrEngine engine(kernel.get());
      RwrOptions ropts;
      ropts.max_iterations = 150;
      Status st = engine.Init(a, ropts);
      if (!st.ok()) {
        PrintCell3(0, false);
        continue;
      }
      double total = 0;
      bool ok = true;
      for (int32_t q : queries) {
        Result<RwrResult> r = engine.Query(q);
        if (!r.ok()) {
          ok = false;
          break;
        }
        total += r.value().stats.gpu_seconds;
      }
      double avg = total / num_queries;
      PrintCell3(avg, ok);
      if (ok) {
        JsonReporter::Global().Add(g + "/" + name, "rwr-avg-query",
                                   avg * 1e3, 0.0, num_queries);
        if (name == "cpu-csr") {
          cpu_time = avg;
        } else {
          best_gpu = std::min(best_gpu, avg);
        }
      }
    }
    std::printf("   cpu/best-gpu=%.1fx\n", cpu_time / best_gpu);
    std::fflush(stdout);
  }
  std::printf(
      "\npaper Table 5 (seconds): flickr 8.25/0.59/0.56/0.33/0.29, "
      "livejournal 36.99/2.85/2.60/1.73/1.52, wikipedia "
      "23.23/1.46/1.35/0.71/0.62, youtube 2.32/0.14/0.13/0.14/0.13\n");
  JsonReporter::Global().Emit("table5_rwr");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
