// Retrospective comparison (beyond the paper): merge-based CSR (Merrill &
// Garland, SC'16) and CSR5 (Liu & Vinter, ICS'15) entered the field years
// after this paper; both solve the load-balance problem the paper attacks
// with composite storage, by cutting the non-zeros into exactly equal warp
// portions. This bench pits them against the paper's kernels on the
// power-law set.
//
// Expected shape: merge-csr and csr5 comfortably beat CSR/CSR-vector
// (balance fixed) and pass COO/HYB, but still pay uncached x gathers on
// every entry — the locality problem only the paper's texture tiling
// addresses — so tile-composite keeps a clear lead. SELL-C-sigma, the
// sort-then-pack cousin of composite storage, falls below COO on strongly
// skewed graphs: its column-major slices walk hub rows serially — the very
// failure the composite w >= h row-major rule prevents.
#include "bench_common.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  const std::vector<std::string> kernels = {
      "csr-vector", "coo", "hyb",           "merge-csr",
      "csr5",       "sell-c-sigma", "tile-composite"};

  std::printf(
      "=== Retrospective: merge CSR (SC'16) and CSR5 (ICS'15) vs the "
      "paper's kernels ===\n");
  PrintHeader("dataset", kernels);
  double merge_sum = 0, tile_sum = 0;
  int count = 0;
  for (const DatasetSpec& ds : PowerLawDatasets()) {
    CsrMatrix a = LoadDataset(ds.name, opts);
    std::printf("%-14s", ds.name.c_str());
    double merge = 0, tile = 0;
    for (const std::string& name : kernels) {
      KernelTiming t;
      std::string why;
      bool ok = SetupKernel(name, a, spec, &t, &why);
      PrintCell(ok ? t.gflops() : 0, ok);
      if (ok) {
        JsonReporter::Global().Add(ds.name + "/" + name, "spmv",
                                   t.seconds * 1e3, t.gflops(), 1);
      }
      if (name == "merge-csr") merge = t.gflops();
      if (name == "tile-composite") tile = t.gflops();
    }
    std::printf("\n");
    if (merge > 0) {
      merge_sum += merge;
      tile_sum += tile;
      ++count;
    }
    std::fflush(stdout);
  }
  (void)count;
  std::printf(
      "\ntile-composite vs merge-csr average: %.2fx — balance alone does "
      "not recover the texture-tiling locality win; and SELL-C-sigma's "
      "column-major hub walks show why composite stores long rows "
      "row-major.\n",
      tile_sum / merge_sum);
  JsonReporter::Global().Emit("modern_baseline");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
