// Reproduces Figure 5: validation of the auto-tuner and performance model
// on the five power-law matrices.
//   (a) number of tiles chosen by Algorithm 1 vs exhaustive search,
//   (b) GFLOPS of the auto-tuned kernel vs the exhaustively-found best,
//   (c) measured (simulated-kernel) vs model-predicted GFLOPS for the
//       auto-tuned configuration.
//
// Expected shape (paper): auto tile counts equal or nearly equal the
// exhaustive ones; auto-tuned performance within ~3% of the exhaustive
// best; predictions within ~20% of measurement.
#include <algorithm>
#include <memory>

#include "bench_common.h"
#include "util/check.h"
#include "core/tile_composite.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;

  std::printf("=== Figure 5: auto-tuning and performance model ===\n");
  std::printf("%-14s %10s %10s | %10s %10s %7s | %10s %10s %7s\n", "dataset",
              "auto#tile", "exh#tile", "autoGF", "exhGF", "ratio",
              "measGF", "predGF", "ratio");
  for (const DatasetSpec& ds : PowerLawDatasets()) {
    CsrMatrix a = LoadDataset(ds.name, opts);

    // Auto-tuned kernel (Algorithm 1 tile count + Algorithm 2 workloads).
    TileCompositeKernel auto_kernel(spec);
    TILESPMV_CHECK_OK(auto_kernel.Setup(a));
    double auto_gflops = auto_kernel.timing().gflops();
    int auto_tiles = auto_kernel.num_tiles();
    double predicted_s = auto_kernel.predicted_seconds();

    // Exhaustive search over the tile count (workloads still tuned per
    // tile, as in the paper's Section 4.1 protocol).
    int max_tiles = static_cast<int>(
        (static_cast<int64_t>(a.cols) + 64 * 1024 - 1) / (64 * 1024));
    double best_gflops = 0;
    int best_tiles = 0;
    for (int nt = 0; nt <= max_tiles; ++nt) {
      TileCompositeOptions topts;
      topts.tiling.num_tiles = nt;
      TileCompositeKernel k(spec, topts);
      TILESPMV_CHECK_OK(k.Setup(a));
      if (k.timing().gflops() > best_gflops) {
        best_gflops = k.timing().gflops();
        best_tiles = nt;
      }
    }

    double predicted_gflops =
        predicted_s > 0
            ? static_cast<double>(auto_kernel.timing().flops) / predicted_s *
                  1e-9
            : 0;
    std::printf("%-14s %10d %10d | %10.2f %10.2f %6.1f%% | %10.2f %10.2f "
                "%6.1f%%\n",
                ds.name.c_str(), auto_tiles, best_tiles, auto_gflops,
                best_gflops, 100 * auto_gflops / best_gflops, auto_gflops,
                predicted_gflops,
                100 * predicted_gflops / auto_gflops);
    std::fflush(stdout);
    JsonReporter::Global().Add(ds.name + "/auto",
                               "tiles=" + std::to_string(auto_tiles),
                               auto_kernel.timing().seconds * 1e3,
                               auto_gflops, 1);
    JsonReporter::Global().Add(ds.name + "/exhaustive",
                               "tiles=" + std::to_string(best_tiles), 0.0,
                               best_gflops, 1);
  }
  std::printf(
      "\npaper: auto tile counts match exhaustive on Webbase/Wikipedia and "
      "are close elsewhere; auto-tuned performance within 3%% of exhaustive; "
      "predictions within ~20%% of measured.\n");
  JsonReporter::Global().Emit("fig5_autotune");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
