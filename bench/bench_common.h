#ifndef TILESPMV_BENCH_BENCH_COMMON_H_
#define TILESPMV_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "kernels/spmv.h"
#include "obs/trace.h"
#include "sparse/matrix_stats.h"
#include "util/timer.h"

namespace tilespmv::bench {

/// Command-line options shared by the paper-reproduction benches.
struct BenchOptions {
  /// Dataset scale relative to the paper's sizes; <= 0 uses each dataset's
  /// default (1/8 for Table 2 power-law graphs, 1/128 for Table 3 crawls).
  double scale = 0.0;
  bool quick = false;  ///< Shrink further for smoke runs.
};

inline BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      opts.scale = std::atof(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--scale=<fraction-of-paper-size>] [--quick]\n",
                  argv[0]);
      std::exit(0);
    }
  }
  return opts;
}

inline double EffectiveScale(const BenchOptions& opts,
                             const DatasetSpec& spec) {
  double s = opts.scale > 0 ? opts.scale : spec.default_scale;
  if (opts.quick) s *= 0.25;
  return s;
}

/// Generates a dataset and prints its vitals (Table 2 / Table 3 style).
inline CsrMatrix LoadDataset(const std::string& name,
                             const BenchOptions& opts) {
  Result<DatasetSpec> spec = FindDataset(name);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
    std::exit(1);
  }
  double s = EffectiveScale(opts, spec.value());
  WallTimer timer;
  Result<CsrMatrix> m = MakeDataset(name, s);
  if (!m.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 m.status().ToString().c_str());
    std::exit(1);
  }
  MatrixStats stats = ComputeStats(m.value());
  std::printf("# %-12s scale=%-7.4g %s  (generated in %.1fs)\n", name.c_str(),
              s, stats.ToString().c_str(), timer.Seconds());
  std::fflush(stdout);
  return m.take();
}

/// Sets up `kernel_name` on `a`; returns the timing, or nullopt-style
/// failure with the reason stored in *why.
inline bool SetupKernel(const std::string& kernel_name, const CsrMatrix& a,
                        const gpusim::DeviceSpec& spec, KernelTiming* timing,
                        std::string* why) {
  std::unique_ptr<SpMVKernel> k = CreateKernel(kernel_name, spec);
  if (k == nullptr) {
    *why = "unknown kernel";
    return false;
  }
  Status st = k->Setup(a);
  if (!st.ok()) {
    *why = st.ToString();
    return false;
  }
  *timing = k->timing();
  return true;
}

/// Prints a header row: "dataset" followed by kernel names.
inline void PrintHeader(const char* label,
                        const std::vector<std::string>& kernels) {
  std::printf("%-14s", label);
  for (const std::string& k : kernels) std::printf(" %14s", k.c_str());
  std::printf("\n");
}

/// Prints one metric cell or "--" for inapplicable kernels.
inline void PrintCell(double value, bool ok) {
  if (ok) {
    std::printf(" %14.2f", value);
  } else {
    std::printf(" %14s", "--");
  }
}

/// Like PrintCell with three decimals (used for small second counts).
inline void PrintCell3(double value, bool ok) {
  if (ok) {
    std::printf(" %14.3f", value);
  } else {
    std::printf(" %14s", "--");
  }
}

/// One benchmark measurement in the shared cross-binary schema.
struct BenchResult {
  std::string name;    ///< What was measured, e.g. "flickr/tile-composite".
  std::string config;  ///< Free-form setup detail, e.g. "device=c1060".
  double ms = 0.0;     ///< Modeled or measured milliseconds.
  double gflops = 0.0; ///< 0 when rate is not meaningful for the metric.
  int64_t iters = 0;   ///< Iteration count behind the timing (0 = one shot).
};

/// Accumulates results and emits them as one machine-readable JSON line:
///
///   {"bench":"<binary>","schema":"tilespmv-bench-v1","results":[
///     {"name":...,"config":...,"ms":...,"gflops":...,"iters":...},...]}
///
/// Every bench_* binary ends its run with Emit(), so sweep tooling can diff
/// runs across binaries without per-bench table parsers. The line goes to
/// stdout after the human-readable tables, prefixed by nothing, so
/// `grep '"tilespmv-bench-v1"'` extracts it.
class JsonReporter {
 public:
  static JsonReporter& Global() {
    static JsonReporter* reporter = new JsonReporter();
    return *reporter;
  }

  void Add(std::string name, std::string config, double ms,
           double gflops = 0.0, int64_t iters = 0) {
    results_.push_back(BenchResult{std::move(name), std::move(config), ms,
                                   gflops, iters});
  }

  std::string ToJson(const std::string& bench) const {
    std::string out = "{\"bench\":\"" + obs::JsonEscape(bench) +
                      "\",\"schema\":\"tilespmv-bench-v1\",\"results\":[";
    char buf[64];
    for (size_t i = 0; i < results_.size(); ++i) {
      const BenchResult& r = results_[i];
      if (i > 0) out += ",";
      out += "{\"name\":\"" + obs::JsonEscape(r.name) + "\",\"config\":\"" +
             obs::JsonEscape(r.config) + "\"";
      std::snprintf(buf, sizeof(buf), ",\"ms\":%.6g", r.ms);
      out += buf;
      std::snprintf(buf, sizeof(buf), ",\"gflops\":%.6g", r.gflops);
      out += buf;
      std::snprintf(buf, sizeof(buf), ",\"iters\":%lld}",
                    static_cast<long long>(r.iters));
      out += buf;
    }
    out += "]}";
    return out;
  }

  /// Prints the JSON line and clears the accumulated results.
  void Emit(const std::string& bench) {
    std::printf("%s\n", ToJson(bench).c_str());
    std::fflush(stdout);
    results_.clear();
  }

  const std::vector<BenchResult>& results() const { return results_; }

 private:
  std::vector<BenchResult> results_;
};

}  // namespace tilespmv::bench

#endif  // TILESPMV_BENCH_BENCH_COMMON_H_
