// Section 3.2's motivating comparison: to handle matrices that do not fit
// one GPU, either stream chunks over PCIe from the host (single GPU,
// out-of-core) or distribute across a multi-GPU cluster. The paper rejects
// streaming because "the bandwidth of the PCI-Express bus from CPU to GPU
// (8 GB/s) will become the performance bottleneck, because our best kernel
// can comfortably achieve 40 GB/s".
//
// Expected shape: out-of-core throughput pinned near PCIe speed, well under
// the in-core kernel; even 2 GPUs beat streaming decisively.
#include "bench_common.h"
#include "graph/power_method.h"
#include "multigpu/cluster.h"
#include "multigpu/out_of_core.h"
#include "multigpu/partition.h"
#include "sparse/convert.h"
#include "util/check.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  // A graph ~4x the (scaled) device memory.
  CsrMatrix a = LoadDataset("it-2004", opts);
  Result<DatasetSpec> ds = FindDataset("it-2004");
  double scale = EffectiveScale(opts, ds.value());

  gpusim::DeviceSpec gpu;
  gpu.global_mem_bytes =
      static_cast<int64_t>(gpu.global_mem_bytes * scale * 2.5) / 4;

  std::printf("=== Section 3.2: out-of-core streaming vs multi-GPU ===\n");
  std::printf("device memory (scaled): %.1f MB; matrix needs ~%.1f MB\n",
              gpu.global_mem_bytes / 1e6, 16.0 * a.nnz() / 1e6);

  for (const char* name : {"hyb", "tile-composite"}) {
    Result<OutOfCoreResult> r = ModelOutOfCoreSpmv(a, name, gpu);
    if (!r.ok()) {
      std::printf("%-16s out-of-core failed: %s\n", name,
                  r.status().ToString().c_str());
      continue;
    }
    std::printf(
        "%-16s out-of-core: %2d chunks  %8.2f GFLOPS  compute %.1f ms  "
        "PCIe %.1f ms  %s-bound\n",
        name, r.value().num_chunks, r.value().gflops(),
        r.value().compute_seconds * 1e3, r.value().transfer_seconds * 1e3,
        r.value().pcie_bound ? "PCIe" : "compute");
    JsonReporter::Global().Add(
        std::string(name) + "/out-of-core",
        "chunks=" + std::to_string(r.value().num_chunks),
        (r.value().compute_seconds + r.value().transfer_seconds) * 1e3,
        r.value().gflops(), 1);
  }

  // The multi-GPU alternative at small node counts.
  ClusterSpec cluster;
  cluster.gpu = gpu;
  CsrMatrix wt = Transpose(RowNormalize(a));
  for (int p : {2, 4, 8}) {
    RowPartition part = PartitionRows(wt, p, PartitionScheme::kBitonic);
    CsrMatrix local = ExtractRows(wt, part.owner_rows[0]);
    auto kernel = CreateKernel("tile-composite", cluster.gpu);
    Status st = kernel->Setup(local);
    if (!st.ok()) {
      std::printf("%2d GPUs: does not fit (%s)\n", p,
                  st.message().substr(0, 50).c_str());
      continue;
    }
    double compute = kernel->timing().seconds;
    double comm = AllGatherSeconds(wt.rows, p, cluster);
    double per_iter = std::max(compute, comm) + 0.5 * std::min(compute, comm);
    std::printf("%2d GPUs (tile-composite): %8.2f GFLOPS per iteration\n", p,
                2.0 * a.nnz() / per_iter * 1e-9);
    JsonReporter::Global().Add("tile-composite/cluster",
                               "gpus=" + std::to_string(p), per_iter * 1e3,
                               2.0 * a.nnz() / per_iter * 1e-9, 1);
  }
  std::printf(
      "\npaper: streaming caps at the 8 GB/s bus while the kernel sustains "
      "~40 GB/s of bandwidth, so the cluster path wins.\n");
  JsonReporter::Global().Emit("out_of_core");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
