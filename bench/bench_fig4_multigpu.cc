// Reproduces Figure 4: multi-GPU PageRank scalability on the four Table 3
// web graphs (1 to 10 GPUs), comparing the TILE-Composite local kernel
// (solid lines in the paper) with NVIDIA's HYB (dotted lines).
//
// The graphs are scaled stand-ins (default 1/128 of the paper's edge
// counts). To keep every capacity/time ratio of the paper's testbed intact,
// the modeled hardware is scaled by the same factor: device memory (so the
// biggest graphs only become feasible at higher GPU counts — the reason the
// paper's sk-2005 and uk-union curves start at 3 and 6 GPUs), texture cache
// (so per-node x vectors stay cache-starved exactly as 41M-node vectors
// are on a 256 KB cache; the self-tuning tile width adapts automatically),
// kernel-launch overhead and interconnect latency (fixed costs that would
// otherwise dwarf the scaled-down compute).
//
// Bitonic row partitioning balances nodes to within a few percent, so the
// per-iteration compute time is measured on node 0's slice and the
// allgather communication comes from the cluster model. Expected shape:
// near-linear scaling while compute dominates, flattening once the
// broadcast of y takes over; TILE-Composite ~1.55x HYB throughout; ~60-80%
// parallel efficiency at the paper's quoted points.
#include <algorithm>

#include "bench_common.h"
#include "graph/power_method.h"
#include "multigpu/cluster.h"
#include "multigpu/partition.h"
#include "sparse/convert.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  const std::vector<std::string> kernels = {"tile-composite", "hyb"};
  const std::vector<std::string> graphs = {"it-2004", "web-2001", "sk-2005",
                                           "uk-union"};
  const int max_gpus = 10;

  std::printf("=== Figure 4: multi-GPU PageRank on web graphs ===\n");
  for (const std::string& g : graphs) {
    Result<DatasetSpec> ds = FindDataset(g);
    double scale = EffectiveScale(opts, ds.value());
    CsrMatrix a = LoadDataset(g, opts);
    CsrMatrix wt = Transpose(RowNormalize(a));

    ClusterSpec cluster;
    // Dimensionless matching (see DESIGN.md): the scaled stand-ins keep
    // their x vectors cache-friendlier than 41M-node vectors ever are, so
    // the modeled kernels run ~kappa x faster than the paper's in-cluster
    // rates (~2.3 GFLOPS/GPU). The communication-to-computation ratio that
    // shapes Figure 4 is preserved by speeding the fabric up by the same
    // kappa; latency (a fixed cost) scales with the data instead.
    constexpr double kKappa = 6.4;
    cluster.interconnect_gbps = 2.0 * kKappa;  // IB-DDR-era MPI x kappa.
    cluster.gpu.pcie_bandwidth_gbps *= kKappa;
    cluster.interconnect_latency_us *= scale;
    // Memory gate scaled with the data; x2.5 because this implementation
    // stores ~10 B/edge where the paper's fits ~4.
    cluster.gpu.global_mem_bytes = static_cast<int64_t>(
        cluster.gpu.global_mem_bytes * scale * 2.5);

    std::printf("\n%-10s %6s", g.c_str(), "#GPUs");
    for (int p = 1; p <= max_gpus; ++p) std::printf(" %8d", p);
    std::printf("\n");
    for (const std::string& name : kernels) {
      std::printf("%-10s %6s", "", name == "tile-composite" ? "TComp" : "HYB");
      double first_feasible_perf = 0;
      int first_feasible_p = 0;
      double last_perf = 0;
      int last_p = 0;
      for (int p = 1; p <= max_gpus; ++p) {
        RowPartition part = PartitionRows(wt, p, PartitionScheme::kBitonic);
        // Bitonic partitions are nnz-balanced to ~1%, but the serpentine
        // deal puts the most extreme rows on the first and last nodes:
        // simulate both and take the slower (the iteration barrier).
        double compute = 0;
        bool ok = true;
        for (int node : {0, p - 1}) {
          CsrMatrix local = ExtractRows(wt, part.owner_rows[node]);
          auto kernel = CreateKernel(name, cluster.gpu);
          Status st = kernel->Setup(local);
          if (!st.ok()) {
            ok = false;
            break;
          }
          compute = std::max(compute, kernel->timing().seconds);
          if (p == 1) break;
        }
        if (!ok) {
          std::printf(" %8s", "n/a");
          continue;
        }
        double comm = AllGatherSeconds(wt.rows, p, cluster) +
                      ElementwiseSeconds(2 * wt.rows / p, wt.rows / p,
                                         cluster.gpu);
        // Allgather partially overlapped with tile computation (as in
        // RunDistributedPageRank).
        double per_iter =
            std::max(compute, comm) + 0.5 * std::min(compute, comm);
        double gflops = 2.0 * a.nnz() / per_iter * 1e-9;
        std::printf(" %8.2f", gflops);
        JsonReporter::Global().Add(g + "/" + name,
                                   "gpus=" + std::to_string(p),
                                   per_iter * 1e3, gflops, 1);
        if (first_feasible_p == 0) {
          first_feasible_p = p;
          first_feasible_perf = gflops;
        }
        last_perf = gflops;
        last_p = p;
      }
      double efficiency =
          first_feasible_p > 0
              ? last_perf /
                    (first_feasible_perf * last_p / first_feasible_p)
              : 0;
      std::printf("   eff(%d->%d GPUs)=%.0f%%\n", first_feasible_p, last_p,
                  100 * efficiency);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\npaper: ~23 GFLOPS at 10 GPUs with 70%% parallel efficiency on "
      "sk-2005; ~80%% efficiency at 4 GPUs and ~60%% at 6 on it-2004 / "
      "web-2001; TILE-Composite ~1.55x HYB on all datasets; curves flatten "
      "as communication dominates.\n");
  JsonReporter::Global().Emit("fig4_multigpu");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
