// Reproduces Figure 7 (Appendix D): SpMV kernel comparison on the five
// unstructured (non-power-law) matrices, plus the CPU-vs-GPU speedup range
// quoted in Appendix D (2.05x - 37.31x).
//
// Expected shape (paper): no single kernel wins everywhere — tile-composite
// takes the dense matrix (with bandwidth above the physical peak thanks to
// the texture cache), BSK & BDW takes FEM/Harbor and Protein, HYB takes
// Circuit and LP; tile-composite stays in the top four on all of them.
#include <algorithm>

#include "bench_common.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  const std::vector<std::string> kernels = {
      "cpu-csr", "csr", "csr-vector", "bsk-bdw", "coo",
      "ell",     "hyb", "dia",        "pkt",     "tile-coo",
      "tile-composite"};

  std::printf("=== Figure 7: SpMV kernels on unstructured matrices ===\n");
  double min_speedup = 1e30, max_speedup = 0;
  struct Row {
    std::string dataset;
    std::vector<double> gflops, gbps;
    std::vector<bool> ok;
    std::string winner;
  };
  std::vector<Row> rows;
  for (const DatasetSpec& ds : UnstructuredDatasets()) {
    CsrMatrix a = LoadDataset(ds.name, opts);
    Row row;
    row.dataset = ds.name;
    double cpu = 0, best = 0;
    for (const std::string& name : kernels) {
      KernelTiming t;
      std::string why;
      bool ok = SetupKernel(name, a, spec, &t, &why);
      if (!ok) std::printf("#   %s: %s\n", name.c_str(), why.c_str());
      row.gflops.push_back(ok ? t.gflops() : 0);
      row.gbps.push_back(ok ? t.gbps() : 0);
      row.ok.push_back(ok);
      if (ok) {
        JsonReporter::Global().Add(ds.name + "/" + name, "spmv",
                                   t.seconds * 1e3, t.gflops(), 1);
      }
      if (name == "cpu-csr") {
        cpu = t.gflops();
      } else if (ok) {
        if (t.gflops() > best) {
          best = t.gflops();
          row.winner = name;
        }
        if (cpu > 0 && name != "csr") {  // Paper: GPU CSR can trail the CPU.
          min_speedup = std::min(min_speedup, t.gflops() / cpu);
          max_speedup = std::max(max_speedup, t.gflops() / cpu);
        }
      }
    }
    rows.push_back(std::move(row));
  }

  std::printf("\n--- Figure 7(a): GFLOPS ---\n");
  PrintHeader("dataset", kernels);
  for (const Row& r : rows) {
    std::printf("%-14s", r.dataset.c_str());
    for (size_t i = 0; i < kernels.size(); ++i) PrintCell(r.gflops[i], r.ok[i]);
    std::printf("   winner: %s\n", r.winner.c_str());
  }
  std::printf("\n--- Figure 7(b): bandwidth (GB/s) ---\n");
  PrintHeader("dataset", kernels);
  for (const Row& r : rows) {
    std::printf("%-14s", r.dataset.c_str());
    for (size_t i = 0; i < kernels.size(); ++i) PrintCell(r.gbps[i], r.ok[i]);
    std::printf("\n");
  }
  std::printf(
      "\nGPU-vs-CPU speedup range across kernels/datasets: %.2fx - %.2fx "
      "(paper: 2.05x - 37.31x)\n",
      min_speedup, max_speedup);
  JsonReporter::Global().Emit("fig7_spmv_unstructured");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
