// Reproduces Figure 8: per-iteration speed (GFLOPS) and bandwidth (GB/s) of
// HITS (a, b) and Random Walk with Restart (c, d) on the four graph
// datasets, for the COO / HYB / TILE-COO / TILE-Composite kernels. Rates are
// structure-only, so no convergence runs are needed.
//
// Expected shape (paper): like PageRank — tile kernels lead clearly on the
// three large graphs, modestly on Youtube (more so for HITS, whose combined
// matrix is bigger and sparser).
#include "bench_common.h"
#include "graph/power_method.h"
#include "sparse/convert.h"
#include "spmm/spmm.h"

namespace tilespmv::bench {
namespace {

struct AppRates {
  double gflops = 0;
  double gbps = 0;
  bool ok = false;
};

AppRates RatesFor(const CsrMatrix& m, int64_t vec_n, int reductions,
                  int elementwise, const std::string& kernel_name,
                  const gpusim::DeviceSpec& spec) {
  AppRates r;
  auto kernel = CreateKernel(kernel_name, spec);
  if (!kernel->Setup(m).ok()) return r;
  double aux = reductions * ReductionSeconds(vec_n, spec) +
               elementwise * ElementwiseSeconds(2 * vec_n, vec_n, spec);
  double per_iter = kernel->timing().seconds + aux;
  uint64_t flops = kernel->timing().flops + 3ULL * vec_n;
  uint64_t bytes = kernel->timing().useful_bytes + 16ULL * vec_n;
  r.gflops = flops / per_iter * 1e-9;
  r.gbps = bytes / per_iter * 1e-9;
  r.ok = true;
  return r;
}

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  const std::vector<std::string> kernels = {"coo", "hyb", "tile-coo",
                                            "tile-composite"};
  const std::vector<std::string> graphs = {"flickr", "livejournal",
                                           "wikipedia", "youtube"};

  const std::vector<int> widths = {1, 4, 8, 16};

  struct Row {
    std::string graph;
    std::vector<AppRates> hits, rwr;
    std::vector<double> batched_ms;  // Per-query-iteration time per width.
  };
  std::vector<Row> rows;
  for (const std::string& g : graphs) {
    CsrMatrix a = LoadDataset(g, opts);
    CsrMatrix hits_m = BuildHitsMatrix(a);
    CsrMatrix rwr_m = ColNormalize(Symmetrize(a));
    Row row;
    row.graph = g;
    for (const std::string& name : kernels) {
      // HITS: one SpMV + three reductions + two scales per iteration.
      row.hits.push_back(RatesFor(hits_m, 2 * a.rows, 3, 2, name, spec));
      // RWR: one SpMV + one axpy + one convergence reduction.
      row.rwr.push_back(RatesFor(rwr_m, a.rows, 1, 1, name, spec));
      if (row.hits.back().ok) {
        JsonReporter::Global().Add(g + "/hits/" + name, "hits-iteration",
                                   0.0, row.hits.back().gflops, 1);
      }
      if (row.rwr.back().ok) {
        JsonReporter::Global().Add(g + "/rwr/" + name, "rwr-iteration", 0.0,
                                   row.rwr.back().gflops, 1);
      }
    }
    // Batched RWR (docs/SPMM.md): one blocked tile-composite sweep serves k
    // queries per iteration; each query still pays its own axpy + reduction.
    auto blocked = spmm::CreateSpMMKernel("spmm-tile-composite", spec);
    if (blocked->Setup(rwr_m, spmm::kMaxBlockCols).ok()) {
      double aux = ReductionSeconds(a.rows, spec) +
                   ElementwiseSeconds(2 * a.rows, a.rows, spec);
      for (int k : widths) {
        double per_query = blocked->TimingForBlockCols(k).seconds / k + aux;
        row.batched_ms.push_back(per_query * 1e3);
        JsonReporter::Global().Add(g + "/rwr_batched/tile-composite",
                                   "k=" + std::to_string(k), per_query * 1e3,
                                   0.0, 1);
      }
    }
    rows.push_back(std::move(row));
  }

  auto print_panel = [&](const char* title, bool hits, bool gflops) {
    std::printf("\n--- %s ---\n", title);
    PrintHeader("graph", kernels);
    for (const Row& r : rows) {
      std::printf("%-14s", r.graph.c_str());
      const std::vector<AppRates>& v = hits ? r.hits : r.rwr;
      for (const AppRates& a : v) PrintCell(gflops ? a.gflops : a.gbps, a.ok);
      std::printf("\n");
    }
  };
  std::printf("=== Figure 8: HITS and RWR per-iteration performance ===\n");
  print_panel("Figure 8(a): HITS GFLOPS", true, true);
  print_panel("Figure 8(b): HITS bandwidth (GB/s)", true, false);
  print_panel("Figure 8(c): RWR GFLOPS", false, true);
  print_panel("Figure 8(d): RWR bandwidth (GB/s)", false, false);

  std::printf(
      "\n--- extension: batched RWR, ms per query-iteration "
      "(tile-composite SpMM panel) ---\n");
  std::vector<std::string> width_labels;
  for (int k : widths) width_labels.push_back("k=" + std::to_string(k));
  PrintHeader("graph", width_labels);
  for (const Row& r : rows) {
    std::printf("%-14s", r.graph.c_str());
    for (size_t i = 0; i < width_labels.size(); ++i) {
      PrintCell3(i < r.batched_ms.size() ? r.batched_ms[i] : 0.0,
                 i < r.batched_ms.size());
    }
    std::printf("\n");
  }
  JsonReporter::Global().Emit("fig8_hits_rwr");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
