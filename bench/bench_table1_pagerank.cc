// Reproduces Table 1: total PageRank running time (seconds) on the four
// graph datasets for the CPU baseline and the COO / HYB / TILE-COO /
// TILE-Composite kernels, iterating Equation 6 until convergence.
//
// Expected shape (paper): tile-coo and tile-composite ~2x faster than COO
// and HYB on Flickr / LiveJournal / Wikipedia, roughly even on Youtube; all
// GPU kernels 18x-32x faster than the CPU implementation.
#include "bench_common.h"
#include "graph/pagerank.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  const std::vector<std::string> kernels = {"cpu-csr", "coo", "hyb",
                                            "tile-coo", "tile-composite"};
  const std::vector<std::string> graphs = {"flickr", "livejournal",
                                           "wikipedia", "youtube"};

  std::printf("=== Table 1: PageRank total running time (seconds) ===\n");
  PrintHeader("graph", kernels);
  std::printf("%-14s %14s\n", "", "(iterations)");
  for (const std::string& g : graphs) {
    CsrMatrix a = LoadDataset(g, opts);
    std::printf("%-14s", g.c_str());
    int iterations = 0;
    double cpu_time = 0, best_gpu = 1e30;
    for (const std::string& name : kernels) {
      auto kernel = CreateKernel(name, spec);
      PageRankOptions popts;
      popts.max_iterations = 200;
      Result<IterativeResult> r = RunPageRank(a, kernel.get(), popts);
      if (!r.ok()) {
        PrintCell3(0, false);
        continue;
      }
      PrintCell3(r.value().gpu_seconds, true);
      iterations = r.value().iterations;
      JsonReporter::Global().Add(g + "/" + name, "pagerank-total",
                                 r.value().gpu_seconds * 1e3,
                                 r.value().gflops(), r.value().iterations);
      if (name == "cpu-csr") {
        cpu_time = r.value().gpu_seconds;
      } else {
        best_gpu = std::min(best_gpu, r.value().gpu_seconds);
      }
    }
    std::printf("   iters=%d  cpu/best-gpu=%.1fx\n", iterations,
                cpu_time / best_gpu);
    std::fflush(stdout);
  }
  std::printf(
      "\npaper Table 1 (seconds): flickr 23.99/1.67/1.60/0.90/0.83, "
      "livejournal 82.23/6.19/5.57/3.75/3.44, wikipedia "
      "52.12/2.99/2.83/1.76/1.63, youtube 11.81/0.72/0.66/0.68/0.65\n");
  JsonReporter::Global().Emit("table1_pagerank");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
