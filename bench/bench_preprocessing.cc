// Section 3.1 "Sorting Cost": the reorder / relabel / tile / pack pipeline
// runs once on the host and amortizes over power-method iterations. This
// bench measures the real wall-clock cost of each stage on this machine and
// reports the break-even iteration count against HYB.
//
// Expected shape: preprocessing costs a handful of SpMV-equivalents (the
// counting sort is linear), and PageRank-scale iteration counts (tens)
// amortize it comfortably on the large graphs.
#include "bench_common.h"
#include "core/preprocess.h"
#include "kernels/spmv.h"
#include "par/pool.h"
#include "util/check.h"
#include "util/timer.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  std::printf("=== Section 3.1: preprocessing cost and amortization ===\n");
  std::printf("%-14s %9s %9s %9s %9s %9s | %11s %11s %10s\n", "dataset",
              "sort(ms)", "relab(ms)", "tile(ms)", "pack(ms)", "total",
              "hyb(us/it)", "tile(us/it)", "breakeven");
  for (const DatasetSpec& ds : PowerLawDatasets()) {
    CsrMatrix a = LoadDataset(ds.name, opts);
    Result<PreprocessReport> r = MeasurePreprocessing(a, spec);
    TILESPMV_CHECK(r.ok());
    const PreprocessReport& p = r.value();
    std::printf(
        "%-14s %9.1f %9.1f %9.1f %9.1f %9.1f | %11.1f %11.1f %9.0f\n",
        ds.name.c_str(), p.sort_columns_seconds * 1e3,
        p.relabel_seconds * 1e3, p.tiling_seconds * 1e3,
        p.composite_seconds * 1e3, p.total_seconds * 1e3,
        p.baseline_iteration_seconds * 1e6, p.tile_iteration_seconds * 1e6,
        p.breakeven_iterations);
    std::fflush(stdout);
    JsonReporter::Global().Add(ds.name + "/preprocess", "host-total",
                               p.total_seconds * 1e3, 0.0, 1);
    JsonReporter::Global().Add(
        ds.name + "/breakeven", "vs-hyb", p.tile_iteration_seconds * 1e3, 0.0,
        static_cast<int64_t>(p.breakeven_iterations));
  }
  std::printf(
      "\nbreakeven = host preprocessing seconds / modeled device seconds "
      "saved per iteration vs HYB. Host and device speeds are incommensurate "
      "across eras, so read the column as an order of magnitude: the paper's "
      "point is that one-time sorting is linear and iterative mining "
      "algorithms run it once.\n");

  // Thread scaling of the plan build (tile-composite Setup — the work a
  // serving plan-cache miss pays) on the fig-2 power-law matrix. Results
  // are bitwise identical across thread counts, so only wall time moves.
  std::printf("\n=== plan-build thread scaling (flickr) ===\n");
  std::printf("%-8s %12s %9s\n", "threads", "build(ms)", "speedup");
  CsrMatrix flickr = LoadDataset("flickr", opts);
  double ms_at_1 = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    par::ThreadPool::SetGlobalThreadCount(threads);
    double best_ms = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      auto kernel = CreateKernel("tile-composite", spec);
      WallTimer timer;
      TILESPMV_CHECK(kernel->Setup(flickr).ok());
      double ms = timer.Seconds() * 1e3;
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    if (threads == 1) ms_at_1 = best_ms;
    std::printf("%-8d %12.1f %8.2fx\n", threads, best_ms,
                ms_at_1 > 0 ? ms_at_1 / best_ms : 0.0);
    std::fflush(stdout);
    JsonReporter::Global().Add("flickr/plan_build",
                               "threads=" + std::to_string(threads), best_ms,
                               0.0, 1);
  }
  par::ThreadPool::SetGlobalThreadCount(0);

  JsonReporter::Global().Emit("preprocessing");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
