// Serving-engine benchmark: quantifies the two wins the serve/ subsystem
// exists for, and prints both in one JSON summary.
//
//   1. Plan caching. A cold query pays the paper's Section 3.1 preprocessing
//      pipeline (reorder + tiling + composite packing + autotune) before its
//      first iteration; a hot query reuses the cached plan. The end-to-end
//      speedup of the hot path is the amortization argument measured in host
//      wall time. Acceptance: >= 10x.
//
//   2. RWR coalescing. Concurrent RWR queries coalesced into one
//      RwrEngine::QueryBatch call share the matrix stream on the modeled
//      device, so the *modeled* per-query cost collapses while host wall
//      time stays flat (the host still iterates per query). Throughput is
//      therefore reported in modeled-GPU-queries/s: queries divided by total
//      billed gpu_seconds. Acceptance: coalesced beats uncoalesced at mean
//      batch size >= 4.
//
//   3. SpMM panel width (docs/SPMM.md). The same batch executed through the
//      blocked power method at panel widths 1/4/8/16: each matrix sweep
//      feeds k vectors, so the modeled per-query cost falls as the sweep is
//      amortized. Width 1 is the scalar path (one SpMV per query per
//      iteration). Acceptance: k=8 per-query time below k=1.
//
//   4. Host SIMD fast path (docs/SIMD.md). One y = A*x on the host, wall
//      clock, single-threaded: the scalar cpu-csr reference against the
//      vectorized cpu-csr-simd at AVX2 and at the best available tier, plus
//      the SIMD SELL kernel. Unlike sections 2-3 this is measured host time,
//      not modeled device time. Acceptance: AVX2 >= 2x over scalar.
//
//   5. Pipeline overlap (docs/PARALLELISM.md "Task graphs"). The PageRank
//      iteration loop at 8 threads on a tile-composite plan, fixed
//      iteration count, fork-join loop vs the pipelined task-graph loop.
//      Both produce bitwise-identical results; the pipelined loop removes
//      the per-stage barriers (tiles / reduce / update / next tiles), so
//      host wall time per iteration drops. Acceptance: >= 1.15x at 8
//      threads.
#include <algorithm>
#include <future>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "gen/power_law.h"
#include "graph/pagerank.h"
#include "graph/rwr.h"
#include "par/pool.h"
#include "serve/engine.h"
#include "simd/caps.h"
#include "spmm/spmm.h"
#include "util/check.h"

namespace tilespmv::bench {
namespace {

using serve::Engine;
using serve::EngineOptions;
using serve::QueryKind;
using serve::QueryParams;
using serve::QueryResponse;

struct PlanCacheResult {
  double cold_seconds = 0.0;
  double build_seconds = 0.0;
  double hot_seconds = 0.0;  // Mean over the hot queries.
  double speedup = 0.0;
};

PlanCacheResult MeasurePlanCache(const CsrMatrix& graph, int hot_queries) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.batch_window_seconds = 0;  // Isolate caching from coalescing.
  Engine engine(opts);
  TILESPMV_CHECK_OK(engine.AddGraph("g", graph));

  QueryParams params;
  params.tolerance = 1e-4f;

  PlanCacheResult out;
  params.node = 1;
  WallTimer cold;
  QueryResponse first = engine.Query("g", QueryKind::kRwr, params);
  out.cold_seconds = cold.Seconds();
  TILESPMV_CHECK_OK(first.status);
  TILESPMV_CHECK(!first.plan_cache_hit);
  out.build_seconds = first.plan_build_seconds;

  for (int i = 0; i < hot_queries; ++i) {
    params.node = (i * 37) % graph.rows;
    WallTimer hot;
    QueryResponse r = engine.Query("g", QueryKind::kRwr, params);
    out.hot_seconds += hot.Seconds();
    TILESPMV_CHECK_OK(r.status);
    TILESPMV_CHECK(r.plan_cache_hit);
  }
  out.hot_seconds /= hot_queries;
  out.speedup = out.cold_seconds / out.hot_seconds;
  return out;
}

struct CoalesceResult {
  double modeled_qps = 0.0;     // queries / sum of billed gpu_seconds.
  double wall_seconds = 0.0;    // Host wall time for the whole burst.
  double mean_batch = 0.0;
  double modeled_gpu_seconds = 0.0;
};

CoalesceResult MeasureBurst(const CsrMatrix& graph, int queries,
                            double window_seconds, int max_batch) {
  EngineOptions opts;
  opts.num_threads = 2;
  opts.batch_window_seconds = window_seconds;
  opts.max_batch = max_batch;
  Engine engine(opts);
  TILESPMV_CHECK_OK(engine.AddGraph("g", graph));

  // Warm the RWR plan so both configurations measure pure query cost.
  QueryParams warm;
  warm.node = 0;
  warm.tolerance = 1e-4f;
  TILESPMV_CHECK_OK(engine.Query("g", QueryKind::kRwr, warm).status);

  CoalesceResult out;
  WallTimer timer;
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(queries);
  for (int i = 0; i < queries; ++i) {
    QueryParams params;
    params.node = (i * 53) % graph.rows;
    params.tolerance = 1e-4f;
    futures.push_back(engine.Submit("g", QueryKind::kRwr, params));
  }
  double batch_sum = 0.0;
  for (auto& f : futures) {
    QueryResponse r = f.get();
    TILESPMV_CHECK_OK(r.status);
    out.modeled_gpu_seconds += r.stats.gpu_seconds;
    batch_sum += r.batch_size;
  }
  out.wall_seconds = timer.Seconds();
  out.mean_batch = batch_sum / queries;
  out.modeled_qps = queries / out.modeled_gpu_seconds;
  return out;
}

struct BlockedWidthResult {
  int width = 0;
  double per_query_gpu_seconds = 0.0;  // Billed gpu_seconds / queries.
  int64_t sweeps = 0;                  // Matrix sweeps over the whole batch.
  int64_t vectors = 0;                 // Vector-iterations those sweeps fed.
};

/// Runs the same query set through RwrEngine's blocked path at each panel
/// width. Width 1 is the scalar baseline — a one-column panel degenerates to
/// SpMV, so every query pays a full matrix sweep per iteration; wider panels
/// share each sweep across up to `width` queries. Results are bitwise
/// identical across widths (the SpMM determinism contract), so only the
/// billed cost differs.
std::vector<BlockedWidthResult> MeasureBlockedWidths(const CsrMatrix& graph,
                                                     int queries) {
  gpusim::DeviceSpec spec;
  std::vector<int32_t> nodes;
  nodes.reserve(queries);
  for (int i = 0; i < queries; ++i) {
    nodes.push_back(static_cast<int32_t>((i * 53) % graph.rows));
  }

  std::vector<BlockedWidthResult> out;
  for (int width : {1, 4, 8, 16}) {
    std::unique_ptr<SpMVKernel> kernel = CreateKernel("tile-composite", spec);
    std::unique_ptr<spmm::SpMMKernel> blocked =
        spmm::CreateSpMMKernel("spmm-tile-composite", spec);
    RwrEngine engine(kernel.get(), blocked.get());
    RwrOptions ropts;
    ropts.tolerance = 1e-4f;
    ropts.block_cols = width;
    TILESPMV_CHECK_OK(engine.Init(graph, ropts));

    RwrBatchExecution exec;
    Result<std::vector<RwrResult>> results =
        engine.QueryBatch(nodes, ropts, &exec);
    TILESPMV_CHECK(results.ok());

    BlockedWidthResult r;
    r.width = width;
    for (const RwrResult& q : results.value()) {
      r.per_query_gpu_seconds += q.stats.gpu_seconds;
    }
    r.per_query_gpu_seconds /= queries;
    r.sweeps = exec.sweeps;
    r.vectors = exec.vectors;
    out.push_back(r);
  }
  return out;
}

struct HostSpmvResult {
  double scalar_ms = 0.0;  ///< cpu-csr, the serial scalar reference.
  double avx2_ms = 0.0;    ///< cpu-csr-simd pinned to avx2; 0 = unavailable.
  double best_ms = 0.0;    ///< cpu-csr-simd at the best available tier.
  double sell_ms = 0.0;    ///< cpu-sell-simd at the best available tier.
  const char* best_tier = "scalar";
  double avx2_speedup = 0.0;
  double best_speedup = 0.0;
  bool avx2_available = false;
  bool pass = false;  ///< avx2 >= 2x scalar; vacuously true without AVX2.
};

/// Measures the real host wall clock of one y = A*x per kernel/tier — the
/// win the SIMD fast path exists for, and the one acceptance criterion in
/// this bench that is measured time rather than modeled time. The pool is
/// pinned to one thread so the comparison is pure per-core kernel speed;
/// min-of-reps filters scheduler noise.
HostSpmvResult MeasureHostSpmv(const CsrMatrix& graph, bool quick) {
  const int reps = quick ? 10 : 30;
  par::ThreadPool::SetGlobalThreadCount(1);
  std::vector<float> x(static_cast<size_t>(graph.cols));
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.25f + static_cast<float>(i % 17) * 0.0625f;
  }
  auto measure = [&](const char* name) {
    std::unique_ptr<SpMVKernel> kernel =
        CreateKernel(name, gpusim::DeviceSpec{});
    TILESPMV_CHECK(kernel != nullptr);
    TILESPMV_CHECK_OK(kernel->Setup(graph));
    std::vector<float> y;
    kernel->Multiply(x, &y);  // Warm-up: faults y in, warms caches.
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
      WallTimer t;
      kernel->Multiply(x, &y);
      best = std::min(best, t.Seconds());
    }
    return best * 1e3;
  };

  HostSpmvResult out;
  const simd::Caps& caps = simd::DetectCaps();
  out.best_tier = simd::TierName(caps.best());
  out.avx2_available = caps.Supports(simd::Tier::kAvx2);
  out.scalar_ms = measure("cpu-csr");
  if (out.avx2_available) {
    TILESPMV_CHECK_OK(simd::SetTierOverride(simd::Tier::kAvx2));
    out.avx2_ms = measure("cpu-csr-simd");
    out.avx2_speedup = out.scalar_ms / out.avx2_ms;
  }
  TILESPMV_CHECK_OK(simd::SetTierOverride(caps.best()));
  out.best_ms = measure("cpu-csr-simd");
  out.sell_ms = measure("cpu-sell-simd");
  out.best_speedup = out.scalar_ms / out.best_ms;
  simd::ClearTierOverride();
  par::ThreadPool::SetGlobalThreadCount(0);
  // Without AVX2 the 2x gate is vacuous (the kernel under test *is* the
  // scalar fallback), so the scalar-fallback CI build still passes.
  out.pass = !out.avx2_available || out.avx2_speedup >= 2.0;
  return out;
}

struct PipelineOverlapResult {
  int threads = 8;
  int iterations = 0;
  double forkjoin_ms_per_iter = 0.0;
  double pipeline_ms_per_iter = 0.0;
  double speedup = 0.0;
  double gate = 1.15;  ///< Required speedup (reduced on --quick).
  bool pass = false;   ///< speedup >= gate at 8 threads.
};

/// Measures the barrier-removal win: the same fixed-iteration PageRank
/// loop on one prepared tile-composite plan, fork-join vs pipelined
/// task-graph, host wall clock at 8 threads. tolerance = 0 pins the
/// iteration count so both paths do identical numeric work (and, by the
/// pipeline contract, produce identical bits); min-of-reps filters
/// scheduler noise. The section uses its own matrix, sized for the
/// latency-bound serving regime the pipelining exists for: what the
/// pipeline hides is the *fixed* per-iteration fork/join and region cost,
/// so the win is largest exactly where iterations are short — interactive
/// queries on moderate graphs, where scheduler overhead is a double-digit
/// share of the sub-0.1 ms iteration. On large bandwidth-bound graphs the
/// same fixed saving amortizes into the noise (measured: 1.2x at n=8k,
/// 1.06x at n=50k, ~1.0x at n=150k).
PipelineOverlapResult MeasurePipelineOverlap(bool quick) {
  PipelineOverlapResult out;
  out.iterations = quick ? 100 : 200;
  const int reps = quick ? 3 : 7;
  const int32_t n = 8000;
  CsrMatrix graph =
      GenerateRmat(n, 8LL * n, RmatOptions{.seed = 7});
  par::ThreadPool::SetGlobalThreadCount(out.threads);
  std::unique_ptr<SpMVKernel> kernel =
      CreateKernel("tile-composite", gpusim::DeviceSpec{});
  CsrMatrix wt = PageRankMatrix(graph);
  TILESPMV_CHECK_OK(kernel->Setup(wt));
  auto measure = [&](bool pipeline) {
    PageRankOptions popts;
    popts.max_iterations = out.iterations;
    popts.tolerance = 0.0f;  // Never converges: pure per-iteration cost.
    popts.pipeline = pipeline;
    TILESPMV_CHECK(RunPageRankPrepared(*kernel, popts).ok());  // Warm-up.
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      WallTimer t;
      Result<IterativeResult> res = RunPageRankPrepared(*kernel, popts);
      double seconds = t.Seconds();
      TILESPMV_CHECK(res.ok());
      TILESPMV_CHECK(res.value().iterations == out.iterations);
      best = std::min(best, seconds);
    }
    return best * 1e3 / out.iterations;
  };
  out.forkjoin_ms_per_iter = measure(false);
  out.pipeline_ms_per_iter = measure(true);
  out.speedup = out.forkjoin_ms_per_iter / out.pipeline_ms_per_iter;
  // Quick runs the same matrix with fewer reps, so its min-of-reps keeps
  // more scheduler noise (the fork-join side jitters ~5-10%); it gets a
  // reduced gate so a single noisy rep cannot flake CI. The 1.15x
  // acceptance gate applies to the full profile (what BENCH_serve.json
  // records).
  out.gate = quick ? 1.05 : 1.15;
  out.pass = out.speedup >= out.gate;
  par::ThreadPool::SetGlobalThreadCount(0);
  return out;
}

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  const int32_t n = opts.quick ? 20000 : 50000;
  const int64_t nnz = opts.quick ? 160000 : 400000;
  const int hot_queries = opts.quick ? 10 : 20;
  const int burst = opts.quick ? 16 : 32;

  std::printf("# serving engine benchmark (n=%d nnz=%lld)\n", n,
              static_cast<long long>(nnz));
  CsrMatrix graph = GenerateRmat(n, nnz, RmatOptions{.seed = 7});

  PlanCacheResult cache = MeasurePlanCache(graph, hot_queries);
  std::printf(
      "# plan cache: cold %.1f ms (build %.1f ms) -> hot %.2f ms, "
      "speedup %.1fx %s\n",
      cache.cold_seconds * 1e3, cache.build_seconds * 1e3,
      cache.hot_seconds * 1e3, cache.speedup,
      cache.speedup >= 10 ? "(PASS >=10x)" : "(FAIL <10x)");

  CoalesceResult uncoalesced = MeasureBurst(graph, burst, 0.0, 1);
  CoalesceResult coalesced = MeasureBurst(graph, burst, 0.05, 8);
  const double coalesce_speedup =
      coalesced.modeled_qps / uncoalesced.modeled_qps;
  std::printf(
      "# coalescing (%d queries): uncoalesced %.0f modeled q/s "
      "(%.2f ms/query wall), coalesced %.0f modeled q/s (%.2f ms/query "
      "wall) at mean batch %.1f, speedup %.1fx %s\n",
      burst, uncoalesced.modeled_qps,
      uncoalesced.wall_seconds * 1e3 / burst, coalesced.modeled_qps,
      coalesced.wall_seconds * 1e3 / burst, coalesced.mean_batch,
      coalesce_speedup,
      coalesce_speedup > 1 && coalesced.mean_batch >= 4
          ? "(PASS >1x at batch >=4)"
          : "(FAIL)");

  std::vector<BlockedWidthResult> widths = MeasureBlockedWidths(graph, burst);
  const BlockedWidthResult* w1 = nullptr;
  const BlockedWidthResult* w8 = nullptr;
  for (const BlockedWidthResult& w : widths) {
    if (w.width == 1) w1 = &w;
    if (w.width == 8) w8 = &w;
  }
  TILESPMV_CHECK(w1 != nullptr && w8 != nullptr);
  const double spmm_speedup =
      w1->per_query_gpu_seconds / w8->per_query_gpu_seconds;
  const bool spmm_pass = spmm_speedup > 1.0;
  std::printf("# spmm batching (%d queries, tile-composite):\n", burst);
  for (const BlockedWidthResult& w : widths) {
    std::printf(
        "#   k=%-2d %.3f ms/query modeled (%lld sweeps for %lld "
        "vector-iterations)\n",
        w.width, w.per_query_gpu_seconds * 1e3,
        static_cast<long long>(w.sweeps), static_cast<long long>(w.vectors));
  }
  std::printf("# spmm batching: k=8 vs k=1 speedup %.2fx %s\n", spmm_speedup,
              spmm_pass ? "(PASS >1x)" : "(FAIL <=1x)");

  HostSpmvResult host = MeasureHostSpmv(graph, opts.quick);
  std::printf(
      "# host spmv (1 thread, wall clock): scalar %.3f ms, avx2 %.3f ms "
      "(%.2fx), best[%s] %.3f ms (%.2fx), sell %.3f ms %s\n",
      host.scalar_ms, host.avx2_ms, host.avx2_speedup, host.best_tier,
      host.best_ms, host.best_speedup, host.sell_ms,
      host.pass ? (host.avx2_available ? "(PASS avx2 >=2x)"
                                       : "(PASS, no avx2: gate vacuous)")
                : "(FAIL avx2 <2x)");

  PipelineOverlapResult overlap = MeasurePipelineOverlap(opts.quick);
  std::printf(
      "# pipeline overlap (pagerank, %d threads, %d fixed iterations): "
      "fork-join %.3f ms/iter, pipelined %.3f ms/iter, speedup %.2fx %s\n",
      overlap.threads, overlap.iterations, overlap.forkjoin_ms_per_iter,
      overlap.pipeline_ms_per_iter, overlap.speedup,
      overlap.pass ? (overlap.gate >= 1.15 ? "(PASS >=1.15x)"
                                           : "(PASS >=1.05x, quick profile)")
                   : "(FAIL)");

  std::printf(
      "{\"plan_cache\": {\"cold_ms\": %.3f, \"build_ms\": %.3f, "
      "\"hot_ms\": %.3f, \"speedup\": %.2f, \"pass\": %s}, "
      "\"coalescing\": {\"queries\": %d, "
      "\"uncoalesced_modeled_qps\": %.1f, \"coalesced_modeled_qps\": %.1f, "
      "\"uncoalesced_wall_ms_per_query\": %.3f, "
      "\"coalesced_wall_ms_per_query\": %.3f, "
      "\"mean_batch\": %.2f, \"uncoalesced_gpu_seconds\": %.4f, "
      "\"coalesced_gpu_seconds\": %.4f, \"speedup\": %.2f, \"pass\": %s}, "
      "\"spmm_batch\": {\"queries\": %d, \"per_query_ms\": "
      "{\"k1\": %.4f, \"k4\": %.4f, \"k8\": %.4f, \"k16\": %.4f}, "
      "\"k8_vs_k1_speedup\": %.2f, \"pass\": %s}, "
      "\"host_spmv\": {\"scalar_ms\": %.4f, \"avx2_ms\": %.4f, "
      "\"avx2_speedup\": %.2f, \"best_tier\": \"%s\", \"best_ms\": %.4f, "
      "\"best_speedup\": %.2f, \"sell_ms\": %.4f, \"pass\": %s}, "
      "\"pipeline_overlap\": {\"threads\": %d, \"iterations\": %d, "
      "\"forkjoin_ms_per_iter\": %.4f, \"pipeline_ms_per_iter\": %.4f, "
      "\"speedup\": %.2f, \"pass\": %s}}\n",
      cache.cold_seconds * 1e3, cache.build_seconds * 1e3,
      cache.hot_seconds * 1e3, cache.speedup,
      cache.speedup >= 10 ? "true" : "false", burst, uncoalesced.modeled_qps,
      coalesced.modeled_qps, uncoalesced.wall_seconds * 1e3 / burst,
      coalesced.wall_seconds * 1e3 / burst, coalesced.mean_batch,
      uncoalesced.modeled_gpu_seconds, coalesced.modeled_gpu_seconds,
      coalesce_speedup,
      coalesce_speedup > 1 && coalesced.mean_batch >= 4 ? "true" : "false",
      burst, widths[0].per_query_gpu_seconds * 1e3,
      widths[1].per_query_gpu_seconds * 1e3,
      widths[2].per_query_gpu_seconds * 1e3,
      widths[3].per_query_gpu_seconds * 1e3, spmm_speedup,
      spmm_pass ? "true" : "false", host.scalar_ms, host.avx2_ms,
      host.avx2_speedup, host.best_tier, host.best_ms, host.best_speedup,
      host.sell_ms, host.pass ? "true" : "false", overlap.threads,
      overlap.iterations, overlap.forkjoin_ms_per_iter,
      overlap.pipeline_ms_per_iter, overlap.speedup,
      overlap.pass ? "true" : "false");
  JsonReporter::Global().Add("plan_cache/cold", "rwr",
                             cache.cold_seconds * 1e3, 0.0, 1);
  JsonReporter::Global().Add("plan_cache/hot", "rwr", cache.hot_seconds * 1e3,
                             0.0, hot_queries);
  JsonReporter::Global().Add("coalesce/uncoalesced", "max_batch=1",
                             uncoalesced.wall_seconds * 1e3, 0.0, burst);
  JsonReporter::Global().Add("coalesce/coalesced", "max_batch=8",
                             coalesced.wall_seconds * 1e3, 0.0, burst);
  for (const BlockedWidthResult& w : widths) {
    JsonReporter::Global().Add("spmm_batch/width",
                               "k=" + std::to_string(w.width),
                               w.per_query_gpu_seconds * 1e3, 0.0, burst);
  }
  JsonReporter::Global().Add("host_spmv/scalar", "cpu-csr threads=1",
                             host.scalar_ms, 0.0, 1);
  if (host.avx2_available) {
    JsonReporter::Global().Add("host_spmv/avx2", "cpu-csr-simd threads=1",
                               host.avx2_ms, 0.0, 1);
  }
  JsonReporter::Global().Add("host_spmv/best",
                             std::string("cpu-csr-simd tier=") +
                                 host.best_tier + " threads=1",
                             host.best_ms, 0.0, 1);
  JsonReporter::Global().Add("host_spmv/sell",
                             std::string("cpu-sell-simd tier=") +
                                 host.best_tier + " threads=1",
                             host.sell_ms, 0.0, 1);
  JsonReporter::Global().Add(
      "pipeline_overlap/forkjoin",
      "pagerank threads=" + std::to_string(overlap.threads),
      overlap.forkjoin_ms_per_iter, 0.0, overlap.iterations);
  JsonReporter::Global().Add(
      "pipeline_overlap/pipeline",
      "pagerank threads=" + std::to_string(overlap.threads),
      overlap.pipeline_ms_per_iter, 0.0, overlap.iterations);
  JsonReporter::Global().Emit("serve");
  return (cache.speedup >= 10 && coalesce_speedup > 1 &&
          coalesced.mean_batch >= 4 && spmm_pass && host.pass && overlap.pass)
             ? 0
             : 1;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
