// Reproduces Figure 3: PageRank speed (GFLOPS) and effective bandwidth
// (GB/s) on the four graph datasets for the COO / HYB / TILE-COO /
// TILE-Composite kernels. These are per-iteration rates, so no functional
// convergence run is needed.
//
// Expected shape (paper): the tile kernels roughly double COO/HYB on
// Flickr / LiveJournal / Wikipedia and are marginally better on Youtube.
#include "bench_common.h"
#include "graph/pagerank.h"
#include "sparse/convert.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  const std::vector<std::string> kernels = {"coo", "hyb", "tile-coo",
                                            "tile-composite"};
  const std::vector<std::string> graphs = {"flickr", "livejournal",
                                           "wikipedia", "youtube"};

  std::printf("=== Figure 3: PageRank per-iteration performance ===\n");
  struct Row {
    std::string graph;
    std::vector<double> gflops, gbps;
    std::vector<bool> ok;
  };
  std::vector<Row> rows;
  for (const std::string& g : graphs) {
    CsrMatrix a = LoadDataset(g, opts);
    // PageRank multiplies by W^T each iteration (Equation 6).
    CsrMatrix wt = Transpose(RowNormalize(a));
    Row row;
    row.graph = g;
    for (const std::string& name : kernels) {
      auto kernel = CreateKernel(name, spec);
      Status st = kernel->Setup(wt);
      bool ok = st.ok();
      double aux = ElementwiseSeconds(2 * a.rows, a.rows, spec) +
                   ReductionSeconds(a.rows, spec);
      double per_iter = kernel->timing().seconds + aux;
      uint64_t flops = kernel->timing().flops + 3ULL * a.rows;
      uint64_t bytes = kernel->timing().useful_bytes + 16ULL * a.rows;
      row.gflops.push_back(ok ? flops / per_iter * 1e-9 : 0);
      row.gbps.push_back(ok ? bytes / per_iter * 1e-9 : 0);
      row.ok.push_back(ok);
      if (ok) {
        JsonReporter::Global().Add(g + "/" + name, "pagerank-iteration",
                                   per_iter * 1e3, flops / per_iter * 1e-9,
                                   1);
      }
    }
    rows.push_back(std::move(row));
  }
  std::printf("\n--- Figure 3(a): PageRank GFLOPS ---\n");
  PrintHeader("graph", kernels);
  for (const Row& r : rows) {
    std::printf("%-14s", r.graph.c_str());
    for (size_t i = 0; i < kernels.size(); ++i) PrintCell(r.gflops[i], r.ok[i]);
    std::printf("\n");
  }
  std::printf("\n--- Figure 3(b): PageRank bandwidth (GB/s) ---\n");
  PrintHeader("graph", kernels);
  for (const Row& r : rows) {
    std::printf("%-14s", r.graph.c_str());
    for (size_t i = 0; i < kernels.size(); ++i) PrintCell(r.gbps[i], r.ok[i]);
    std::printf("\n");
  }
  JsonReporter::Global().Emit("fig3_pagerank");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
