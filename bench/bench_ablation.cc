// Ablation studies for the design choices called out in Section 5
// (Discussion) and DESIGN.md:
//   1. Tiling alone (COO vs TILE-COO) on power-law vs non-power-law input —
//      the paper: "On power-law matrices, tile-coo performs consistently
//      better than COO. On non-power-law matrices ... the benefit is very
//      marginal."
//   2. Composite storage on top of tiling (TILE-COO vs TILE-COMPOSITE) on
//      both input classes — "tile-composite performs better than tile-coo
//      on both power-law and non-power-law matrices."
//   3. The 256-byte anti-partition-camping pad, on a matrix engineered so
//      every workload is a multiple of 512 floats.
//   4. Bitonic vs contiguous-block vs round-robin row partitioning balance.
#include <algorithm>

#include "bench_common.h"
#include "util/check.h"
#include "core/tile_composite.h"
#include "multigpu/comm_analysis.h"
#include "gen/power_law.h"
#include "multigpu/partition.h"
#include "util/random.h"

namespace tilespmv::bench {
namespace {

double Gflops(const std::string& name, const CsrMatrix& a,
              const gpusim::DeviceSpec& spec) {
  auto k = CreateKernel(name, spec);
  TILESPMV_CHECK_OK(k->Setup(a));
  return k->timing().gflops();
}

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  const int32_t n = opts.quick ? 1 << 16 : 1 << 18;
  const int64_t nnz = opts.quick ? 1000000 : 4000000;

  CsrMatrix power_law = GenerateRmat(n, nnz, RmatOptions{.seed = 30});
  // A Figure-7-class uniform matrix: Circuit-sized, ~5 entries per row and
  // column, so there is little x reuse for a tile to capture — the regime
  // where the paper observes only marginal tiling benefit.
  Pcg32 rng(31);
  std::vector<Triplet> t;
  const int32_t un = n / 2;
  for (int64_t i = 0; i < 5LL * un; ++i) {
    t.push_back(Triplet{static_cast<int32_t>(rng.NextBounded(un)),
                        static_cast<int32_t>(rng.NextBounded(un)),
                        1.0f});
  }
  CsrMatrix uniform = CsrMatrix::FromTriplets(un, un, std::move(t));

  std::printf("=== Ablation 1+2: tiling and composite storage ===\n");
  std::printf("%-12s %10s %10s %14s | %12s %12s\n", "matrix", "coo",
              "tile-coo", "tile-composite", "tiling gain", "comp gain");
  for (auto& [label, m] :
       std::vector<std::pair<const char*, const CsrMatrix*>>{
           {"power-law", &power_law}, {"uniform", &uniform}}) {
    double coo = Gflops("coo", *m, spec);
    double tcoo = Gflops("tile-coo", *m, spec);
    double tcomp = Gflops("tile-composite", *m, spec);
    std::printf("%-12s %10.2f %10.2f %14.2f | %11.1f%% %11.1f%%\n", label,
                coo, tcoo, tcomp, 100 * (tcoo / coo - 1),
                100 * (tcomp / tcoo - 1));
    JsonReporter::Global().Add(std::string(label) + "/coo", "ablation", 0.0,
                               coo, 1);
    JsonReporter::Global().Add(std::string(label) + "/tile-coo", "ablation",
                               0.0, tcoo, 1);
    JsonReporter::Global().Add(std::string(label) + "/tile-composite",
                               "ablation", 0.0, tcomp, 1);
  }

  std::printf("\n=== Ablation 3: partition-camping pad ===\n");
  // 512-long rows pack into exactly-512-float workloads: the pathological
  // alignment the pad exists for.
  std::vector<Triplet> rows512;
  const int32_t m512 = 16384;
  Pcg32 rng2(32);
  for (int32_t r = 0; r < m512; ++r) {
    for (int32_t j = 0; j < 512; ++j) {
      rows512.push_back(Triplet{
          r, static_cast<int32_t>((r * 512 + j * 7919) % (64 * 1024)), 1.0f});
    }
  }
  CsrMatrix aligned = CsrMatrix::FromTriplets(m512, 64 * 1024,
                                              std::move(rows512));
  for (bool pad : {false, true}) {
    TileCompositeOptions topts;
    topts.camping_padding = pad;
    topts.forced_workload = 512;
    TileCompositeKernel k(spec, topts);
    TILESPMV_CHECK_OK(k.Setup(aligned));
    std::printf("camping pad %-3s: %8.2f GFLOPS  worst camping factor %.2f\n",
                pad ? "on" : "off", k.timing().gflops(),
                k.timing().worst_camping_factor);
    JsonReporter::Global().Add("camping-pad",
                               pad ? "pad=on" : "pad=off",
                               k.timing().seconds * 1e3,
                               k.timing().gflops(), 1);
  }

  std::printf("\n=== Ablation 4: row-partitioning schemes (8 nodes) ===\n");
  std::printf("%-12s %14s %14s\n", "scheme", "nnz imbalance", "row imbalance");
  for (auto [label, scheme] :
       std::vector<std::pair<const char*, PartitionScheme>>{
           {"bitonic", PartitionScheme::kBitonic},
           {"block-rows", PartitionScheme::kBlockRows},
           {"round-robin", PartitionScheme::kRoundRobin}}) {
    RowPartition p = PartitionRows(power_law, 8, scheme);
    PartitionBalance b = AnalyzeBalance(power_law, p);
    std::printf("%-12s %14.3f %14.3f\n", label, b.nnz_imbalance,
                b.row_imbalance);
  }
  std::printf("\n=== Ablation 5: distribution layouts (Section 3.2) ===\n");
  std::printf("%-12s %16s %16s %10s\n", "layout", "sent/node", "recv/node",
              "reduce?");
  const int64_t big_n = 41291594;  // it-2004's node count.
  for (DistributionLayout layout :
       {DistributionLayout::kByRows, DistributionLayout::kByGrid,
        DistributionLayout::kByColumns}) {
    CommCost c = AnalyzeCommunication(big_n, 9, layout);
    std::printf("%-12s %16lld %16lld %10s\n", LayoutName(layout),
                static_cast<long long>(c.elements_sent_per_node),
                static_cast<long long>(c.elements_received_per_node),
                c.needs_reduction ? "yes" : "no");
  }
  std::printf(
      "\npaper: tiling helps a lot on power-law, marginally on uniform; "
      "composite helps on both; the pad removes camping; bitonic balances "
      "rows AND nnz simultaneously; rows beat grids beat columns on "
      "communication and avoid the post-gather reduction.\n");
  JsonReporter::Global().Emit("ablation");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
