// Section 5's generalized performance model: predict CSR-vector, ELL and
// tile-composite as special cases of the same model and "choose the best
// predicted kernel to perform real computation". For each dataset this
// bench reports the model's pick, the actually-best kernel among the three
// (by simulated execution), and the cost of a wrong pick.
//
// Expected shape: the pick is correct (or costs only a few percent) on
// every dataset — tile-composite on the skewed graphs, with csr-vector/ell
// competitive only on uniform-row matrices.
#include <memory>

#include "bench_common.h"
#include "core/kernel_select.h"
#include "util/check.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  PerfModel model(spec);

  std::printf("=== Section 5: model-driven kernel selection ===\n");
  std::printf("%-14s %-16s %-16s %10s\n", "dataset", "model pick",
              "simulated best", "pick cost");
  std::vector<std::string> datasets = {"webbase", "flickr",  "wikipedia",
                                       "youtube", "dense",   "circuit",
                                       "fem_harbor", "protein"};
  int correct = 0, total = 0;
  for (const std::string& ds : datasets) {
    Result<CsrMatrix> a = MakeDataset(
        ds, opts.scale > 0 ? opts.scale
                           : FindDataset(ds).value().default_scale *
                                 (opts.quick ? 0.25 : 0.5));
    TILESPMV_CHECK(a.ok());
    std::string pick = SelectKernel(a.value(), model);

    // Ground truth: simulate the three candidates.
    std::string best;
    double best_seconds = 1e30, pick_seconds = 0;
    for (const char* name : {"csr-vector", "ell", "tile-composite"}) {
      auto kernel = CreateKernel(name, spec);
      if (!kernel->Setup(a.value()).ok()) continue;
      double s = kernel->timing().seconds;
      if (s < best_seconds) {
        best_seconds = s;
        best = name;
      }
      if (pick == name) pick_seconds = s;
    }
    double cost = pick_seconds / best_seconds - 1.0;
    std::printf("%-14s %-16s %-16s %9.1f%%\n", ds.c_str(), pick.c_str(),
                best.c_str(), 100 * cost);
    JsonReporter::Global().Add(ds + "/" + pick, "model-pick",
                               pick_seconds * 1e3, 0.0, 1);
    ++total;
    if (pick == best) ++correct;
    std::fflush(stdout);
  }
  std::printf("\ncorrect picks: %d/%d (a wrong pick's cost is shown above)\n",
              correct, total);
  JsonReporter::Global().Emit("kernel_select");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
