// Reproduces the Section 3.1 texture-cache probe: "We mod the column indices
// of a large sparse matrix by tile width, so all accesses to vector x are
// mapped to one tile. We vary the tile width from 100K to 1K and run the
// multiplication. The performance improves most significantly when tile
// width = 64K, corresponding to 256 KB of cache size."
//
// Expected shape: bandwidth jumps as soon as the folded x segment (width x
// 4 B) fits the 256 KB texture cache, i.e. between 100K/80K columns (miss)
// and 64K columns (fit).
#include <algorithm>

#include "bench_common.h"
#include "util/check.h"
#include "gen/power_law.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  int32_t n = opts.quick ? 1 << 17 : 1 << 19;
  int64_t nnz = opts.quick ? 2000000 : 8000000;
  CsrMatrix base = GenerateRmat(n, nnz, RmatOptions{.seed = 9});
  std::printf(
      "=== Section 3.1 probe: fold x accesses into one tile of varying "
      "width (matrix: %d nodes, %lld nnz) ===\n",
      n, static_cast<long long>(base.nnz()));
  std::printf("%12s %14s %12s %12s %14s\n", "tile width", "segment (KB)",
              "GFLOPS", "GB/s", "tex hit rate");

  for (int32_t width : {128 * 1024, 100 * 1024, 80 * 1024, 64 * 1024,
                        48 * 1024, 32 * 1024, 16 * 1024, 8 * 1024, 4 * 1024,
                        1 * 1024}) {
    CsrMatrix folded = base;
    for (int32_t& c : folded.col_idx) c %= width;
    // Column indices within each row must stay sorted for the CSR invariant.
    for (int32_t r = 0; r < folded.rows; ++r) {
      std::sort(folded.col_idx.begin() + folded.row_ptr[r],
                folded.col_idx.begin() + folded.row_ptr[r + 1]);
    }
    auto kernel = CreateKernel("coo", spec);
    TILESPMV_CHECK_OK(kernel->Setup(folded));
    const KernelTiming& t = kernel->timing();
    std::printf("%12d %14d %12.2f %12.2f %13.1f%%\n", width, width * 4 / 1024,
                t.gflops(), t.gbps(), 100 * t.TexHitRate());
    JsonReporter::Global().Add("fold/coo",
                               "width=" + std::to_string(width),
                               t.seconds * 1e3, t.gflops(), 1);
  }
  std::printf(
      "\npaper: the biggest improvement appears at width 64K = 256 KB, "
      "locating the Tesla's texture cache size; the tile width is fixed to "
      "64K columns from then on.\n");
  JsonReporter::Global().Emit("cache_probe");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
