// Reproduces Figure 2: SpMV kernel comparison on the five matrices
// representing power-law graphs — (a) GFLOPS and (b) effective bandwidth in
// GB/s for the CPU baseline, the NVIDIA library kernels, Baskaran &
// Bordawekar's kernel, and the paper's TILE-COO / TILE-COMPOSITE.
//
// Expected shape (paper): tile-composite and tile-coo dominate on Flickr,
// LiveJournal, Wikipedia (tile-composite ~1.95x NVIDIA's best = HYB); the
// advantage shrinks on the small Webbase and Youtube matrices; DIA and PKT
// fail to run on power-law inputs.
#include "bench_common.h"

namespace tilespmv::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  gpusim::DeviceSpec spec;
  const std::vector<std::string> kernels = {
      "cpu-csr", "csr", "csr-vector", "bsk-bdw", "coo",
      "ell",     "hyb", "dia",        "pkt",     "tile-coo",
      "tile-composite"};

  std::printf("=== Figure 2: SpMV kernels on power-law matrices ===\n");
  struct Row {
    std::string dataset;
    std::vector<double> gflops, gbps;
    std::vector<bool> ok;
  };
  std::vector<Row> rows;
  double speedup_sum = 0;
  int speedup_count = 0;
  for (const DatasetSpec& ds : PowerLawDatasets()) {
    CsrMatrix a = LoadDataset(ds.name, opts);
    Row row;
    row.dataset = ds.name;
    double hyb_gflops = 0, tile_gflops = 0;
    for (const std::string& name : kernels) {
      KernelTiming t;
      std::string why;
      bool ok = SetupKernel(name, a, spec, &t, &why);
      if (!ok) std::printf("#   %s: %s\n", name.c_str(), why.c_str());
      row.gflops.push_back(ok ? t.gflops() : 0);
      row.gbps.push_back(ok ? t.gbps() : 0);
      row.ok.push_back(ok);
      if (ok) {
        JsonReporter::Global().Add(ds.name + "/" + name, "spmv",
                                   t.seconds * 1e3, t.gflops(), 1);
      }
      if (ok && name == "hyb") hyb_gflops = t.gflops();
      if (ok && name == "tile-composite") tile_gflops = t.gflops();
    }
    if (hyb_gflops > 0) {
      speedup_sum += tile_gflops / hyb_gflops;
      ++speedup_count;
    }
    rows.push_back(std::move(row));
  }

  std::printf("\n--- Figure 2(a): GFLOPS ---\n");
  PrintHeader("dataset", kernels);
  for (const Row& r : rows) {
    std::printf("%-14s", r.dataset.c_str());
    for (size_t i = 0; i < kernels.size(); ++i) PrintCell(r.gflops[i], r.ok[i]);
    std::printf("\n");
  }
  std::printf("\n--- Figure 2(b): bandwidth (GB/s) ---\n");
  PrintHeader("dataset", kernels);
  for (const Row& r : rows) {
    std::printf("%-14s", r.dataset.c_str());
    for (size_t i = 0; i < kernels.size(); ++i) PrintCell(r.gbps[i], r.ok[i]);
    std::printf("\n");
  }
  std::printf(
      "\ntile-composite vs HYB average speedup: %.2fx  (paper: 1.95x on "
      "Flickr/LiveJournal/Wikipedia, 1.13x Webbase, 1.36x Youtube)\n",
      speedup_sum / speedup_count);
  JsonReporter::Global().Emit("fig2_spmv_powerlaw");
  return 0;
}

}  // namespace
}  // namespace tilespmv::bench

int main(int argc, char** argv) { return tilespmv::bench::Run(argc, argv); }
