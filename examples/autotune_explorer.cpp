// Auto-tuning explorer: shows what the Section 3.3 machinery decides for a
// matrix — the tile count from Algorithm 1, each tile's workload size from
// Algorithm 2, the performance model's prediction, and how the prediction
// compares to the simulated execution.
//
//   $ ./autotune_explorer [dataset] [scale]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/tile_composite.h"
#include "gen/datasets.h"
#include "sparse/matrix_stats.h"

using namespace tilespmv;

int main(int argc, char** argv) {
  std::string dataset = argc > 1 ? argv[1] : "flickr";
  double scale = argc > 2 ? std::atof(argv[2]) : 0.05;
  Result<CsrMatrix> loaded = MakeDataset(dataset, scale);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  CsrMatrix a = loaded.take();
  std::printf("%s @ scale %.3g: %s\n", dataset.c_str(), scale,
              ComputeStats(a).ToString().c_str());

  gpusim::DeviceSpec device;
  TileCompositeKernel kernel(device);
  Status st = kernel.Setup(a);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\nAlgorithm 1 chose %d dense tile(s) of 64K columns\n",
              kernel.num_tiles());
  const std::vector<int64_t>& wl = kernel.workload_sizes();
  for (size_t i = 0; i < wl.size(); ++i) {
    bool sparse_tile =
        i + 1 == wl.size() &&
        wl.size() == static_cast<size_t>(kernel.num_tiles()) + 1;
    std::printf("  %s %zu: workload size %lld non-zeros per warp\n",
                sparse_tile ? "sparse remainder" : "tile", i,
                static_cast<long long>(wl[i]));
  }

  double measured = kernel.timing().seconds;
  double predicted = kernel.predicted_seconds();
  std::printf("\nperformance model prediction: %8.1f us\n", predicted * 1e6);
  std::printf("simulated execution:          %8.1f us  (%.0f%% of "
              "prediction)\n",
              measured * 1e6, 100 * measured / predicted);
  std::printf("=> %.2f GFLOPS, %.2f GB/s, texture hit rate %.1f%%\n",
              kernel.timing().gflops(), kernel.timing().gbps(),
              100 * kernel.timing().TexHitRate());

  // What the tuner avoided: force a deliberately coarse workload size so
  // too few warps are in flight to keep the device busy.
  TileCompositeOptions bad;
  bad.forced_workload = 16 * wl.front();
  TileCompositeKernel coarse(device, bad);
  if (coarse.Setup(a).ok()) {
    std::printf(
        "\nforcing %lldx coarser workloads instead: %.1f us (%.2fx slower) "
        "— the tuner earns its keep\n",
        static_cast<long long>(16), coarse.timing().seconds * 1e6,
        coarse.timing().seconds / measured);
  }
  return 0;
}
