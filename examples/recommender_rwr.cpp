// Item-to-item recommendation with Random Walk with Restart — the
// interactive graph-mining scenario of Appendix F. Builds a co-occurrence
// graph with planted communities, then answers "what is related to X?"
// queries with an RwrEngine and shows that the walk surfaces the planted
// community.
//
//   $ ./recommender_rwr
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "graph/rwr.h"
#include "util/random.h"

using namespace tilespmv;

int main() {
  // A catalog of 20000 items in 200 communities of 100, plus random
  // cross-community edges (the power-law-ish noise real data has).
  const int32_t kItems = 20000;
  const int32_t kCommunity = 100;
  Pcg32 rng(7);
  std::vector<Triplet> edges;
  for (int32_t i = 0; i < kItems; ++i) {
    int32_t base = i / kCommunity * kCommunity;
    for (int k = 0; k < 6; ++k) {
      edges.push_back(Triplet{
          i, base + static_cast<int32_t>(rng.NextBounded(kCommunity)), 1.0f});
    }
    edges.push_back(
        Triplet{i, static_cast<int32_t>(rng.NextBounded(kItems)), 1.0f});
  }
  CsrMatrix graph = CsrMatrix::FromTriplets(kItems, kItems, std::move(edges));
  std::printf("catalog graph: %d items, %lld co-occurrence edges\n",
              graph.rows, static_cast<long long>(graph.nnz()));

  gpusim::DeviceSpec device;
  auto kernel = CreateKernel("tile-composite", device);
  RwrEngine engine(kernel.get());
  Status st = engine.Init(graph, RwrOptions{});  // c = 0.9, as in the paper.
  if (!st.ok()) {
    std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("modeled SpMV cost per iteration: %.1f us\n",
              kernel->timing().seconds * 1e6);

  for (int32_t query : {42, 7777, 19999}) {
    Result<RwrResult> r = engine.Query(query);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    const std::vector<float>& s = r.value().scores;
    std::vector<int32_t> order(kItems);
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(
        order.begin(), order.begin() + 6, order.end(),
        [&](int32_t a, int32_t b) { return s[a] > s[b]; });
    std::printf(
        "\nrelated to item %d (community %d), %d iterations, %.3f ms "
        "modeled:\n",
        query, query / kCommunity, r.value().stats.iterations,
        r.value().stats.gpu_seconds * 1e3);
    int in_community = 0;
    for (int i = 1; i <= 5; ++i) {  // Skip the query node itself (rank 0).
      std::printf("  item %-8d score %.5f  community %d\n", order[i],
                  s[order[i]], order[i] / kCommunity);
      if (order[i] / kCommunity == query / kCommunity) ++in_community;
    }
    std::printf("  -> %d of 5 recommendations from the query's community\n",
                in_community);
  }
  return 0;
}
