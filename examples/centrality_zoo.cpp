// Centrality zoo: run every power-method mining algorithm in the library
// (PageRank, personalized PageRank, HITS, SALSA, Katz, RWR) over the same
// graph with the tile-composite kernel, compare what each considers
// "important", and plot the convergence tracks.
//
//   $ ./centrality_zoo
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "gen/graph_models.h"
#include "graph/centrality.h"
#include "graph/hits.h"
#include "graph/pagerank.h"
#include "graph/rwr.h"
#include "util/ascii_plot.h"

using namespace tilespmv;

namespace {

std::vector<int32_t> TopK(const std::vector<float>& scores, int k) {
  std::vector<int32_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int32_t a, int32_t b) {
                      return scores[a] > scores[b];
                    });
  order.resize(k);
  return order;
}

void Report(const char* name, const std::vector<float>& scores,
            const IterativeResult& stats) {
  std::printf("%-22s %3d iters  %8.3f ms   top:", name, stats.iterations,
              stats.gpu_seconds * 1e3);
  for (int32_t v : TopK(scores, 5)) std::printf(" %d", v);
  std::printf("\n  convergence %s\n", LogSparkline(stats.delta_history).c_str());
}

}  // namespace

int main() {
  // A preferential-attachment web: node ids correlate with age, so old
  // nodes should dominate most centralities.
  CsrMatrix graph = GenerateBarabasiAlbert(50000, 6, 9);
  std::printf("graph: %d nodes, %lld edges (Barabasi-Albert)\n\n", graph.rows,
              static_cast<long long>(graph.nnz()));
  gpusim::DeviceSpec device;

  {
    auto kernel = CreateKernel("tile-composite", device);
    Result<IterativeResult> r =
        RunPageRank(graph, kernel.get(), PageRankOptions{});
    if (r.ok()) Report("PageRank", r.value().result, r.value());
  }
  {
    auto kernel = CreateKernel("tile-composite", device);
    std::vector<float> pers(graph.rows, 0.0f);
    pers[49999] = 1.0f;  // Personalize on the newest node.
    PageRankOptions opts;
    opts.personalization = &pers;
    Result<IterativeResult> r = RunPageRank(graph, kernel.get(), opts);
    if (r.ok()) {
      Report("PageRank@node49999", r.value().result, r.value());
    }
  }
  {
    auto kernel = CreateKernel("tile-composite", device);
    Result<HitsScores> r = RunHits(graph, kernel.get(), HitsOptions{});
    if (r.ok()) Report("HITS authority", r.value().authority, r.value().stats);
  }
  {
    auto kernel = CreateKernel("tile-composite", device);
    Result<SalsaScores> r = RunSalsa(graph, kernel.get(), SalsaOptions{});
    if (r.ok()) {
      Report("SALSA authority", r.value().authority, r.value().stats);
    }
  }
  {
    auto kernel = CreateKernel("tile-composite", device);
    Result<IterativeResult> r = RunKatz(graph, kernel.get(), KatzOptions{});
    if (r.ok()) Report("Katz", r.value().result, r.value());
  }
  {
    auto kernel = CreateKernel("tile-composite", device);
    RwrEngine engine(kernel.get());
    if (engine.Init(graph, RwrOptions{}).ok()) {
      Result<RwrResult> r = engine.Query(0);
      if (r.ok()) Report("RWR from node 0", r.value().scores, r.value().stats);
    }
  }
  std::printf(
      "\nEvery algorithm above is a power-method loop over the same SpMV "
      "kernel — the paper's whole premise.\n");
  return 0;
}
