// Quickstart: build a power-law matrix, run the paper's TILE-COMPOSITE SpMV
// kernel on it, and inspect the modeled performance — the minimal end-to-end
// tour of the public API.
//
//   $ ./quickstart
#include <cstdio>

#include "gen/power_law.h"
#include "kernels/spmv.h"
#include "sparse/matrix_stats.h"

using namespace tilespmv;

int main() {
  // 1. A graph. GenerateRmat stands in for loading your own adjacency
  //    matrix (see io/matrix_market.h for .mtx files).
  CsrMatrix a = GenerateRmat(/*n=*/100000, /*target_nnz=*/1200000,
                             RmatOptions{.seed = 1});
  std::printf("matrix: %s\n", ComputeStats(a).ToString().c_str());

  // 2. A device. Defaults model the paper's NVIDIA Tesla C1060.
  gpusim::DeviceSpec device = gpusim::DeviceSpec::TeslaC1060();

  // 3. A kernel. "tile-composite" is the paper's contribution; the other
  //    names in AllKernelNames() are the baselines it is evaluated against.
  std::unique_ptr<SpMVKernel> kernel = CreateKernel("tile-composite", device);
  Status st = kernel->Setup(a);  // Reorders, tiles, packs, auto-tunes.
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Multiply. MultiplyOriginal handles the kernel's internal relabeling.
  std::vector<float> x(a.cols, 1.0f);
  std::vector<float> y;
  MultiplyOriginal(*kernel, x, &y);
  std::printf("y[0..4] = %.1f %.1f %.1f %.1f %.1f   (row degrees, since "
              "x = 1 and values = 1)\n",
              y[0], y[1], y[2], y[3], y[4]);

  // 5. The modeled cost of one multiply on the device.
  const KernelTiming& t = kernel->timing();
  std::printf(
      "modeled: %.1f us/SpMV  %.2f GFLOPS  %.2f GB/s  texture hit rate "
      "%.1f%%  launches=%d\n",
      t.seconds * 1e6, t.gflops(), t.gbps(), 100 * t.TexHitRate(),
      t.launches);

  // Compare against NVIDIA's best library kernel on this class of input.
  std::unique_ptr<SpMVKernel> hyb = CreateKernel("hyb", device);
  if (hyb->Setup(a).ok()) {
    std::printf("speedup over HYB: %.2fx\n",
                hyb->timing().seconds / t.seconds);
  }
  return 0;
}
