// Multi-GPU PageRank scaling demo (Section 3.2): distributes a graph too
// big for one (scaled) device over 1..8 modeled GPUs with bitonic row
// partitioning, runs the full distributed power method functionally, and
// reports throughput, efficiency, and the compute/communication split.
//
//   $ ./multi_gpu_scaling
#include <cstdio>

#include "gen/power_law.h"
#include "multigpu/distributed_pagerank.h"

using namespace tilespmv;

int main() {
  CsrMatrix graph = GenerateRmat(300000, 4000000, RmatOptions{.seed = 21});
  std::printf("graph: %d nodes, %lld edges\n", graph.rows,
              static_cast<long long>(graph.nnz()));

  ClusterSpec cluster;
  // Shrink the modeled per-GPU memory so the graph does not fit on a single
  // device — the situation Section 3.2 exists for.
  cluster.gpu.global_mem_bytes = 96 << 20;

  DistributedPageRankOptions options;
  options.kernel_name = "tile-composite";
  options.pagerank.max_iterations = 30;

  std::printf("\n%5s %10s %12s %12s %12s %10s\n", "GPUs", "GFLOPS",
              "compute(ms)", "comm(ms)", "iter(ms)", "balance");
  double base_perf = 0;
  int base_gpus = 0;
  for (int gpus = 1; gpus <= 8; ++gpus) {
    Result<DistributedRunResult> r =
        RunDistributedPageRank(graph, gpus, options, cluster);
    if (!r.ok()) {
      std::printf("%5d %10s   (%s)\n", gpus, "n/a",
                  r.status().message().substr(0, 60).c_str());
      continue;
    }
    const DistributedRunResult& res = r.value();
    std::printf("%5d %10.2f %12.3f %12.3f %12.3f %9.3f", gpus, res.gflops(),
                res.compute_seconds_per_iteration * 1e3,
                res.comm_seconds_per_iteration * 1e3,
                res.seconds_per_iteration * 1e3, res.balance.nnz_imbalance);
    if (base_gpus == 0) {
      base_gpus = gpus;
      base_perf = res.gflops();
      std::printf("   (first feasible)\n");
    } else {
      double eff = res.gflops() / (base_perf * gpus / base_gpus);
      std::printf("   efficiency %.0f%%\n", 100 * eff);
    }
  }
  std::printf(
      "\nAs in Figure 4: throughput climbs while the per-node slice shrinks, "
      "then the y-vector allgather starts to dominate and the curve "
      "flattens.\n");
  return 0;
}
