// PageRank on a web-scale-shaped graph — the workload that motivates the
// paper's Section 1. Runs the power method with several SpMV kernels,
// verifies they agree, and prints the top-ranked pages plus each kernel's
// modeled runtime.
//
//   $ ./pagerank_webgraph [nodes] [edges]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "gen/power_law.h"
#include "graph/pagerank.h"

using namespace tilespmv;

int main(int argc, char** argv) {
  int32_t nodes = argc > 1 ? std::atoi(argv[1]) : 200000;
  int64_t edges = argc > 2 ? std::atoll(argv[2]) : 2500000;
  CsrMatrix web = GenerateRmat(nodes, edges, RmatOptions{.seed = 11});
  std::printf("web graph: %d pages, %lld links\n", web.rows,
              static_cast<long long>(web.nnz()));

  gpusim::DeviceSpec device;
  PageRankOptions options;  // damping 0.85, converge to 1e-5.

  std::vector<float> reference;
  std::printf("\n%-16s %12s %12s %10s %12s\n", "kernel", "time (s)",
              "per-iter", "iters", "GFLOPS");
  for (const char* name :
       {"cpu-csr", "coo", "hyb", "tile-coo", "tile-composite"}) {
    auto kernel = CreateKernel(name, device);
    Result<IterativeResult> r = RunPageRank(web, kernel.get(), options);
    if (!r.ok()) {
      std::printf("%-16s failed: %s\n", name, r.status().ToString().c_str());
      continue;
    }
    const IterativeResult& res = r.value();
    std::printf("%-16s %12.4f %12.6f %10d %12.2f\n", name, res.gpu_seconds,
                res.seconds_per_iteration, res.iterations, res.gflops());
    if (reference.empty()) {
      reference = res.result;
    } else {
      // All kernels compute the same ranking.
      double max_diff = 0;
      for (size_t i = 0; i < reference.size(); ++i) {
        max_diff = std::max(
            max_diff, std::abs(double{reference[i]} - res.result[i]));
      }
      std::printf("%-16s   max deviation from CPU result: %.2e\n", "",
                  max_diff);
    }
  }

  std::vector<int32_t> order(web.rows);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](int32_t a, int32_t b) {
                      return reference[a] > reference[b];
                    });
  std::printf("\ntop pages by PageRank:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  #%d  page %-8d score %.6f\n", i + 1, order[i],
                reference[order[i]]);
  }
  return 0;
}
