// Storage-format tour: build one power-law matrix and walk it through every
// format in the library, printing what each one stores, where the padding
// goes, which builders refuse, and what the modeled kernel makes of it —
// Appendix B as a runnable program.
//
//   $ ./format_tour
#include <cstdio>

#include "gen/power_law.h"
#include "kernels/spmv.h"
#include "sparse/coo.h"
#include "sparse/csc.h"
#include "sparse/dia.h"
#include "sparse/ell.h"
#include "sparse/hyb.h"
#include "sparse/matrix_stats.h"
#include "sparse/pkt.h"

using namespace tilespmv;

int main() {
  CsrMatrix a = GenerateRmat(60000, 700000, RmatOptions{.seed = 5});
  std::printf("matrix: %s\n\n", ComputeStats(a).ToString().c_str());
  const double nnz = static_cast<double>(a.nnz());

  std::printf("CSR : %lld stored entries (%.1f B/nnz with row pointers)\n",
              static_cast<long long>(a.nnz()),
              (a.nnz() * 8.0 + (a.rows + 1) * 8.0) / nnz);
  CooMatrix coo = CooFromCsr(a);
  std::printf("COO : %lld stored entries (12.0 B/nnz, three arrays)\n",
              static_cast<long long>(coo.nnz()));
  CscMatrix csc = CscFromCsr(a);
  std::printf("CSC : %lld stored entries (column-major dual)\n",
              static_cast<long long>(csc.nnz()));

  Result<EllMatrix> ell = EllFromCsr(a, 4LL << 30);
  if (ell.ok()) {
    std::printf("ELL : width %d -> %lld padded slots (%.1fx blowup)\n",
                ell.value().width,
                static_cast<long long>(ell.value().PaddedEntries()),
                ell.value().PaddedEntries() / nnz);
  } else {
    std::printf("ELL : REFUSED — %s\n", ell.status().message().c_str());
  }

  HybMatrix hyb = HybFromCsr(a);
  std::printf(
      "HYB : ELL width %d holds %lld entries (%.0f%%), COO overflow %lld\n",
      hyb.ell.width, static_cast<long long>(hyb.ell.nnz()),
      100.0 * hyb.ell.nnz() / nnz, static_cast<long long>(hyb.coo.nnz()));

  Result<DiaMatrix> dia = DiaFromCsr(a, 512, 4LL << 30);
  std::printf("DIA : %s\n", dia.ok() ? "built (banded?)"
                                     : dia.status().message().c_str());
  Result<PktMatrix> pkt = PktFromCsr(a, 4096);
  if (pkt.ok()) {
    std::printf("PKT : %zu packets\n", pkt.value().packets.size());
  } else {
    std::printf("PKT : REFUSED — %s\n", pkt.status().message().c_str());
  }

  std::printf("\nmodeled SpMV on the Tesla C1060:\n");
  gpusim::DeviceSpec spec;
  for (const std::string& name : AllKernelNames()) {
    auto kernel = CreateKernel(name, spec);
    Status st = kernel->Setup(a);
    if (!st.ok()) {
      std::printf("  %-16s cannot run (%s)\n", name.c_str(),
                  st.message().substr(0, 60).c_str());
      continue;
    }
    std::printf("  %-16s %7.2f GFLOPS  %8.2f GB/s  %5.1f MB on device\n",
                name.c_str(), kernel->timing().gflops(),
                kernel->timing().gbps(),
                kernel->timing().device_bytes / 1e6);
  }
  return 0;
}
