// A guided tour of the serving engine (src/serve/): stand up a long-running
// query server over a graph, then watch the three mechanisms that make
// concurrent serving cheap do their work:
//
//   1. The plan cache — the first query of each workload pays the Section
//      3.1 preprocessing pipeline once; every later query reuses the plan.
//   2. Request dedup — identical PageRank/HITS requests in flight are
//      computed once and answered many times.
//   3. RWR coalescing — concurrent walk queries are batched into one
//      QueryBatch call that shares the matrix stream on the modeled device.
//
//   $ ./query_server
#include <cstdio>
#include <future>
#include <vector>

#include "gen/power_law.h"
#include "serve/engine.h"

using namespace tilespmv;
using serve::Engine;
using serve::EngineOptions;
using serve::QueryKind;
using serve::QueryParams;
using serve::QueryResponse;

int main() {
  // A mid-sized power-law graph standing in for a web/social snapshot.
  CsrMatrix graph = GenerateRmat(30000, 240000, RmatOptions{.seed = 42});
  std::printf("graph: %d nodes, %lld edges\n", graph.rows,
              static_cast<long long>(graph.nnz()));

  EngineOptions options;
  options.num_threads = 4;
  options.batch_window_seconds = 0.01;  // RWR queries wait up to 10 ms.
  options.max_batch = 8;
  Engine engine(options);
  Status st = engine.AddGraph("web", std::move(graph));
  if (!st.ok()) {
    std::fprintf(stderr, "AddGraph failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- 1. Plan cache: cold vs hot. -------------------------------------
  QueryParams params;
  params.node = 7;
  QueryResponse cold = engine.Query("web", QueryKind::kRwr, params);
  params.node = 4242;
  QueryResponse hot = engine.Query("web", QueryKind::kRwr, params);
  std::printf(
      "\nplan cache:\n  cold query: built plan in %.1f ms (cache hit: %s)\n"
      "  hot query:  plan build %.1f ms (cache hit: %s)\n",
      cold.plan_build_seconds * 1e3, cold.plan_cache_hit ? "yes" : "no",
      hot.plan_build_seconds * 1e3, hot.plan_cache_hit ? "yes" : "no");

  // --- 2. Dedup: identical PageRank requests in flight. -----------------
  std::vector<std::future<QueryResponse>> dup;
  for (int i = 0; i < 4; ++i) {
    dup.push_back(engine.Submit("web", QueryKind::kPageRank));
  }
  int deduped = 0;
  for (auto& f : dup) {
    QueryResponse r = f.get();
    if (!r.status.ok()) {
      std::fprintf(stderr, "pagerank failed: %s\n", r.status.ToString().c_str());
      return 1;
    }
    if (r.deduped) ++deduped;
  }
  std::printf(
      "\ndedup:\n  4 identical PageRank requests -> %d answered from the "
      "leader's computation\n",
      deduped);

  // --- 3. Coalescing: a burst of concurrent RWR queries. ----------------
  std::vector<std::future<QueryResponse>> burst;
  for (int i = 0; i < 8; ++i) {
    QueryParams q;
    q.node = 100 + 999 * i;
    burst.push_back(engine.Submit("web", QueryKind::kRwr, q));
  }
  double gpu_seconds = 0.0;
  int batch_size = 1;
  for (auto& f : burst) {
    QueryResponse r = f.get();
    if (!r.status.ok()) {
      std::fprintf(stderr, "rwr failed: %s\n", r.status.ToString().c_str());
      return 1;
    }
    gpu_seconds += r.stats.gpu_seconds;
    batch_size = r.batch_size;
  }
  std::printf(
      "\ncoalescing:\n  8 concurrent RWR queries served as batches of %d — "
      "%.1f ms of modeled GPU time total\n  (a lone query costs %.1f ms; the "
      "batch shares the matrix stream)\n",
      batch_size, gpu_seconds * 1e3, hot.stats.gpu_seconds * 1e3);

  // --- The server's own accounting. -------------------------------------
  std::printf("\nserver stats:\n%s\n", engine.stats().ToJson().c_str());
  return 0;
}
