file(REMOVE_RECURSE
  "CMakeFiles/bench_out_of_core.dir/bench_out_of_core.cc.o"
  "CMakeFiles/bench_out_of_core.dir/bench_out_of_core.cc.o.d"
  "bench_out_of_core"
  "bench_out_of_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_out_of_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
