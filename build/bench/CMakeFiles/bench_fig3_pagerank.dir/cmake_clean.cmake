file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_pagerank.dir/bench_fig3_pagerank.cc.o"
  "CMakeFiles/bench_fig3_pagerank.dir/bench_fig3_pagerank.cc.o.d"
  "bench_fig3_pagerank"
  "bench_fig3_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
