file(REMOVE_RECURSE
  "CMakeFiles/bench_modern_baseline.dir/bench_modern_baseline.cc.o"
  "CMakeFiles/bench_modern_baseline.dir/bench_modern_baseline.cc.o.d"
  "bench_modern_baseline"
  "bench_modern_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modern_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
