# Empty dependencies file for bench_modern_baseline.
# This may be replaced when dependencies are built.
