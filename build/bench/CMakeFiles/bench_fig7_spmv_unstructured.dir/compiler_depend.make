# Empty compiler generated dependencies file for bench_fig7_spmv_unstructured.
# This may be replaced when dependencies are built.
