file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_spmv_unstructured.dir/bench_fig7_spmv_unstructured.cc.o"
  "CMakeFiles/bench_fig7_spmv_unstructured.dir/bench_fig7_spmv_unstructured.cc.o.d"
  "bench_fig7_spmv_unstructured"
  "bench_fig7_spmv_unstructured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_spmv_unstructured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
