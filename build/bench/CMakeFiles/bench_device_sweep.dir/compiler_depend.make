# Empty compiler generated dependencies file for bench_device_sweep.
# This may be replaced when dependencies are built.
