file(REMOVE_RECURSE
  "CMakeFiles/bench_device_sweep.dir/bench_device_sweep.cc.o"
  "CMakeFiles/bench_device_sweep.dir/bench_device_sweep.cc.o.d"
  "bench_device_sweep"
  "bench_device_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
