# Empty dependencies file for bench_table1_pagerank.
# This may be replaced when dependencies are built.
