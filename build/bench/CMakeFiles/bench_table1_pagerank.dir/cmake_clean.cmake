file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_pagerank.dir/bench_table1_pagerank.cc.o"
  "CMakeFiles/bench_table1_pagerank.dir/bench_table1_pagerank.cc.o.d"
  "bench_table1_pagerank"
  "bench_table1_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
