file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_spmv_powerlaw.dir/bench_fig2_spmv_powerlaw.cc.o"
  "CMakeFiles/bench_fig2_spmv_powerlaw.dir/bench_fig2_spmv_powerlaw.cc.o.d"
  "bench_fig2_spmv_powerlaw"
  "bench_fig2_spmv_powerlaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_spmv_powerlaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
