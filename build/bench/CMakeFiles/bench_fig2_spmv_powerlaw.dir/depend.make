# Empty dependencies file for bench_fig2_spmv_powerlaw.
# This may be replaced when dependencies are built.
