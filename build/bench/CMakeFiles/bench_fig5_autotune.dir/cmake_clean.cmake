file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_autotune.dir/bench_fig5_autotune.cc.o"
  "CMakeFiles/bench_fig5_autotune.dir/bench_fig5_autotune.cc.o.d"
  "bench_fig5_autotune"
  "bench_fig5_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
