file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_select.dir/bench_kernel_select.cc.o"
  "CMakeFiles/bench_kernel_select.dir/bench_kernel_select.cc.o.d"
  "bench_kernel_select"
  "bench_kernel_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
