# Empty compiler generated dependencies file for bench_kernel_select.
# This may be replaced when dependencies are built.
