file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_rwr.dir/bench_table5_rwr.cc.o"
  "CMakeFiles/bench_table5_rwr.dir/bench_table5_rwr.cc.o.d"
  "bench_table5_rwr"
  "bench_table5_rwr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_rwr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
