# Empty dependencies file for bench_table5_rwr.
# This may be replaced when dependencies are built.
