# Empty dependencies file for bench_cache_probe.
# This may be replaced when dependencies are built.
