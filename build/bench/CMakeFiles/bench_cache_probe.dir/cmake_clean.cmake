file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_probe.dir/bench_cache_probe.cc.o"
  "CMakeFiles/bench_cache_probe.dir/bench_cache_probe.cc.o.d"
  "bench_cache_probe"
  "bench_cache_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
