# Empty dependencies file for bench_fig8_hits_rwr.
# This may be replaced when dependencies are built.
