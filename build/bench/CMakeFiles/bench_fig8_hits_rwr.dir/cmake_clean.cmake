file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hits_rwr.dir/bench_fig8_hits_rwr.cc.o"
  "CMakeFiles/bench_fig8_hits_rwr.dir/bench_fig8_hits_rwr.cc.o.d"
  "bench_fig8_hits_rwr"
  "bench_fig8_hits_rwr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hits_rwr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
