# Empty dependencies file for bench_table4_hits.
# This may be replaced when dependencies are built.
