file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hits.dir/bench_table4_hits.cc.o"
  "CMakeFiles/bench_table4_hits.dir/bench_table4_hits.cc.o.d"
  "bench_table4_hits"
  "bench_table4_hits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
