file(REMOVE_RECURSE
  "CMakeFiles/distributed_engine_test.dir/distributed_engine_test.cc.o"
  "CMakeFiles/distributed_engine_test.dir/distributed_engine_test.cc.o.d"
  "distributed_engine_test"
  "distributed_engine_test.pdb"
  "distributed_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
