# Empty compiler generated dependencies file for distributed_engine_test.
# This may be replaced when dependencies are built.
