file(REMOVE_RECURSE
  "CMakeFiles/merge_csr_test.dir/merge_csr_test.cc.o"
  "CMakeFiles/merge_csr_test.dir/merge_csr_test.cc.o.d"
  "merge_csr_test"
  "merge_csr_test.pdb"
  "merge_csr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_csr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
