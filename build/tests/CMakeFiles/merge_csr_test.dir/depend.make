# Empty dependencies file for merge_csr_test.
# This may be replaced when dependencies are built.
