file(REMOVE_RECURSE
  "CMakeFiles/kernel_select_test.dir/kernel_select_test.cc.o"
  "CMakeFiles/kernel_select_test.dir/kernel_select_test.cc.o.d"
  "kernel_select_test"
  "kernel_select_test.pdb"
  "kernel_select_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
