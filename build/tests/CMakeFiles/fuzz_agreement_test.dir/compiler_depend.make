# Empty compiler generated dependencies file for fuzz_agreement_test.
# This may be replaced when dependencies are built.
