file(REMOVE_RECURSE
  "CMakeFiles/fuzz_agreement_test.dir/fuzz_agreement_test.cc.o"
  "CMakeFiles/fuzz_agreement_test.dir/fuzz_agreement_test.cc.o.d"
  "fuzz_agreement_test"
  "fuzz_agreement_test.pdb"
  "fuzz_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
