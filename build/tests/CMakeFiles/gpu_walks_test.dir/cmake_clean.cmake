file(REMOVE_RECURSE
  "CMakeFiles/gpu_walks_test.dir/gpu_walks_test.cc.o"
  "CMakeFiles/gpu_walks_test.dir/gpu_walks_test.cc.o.d"
  "gpu_walks_test"
  "gpu_walks_test.pdb"
  "gpu_walks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_walks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
