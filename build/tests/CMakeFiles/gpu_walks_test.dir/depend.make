# Empty dependencies file for gpu_walks_test.
# This may be replaced when dependencies are built.
