# Empty dependencies file for graph_models_test.
# This may be replaced when dependencies are built.
