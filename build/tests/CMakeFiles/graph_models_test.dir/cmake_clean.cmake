file(REMOVE_RECURSE
  "CMakeFiles/graph_models_test.dir/graph_models_test.cc.o"
  "CMakeFiles/graph_models_test.dir/graph_models_test.cc.o.d"
  "graph_models_test"
  "graph_models_test.pdb"
  "graph_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
