# Empty compiler generated dependencies file for csr5_test.
# This may be replaced when dependencies are built.
