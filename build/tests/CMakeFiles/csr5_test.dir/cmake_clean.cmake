file(REMOVE_RECURSE
  "CMakeFiles/csr5_test.dir/csr5_test.cc.o"
  "CMakeFiles/csr5_test.dir/csr5_test.cc.o.d"
  "csr5_test"
  "csr5_test.pdb"
  "csr5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
