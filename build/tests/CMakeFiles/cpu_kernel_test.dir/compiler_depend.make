# Empty compiler generated dependencies file for cpu_kernel_test.
# This may be replaced when dependencies are built.
