# Empty dependencies file for csc_test.
# This may be replaced when dependencies are built.
