file(REMOVE_RECURSE
  "CMakeFiles/permute_test.dir/permute_test.cc.o"
  "CMakeFiles/permute_test.dir/permute_test.cc.o.d"
  "permute_test"
  "permute_test.pdb"
  "permute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
