file(REMOVE_RECURSE
  "CMakeFiles/comm_analysis_test.dir/comm_analysis_test.cc.o"
  "CMakeFiles/comm_analysis_test.dir/comm_analysis_test.cc.o.d"
  "comm_analysis_test"
  "comm_analysis_test.pdb"
  "comm_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
