# Empty dependencies file for rwr_batch_test.
# This may be replaced when dependencies are built.
