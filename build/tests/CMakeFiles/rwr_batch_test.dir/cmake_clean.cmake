file(REMOVE_RECURSE
  "CMakeFiles/rwr_batch_test.dir/rwr_batch_test.cc.o"
  "CMakeFiles/rwr_batch_test.dir/rwr_batch_test.cc.o.d"
  "rwr_batch_test"
  "rwr_batch_test.pdb"
  "rwr_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwr_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
