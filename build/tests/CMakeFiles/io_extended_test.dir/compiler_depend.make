# Empty compiler generated dependencies file for io_extended_test.
# This may be replaced when dependencies are built.
