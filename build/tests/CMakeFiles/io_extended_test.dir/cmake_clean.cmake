file(REMOVE_RECURSE
  "CMakeFiles/io_extended_test.dir/io_extended_test.cc.o"
  "CMakeFiles/io_extended_test.dir/io_extended_test.cc.o.d"
  "io_extended_test"
  "io_extended_test.pdb"
  "io_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
