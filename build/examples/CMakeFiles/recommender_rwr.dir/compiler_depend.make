# Empty compiler generated dependencies file for recommender_rwr.
# This may be replaced when dependencies are built.
