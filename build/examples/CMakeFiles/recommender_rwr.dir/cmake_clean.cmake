file(REMOVE_RECURSE
  "CMakeFiles/recommender_rwr.dir/recommender_rwr.cpp.o"
  "CMakeFiles/recommender_rwr.dir/recommender_rwr.cpp.o.d"
  "recommender_rwr"
  "recommender_rwr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_rwr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
