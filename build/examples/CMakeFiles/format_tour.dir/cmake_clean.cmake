file(REMOVE_RECURSE
  "CMakeFiles/format_tour.dir/format_tour.cpp.o"
  "CMakeFiles/format_tour.dir/format_tour.cpp.o.d"
  "format_tour"
  "format_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
