file(REMOVE_RECURSE
  "CMakeFiles/centrality_zoo.dir/centrality_zoo.cpp.o"
  "CMakeFiles/centrality_zoo.dir/centrality_zoo.cpp.o.d"
  "centrality_zoo"
  "centrality_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centrality_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
