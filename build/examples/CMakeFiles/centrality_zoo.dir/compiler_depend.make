# Empty compiler generated dependencies file for centrality_zoo.
# This may be replaced when dependencies are built.
