
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autotune.cc" "src/CMakeFiles/tilespmv.dir/core/autotune.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/core/autotune.cc.o.d"
  "/root/repo/src/core/composite.cc" "src/CMakeFiles/tilespmv.dir/core/composite.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/core/composite.cc.o.d"
  "/root/repo/src/core/dynamic.cc" "src/CMakeFiles/tilespmv.dir/core/dynamic.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/core/dynamic.cc.o.d"
  "/root/repo/src/core/kernel_select.cc" "src/CMakeFiles/tilespmv.dir/core/kernel_select.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/core/kernel_select.cc.o.d"
  "/root/repo/src/core/perf_model.cc" "src/CMakeFiles/tilespmv.dir/core/perf_model.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/core/perf_model.cc.o.d"
  "/root/repo/src/core/preprocess.cc" "src/CMakeFiles/tilespmv.dir/core/preprocess.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/core/preprocess.cc.o.d"
  "/root/repo/src/core/tile_composite.cc" "src/CMakeFiles/tilespmv.dir/core/tile_composite.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/core/tile_composite.cc.o.d"
  "/root/repo/src/core/tile_coo.cc" "src/CMakeFiles/tilespmv.dir/core/tile_coo.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/core/tile_coo.cc.o.d"
  "/root/repo/src/core/tiling.cc" "src/CMakeFiles/tilespmv.dir/core/tiling.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/core/tiling.cc.o.d"
  "/root/repo/src/gen/datasets.cc" "src/CMakeFiles/tilespmv.dir/gen/datasets.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/gen/datasets.cc.o.d"
  "/root/repo/src/gen/graph_models.cc" "src/CMakeFiles/tilespmv.dir/gen/graph_models.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/gen/graph_models.cc.o.d"
  "/root/repo/src/gen/power_law.cc" "src/CMakeFiles/tilespmv.dir/gen/power_law.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/gen/power_law.cc.o.d"
  "/root/repo/src/gen/structured.cc" "src/CMakeFiles/tilespmv.dir/gen/structured.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/gen/structured.cc.o.d"
  "/root/repo/src/gpusim/cost_model.cc" "src/CMakeFiles/tilespmv.dir/gpusim/cost_model.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/gpusim/cost_model.cc.o.d"
  "/root/repo/src/gpusim/device_spec.cc" "src/CMakeFiles/tilespmv.dir/gpusim/device_spec.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/gpusim/device_spec.cc.o.d"
  "/root/repo/src/gpusim/memory_system.cc" "src/CMakeFiles/tilespmv.dir/gpusim/memory_system.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/gpusim/memory_system.cc.o.d"
  "/root/repo/src/gpusim/texture_cache.cc" "src/CMakeFiles/tilespmv.dir/gpusim/texture_cache.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/gpusim/texture_cache.cc.o.d"
  "/root/repo/src/graph/centrality.cc" "src/CMakeFiles/tilespmv.dir/graph/centrality.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/graph/centrality.cc.o.d"
  "/root/repo/src/graph/hits.cc" "src/CMakeFiles/tilespmv.dir/graph/hits.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/graph/hits.cc.o.d"
  "/root/repo/src/graph/pagerank.cc" "src/CMakeFiles/tilespmv.dir/graph/pagerank.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/graph/pagerank.cc.o.d"
  "/root/repo/src/graph/power_method.cc" "src/CMakeFiles/tilespmv.dir/graph/power_method.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/graph/power_method.cc.o.d"
  "/root/repo/src/graph/rwr.cc" "src/CMakeFiles/tilespmv.dir/graph/rwr.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/graph/rwr.cc.o.d"
  "/root/repo/src/io/binary_cache.cc" "src/CMakeFiles/tilespmv.dir/io/binary_cache.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/io/binary_cache.cc.o.d"
  "/root/repo/src/io/edge_list.cc" "src/CMakeFiles/tilespmv.dir/io/edge_list.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/io/edge_list.cc.o.d"
  "/root/repo/src/io/matrix_market.cc" "src/CMakeFiles/tilespmv.dir/io/matrix_market.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/io/matrix_market.cc.o.d"
  "/root/repo/src/kernels/cpu_csr.cc" "src/CMakeFiles/tilespmv.dir/kernels/cpu_csr.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/cpu_csr.cc.o.d"
  "/root/repo/src/kernels/gpu_common.cc" "src/CMakeFiles/tilespmv.dir/kernels/gpu_common.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/gpu_common.cc.o.d"
  "/root/repo/src/kernels/registry.cc" "src/CMakeFiles/tilespmv.dir/kernels/registry.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/registry.cc.o.d"
  "/root/repo/src/kernels/spmv_coo.cc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_coo.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_coo.cc.o.d"
  "/root/repo/src/kernels/spmv_csr5.cc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_csr5.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_csr5.cc.o.d"
  "/root/repo/src/kernels/spmv_csr_scalar.cc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_csr_scalar.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_csr_scalar.cc.o.d"
  "/root/repo/src/kernels/spmv_csr_vector.cc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_csr_vector.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_csr_vector.cc.o.d"
  "/root/repo/src/kernels/spmv_dia.cc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_dia.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_dia.cc.o.d"
  "/root/repo/src/kernels/spmv_ell.cc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_ell.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_ell.cc.o.d"
  "/root/repo/src/kernels/spmv_hyb.cc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_hyb.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_hyb.cc.o.d"
  "/root/repo/src/kernels/spmv_merge_csr.cc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_merge_csr.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_merge_csr.cc.o.d"
  "/root/repo/src/kernels/spmv_pkt.cc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_pkt.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_pkt.cc.o.d"
  "/root/repo/src/kernels/spmv_sell.cc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_sell.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/kernels/spmv_sell.cc.o.d"
  "/root/repo/src/multigpu/cluster.cc" "src/CMakeFiles/tilespmv.dir/multigpu/cluster.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/multigpu/cluster.cc.o.d"
  "/root/repo/src/multigpu/comm_analysis.cc" "src/CMakeFiles/tilespmv.dir/multigpu/comm_analysis.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/multigpu/comm_analysis.cc.o.d"
  "/root/repo/src/multigpu/distributed_engine.cc" "src/CMakeFiles/tilespmv.dir/multigpu/distributed_engine.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/multigpu/distributed_engine.cc.o.d"
  "/root/repo/src/multigpu/distributed_pagerank.cc" "src/CMakeFiles/tilespmv.dir/multigpu/distributed_pagerank.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/multigpu/distributed_pagerank.cc.o.d"
  "/root/repo/src/multigpu/out_of_core.cc" "src/CMakeFiles/tilespmv.dir/multigpu/out_of_core.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/multigpu/out_of_core.cc.o.d"
  "/root/repo/src/multigpu/partition.cc" "src/CMakeFiles/tilespmv.dir/multigpu/partition.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/multigpu/partition.cc.o.d"
  "/root/repo/src/sparse/convert.cc" "src/CMakeFiles/tilespmv.dir/sparse/convert.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/sparse/convert.cc.o.d"
  "/root/repo/src/sparse/coo.cc" "src/CMakeFiles/tilespmv.dir/sparse/coo.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/sparse/coo.cc.o.d"
  "/root/repo/src/sparse/csc.cc" "src/CMakeFiles/tilespmv.dir/sparse/csc.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/sparse/csc.cc.o.d"
  "/root/repo/src/sparse/csr.cc" "src/CMakeFiles/tilespmv.dir/sparse/csr.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/sparse/csr.cc.o.d"
  "/root/repo/src/sparse/dia.cc" "src/CMakeFiles/tilespmv.dir/sparse/dia.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/sparse/dia.cc.o.d"
  "/root/repo/src/sparse/ell.cc" "src/CMakeFiles/tilespmv.dir/sparse/ell.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/sparse/ell.cc.o.d"
  "/root/repo/src/sparse/hyb.cc" "src/CMakeFiles/tilespmv.dir/sparse/hyb.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/sparse/hyb.cc.o.d"
  "/root/repo/src/sparse/matrix_stats.cc" "src/CMakeFiles/tilespmv.dir/sparse/matrix_stats.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/sparse/matrix_stats.cc.o.d"
  "/root/repo/src/sparse/permute.cc" "src/CMakeFiles/tilespmv.dir/sparse/permute.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/sparse/permute.cc.o.d"
  "/root/repo/src/sparse/pkt.cc" "src/CMakeFiles/tilespmv.dir/sparse/pkt.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/sparse/pkt.cc.o.d"
  "/root/repo/src/util/ascii_plot.cc" "src/CMakeFiles/tilespmv.dir/util/ascii_plot.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/util/ascii_plot.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/tilespmv.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/tilespmv.dir/util/status.cc.o" "gcc" "src/CMakeFiles/tilespmv.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
