# Empty dependencies file for tilespmv.
# This may be replaced when dependencies are built.
