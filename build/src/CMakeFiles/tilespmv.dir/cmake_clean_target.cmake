file(REMOVE_RECURSE
  "libtilespmv.a"
)
