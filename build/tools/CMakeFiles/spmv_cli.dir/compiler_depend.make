# Empty compiler generated dependencies file for spmv_cli.
# This may be replaced when dependencies are built.
