file(REMOVE_RECURSE
  "CMakeFiles/spmv_cli.dir/spmv_cli.cc.o"
  "CMakeFiles/spmv_cli.dir/spmv_cli.cc.o.d"
  "spmv_cli"
  "spmv_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
