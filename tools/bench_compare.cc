// Perf-regression gate: diffs a fresh bench_serve run against the committed
// baseline (BENCH_serve.json) and fails when a watched metric regresses past
// its per-metric threshold.
//
//   bench_compare <fresh.json> <baseline.json> [--check] [--warn-only]
//                 [--tol-pct=F]
//
// Either input may be a committed BENCH_*.json file (metrics nested under
// "summary") or raw bench_serve stdout (the summary printed as its own JSON
// line) — metrics are located by section name, so both layouts parse the
// same way.
//
// The watched metrics are the scale-invariant summary ratios (speedups,
// pass/fail verdicts) plus the modeled absolute costs. Checks are one-sided:
// only movement in the *worse* direction counts, so running a reduced
// profile (`--quick`) against a full-size baseline flags a lost speedup but
// not the smaller problem's faster absolute times.
//
// Exit codes: 0 ok (or informational run without --check, or --warn-only),
// 1 regression under --check, 2 malformed input / missing metric.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

/// Reads `path` fully. `*exists` distinguishes "file missing" from "file
/// present but empty/unreadable" so the caller can emit the right typed
/// error (and the right fix: regenerate vs inspect).
std::string ReadAll(const char* path, bool* exists) {
  std::FILE* in = std::fopen(path, "rb");
  *exists = in != nullptr;
  if (in == nullptr) return "";
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) data.append(buf, n);
  std::fclose(in);
  return data;
}

/// Typed input-validation error: one clear line + the command that
/// regenerates the file, never a stack trace or a NaN-filled table.
int InputError(const char* code, const char* path, const char* what) {
  std::fprintf(stderr, "error: %s: %s: %s\n", code, path, what);
  std::fprintf(stderr,
               "hint: regenerate with `bench_serve --quick > %s` (or restore "
               "the committed baseline)\n",
               path);
  return 2;
}

/// Finds the balanced-brace region of `"name": {...}`. Returns false when
/// the key is absent or the object never closes (truncated file).
bool FindObject(const std::string& s, const char* name, size_t* begin,
                size_t* end) {
  std::string needle = std::string("\"") + name + "\"";
  size_t at = s.find(needle);
  if (at == std::string::npos) return false;
  size_t open = s.find('{', at + needle.size());
  if (open == std::string::npos) return false;
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    char c = s[i];
    if (c == '"') {
      for (++i; i < s.size() && s[i] != '"'; ++i) {
        if (s[i] == '\\') ++i;
      }
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) {
        *begin = open;
        *end = i;
        return true;
      }
    }
  }
  return false;
}

/// Reads `"key": <number|true|false>` inside [begin, end). NaN when absent;
/// booleans read as 1/0 so pass-flags diff like any other metric.
double FindValue(const std::string& s, size_t begin, size_t end,
                 const char* key) {
  std::string needle = std::string("\"") + key + "\":";
  size_t at = s.find(needle, begin);
  if (at == std::string::npos || at >= end) return NAN;
  size_t v = at + needle.size();
  while (v < end && (s[v] == ' ' || s[v] == '\t')) ++v;
  if (s.compare(v, 4, "true") == 0) return 1.0;
  if (s.compare(v, 5, "false") == 0) return 0.0;
  return std::strtod(s.c_str() + v, nullptr);
}

/// One watched metric: where it lives, which way is better, how much
/// one-sided slack it gets before --check fails.
struct MetricRule {
  const char* section;  ///< Top-level summary object to search in.
  const char* subsection;  ///< Nested object, or nullptr.
  const char* key;
  bool higher_better;
  double tol_pct;  ///< Allowed regression before failing, in percent.
};

// Ratios get slack for wall-clock jitter plus the amortization lost to the
// reduced `--quick` profile (smaller graphs amortize less, so its speedups
// sit ~25% under the full-size baseline); modeled per-query costs are
// deterministic for a fixed profile, so their tolerance only absorbs
// cost-model tuning. pass-flags get zero slack: a true -> false flip is
// always a regression.
constexpr MetricRule kRules[] = {
    {"plan_cache", nullptr, "speedup", true, 35.0},
    {"plan_cache", nullptr, "pass", true, 0.0},
    {"coalescing", nullptr, "speedup", true, 35.0},
    {"coalescing", nullptr, "coalesced_modeled_qps", true, 20.0},
    {"coalescing", nullptr, "mean_batch", true, 20.0},
    {"coalescing", nullptr, "pass", true, 0.0},
    {"spmm_batch", nullptr, "k8_vs_k1_speedup", true, 35.0},
    {"spmm_batch", "per_query_ms", "k1", false, 25.0},
    {"spmm_batch", "per_query_ms", "k8", false, 25.0},
    {"spmm_batch", "per_query_ms", "k16", false, 25.0},
    {"spmm_batch", nullptr, "pass", true, 0.0},
    // Host SIMD fast path: measured wall clock, so the ratio gets the same
    // jitter slack the other wall-clock ratios do. The pass flag is the
    // hard >= 2x AVX2 acceptance gate.
    {"host_spmv", nullptr, "avx2_speedup", true, 35.0},
    {"host_spmv", nullptr, "best_speedup", true, 35.0},
    {"host_spmv", nullptr, "pass", true, 0.0},
    // Pipelined task-graph loop vs its fork-join twin (docs/PARALLELISM.md
    // "Task graphs"): measured wall-clock ratio, so it gets the jitter +
    // reduced-profile slack; the pass flag is the hard acceptance gate
    // (>= 1.15x full profile, >= 1.05x on --quick).
    {"pipeline_overlap", nullptr, "speedup", true, 35.0},
    {"pipeline_overlap", nullptr, "pass", true, 0.0},
};

/// NaN when the section/key is missing or the file is malformed.
double Extract(const std::string& doc, const MetricRule& rule) {
  size_t begin, end;
  if (!FindObject(doc, rule.section, &begin, &end)) return NAN;
  if (rule.subsection != nullptr) {
    std::string inner = doc.substr(begin, end - begin + 1);
    if (!FindObject(inner, rule.subsection, &begin, &end)) return NAN;
    return FindValue(inner, begin, end, rule.key);
  }
  return FindValue(doc, begin, end, rule.key);
}

int Run(int argc, char** argv) {
  const char* fresh_path = nullptr;
  const char* base_path = nullptr;
  bool check = false;
  bool warn_only = false;
  double tol_override = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--warn-only") == 0) {
      warn_only = true;
    } else if (std::strncmp(argv[i], "--tol-pct=", 10) == 0) {
      tol_override = std::atof(argv[i] + 10);
    } else if (fresh_path == nullptr) {
      fresh_path = argv[i];
    } else if (base_path == nullptr) {
      base_path = argv[i];
    } else {
      std::fprintf(stderr, "error: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (fresh_path == nullptr || base_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_compare <fresh.json> <baseline.json> "
                 "[--check] [--warn-only] [--tol-pct=F]\n");
    return 2;
  }

  bool fresh_exists = false, base_exists = false;
  std::string fresh = ReadAll(fresh_path, &fresh_exists);
  std::string base = ReadAll(base_path, &base_exists);
  if (!fresh_exists) return InputError("IO_ERROR", fresh_path, "no such file");
  if (!base_exists) return InputError("IO_ERROR", base_path, "no such file");
  if (fresh.empty()) return InputError("IO_ERROR", fresh_path, "file is empty");
  if (base.empty()) return InputError("IO_ERROR", base_path, "file is empty");
  // Cheap structural sanity before diving into metric extraction: both
  // inputs must contain at least one JSON object. Catches truncated or
  // non-JSON files with a typed error instead of a NaN-riddled table.
  size_t sb, se;
  if (!FindObject(fresh, "plan_cache", &sb, &se) &&
      !FindObject(fresh, "summary", &sb, &se)) {
    return InputError("INVALID_ARGUMENT", fresh_path,
                      "malformed or truncated JSON (no summary sections)");
  }
  if (!FindObject(base, "plan_cache", &sb, &se) &&
      !FindObject(base, "summary", &sb, &se)) {
    return InputError("INVALID_ARGUMENT", base_path,
                      "malformed or truncated JSON (no summary sections)");
  }

  std::printf("%-36s %12s %12s %9s  %s\n", "metric", "baseline", "fresh",
              "delta", "verdict");
  int regressions = 0;
  int compared = 0;
  for (const MetricRule& rule : kRules) {
    std::string name = std::string(rule.section) + ".";
    if (rule.subsection != nullptr) name += std::string(rule.subsection) + ".";
    name += rule.key;
    double b = Extract(base, rule);
    double f = Extract(fresh, rule);
    if (std::isnan(b)) {
      // Older baselines may predate a metric; note it and move on.
      std::printf("%-36s %12s %12.4g %9s  skipped (not in baseline)\n",
                  name.c_str(), "-", f, "-");
      continue;
    }
    if (std::isnan(f)) {
      std::fprintf(stderr,
                   "error: %s: metric %s missing — malformed or truncated "
                   "bench output\n",
                   fresh_path, name.c_str());
      return 2;
    }
    ++compared;
    double tol = tol_override >= 0 && rule.tol_pct > 0 ? tol_override
                                                       : rule.tol_pct;
    double delta_pct = b != 0 ? 100.0 * (f - b) / std::fabs(b)
                              : (f == 0 ? 0.0 : 100.0);
    double regression_pct = rule.higher_better ? -delta_pct : delta_pct;
    bool bad = regression_pct > tol;
    if (bad) ++regressions;
    std::printf("%-36s %12.4g %12.4g %+8.1f%%  %s (%s, tol %.0f%%)\n",
                name.c_str(), b, f, delta_pct,
                bad ? (warn_only ? "WARN" : "FAIL") : "ok",
                rule.higher_better ? "higher-better" : "lower-better", tol);
  }
  if (compared == 0) {
    std::fprintf(stderr,
                 "error: no watched metrics found in %s — not bench_serve "
                 "output?\n",
                 base_path);
    return 2;
  }
  if (regressions > 0) {
    std::fprintf(stderr, "%s: %d of %d watched metrics regressed past "
                 "tolerance vs %s\n",
                 warn_only || !check ? "warning" : "error", regressions,
                 compared, base_path);
  } else {
    std::printf("all %d watched metrics within tolerance\n", compared);
  }
  return (check && !warn_only && regressions > 0) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
