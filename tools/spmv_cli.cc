// tilespmv command-line tool: load a graph/matrix (MatrixMarket, edge list,
// or binary cache), inspect it, run SpMV kernels or the graph-mining
// algorithms on the modeled device, and convert between formats.
//
//   spmv_cli stats    <file>
//   spmv_cli spmv     <file> [--kernel=NAME|auto] [--device=c1060|c2050]
//                            [--verbose]
//   spmv_cli autotune <file> [--device=...]
//   spmv_cli pagerank <file> [--kernel=...] [--damping=0.85] [--top=10]
//   spmv_cli hits     <file> [--kernel=...] [--top=10]
//   spmv_cli rwr      <file> --node=K[,K2,...] [--kernel=...] [--top=10]
//   spmv_cli katz     <file> [--kernel=...] [--top=10]
//   spmv_cli salsa    <file> [--kernel=...] [--top=10]
//   spmv_cli convert  <in> <out>          (format chosen by extension)
//   spmv_cli generate <dataset> <out> [--scale=0.125]
//   spmv_cli list-kernels                 (backends, SIMD tiers, determinism)
//
// Extensions: .mtx MatrixMarket, .bin tilespmv binary, anything else is
// parsed as a whitespace edge list.
#include <algorithm>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <numeric>
#include <string>
#include <vector>

#include "core/kernel_select.h"
#include "core/tile_composite.h"
#include "gen/datasets.h"
#include "graph/centrality.h"
#include "graph/hits.h"
#include "graph/pagerank.h"
#include "graph/rwr.h"
#include "io/binary_cache.h"
#include "io/edge_list.h"
#include "io/matrix_market.h"
#include "kernels/spmv.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "robust/fault_injection.h"
#include "serve/engine.h"
#include "simd/caps.h"
#include "sparse/matrix_stats.h"
#include "spmm/block_select.h"
#include "spmm/spmm.h"
#include "util/ascii_plot.h"

namespace tilespmv::cli {
namespace {

struct Flags {
  std::string kernel = "tile-composite";
  std::string device = "c1060";
  double damping = 0.85;
  double scale = 0.0;
  int top = 10;
  std::vector<int32_t> nodes;  // --node=K or --node=K1,K2,...
  bool verbose = false;
  // Compute-pool size for every subcommand: 0 = hardware concurrency,
  // -1 = unset (pool keeps its TILESPMV_THREADS/hardware default). The
  // serve subcommand also sizes its engine workers from this (default 4).
  int threads = -1;
  // serve subcommand.
  int queries = 64;
  double window_ms = 2.0;
  double deadline_ms = 0.0;  // Default per-request deadline; 0 = none.
  // Flight recorder: slow-query dump threshold (0 = deadline misses only),
  // JSONL dump file, and a full query-journal JSON dump path.
  double slow_ms = 0.0;
  std::string flight_dump;
  std::string query_log;
  // SpMM panel width for rwr/serve: one of spmm::kBlockWidths, 0 = unset
  // (fall back to TILESPMV_BLOCK_COLS, then auto-select).
  int block_cols = 0;
  // Fault injection (any subcommand): a robust::FaultInjector spec like
  // "plan_cache/build:p=0.5;io/*;seed=7". Requires a -DTILESPMV_FAULTS=ON
  // build; an error otherwise. Overrides the TILESPMV_FAULTS env var.
  std::string faults;
  // serve: force the brownout ladder to a fixed level 0-3 (-1 = adaptive).
  int brownout = -1;
  // Observability (any subcommand).
  std::string trace_out;    // Chrome trace_event JSON.
  std::string metrics_out;  // Prometheus text, or JSON if path ends in .json.
  // Host SIMD tier override (any subcommand): off|scalar|avx2|avx512|auto.
  // Unlike the TILESPMV_SIMD env var (which clamps down), an explicit
  // --simd= the host cannot run is an error.
  std::string simd;
};

/// Parses the whole string as a double; rejects trailing garbage.
bool ParseDouble(const char* s, double* out) {
  if (*s == '\0') return false;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

/// Parses the whole string as an int; rejects trailing garbage and overflow.
bool ParseInt(const char* s, int* out) {
  if (*s == '\0') return false;
  char* end = nullptr;
  long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

/// Strict flag parsing: unknown flags and malformed values are errors, not
/// silently ignored/zeroed.
Status ParseFlags(int argc, char** argv, int first, Flags* f) {
  for (int i = first; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--kernel=", 9) == 0) {
      f->kernel = a + 9;
    } else if (std::strncmp(a, "--device=", 9) == 0) {
      f->device = a + 9;
    } else if (std::strncmp(a, "--damping=", 10) == 0) {
      if (!ParseDouble(a + 10, &f->damping))
        return Status::InvalidArgument(std::string("bad number in ") + a);
    } else if (std::strncmp(a, "--scale=", 8) == 0) {
      if (!ParseDouble(a + 8, &f->scale))
        return Status::InvalidArgument(std::string("bad number in ") + a);
    } else if (std::strncmp(a, "--top=", 6) == 0) {
      if (!ParseInt(a + 6, &f->top))
        return Status::InvalidArgument(std::string("bad number in ") + a);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      if (!ParseInt(a + 10, &f->threads) || f->threads < 0)
        return Status::InvalidArgument(std::string("bad number in ") + a);
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      if (!ParseInt(a + 10, &f->queries) || f->queries < 1)
        return Status::InvalidArgument(std::string("bad number in ") + a);
    } else if (std::strncmp(a, "--window-ms=", 12) == 0) {
      if (!ParseDouble(a + 12, &f->window_ms) || f->window_ms < 0)
        return Status::InvalidArgument(std::string("bad number in ") + a);
    } else if (std::strncmp(a, "--deadline-ms=", 14) == 0) {
      if (!ParseDouble(a + 14, &f->deadline_ms) || f->deadline_ms < 0)
        return Status::InvalidArgument(std::string("bad number in ") + a);
    } else if (std::strncmp(a, "--slow-ms=", 10) == 0) {
      if (!ParseDouble(a + 10, &f->slow_ms) || f->slow_ms < 0)
        return Status::InvalidArgument(std::string("bad number in ") + a);
    } else if (std::strncmp(a, "--flight-dump=", 14) == 0) {
      f->flight_dump = a + 14;
    } else if (std::strncmp(a, "--query-log=", 12) == 0) {
      f->query_log = a + 12;
    } else if (std::strncmp(a, "--block-cols=", 13) == 0) {
      if (!spmm::ParseBlockCols(a + 13, &f->block_cols))
        return Status::InvalidArgument(
            std::string("bad block width in ") + a +
            " (want one of 1, 2, 4, 8, 16)");
    } else if (std::strncmp(a, "--node=", 7) == 0) {
      const char* p = a + 7;
      for (;;) {
        const char* comma = std::strchr(p, ',');
        std::string piece =
            comma == nullptr ? std::string(p) : std::string(p, comma);
        int node = 0;
        if (!ParseInt(piece.c_str(), &node))
          return Status::InvalidArgument(std::string("bad number in ") + a);
        f->nodes.push_back(node);
        if (comma == nullptr) break;
        p = comma + 1;
      }
    } else if (std::strncmp(a, "--faults=", 9) == 0) {
      f->faults = a + 9;
      if (f->faults.empty())
        return Status::InvalidArgument("empty --faults spec");
    } else if (std::strncmp(a, "--brownout=", 11) == 0) {
      if (!ParseInt(a + 11, &f->brownout) || f->brownout < 0 ||
          f->brownout > 3)
        return Status::InvalidArgument(std::string("bad level in ") + a +
                                       " (want 0-3)");
    } else if (std::strncmp(a, "--trace-out=", 12) == 0) {
      f->trace_out = a + 12;
    } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
      f->metrics_out = a + 14;
    } else if (std::strncmp(a, "--simd=", 7) == 0) {
      f->simd = a + 7;
    } else if (std::strcmp(a, "--verbose") == 0) {
      f->verbose = true;
    } else {
      return Status::InvalidArgument(std::string("unknown flag ") + a);
    }
  }
  return Status::OK();
}

bool EndsWith(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Result<CsrMatrix> Load(const std::string& path) {
  if (EndsWith(path, ".mtx")) return ReadMatrixMarket(path);
  if (EndsWith(path, ".bin")) return ReadBinaryMatrix(path);
  return ReadEdgeList(path, EdgeListOptions{});
}

Status Save(const CsrMatrix& a, const std::string& path) {
  if (EndsWith(path, ".mtx")) return WriteMatrixMarket(a, path);
  if (EndsWith(path, ".bin")) return WriteBinaryMatrix(a, path);
  return WriteEdgeList(a, path);
}

gpusim::DeviceSpec DeviceFor(const Flags& f) {
  if (f.device == "c2050") return gpusim::DeviceSpec::FermiC2050();
  return gpusim::DeviceSpec::TeslaC1060();
}

/// SpMM panel width for rwr/serve: --block-cols beats TILESPMV_BLOCK_COLS
/// beats `fallback`. A set-but-invalid env value is an error.
Result<int> ResolveBlockCols(const Flags& f, int fallback) {
  if (f.block_cols > 0) return f.block_cols;
  return spmm::BlockColsFromEnv(fallback);
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

void PrintTop(const std::vector<float>& scores, int top, const char* what) {
  std::vector<int32_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  top = std::min<int>(top, static_cast<int>(order.size()));
  std::partial_sort(order.begin(), order.begin() + top, order.end(),
                    [&](int32_t a, int32_t b) {
                      return scores[a] > scores[b];
                    });
  std::printf("top %d nodes by %s:\n", top, what);
  for (int i = 0; i < top; ++i) {
    std::printf("  %8d  %.6g\n", order[i], scores[order[i]]);
  }
}

int CmdStats(const std::string& path) {
  Result<CsrMatrix> a = Load(path);
  if (!a.ok()) return Fail(a.status());
  MatrixStats s = ComputeStats(a.value());
  std::printf("%s\n", s.ToString().c_str());
  std::printf("row lengths: mean=%.2f median=%.0f max=%lld top1%%mass=%.3f\n",
              s.row_dist.mean, s.row_dist.median,
              static_cast<long long>(s.row_dist.max), s.row_dist.top1pct_mass);
  std::printf("col lengths: mean=%.2f median=%.0f max=%lld top1%%mass=%.3f\n",
              s.col_dist.mean, s.col_dist.median,
              static_cast<long long>(s.col_dist.max), s.col_dist.top1pct_mass);
  std::printf("\nout-degree distribution:\n%s",
              LogLogHistogram(a.value().RowLengths()).c_str());
  return 0;
}

int CmdSpmv(const std::string& path, const Flags& f) {
  Result<CsrMatrix> a = Load(path);
  if (!a.ok()) return Fail(a.status());
  gpusim::DeviceSpec device = DeviceFor(f);
  std::string name = f.kernel;
  if (name == "auto-host") {
    std::printf("host kernel selection (simd tier %s):\n",
                simd::TierName(simd::ResolvedTier()));
    for (const KernelPrediction& p : PredictHostKernelChoices(a.value())) {
      std::printf("  %-16s predicted %10.1f us\n", p.kernel.c_str(),
                  p.predicted_seconds * 1e6);
    }
    name = SelectHostKernel(a.value());
  } else if (name == "auto") {
    PerfModel model(device);
    std::printf("model-driven kernel selection:\n");
    for (const KernelPrediction& p :
         PredictKernelChoices(a.value(), model)) {
      std::printf("  %-16s predicted %10.1f us\n", p.kernel.c_str(),
                  p.predicted_seconds * 1e6);
    }
    name = SelectKernel(a.value(), model);
  }
  auto kernel = CreateKernel(name, device);
  if (kernel == nullptr)
    return Fail(Status::InvalidArgument("unknown kernel " + name));
  Status st = kernel->Setup(a.value());
  if (!st.ok()) return Fail(st);
  const KernelTiming& t = kernel->timing();
  std::printf(
      "%s on %s: %.1f us/SpMV, %.2f GFLOPS, %.2f GB/s, tex hit %.1f%%, "
      "%d launches, %.1f MB device memory\n",
      name.c_str(), f.device.c_str(), t.seconds * 1e6, t.gflops(), t.gbps(),
      100 * t.TexHitRate(), t.launches, t.device_bytes / 1e6);
  if (f.verbose) {
    std::printf("per-launch breakdown:\n");
    for (size_t i = 0; i < t.launch_details.size(); ++i) {
      const gpusim::LaunchEstimate& l = t.launch_details[i];
      std::printf(
          "  launch %2zu: %8.1f us  (compute %.1f us, memory %.1f us, "
          "%d wave%s, camping %.2f, %s-bound)\n",
          i, l.seconds * 1e6, l.compute_seconds * 1e6,
          l.memory_seconds * 1e6, l.waves, l.waves == 1 ? "" : "s",
          l.worst_camping_factor,
          l.memory_seconds > l.compute_seconds ? "memory" : "compute");
    }
  }
  return 0;
}

int CmdAutotune(const std::string& path, const Flags& f) {
  Result<CsrMatrix> a = Load(path);
  if (!a.ok()) return Fail(a.status());
  TileCompositeKernel kernel(DeviceFor(f));
  Status st = kernel.Setup(a.value());
  if (!st.ok()) return Fail(st);
  std::printf("tiles: %d  workload sizes:", kernel.num_tiles());
  for (int64_t wl : kernel.workload_sizes())
    std::printf(" %lld", static_cast<long long>(wl));
  std::printf("\npredicted %.1f us, simulated %.1f us (%.2f GFLOPS)\n",
              kernel.predicted_seconds() * 1e6,
              kernel.timing().seconds * 1e6, kernel.timing().gflops());
  return 0;
}

int CmdPageRank(const std::string& path, const Flags& f) {
  Result<CsrMatrix> a = Load(path);
  if (!a.ok()) return Fail(a.status());
  auto kernel = CreateKernel(f.kernel, DeviceFor(f));
  if (kernel == nullptr)
    return Fail(Status::InvalidArgument("unknown kernel " + f.kernel));
  PageRankOptions opts;
  opts.damping = static_cast<float>(f.damping);
  Result<IterativeResult> r = RunPageRank(a.value(), kernel.get(), opts);
  if (!r.ok()) return Fail(r.status());
  std::printf("%d iterations (%sconverged), modeled %.4f s (%.2f GFLOPS)\n",
              r.value().iterations, r.value().converged ? "" : "NOT ",
              r.value().gpu_seconds, r.value().gflops());
  std::printf("convergence: %s\n",
              LogSparkline(r.value().delta_history).c_str());
  PrintTop(r.value().result, f.top, "PageRank");
  return 0;
}

int CmdKatz(const std::string& path, const Flags& f) {
  Result<CsrMatrix> a = Load(path);
  if (!a.ok()) return Fail(a.status());
  auto kernel = CreateKernel(f.kernel, DeviceFor(f));
  if (kernel == nullptr)
    return Fail(Status::InvalidArgument("unknown kernel " + f.kernel));
  Result<IterativeResult> r = RunKatz(a.value(), kernel.get(), KatzOptions{});
  if (!r.ok()) return Fail(r.status());
  std::printf("%d iterations (%sconverged), modeled %.4f s\n",
              r.value().iterations, r.value().converged ? "" : "NOT ",
              r.value().gpu_seconds);
  PrintTop(r.value().result, f.top, "Katz centrality");
  return 0;
}

int CmdSalsa(const std::string& path, const Flags& f) {
  Result<CsrMatrix> a = Load(path);
  if (!a.ok()) return Fail(a.status());
  auto kernel = CreateKernel(f.kernel, DeviceFor(f));
  if (kernel == nullptr)
    return Fail(Status::InvalidArgument("unknown kernel " + f.kernel));
  Result<SalsaScores> r = RunSalsa(a.value(), kernel.get(), SalsaOptions{});
  if (!r.ok()) return Fail(r.status());
  std::printf("%d iterations, modeled %.4f s\n", r.value().stats.iterations,
              r.value().stats.gpu_seconds);
  PrintTop(r.value().authority, f.top, "SALSA authority");
  PrintTop(r.value().hub, f.top, "SALSA hub");
  return 0;
}

int CmdHits(const std::string& path, const Flags& f) {
  Result<CsrMatrix> a = Load(path);
  if (!a.ok()) return Fail(a.status());
  auto kernel = CreateKernel(f.kernel, DeviceFor(f));
  Result<HitsScores> r = RunHits(a.value(), kernel.get(), HitsOptions{});
  if (!r.ok()) return Fail(r.status());
  std::printf("%d iterations, modeled %.4f s\n", r.value().stats.iterations,
              r.value().stats.gpu_seconds);
  PrintTop(r.value().authority, f.top, "authority");
  PrintTop(r.value().hub, f.top, "hub");
  return 0;
}

int CmdRwr(const std::string& path, const Flags& f) {
  if (f.nodes.empty())
    return Fail(Status::InvalidArgument("rwr requires --node=K[,K2,...]"));
  Result<CsrMatrix> a = Load(path);
  if (!a.ok()) return Fail(a.status());
  auto kernel = CreateKernel(f.kernel, DeviceFor(f));
  if (kernel == nullptr)
    return Fail(Status::InvalidArgument("unknown kernel " + f.kernel));

  // Attach the blocked (SpMM) sibling when the kernel has one: batched
  // queries then share one matrix sweep per panel. --block-cols /
  // TILESPMV_BLOCK_COLS force the panel width; default is the largest
  // width the batch fills.
  const int auto_width = spmm::LargestBlockColsAtMost(
      std::min<int>(static_cast<int>(f.nodes.size()), spmm::kMaxBlockCols));
  Result<int> width = ResolveBlockCols(f, auto_width);
  if (!width.ok()) return Fail(width.status());
  const bool forced =
      f.block_cols > 0 || std::getenv(spmm::kBlockColsEnvVar) != nullptr;
  const std::string spmm_name = spmm::SpmmKernelNameForSpmv(f.kernel);
  if (forced && spmm_name.empty()) {
    return Fail(Status::InvalidArgument(
        "kernel " + f.kernel + " has no blocked (SpMM) sibling; "
        "--block-cols does not apply"));
  }
  std::unique_ptr<spmm::SpMMKernel> spmm_kernel;
  RwrOptions opts;
  if (!spmm_name.empty()) {
    spmm_kernel = spmm::CreateSpMMKernel(spmm_name, DeviceFor(f));
    opts.block_cols = width.value();
  }
  RwrEngine engine = spmm_kernel != nullptr
                         ? RwrEngine(kernel.get(), spmm_kernel.get())
                         : RwrEngine(kernel.get());
  Status st = engine.Init(a.value(), opts);
  if (!st.ok()) return Fail(st);
  // Multiple nodes run as one batch: the matrix stream is shared on the
  // device, so per-query cost amortizes.
  RwrBatchExecution exec;
  Result<std::vector<RwrResult>> r = engine.QueryBatch(f.nodes, opts, &exec);
  if (!r.ok()) return Fail(r.status());
  if (exec.blocked) {
    std::printf("blocked execution: %s, panel width %d, %lld sweeps for "
                "%lld vector-iterations\n",
                spmm_name.c_str(), exec.block_cols,
                static_cast<long long>(exec.sweeps),
                static_cast<long long>(exec.vectors));
  }
  for (size_t q = 0; q < f.nodes.size(); ++q) {
    const RwrResult& res = r.value()[q];
    std::printf("query %d: %d iterations, modeled %.4f s%s\n", f.nodes[q],
                res.stats.iterations, res.stats.gpu_seconds,
                f.nodes.size() > 1 ? " (batched)" : "");
    PrintTop(res.scores, f.top, "RWR relevance");
  }
  return 0;
}

/// Stands up a serving engine on the loaded graph and drives a synthetic
/// mixed workload through it (half RWR — which coalesces — plus repeated
/// identical PageRank and HITS queries — which dedup), then dumps the
/// engine's stats JSON. A smoke-testable miniature of the serving story;
/// bench_serve measures it properly.
int CmdServe(const std::string& path, const Flags& f) {
  Result<CsrMatrix> a = Load(path);
  if (!a.ok()) return Fail(a.status());
  const int32_t n = a.value().rows;
  if (n == 0) return Fail(Status::InvalidArgument("empty graph"));

  serve::EngineOptions opts;
  opts.num_threads = f.threads > 0 ? f.threads
                     : f.threads == 0 ? par::ThreadPool::DefaultThreadCount()
                                      : 4;
  opts.batch_window_seconds = f.window_ms * 1e-3;
  opts.default_deadline_seconds = f.deadline_ms * 1e-3;
  opts.slow_query_seconds = f.slow_ms * 1e-3;
  opts.flight_dump_path = f.flight_dump;
  opts.default_kernel = f.kernel;
  opts.default_device = f.device;
  // 0 = auto (engine picks the largest width its batch cap fills).
  Result<int> width = ResolveBlockCols(f, 0);
  if (!width.ok()) return Fail(width.status());
  opts.spmm_block_cols = width.value();
  if (f.brownout >= 0) opts.brownout.force_level = f.brownout;
  // Share the process-global registry so --metrics-out sees serve metrics.
  opts.metrics = &obs::MetricsRegistry::Global();
  serve::Engine engine(opts);
  Status st = engine.AddGraph("g", a.take());
  if (!st.ok()) return Fail(st);

  std::vector<std::future<serve::QueryResponse>> futures;
  futures.reserve(static_cast<size_t>(f.queries));
  for (int i = 0; i < f.queries; ++i) {
    serve::QueryKind kind;
    serve::QueryParams params;
    params.damping = static_cast<float>(f.damping);
    if (i % 4 == 0) {
      kind = serve::QueryKind::kPageRank;
    } else if (i % 4 == 1) {
      kind = serve::QueryKind::kHits;
    } else {
      kind = serve::QueryKind::kRwr;
      params.node = static_cast<int32_t>(i) % n;
    }
    futures.push_back(engine.Submit("g", kind, params));
  }

  int ok = 0, failed = 0, missed = 0, cache_hits = 0, deduped = 0,
      batched = 0;
  for (auto& fut : futures) {
    serve::QueryResponse r = fut.get();
    if (r.status.ok()) {
      ++ok;
      if (r.plan_cache_hit) ++cache_hits;
      if (r.deduped) ++deduped;
      if (r.batch_size > 1) ++batched;
    } else if (r.status.code() == StatusCode::kDeadlineExceeded) {
      // An expected outcome when --deadline-ms is set — the flight recorder
      // dumps these; they do not fail the command.
      ++missed;
    } else {
      ++failed;
      if (f.verbose)
        std::fprintf(stderr, "query failed: %s\n",
                     r.status.ToString().c_str());
    }
  }
  // Refresh the plan-cache/uptime gauges into the shared registry so the
  // final --metrics-out dump includes them.
  if (!f.metrics_out.empty()) (void)engine.MetricsText();
  engine.Shutdown();
  std::printf(
      "served %d queries (%d ok, %d deadline-missed, %d failed): "
      "%d plan-cache hits, %d deduped, %d in coalesced batches\n",
      f.queries, ok, missed, failed, cache_hits, deduped, batched);
  const uint64_t dumps = engine.journal().dumped_total();
  if (dumps > 0) {
    std::fprintf(stderr,
                 "flight recorder: %llu dump%s (deadline misses / slow "
                 "queries)%s%s\n",
                 static_cast<unsigned long long>(dumps), dumps == 1 ? "" : "s",
                 f.flight_dump.empty() ? "" : " appended to ",
                 f.flight_dump.c_str());
  }
  if (!f.query_log.empty()) {
    std::string json = engine.journal().ToJson();
    FILE* out = std::fopen(f.query_log.c_str(), "w");
    if (out == nullptr)
      return Fail(Status::IoError("cannot open " + f.query_log));
    size_t written = std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    if (written != json.size())
      return Fail(Status::IoError("short write to " + f.query_log));
    std::fprintf(stderr, "wrote query journal (%zu records) to %s\n",
                 engine.journal().size(), f.query_log.c_str());
  }
  std::printf("%s\n", engine.stats().ToJson().c_str());
  // Deadline-missed queries are an expected outcome when --deadline-ms is
  // set; only unexpected failures make the command fail.
  return failed == 0 ? 0 : 1;
}

/// Lists every SpMV and SpMM kernel with its execution backend, the SIMD
/// tier a plan built right now would freeze (--simd / TILESPMV_SIMD / auto
/// detection), and its determinism class relative to the serial scalar
/// reference (docs/SIMD.md documents the contracts).
int CmdListKernels(const Flags& f) {
  const simd::Caps& caps = simd::DetectCaps();
  std::printf("host simd: resolved=%s best=%s avx2=%s avx512=%s\n\n",
              simd::TierName(simd::ResolvedTier()),
              simd::TierName(caps.best()),
              caps.Supports(simd::Tier::kAvx2) ? "available" : "unavailable",
              caps.Supports(simd::Tier::kAvx512) ? "available"
                                                 : "unavailable");
  gpusim::DeviceSpec device = DeviceFor(f);
  std::printf("%-22s %-8s %-8s %s\n", "spmv kernel", "backend", "simd",
              "determinism");
  for (const std::string& name : AllKernelNames()) {
    auto kernel = CreateKernel(name, device);
    if (kernel == nullptr) continue;
    std::printf("%-22s %-8s %-8s %s\n", name.c_str(),
                std::string(kernel->backend()).c_str(),
                std::string(kernel->simd_tier()).c_str(),
                DeterminismClassName(kernel->determinism()));
  }
  std::printf("\n%-22s %-8s %-8s %s\n", "spmm kernel", "backend", "simd",
              "determinism");
  for (const std::string& name : spmm::AllSpMMKernelNames()) {
    auto kernel = spmm::CreateSpMMKernel(name, device);
    if (kernel == nullptr) continue;
    std::printf("%-22s %-8s %-8s %s\n", name.c_str(),
                std::string(kernel->backend()).c_str(),
                std::string(kernel->simd_tier()).c_str(),
                DeterminismClassName(kernel->determinism()));
  }
  return 0;
}

int CmdConvert(const std::string& in, const std::string& out) {
  Result<CsrMatrix> a = Load(in);
  if (!a.ok()) return Fail(a.status());
  Status st = Save(a.value(), out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s (%d x %d, %lld nnz)\n", out.c_str(), a.value().rows,
              a.value().cols, static_cast<long long>(a.value().nnz()));
  return 0;
}

int CmdGenerate(const std::string& dataset, const std::string& out,
                const Flags& f) {
  Result<CsrMatrix> a = MakeDataset(dataset, f.scale);
  if (!a.ok()) return Fail(a.status());
  Status st = Save(a.value(), out);
  if (!st.ok()) return Fail(st);
  std::printf("generated %s -> %s: %s\n", dataset.c_str(), out.c_str(),
              ComputeStats(a.value()).ToString().c_str());
  return 0;
}

/// Dumps collected observability data after a command ran. Trace goes out as
/// Chrome trace_event JSON; metrics as Prometheus text, or as JSON when the
/// path ends in .json.
int WriteObservability(const Flags& f, int rc) {
  if (!f.trace_out.empty()) {
    Status st = obs::Tracer::Global().WriteChromeTrace(f.trace_out);
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "wrote %zu trace spans to %s\n",
                 obs::Tracer::Global().size(), f.trace_out.c_str());
  }
  if (!f.metrics_out.empty()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    std::string text = EndsWith(f.metrics_out, ".json")
                           ? reg.ToJson()
                           : reg.ToPrometheusText();
    FILE* out = std::fopen(f.metrics_out.c_str(), "w");
    if (out == nullptr)
      return Fail(Status::IoError("cannot open " + f.metrics_out));
    size_t written = std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    if (written != text.size())
      return Fail(Status::IoError("short write to " + f.metrics_out));
  }
  return rc;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: spmv_cli <stats|spmv|autotune|pagerank|hits|rwr|katz|salsa|"
      "serve|convert|generate|list-kernels> <args...>\n"
      "  flags: --kernel=NAME|auto|auto-host --device=c1060|c2050 "
      "--damping=F --top=N --node=K --scale=F --threads=N (0 = auto: "
      "hardware concurrency; negatives rejected; env TILESPMV_THREADS=0 "
      "means the same)\n"
      "  host simd: --simd=off|scalar|avx2|avx512|auto (strict; env "
      "TILESPMV_SIMD clamps down instead)\n"
      "  serve: --queries=N --window-ms=F --deadline-ms=F --slow-ms=F "
      "--flight-dump=FILE --query-log=FILE\n"
      "  rwr/serve: --block-cols=1|2|4|8|16 (or TILESPMV_BLOCK_COLS; SpMM "
      "panel width)\n"
      "  robustness: --faults=SPEC (needs -DTILESPMV_FAULTS=ON build) "
      "--brownout=0..3 (serve: force ladder level)\n"
      "  observability: --trace-out=FILE --metrics-out=FILE[.json|.prom]\n"
      "  kernels:");
  for (const std::string& k : tilespmv::AllKernelNames()) {
    std::fprintf(stderr, " %s", k.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  // list-kernels takes no positional argument; convert/generate take a
  // second one before the flags.
  const bool no_positional = cmd == "list-kernels";
  if (!no_positional && argc < 3) return Usage();
  std::string arg = no_positional ? std::string() : argv[2];
  const bool two_positional = cmd == "convert" || cmd == "generate";
  Flags flags;
  Status parse = ParseFlags(argc, argv,
                            no_positional ? 2 : (two_positional ? 4 : 3),
                            &flags);
  if (!parse.ok()) {
    std::fprintf(stderr, "error: %s\n", parse.ToString().c_str());
    Usage();
    return 2;
  }
  if (!flags.simd.empty()) {
    Result<simd::Tier> tier = simd::ParseTier(flags.simd);
    Status st = tier.ok() ? simd::SetTierOverride(tier.value()) : tier.status();
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 2;
    }
  }
  if (!flags.faults.empty()) {
    if (!robust::FaultInjectionCompiledIn()) {
      std::fprintf(stderr,
                   "error: --faults requires a fault-injection build "
                   "(cmake -DTILESPMV_FAULTS=ON)\n");
      return 2;
    }
    Status st = robust::FaultInjector::Global().Configure(flags.faults);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 2;
    }
  }
  if (!flags.trace_out.empty()) {
    // Offline diagnostic dump: opt into per-task spans so the trace carries
    // the dependency edges trace_summarize --critical-path reconstructs.
    obs::Tracer::Global().Enable();
    obs::Tracer::Global().set_task_detail(true);
  }
  if (flags.threads >= 0) par::ThreadPool::SetGlobalThreadCount(flags.threads);
  int rc = -1;
  if (cmd == "stats") rc = CmdStats(arg);
  else if (cmd == "spmv") rc = CmdSpmv(arg, flags);
  else if (cmd == "autotune") rc = CmdAutotune(arg, flags);
  else if (cmd == "pagerank") rc = CmdPageRank(arg, flags);
  else if (cmd == "hits") rc = CmdHits(arg, flags);
  else if (cmd == "rwr") rc = CmdRwr(arg, flags);
  else if (cmd == "katz") rc = CmdKatz(arg, flags);
  else if (cmd == "salsa") rc = CmdSalsa(arg, flags);
  else if (cmd == "serve") rc = CmdServe(arg, flags);
  else if (cmd == "list-kernels") rc = CmdListKernels(flags);
  else if (cmd == "convert" && argc >= 4) rc = CmdConvert(arg, argv[3]);
  else if (cmd == "generate" && argc >= 4)
    rc = CmdGenerate(arg, argv[3], flags);
  if (rc < 0) return Usage();
  return WriteObservability(flags, rc);
}

}  // namespace
}  // namespace tilespmv::cli

int main(int argc, char** argv) { return tilespmv::cli::Main(argc, argv); }
