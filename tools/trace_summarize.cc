// Summarizes a Chrome trace_event JSON file produced by
// `spmv_cli --trace-out=...` (or anything writing complete "X" events).
// Groups span durations by phase — the text before the first '/' in the
// span name, per the convention in docs/OBSERVABILITY.md — and prints each
// phase's span count, total time, share, and per-span p99. When the trace
// holds query lifetime events (cat "query", emitted by serve::Engine), it
// also prints a tail-attribution report: the p50/p95/p99 of end-to-end query
// latency decomposed into per-stage shares (queue/coalesce/plan/execute/...),
// so a p99 regression names the stage that moved.
//
//   trace_summarize <trace.json>
//   trace_summarize -           (read stdin)
//   trace_summarize --critical-path <trace.json>
//
// With --critical-path the trace must hold per-task spans (cat "task",
// recorded when the tracer's task detail is on — spmv_cli --trace-out
// enables it). Each task span carries its graph-local id (`args.task`),
// its predecessor ids (`args.deps`), and the run id in `bind_id`, so the
// report reconstructs the longest dependency chain per task-graph run and
// prints its length, duration, and stage composition — the lower bound no
// amount of extra threads can beat.
//
// Exits nonzero when the file holds no complete spans or is malformed /
// truncated (unterminated traceEvents array), so CI can assert a run
// actually produced a well-formed trace. Warns when the trace dropped spans
// to ring-buffer wrap-around ("droppedSpans" top-level key).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

std::string ReadAll(std::FILE* in) {
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) data.append(buf, n);
  return data;
}

/// Extracts the string value of `"key":"..."` inside [begin, end). Returns
/// an empty string when absent. Handles escaped quotes, which is all the
/// escaping our span names can contain.
std::string FindStringValue(const std::string& s, size_t begin, size_t end,
                            const char* key) {
  std::string needle = std::string("\"") + key + "\":\"";
  size_t at = s.find(needle, begin);
  if (at == std::string::npos || at >= end) return "";
  size_t start = at + needle.size();
  std::string out;
  for (size_t i = start; i < end; ++i) {
    if (s[i] == '\\' && i + 1 < end) {
      out.push_back(s[i + 1]);
      ++i;
    } else if (s[i] == '"') {
      return out;
    } else {
      out.push_back(s[i]);
    }
  }
  return "";
}

/// Extracts the numeric value of `"key":N` inside [begin, end); -1 if absent.
double FindNumberValue(const std::string& s, size_t begin, size_t end,
                       const char* key) {
  std::string needle = std::string("\"") + key + "\":";
  size_t at = s.find(needle, begin);
  if (at == std::string::npos || at >= end) return -1.0;
  return std::strtod(s.c_str() + at + needle.size(), nullptr);
}

/// Linearly interpolated percentile (q in [0,100]) of an unsorted sample.
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::max(0.0, std::min(100.0, q));
  double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

struct PhaseTotal {
  double micros = 0.0;
  int64_t spans = 0;
  std::vector<double> durs_us;  ///< Per-span durations, for percentiles.
};

/// The serving engine's stage keys, in pipeline order (must match
/// obs::QueryStageName).
constexpr const char* kStageKeys[] = {"admission", "queue",       "coalesce",
                                      "plan",      "execute",     "postprocess",
                                      "reply"};
constexpr int kNumStages = 7;

/// One query lifetime event (cat "query"): total latency + stage breakdown.
struct QuerySample {
  double total_ms = 0.0;
  double stage_ms[kNumStages] = {};
};

/// One per-task span (cat "task") from a task-graph run: the graph-local
/// task id, the span duration, the task label, and the predecessor ids the
/// exporter wrote into args.deps.
struct TaskSpan {
  double dur_us = 0.0;
  std::string name;
  std::vector<int> deps;
};

/// Longest dependency chain through one task-graph run: walk every task's
/// best (max-duration) chain ending at it — dur(t) + max over preds — and
/// keep back-pointers so the chain itself can be reconstructed. Task spans
/// come from a frozen DAG, so the deps edges are acyclic; a dep whose span
/// was dropped (ring wrap-around) simply truncates that chain.
struct CriticalPath {
  double dur_us = 0.0;
  std::vector<int> chain;  ///< Task ids, source first.
};

CriticalPath LongestChain(const std::map<int, TaskSpan>& tasks) {
  std::map<int, double> best;
  std::map<int, int> back;  ///< Predecessor on the best chain; -1 = source.
  // Memoized DFS with an explicit stack; recursion depth would otherwise be
  // the chain length, which can reach the tile count.
  for (const auto& [id, span] : tasks) {
    (void)span;
    std::vector<int> stack = {id};
    while (!stack.empty()) {
      int t = stack.back();
      auto it = tasks.find(t);
      if (it == tasks.end() || best.count(t)) {
        stack.pop_back();
        continue;
      }
      bool ready = true;
      for (int d : it->second.deps) {
        if (tasks.count(d) && !best.count(d)) {
          stack.push_back(d);
          ready = false;
        }
      }
      if (!ready) continue;
      stack.pop_back();
      double longest = 0.0;
      int from = -1;
      for (int d : it->second.deps) {
        auto b = best.find(d);
        if (b != best.end() && b->second > longest) {
          longest = b->second;
          from = d;
        }
      }
      best[t] = longest + it->second.dur_us;
      back[t] = from;
    }
  }
  CriticalPath out;
  int end = -1;
  for (const auto& [id, dur] : best) {
    if (dur > out.dur_us) {
      out.dur_us = dur;
      end = id;
    }
  }
  for (int t = end; t != -1; t = back[t]) out.chain.push_back(t);
  std::reverse(out.chain.begin(), out.chain.end());
  return out;
}

int Run(const char* path, bool critical_path) {
  std::FILE* in = std::strcmp(path, "-") == 0 ? stdin
                                              : std::fopen(path, "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", path);
    return 1;
  }
  std::string data = ReadAll(in);
  if (in != stdin) std::fclose(in);

  size_t events = data.find("\"traceEvents\"");
  if (events == std::string::npos) {
    std::fprintf(stderr,
                 "error: %s is not a trace file (no traceEvents array)\n",
                 path);
    return 1;
  }

  // Walk the flat event objects. Our exporter writes one object per span
  // with no nested objects except a final "args"; scanning brace-balanced
  // regions keeps this robust to args content. Strict: an unterminated
  // array or object (truncated download, interrupted writer) is an error,
  // not a best-effort partial summary.
  std::map<std::string, PhaseTotal> phases;
  std::vector<QuerySample> queries;
  // Task spans keyed by run id (bind_id) then graph-local task id.
  std::map<uint64_t, std::map<int, TaskSpan>> task_runs;
  double wall_begin = -1.0, wall_end = -1.0;
  size_t pos = data.find('[', events);
  if (pos == std::string::npos) {
    std::fprintf(stderr, "error: %s: traceEvents has no '[' after it\n",
                 path);
    return 1;
  }
  int depth = 0;
  bool array_closed = false;
  size_t obj_start = 0;
  for (size_t i = pos; i < data.size(); ++i) {
    char c = data[i];
    if (c == '"') {  // Skip strings so braces inside values don't count.
      for (++i;; ++i) {
        if (i >= data.size()) {
          std::fprintf(stderr,
                       "error: %s: unterminated string (truncated trace?)\n",
                       path);
          return 1;
        }
        if (data[i] == '\\') ++i;
        else if (data[i] == '"') break;
      }
    } else if (c == '{') {
      if (depth == 0) obj_start = i;
      ++depth;
    } else if (c == '}') {
      if (depth == 0) {
        std::fprintf(stderr, "error: %s: unbalanced '}' at offset %zu\n",
                     path, i);
        return 1;
      }
      if (--depth == 0) {
        std::string name = FindStringValue(data, obj_start, i, "name");
        std::string ph = FindStringValue(data, obj_start, i, "ph");
        double dur = FindNumberValue(data, obj_start, i, "dur");
        double ts = FindNumberValue(data, obj_start, i, "ts");
        if (!name.empty() && ph == "X" && dur >= 0) {
          std::string phase = name.substr(0, name.find('/'));
          phases[phase].micros += dur;
          ++phases[phase].spans;
          phases[phase].durs_us.push_back(dur);
          if (ts >= 0) {
            if (wall_begin < 0 || ts < wall_begin) wall_begin = ts;
            wall_end = std::max(wall_end, ts + dur);
          }
          std::string cat = FindStringValue(data, obj_start, i, "cat");
          if (cat == "query") {
            QuerySample q;
            q.total_ms = dur / 1e3;
            for (int s = 0; s < kNumStages; ++s) {
              std::string key = std::string(kStageKeys[s]) + "_ms";
              double v = FindNumberValue(data, obj_start, i, key.c_str());
              q.stage_ms[s] = v >= 0 ? v : 0.0;
            }
            queries.push_back(q);
          } else if (critical_path && cat == "task") {
            // args.task is the graph-local id; bind_id (hex string) is the
            // run id; args.deps ("0,1,...") lists predecessor ids.
            double task_id = FindNumberValue(data, obj_start, i, "task");
            std::string run = FindStringValue(data, obj_start, i, "bind_id");
            if (task_id >= 0 && !run.empty()) {
              uint64_t run_id = std::strtoull(run.c_str(), nullptr, 16);
              TaskSpan& span = task_runs[run_id][static_cast<int>(task_id)];
              span.dur_us = dur;
              span.name = name;
              std::string deps = FindStringValue(data, obj_start, i, "deps");
              const char* p = deps.c_str();
              while (*p != '\0') {
                char* next = nullptr;
                long d = std::strtol(p, &next, 10);
                if (next == p) break;
                span.deps.push_back(static_cast<int>(d));
                p = *next == ',' ? next + 1 : next;
              }
            }
          }
        }
      }
    } else if (c == ']' && depth == 0) {
      array_closed = true;
      break;
    }
  }
  if (!array_closed || depth != 0) {
    std::fprintf(stderr,
                 "error: %s: traceEvents array is unterminated (truncated "
                 "or malformed trace)\n",
                 path);
    return 1;
  }

  int64_t total_spans = 0;
  double total_micros = 0.0;
  for (const auto& [phase, t] : phases) {
    total_spans += t.spans;
    total_micros += t.micros;
  }
  if (total_spans == 0) {
    std::fprintf(stderr, "error: %s holds no complete spans\n", path);
    return 1;
  }

  // Spans lost to tracer ring wrap-around make every report below an
  // undercount; say so loudly instead of silently.
  double dropped = FindNumberValue(data, 0, data.size(), "droppedSpans");
  if (dropped > 0) {
    std::fprintf(stderr,
                 "warning: trace dropped %.0f spans to ring-buffer "
                 "wrap-around; totals undercount (raise the tracer capacity "
                 "or see tilespmv_trace_dropped_total)\n",
                 dropped);
  }

  // Share is of summed span time: nested spans double-count their parent,
  // so shares describe where instrumented time concentrates, not wall time.
  std::vector<std::pair<std::string, PhaseTotal>> rows(phases.begin(),
                                                       phases.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.micros > b.second.micros;
  });
  std::printf("%-12s %8s %12s %7s %10s\n", "phase", "spans", "total_ms",
              "share", "p99_ms");
  for (auto& [phase, t] : rows) {
    std::printf("%-12s %8lld %12.3f %6.1f%% %10.3f\n", phase.c_str(),
                static_cast<long long>(t.spans), t.micros / 1e3,
                100.0 * t.micros / total_micros,
                Percentile(std::move(t.durs_us), 99.0) / 1e3);
  }
  std::printf("%-12s %8lld %12.3f %6.1f%%\n", "total",
              static_cast<long long>(total_spans), total_micros / 1e3, 100.0);
  if (wall_begin >= 0) {
    std::printf("trace wall span: %.3f ms\n", (wall_end - wall_begin) / 1e3);
  }

  // Tail attribution: decompose the latency percentiles into stage shares.
  // For each percentile the shares are the mean stage fractions over the
  // queries at or above it — "queries in the p99 tail spend 72% of their
  // time in coalesce-wait" reads straight off the table.
  if (!queries.empty()) {
    std::vector<double> totals;
    totals.reserve(queries.size());
    for (const QuerySample& q : queries) totals.push_back(q.total_ms);
    std::printf("\nquery tail attribution (%zu queries):\n", queries.size());
    std::printf("%-6s %10s", "pct", "latency_ms");
    for (int s = 0; s < kNumStages; ++s) std::printf(" %11s", kStageKeys[s]);
    std::printf("\n");
    for (double pct : {50.0, 95.0, 99.0}) {
      double cut = Percentile(totals, pct);
      double sum[kNumStages] = {};
      double total_sum = 0.0;
      int count = 0;
      for (const QuerySample& q : queries) {
        if (q.total_ms < cut) continue;
        ++count;
        total_sum += q.total_ms;
        for (int s = 0; s < kNumStages; ++s) sum[s] += q.stage_ms[s];
      }
      std::printf("p%-5.0f %10.3f", pct, cut);
      for (int s = 0; s < kNumStages; ++s) {
        std::printf(" %10.1f%%",
                    total_sum > 0 ? 100.0 * sum[s] / total_sum : 0.0);
      }
      std::printf("  (%d queries)\n", count);
    }
  }

  // Critical-path report: for every task-graph run, the longest dependency
  // chain is the floor on the run's wall time at any thread count. The run
  // with the deepest chain is the one worth attacking, so its stage
  // composition (span-name phase prefixes along the chain) is printed.
  if (critical_path) {
    if (task_runs.empty()) {
      std::fprintf(stderr,
                   "error: --critical-path needs per-task spans (cat "
                   "\"task\") but the trace holds none; produce the trace "
                   "with spmv_cli --trace-out, which turns task detail on\n");
      return 1;
    }
    size_t total_tasks = 0;
    double total_task_us = 0.0;
    uint64_t worst_run = 0;
    CriticalPath worst;
    for (const auto& [run_id, tasks] : task_runs) {
      total_tasks += tasks.size();
      for (const auto& [id, span] : tasks) {
        (void)id;
        total_task_us += span.dur_us;
      }
      CriticalPath cp = LongestChain(tasks);
      if (cp.dur_us > worst.dur_us) {
        worst = cp;
        worst_run = run_id;
      }
    }
    std::printf("\ncritical path (%zu task runs, %zu task spans):\n",
                task_runs.size(), total_tasks);
    const std::map<int, TaskSpan>& tasks = task_runs[worst_run];
    std::printf(
        "longest chain: run 0x%llx, %zu of %zu tasks, %.3f ms of %.3f ms "
        "task time (parallel slack %.1fx)\n",
        static_cast<unsigned long long>(worst_run), worst.chain.size(),
        tasks.size(), worst.dur_us / 1e3, total_task_us / 1e3,
        worst.dur_us > 0 ? total_task_us / worst.dur_us : 0.0);
    std::map<std::string, PhaseTotal> stages;
    for (int t : worst.chain) {
      auto it = tasks.find(t);
      if (it == tasks.end()) continue;
      const std::string& n = it->second.name;
      std::string stage = n.substr(0, n.find('/'));
      stages[stage].micros += it->second.dur_us;
      ++stages[stage].spans;
    }
    std::printf("%-12s %8s %12s %7s\n", "stage", "tasks", "chain_ms",
                "share");
    for (const auto& [stage, t] : stages) {
      std::printf("%-12s %8lld %12.3f %6.1f%%\n", stage.c_str(),
                  static_cast<long long>(t.spans), t.micros / 1e3,
                  worst.dur_us > 0 ? 100.0 * t.micros / worst.dur_us : 0.0);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool critical_path = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--critical-path") == 0) {
      critical_path = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;  // Two positional arguments: fall through to usage.
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: trace_summarize [--critical-path] <trace.json|->\n");
    return 2;
  }
  return Run(path, critical_path);
}
