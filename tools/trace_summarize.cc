// Summarizes a Chrome trace_event JSON file produced by
// `spmv_cli --trace-out=...` (or anything writing complete "X" events).
// Groups span durations by phase — the text before the first '/' in the
// span name, per the convention in docs/OBSERVABILITY.md — and prints each
// phase's total time and share, e.g. preprocess vs spmv vs reduction.
//
//   trace_summarize <trace.json>
//   trace_summarize -           (read stdin)
//
// Exits nonzero when the file holds no complete spans, so CI can assert a
// run actually produced a trace.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

std::string ReadAll(std::FILE* in) {
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) data.append(buf, n);
  return data;
}

/// Extracts the string value of `"key":"..."` inside [begin, end). Returns
/// an empty string when absent. Handles escaped quotes, which is all the
/// escaping our span names can contain.
std::string FindStringValue(const std::string& s, size_t begin, size_t end,
                            const char* key) {
  std::string needle = std::string("\"") + key + "\":\"";
  size_t at = s.find(needle, begin);
  if (at == std::string::npos || at >= end) return "";
  size_t start = at + needle.size();
  std::string out;
  for (size_t i = start; i < end; ++i) {
    if (s[i] == '\\' && i + 1 < end) {
      out.push_back(s[i + 1]);
      ++i;
    } else if (s[i] == '"') {
      return out;
    } else {
      out.push_back(s[i]);
    }
  }
  return "";
}

/// Extracts the numeric value of `"key":N` inside [begin, end); -1 if absent.
double FindNumberValue(const std::string& s, size_t begin, size_t end,
                       const char* key) {
  std::string needle = std::string("\"") + key + "\":";
  size_t at = s.find(needle, begin);
  if (at == std::string::npos || at >= end) return -1.0;
  return std::strtod(s.c_str() + at + needle.size(), nullptr);
}

struct PhaseTotal {
  double micros = 0.0;
  int64_t spans = 0;
};

int Run(const char* path) {
  std::FILE* in = std::strcmp(path, "-") == 0 ? stdin
                                              : std::fopen(path, "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", path);
    return 1;
  }
  std::string data = ReadAll(in);
  if (in != stdin) std::fclose(in);

  size_t events = data.find("\"traceEvents\"");
  if (events == std::string::npos) {
    std::fprintf(stderr, "error: %s has no traceEvents array\n", path);
    return 1;
  }

  // Walk the flat event objects. Our exporter writes one object per span
  // with no nested objects except a final "args"; scanning brace-balanced
  // regions keeps this robust to args content.
  std::map<std::string, PhaseTotal> phases;
  double wall_begin = -1.0, wall_end = -1.0;
  size_t pos = data.find('[', events);
  int depth = 0;
  size_t obj_start = 0;
  for (size_t i = pos == std::string::npos ? data.size() : pos;
       i < data.size(); ++i) {
    char c = data[i];
    if (c == '"') {  // Skip strings so braces inside values don't count.
      for (++i; i < data.size(); ++i) {
        if (data[i] == '\\') ++i;
        else if (data[i] == '"') break;
      }
    } else if (c == '{') {
      if (depth == 0) obj_start = i;
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) {
        std::string name = FindStringValue(data, obj_start, i, "name");
        std::string ph = FindStringValue(data, obj_start, i, "ph");
        double dur = FindNumberValue(data, obj_start, i, "dur");
        double ts = FindNumberValue(data, obj_start, i, "ts");
        if (!name.empty() && ph == "X" && dur >= 0) {
          std::string phase = name.substr(0, name.find('/'));
          phases[phase].micros += dur;
          ++phases[phase].spans;
          if (ts >= 0) {
            if (wall_begin < 0 || ts < wall_begin) wall_begin = ts;
            wall_end = std::max(wall_end, ts + dur);
          }
        }
      }
    } else if (c == ']' && depth == 0) {
      break;
    }
  }

  int64_t total_spans = 0;
  double total_micros = 0.0;
  for (const auto& [phase, t] : phases) {
    total_spans += t.spans;
    total_micros += t.micros;
  }
  if (total_spans == 0) {
    std::fprintf(stderr, "error: %s holds no complete spans\n", path);
    return 1;
  }

  // Share is of summed span time: nested spans double-count their parent,
  // so shares describe where instrumented time concentrates, not wall time.
  std::vector<std::pair<std::string, PhaseTotal>> rows(phases.begin(),
                                                       phases.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.micros > b.second.micros;
  });
  std::printf("%-12s %8s %12s %7s\n", "phase", "spans", "total_ms", "share");
  for (const auto& [phase, t] : rows) {
    std::printf("%-12s %8lld %12.3f %6.1f%%\n", phase.c_str(),
                static_cast<long long>(t.spans), t.micros / 1e3,
                100.0 * t.micros / total_micros);
  }
  std::printf("%-12s %8lld %12.3f %6.1f%%\n", "total",
              static_cast<long long>(total_spans), total_micros / 1e3, 100.0);
  if (wall_begin >= 0) {
    std::printf("trace wall span: %.3f ms\n", (wall_end - wall_begin) / 1e3);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_summarize <trace.json|->\n");
    return 2;
  }
  return Run(argv[1]);
}
