#ifndef TILESPMV_KERNELS_SPMV_CSR_SCALAR_H_
#define TILESPMV_KERNELS_SPMV_CSR_SCALAR_H_

#include "kernels/spmv.h"

namespace tilespmv {

/// NVIDIA's CSR (scalar) kernel: one thread per row. The whole warp is held
/// hostage by its longest row and the per-thread walks through val/col are
/// uncoalesced — the two reasons this kernel collapses on power-law rows
/// (Appendix B).
class CsrScalarKernel : public SpMVKernel {
 public:
  explicit CsrScalarKernel(const gpusim::DeviceSpec& spec)
      : SpMVKernel(spec) {}

  std::string_view name() const override { return "csr"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

 private:
  CsrMatrix a_;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_SPMV_CSR_SCALAR_H_
