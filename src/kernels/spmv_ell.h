#ifndef TILESPMV_KERNELS_SPMV_ELL_H_
#define TILESPMV_KERNELS_SPMV_ELL_H_

#include "kernels/spmv.h"
#include "sparse/ell.h"

namespace tilespmv {

/// NVIDIA's ELL kernel: one thread per row over column-major padded storage.
/// Peak efficiency on uniformly short rows; on a power-law matrix the padded
/// width explodes and Setup fails with RESOURCE_EXHAUSTED — the same failure
/// mode that keeps standalone ELL out of the paper's graph-mining runs.
class EllKernel : public SpMVKernel {
 public:
  explicit EllKernel(const gpusim::DeviceSpec& spec) : SpMVKernel(spec) {}

  std::string_view name() const override { return "ell"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

  /// The Setup-time padded storage (the blocked SpMM wrapper executes over
  /// it, like HybKernel::hyb()).
  const EllMatrix& ell() const { return m_; }

 private:
  EllMatrix m_;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_SPMV_ELL_H_
