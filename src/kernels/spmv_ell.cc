#include "kernels/spmv_ell.h"

#include <algorithm>

#include "kernels/walks.h"
#include "par/pool.h"

namespace tilespmv {
namespace gpu {

Status SimulateEllLaunch(const EllMatrix& m, uint64_t x_addr, uint64_t y_addr,
                         SimContext* ctx) {
  const gpusim::DeviceSpec& spec = ctx->spec();
  Result<DeviceArray> col_arr = ctx->Alloc(m.PaddedEntries() * 4);
  Result<DeviceArray> val_arr = ctx->Alloc(m.PaddedEntries() * 4);
  for (const auto* r : {&col_arr, &val_arr}) {
    if (!r->ok()) return r->status();
  }
  if (m.rows == 0 || m.width == 0) return Status::OK();
  const int ws = spec.warp_size;

  ctx->BeginLaunch();
  for (int32_t r0 = 0; r0 < m.rows; r0 += ws) {
    int32_t r1 = std::min(m.rows, r0 + ws);
    gpusim::WarpWork warp;
    // Column-major storage: the warp's stream starts at its rows in slot 0.
    warp.start_address = val_arr.value().addr + 4 * static_cast<uint64_t>(r0);
    uint64_t instrs = gpu::InstrCosts::kWarpSetup +
                      static_cast<uint64_t>(m.width) *
                          gpu::InstrCosts::kEllInner;
    warp.issue_cycles =
        instrs * static_cast<uint64_t>(spec.cycles_per_warp_instr);
    for (int32_t j = 0; j < m.width; ++j) {
      // val + col for 32 consecutive rows: fully coalesced.
      uint64_t slot_addr =
          4 * (static_cast<uint64_t>(j) * m.rows + static_cast<uint64_t>(r0));
      warp.global_bytes +=
          ctx->StreamBytes(val_arr.value().addr + slot_addr,
                           4 * static_cast<uint64_t>(r1 - r0)) +
          ctx->StreamBytes(col_arr.value().addr + slot_addr,
                           4 * static_cast<uint64_t>(r1 - r0));
      // x fetches for non-padding slots.
      for (int32_t r = r0; r < r1; ++r) {
        int32_t c = m.col_idx[static_cast<size_t>(j) * m.rows + r];
        if (c != EllMatrix::kEllPad) {
          ctx->TexFetch(x_addr, c, &warp);
        }
      }
    }
    // Coalesced y writes, one float per row.
    warp.global_bytes += ctx->StreamBytes(
        y_addr + 4 * static_cast<uint64_t>(r0),
        4 * static_cast<uint64_t>(r1 - r0));
    ctx->AddWarp(warp);
  }
  return Status::OK();
}

uint64_t EllUsefulBytes(const EllMatrix& m) {
  return static_cast<uint64_t>(m.PaddedEntries()) * 8 +
         static_cast<uint64_t>(m.nnz()) * 4 +
         static_cast<uint64_t>(m.rows) * 4;
}

}  // namespace gpu

Status EllKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  rows_ = a.rows;
  cols_ = a.cols;
  // Leave room for x and y next to the padded arrays.
  int64_t budget = spec_.global_mem_bytes -
                   4 * (static_cast<int64_t>(a.rows) + a.cols);
  Result<EllMatrix> built = EllFromCsr(a, budget);
  if (!built.ok()) return built.status();
  m_ = built.take();

  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }
  TILESPMV_RETURN_IF_ERROR(gpu::SimulateEllLaunch(m_, x_arr.value().addr,
                                                  y_arr.value().addr, &ctx));
  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());
  timing_.useful_bytes = gpu::EllUsefulBytes(m_);
  ctx.Finalize(&timing_);
  return Status::OK();
}

void EllKernel::Multiply(const std::vector<float>& x,
                         std::vector<float>* y) const {
  y->assign(rows_, 0.0f);
  // Row-outer order keeps each row's slot accumulation in increasing-j
  // order — the same per-element sequence as the serial column-major walk,
  // so the result is bitwise identical at every thread count.
  par::LoopOptions options;
  options.grain = 512;
  options.label = "par/ell_multiply";
  par::ParallelFor(0, m_.rows, options, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float sum = 0.0f;
      for (int32_t j = 0; j < m_.width; ++j) {
        size_t slot = static_cast<size_t>(j) * m_.rows + static_cast<size_t>(r);
        int32_t c = m_.col_idx[slot];
        if (c != EllMatrix::kEllPad) {
          sum += m_.values[slot] * x[c];
        }
      }
      (*y)[r] = sum;
    }
  });
}

}  // namespace tilespmv
