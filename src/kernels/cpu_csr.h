#ifndef TILESPMV_KERNELS_CPU_CSR_H_
#define TILESPMV_KERNELS_CPU_CSR_H_

#include "kernels/spmv.h"

namespace tilespmv {

/// Parameters of the modeled CPU — defaults describe the paper's baseline
/// host, an AMD Opteron X2 2218 (2.6 GHz, DDR2 with ~5 GB/s of sustained
/// single-core bandwidth, 1 MB L2).
struct CpuSpec {
  double clock_ghz = 2.6;
  double cycles_per_nnz = 4.0;         ///< Scalar CSR inner loop throughput.
  double mem_bandwidth_gbps = 5.0;
  int64_t cache_bytes = 1 << 20;
  int cache_line_bytes = 64;
  int cache_assoc = 16;
};

/// The CPU CSR baseline ("CPU" rows/bars in Tables 1/4/5 and Figures 2/7).
/// Multiply() executes the real scalar loop on the host; timing() is modeled
/// on CpuSpec with an L2 simulation of the x-vector gathers so the power-law
/// locality penalty shows up just as it does on real hardware.
class CpuCsrKernel : public SpMVKernel {
 public:
  CpuCsrKernel(const gpusim::DeviceSpec& spec, const CpuSpec& cpu)
      : SpMVKernel(spec), cpu_(cpu) {}
  explicit CpuCsrKernel(const gpusim::DeviceSpec& spec)
      : CpuCsrKernel(spec, CpuSpec{}) {}

  std::string_view name() const override { return "cpu-csr"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;
  /// The serial scalar reference every SIMD kernel is checked against; its
  /// Multiply is the real host serving path.
  std::string_view backend() const override { return "host"; }

  /// The Setup-time matrix (the blocked SpMM wrapper executes over it).
  const CsrMatrix& csr() const { return a_; }

 private:
  CpuSpec cpu_;
  CsrMatrix a_;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_CPU_CSR_H_
