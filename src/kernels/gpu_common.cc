#include "kernels/gpu_common.h"

#include "obs/trace.h"
#include "util/check.h"

namespace tilespmv::gpu {

Result<DeviceArray> SimContext::Alloc(int64_t bytes) {
  Result<uint64_t> addr = alloc_.Allocate(bytes);
  if (!addr.ok()) return addr.status();
  return DeviceArray{addr.value(), bytes};
}

void SimContext::TexFetch(uint64_t x_addr, int64_t col,
                          gpusim::WarpWork* warp) {
  bool hit = cache_.Access(x_addr + 4 * static_cast<uint64_t>(col));
  if (!hit) {
    warp->scattered_bytes += static_cast<uint64_t>(cache_.line_bytes());
    warp->issue_cycles += static_cast<uint64_t>(spec_.tex_miss_stall_cycles);
  }
}

void SimContext::AddWarp(const gpusim::WarpWork& warp) {
  TILESPMV_CHECK(!launches_.empty());
  launches_.back().warps.push_back(warp);
}

void SimContext::Finalize(KernelTiming* timing) const {
  // Every GPU kernel's Setup walk funnels through here, so this one span
  // covers the cost-model evaluation of all kernels per-launch/per-workload.
  obs::TraceSpan span("kernel", "kernel/finalize");
  gpusim::CostModel model(spec_);
  timing->launch_details.clear();
  timing->launch_details.reserve(launches_.size());
  for (const gpusim::KernelLaunch& l : launches_) {
    timing->launch_details.push_back(model.EstimateLaunch(l));
  }
  gpusim::LaunchEstimate est = model.EstimateLaunches(launches_);
  timing->seconds = est.seconds;
  timing->launches = static_cast<int>(launches_.size());
  timing->waves = est.waves;
  timing->worst_camping_factor = est.worst_camping_factor;
  timing->tex_hits = cache_.hits();
  timing->tex_misses = cache_.misses();
  timing->device_bytes = static_cast<uint64_t>(alloc_.allocated_bytes());
  uint64_t traffic = 0;
  for (const gpusim::KernelLaunch& l : launches_) {
    for (const gpusim::WarpWork& w : l.warps) {
      traffic += w.global_bytes + w.scattered_bytes;
    }
  }
  timing->global_bytes = traffic;
}

}  // namespace tilespmv::gpu
