#ifndef TILESPMV_KERNELS_SPMV_CSR5_H_
#define TILESPMV_KERNELS_SPMV_CSR5_H_

#include <vector>

#include "kernels/spmv.h"

namespace tilespmv {

/// CSR5-style SpMV (Liu & Vinter, ICS'15) — the second *retrospective*
/// baseline: non-zeros are cut into fixed 2D tiles of omega lanes x sigma
/// rows-of-lanes (here 32 x 16 = 512 entries), stored column-major inside
/// the tile with per-tile descriptors (row-start bit flags + pointers) so a
/// warp executes a flag-driven segmented sum with no searches and no
/// imbalance. Like merge CSR it equalizes work perfectly; like every
/// CSR-family kernel it still gathers x uncached — the paper's tiling
/// remains the only locality fix in the zoo.
class Csr5Kernel : public SpMVKernel {
 public:
  explicit Csr5Kernel(const gpusim::DeviceSpec& spec) : SpMVKernel(spec) {}

  std::string_view name() const override { return "csr5"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

  /// One 512-entry tile's descriptor (exposed for tests).
  struct TileDescriptor {
    int64_t nnz_begin = 0;
    int64_t nnz_end = 0;
    int32_t row_begin = 0;   ///< Row containing the first entry.
    int32_t row_end = 0;     ///< Row containing the last entry.
    int32_t row_starts = 0;  ///< Number of row boundaries inside the tile.
  };
  const std::vector<TileDescriptor>& tiles() const { return tiles_; }

  static constexpr int kOmega = 32;  ///< Lanes (warp width).
  static constexpr int kSigma = 16;  ///< Entries per lane per tile.

 private:
  CsrMatrix a_;
  std::vector<TileDescriptor> tiles_;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_SPMV_CSR5_H_
