#ifndef TILESPMV_KERNELS_CPU_CSR_SIMD_H_
#define TILESPMV_KERNELS_CPU_CSR_SIMD_H_

#include "kernels/cpu_csr.h"
#include "kernels/spmv.h"
#include "simd/caps.h"
#include "simd/kernels.h"

namespace tilespmv {

/// Vectorized host CSR ("cpu-csr-simd"): the same storage as CpuCsrKernel,
/// executed through the simd::CsrRows* kernels — per-row 8/16-lane gathers
/// with FMA bodies, software prefetch of the col/val streams and the x
/// gathers, and a fixed horizontal-sum tree per row.
///
/// The SIMD tier is resolved (simd::ResolvedTier) and frozen at Setup(), so
/// a shared serving plan never changes numeric behavior mid-flight.
/// Tolerance class: each row's partial-sum tree differs from the sequential
/// scalar sum (docs/SIMD.md documents the bound); results are still
/// identical run-to-run and at every thread count.
class CsrSimdKernel : public SpMVKernel {
 public:
  CsrSimdKernel(const gpusim::DeviceSpec& spec, const CpuSpec& cpu)
      : SpMVKernel(spec), cpu_(cpu), tier_(simd::ResolvedTier()) {}
  explicit CsrSimdKernel(const gpusim::DeviceSpec& spec)
      : CsrSimdKernel(spec, CpuSpec{}) {}

  std::string_view name() const override { return "cpu-csr-simd"; }
  std::string_view backend() const override { return "host"; }
  DeterminismClass determinism() const override {
    return tier_ == simd::Tier::kScalar ? DeterminismClass::kBitwise
                                        : DeterminismClass::kTolerance;
  }
  std::string_view simd_tier() const override {
    return simd::TierName(tier_);
  }

  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

  /// The Setup-time matrix (the blocked SpMM sibling executes over it).
  const CsrMatrix& csr() const { return a_; }
  simd::Tier tier() const { return tier_; }

 private:
  CpuSpec cpu_;
  CsrMatrix a_;
  simd::Tier tier_;
  simd::CsrRowsFn rows_fn_ = &simd::CsrRowsScalar;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_CPU_CSR_SIMD_H_
