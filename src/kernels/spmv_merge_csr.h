#ifndef TILESPMV_KERNELS_SPMV_MERGE_CSR_H_
#define TILESPMV_KERNELS_SPMV_MERGE_CSR_H_

#include <vector>

#include "kernels/spmv.h"

namespace tilespmv {

/// Merge-based CSR SpMV (Merrill & Garland, SC'16) — a *retrospective*
/// baseline, five years after the paper: SpMV is recast as a 2D merge of
/// the row-end offsets with the non-zero indices, and the merge path is
/// split into exactly equal-length diagonals, one per warp. Row skew can
/// never imbalance it (a hub row simply spans several warps, reconciled by
/// carry-out/carry-in fixup), at the cost of the same uncached x gathers
/// every CSR-family kernel pays. Included to show where the paper's
/// texture-tiling contribution stands against later scheduling work: merge
/// CSR fixes the balance problem but not the locality problem.
class MergeCsrKernel : public SpMVKernel {
 public:
  explicit MergeCsrKernel(const gpusim::DeviceSpec& spec)
      : SpMVKernel(spec) {}

  std::string_view name() const override { return "merge-csr"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

  /// Merge-path segment assigned to one warp (exposed for tests).
  struct Segment {
    int32_t row_begin = 0;  ///< First row this warp touches.
    int32_t row_end = 0;    ///< One past the last row it completes.
    int64_t nnz_begin = 0;
    int64_t nnz_end = 0;
  };
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  CsrMatrix a_;
  std::vector<Segment> segments_;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_SPMV_MERGE_CSR_H_
