#ifndef TILESPMV_KERNELS_SPMV_CSR_VECTOR_H_
#define TILESPMV_KERNELS_SPMV_CSR_VECTOR_H_

#include "kernels/spmv.h"

namespace tilespmv {

/// NVIDIA's CSR-vector kernel: one 32-thread warp per row, strided walk plus
/// a 5-step binary reduction. Coalesced and check-free, but rows shorter
/// than the warp waste most lanes — and most power-law rows are shorter than
/// 32 (Appendix B).
class CsrVectorKernel : public SpMVKernel {
 public:
  explicit CsrVectorKernel(const gpusim::DeviceSpec& spec)
      : SpMVKernel(spec) {}

  std::string_view name() const override { return "csr-vector"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

 private:
  CsrMatrix a_;
};

/// Baskaran & Bordawekar's optimized CSR kernel: half-warp per row with the
/// row storage padded for fully coalesced accesses. Better than CSR-vector
/// on medium rows; still wasteful below 16 non-zeros per row.
class BskBdwKernel : public SpMVKernel {
 public:
  explicit BskBdwKernel(const gpusim::DeviceSpec& spec) : SpMVKernel(spec) {}

  std::string_view name() const override { return "bsk-bdw"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

 private:
  CsrMatrix a_;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_SPMV_CSR_VECTOR_H_
