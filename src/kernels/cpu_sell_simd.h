#ifndef TILESPMV_KERNELS_CPU_SELL_SIMD_H_
#define TILESPMV_KERNELS_CPU_SELL_SIMD_H_

#include <vector>

#include "kernels/cpu_csr.h"
#include "kernels/spmv.h"
#include "simd/caps.h"
#include "simd/kernels.h"
#include "sparse/permute.h"

namespace tilespmv {

/// Host SELL-C-sigma ("cpu-sell-simd"): sigma-window length sort, then real
/// sliced column-major storage with C = the SIMD lane width, executed by
/// the simd::SellSlices* kernels — lane = row, so vector execution keeps
/// every row's accumulation in CSR entry order.
///
/// Bitwise class: the output (in internal, sorted index space) is
/// bit-for-bit the scalar reference run over the sorted matrix, at every
/// tier and thread count. Ended-row lanes are preserved with a blend /
/// masked add, never an add-of-zero. The tier — and with it the chunk
/// height C — is frozen at Setup().
class SellSimdKernel : public SpMVKernel {
 public:
  SellSimdKernel(const gpusim::DeviceSpec& spec, int32_t sigma,
                 const CpuSpec& cpu)
      : SpMVKernel(spec), sigma_(sigma), cpu_(cpu),
        tier_(simd::ResolvedTier()) {}
  explicit SellSimdKernel(const gpusim::DeviceSpec& spec)
      : SellSimdKernel(spec, 8192, CpuSpec{}) {}

  std::string_view name() const override { return "cpu-sell-simd"; }
  std::string_view backend() const override { return "host"; }
  DeterminismClass determinism() const override {
    return DeterminismClass::kBitwise;
  }
  std::string_view simd_tier() const override {
    return simd::TierName(tier_);
  }

  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

  const Permutation& row_permutation() const override { return row_perm_; }
  const Permutation& col_permutation() const override { return col_perm_; }

  simd::Tier tier() const { return tier_; }
  int chunk_rows() const { return view_.c; }
  /// Padded slots / nnz overhead of the sliced storage.
  int64_t padded_slots() const {
    return view_.num_slices == 0 ? 0 : slice_off_.back();
  }

 private:
  int32_t sigma_;
  CpuSpec cpu_;
  simd::Tier tier_;
  simd::SellSlicesFn slices_fn_ = &simd::SellSlicesScalar;

  Permutation row_perm_;  // new -> old, sigma-window sorted.
  Permutation col_perm_;  // Same as row_perm_ for square inputs.

  // Sliced storage backing simd::SellView (see simd/kernels.h layout).
  std::vector<int64_t> slice_off_;
  std::vector<int32_t> slice_width_;
  std::vector<int32_t> active_;
  std::vector<int32_t> sell_cols_;  // Base class owns rows_/cols_ scalars.
  std::vector<float> sell_vals_;
  simd::SellView view_;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_CPU_SELL_SIMD_H_
