#ifndef TILESPMV_KERNELS_SPMV_HYB_H_
#define TILESPMV_KERNELS_SPMV_HYB_H_

#include "kernels/spmv.h"
#include "sparse/hyb.h"

namespace tilespmv {

/// NVIDIA's HYB kernel: the typical row prefix in ELL, the long-row overflow
/// in COO — the best library kernel on power-law matrices, and the paper's
/// main competitor.
class HybKernel : public SpMVKernel {
 public:
  explicit HybKernel(const gpusim::DeviceSpec& spec) : SpMVKernel(spec) {}

  std::string_view name() const override { return "hyb"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

  const HybMatrix& hyb() const { return m_; }

 private:
  HybMatrix m_;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_SPMV_HYB_H_
