#include "kernels/spmv_pkt.h"

#include <algorithm>

#include "kernels/gpu_common.h"

namespace tilespmv {

Status PktKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  rows_ = a.rows;
  cols_ = a.cols;
  const int32_t shared_floats = spec_.shared_mem_bytes_per_sm / 4;
  Result<PktMatrix> built = PktFromCsr(a, shared_floats);
  if (!built.ok()) return built.status();
  m_ = built.take();

  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> val_arr = ctx.Alloc(a.nnz() * 4);
  Result<gpu::DeviceArray> col_arr = ctx.Alloc(a.nnz() * 4);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&val_arr, &col_arr, &x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }
  const int ws = spec_.warp_size;
  const int warps_per_block = 8;  // 256 threads per block.

  ctx.BeginLaunch();
  int64_t val_cursor = 0;
  for (const Packet& p : m_.packets) {
    // Stage the x footprint into shared memory: the packet's distinct
    // columns, gathered once. Footprint columns are sorted but sparse; each
    // costs one minimum transaction unless adjacent.
    uint64_t stage_bytes = 0;
    {
      int32_t prev = -1000000;
      for (int32_t c : p.x_columns) {
        if (prev >= 0 && (c - prev) * 4 < spec_.min_transaction_bytes) {
          // Shares the previous transaction.
        } else {
          stage_bytes += static_cast<uint64_t>(spec_.min_transaction_bytes);
        }
        prev = c;
      }
    }
    // Distribute the packet's rows round-robin over the block's warps.
    const int32_t num_rows = static_cast<int32_t>(p.rows.size());
    for (int w = 0; w < warps_per_block; ++w) {
      gpusim::WarpWork warp;
      warp.start_address =
          val_arr.value().addr + 4 * static_cast<uint64_t>(val_cursor);
      uint64_t instrs = gpu::InstrCosts::kWarpSetup;
      int64_t warp_nnz = 0;
      // Warp w owns rows w*32 + k*(warps*32) .. in chunks of 32.
      for (int32_t chunk = w * ws; chunk < num_rows;
           chunk += warps_per_block * ws) {
        int64_t max_len = 0;
        for (int32_t i = chunk; i < std::min(num_rows, chunk + ws); ++i) {
          int64_t len = p.row_ptr[i + 1] - p.row_ptr[i];
          max_len = std::max(max_len, len);
          warp_nnz += len;
        }
        instrs += static_cast<uint64_t>(max_len) * gpu::InstrCosts::kSpmvInner +
                  gpu::InstrCosts::kRowEpilogue;
      }
      warp.issue_cycles =
          instrs * static_cast<uint64_t>(spec_.cycles_per_warp_instr);
      // Matrix data streams (local col index + value); x comes from shared
      // memory — no global traffic, PKT's whole point.
      warp.global_bytes += ctx.StreamBytes(
          warp.start_address, 8 * static_cast<uint64_t>(warp_nnz));
      if (w == 0) {
        warp.global_bytes += stage_bytes;
        // y writes for the block's rows (contiguous blocks of rows).
        warp.global_bytes += ctx.StreamBytes(
            y_arr.value().addr + 4 * static_cast<uint64_t>(p.rows.front()),
            4 * static_cast<uint64_t>(num_rows));
      }
      ctx.AddWarp(warp);
    }
    val_cursor += p.nnz();
  }

  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());
  uint64_t footprint = 0;
  for (const Packet& p : m_.packets) footprint += p.x_columns.size();
  timing_.useful_bytes = static_cast<uint64_t>(a.nnz()) * 8 + footprint * 4 +
                         static_cast<uint64_t>(a.rows) * 4;
  ctx.Finalize(&timing_);
  return Status::OK();
}

void PktKernel::Multiply(const std::vector<float>& x,
                         std::vector<float>* y) const {
  y->assign(rows_, 0.0f);
  for (const Packet& p : m_.packets) {
    for (size_t i = 0; i < p.rows.size(); ++i) {
      float sum = 0.0f;
      for (int64_t k = p.row_ptr[i]; k < p.row_ptr[i + 1]; ++k) {
        sum += p.values[k] * x[p.x_columns[p.local_col[k]]];
      }
      (*y)[p.rows[i]] += sum;
    }
  }
}

}  // namespace tilespmv
