#include "kernels/cpu_csr_simd.h"

#include <algorithm>

#include "gpusim/texture_cache.h"
#include "par/pool.h"
#include "util/check.h"

namespace tilespmv {

Status CsrSimdKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  a_ = a;
  rows_ = a.rows;
  cols_ = a.cols;
  tier_ = simd::ResolvedTier();
  rows_fn_ = simd::CsrRowsForTier(tier_);

  // Same model as CpuCsrKernel (streams prefetch, x gathers through a
  // simulated L2), with the inner-loop throughput scaled by the vector
  // width: lanes-per-cycle compute plus a per-row horizontal-sum epilogue.
  // The memory bound is unchanged — SIMD does not add DRAM bandwidth.
  gpusim::TextureCache l2(cpu_.cache_bytes, cpu_.cache_line_bytes,
                          cpu_.cache_assoc);
  uint64_t x_misses = 0;
  for (int32_t r = 0; r < a.rows; ++r) {
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      if (!l2.Access(4 * static_cast<uint64_t>(a.col_idx[k]))) ++x_misses;
    }
  }
  const int lanes = simd::LaneWidth(tier_);
  uint64_t nnz = static_cast<uint64_t>(a.nnz());
  uint64_t stream_bytes = nnz * 8 + static_cast<uint64_t>(a.rows) * 16;
  uint64_t mem_bytes =
      stream_bytes + x_misses * static_cast<uint64_t>(cpu_.cache_line_bytes);
  double compute_s = (static_cast<double>(nnz) * cpu_.cycles_per_nnz /
                          static_cast<double>(lanes) +
                      static_cast<double>(a.rows) * (lanes > 1 ? 8.0 : 0.0)) /
                     (cpu_.clock_ghz * 1e9);
  double memory_s =
      static_cast<double>(mem_bytes) / (cpu_.mem_bandwidth_gbps * 1e9);

  timing_ = KernelTiming{};
  timing_.seconds = std::max(compute_s, memory_s);
  timing_.flops = 2 * nnz;
  timing_.useful_bytes = nnz * 12 + static_cast<uint64_t>(a.rows) * 16;
  timing_.global_bytes = mem_bytes;
  timing_.tex_hits = l2.hits();
  timing_.tex_misses = l2.misses();
  timing_.launches = 1;
  return Status::OK();
}

void CsrSimdKernel::Multiply(const std::vector<float>& x,
                             std::vector<float>* y) const {
  TILESPMV_CHECK(x.size() == static_cast<size_t>(a_.cols));
  // Every row of y is written by the row kernel; no zero-fill pass needed.
  y->resize(static_cast<size_t>(a_.rows));
  // Rows are independent and the per-row reduction tree is fixed by the
  // frozen tier, so any chunking yields the same bits. Align chunk cuts to
  // the lane width so the prefetch window of a chunk's last rows is not
  // repeatedly re-split across participants.
  par::LoopOptions options;
  options.grain = 256;
  options.chunking = par::Chunking::kGuided;
  options.label = "par/csr_simd_multiply";
  options.align = simd::LaneWidth(tier_);
  const simd::CsrRowsFn fn = rows_fn_;
  par::ParallelFor(0, a_.rows, options, [&](int64_t r0, int64_t r1) {
    fn(a_.row_ptr.data(), a_.col_idx.data(), a_.values.data(), x.data(),
       y->data(), r0, r1);
  });
}

}  // namespace tilespmv
