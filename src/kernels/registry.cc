#include "kernels/spmv.h"

#include "core/tile_composite.h"
#include "core/tile_coo.h"
#include "kernels/cpu_csr.h"
#include "kernels/cpu_csr_simd.h"
#include "kernels/cpu_sell_simd.h"
#include "kernels/spmv_coo.h"
#include "kernels/spmv_csr_scalar.h"
#include "kernels/spmv_csr5.h"
#include "kernels/spmv_csr_vector.h"
#include "kernels/spmv_dia.h"
#include "kernels/spmv_ell.h"
#include "kernels/spmv_hyb.h"
#include "kernels/spmv_merge_csr.h"
#include "kernels/spmv_pkt.h"
#include "kernels/spmv_sell.h"
#include "util/check.h"

namespace tilespmv {

const Permutation SpMVKernel::kIdentityPerm = {};

const char* DeterminismClassName(DeterminismClass c) {
  return c == DeterminismClass::kBitwise ? "bitwise" : "tolerance";
}

void MultiplyOriginal(const SpMVKernel& kernel, const std::vector<float>& x,
                      std::vector<float>* y) {
  const Permutation& col_perm = kernel.col_permutation();
  const Permutation& row_perm = kernel.row_permutation();
  if (col_perm.empty() && row_perm.empty()) {
    kernel.Multiply(x, y);
    return;
  }
  std::vector<float> x_internal;
  const std::vector<float>* xp = &x;
  if (!col_perm.empty()) {
    PermuteVector(col_perm, x, &x_internal);
    xp = &x_internal;
  }
  std::vector<float> y_internal;
  kernel.Multiply(*xp, row_perm.empty() ? y : &y_internal);
  if (!row_perm.empty()) {
    UnpermuteVector(row_perm, y_internal, y);
  }
}

std::unique_ptr<SpMVKernel> CreateKernel(std::string_view name,
                                         const gpusim::DeviceSpec& spec) {
  if (name == "cpu-csr") return std::make_unique<CpuCsrKernel>(spec);
  if (name == "cpu-csr-simd") return std::make_unique<CsrSimdKernel>(spec);
  if (name == "cpu-sell-simd") return std::make_unique<SellSimdKernel>(spec);
  if (name == "csr") return std::make_unique<CsrScalarKernel>(spec);
  if (name == "csr-vector") return std::make_unique<CsrVectorKernel>(spec);
  if (name == "bsk-bdw") return std::make_unique<BskBdwKernel>(spec);
  if (name == "coo") return std::make_unique<CooKernel>(spec);
  if (name == "ell") return std::make_unique<EllKernel>(spec);
  if (name == "hyb") return std::make_unique<HybKernel>(spec);
  if (name == "dia") return std::make_unique<DiaKernel>(spec);
  if (name == "pkt") return std::make_unique<PktKernel>(spec);
  if (name == "merge-csr") return std::make_unique<MergeCsrKernel>(spec);
  if (name == "csr5") return std::make_unique<Csr5Kernel>(spec);
  if (name == "sell-c-sigma") return std::make_unique<SellKernel>(spec);
  if (name == "tile-coo") return std::make_unique<TileCooKernel>(spec);
  if (name == "tile-composite")
    return std::make_unique<TileCompositeKernel>(spec);
  return nullptr;
}

const std::vector<std::string>& AllKernelNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "cpu-csr",   "cpu-csr-simd", "cpu-sell-simd",
      "csr",  "csr-vector", "bsk-bdw", "coo",
      "ell",       "hyb",  "dia",        "pkt",     "merge-csr",
      "csr5",      "sell-c-sigma", "tile-coo", "tile-composite"};
  return *kNames;
}

const std::vector<std::string>& HostKernelNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "cpu-csr", "cpu-csr-simd", "cpu-sell-simd"};
  return *kNames;
}

std::string SimdHostKernelFor(std::string_view name) {
  if (name == "cpu-csr") return "cpu-csr-simd";
  return "";
}

const std::vector<std::string>& GpuKernelNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "csr",  "csr-vector", "bsk-bdw", "coo",       "ell",
      "hyb",  "dia",        "pkt",     "merge-csr", "csr5",
      "sell-c-sigma", "tile-coo", "tile-composite"};
  return *kNames;
}

}  // namespace tilespmv
