#include "kernels/spmv_hyb.h"

#include <algorithm>

#include "kernels/walks.h"
#include "par/pool.h"

namespace tilespmv {

Status HybKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  m_ = HybFromCsr(a);
  rows_ = a.rows;
  cols_ = a.cols;

  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }
  TILESPMV_RETURN_IF_ERROR(gpu::SimulateEllLaunch(m_.ell, x_arr.value().addr,
                                                  y_arr.value().addr, &ctx));
  // The COO pass accumulates into the y written by the ELL pass.
  TILESPMV_RETURN_IF_ERROR(gpu::SimulateCooLaunch(
      m_.coo, x_arr.value().addr, y_arr.value().addr,
      /*accumulate_into_y=*/true, &ctx));

  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());
  timing_.useful_bytes =
      gpu::EllUsefulBytes(m_.ell) + gpu::CooUsefulBytes(m_.coo);
  ctx.Finalize(&timing_);
  return Status::OK();
}

void HybKernel::Multiply(const std::vector<float>& x,
                         std::vector<float>* y) const {
  y->assign(rows_, 0.0f);
  const EllMatrix& e = m_.ell;
  // Per-row fusion: each row takes its ELL slots in increasing-j order and
  // then its COO tail entries in k order — the same per-element sequence as
  // the serial two-pass walk, so the result is bitwise identical. The COO
  // tail is row-sorted (CooFromCsr), so each chunk locates its range once.
  par::LoopOptions options;
  options.grain = 512;
  options.label = "par/hyb_multiply";
  par::ParallelFor(0, rows_, options, [&](int64_t r0, int64_t r1) {
    const int32_t* coo_rows = m_.coo.row_idx.data();
    const int64_t coo_nnz = m_.coo.nnz();
    int64_t k = std::lower_bound(coo_rows, coo_rows + coo_nnz,
                                 static_cast<int32_t>(r0)) -
                coo_rows;
    for (int64_t r = r0; r < r1; ++r) {
      float sum = 0.0f;
      for (int32_t j = 0; j < e.width; ++j) {
        size_t slot = static_cast<size_t>(j) * e.rows + static_cast<size_t>(r);
        int32_t c = e.col_idx[slot];
        if (c != EllMatrix::kEllPad) {
          sum += e.values[slot] * x[c];
        }
      }
      for (; k < coo_nnz && coo_rows[k] == r; ++k) {
        sum += m_.coo.values[k] * x[m_.coo.col_idx[k]];
      }
      (*y)[r] = sum;
    }
  });
}

}  // namespace tilespmv
