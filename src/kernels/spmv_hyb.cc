#include "kernels/spmv_hyb.h"

#include "kernels/walks.h"

namespace tilespmv {

Status HybKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  m_ = HybFromCsr(a);
  rows_ = a.rows;
  cols_ = a.cols;

  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }
  TILESPMV_RETURN_IF_ERROR(gpu::SimulateEllLaunch(m_.ell, x_arr.value().addr,
                                                  y_arr.value().addr, &ctx));
  // The COO pass accumulates into the y written by the ELL pass.
  TILESPMV_RETURN_IF_ERROR(gpu::SimulateCooLaunch(
      m_.coo, x_arr.value().addr, y_arr.value().addr,
      /*accumulate_into_y=*/true, &ctx));

  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());
  timing_.useful_bytes =
      gpu::EllUsefulBytes(m_.ell) + gpu::CooUsefulBytes(m_.coo);
  ctx.Finalize(&timing_);
  return Status::OK();
}

void HybKernel::Multiply(const std::vector<float>& x,
                         std::vector<float>* y) const {
  y->assign(rows_, 0.0f);
  const EllMatrix& e = m_.ell;
  for (int32_t j = 0; j < e.width; ++j) {
    for (int32_t r = 0; r < e.rows; ++r) {
      size_t slot = static_cast<size_t>(j) * e.rows + r;
      int32_t c = e.col_idx[slot];
      if (c != EllMatrix::kEllPad) {
        (*y)[r] += e.values[slot] * x[c];
      }
    }
  }
  for (int64_t k = 0; k < m_.coo.nnz(); ++k) {
    (*y)[m_.coo.row_idx[k]] += m_.coo.values[k] * x[m_.coo.col_idx[k]];
  }
}

}  // namespace tilespmv
