#ifndef TILESPMV_KERNELS_SPMV_DIA_H_
#define TILESPMV_KERNELS_SPMV_DIA_H_

#include "kernels/spmv.h"
#include "sparse/dia.h"

namespace tilespmv {

/// NVIDIA's DIA kernel: one thread per row over dense diagonal storage.
/// Fully coalesced, x accessed contiguously — but Setup fails unless the
/// matrix is banded, matching "the code of these two kernels cannot run on
/// matrices of power-law graphs".
class DiaKernel : public SpMVKernel {
 public:
  explicit DiaKernel(const gpusim::DeviceSpec& spec) : SpMVKernel(spec) {}

  std::string_view name() const override { return "dia"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

 private:
  /// Diagonal count past which the format is declared inapplicable.
  static constexpr int32_t kMaxDiagonals = 512;
  DiaMatrix m_;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_SPMV_DIA_H_
