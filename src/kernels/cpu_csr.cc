#include "kernels/cpu_csr.h"

#include <algorithm>

#include "gpusim/texture_cache.h"

namespace tilespmv {

Status CpuCsrKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  a_ = a;
  rows_ = a.rows;
  cols_ = a.cols;

  // Model: the val/col streams prefetch well; the x gathers go through a
  // simulated L2. y and row_ptr stream.
  gpusim::TextureCache l2(cpu_.cache_bytes, cpu_.cache_line_bytes,
                          cpu_.cache_assoc);
  uint64_t x_misses = 0;
  for (int32_t r = 0; r < a.rows; ++r) {
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      if (!l2.Access(4 * static_cast<uint64_t>(a.col_idx[k]))) ++x_misses;
    }
  }
  uint64_t nnz = static_cast<uint64_t>(a.nnz());
  uint64_t stream_bytes = nnz * 8 + static_cast<uint64_t>(a.rows) * 16;
  uint64_t mem_bytes =
      stream_bytes + x_misses * static_cast<uint64_t>(cpu_.cache_line_bytes);
  double compute_s =
      static_cast<double>(nnz) * cpu_.cycles_per_nnz / (cpu_.clock_ghz * 1e9);
  double memory_s =
      static_cast<double>(mem_bytes) / (cpu_.mem_bandwidth_gbps * 1e9);

  timing_ = KernelTiming{};
  timing_.seconds = std::max(compute_s, memory_s);
  timing_.flops = 2 * nnz;
  timing_.useful_bytes = nnz * 12 + static_cast<uint64_t>(a.rows) * 16;
  timing_.global_bytes = mem_bytes;
  timing_.tex_hits = l2.hits();
  timing_.tex_misses = l2.misses();
  timing_.launches = 1;
  return Status::OK();
}

void CpuCsrKernel::Multiply(const std::vector<float>& x,
                            std::vector<float>* y) const {
  CsrMultiply(a_, x, y);
}

}  // namespace tilespmv
