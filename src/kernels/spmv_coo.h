#ifndef TILESPMV_KERNELS_SPMV_COO_H_
#define TILESPMV_KERNELS_SPMV_COO_H_

#include "kernels/spmv.h"
#include "sparse/coo.h"

namespace tilespmv {

/// NVIDIA's COO kernel: the non-zeros are one long vector split into equal
/// intervals, one per warp — perfectly balanced regardless of row skew, which
/// is why COO is "the most insensitive to variable row length". The price is
/// 12 bytes of matrix traffic per non-zero and a segmented reduction whose
/// same-row checks serialize the warp whenever a stride spans several rows
/// (Observation 3).
class CooKernel : public SpMVKernel {
 public:
  explicit CooKernel(const gpusim::DeviceSpec& spec) : SpMVKernel(spec) {}

  std::string_view name() const override { return "coo"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

 private:
  CooMatrix m_;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_SPMV_COO_H_
