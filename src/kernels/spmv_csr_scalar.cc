#include "kernels/spmv_csr_scalar.h"

#include <algorithm>

#include "kernels/gpu_common.h"

namespace tilespmv {

Status CsrScalarKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  a_ = a;
  rows_ = a.rows;
  cols_ = a.cols;

  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> row_ptr_arr =
      ctx.Alloc((static_cast<int64_t>(a.rows) + 1) * 4);
  Result<gpu::DeviceArray> col_arr = ctx.Alloc(a.nnz() * 4);
  Result<gpu::DeviceArray> val_arr = ctx.Alloc(a.nnz() * 4);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&row_ptr_arr, &col_arr, &val_arr, &x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }
  const uint64_t val_addr = val_arr.value().addr;
  const uint64_t x_addr = x_arr.value().addr;
  const int ws = spec_.warp_size;

  ctx.BeginLaunch();
  for (int32_t r0 = 0; r0 < a.rows; r0 += ws) {
    int32_t r1 = std::min(a.rows, r0 + ws);
    gpusim::WarpWork warp;
    warp.start_address = val_addr + 4 * static_cast<uint64_t>(a.row_ptr[r0]);

    int64_t max_len = 0;
    int64_t sum_len = 0;
    for (int32_t r = r0; r < r1; ++r) {
      max_len = std::max(max_len, a.RowLength(r));
      sum_len += a.RowLength(r);
    }
    // The warp issues for its longest row; threads on short rows idle.
    uint64_t instrs = gpu::InstrCosts::kWarpSetup +
                      static_cast<uint64_t>(max_len) *
                          gpu::InstrCosts::kSpmvInner +
                      gpu::InstrCosts::kRowEpilogue;
    warp.issue_cycles =
        instrs * static_cast<uint64_t>(spec_.cycles_per_warp_instr);

    // Per-thread val/col walks: lanes sit at per-row offsets, so the
    // coalescing ratio of the first iteration (all lanes alive) carries over
    // the walk — compute it exactly, then scale by total elements.
    uint64_t lane_addrs[32];
    int lanes = 0;
    uint64_t matrix_bytes = 0;
    for (int32_t hw = r0; hw < r1; hw += spec_.half_warp) {
      lanes = 0;
      for (int32_t r = hw; r < std::min(r1, hw + spec_.half_warp); ++r) {
        if (a.RowLength(r) > 0) {
          lane_addrs[lanes++] =
              val_addr + 4 * static_cast<uint64_t>(a.row_ptr[r]);
        }
      }
      if (lanes == 0) continue;
      gpusim::CoalesceResult co =
          gpusim::CoalesceHalfWarp(lane_addrs, lanes, 4, spec_);
      double ratio = static_cast<double>(co.bytes) / lanes;
      int64_t hw_nnz = 0;
      for (int32_t r = hw; r < std::min(r1, hw + spec_.half_warp); ++r)
        hw_nnz += a.RowLength(r);
      // x2: the col walk mirrors the val walk.
      matrix_bytes += static_cast<uint64_t>(2.0 * ratio * hw_nnz);
    }
    warp.scattered_bytes += matrix_bytes;
    // row_ptr loads (two per thread, coalesced) and the y write-back.
    warp.global_bytes += ctx.StreamBytes(
        row_ptr_arr.value().addr + 4 * static_cast<uint64_t>(r0),
        4 * static_cast<uint64_t>(r1 - r0 + 1));
    warp.global_bytes +=
        ctx.StreamBytes(y_arr.value().addr + 4 * static_cast<uint64_t>(r0),
                        4 * static_cast<uint64_t>(r1 - r0));
    // x gathers via texture.
    for (int32_t r = r0; r < r1; ++r) {
      for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
        ctx.TexFetch(x_addr, a.col_idx[k], &warp);
      }
    }
    ctx.AddWarp(warp);
  }

  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());
  timing_.useful_bytes = static_cast<uint64_t>(a.nnz()) * 12 +
                         static_cast<uint64_t>(a.rows) * 12;
  ctx.Finalize(&timing_);
  return Status::OK();
}

void CsrScalarKernel::Multiply(const std::vector<float>& x,
                               std::vector<float>* y) const {
  CsrMultiply(a_, x, y);
}

}  // namespace tilespmv
