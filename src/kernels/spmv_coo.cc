#include "kernels/spmv_coo.h"

#include <algorithm>

#include "kernels/walks.h"

namespace tilespmv {
namespace gpu {

Status SimulateCooLaunch(const CooMatrix& m, uint64_t x_addr, uint64_t y_addr,
                         bool accumulate_into_y, SimContext* ctx) {
  const gpusim::DeviceSpec& spec = ctx->spec();
  const int64_t nnz = m.nnz();
  Result<DeviceArray> row_arr = ctx->Alloc(nnz * 4);
  Result<DeviceArray> col_arr = ctx->Alloc(nnz * 4);
  Result<DeviceArray> val_arr = ctx->Alloc(nnz * 4);
  for (const auto* r : {&row_arr, &col_arr, &val_arr}) {
    if (!r->ok()) return r->status();
  }
  if (nnz == 0) return Status::OK();

  // One interval per active warp, enough warps for full occupancy.
  const int64_t max_warps = spec.MaxActiveWarps();
  int64_t interval =
      std::max<int64_t>(spec.warp_size, (nnz + max_warps - 1) / max_warps);
  // De-alias the interval from the partition stripes: when interval * 4 B
  // is a whole number of 256 B stripes, the lockstep camping model would
  // pin every warp's stream to a repeating subset of partitions — on
  // hardware the gathers desynchronize the warps, so nudge the interval off
  // the alignment instead of charging phantom camping.
  const int64_t stripe_floats = spec.partition_width_bytes / 4;
  if (interval % stripe_floats == 0) {
    interval += stripe_floats * 3 / 4;  // Off-stripe: starts drift.
  }
  const uint64_t val_addr = val_arr.value().addr;

  ctx->BeginLaunch();
  int64_t carries = 0;  // Inter-warp partial sums combined in a second pass.
  for (int64_t k0 = 0; k0 < nnz; k0 += interval) {
    int64_t k1 = std::min(nnz, k0 + interval);
    gpusim::WarpWork warp;
    warp.start_address = val_addr + 4 * static_cast<uint64_t>(k0);
    uint64_t instrs = gpu::InstrCosts::kWarpSetup;
    uint64_t touched_rows = 0;
    for (int64_t s0 = k0; s0 < k1; s0 += spec.warp_size) {
      int64_t s1 = std::min(k1, s0 + spec.warp_size);
      instrs += gpu::InstrCosts::kCooInner;
      // Count distinct rows in the stride: one row means a clean binary
      // reduction; several rows serialize the divergent checks.
      int distinct = 1;
      for (int64_t k = s0 + 1; k < s1; ++k) {
        if (m.row_idx[k] != m.row_idx[k - 1]) ++distinct;
      }
      touched_rows += static_cast<uint64_t>(distinct - 1);
      // The segmented scan runs unconditionally — the flag checks are what
      // make COO insensitive to row length; extra boundaries only add the
      // serialized carry writes.
      instrs += 5 * gpu::InstrCosts::kCooReduceStep +
                static_cast<uint64_t>(distinct - 1) *
                    gpu::InstrCosts::kCooDivergedStep;
      // x gathers through the texture binding.
      for (int64_t k = s0; k < s1; ++k) {
        ctx->TexFetch(x_addr, m.col_idx[k], &warp);
      }
    }
    touched_rows += 1;  // The row carried out of the interval.
    // Streams: row, col, val.
    warp.global_bytes +=
        ctx->StreamBytes(row_arr.value().addr + 4 * static_cast<uint64_t>(k0),
                         4 * static_cast<uint64_t>(k1 - k0)) +
        ctx->StreamBytes(col_arr.value().addr + 4 * static_cast<uint64_t>(k0),
                         4 * static_cast<uint64_t>(k1 - k0)) +
        ctx->StreamBytes(val_addr + 4 * static_cast<uint64_t>(k0),
                         4 * static_cast<uint64_t>(k1 - k0));
    // Scattered y updates, one per row boundary; accumulation adds the read.
    warp.scattered_bytes +=
        ctx->ScatterBytes(touched_rows) * (accumulate_into_y ? 2 : 1);
    (void)y_addr;
    warp.issue_cycles +=
        instrs * static_cast<uint64_t>(spec.cycles_per_warp_instr);
    ctx->AddWarp(warp);
    ++carries;
  }

  // Second pass combining per-warp carry results.
  ctx->BeginLaunch();
  gpusim::WarpWork fixup;
  fixup.issue_cycles = static_cast<uint64_t>(
      (gpu::InstrCosts::kWarpSetup + carries) * spec.cycles_per_warp_instr);
  fixup.scattered_bytes =
      ctx->ScatterBytes(static_cast<uint64_t>(carries)) * 2;
  ctx->AddWarp(fixup);
  return Status::OK();
}

uint64_t CooUsefulBytes(const CooMatrix& m) {
  uint64_t rows_touched = 0;
  int32_t prev = -1;
  for (int32_t r : m.row_idx) {
    if (r != prev) {
      ++rows_touched;
      prev = r;
    }
  }
  return static_cast<uint64_t>(m.nnz()) * 16 + rows_touched * 4;
}

}  // namespace gpu

Status CooKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  m_ = CooFromCsr(a);
  rows_ = a.rows;
  cols_ = a.cols;

  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }
  TILESPMV_RETURN_IF_ERROR(gpu::SimulateCooLaunch(
      m_, x_arr.value().addr, y_arr.value().addr,
      /*accumulate_into_y=*/false, &ctx));

  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());
  timing_.useful_bytes = gpu::CooUsefulBytes(m_);
  ctx.Finalize(&timing_);
  return Status::OK();
}

void CooKernel::Multiply(const std::vector<float>& x,
                         std::vector<float>* y) const {
  y->assign(rows_, 0.0f);
  for (int64_t k = 0; k < m_.nnz(); ++k) {
    (*y)[m_.row_idx[k]] += m_.values[k] * x[m_.col_idx[k]];
  }
}

}  // namespace tilespmv
