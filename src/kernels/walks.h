#ifndef TILESPMV_KERNELS_WALKS_H_
#define TILESPMV_KERNELS_WALKS_H_

#include <cstdint>

#include "kernels/gpu_common.h"
#include "sparse/coo.h"
#include "sparse/ell.h"

namespace tilespmv::gpu {

/// Simulates one launch of the NVIDIA COO kernel over `m`: equal-length
/// intervals per warp, strided walk, intra-stride segmented reduction with
/// the same-row checks that serialize divergent warps (Observation 3), plus
/// the small carry-combination second launch. Allocates the row/col/val
/// arrays in `ctx` and records launches. `x_addr` is the texture binding of
/// the x vector (or x segment); `y_addr` receives scattered row updates.
/// `accumulate_into_y` adds a read-modify-write per touched row (used when
/// tile partial results are combined).
Status SimulateCooLaunch(const CooMatrix& m, uint64_t x_addr, uint64_t y_addr,
                         bool accumulate_into_y, SimContext* ctx);

/// Simulates one launch of the NVIDIA ELL kernel over `m`: one thread per
/// row, column-major strides, padding-sentinel checks.
Status SimulateEllLaunch(const EllMatrix& m, uint64_t x_addr, uint64_t y_addr,
                         SimContext* ctx);

/// Algorithmic bytes of a COO multiply (row+col+val+x per entry, y per row).
uint64_t CooUsefulBytes(const CooMatrix& m);

/// Algorithmic bytes of an ELL multiply (padded col+val, x per real entry,
/// y per row).
uint64_t EllUsefulBytes(const EllMatrix& m);

}  // namespace tilespmv::gpu

#endif  // TILESPMV_KERNELS_WALKS_H_
