#include "kernels/spmv_csr5.h"

#include <algorithm>

#include "kernels/gpu_common.h"

namespace tilespmv {

Status Csr5Kernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  a_ = a;
  rows_ = a.rows;
  cols_ = a.cols;
  tiles_.clear();

  constexpr int kTileNnz = kOmega * kSigma;

  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> row_ptr_arr =
      ctx.Alloc((static_cast<int64_t>(a.rows) + 1) * 4);
  Result<gpu::DeviceArray> col_arr = ctx.Alloc(a.nnz() * 4);
  Result<gpu::DeviceArray> val_arr = ctx.Alloc(a.nnz() * 4);
  // Descriptors: ~2 words of bit flags + 2 pointers per tile.
  int64_t num_tiles = (a.nnz() + kTileNnz - 1) / kTileNnz;
  Result<gpu::DeviceArray> desc_arr = ctx.Alloc(num_tiles * 16);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r :
       {&row_ptr_arr, &col_arr, &val_arr, &desc_arr, &x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }

  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());
  timing_.useful_bytes = static_cast<uint64_t>(a.nnz()) * 12 +
                         static_cast<uint64_t>(a.rows) * 8 +
                         static_cast<uint64_t>(num_tiles) * 16;

  // Row cursor walks forward as tiles are cut — overall O(nnz + rows).
  int32_t row = 0;
  ctx.BeginLaunch();
  for (int64_t t = 0; t < num_tiles; ++t) {
    TileDescriptor tile;
    tile.nnz_begin = t * kTileNnz;
    tile.nnz_end = std::min<int64_t>(a.nnz(), tile.nnz_begin + kTileNnz);
    while (row < a.rows && a.row_ptr[row + 1] <= tile.nnz_begin) ++row;
    tile.row_begin = row;
    int32_t r = row;
    int32_t starts = 0;
    while (r < a.rows && a.row_ptr[r] < tile.nnz_end) {
      if (a.row_ptr[r] >= tile.nnz_begin) ++starts;
      ++r;
    }
    tile.row_end = std::max(tile.row_begin, r - 1);
    tile.row_starts = starts;
    tiles_.push_back(tile);

    gpusim::WarpWork warp;
    // Fixed 512-entry tiles start exactly 2048 B apart — one partition
    // stripe cycle. As with COO's interval (see SimulateCooLaunch), the
    // gathers desynchronize real warps, so the lockstep camping attribution
    // would be phantom; treat the streams as spread.
    warp.start_address = gpusim::kNoAddress;
    uint64_t stream_addr =
        val_arr.value().addr + 4 * static_cast<uint64_t>(tile.nnz_begin);
    int64_t tile_nnz = tile.nnz_end - tile.nnz_begin;
    // sigma strides of flag-driven loads/mads plus a fixed-depth
    // flag-prefix segmented sum — no searches, no divergence.
    uint64_t instrs =
        gpu::InstrCosts::kWarpSetup +
        static_cast<uint64_t>((tile_nnz + kOmega - 1) / kOmega) *
            (gpu::InstrCosts::kSpmvInner + 2) +  // +2: flag handling.
        2ULL * 5 * gpu::InstrCosts::kReduceStep;  // Two prefix passes.
    warp.issue_cycles =
        instrs * static_cast<uint64_t>(spec_.cycles_per_warp_instr);
    // Streams: val + col + the 16-byte descriptor.
    warp.global_bytes +=
        2 * ctx.StreamBytes(stream_addr,
                            4 * static_cast<uint64_t>(tile_nnz)) +
        static_cast<uint64_t>(spec_.min_transaction_bytes);
    // x gathers via texture.
    for (int64_t k = tile.nnz_begin; k < tile.nnz_end; ++k) {
      ctx.TexFetch(x_arr.value().addr, a.col_idx[k], &warp);
    }
    // y: one scattered update per row started in the tile plus the carry.
    warp.scattered_bytes +=
        ctx.ScatterBytes(static_cast<uint64_t>(tile.row_starts) + 1);
    ctx.AddWarp(warp);
  }
  // Carry-combination pass over tile boundaries.
  ctx.BeginLaunch();
  gpusim::WarpWork fixup;
  fixup.issue_cycles = static_cast<uint64_t>(
      (gpu::InstrCosts::kWarpSetup + num_tiles) * spec_.cycles_per_warp_instr);
  fixup.scattered_bytes =
      ctx.ScatterBytes(static_cast<uint64_t>(num_tiles)) * 2;
  ctx.AddWarp(fixup);

  ctx.Finalize(&timing_);
  return Status::OK();
}

void Csr5Kernel::Multiply(const std::vector<float>& x,
                          std::vector<float>* y) const {
  y->assign(rows_, 0.0f);
  // Execute tile by tile with carries, matching the device schedule.
  for (const TileDescriptor& tile : tiles_) {
    int32_t row = tile.row_begin;
    float carry = 0.0f;
    for (int64_t k = tile.nnz_begin; k < tile.nnz_end; ++k) {
      while (row < rows_ && a_.row_ptr[row + 1] <= k) {
        (*y)[row] += carry;
        carry = 0.0f;
        ++row;
      }
      carry += a_.values[k] * x[a_.col_idx[k]];
    }
    if (row < rows_) (*y)[row] += carry;
  }
}

}  // namespace tilespmv
