#ifndef TILESPMV_KERNELS_SPMV_SELL_H_
#define TILESPMV_KERNELS_SPMV_SELL_H_

#include <vector>

#include "kernels/spmv.h"
#include "sparse/permute.h"

namespace tilespmv {

/// SELL-C-sigma SpMV (Kreutzer et al., SIAM J. Sci. Comput. 2014) — the
/// third *retrospective* baseline, and the one closest in spirit to the
/// paper: rows are sorted by length inside windows of sigma rows, then cut
/// into slices of C (= warp size) rows, each padded only to its own slice
/// maximum. The paper's composite storage anticipated exactly this
/// sort-then-pack idea (its column-major workloads are variable-height
/// slices); SELL-C-sigma standardized the format three years later — but
/// without the texture tiling, so the x gathers stay cold.
class SellKernel : public SpMVKernel {
 public:
  SellKernel(const gpusim::DeviceSpec& spec, int32_t sigma)
      : SpMVKernel(spec), sigma_(sigma) {}
  explicit SellKernel(const gpusim::DeviceSpec& spec)
      : SellKernel(spec, 8192) {}

  std::string_view name() const override { return "sell-c-sigma"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

  const Permutation& row_permutation() const override { return row_perm_; }
  const Permutation& col_permutation() const override { return col_perm_; }

  /// One slice: C consecutive (sorted) rows padded to the slice max length.
  struct Slice {
    int32_t row_begin = 0;  ///< In sorted row order.
    int32_t rows = 0;
    int32_t width = 0;      ///< Slice-local max row length.
  };
  const std::vector<Slice>& slices() const { return slices_; }

  /// Total padded slots (the format's overhead metric; beta in the SELL
  /// paper is nnz / padded).
  int64_t padded_slots() const { return padded_slots_; }

 private:
  int32_t sigma_;
  Permutation row_perm_;  // new -> old, sigma-window sorted.
  Permutation col_perm_;  // Same as row_perm_ for square inputs (symmetric
                          // relabeling keeps the power method in one space).
  CsrMatrix sorted_;      // Rows permuted by row_perm_.
  std::vector<Slice> slices_;
  int64_t padded_slots_ = 0;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_SPMV_SELL_H_
