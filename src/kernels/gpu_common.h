#ifndef TILESPMV_KERNELS_GPU_COMMON_H_
#define TILESPMV_KERNELS_GPU_COMMON_H_

#include <cstdint>
#include <vector>

#include "gpusim/cost_model.h"
#include "gpusim/device_spec.h"
#include "gpusim/memory_system.h"
#include "gpusim/texture_cache.h"
#include "kernels/spmv.h"

namespace tilespmv::gpu {

/// Instruction-count recipes shared by the kernel walks, in warp-wide
/// instructions (1 instruction = spec.cycles_per_warp_instr SM cycles).
/// These are the model's calibration constants; they only need to be
/// *relatively* right for the paper's kernel rankings to emerge.
struct InstrCosts {
  static constexpr int kSpmvInner = 5;   ///< load col+val, fetch x, mad, loop.
  static constexpr int kEllInner = 6;    ///< + padding sentinel check.
  static constexpr int kCooInner = 12;   ///< 3 loads + fetch + mad + 2 shared st.
  static constexpr int kReduceStep = 2;  ///< shuffle/shared add per step.
  static constexpr int kCooReduceStep = 11;  ///< full segmented-scan step:
                                             ///< shared ld/ld + flag cmp +
                                             ///< predicated add + st + sync.
  static constexpr int kCooDivergedStep = 2;  ///< extra per row boundary.
  static constexpr int kRowEpilogue = 3;  ///< write y, advance row.
  static constexpr int kWarpSetup = 10;  ///< index math at warp start.
};

/// A modeled device-resident array: base address + size.
struct DeviceArray {
  uint64_t addr = 0;
  int64_t bytes = 0;
};

/// Tracks the full simulated state for one kernel's Setup walk: the device
/// allocator, the texture cache (when the kernel binds x to texture), the
/// launches recorded so far and the traffic counters that end up in
/// KernelTiming.
class SimContext {
 public:
  explicit SimContext(const gpusim::DeviceSpec& spec)
      : spec_(spec), alloc_(spec), cache_(spec) {}

  /// Allocates a device array (256 B aligned like cudaMalloc).
  Result<DeviceArray> Alloc(int64_t bytes);

  /// Simulates one texture fetch of x[col] for the binding based at
  /// `x_addr`. A miss charges a cache-line fill against `warp`'s traffic and
  /// a stall against its issue cycles (long-latency gathers are only partly
  /// hidden by multithreading — the effect the texture cache exists to
  /// remove, and the reason tiling pays off before the bandwidth ceiling).
  void TexFetch(uint64_t x_addr, int64_t col, gpusim::WarpWork* warp);

  /// Invalidate the texture cache (re-binding between launches).
  void FlushTexture() { cache_.Flush(); }

  /// Scatter traffic: n independent 4-byte accesses, each its own minimum
  /// transaction (models uncoalesced y updates).
  uint64_t ScatterBytes(uint64_t n) const {
    return n * static_cast<uint64_t>(spec_.min_transaction_bytes);
  }

  /// Streaming traffic of `bytes` starting at `addr` (coalesced).
  uint64_t StreamBytes(uint64_t addr, uint64_t bytes) const {
    return gpusim::SequentialTraffic(addr, bytes, spec_).bytes;
  }

  /// Starts recording a new kernel launch.
  void BeginLaunch() { launches_.emplace_back(); }

  /// Adds a warp's work to the current launch.
  void AddWarp(const gpusim::WarpWork& warp);

  /// Finalizes: runs the cost model over all launches and fills `timing`
  /// (flops / useful_bytes must be set by the caller).
  void Finalize(KernelTiming* timing) const;

  const gpusim::DeviceSpec& spec() const { return spec_; }
  gpusim::TextureCache& cache() { return cache_; }
  int64_t allocated_bytes() const { return alloc_.allocated_bytes(); }

 private:
  gpusim::DeviceSpec spec_;
  gpusim::DeviceAllocator alloc_;
  gpusim::TextureCache cache_;
  std::vector<gpusim::KernelLaunch> launches_;
};

}  // namespace tilespmv::gpu

#endif  // TILESPMV_KERNELS_GPU_COMMON_H_
