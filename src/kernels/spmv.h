#ifndef TILESPMV_KERNELS_SPMV_H_
#define TILESPMV_KERNELS_SPMV_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "gpusim/cost_model.h"
#include "gpusim/device_spec.h"
#include "sparse/csr.h"
#include "sparse/permute.h"
#include "util/status.h"

namespace tilespmv {

class TileDag;

/// Modeled cost of one y = A*x invocation. `seconds` comes from the gpusim
/// cost model (or the CPU model for the baseline); the GFLOPS / GB/s
/// accessors reproduce the paper's two reporting metrics — note the
/// bandwidth metric uses *algorithmic* bytes, so a cache-served kernel can
/// exceed the device's physical peak exactly as Figure 7 shows for the
/// dense matrix.
struct KernelTiming {
  double seconds = 0.0;
  uint64_t flops = 0;          ///< 2 * nnz.
  uint64_t useful_bytes = 0;   ///< Algorithmic traffic (paper's GB/s metric).
  uint64_t global_bytes = 0;   ///< Modeled DRAM traffic after caching.
  uint64_t tex_hits = 0;
  uint64_t tex_misses = 0;
  int launches = 0;
  int waves = 0;
  double worst_camping_factor = 1.0;
  uint64_t device_bytes = 0;  ///< Device memory the kernel's structures use.
  /// Per-launch cost breakdown (compute- vs memory-bound, camping, waves) —
  /// the diagnostic surface behind spmv_cli's verbose output.
  std::vector<gpusim::LaunchEstimate> launch_details;

  double gflops() const {
    return seconds > 0 ? static_cast<double>(flops) / seconds * 1e-9 : 0.0;
  }
  double gbps() const {
    return seconds > 0 ? static_cast<double>(useful_bytes) / seconds * 1e-9
                       : 0.0;
  }
  double TexHitRate() const {
    uint64_t t = tex_hits + tex_misses;
    return t == 0 ? 0.0 : static_cast<double>(tex_hits) / t;
  }
};

/// How a kernel's numeric output relates to the sequential scalar reference
/// loop (`CsrMultiply` at one thread). Every in-tree kernel is
/// deterministic — identical output run-to-run and at every thread count —
/// the class says whether that fixed result is also bit-for-bit the scalar
/// one. See docs/SIMD.md for the per-kernel contracts.
enum class DeterminismClass {
  /// Bit-for-bit equal to the serial scalar reference.
  kBitwise,
  /// Uses a different fixed summation order (e.g. a SIMD partial-sum tree),
  /// so agreement with the reference is tolerance-checked, not bitwise.
  kTolerance,
};

/// "bitwise" | "tolerance".
const char* DeterminismClassName(DeterminismClass c);

/// An SpMV kernel: a storage format plus an execution strategy. Setup()
/// builds the (modeled) device data structures from a host CSR matrix and
/// walks the execution once to derive `timing()` — the cost of one multiply
/// is a function of structure only, so iterative callers reuse it.
///
/// Some kernels relabel the matrix during Setup (the tile kernels sort
/// columns/rows). Multiply() therefore operates in the kernel's *internal*
/// index space: x must be permuted by col_permutation() and y comes out
/// permuted by row_permutation(). For identity relabelings both return an
/// empty vector. MultiplyOriginal() wraps the bookkeeping; iterative graph
/// algorithms instead run entirely in internal space (valid for the square,
/// symmetrically relabeled matrices they use) and unpermute once at the end,
/// exactly as the paper's one-off preprocessing does.
///
/// Thread-safety contract (what lets the serving layer share one plan across
/// server threads): Setup() is NOT thread-safe and must complete (happens-
/// before, e.g. via the PlanCache mutex) before the kernel is shared. After
/// a successful Setup, every const member function — Multiply(),
/// MultiplyOriginal(), timing(), the permutation accessors, rows()/cols() —
/// only reads the frozen plan state and may be called concurrently from any
/// number of threads. Implementations must keep Multiply() free of mutable
/// member scratch: per-call state lives in the caller-provided y (an audit
/// of every in-tree kernel found none; the one mutable member reachable from
/// a shared plan, PerfModel's memo table behind
/// TileCompositeKernel::perf_model(), is internally mutex-guarded).
class SpMVKernel {
 public:
  explicit SpMVKernel(const gpusim::DeviceSpec& spec) : spec_(spec) {}
  virtual ~SpMVKernel() = default;

  SpMVKernel(const SpMVKernel&) = delete;
  SpMVKernel& operator=(const SpMVKernel&) = delete;

  virtual std::string_view name() const = 0;

  /// Builds device structures, simulates one multiply, records timing().
  virtual Status Setup(const CsrMatrix& a) = 0;

  /// y = A * x in internal index space. Requires a successful Setup.
  virtual void Multiply(const std::vector<float>& x,
                        std::vector<float>* y) const = 0;

  /// Modeled cost of one Multiply() call.
  const KernelTiming& timing() const { return timing_; }

  /// Execution backend for listings and plan metadata: "host" for kernels
  /// whose Multiply() *is* the wall-clock serving path, "gpusim" for the
  /// paper's modeled device formats (they too execute on the host, but
  /// their timing() represents the simulated GPU).
  virtual std::string_view backend() const { return "gpusim"; }

  /// Relationship of Multiply() to the serial scalar reference.
  virtual DeterminismClass determinism() const {
    return DeterminismClass::kBitwise;
  }

  /// SIMD tier frozen into this kernel's plan ("none" for scalar kernels;
  /// SIMD-aware kernels resolve it at Setup and report "scalar" / "avx2" /
  /// "avx512").
  virtual std::string_view simd_tier() const { return "none"; }

  /// The kernel's dataflow decomposition (core/tile_dag.h), or nullptr for
  /// kernels that execute as one fork-join sweep. When non-null the graph
  /// loops pipeline consecutive power iterations through
  /// TileDag::PowerPairGraph instead of running barrier-separated
  /// Multiply/update stages; both paths are bitwise identical
  /// (docs/PARALLELISM.md). Valid after a successful Setup; the dag's
  /// lifetime is the plan's.
  virtual const TileDag* tile_dag() const { return nullptr; }

  /// new -> old row relabeling applied by Setup (empty = identity).
  virtual const Permutation& row_permutation() const { return kIdentityPerm; }
  /// new -> old column relabeling applied by Setup (empty = identity).
  virtual const Permutation& col_permutation() const { return kIdentityPerm; }

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  const gpusim::DeviceSpec& spec() const { return spec_; }

 protected:
  static const Permutation kIdentityPerm;  // empty vector

  gpusim::DeviceSpec spec_;
  KernelTiming timing_;
  int32_t rows_ = 0;
  int32_t cols_ = 0;
};

/// y = A * x with x and y in the original (pre-relabeling) index space.
void MultiplyOriginal(const SpMVKernel& kernel, const std::vector<float>& x,
                      std::vector<float>* y);

/// Creates a kernel by name. Known names: "cpu-csr", "cpu-csr-simd",
/// "cpu-sell-simd", "csr", "csr-vector", "bsk-bdw", "coo", "ell", "hyb",
/// "dia", "pkt", "merge-csr" (retrospective Merrill-Garland baseline),
/// "tile-coo", "tile-composite". Returns nullptr for unknown names.
std::unique_ptr<SpMVKernel> CreateKernel(std::string_view name,
                                         const gpusim::DeviceSpec& spec);

/// All kernel names, in the order the paper's figures list them.
const std::vector<std::string>& AllKernelNames();

/// The GPU kernel names (AllKernelNames minus the host kernels).
const std::vector<std::string>& GpuKernelNames();

/// The host-backend kernels — the ones whose Multiply() is the real
/// wall-clock serving path: "cpu-csr" and the SIMD variants.
const std::vector<std::string>& HostKernelNames();

/// The SIMD-accelerated sibling of a host kernel ("cpu-csr" ->
/// "cpu-csr-simd"), or "" when `name` has none. The serving engine uses
/// this to upgrade host-kernel requests when the resolved SIMD tier is
/// above scalar (EngineOptions::prefer_simd_host).
std::string SimdHostKernelFor(std::string_view name);

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_SPMV_H_
