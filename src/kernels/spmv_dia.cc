#include "kernels/spmv_dia.h"

#include <algorithm>

#include "kernels/gpu_common.h"

namespace tilespmv {

Status DiaKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  rows_ = a.rows;
  cols_ = a.cols;
  int64_t budget = spec_.global_mem_bytes -
                   4 * (static_cast<int64_t>(a.rows) + a.cols);
  Result<DiaMatrix> built = DiaFromCsr(a, kMaxDiagonals, budget);
  if (!built.ok()) return built.status();
  m_ = built.take();

  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> val_arr = ctx.Alloc(m_.PaddedEntries() * 4);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&val_arr, &x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }
  const int ws = spec_.warp_size;
  const int32_t ndiag = static_cast<int32_t>(m_.offsets.size());

  ctx.BeginLaunch();
  for (int32_t r0 = 0; r0 < a.rows; r0 += ws) {
    int32_t r1 = std::min(a.rows, r0 + ws);
    gpusim::WarpWork warp;
    warp.start_address = val_arr.value().addr + 4 * static_cast<uint64_t>(r0);
    uint64_t instrs =
        gpu::InstrCosts::kWarpSetup +
        static_cast<uint64_t>(ndiag) * gpu::InstrCosts::kEllInner;
    warp.issue_cycles =
        instrs * static_cast<uint64_t>(spec_.cycles_per_warp_instr);
    for (int32_t d = 0; d < ndiag; ++d) {
      uint64_t slot = 4 * (static_cast<uint64_t>(d) * a.rows +
                           static_cast<uint64_t>(r0));
      // val stream plus a contiguous x read x[r + offset] — no gather at
      // all, the reason DIA flies on banded matrices.
      warp.global_bytes +=
          ctx.StreamBytes(val_arr.value().addr + slot,
                          4 * static_cast<uint64_t>(r1 - r0)) +
          ctx.StreamBytes(
              x_arr.value().addr +
                  4 * static_cast<uint64_t>(std::clamp<int64_t>(
                          static_cast<int64_t>(r0) + m_.offsets[d], 0,
                          a.cols)),
              4 * static_cast<uint64_t>(r1 - r0));
    }
    warp.global_bytes += ctx.StreamBytes(
        y_arr.value().addr + 4 * static_cast<uint64_t>(r0),
        4 * static_cast<uint64_t>(r1 - r0));
    ctx.AddWarp(warp);
  }

  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());
  timing_.useful_bytes = static_cast<uint64_t>(m_.PaddedEntries()) * 8 +
                         static_cast<uint64_t>(a.rows) * 4;
  ctx.Finalize(&timing_);
  return Status::OK();
}

void DiaKernel::Multiply(const std::vector<float>& x,
                         std::vector<float>* y) const {
  y->assign(rows_, 0.0f);
  const int32_t ndiag = static_cast<int32_t>(m_.offsets.size());
  for (int32_t d = 0; d < ndiag; ++d) {
    int32_t off = m_.offsets[d];
    for (int32_t r = 0; r < m_.rows; ++r) {
      int64_t c = static_cast<int64_t>(r) + off;
      if (c >= 0 && c < m_.cols) {
        (*y)[r] += m_.values[static_cast<size_t>(d) * m_.rows + r] * x[c];
      }
    }
  }
}

}  // namespace tilespmv
