#include "kernels/cpu_sell_simd.h"

#include <algorithm>
#include <numeric>

#include "gpusim/texture_cache.h"
#include "par/pool.h"
#include "util/check.h"

namespace tilespmv {

Status SellSimdKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  rows_ = a.rows;
  cols_ = a.cols;
  tier_ = simd::ResolvedTier();
  slices_fn_ = simd::SellSlicesForTier(tier_);
  // Chunk height = vector lane width; the scalar tier keeps C = 8 so the
  // storage (and the masked-prefix bookkeeping it exercises) stays
  // identical in shape to the AVX2 build.
  const int c = tier_ == simd::Tier::kScalar ? 8 : simd::LaneWidth(tier_);

  // Sigma-window sort, rounded to a multiple of C: the slice kernels rely
  // on lengths being non-increasing *within a slice* (active lanes form a
  // prefix), which holds exactly when no slice straddles a sort window.
  const int32_t sigma = std::max<int32_t>(c, sigma_ - sigma_ % c);
  std::vector<int64_t> lengths = a.RowLengths();
  Permutation perm(a.rows);
  std::iota(perm.begin(), perm.end(), 0);
  for (int32_t w0 = 0; w0 < a.rows; w0 += sigma) {
    int32_t w1 = std::min(a.rows, w0 + sigma);
    std::stable_sort(perm.begin() + w0, perm.begin() + w1,
                     [&](int32_t x, int32_t y) {
                       return lengths[x] > lengths[y];
                     });
  }
  CsrMatrix sorted;
  if (a.rows == a.cols) {
    sorted = ApplySymmetricPermutation(a, perm);
    row_perm_ = perm;
    col_perm_ = perm;
  } else {
    sorted = ApplyRowPermutation(a, perm);
    row_perm_ = perm;
    col_perm_.clear();
  }

  // Pass 1: slice shapes.
  const int64_t num_slices = (static_cast<int64_t>(a.rows) + c - 1) / c;
  slice_off_.assign(static_cast<size_t>(num_slices) + 1, 0);
  slice_width_.assign(static_cast<size_t>(num_slices), 0);
  int64_t total_cols = 0;  // Sum of slice widths (active[] length).
  for (int64_t s = 0; s < num_slices; ++s) {
    const int32_t r0 = static_cast<int32_t>(s * c);
    const int32_t live = std::min<int32_t>(c, a.rows - r0);
    int64_t width = 0;
    for (int32_t r = r0; r < r0 + live; ++r) {
      width = std::max(width, sorted.RowLength(r));
    }
    slice_width_[static_cast<size_t>(s)] = static_cast<int32_t>(width);
    slice_off_[static_cast<size_t>(s) + 1] =
        slice_off_[static_cast<size_t>(s)] + width * c;
    total_cols += width;
  }
  const int64_t padded = slice_off_.back();

  // Pass 2: column-major slice fill. Padding lanes get col 0 / value 0 —
  // the vector kernels may gather x[0] for them but never accumulate it.
  sell_cols_.assign(static_cast<size_t>(padded), 0);
  sell_vals_.assign(static_cast<size_t>(padded), 0.0f);
  active_.assign(static_cast<size_t>(total_cols), 0);
  for (int64_t s = 0; s < num_slices; ++s) {
    const int32_t r0 = static_cast<int32_t>(s * c);
    const int32_t live = std::min<int32_t>(c, a.rows - r0);
    const int64_t off = slice_off_[static_cast<size_t>(s)];
    const int64_t active_base = off / c;
    const int32_t width = slice_width_[static_cast<size_t>(s)];
    for (int32_t lane = 0; lane < live; ++lane) {
      const int32_t r = r0 + lane;
      const int64_t b = sorted.row_ptr[r];
      const int64_t len = sorted.row_ptr[r + 1] - b;
      for (int64_t j = 0; j < len; ++j) {
        sell_cols_[static_cast<size_t>(off + j * c + lane)] =
            sorted.col_idx[static_cast<size_t>(b + j)];
        sell_vals_[static_cast<size_t>(off + j * c + lane)] =
            sorted.values[static_cast<size_t>(b + j)];
      }
      for (int64_t j = 0; j < len; ++j) {
        // Lengths are non-increasing across lanes, so this counts the
        // active prefix at each column.
        ++active_[static_cast<size_t>(active_base + j)];
      }
    }
    for (int32_t j = 0; j < width; ++j) {
      TILESPMV_CHECK(active_[static_cast<size_t>(active_base + j)] <= live);
    }
  }

  view_ = simd::SellView{};
  view_.c = c;
  view_.rows = a.rows;
  view_.num_slices = num_slices;
  view_.slice_off = slice_off_.data();
  view_.slice_width = slice_width_.data();
  view_.active = active_.data();
  view_.cols = sell_cols_.data();
  view_.vals = sell_vals_.data();

  // Host cost model, as in CsrSimdKernel: compute scaled by lane width but
  // billed on padded slots; val/col streams cover the padding too; x
  // gathers through a simulated L2.
  gpusim::TextureCache l2(cpu_.cache_bytes, cpu_.cache_line_bytes,
                          cpu_.cache_assoc);
  uint64_t x_misses = 0;
  for (int32_t r = 0; r < sorted.rows; ++r) {
    for (int64_t k = sorted.row_ptr[r]; k < sorted.row_ptr[r + 1]; ++k) {
      if (!l2.Access(4 * static_cast<uint64_t>(sorted.col_idx[k]))) {
        ++x_misses;
      }
    }
  }
  const int lanes = simd::LaneWidth(tier_);
  const uint64_t nnz = static_cast<uint64_t>(a.nnz());
  const uint64_t padded_u = static_cast<uint64_t>(padded);
  uint64_t mem_bytes =
      padded_u * 8 + static_cast<uint64_t>(a.rows) * 8 +
      x_misses * static_cast<uint64_t>(cpu_.cache_line_bytes);
  double compute_s = static_cast<double>(padded_u) * cpu_.cycles_per_nnz /
                     static_cast<double>(lanes) / (cpu_.clock_ghz * 1e9);
  double memory_s =
      static_cast<double>(mem_bytes) / (cpu_.mem_bandwidth_gbps * 1e9);

  timing_ = KernelTiming{};
  timing_.seconds = std::max(compute_s, memory_s);
  timing_.flops = 2 * nnz;
  timing_.useful_bytes = nnz * 12 + static_cast<uint64_t>(a.rows) * 8;
  timing_.global_bytes = mem_bytes;
  timing_.tex_hits = l2.hits();
  timing_.tex_misses = l2.misses();
  timing_.launches = 1;
  return Status::OK();
}

void SellSimdKernel::Multiply(const std::vector<float>& x,
                              std::vector<float>* y) const {
  TILESPMV_CHECK(x.size() == static_cast<size_t>(cols_));
  y->resize(static_cast<size_t>(rows_));
  if (view_.num_slices == 0) return;
  // Slices are independent and each covers whole rows, so parallelizing
  // over slices never splits a vector row block (the par::LoopOptions
  // align story, one level up: here the loop variable *is* the block).
  // The length sort makes early slices heavy — guided chunking balances.
  par::LoopOptions options;
  options.grain = std::max<int64_t>(1, 256 / view_.c);
  options.chunking = par::Chunking::kGuided;
  options.label = "par/sell_simd_multiply";
  const simd::SellSlicesFn fn = slices_fn_;
  const simd::SellView view = view_;
  par::ParallelFor(0, view_.num_slices, options, [&](int64_t s0, int64_t s1) {
    fn(view, x.data(), y->data(), s0, s1);
  });
}

}  // namespace tilespmv
