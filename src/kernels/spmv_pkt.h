#ifndef TILESPMV_KERNELS_SPMV_PKT_H_
#define TILESPMV_KERNELS_SPMV_PKT_H_

#include "kernels/spmv.h"
#include "sparse/pkt.h"

namespace tilespmv {

/// NVIDIA's PKT kernel: rows are clustered into packets whose x footprint
/// fits in shared memory; a thread block stages the footprint once and
/// computes from on-chip storage. Setup fails on power-law matrices ("the
/// partition step within this kernel does not produce balanced enough
/// packets and leads to kernel failure").
class PktKernel : public SpMVKernel {
 public:
  explicit PktKernel(const gpusim::DeviceSpec& spec) : SpMVKernel(spec) {}

  std::string_view name() const override { return "pkt"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

 private:
  PktMatrix m_;
};

}  // namespace tilespmv

#endif  // TILESPMV_KERNELS_SPMV_PKT_H_
