#include "kernels/spmv_sell.h"

#include <algorithm>
#include <numeric>

#include "kernels/gpu_common.h"
#include "par/pool.h"

namespace tilespmv {

Status SellKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  rows_ = a.rows;
  cols_ = a.cols;
  slices_.clear();
  padded_slots_ = 0;

  // Sigma-window sort: rows sorted by decreasing length within windows of
  // sigma rows — the full sort's locality damage is bounded to a window.
  std::vector<int64_t> lengths = a.RowLengths();
  Permutation perm(a.rows);
  std::iota(perm.begin(), perm.end(), 0);
  for (int32_t w0 = 0; w0 < a.rows; w0 += sigma_) {
    int32_t w1 = std::min(a.rows, w0 + sigma_);
    std::stable_sort(perm.begin() + w0, perm.begin() + w1,
                     [&](int32_t x, int32_t y) {
                       return lengths[x] > lengths[y];
                     });
  }
  if (a.rows == a.cols) {
    sorted_ = ApplySymmetricPermutation(a, perm);
    row_perm_ = perm;
    col_perm_ = perm;
  } else {
    sorted_ = ApplyRowPermutation(a, perm);
    row_perm_ = perm;
    col_perm_.clear();
  }

  gpu::SimContext ctx(spec_);
  const int32_t c = spec_.warp_size;
  // First pass: slice shapes and total padded storage.
  for (int32_t r0 = 0; r0 < a.rows; r0 += c) {
    Slice slice;
    slice.row_begin = r0;
    slice.rows = std::min(c, a.rows - r0);
    int64_t width = 0;
    for (int32_t r = r0; r < r0 + slice.rows; ++r) {
      width = std::max(width, sorted_.RowLength(r));
    }
    slice.width = static_cast<int32_t>(width);
    padded_slots_ += static_cast<int64_t>(slice.width) * c;
    slices_.push_back(slice);
  }

  Result<gpu::DeviceArray> col_arr = ctx.Alloc(padded_slots_ * 4);
  Result<gpu::DeviceArray> val_arr = ctx.Alloc(padded_slots_ * 4);
  Result<gpu::DeviceArray> ptr_arr =
      ctx.Alloc((static_cast<int64_t>(slices_.size()) + 1) * 8);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&col_arr, &val_arr, &ptr_arr, &x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }

  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());
  timing_.useful_bytes = static_cast<uint64_t>(padded_slots_) * 8 +
                         static_cast<uint64_t>(a.nnz()) * 4 +
                         static_cast<uint64_t>(a.rows) * 4;

  ctx.BeginLaunch();
  int64_t storage_cursor = 0;
  for (const Slice& slice : slices_) {
    gpusim::WarpWork warp;
    warp.start_address =
        val_arr.value().addr + 4 * static_cast<uint64_t>(storage_cursor);
    // ELL-style execution over the slice: width strides, no divergence
    // (rows inside a slice are near-equal by construction).
    uint64_t instrs =
        gpu::InstrCosts::kWarpSetup +
        static_cast<uint64_t>(slice.width) * gpu::InstrCosts::kEllInner +
        gpu::InstrCosts::kRowEpilogue;
    warp.issue_cycles =
        instrs * static_cast<uint64_t>(spec_.cycles_per_warp_instr);
    // Fully coalesced val + col streams over the padded slice.
    warp.global_bytes += 2 * ctx.StreamBytes(
        warp.start_address,
        4 * static_cast<uint64_t>(slice.width) * spec_.warp_size);
    // x gathers for the real entries.
    for (int32_t r = slice.row_begin; r < slice.row_begin + slice.rows; ++r) {
      for (int64_t k = sorted_.row_ptr[r]; k < sorted_.row_ptr[r + 1]; ++k) {
        ctx.TexFetch(x_arr.value().addr, sorted_.col_idx[k], &warp);
      }
    }
    // Coalesced y writes for the slice's rows.
    warp.global_bytes += ctx.StreamBytes(
        y_arr.value().addr + 4 * static_cast<uint64_t>(slice.row_begin),
        4 * static_cast<uint64_t>(slice.rows));
    ctx.AddWarp(warp);
    storage_cursor += static_cast<int64_t>(slice.width) * spec_.warp_size;
  }
  ctx.Finalize(&timing_);
  return Status::OK();
}

void SellKernel::Multiply(const std::vector<float>& x,
                          std::vector<float>* y) const {
  y->assign(rows_, 0.0f);
  // Rows of the length-sorted matrix are independent; per-row accumulation
  // order is unchanged, so the result is bitwise identical. The sort means
  // early chunks are heavy and late ones light — guided chunking balances.
  par::LoopOptions options;
  options.grain = 256;
  options.chunking = par::Chunking::kGuided;
  options.label = "par/sell_multiply";
  par::ParallelFor(0, sorted_.rows, options, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float sum = 0.0f;
      for (int64_t k = sorted_.row_ptr[r]; k < sorted_.row_ptr[r + 1]; ++k) {
        sum += sorted_.values[k] * x[sorted_.col_idx[k]];
      }
      (*y)[r] = sum;
    }
  });
}

}  // namespace tilespmv
