#include "kernels/spmv_merge_csr.h"

#include <algorithm>

#include "kernels/gpu_common.h"
#include "par/pool.h"

namespace tilespmv {
namespace {

/// Finds the merge-path split for diagonal `d`: the number of row-ends
/// consumed when row-end offsets (row_ptr[1..rows]) are merged with the
/// non-zero indices. Returns i such that i row-ends and d - i non-zeros lie
/// before the diagonal.
int32_t MergePathSearch(const CsrMatrix& a, int64_t d) {
  int64_t lo = std::max<int64_t>(0, d - a.nnz());
  int64_t hi = std::min<int64_t>(d, a.rows);
  while (lo < hi) {
    int64_t mid = (lo + hi) / 2;
    // Row-end mid is consumed before diagonal d iff row_ptr[mid+1] <= d-mid-1
    // ... equivalently the classic merge predicate below.
    if (a.row_ptr[mid + 1] <= d - mid - 1) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int32_t>(lo);
}

}  // namespace

Status MergeCsrKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  a_ = a;
  rows_ = a.rows;
  cols_ = a.cols;
  segments_.clear();

  const int64_t merge_len = static_cast<int64_t>(a.rows) + a.nnz();
  const int64_t num_warps =
      std::max<int64_t>(1, std::min<int64_t>(spec_.MaxActiveWarps(),
                                             (merge_len + 31) / 32));
  const int64_t items = (merge_len + num_warps - 1) / num_warps;

  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> row_ptr_arr =
      ctx.Alloc((static_cast<int64_t>(a.rows) + 1) * 4);
  Result<gpu::DeviceArray> col_arr = ctx.Alloc(a.nnz() * 4);
  Result<gpu::DeviceArray> val_arr = ctx.Alloc(a.nnz() * 4);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&row_ptr_arr, &col_arr, &val_arr, &x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }

  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());
  timing_.useful_bytes = static_cast<uint64_t>(a.nnz()) * 12 +
                         static_cast<uint64_t>(a.rows) * 12;

  int log_m = 1;
  while ((1LL << log_m) < merge_len) ++log_m;

  ctx.BeginLaunch();
  for (int64_t w = 0; w < num_warps; ++w) {
    int64_t d0 = std::min(merge_len, w * items);
    int64_t d1 = std::min(merge_len, d0 + items);
    Segment seg;
    seg.row_begin = MergePathSearch(a, d0);
    seg.row_end = MergePathSearch(a, d1);
    seg.nnz_begin = d0 - seg.row_begin;
    seg.nnz_end = d1 - seg.row_end;
    segments_.push_back(seg);

    gpusim::WarpWork warp;
    warp.start_address =
        val_arr.value().addr + 4 * static_cast<uint64_t>(seg.nnz_begin);
    int64_t seg_nnz = seg.nnz_end - seg.nnz_begin;
    int64_t seg_rows = seg.row_end - seg.row_begin;
    // Two merge-path binary searches, then a strided sequential merge with a
    // per-stride warp reduction keyed on the precomputed row flags.
    uint64_t instrs =
        gpu::InstrCosts::kWarpSetup + 2ULL * log_m +
        static_cast<uint64_t>((seg_nnz + seg_rows + 31) / 32) *
            (gpu::InstrCosts::kCooInner - 2) +
        static_cast<uint64_t>((seg_nnz + 31) / 32) * 5 *
            gpu::InstrCosts::kReduceStep;
    warp.issue_cycles =
        instrs * static_cast<uint64_t>(spec_.cycles_per_warp_instr);
    // Streams: val + col for the nnz range, row_ptr for the row range.
    warp.global_bytes +=
        2 * ctx.StreamBytes(warp.start_address,
                            4 * static_cast<uint64_t>(seg_nnz)) +
        ctx.StreamBytes(
            row_ptr_arr.value().addr + 4 * static_cast<uint64_t>(seg.row_begin),
            4 * static_cast<uint64_t>(seg_rows + 1));
    // x gathers via texture (merge CSR binds x read-only like the others).
    for (int64_t k = seg.nnz_begin; k < seg.nnz_end; ++k) {
      ctx.TexFetch(x_arr.value().addr, a.col_idx[k], &warp);
    }
    // Completed rows write once; the boundary row goes to the carry fixup.
    warp.scattered_bytes += ctx.ScatterBytes(
        static_cast<uint64_t>(seg_rows) + 1);
    ctx.AddWarp(warp);
  }
  // Carry fixup launch combining per-warp boundary partial sums.
  ctx.BeginLaunch();
  gpusim::WarpWork fixup;
  fixup.issue_cycles = static_cast<uint64_t>(
      (gpu::InstrCosts::kWarpSetup + num_warps) * spec_.cycles_per_warp_instr);
  fixup.scattered_bytes =
      ctx.ScatterBytes(static_cast<uint64_t>(num_warps)) * 2;
  ctx.AddWarp(fixup);

  ctx.Finalize(&timing_);
  return Status::OK();
}

void MergeCsrKernel::Multiply(const std::vector<float>& x,
                              std::vector<float>* y) const {
  y->assign(rows_, 0.0f);
  // Segments execute in parallel, each replaying its warp's merge walk.
  // In-loop flushes on rows past the segment's first row are complete rows
  // no other segment touches, so they apply directly (y[row] is still the
  // assigned 0.0f, matching the serial += on 0.0f). Flushes on the
  // segment's first row and the trailing carry can hit rows shared with
  // neighbouring segments; those are recorded and replayed serially in
  // segment order below — the exact serial += sequence per row, so the
  // result is bitwise identical at every thread count.
  struct Deferred {
    int32_t row[2];
    float value[2];
    int count = 0;
  };
  std::vector<Deferred> deferred(segments_.size());
  par::LoopOptions options;
  options.grain = 1;
  options.chunking = par::Chunking::kGuided;
  options.label = "par/merge_csr_segments";
  par::ParallelFor(
      0, static_cast<int64_t>(segments_.size()), options,
      [&](int64_t s0, int64_t s1) {
        for (int64_t s = s0; s < s1; ++s) {
          const Segment& seg = segments_[s];
          Deferred& d = deferred[s];
          int32_t row = seg.row_begin;
          float carry = 0.0f;
          for (int64_t k = seg.nnz_begin; k < seg.nnz_end; ++k) {
            while (row < rows_ && a_.row_ptr[row + 1] <= k) {
              if (row == seg.row_begin) {
                d.row[d.count] = row;
                d.value[d.count] = carry;
                ++d.count;
              } else {
                (*y)[row] += carry;
              }
              carry = 0.0f;
              ++row;
            }
            carry += a_.values[k] * x[a_.col_idx[k]];
          }
          if (row < rows_) {
            d.row[d.count] = row;
            d.value[d.count] = carry;
            ++d.count;
          }
        }
      });
  for (const Deferred& d : deferred) {
    for (int i = 0; i < d.count; ++i) (*y)[d.row[i]] += d.value[i];
  }
}

}  // namespace tilespmv
