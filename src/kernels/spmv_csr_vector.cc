#include "kernels/spmv_csr_vector.h"

#include <algorithm>

#include "kernels/gpu_common.h"

namespace tilespmv {
namespace {

/// Shared Setup for the two warp/half-warp-per-row kernels.
/// `lanes_per_row` is 32 for CSR-vector and 16 for BSK & BDW; `padded`
/// selects BSK & BDW's aligned, padded row storage.
Status SetupRowVector(const CsrMatrix& a, const gpusim::DeviceSpec& spec,
                      int lanes_per_row, bool padded, KernelTiming* timing) {
  gpu::SimContext ctx(spec);
  Result<gpu::DeviceArray> row_ptr_arr =
      ctx.Alloc((static_cast<int64_t>(a.rows) + 1) * 4);
  // BSK & BDW pad each row to a multiple of lanes_per_row.
  int64_t stored = 0;
  for (int32_t r = 0; r < a.rows; ++r) {
    int64_t len = a.RowLength(r);
    stored += padded ? (len + lanes_per_row - 1) / lanes_per_row *
                           lanes_per_row
                     : len;
  }
  Result<gpu::DeviceArray> col_arr = ctx.Alloc(stored * 4);
  Result<gpu::DeviceArray> val_arr = ctx.Alloc(stored * 4);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&row_ptr_arr, &col_arr, &val_arr, &x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }
  const uint64_t val_addr = val_arr.value().addr;
  const uint64_t x_addr = x_arr.value().addr;
  const int rows_per_warp = spec.warp_size / lanes_per_row;
  const int reduce_steps = lanes_per_row == 32 ? 5 : 4;

  ctx.BeginLaunch();
  int64_t stored_cursor = 0;
  for (int32_t r0 = 0; r0 < a.rows; r0 += rows_per_warp) {
    int32_t r1 = std::min(a.rows, r0 + rows_per_warp);
    gpusim::WarpWork warp;
    warp.start_address =
        val_addr + 4 * static_cast<uint64_t>(padded ? stored_cursor
                                                    : a.row_ptr[r0]);
    uint64_t instrs = gpu::InstrCosts::kWarpSetup;
    for (int32_t r = r0; r < r1; ++r) {
      int64_t len = a.RowLength(r);
      int64_t strides = (len + lanes_per_row - 1) / lanes_per_row;
      // Even an empty row pays one stride of predicated lanes plus the
      // reduction — the wasted-lane effect on short power-law rows.
      strides = std::max<int64_t>(strides, 1);
      instrs += static_cast<uint64_t>(strides) * gpu::InstrCosts::kSpmvInner +
                static_cast<uint64_t>(reduce_steps) *
                    gpu::InstrCosts::kReduceStep +
                gpu::InstrCosts::kRowEpilogue;
      int64_t padded_len = strides * lanes_per_row;
      int64_t stream_len = padded ? padded_len : len;
      uint64_t start =
          val_addr + 4 * static_cast<uint64_t>(padded ? stored_cursor
                                                      : a.row_ptr[r]);
      // val and col streams.
      warp.global_bytes +=
          2 * ctx.StreamBytes(start, 4 * static_cast<uint64_t>(stream_len));
      // x gathers through texture.
      for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
        ctx.TexFetch(x_addr, a.col_idx[k], &warp);
      }
      // One y write by lane 0 (its own transaction).
      warp.scattered_bytes += ctx.ScatterBytes(1);
      if (padded) stored_cursor += padded_len;
    }
    warp.issue_cycles +=
        instrs * static_cast<uint64_t>(spec.cycles_per_warp_instr);
    ctx.AddWarp(warp);
  }

  *timing = KernelTiming{};
  timing->flops = 2 * static_cast<uint64_t>(a.nnz());
  timing->useful_bytes =
      static_cast<uint64_t>(padded ? stored : a.nnz()) * 8 +
      static_cast<uint64_t>(a.nnz()) * 4 + static_cast<uint64_t>(a.rows) * 12;
  ctx.Finalize(timing);
  return Status::OK();
}

}  // namespace

Status CsrVectorKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  a_ = a;
  rows_ = a.rows;
  cols_ = a.cols;
  return SetupRowVector(a, spec_, /*lanes_per_row=*/32, /*padded=*/false,
                        &timing_);
}

void CsrVectorKernel::Multiply(const std::vector<float>& x,
                               std::vector<float>* y) const {
  CsrMultiply(a_, x, y);
}

Status BskBdwKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  a_ = a;
  rows_ = a.rows;
  cols_ = a.cols;
  return SetupRowVector(a, spec_, /*lanes_per_row=*/16, /*padded=*/true,
                        &timing_);
}

void BskBdwKernel::Multiply(const std::vector<float>& x,
                            std::vector<float>* y) const {
  CsrMultiply(a_, x, y);
}

}  // namespace tilespmv
