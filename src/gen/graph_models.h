#ifndef TILESPMV_GEN_GRAPH_MODELS_H_
#define TILESPMV_GEN_GRAPH_MODELS_H_

#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace tilespmv {

/// Alternative random-graph families beyond R-MAT. The paper's claims rest
/// on the power-law property, not on one generator — these models let tests
/// and benches confirm that the tile-composite advantage is
/// generator-invariant (holds for preferential attachment and configuration
/// models) and disappears where it should (small-world graphs have no
/// degree skew).

/// Barabási–Albert preferential attachment: each new node attaches
/// `edges_per_node` edges to existing nodes with probability proportional
/// to their current degree. Degree distribution ~ k^-3.
CsrMatrix GenerateBarabasiAlbert(int32_t n, int32_t edges_per_node,
                                 uint64_t seed);

/// Configuration model with a discrete power-law degree sequence of
/// exponent `alpha` (degrees in [1, max_degree], stubs paired uniformly;
/// self-loops and multi-edges merged).
CsrMatrix GenerateConfigurationModel(int32_t n, double alpha,
                                     int32_t max_degree, uint64_t seed);

/// Watts–Strogatz small-world graph: ring lattice of degree `k` with
/// rewiring probability `beta`. Near-uniform degrees — the anti-power-law
/// control case.
CsrMatrix GenerateWattsStrogatz(int32_t n, int32_t k, double beta,
                                uint64_t seed);

/// Deterministic Kronecker power of a seed pattern: the k-th Kronecker
/// power of the 2x2 initiator {{1,1},{1,0}} (n = 2^k nodes). Deterministic,
/// strongly self-similar, power-law-ish — a reproducible worst case for
/// locality.
CsrMatrix GenerateKronecker(int levels);

}  // namespace tilespmv

#endif  // TILESPMV_GEN_GRAPH_MODELS_H_
