#ifndef TILESPMV_GEN_STRUCTURED_H_
#define TILESPMV_GEN_STRUCTURED_H_

#include <cstdint>

#include "sparse/csr.h"

namespace tilespmv {

/// Fully dense n x n matrix stored sparsely — the paper's bandwidth
/// ceiling benchmark (2000 x 2000 in Table 2).
CsrMatrix GenerateDense(int32_t n);

/// Circuit-simulation-like matrix: unit diagonal plus a few uniformly random
/// off-diagonals per row (~nnz_per_row). Irregular but not skewed; DIA fails
/// on it (too many diagonals), matching Table 2's Circuit (171K, 0.96M nnz).
CsrMatrix GenerateCircuit(int32_t n, double nnz_per_row, uint64_t seed);

/// FEM-style stencil matrix: rows of near-identical length with non-zeros
/// clustered in a band around the diagonal (FEM/Harbor: 47K, 2.4M nnz,
/// ~51 nnz/row). CSR-vector and BSK & BDW's kernel do well here.
CsrMatrix GenerateFemStencil(int32_t n, int32_t nnz_per_row,
                             int32_t bandwidth, uint64_t seed);

/// Linear-programming-style matrix: short and very wide (rows << cols) with
/// long rows of uniform random columns (LP: 4.3K x 1M, 11M nnz).
CsrMatrix GenerateLp(int32_t rows, int32_t cols, int64_t nnz, uint64_t seed);

/// Protein-interaction-style matrix: dense diagonal blocks (cliques) plus
/// sparse random coupling (Protein: 36K, 4M nnz, ~119 nnz/row).
CsrMatrix GenerateProtein(int32_t n, int32_t block_size, double fill,
                          uint64_t seed);

/// Strictly banded matrix (every non-zero within `half_band` of the
/// diagonal); the one family DIA succeeds on.
CsrMatrix GenerateBanded(int32_t n, int32_t half_band, uint64_t seed);

}  // namespace tilespmv

#endif  // TILESPMV_GEN_STRUCTURED_H_
