#ifndef TILESPMV_GEN_POWER_LAW_H_
#define TILESPMV_GEN_POWER_LAW_H_

#include <cstdint>

#include "sparse/csr.h"

namespace tilespmv {

/// R-MAT (recursive matrix) generator parameters. The default quadrant
/// probabilities (0.57, 0.19, 0.19, 0.05) produce graphs whose in- and
/// out-degree distributions follow a power law, standing in for the paper's
/// Flickr / LiveJournal / Wikipedia / Youtube / web crawls.
struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  /// Per-level probability perturbation; keeps the generated matrix from
  /// being exactly self-similar (mirrors real-graph noise).
  double noise = 0.1;
  uint64_t seed = 42;
};

/// Generates an n x n directed graph adjacency matrix with ~target_nnz edges
/// (duplicates are merged, so the exact count can land slightly below).
/// Values are 1.0f. Works for any n >= 1 (non-power-of-two sizes use
/// rejection).
CsrMatrix GenerateRmat(int32_t n, int64_t target_nnz,
                       const RmatOptions& options);

/// Generates a bipartite-ish power-law matrix with `rows` x `cols`
/// (rectangular R-MAT); used for scaled stand-ins where rows != cols.
CsrMatrix GenerateRmatRect(int32_t rows, int32_t cols, int64_t target_nnz,
                           const RmatOptions& options);

}  // namespace tilespmv

#endif  // TILESPMV_GEN_POWER_LAW_H_
