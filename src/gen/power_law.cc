#include "gen/power_law.h"

#include <algorithm>

#include "util/check.h"
#include "util/random.h"

namespace tilespmv {
namespace {

int BitsFor(int64_t n) {
  int bits = 0;
  while ((1LL << bits) < n) ++bits;
  return bits;
}

/// Samples one index in [0, n) by descending the R-MAT quadrant tree along
/// one dimension. `p_high` is the probability of taking the low half
/// (a + b for rows, a + c for columns).
int32_t SampleIndex(int64_t n, int bits, double p_low, double noise,
                    Pcg32* rng) {
  for (;;) {
    int64_t idx = 0;
    for (int level = 0; level < bits; ++level) {
      // Perturb the probability per level so degrees aren't exactly
      // self-similar.
      double p = p_low;
      if (noise > 0) {
        p += noise * (rng->NextDouble() - 0.5) * p_low;
      }
      idx <<= 1;
      if (rng->NextDouble() >= p) idx |= 1;
    }
    if (idx < n) return static_cast<int32_t>(idx);
    // Rejection for non-power-of-two n; the retry rate is < 50%.
  }
}

}  // namespace

CsrMatrix GenerateRmatRect(int32_t rows, int32_t cols, int64_t target_nnz,
                           const RmatOptions& options) {
  TILESPMV_CHECK(rows >= 1 && cols >= 1 && target_nnz >= 0);
  Pcg32 rng(options.seed);
  const int row_bits = BitsFor(rows);
  const int col_bits = BitsFor(cols);
  const double p_row_low = options.a + options.b;  // P(top half).
  const double p_col_low = options.a + options.c;  // P(left half).
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(target_nnz));
  for (int64_t e = 0; e < target_nnz; ++e) {
    int32_t r = SampleIndex(rows, row_bits, p_row_low, options.noise, &rng);
    int32_t c = SampleIndex(cols, col_bits, p_col_low, options.noise, &rng);
    triplets.push_back(Triplet{r, c, 1.0f});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
  // Adjacency semantics: duplicate edges collapse to weight 1.
  for (float& v : m.values) v = 1.0f;
  return m;
}

CsrMatrix GenerateRmat(int32_t n, int64_t target_nnz,
                       const RmatOptions& options) {
  return GenerateRmatRect(n, n, target_nnz, options);
}

}  // namespace tilespmv
