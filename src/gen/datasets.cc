#include "gen/datasets.h"

#include <algorithm>
#include <cmath>

#include "gen/power_law.h"
#include "gen/structured.h"

namespace tilespmv {
namespace {

// Default scales keep the full benchmark suite tractable on one CPU core;
// every generator preserves mean degree and skew, so kernel rankings are
// scale-stable (verified by tests/bench at multiple scales).
constexpr double kPowerLawScale = 1.0 / 8;
constexpr double kWebGraphScale = 1.0 / 128;

uint64_t SeedFor(const std::string& name) {
  // FNV-1a, so each dataset gets a stable, distinct stream.
  uint64_t h = 1469598103934665603ULL;
  for (char ch : name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

const std::vector<DatasetSpec>& PowerLawDatasets() {
  static const std::vector<DatasetSpec>* kSpecs = new std::vector<DatasetSpec>{
      {"webbase", 1000000, 1000000, 3105536, true, kPowerLawScale},
      {"flickr", 1715255, 1715255, 22613981, true, kPowerLawScale},
      {"livejournal", 5284457, 5284457, 77402652, true, kPowerLawScale},
      {"wikipedia", 1864433, 1864433, 40000000, true, kPowerLawScale},
      {"youtube", 1157827, 1157827, 4945382, true, kPowerLawScale},
  };
  return *kSpecs;
}

const std::vector<DatasetSpec>& UnstructuredDatasets() {
  static const std::vector<DatasetSpec>* kSpecs = new std::vector<DatasetSpec>{
      {"dense", 2000, 2000, 4000000, false, 1.0},
      {"circuit", 170998, 170998, 958936, false, 1.0},
      {"fem_harbor", 46835, 46835, 2374001, false, 1.0},
      {"lp", 4284, 1092610, 11279748, false, 1.0},
      {"protein", 36417, 36417, 4344765, false, 1.0},
  };
  return *kSpecs;
}

const std::vector<DatasetSpec>& WebGraphDatasets() {
  static const std::vector<DatasetSpec>* kSpecs = new std::vector<DatasetSpec>{
      {"it-2004", 41291594, 41291594, 1150725436, true, kWebGraphScale},
      {"sk-2005", 50636154, 50636154, 1949412601, true, kWebGraphScale},
      {"uk-union", 133633040, 133633040, 5507679822, true, kWebGraphScale},
      {"web-2001", 118142155, 118142155, 1019903190, true, kWebGraphScale},
  };
  return *kSpecs;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const auto* registry :
       {&PowerLawDatasets(), &UnstructuredDatasets(), &WebGraphDatasets()}) {
    for (const DatasetSpec& spec : *registry) {
      if (spec.name == name) return spec;
    }
  }
  return Status::InvalidArgument("unknown dataset: " + name);
}

Result<CsrMatrix> MakeDataset(const std::string& name, double scale) {
  Result<DatasetSpec> found = FindDataset(name);
  if (!found.ok()) return found.status();
  const DatasetSpec& spec = found.value();
  double s = scale > 0 ? scale : spec.default_scale;
  uint64_t seed = SeedFor(name);

  if (spec.power_law) {
    int32_t n = static_cast<int32_t>(
        std::max<int64_t>(64, static_cast<int64_t>(spec.paper_rows * s)));
    int64_t nnz =
        std::max<int64_t>(64, static_cast<int64_t>(spec.paper_nnz * s));
    RmatOptions opt;
    opt.seed = seed;
    // Web crawls are more skewed than social graphs; bias the hub quadrant
    // a bit harder for Table 3 datasets.
    for (const DatasetSpec& web : WebGraphDatasets()) {
      if (web.name == name) {
        opt.a = 0.62;
        opt.d = 0.04;
        break;
      }
    }
    return GenerateRmat(n, nnz, opt);
  }
  if (name == "dense") {
    int32_t n = static_cast<int32_t>(
        std::max<int64_t>(8, static_cast<int64_t>(spec.paper_rows *
                                                  std::sqrt(s))));
    return GenerateDense(n);
  }
  if (name == "circuit") {
    int32_t n = static_cast<int32_t>(
        std::max<int64_t>(64, static_cast<int64_t>(spec.paper_rows * s)));
    return GenerateCircuit(n, 5.6, seed);
  }
  if (name == "fem_harbor") {
    int32_t n = static_cast<int32_t>(
        std::max<int64_t>(64, static_cast<int64_t>(spec.paper_rows * s)));
    return GenerateFemStencil(n, 51, 400, seed);
  }
  if (name == "lp") {
    int32_t rows = static_cast<int32_t>(
        std::max<int64_t>(16, static_cast<int64_t>(spec.paper_rows * s)));
    int32_t cols = static_cast<int32_t>(
        std::max<int64_t>(64, static_cast<int64_t>(spec.paper_cols * s)));
    int64_t nnz =
        std::max<int64_t>(64, static_cast<int64_t>(spec.paper_nnz * s));
    return GenerateLp(rows, cols, nnz, seed);
  }
  if (name == "protein") {
    int32_t n = static_cast<int32_t>(
        std::max<int64_t>(128, static_cast<int64_t>(spec.paper_rows * s)));
    return GenerateProtein(n, 110, 1.0, seed);
  }
  return Status::Internal("dataset " + name + " has no generator");
}

}  // namespace tilespmv
