#include "gen/graph_models.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace tilespmv {

CsrMatrix GenerateBarabasiAlbert(int32_t n, int32_t edges_per_node,
                                 uint64_t seed) {
  TILESPMV_CHECK(n >= 2 && edges_per_node >= 1);
  Pcg32 rng(seed);
  // Repeated-endpoint list: sampling a uniform element of `endpoints` is
  // exactly degree-proportional sampling.
  std::vector<int32_t> endpoints;
  endpoints.reserve(2LL * n * edges_per_node);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(n) * edges_per_node);
  // Seed clique of edges_per_node + 1 nodes.
  int32_t seed_nodes = std::min(n, edges_per_node + 1);
  for (int32_t i = 0; i < seed_nodes; ++i) {
    for (int32_t j = i + 1; j < seed_nodes; ++j) {
      triplets.push_back(Triplet{i, j, 1.0f});
      triplets.push_back(Triplet{j, i, 1.0f});
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  for (int32_t v = seed_nodes; v < n; ++v) {
    for (int32_t e = 0; e < edges_per_node; ++e) {
      int32_t u = endpoints[rng.NextBounded(
          static_cast<uint32_t>(endpoints.size()))];
      triplets.push_back(Triplet{v, u, 1.0f});
      triplets.push_back(Triplet{u, v, 1.0f});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  CsrMatrix m = CsrMatrix::FromTriplets(n, n, std::move(triplets));
  for (float& v : m.values) v = 1.0f;  // Merge multi-edges to weight 1.
  return m;
}

CsrMatrix GenerateConfigurationModel(int32_t n, double alpha,
                                     int32_t max_degree, uint64_t seed) {
  TILESPMV_CHECK(n >= 2 && alpha > 1.0 && max_degree >= 1);
  Pcg32 rng(seed);
  // Draw degrees from P(k) ~ k^-alpha on [1, max_degree] by inverse CDF.
  std::vector<int32_t> stubs;
  for (int32_t v = 0; v < n; ++v) {
    double u = rng.NextDouble();
    double k = std::pow(1.0 - u * (1.0 - std::pow(max_degree, 1.0 - alpha)),
                        1.0 / (1.0 - alpha));
    int32_t deg = std::max<int32_t>(
        1, std::min<int32_t>(max_degree, static_cast<int32_t>(k)));
    for (int32_t s = 0; s < deg; ++s) stubs.push_back(v);
  }
  // Fisher-Yates shuffle, then pair adjacent stubs.
  for (size_t i = stubs.size(); i > 1; --i) {
    size_t j = rng.NextBounded(static_cast<uint32_t>(i));
    std::swap(stubs[i - 1], stubs[j]);
  }
  std::vector<Triplet> triplets;
  triplets.reserve(stubs.size());
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] == stubs[i + 1]) continue;  // Drop self-loops.
    triplets.push_back(Triplet{stubs[i], stubs[i + 1], 1.0f});
    triplets.push_back(Triplet{stubs[i + 1], stubs[i], 1.0f});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(n, n, std::move(triplets));
  for (float& v : m.values) v = 1.0f;
  return m;
}

CsrMatrix GenerateWattsStrogatz(int32_t n, int32_t k, double beta,
                                uint64_t seed) {
  TILESPMV_CHECK(n >= 4 && k >= 2 && k < n);
  Pcg32 rng(seed);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(n) * k);
  for (int32_t v = 0; v < n; ++v) {
    for (int32_t j = 1; j <= k / 2; ++j) {
      int32_t target = (v + j) % n;
      if (rng.NextDouble() < beta) {
        // Rewire to a uniform random non-self target.
        do {
          target = static_cast<int32_t>(rng.NextBounded(n));
        } while (target == v);
      }
      triplets.push_back(Triplet{v, target, 1.0f});
      triplets.push_back(Triplet{target, v, 1.0f});
    }
  }
  CsrMatrix m = CsrMatrix::FromTriplets(n, n, std::move(triplets));
  for (float& v : m.values) v = 1.0f;
  return m;
}

CsrMatrix GenerateKronecker(int levels) {
  TILESPMV_CHECK(levels >= 1 && levels <= 14);  // O(4^levels) scan.
  const int32_t n = 1 << levels;
  std::vector<Triplet> triplets;
  // With initiator {{1,1},{1,0}} only the (1,1) cell is zero, so an entry
  // (r, c) of the Kronecker power exists iff no bit position has both
  // r-bit and c-bit set: r & c == 0. Node 0 connects to everyone (the hub);
  // degrees follow a binomial-of-zero-bits law — heavily skewed.
  for (int32_t r = 0; r < n; ++r) {
    for (int32_t c = 0; c < n; ++c) {
      if ((r & c) == 0) triplets.push_back(Triplet{r, c, 1.0f});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace tilespmv
