#ifndef TILESPMV_GEN_DATASETS_H_
#define TILESPMV_GEN_DATASETS_H_

#include <string>
#include <vector>

#include "sparse/csr.h"
#include "util/status.h"

namespace tilespmv {

/// A named dataset replicating one row of the paper's Table 2 (single-GPU
/// matrices) or Table 3 (web graphs). `paper_rows` / `paper_nnz` record the
/// original sizes; generation scales both by `scale`.
struct DatasetSpec {
  std::string name;
  int64_t paper_rows = 0;
  int64_t paper_cols = 0;
  int64_t paper_nnz = 0;
  bool power_law = false;
  /// Default scale this dataset is generated at (1.0 = paper size).
  double default_scale = 1.0;
};

/// Table 2 power-law graphs: webbase, flickr, livejournal, wikipedia,
/// youtube.
const std::vector<DatasetSpec>& PowerLawDatasets();

/// Table 2 unstructured matrices: dense, circuit, fem_harbor, lp, protein.
const std::vector<DatasetSpec>& UnstructuredDatasets();

/// Table 3 web graphs: it-2004, sk-2005, uk-union, web-2001.
const std::vector<DatasetSpec>& WebGraphDatasets();

/// Looks up a spec by name across all registries.
Result<DatasetSpec> FindDataset(const std::string& name);

/// Generates the named dataset at `scale` times the paper's size (scale <= 0
/// uses the spec's default scale). Deterministic for a given (name, scale).
Result<CsrMatrix> MakeDataset(const std::string& name, double scale = 0.0);

}  // namespace tilespmv

#endif  // TILESPMV_GEN_DATASETS_H_
