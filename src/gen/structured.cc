#include "gen/structured.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace tilespmv {

CsrMatrix GenerateDense(int32_t n) {
  CsrMatrix m;
  m.rows = n;
  m.cols = n;
  m.row_ptr.resize(static_cast<size_t>(n) + 1);
  m.col_idx.resize(static_cast<size_t>(n) * n);
  m.values.resize(static_cast<size_t>(n) * n);
  for (int32_t r = 0; r < n; ++r) {
    m.row_ptr[r] = static_cast<int64_t>(r) * n;
    for (int32_t c = 0; c < n; ++c) {
      m.col_idx[static_cast<size_t>(r) * n + c] = c;
      m.values[static_cast<size_t>(r) * n + c] =
          1.0f + 0.001f * static_cast<float>((r + c) % 7);
    }
  }
  m.row_ptr[n] = static_cast<int64_t>(n) * n;
  return m;
}

CsrMatrix GenerateCircuit(int32_t n, double nnz_per_row, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(n * (nnz_per_row + 1)));
  for (int32_t r = 0; r < n; ++r) {
    triplets.push_back(Triplet{r, r, 4.0f});
    // Poisson-ish number of couplings: floor plus probabilistic extra.
    int extra = static_cast<int>(nnz_per_row - 1);
    if (rng.NextDouble() < (nnz_per_row - 1) - extra) ++extra;
    for (int j = 0; j < extra; ++j) {
      int32_t c = static_cast<int32_t>(rng.NextBounded(n));
      triplets.push_back(Triplet{r, c, -1.0f});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

CsrMatrix GenerateFemStencil(int32_t n, int32_t nnz_per_row,
                             int32_t bandwidth, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(n) * nnz_per_row);
  for (int32_t r = 0; r < n; ++r) {
    triplets.push_back(Triplet{r, r, 8.0f});
    // Deterministic stencil neighbors plus jitter within the band, mimicking
    // a 3D mesh row: contiguous runs near the diagonal.
    int placed = 1;
    int32_t run_start = std::max(0, r - bandwidth / 2);
    while (placed < nnz_per_row) {
      int32_t offset = static_cast<int32_t>(rng.NextBounded(bandwidth));
      int32_t c = run_start + offset;
      if (c >= n) c = n - 1 - offset % std::max(1, n / 2);
      if (c < 0) c = 0;
      triplets.push_back(Triplet{r, c, -1.0f});
      ++placed;
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

CsrMatrix GenerateLp(int32_t rows, int32_t cols, int64_t nnz, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(nnz));
  int64_t per_row = nnz / rows;
  for (int32_t r = 0; r < rows; ++r) {
    for (int64_t j = 0; j < per_row; ++j) {
      int32_t c = static_cast<int32_t>(rng.NextBounded(cols));
      triplets.push_back(Triplet{r, c, 1.0f + rng.NextFloat()});
    }
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
}

CsrMatrix GenerateProtein(int32_t n, int32_t block_size, double fill,
                          uint64_t seed) {
  TILESPMV_CHECK(block_size >= 1);
  Pcg32 rng(seed);
  std::vector<Triplet> triplets;
  for (int32_t base = 0; base < n; base += block_size) {
    int32_t bs = std::min(block_size, n - base);
    for (int32_t i = 0; i < bs; ++i) {
      for (int32_t j = 0; j < bs; ++j) {
        if (i == j || rng.NextDouble() < fill) {
          triplets.push_back(Triplet{base + i, base + j, 1.0f});
        }
      }
    }
    // Sparse coupling to other blocks.
    for (int32_t i = 0; i < bs; ++i) {
      for (int k = 0; k < 4; ++k) {
        int32_t c = static_cast<int32_t>(rng.NextBounded(n));
        triplets.push_back(Triplet{base + i, c, 0.5f});
      }
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

CsrMatrix GenerateBanded(int32_t n, int32_t half_band, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Triplet> triplets;
  for (int32_t r = 0; r < n; ++r) {
    for (int32_t c = std::max(0, r - half_band);
         c <= std::min(n - 1, r + half_band); ++c) {
      // Keep ~70% of in-band entries so the band is not fully dense.
      if (c == r || rng.NextDouble() < 0.7) {
        triplets.push_back(Triplet{r, c, c == r ? 4.0f : -1.0f});
      }
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace tilespmv
