#include "par/taskgraph.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"

namespace tilespmv::par {
namespace {

/// Monotone id shared by all graphs so concurrent replays of one frozen
/// graph are distinguishable in traces.
std::atomic<uint64_t> g_run_counter{0};

}  // namespace

int32_t TaskGraph::AddTask(std::string label) {
  if (frozen_) {
    std::fprintf(stderr, "TaskGraph::AddTask after Freeze()\n");
    std::abort();
  }
  labels_.push_back(std::move(label));
  preds_.emplace_back();
  return static_cast<int32_t>(labels_.size()) - 1;
}

void TaskGraph::AddDep(int32_t task, int32_t pred) {
  if (frozen_ || task < 0 || pred < 0 || task >= num_tasks() ||
      pred >= num_tasks() || task == pred) {
    std::fprintf(stderr, "TaskGraph::AddDep(%d, %d) invalid (%d tasks)\n",
                 task, pred, num_tasks());
    std::abort();
  }
  std::vector<int32_t>& preds = preds_[static_cast<size_t>(task)];
  if (std::find(preds.begin(), preds.end(), pred) != preds.end()) return;
  preds.push_back(pred);
  ++num_edges_;
}

void TaskGraph::Freeze() {
  if (frozen_) {
    std::fprintf(stderr, "TaskGraph::Freeze called twice\n");
    std::abort();
  }
  const int32_t n = num_tasks();
  initial_indeg_.assign(static_cast<size_t>(n), 0);
  succ_offsets_.assign(static_cast<size_t>(n) + 1, 0);
  span_args_.resize(static_cast<size_t>(n));
  for (int32_t t = 0; t < n; ++t) {
    const std::vector<int32_t>& preds = preds_[static_cast<size_t>(t)];
    initial_indeg_[static_cast<size_t>(t)] =
        static_cast<int32_t>(preds.size());
    // The complete per-task args body is rendered here, once, so the drain
    // loop's tracing path is one string copy per task.
    std::string& args = span_args_[static_cast<size_t>(t)];
    args = "\"task\":" + std::to_string(t);
    bool first = true;
    for (int32_t p : preds) {
      ++succ_offsets_[static_cast<size_t>(p) + 1];
      args += first ? ",\"deps\":\"" : ",";
      first = false;
      args += std::to_string(p);
    }
    if (!first) args += '"';
  }
  for (int32_t t = 0; t < n; ++t) {
    succ_offsets_[static_cast<size_t>(t) + 1] +=
        succ_offsets_[static_cast<size_t>(t)];
  }
  succs_.resize(static_cast<size_t>(num_edges_));
  std::vector<int32_t> cursor(succ_offsets_.begin(), succ_offsets_.end() - 1);
  for (int32_t t = 0; t < n; ++t) {
    for (int32_t p : preds_[static_cast<size_t>(t)]) {
      succs_[static_cast<size_t>(cursor[static_cast<size_t>(p)]++)] = t;
    }
  }
  initial_ready_.clear();
  for (int32_t t = 0; t < n; ++t) {
    if (initial_indeg_[static_cast<size_t>(t)] == 0) {
      initial_ready_.push_back(t);
    }
  }
  // Kahn pass: if the topological order does not reach every task, some
  // cycle exists and every Run() would deadlock — fail loudly at build time.
  {
    std::vector<int32_t> indeg = initial_indeg_;
    std::vector<int32_t> queue = initial_ready_;
    size_t head = 0;
    while (head < queue.size()) {
      const int32_t t = queue[head++];
      for (int32_t s = succ_offsets_[static_cast<size_t>(t)];
           s < succ_offsets_[static_cast<size_t>(t) + 1]; ++s) {
        const int32_t succ = succs_[static_cast<size_t>(s)];
        if (--indeg[static_cast<size_t>(succ)] == 0) queue.push_back(succ);
      }
    }
    if (queue.size() != static_cast<size_t>(n)) {
      std::fprintf(stderr,
                   "TaskGraph::Freeze: cycle detected (%zu of %d tasks "
                   "reachable)\n",
                   queue.size(), n);
      std::abort();
    }
  }
  frozen_ = true;
}

/// Per-Run scheduling state. Lives on the Run() caller's stack; every
/// participant leaves Drain() only once `remaining == 0`, and the submitting
/// thread's ParallelFor does not return until every participant finished,
/// so no drain thread can outlive the state.
struct TaskGraph::RunState {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int32_t> indeg;
  std::deque<int32_t> ready;
  int32_t remaining = 0;
};

void TaskGraph::Drain(RunState* state,
                      const std::function<void(int32_t)>& body,
                      uint64_t run_id) const {
  // Tracing a task costs two clock reads and one POD push here; the
  // TraceEvents (string copies, allocations) are rendered and flushed in
  // one RecordBatch after the run completes, so tracing never competes with
  // sub-microsecond task bodies for the tracer's ring mutex or the
  // allocator. bind_id carries the run id, so every span of one execution
  // is linkable without per-task formatting.
  struct TaskSample {
    int32_t task;
    double ts_us;
    double dur_us;
  };
  std::vector<TaskSample> samples;
  obs::Tracer& tracer = obs::Tracer::Global();
  const bool tracing = tracer.task_detail();
  int32_t task = -1;
  for (;;) {
    if (task < 0) {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait(lock, [state] {
        return !state->ready.empty() || state->remaining == 0;
      });
      if (state->ready.empty()) break;
      task = state->ready.front();
      state->ready.pop_front();
    }
    if (tracing) {
      const double t0 = tracer.NowMicros();
      TILESPMV_FAULT_STALL("par/task_slow");
      body(task);
      samples.push_back({task, t0, tracer.NowMicros() - t0});
    } else {
      TILESPMV_FAULT_STALL("par/task_slow");
      body(task);
    }
    // Completion: release successors, then hand the front of the ready
    // queue straight to this participant under the same lock — the steady
    // state is one mutex acquisition per task and no condition-variable
    // round trip. Sleeping participants are woken one per ready task left
    // over (not notify_all): with micro-tasks the thundering herd is
    // scheduler time taken directly out of the overlap win.
    bool done = false;
    int32_t wake = 0;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      for (int32_t s = succ_offsets_[static_cast<size_t>(task)];
           s < succ_offsets_[static_cast<size_t>(task) + 1]; ++s) {
        const int32_t succ = succs_[static_cast<size_t>(s)];
        if (--state->indeg[static_cast<size_t>(succ)] == 0) {
          state->ready.push_back(succ);
        }
      }
      done = --state->remaining == 0;
      if (state->ready.empty()) {
        task = -1;
      } else {
        task = state->ready.front();
        state->ready.pop_front();
        wake = static_cast<int32_t>(state->ready.size());
      }
    }
    if (done) {
      state->cv.notify_all();
    } else {
      for (int32_t w = 0; w < wake; ++w) state->cv.notify_one();
    }
    if (done && task < 0) break;
  }
  if (!samples.empty()) {
    std::vector<obs::TraceEvent> spans;
    spans.reserve(samples.size());
    for (const TaskSample& s : samples) {
      obs::TraceEvent span;
      span.name = labels_[static_cast<size_t>(s.task)];
      span.cat = "task";
      span.ts_us = s.ts_us;
      span.dur_us = s.dur_us;
      span.args = span_args_[static_cast<size_t>(s.task)];
      span.bind_id = run_id;
      spans.push_back(std::move(span));
    }
    tracer.RecordBatch(&spans);
  }
}

void TaskGraph::Run(ThreadPool& pool,
                    const std::function<void(int32_t)>& body) const {
  if (!frozen_) {
    std::fprintf(stderr, "TaskGraph::Run before Freeze()\n");
    std::abort();
  }
  const int32_t n = num_tasks();
  if (n == 0) return;

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* runs = registry.GetCounter(
      "tilespmv_taskgraph_runs_total", "Task-graph executions");
  static obs::Counter* tasks = registry.GetCounter(
      "tilespmv_taskgraph_tasks_total", "Tasks executed through task graphs");
  runs->Increment();
  tasks->Increment(static_cast<uint64_t>(n));

  const uint64_t run_id =
      g_run_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  RunState state;
  state.indeg = initial_indeg_;
  state.ready.assign(initial_ready_.begin(), initial_ready_.end());
  state.remaining = n;

  // Each drain participant loops until the whole graph finished, so any
  // subset of the requested participants completes the run: the loop below
  // is driven through ParallelFor purely to borrow pool threads (and its
  // inline rules — nested or 1-thread runs execute in deterministic Kahn
  // order on the calling thread).
  const int participants =
      std::min(pool.num_threads(), static_cast<int>(n));
  LoopOptions options;
  options.grain = 1;
  options.chunking = Chunking::kGuided;
  options.label = "par/taskgraph";
  pool.ParallelFor(0, participants, options,
                   [&](int64_t b, int64_t e) {
                     for (int64_t i = b; i < e; ++i) {
                       Drain(&state, body, run_id);
                     }
                   });
}

void RunTaskGraph(const TaskGraph& graph,
                  const std::function<void(int32_t)>& body) {
  graph.Run(ThreadPool::Global(), body);
}

}  // namespace tilespmv::par
