#include "par/pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tilespmv::par {
namespace {

/// True while this thread is executing a chunk for some region; nested
/// ParallelFor calls run inline instead of fanning out again.
thread_local bool tls_in_chunk = false;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One parallel loop in flight. Lives on the submitting thread's stack; the
/// submitter only returns after `done == total && active == 0`, so workers
/// never touch a freed region.
struct ThreadPool::Region {
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  int64_t grain = 1;
  Chunking chunking = Chunking::kStatic;
  int64_t total = 0;
  int participants = 1;
  int64_t range_begin = 0;  ///< Origin for align-relative boundaries.
  int64_t align = 1;

  /// Rounds a prospective chunk boundary down to `range_begin + k * align`.
  /// Callers clamp the result back into their interval, so an aligned
  /// interval start plus this rounding keeps every boundary aligned by
  /// induction.
  int64_t AlignDown(int64_t pos) const {
    if (align <= 1) return pos;
    int64_t rel = pos - range_begin;
    return range_begin + rel - rel % align;
  }

  /// Guided chunking: one shared cursor over [cursor, end).
  std::atomic<int64_t> cursor{0};
  int64_t end = 0;

  /// Static chunking: one contiguous block per participant slot. All block
  /// fields are guarded by the block's mutex; owners take grain-sized
  /// chunks from the front, thieves take half the remainder from the back.
  struct Block {
    std::mutex mu;
    int64_t next = 0;
    int64_t end = 0;
  };
  std::vector<std::unique_ptr<Block>> blocks;
  std::atomic<int> next_slot{0};

  std::atomic<int64_t> done{0};
  std::atomic<int> active{0};
  std::atomic<uint64_t> tasks{0};
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> busy_ns{0};

  std::mutex done_mu;
  std::condition_variable done_cv;

  /// Grabs the next chunk for participant `slot`. Returns false when the
  /// region has no grabbable work left (work only ever shrinks, so false is
  /// final).
  bool Grab(int slot, int64_t* b, int64_t* e, bool* stole) {
    *stole = false;
    if (chunking == Chunking::kGuided) {
      for (;;) {
        int64_t cur = cursor.load(std::memory_order_relaxed);
        if (cur >= end) return false;
        int64_t remaining = end - cur;
        int64_t k = std::max(grain, remaining / (2 * participants));
        k = std::min(k, remaining);
        int64_t next = cur + k;
        if (next < end) {
          next = AlignDown(next);
          // An aligned cut at or before `cur` would make the chunk empty;
          // take one whole block instead (clamped to the range end).
          if (next <= cur) next = std::min(cur + align, end);
        }
        if (cursor.compare_exchange_weak(cur, next,
                                         std::memory_order_relaxed)) {
          *b = cur;
          *e = next;
          return true;
        }
      }
    }
    const int nblocks = static_cast<int>(blocks.size());
    Block& own = *blocks[static_cast<size_t>(slot % nblocks)];
    {
      std::lock_guard<std::mutex> lock(own.mu);
      if (own.next < own.end) {
        *b = own.next;
        int64_t take = std::min(own.next + grain, own.end);
        if (take < own.end) {
          take = AlignDown(take);
          if (take <= own.next) take = std::min(own.next + align, own.end);
        }
        *e = take;
        own.next = *e;
        return true;
      }
    }
    // Own block exhausted: steal the back half (at least a grain) of the
    // first other block that still has work.
    for (int offset = 1; offset < nblocks; ++offset) {
      Block& victim = *blocks[static_cast<size_t>((slot + offset) % nblocks)];
      std::lock_guard<std::mutex> lock(victim.mu);
      int64_t remaining = victim.end - victim.next;
      if (remaining <= 0) continue;
      int64_t k = std::min(remaining, std::max(grain, remaining / 2));
      int64_t cut = victim.end - k;
      if (cut > victim.next) cut = std::max(AlignDown(cut), victim.next);
      *b = cut;
      *e = victim.end;
      victim.end = *b;
      *stole = true;
      return true;
    }
    return false;
  }
};

ThreadPool::ThreadPool(int num_threads) { Resize(num_threads); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: the pool must outlive every static object whose
  // destructor might still run a loop.
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("TILESPMV_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    // 0 is an explicit "auto": fall through to hardware concurrency (the
    // same meaning as spmv_cli --threads=0).
    if (end != env && *end == '\0' && v > 0 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::SetGlobalThreadCount(int num_threads) {
  Global().Resize(num_threads);
}

void ThreadPool::Resize(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  obs::MetricsRegistry::Global()
      .GetGauge("tilespmv_par_threads", "Compute pool participant count")
      ->Set(static_cast<double>(num_threads));
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.regions = total_regions_.load(std::memory_order_relaxed);
  s.tasks = total_tasks_.load(std::memory_order_relaxed);
  s.steals = total_steals_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Region* region = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !regions_.empty(); });
      if (regions_.empty()) {
        if (stop_) return;
        continue;
      }
      region = regions_.front();
      region->active.fetch_add(1, std::memory_order_relaxed);
    }
    WorkOn(region);
    // A returning WorkOn means the region has no grabbable work left;
    // retire it so idle workers stop picking it up.
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = std::find(regions_.begin(), regions_.end(), region);
      if (it != regions_.end()) regions_.erase(it);
    }
    // Decrement and notify under the region mutex: the submitter's wait
    // holds the same mutex, so it cannot observe active == 0 and destroy
    // the region while this thread is still touching it.
    {
      std::lock_guard<std::mutex> lock(region->done_mu);
      region->active.fetch_sub(1, std::memory_order_release);
      region->done_cv.notify_all();
    }
  }
}

bool ThreadPool::WorkOn(Region* region) {
  const int slot = region->next_slot.fetch_add(1, std::memory_order_relaxed);
  uint64_t chunks = 0;
  uint64_t steals = 0;
  uint64_t busy = 0;
  int64_t begin = 0;
  int64_t end = 0;
  bool stole = false;
  while (region->Grab(slot, &begin, &end, &stole)) {
    ++chunks;
    if (stole) ++steals;
    const uint64_t t0 = NowNanos();
    tls_in_chunk = true;
    (*region->fn)(begin, end);
    tls_in_chunk = false;
    busy += NowNanos() - t0;
    region->done.fetch_add(end - begin, std::memory_order_release);
  }
  if (chunks > 0) {
    region->tasks.fetch_add(chunks, std::memory_order_relaxed);
    region->steals.fetch_add(steals, std::memory_order_relaxed);
    region->busy_ns.fetch_add(busy, std::memory_order_relaxed);
  }
  return chunks > 0;
}

void ThreadPool::PublishMetrics(const Region& region, double wall_seconds,
                                const char* label) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* regions =
      registry.GetCounter("tilespmv_par_regions_total",
                          "Parallel loops executed through the pool");
  static obs::Counter* tasks = registry.GetCounter(
      "tilespmv_par_tasks_total", "Chunks executed by pool participants");
  static obs::Counter* steals = registry.GetCounter(
      "tilespmv_par_steals_total", "Static-chunking block steals");
  static obs::Histogram* utilization = registry.GetHistogram(
      "tilespmv_par_utilization",
      "Per-region busy fraction: busy time / (wall time * participants)",
      obs::LinearBuckets(0.1, 0.1, 10));
  const uint64_t region_tasks = region.tasks.load(std::memory_order_relaxed);
  const uint64_t region_steals = region.steals.load(std::memory_order_relaxed);
  regions->Increment();
  tasks->Increment(region_tasks);
  steals->Increment(region_steals);
  total_regions_.fetch_add(1, std::memory_order_relaxed);
  total_tasks_.fetch_add(region_tasks, std::memory_order_relaxed);
  total_steals_.fetch_add(region_steals, std::memory_order_relaxed);
  if (wall_seconds > 0) {
    const double busy_seconds =
        static_cast<double>(region.busy_ns.load(std::memory_order_relaxed)) *
        1e-9;
    utilization->Observe(busy_seconds /
                         (wall_seconds * region.participants));
  }
  (void)label;
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const LoopOptions& options,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  const int64_t n = end - begin;
  const int participants = num_threads();
  // Inline when fanning out cannot help: nested inside a pool chunk, a
  // 1-thread pool, or a range too short to split at the grain.
  if (tls_in_chunk || participants == 1 || n < 2 * options.grain) {
    fn(begin, end);
    return;
  }

  const char* label = options.label != nullptr ? options.label : "par/for";
  obs::TraceSpan span("par", label);
  const uint64_t t0 = NowNanos();

  Region region;
  region.fn = &fn;
  region.grain = std::max<int64_t>(1, options.grain);
  region.chunking = options.chunking;
  region.total = n;
  region.participants = participants;
  region.range_begin = begin;
  region.align = std::max<int64_t>(1, options.align);
  if (options.chunking == Chunking::kGuided) {
    region.cursor.store(begin, std::memory_order_relaxed);
    region.end = end;
  } else {
    region.blocks.reserve(static_cast<size_t>(participants));
    // Rounding each interior boundary down keeps the cuts monotone, so a
    // boundary collision just yields an empty block.
    for (int i = 0; i < participants; ++i) {
      auto block = std::make_unique<Region::Block>();
      block->next = i == 0 ? begin : region.AlignDown(begin + n * i / participants);
      block->end = i == participants - 1
                       ? end
                       : region.AlignDown(begin + n * (i + 1) / participants);
      region.blocks.push_back(std::move(block));
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    regions_.push_back(&region);
  }
  cv_.notify_all();

  WorkOn(&region);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(regions_.begin(), regions_.end(), &region);
    if (it != regions_.end()) regions_.erase(it);
  }
  {
    std::unique_lock<std::mutex> lock(region.done_mu);
    region.done_cv.wait(lock, [&region] {
      return region.done.load(std::memory_order_acquire) == region.total &&
             region.active.load(std::memory_order_acquire) == 0;
    });
  }

  const double wall_seconds = static_cast<double>(NowNanos() - t0) * 1e-9;
  PublishMetrics(region, wall_seconds, label);
  if (span.active()) {
    span.Arg("items", n);
    span.Arg("tasks",
             static_cast<int64_t>(region.tasks.load(std::memory_order_relaxed)));
    span.Arg("steals", static_cast<int64_t>(
                           region.steals.load(std::memory_order_relaxed)));
    span.Arg("threads", participants);
  }
}

void ParallelFor(int64_t begin, int64_t end, const LoopOptions& options,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, options, fn);
}

}  // namespace tilespmv::par
