#ifndef TILESPMV_PAR_POOL_H_
#define TILESPMV_PAR_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tilespmv::par {

/// How a parallel loop hands out iterations.
enum class Chunking {
  /// The range is pre-split into one contiguous block per participant;
  /// finished participants steal half of the largest remaining block.
  /// Best locality; the stealing bounds imbalance on skewed work.
  kStatic,
  /// Participants grab shrinking chunks (remaining / 2P, floored at the
  /// grain) from one shared cursor. Self-balancing for power-law row
  /// distributions at the cost of block locality.
  kGuided,
};

/// Per-loop tuning. The defaults suit coarse numeric loops; see
/// docs/PARALLELISM.md for the chunking policy discussion.
struct LoopOptions {
  /// Smallest number of items a participant takes at once. Ranges shorter
  /// than 2 * grain run inline on the calling thread.
  int64_t grain = 1024;
  Chunking chunking = Chunking::kStatic;
  /// Span label recorded when tracing is enabled ("par/<site>" convention).
  const char* label = nullptr;
  /// Every chunk boundary except the range ends lands on
  /// `begin + k * align`. SIMD kernels that process fixed-height row blocks
  /// (SELL chunks, vector-width row groups) set this to the block height so
  /// no block is ever split across participants. 1 = no constraint.
  int64_t align = 1;
};

/// Cumulative pool activity, exported to the obs metrics registry and
/// readable directly in tests.
struct PoolStats {
  uint64_t regions = 0;  ///< Parallel loops executed through the pool.
  uint64_t tasks = 0;    ///< Chunks handed to participants.
  uint64_t steals = 0;   ///< Static-chunking block steals.
};

/// A small work-stealing thread pool for data-parallel loops.
///
/// The pool owns `num_threads - 1` worker threads; the caller of
/// ParallelFor always participates, so a 1-thread pool runs everything
/// inline and spawns nothing. Multiple external threads (e.g. the serving
/// engine's request workers) may run loops concurrently: each loop is an
/// independent region and idle workers drain whichever regions are active,
/// oldest first.
///
/// Determinism contract: ParallelFor invokes `fn` on disjoint, collectively
/// exhaustive sub-ranges, so any loop whose chunks write disjoint outputs
/// and read only loop-invariant state produces results byte-identical to a
/// serial run — regardless of thread count, chunking policy, or timing. The
/// ParallelReduce helper (below) extends the guarantee to reductions by
/// fixing the block structure independently of the thread count.
///
/// Re-entrancy: a loop started from inside a pool-executed chunk runs
/// inline on that thread (no nested fan-out), so library code may use
/// ParallelFor freely without tracking call depth.
class ThreadPool {
 public:
  /// `num_threads` <= 0 resolves to DefaultThreadCount().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool shared by the kernels, the preprocessing pipeline,
  /// the graph loops, and the serving engine. Created on first use; never
  /// destroyed (avoids shutdown-order races with other static state).
  static ThreadPool& Global();

  /// Thread count the global pool is created with: TILESPMV_THREADS if set
  /// to a positive integer (1-1024), otherwise
  /// std::thread::hardware_concurrency(). TILESPMV_THREADS=0 is an explicit
  /// "auto" — same as unset, mirroring spmv_cli --threads=0.
  static int DefaultThreadCount();

  /// Resizes the global pool (0 = DefaultThreadCount()). Used by spmv_cli
  /// --threads and by tests sweeping thread counts. Must not be called
  /// while parallel loops are running.
  static void SetGlobalThreadCount(int num_threads);

  /// Total participants per loop (workers + the calling thread).
  int num_threads() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Joins and respawns workers so loops see `num_threads` participants.
  void Resize(int num_threads);

  /// Runs fn(chunk_begin, chunk_end) over [begin, end). Blocks until every
  /// iteration has executed. The caller participates; chunks are disjoint
  /// and cover the range exactly once.
  void ParallelFor(int64_t begin, int64_t end, const LoopOptions& options,
                   const std::function<void(int64_t, int64_t)>& fn);

  PoolStats stats() const;

 private:
  struct Region;

  void WorkerLoop();
  /// Executes chunks of `region` until none are grabbable. Returns true if
  /// at least one chunk ran.
  bool WorkOn(Region* region);
  void PublishMetrics(const Region& region, double wall_seconds,
                      const char* label);

  mutable std::mutex mu_;       ///< Guards regions_, stop_, workers_.
  std::condition_variable cv_;  ///< Wakes workers when regions arrive.
  std::deque<Region*> regions_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> total_regions_{0};
  std::atomic<uint64_t> total_tasks_{0};
  std::atomic<uint64_t> total_steals_{0};
};

/// Convenience wrapper over ThreadPool::Global().
void ParallelFor(int64_t begin, int64_t end, const LoopOptions& options,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Block size used by the deterministic reductions in the graph loops.
/// Fixed (never derived from the thread count) so a reduction's float
/// summation tree is identical at every thread count.
inline constexpr int64_t kReduceBlock = 4096;

/// Fixed-order blocked reduction: [begin, end) is cut into ceil(n / block)
/// blocks, `block_fn(b0, b1)` computes each block's partial serially, and
/// the partials are combined left-to-right in block order. The block
/// structure depends only on `block`, so the result is bitwise identical
/// for every thread count — including a plain serial run of the same
/// blocked recipe. `combine` must be associative only in the intended
/// mathematical sense; it is always applied in ascending block order.
template <typename T, typename BlockFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t block, T init,
                 const BlockFn& block_fn, const CombineFn& combine,
                 const char* label = nullptr) {
  if (end <= begin) return init;
  const int64_t n = end - begin;
  const int64_t num_blocks = (n + block - 1) / block;
  if (num_blocks == 1) {
    return combine(init, block_fn(begin, end));
  }
  std::vector<T> partials(static_cast<size_t>(num_blocks));
  LoopOptions options;
  options.grain = 1;
  options.chunking = Chunking::kGuided;
  options.label = label;
  ParallelFor(0, num_blocks, options, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const int64_t lo = begin + b * block;
      const int64_t hi = lo + block < end ? lo + block : end;
      partials[static_cast<size_t>(b)] = block_fn(lo, hi);
    }
  });
  T acc = init;
  for (int64_t b = 0; b < num_blocks; ++b) {
    acc = combine(acc, partials[static_cast<size_t>(b)]);
  }
  return acc;
}

}  // namespace tilespmv::par

#endif  // TILESPMV_PAR_POOL_H_
