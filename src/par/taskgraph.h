#ifndef TILESPMV_PAR_TASKGRAPH_H_
#define TILESPMV_PAR_TASKGRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "par/pool.h"

namespace tilespmv::par {

/// A dependency-driven task DAG executed on the ThreadPool — the dataflow
/// sibling of ParallelFor. Where every ParallelFor is a barrier, a TaskGraph
/// releases each task the moment its predecessors finish, so independent
/// stages (tile partials, per-block reductions, the next iteration's tiles)
/// overlap instead of draining the pool at every stage boundary.
///
/// Usage: AddTask()/AddDep() describe the shape, Freeze() compiles it
/// (successor lists, in-degrees, the seed ready set) and validates
/// acyclicity, then Run() executes it any number of times. The graph itself
/// is immutable after Freeze — per-run state (in-degree countdown, ready
/// queue) lives on the Run() caller's stack — so one frozen graph can be
/// built once per plan and replayed concurrently from any number of
/// threads, exactly like the kernels' frozen-plan contract (spmv.h).
///
/// Determinism contract: Run() invokes `body` exactly once per task, never
/// before all of the task's predecessors returned. Any graph whose tasks
/// write disjoint outputs (or are ordered by edges when they don't)
/// therefore produces results byte-identical to a serial run of the same
/// task bodies in a topological order — regardless of thread count or
/// timing. Reduction-tree shape must be encoded in the graph (fixed blocks,
/// combined in task-id order), never derived from execution order.
///
/// Scheduling: ready tasks are executed in FIFO order seeded by ascending
/// task id, by up to pool.num_threads() participants (the Run() caller
/// always participates). With one participant — a 1-thread pool, or a Run()
/// issued from inside a pool chunk — the whole graph executes inline in
/// Kahn (deterministic topological) order.
class TaskGraph {
 public:
  TaskGraph() = default;

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a task and returns its id (dense, starting at 0). `label` is the
  /// span name recorded per execution when tracing is enabled; follow the
  /// "phase/step" convention (docs/OBSERVABILITY.md) so trace_summarize
  /// groups task time under the right phase.
  int32_t AddTask(std::string label);

  /// Declares that `task` must not start before `pred` finished.
  /// Duplicate edges are allowed and collapse to one.
  void AddDep(int32_t task, int32_t pred);

  /// Compiles successor lists and the initial ready set, and checks the
  /// graph is acyclic (a cycle aborts: it is a programming error that would
  /// deadlock every Run). Must be called exactly once, after which the
  /// graph is immutable and Run() becomes callable.
  void Freeze();

  bool frozen() const { return frozen_; }
  int32_t num_tasks() const { return static_cast<int32_t>(labels_.size()); }
  int64_t num_edges() const { return num_edges_; }
  const std::string& label(int32_t task) const {
    return labels_[static_cast<size_t>(task)];
  }
  /// Predecessors of `task` in insertion order (deduplicated).
  const std::vector<int32_t>& preds(int32_t task) const {
    return preds_[static_cast<size_t>(task)];
  }

  /// Executes the graph: `body(task)` once per task, dependencies
  /// respected, blocking until every task finished. Requires Freeze().
  /// Thread-safe and re-entrant — concurrent Run() calls on one graph are
  /// independent executions. When the tracer's task detail is on
  /// (obs::Tracer::set_task_detail) each task records a span named by its
  /// label, cat "task", with args `task` (id) and `deps` (comma-separated
  /// predecessor ids) and the run id in bind_id — the dependency-edge
  /// annotations trace_summarize --critical-path consumes.
  void Run(ThreadPool& pool, const std::function<void(int32_t)>& body) const;

 private:
  struct RunState;
  void Drain(RunState* state, const std::function<void(int32_t)>& body,
             uint64_t run_id) const;

  bool frozen_ = false;
  int64_t num_edges_ = 0;
  std::vector<std::string> labels_;
  std::vector<std::vector<int32_t>> preds_;
  /// Flattened successor lists (CSR layout), built by Freeze().
  std::vector<int32_t> succ_offsets_;
  std::vector<int32_t> succs_;
  std::vector<int32_t> initial_indeg_;
  std::vector<int32_t> initial_ready_;  ///< In-degree-0 ids, ascending.
  /// Pre-rendered per-task span args ("\"task\":3,\"deps\":\"0,1\"") built
  /// at Freeze so the tracing path is one string copy per task.
  std::vector<std::string> span_args_;
};

/// Convenience wrapper: Run on ThreadPool::Global().
void RunTaskGraph(const TaskGraph& graph,
                  const std::function<void(int32_t)>& body);

}  // namespace tilespmv::par

#endif  // TILESPMV_PAR_TASKGRAPH_H_
