#include "obs/trace.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace tilespmv::obs {
namespace {

/// Stable small per-thread id for the "tid" field. Chrome groups spans into
/// rows by tid, so worker threads show as separate tracks.
int ThreadId() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity > 0 ? capacity : kDefaultCapacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  dropped_ = 0;
  epoch_ = Clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

double Tracer::NowMicros() const {
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
      .count();
}

void Tracer::Record(TraceEvent event) {
  event.tid = ThreadId();
  bool dropped_one = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else {
      ring_[next_] = std::move(event);
      next_ = (next_ + 1) % capacity_;
      ++dropped_;
      dropped_one = true;
    }
  }
  if (dropped_one) {
    // Wrap-around drops are otherwise invisible in every report; surface
    // them in the registry so exports and trace_summarize can warn.
    static Counter* drop_counter = MetricsRegistry::Global().GetCounter(
        "tilespmv_trace_dropped_total",
        "Trace spans overwritten by ring-buffer wrap-around");
    drop_counter->Increment();
  }
}

void Tracer::RecordBatch(std::vector<TraceEvent>* events) {
  if (events->empty()) return;
  const int tid = ThreadId();
  uint64_t dropped_here = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (TraceEvent& event : *events) {
      event.tid = tid;
      if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
      } else {
        ring_[next_] = std::move(event);
        next_ = (next_ + 1) % capacity_;
        ++dropped_;
        ++dropped_here;
      }
    }
  }
  events->clear();
  if (dropped_here > 0) {
    static Counter* drop_counter = MetricsRegistry::Global().GetCounter(
        "tilespmv_trace_dropped_total",
        "Trace spans overwritten by ring-buffer wrap-around");
    drop_counter->Increment(dropped_here);
  }
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ points at the oldest event once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(e.name);
    out += "\",\"cat\":\"";
    out += JsonEscape(e.cat);
    out += "\",\"ph\":\"X\",\"ts\":";
    AppendDouble(&out, e.ts_us);
    out += ",\"dur\":";
    AppendDouble(&out, e.dur_us);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    if (e.bind_id != 0) {
      // Chrome's binding flow-event encoding on complete events.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "0x%llx",
                    static_cast<unsigned long long>(e.bind_id));
      out += ",\"bind_id\":\"";
      out += buf;
      out += '"';
      if (e.flow_in) out += ",\"flow_in\":true";
      if (e.flow_out) out += ",\"flow_out\":true";
    }
    if (!e.args.empty()) {
      out += ",\"args\":{";
      out += e.args;
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\",\"droppedSpans\":";
  out += std::to_string(dropped());
  out += '}';
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output file " + path);
  }
  std::string json = ToChromeTraceJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

#ifndef SPMV_OBS_DISABLED

void TraceSpan::Arg(const char* key, double value) {
  if (!active_) return;
  if (!event_.args.empty()) event_.args += ',';
  event_.args += '"';
  event_.args += key;
  event_.args += "\":";
  AppendDouble(&event_.args, value);
}

void TraceSpan::Arg(const char* key, int64_t value) {
  if (!active_) return;
  if (!event_.args.empty()) event_.args += ',';
  event_.args += '"';
  event_.args += key;
  event_.args += "\":";
  event_.args += std::to_string(value);
}

void TraceSpan::Arg(const char* key, const std::string& value) {
  if (!active_) return;
  if (!event_.args.empty()) event_.args += ',';
  event_.args += '"';
  event_.args += key;
  event_.args += "\":\"";
  event_.args += JsonEscape(value);
  event_.args += '"';
}

#endif  // SPMV_OBS_DISABLED

}  // namespace tilespmv::obs
