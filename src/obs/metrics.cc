#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"
#include "util/check.h"
#include "util/stats.h"

namespace tilespmv::obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds, size_t window)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1, 0),
      window_cap_(std::max<size_t>(1, window)) {
  TILESPMV_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double value) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  sum_ += value;
  ++count_;
  if (window_.size() < window_cap_) {
    window_.push_back(value);
  } else {
    window_[window_next_] = value;
    window_next_ = (window_next_ + 1) % window_cap_;
  }
}

uint64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::Percentile(double q) const {
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mu_);
    window = window_;
  }
  return tilespmv::Percentile(std::move(window), q);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  TILESPMV_CHECK(start > 0 && factor > 1 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width, int count) {
  TILESPMV_CHECK(width > 0 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) bounds.push_back(start + i * width);
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter == nullptr) {
    TILESPMV_CHECK(e.gauge == nullptr && e.histogram == nullptr);
    e.kind = Entry::Kind::kCounter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge == nullptr) {
    TILESPMV_CHECK(e.counter == nullptr && e.histogram == nullptr);
    e.kind = Entry::Kind::kGauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
  }
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         size_t window) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.histogram == nullptr) {
    TILESPMV_CHECK(e.counter == nullptr && e.gauge == nullptr);
    e.kind = Entry::Kind::kHistogram;
    e.help = help;
    e.histogram = std::make_unique<Histogram>(std::move(bounds), window);
  }
  return e.histogram.get();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) {
      out += "# HELP " + name + " " + e.help + "\n";
    }
    switch (e.kind) {
      case Entry::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(e.counter->Value()) + "\n";
        break;
      case Entry::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + FormatDouble(e.gauge->Value()) + "\n";
        break;
      case Entry::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        const std::vector<double>& bounds = e.histogram->bounds();
        std::vector<uint64_t> counts = e.histogram->BucketCounts();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < bounds.size(); ++i) {
          cumulative += counts[i];
          out += name + "_bucket{le=\"" + FormatDouble(bounds[i]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += counts.back();
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               "\n";
        out += name + "_sum " + FormatDouble(e.histogram->Sum()) + "\n";
        out += name + "_count " + std::to_string(e.histogram->Count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":";
    switch (e.kind) {
      case Entry::Kind::kCounter:
        out += "{\"type\":\"counter\",\"value\":" +
               std::to_string(e.counter->Value()) + "}";
        break;
      case Entry::Kind::kGauge:
        out += "{\"type\":\"gauge\",\"value\":" +
               FormatDouble(e.gauge->Value()) + "}";
        break;
      case Entry::Kind::kHistogram: {
        const std::vector<double>& bounds = e.histogram->bounds();
        std::vector<uint64_t> counts = e.histogram->BucketCounts();
        out += "{\"type\":\"histogram\",\"count\":" +
               std::to_string(e.histogram->Count()) +
               ",\"sum\":" + FormatDouble(e.histogram->Sum()) +
               ",\"buckets\":[";
        for (size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) out += ',';
          out += "{\"le\":";
          out += i < bounds.size() ? FormatDouble(bounds[i]) : "\"+Inf\"";
          out += ",\"count\":" + std::to_string(counts[i]) + "}";
        }
        out += "],\"p50\":" + FormatDouble(e.histogram->Percentile(50)) +
               ",\"p95\":" + FormatDouble(e.histogram->Percentile(95)) +
               ",\"p99\":" + FormatDouble(e.histogram->Percentile(99)) + "}";
        break;
      }
    }
  }
  out += '}';
  return out;
}

}  // namespace tilespmv::obs
