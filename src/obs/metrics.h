#ifndef TILESPMV_OBS_METRICS_H_
#define TILESPMV_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tilespmv::obs {

/// Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A settable/addable double (resident bytes, modeled GPU seconds, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram plus a bounded window of the most recent samples.
/// The buckets drive the Prometheus export (cumulative, le-labelled); the
/// window gives exact percentiles over the last `window` observations —
/// the serving layer's latency p50/p95/p99 come from here, with the window
/// size defined once at construction (see ServerStats::kLatencyWindow).
class Histogram {
 public:
  static constexpr size_t kDefaultWindow = 8192;

  /// `bounds` are the buckets' inclusive upper bounds, strictly increasing;
  /// an implicit +Inf bucket is appended.
  Histogram(std::vector<double> bounds, size_t window = kDefaultWindow);

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  double Mean() const;
  /// Exact linearly-interpolated percentile over the retained window
  /// (0 with no samples).
  double Percentile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (bounds().size() + 1 entries, last = +Inf bucket).
  std::vector<uint64_t> BucketCounts() const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;
  double sum_ = 0.0;
  uint64_t count_ = 0;
  std::vector<double> window_;
  size_t window_cap_;
  size_t window_next_ = 0;
};

/// Exponentially spaced bucket bounds: start, start*factor, ... (count
/// bounds). The conventional shape for latency histograms.
std::vector<double> ExponentialBuckets(double start, double factor, int count);

/// Linearly spaced bucket bounds: start, start+width, ... (count bounds).
std::vector<double> LinearBuckets(double start, double width, int count);

/// A named set of counters, gauges and histograms with Prometheus-text and
/// JSON exporters. Get* registers on first use and returns a pointer that
/// stays valid for the registry's lifetime; repeated Get* with the same name
/// returns the same instrument (a name registered as one kind must not be
/// re-requested as another). All methods are thread-safe; instrument
/// updates through the returned pointers are lock-free or individually
/// locked and never take the registry mutex.
class MetricsRegistry {
 public:
  /// Process-wide registry that library instrumentation records into;
  /// spmv_cli --metrics-out exports it.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          size_t window = Histogram::kDefaultWindow);

  /// Prometheus text exposition format (counters, gauges, cumulative
  /// histogram buckets with _bucket/_sum/_count series).
  std::string ToPrometheusText() const;
  /// One JSON object keyed by metric name.
  std::string ToJson() const;

 private:
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram };
    Kind kind = Kind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  ///< Ordered for stable export.
};

}  // namespace tilespmv::obs

#endif  // TILESPMV_OBS_METRICS_H_
