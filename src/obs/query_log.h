#ifndef TILESPMV_OBS_QUERY_LOG_H_
#define TILESPMV_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace tilespmv::obs {

/// The stages a serving-engine request passes through, in pipeline order.
/// Every request is attributed a duration per stage; the durations are
/// computed as differences of one monotone timestamp sequence, so they are
/// individually non-negative and sum (telescope) to the request's total
/// latency exactly. docs/OBSERVABILITY.md documents the stage model.
enum class QueryStage {
  kAdmission = 0,  ///< Submit-side validation + admission control.
  kQueue,          ///< Waiting for a worker (non-coalesced requests).
  kCoalesce,       ///< Waiting in a coalescing bucket (batched RWR).
  kPlan,           ///< Plan-cache fetch, or preprocessing + autotune on miss.
  kExecute,        ///< Kernel / SpMM-panel execution (power iterations).
  kPostprocess,    ///< Unpermute + per-query response assembly.
  kReply,          ///< Stats recording + promise fulfillment.
};

inline constexpr int kNumQueryStages = 7;

/// Short stable stage name ("admission", "queue", ...), used for metric
/// names, JSON keys and trace args.
const char* QueryStageName(QueryStage stage);
const char* QueryStageName(int stage);

/// Stable uppercase status-code name ("OK", "DEADLINE_EXCEEDED", ...), the
/// spelling Status::ToString() uses.
const char* StatusCodeName(StatusCode code);

/// Per-stage durations in seconds. Exactly one of kQueue/kCoalesce is
/// nonzero for a given request (coalesced RWR bills its wait to kCoalesce).
struct QueryStages {
  double seconds[kNumQueryStages] = {};

  double& operator[](QueryStage s) { return seconds[static_cast<int>(s)]; }
  double operator[](QueryStage s) const {
    return seconds[static_cast<int>(s)];
  }
  double Sum() const;
};

/// One finished request, as the query journal remembers it: identity, how it
/// was served (dedup / coalescing / SpMM panel placement), its per-stage
/// latency breakdown, and the flow id linking it to the shared execution
/// trace span it rode.
struct QueryRecord {
  uint64_t query_id = 0;
  std::string kind;  ///< "pagerank" | "hits" | "rwr".
  StatusCode code = StatusCode::kOk;
  QueryStages stages;
  double total_seconds = 0.0;  ///< Enqueue to reply; == stages.Sum().
  /// Trace-clock enqueue timestamp (Tracer::NowMicros at submit); 0 when
  /// tracing was disabled at submit time.
  double enqueue_ts_us = 0.0;
  bool deadline_missed = false;  ///< Deadline expired (in queue or batch).
  bool cancelled = false;  ///< Aborted mid-solve by its CancelToken.
  /// Power iterations actually spent (0 when the query never executed).
  /// For a cancelled solve this is the partial count at abort.
  int iterations = 0;
  /// Brownout ladder level the query was served under (0 = healthy).
  int brownout_level = 0;
  bool deduped = false;     ///< Answered by an identical in-flight leader.
  bool coalesced = false;   ///< Served from a coalesced RWR batch.
  bool plan_cache_hit = false;
  /// SIMD tier of the plan's kernel ("none" when the query never reached a
  /// plan or the kernel is a modeled device format).
  std::string simd_tier = "none";
  int batch_size = 1;       ///< Queries in the coalesced batch (1 = alone).
  /// SpMM panel placement (batched RWR on a blocked plan): the panel width
  /// the query's column actually swept at, and its column index within that
  /// panel. width 0 = scalar execution (no panel).
  int panel_width = 0;
  int panel_column = -1;
  bool ragged_tail = false;  ///< Rode the final, narrower-than-plan panel.
  /// Flow id shared with the execution trace span (the dedup leader's run or
  /// the batch flush) — the span carries flow_out, the query's lifetime
  /// event flow_in, so Chrome/Perfetto draw the linkage. 0 = none recorded.
  uint64_t exec_span_id = 0;

  /// One-line JSON object: the flight-recorder dump format.
  std::string ToJson() const;
};

/// Bounded, thread-safe journal of finished requests plus an always-on
/// flight recorder: records whose deadline was missed (or that exceeded the
/// slow-query threshold) are additionally retained in a separate bounded
/// dump ring and, when `dump_path` is set, appended as JSON lines to that
/// file the moment they happen — so the full stage breakdown of an outlier
/// survives even if the main ring has long since wrapped.
class QueryJournal {
 public:
  struct Options {
    /// Main ring capacity (records). Clamped to >= 1.
    size_t capacity = 4096;
    /// Slow-query threshold in seconds; > 0 dumps any record whose total
    /// latency is >= it, deadline missed or not.
    double slow_seconds = 0.0;
    /// Dump records whose deadline_missed flag is set.
    bool dump_on_deadline_miss = true;
    /// Dump records that failed with kNumericalError — a numerical blow-up
    /// always deserves its flight-recorder breadcrumbs.
    bool dump_on_numerical_error = true;
    /// Retained dumped records (separate ring), for inspection without I/O.
    size_t dump_retention = 64;
    /// When non-empty, every dump is appended to this file as one JSON line.
    std::string dump_path;
  };

  QueryJournal() : QueryJournal(Options{}) {}
  explicit QueryJournal(const Options& options);

  /// Monotonically increasing, unique id (first call returns 1). Also used
  /// to allocate flow ids for shared execution spans.
  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Appends a finished request; triggers a flight-recorder dump when the
  /// record qualifies. Thread-safe.
  void Record(QueryRecord record);

  /// Journal contents, oldest first.
  std::vector<QueryRecord> Records() const;
  /// Retained flight-recorder dumps, oldest first.
  std::vector<QueryRecord> Dumps() const;
  /// Total dumps triggered (including ones no longer retained).
  uint64_t dumped_total() const;
  /// Records lost to main-ring wrap-around.
  uint64_t dropped() const;
  size_t size() const;
  const Options& options() const { return options_; }

  /// The whole journal as one JSON document (records + drop/dump counters).
  std::string ToJson() const;

 private:
  Options options_;
  std::atomic<uint64_t> next_id_{0};
  mutable std::mutex mu_;
  std::vector<QueryRecord> ring_;
  size_t next_ = 0;  ///< Ring write cursor once full.
  uint64_t dropped_ = 0;
  std::vector<QueryRecord> dumps_;
  size_t dumps_next_ = 0;
  uint64_t dumped_total_ = 0;
};

}  // namespace tilespmv::obs

#endif  // TILESPMV_OBS_QUERY_LOG_H_
