#ifndef TILESPMV_OBS_TRACE_H_
#define TILESPMV_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace tilespmv::obs {

/// One completed span, Chrome trace_event "X" (complete) phase. `args` is a
/// pre-rendered JSON object body ("\"iter\":3,\"residual\":0.01") so the hot
/// path never builds a map. Span names follow the "<phase>/<step>" convention
/// documented in docs/OBSERVABILITY.md; the part before the slash is the
/// phase trace_summarize groups by.
struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;   ///< Start, microseconds since Tracer::Enable().
  double dur_us = 0.0;
  int tid = 0;          ///< Per-process thread index (stable, small).
  std::string args;     ///< JSON object body, possibly empty.
  /// Flow linkage (Chrome "binding" flow events on X phases): spans sharing
  /// a nonzero bind_id are drawn connected, from the flow_out span to the
  /// flow_in span. Used to tie a query's lifetime event to the shared
  /// execution span (dedup leader run / batch flush) that served it.
  uint64_t bind_id = 0;
  bool flow_in = false;
  bool flow_out = false;
};

/// Low-overhead span recorder. Disabled (the default) it is a null tracer:
/// TraceSpan construction is one relaxed atomic load and nothing allocates.
/// Enabled, completed spans land in a fixed-capacity ring buffer under a
/// mutex — when the buffer wraps, the oldest spans are dropped and counted.
/// All methods are thread-safe.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  static Tracer& Global();

  /// Starts recording into a fresh ring buffer of `capacity` events and
  /// resets the time origin. Idempotent apart from clearing the buffer.
  void Enable(size_t capacity = kDefaultCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Opts into fine-grained task spans (one span per task-graph task, cat
  /// "task"). Off by default and sticky across Enable/Disable: a hot
  /// iteration pair runs dozens of sub-microsecond tasks, so always-on
  /// production tracing skips them to hold the <3% overhead budget, while
  /// trace-dumping tools (spmv_cli --trace-out) turn them on to feed
  /// trace_summarize --critical-path.
  void set_task_detail(bool on) {
    task_detail_.store(on, std::memory_order_relaxed);
  }
  /// True when tracing is enabled AND task detail was opted into.
  bool task_detail() const {
    return enabled() && task_detail_.load(std::memory_order_relaxed);
  }

  void Record(TraceEvent event);

  /// Drains `events` into the ring under a single lock — the bulk sibling of
  /// Record() for producers that complete many short spans back to back (the
  /// task-graph drain loop records one span per task; taking the ring mutex
  /// per task would dominate sub-microsecond task bodies). Events must carry
  /// their own ts_us/dur_us; tid is stamped here with the calling thread's
  /// id. The vector is left empty.
  void RecordBatch(std::vector<TraceEvent>* events);

  /// Recorded events, oldest first. Spans dropped to ring wrap-around are
  /// reported by dropped().
  std::vector<TraceEvent> Events() const;
  uint64_t dropped() const;
  size_t size() const;
  void Clear();

  /// Microseconds since Enable() (0 if never enabled).
  double NowMicros() const;

  /// The whole buffer as a Chrome/Perfetto-loadable trace document
  /// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  using Clock = std::chrono::steady_clock;

  std::atomic<bool> enabled_{false};
  std::atomic<bool> task_detail_{false};
  mutable std::mutex mu_;
  Clock::time_point epoch_ = Clock::now();
  std::vector<TraceEvent> ring_;
  size_t capacity_ = kDefaultCapacity;
  size_t next_ = 0;       ///< Ring write cursor once full.
  uint64_t dropped_ = 0;  ///< Events overwritten by wrap-around.
};

#ifdef SPMV_OBS_DISABLED

/// Compile-time-disabled span: every member is an inline no-op, so call
/// sites (and their `if (span.active())` argument blocks) fold away.
class TraceSpan {
 public:
  TraceSpan(const char* /*cat*/, const char* /*name*/) {}
  static constexpr bool active() { return false; }
  void Arg(const char* /*key*/, double /*value*/) {}
  void Arg(const char* /*key*/, int64_t /*value*/) {}
  void Arg(const char* /*key*/, int /*value*/) {}
  void Arg(const char* /*key*/, const std::string& /*value*/) {}
  void FlowOut(uint64_t /*bind_id*/) {}
  void FlowIn(uint64_t /*bind_id*/) {}
};

#else

/// RAII span: measures from construction to destruction and records into
/// Tracer::Global() if tracing was enabled at construction. Use literal
/// `cat`/`name` strings on hot paths and attach dynamic detail with Arg()
/// guarded by active(), so a disabled tracer costs one atomic load.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name)
      : active_(Tracer::Global().enabled()) {
    if (active_) {
      event_.cat = cat;
      event_.name = name;
      event_.ts_us = Tracer::Global().NowMicros();
    }
  }
  ~TraceSpan() {
    if (active_) {
      event_.dur_us = Tracer::Global().NowMicros() - event_.ts_us;
      Tracer::Global().Record(std::move(event_));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }

  void Arg(const char* key, double value);
  void Arg(const char* key, int64_t value);
  void Arg(const char* key, int value) { Arg(key, static_cast<int64_t>(value)); }
  void Arg(const char* key, const std::string& value);

  /// Marks this span as the source (FlowOut) or destination (FlowIn) of the
  /// flow identified by `bind_id`. A span can be both.
  void FlowOut(uint64_t bind_id) {
    if (!active_) return;
    event_.bind_id = bind_id;
    event_.flow_out = true;
  }
  void FlowIn(uint64_t bind_id) {
    if (!active_) return;
    event_.bind_id = bind_id;
    event_.flow_in = true;
  }

 private:
  bool active_;
  TraceEvent event_;
};

#endif  // SPMV_OBS_DISABLED

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace tilespmv::obs

#endif  // TILESPMV_OBS_TRACE_H_
