#include "obs/query_log.h"

#include <cstdio>

#include "obs/trace.h"

namespace tilespmv::obs {
namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnsupportedFormat:
      return "UNSUPPORTED_FORMAT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kNumericalError:
      return "NUMERICAL_ERROR";
    case StatusCode::kDidNotConverge:
      return "DID_NOT_CONVERGE";
  }
  return "UNKNOWN";
}

const char* QueryStageName(int stage) {
  switch (stage) {
    case 0:
      return "admission";
    case 1:
      return "queue";
    case 2:
      return "coalesce";
    case 3:
      return "plan";
    case 4:
      return "execute";
    case 5:
      return "postprocess";
    case 6:
      return "reply";
    default:
      return "unknown";
  }
}

const char* QueryStageName(QueryStage stage) {
  return QueryStageName(static_cast<int>(stage));
}

double QueryStages::Sum() const {
  double total = 0.0;
  for (double s : seconds) total += s;
  return total;
}

std::string QueryRecord::ToJson() const {
  std::string out = "{\"query_id\":";
  out += std::to_string(query_id);
  out += ",\"kind\":\"";
  out += JsonEscape(kind);
  out += "\",\"status\":\"";
  out += StatusCodeName(code);
  out += "\",\"total_ms\":";
  AppendDouble(&out, total_seconds * 1e3);
  out += ",\"stages_ms\":{";
  for (int i = 0; i < kNumQueryStages; ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += QueryStageName(i);
    out += "\":";
    AppendDouble(&out, stages.seconds[i] * 1e3);
  }
  out += "},\"deadline_missed\":";
  out += deadline_missed ? "true" : "false";
  out += ",\"cancelled\":";
  out += cancelled ? "true" : "false";
  out += ",\"iterations\":";
  out += std::to_string(iterations);
  out += ",\"brownout_level\":";
  out += std::to_string(brownout_level);
  out += ",\"deduped\":";
  out += deduped ? "true" : "false";
  out += ",\"coalesced\":";
  out += coalesced ? "true" : "false";
  out += ",\"plan_cache_hit\":";
  out += plan_cache_hit ? "true" : "false";
  out += ",\"simd_tier\":\"";
  out += JsonEscape(simd_tier);
  out += "\",\"batch_size\":";
  out += std::to_string(batch_size);
  out += ",\"panel_width\":";
  out += std::to_string(panel_width);
  out += ",\"panel_column\":";
  out += std::to_string(panel_column);
  out += ",\"ragged_tail\":";
  out += ragged_tail ? "true" : "false";
  out += ",\"exec_span_id\":";
  out += std::to_string(exec_span_id);
  out += ",\"enqueue_ts_us\":";
  AppendDouble(&out, enqueue_ts_us);
  out += '}';
  return out;
}

QueryJournal::QueryJournal(const Options& options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.reserve(options_.capacity);
  if (options_.dump_retention > 0) dumps_.reserve(options_.dump_retention);
}

void QueryJournal::Record(QueryRecord record) {
  bool dump = (options_.dump_on_deadline_miss && record.deadline_missed) ||
              (options_.dump_on_numerical_error &&
               record.code == StatusCode::kNumericalError) ||
              (options_.slow_seconds > 0.0 &&
               record.total_seconds >= options_.slow_seconds);
  std::string dump_line;
  if (dump && !options_.dump_path.empty()) dump_line = record.ToJson();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dump) {
      ++dumped_total_;
      if (options_.dump_retention > 0) {
        if (dumps_.size() < options_.dump_retention) {
          dumps_.push_back(record);
        } else {
          dumps_[dumps_next_] = record;
          dumps_next_ = (dumps_next_ + 1) % options_.dump_retention;
        }
      }
    }
    if (ring_.size() < options_.capacity) {
      ring_.push_back(std::move(record));
    } else {
      ring_[next_] = std::move(record);
      next_ = (next_ + 1) % options_.capacity;
      ++dropped_;
    }
  }
  if (!dump_line.empty()) {
    // Appended outside the lock: file I/O must not stall recording threads.
    std::FILE* f = std::fopen(options_.dump_path.c_str(), "a");
    if (f != nullptr) {
      dump_line += '\n';
      std::fwrite(dump_line.data(), 1, dump_line.size(), f);
      std::fclose(f);
    }
  }
}

std::vector<QueryRecord> QueryJournal::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<QueryRecord> QueryJournal::Dumps() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryRecord> out;
  out.reserve(dumps_.size());
  for (size_t i = 0; i < dumps_.size(); ++i) {
    out.push_back(dumps_[(dumps_next_ + i) % dumps_.size()]);
  }
  return out;
}

uint64_t QueryJournal::dumped_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dumped_total_;
}

uint64_t QueryJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t QueryJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::string QueryJournal::ToJson() const {
  std::vector<QueryRecord> records = Records();
  std::string out = "{\"schema\":\"tilespmv-query-log-v1\",\"records\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ',';
    out += records[i].ToJson();
  }
  out += "],\"dropped\":";
  out += std::to_string(dropped());
  out += ",\"dumped_total\":";
  out += std::to_string(dumped_total());
  out += '}';
  return out;
}

}  // namespace tilespmv::obs
