#ifndef TILESPMV_CORE_PERF_MODEL_H_
#define TILESPMV_CORE_PERF_MODEL_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/composite.h"
#include "gpusim/device_spec.h"

namespace tilespmv {

/// The paper's performance model (Section 3.3, Equations 1-5, Algorithm 3).
///
/// Offline component: a lookup table from workload shape (w, h) to the
/// machine throughput sustained when the device is filled with identical
/// (w, h) rectangles — built once per device by "benchmarking" synthetic
/// workloads (here: through the same cost recipes the kernel simulation
/// uses, exactly as the paper benchmarks its real kernel). Two tables exist:
/// one with x served by the texture cache (dense tiles) and one with every x
/// gather missing (the sparse remainder, modeled "without using the texture
/// cache").
///
/// Online component: Algorithm 3 — partition a tile's row-length ranking
/// into workloads, bucket the warps into full-occupancy iterations
/// (Equation 1), and sum Size(i) / avg-performance(i) over iterations
/// (Equations 2-5).
class PerfModel {
 public:
  explicit PerfModel(const gpusim::DeviceSpec& spec) : spec_(spec) {}

  /// Pre-populates the lookup table for all realizable shapes with
  /// w * h <= max_workload_size and w or h a warp-size multiple (the paper
  /// uses 32768). Returns the number of table entries.
  size_t BuildTable(int64_t max_workload_size = 32768);

  /// Machine-wide throughput (padded matrix entries per second) at full
  /// occupancy of identical (w, h) workloads. Memoized; shapes outside the
  /// prebuilt table are computed on demand. Thread-safe: the memo table is
  /// mutex-guarded, so a PerfModel shared by a cached plan (e.g. through
  /// TileCompositeKernel::perf_model()) may be queried from concurrent
  /// server threads.
  double Performance(int32_t w, int32_t h, bool cached) const;

  /// Algorithm 3: predicted seconds to process one tile whose occupied rows
  /// have the given non-increasing lengths, partitioned at `workload_size`.
  double PredictTileSeconds(const std::vector<int64_t>& sorted_lens,
                            int64_t workload_size, bool cached) const;

  size_t table_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }
  const gpusim::DeviceSpec& spec() const { return spec_; }

 private:
  double ComputeThroughput(int32_t w, int32_t h, bool cached) const;

  gpusim::DeviceSpec spec_;
  mutable std::mutex mu_;  ///< Guards table_ (memoized under const).
  mutable std::unordered_map<uint64_t, double> table_;
};

}  // namespace tilespmv

#endif  // TILESPMV_CORE_PERF_MODEL_H_
