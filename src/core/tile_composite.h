#ifndef TILESPMV_CORE_TILE_COMPOSITE_H_
#define TILESPMV_CORE_TILE_COMPOSITE_H_

#include <memory>
#include <vector>

#include "core/autotune.h"
#include "core/composite.h"
#include "core/tile_dag.h"
#include "core/tiling.h"
#include "kernels/spmv.h"

namespace tilespmv {

/// Configuration of the tile-composite kernel.
struct TileCompositeOptions {
  TilingOptions tiling;
  /// Workload size for every tile; 0 runs Algorithm 2's auto-tuner per tile.
  int64_t forced_workload = 0;
  /// The 256-byte anti-partition-camping pad (ablation switch).
  bool camping_padding = true;
};

/// TILE-COMPOSITE — the paper's primary contribution. Columns reordered and
/// partially tiled (Solutions 1-2); each tile's rows ranked by length and
/// packed into balanced rectangular workloads stored row-major (CSR-vector
/// execution) or column-major (ELL execution) by shape (Solution 3); the
/// sparse remainder is transformed as one more composite tile. Workload
/// sizes come from the performance-model-driven auto-tuner unless forced.
class TileCompositeKernel : public SpMVKernel {
 public:
  TileCompositeKernel(const gpusim::DeviceSpec& spec,
                      const TileCompositeOptions& options)
      : SpMVKernel(spec), options_(options), model_(spec) {}
  /// Spec-only construction adapts the tile width to the device's cache.
  explicit TileCompositeKernel(const gpusim::DeviceSpec& spec)
      : TileCompositeKernel(spec,
                            TileCompositeOptions{
                                .tiling = TilingOptionsForDevice(spec)}) {}

  std::string_view name() const override { return "tile-composite"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

  const Permutation& row_permutation() const override { return row_perm_; }
  const Permutation& col_permutation() const override { return col_perm_; }

  /// The dataflow decomposition Multiply executes through; built by Setup.
  const TileDag* tile_dag() const override { return dag_.get(); }

  int num_tiles() const { return num_dense_tiles_; }
  /// Read-only view of one built tile: the composite storage plus the x
  /// segment it gathers from. Exposed so the blocked SpMM wrapper can walk
  /// the exact tile sequence (and per-tile accumulation order) Multiply
  /// uses, which is what keeps each panel column bitwise identical to a
  /// single-vector run.
  struct TileView {
    int32_t col_begin = 0;
    bool cached = true;
    const CompositeTile* ct = nullptr;
  };
  std::vector<TileView> tile_views() const;
  /// Workload size used for each dense tile, then the sparse tile.
  const std::vector<int64_t>& workload_sizes() const {
    return workload_sizes_;
  }
  /// The performance model's prediction for one multiply (Figure 5(c)'s
  /// yellow bars; timing().seconds is the "measured" blue bar).
  double predicted_seconds() const { return predicted_seconds_; }
  /// The model used for tuning (shared so benches can query it).
  const PerfModel& perf_model() const { return model_; }

 private:
  /// One tile in composite storage plus its x-segment base column.
  struct BuiltTile {
    int32_t col_begin = 0;
    bool cached = true;  ///< Dense tile (x segment fits texture cache).
    CompositeTile ct;
  };

  TileCompositeOptions options_;
  PerfModel model_;
  Permutation row_perm_;
  Permutation col_perm_;
  std::vector<BuiltTile> tiles_;
  /// Rebuilt per Setup (a frozen TaskGraph is immutable, so re-Setup swaps
  /// in a fresh dag rather than mutating the old one).
  std::unique_ptr<TileDag> dag_;
  std::vector<int64_t> workload_sizes_;
  int num_dense_tiles_ = 0;
  double predicted_seconds_ = 0.0;
};

}  // namespace tilespmv

#endif  // TILESPMV_CORE_TILE_COMPOSITE_H_
