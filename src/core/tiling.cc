#include "core/tiling.h"

#include <algorithm>

#include "util/check.h"

namespace tilespmv {

TilingOptions TilingOptionsForDevice(const gpusim::DeviceSpec& spec) {
  TilingOptions options;
  options.tile_width =
      static_cast<int32_t>(std::max<int64_t>(32, spec.texture_cache_bytes / 4));
  return options;
}

int64_t TiledMatrix::dense_nnz() const {
  int64_t n = 0;
  for (const TileSlice& t : dense_tiles) n += t.local.nnz();
  return n;
}

int HeuristicNumTiles(const std::vector<int64_t>& sorted_col_lengths,
                      int32_t tile_width) {
  TILESPMV_CHECK(tile_width > 0);
  const int64_t cols = static_cast<int64_t>(sorted_col_lengths.size());
  int num_tiles = 0;
  for (int64_t start = 0; start < cols; start += tile_width) {
    if (sorted_col_lengths[start] <= 1) break;
    ++num_tiles;
  }
  return num_tiles;
}

CsrMatrix SliceColumns(const CsrMatrix& a, int32_t c0, int32_t c1,
                       bool localize) {
  TILESPMV_CHECK(0 <= c0 && c0 <= c1 && c1 <= a.cols);
  CsrMatrix m;
  m.rows = a.rows;
  m.cols = localize ? c1 - c0 : a.cols;
  m.row_ptr.assign(static_cast<size_t>(a.rows) + 1, 0);
  for (int32_t r = 0; r < a.rows; ++r) {
    // Columns are sorted within each row: binary search the slice.
    const int32_t* begin = a.col_idx.data() + a.row_ptr[r];
    const int32_t* end = a.col_idx.data() + a.row_ptr[r + 1];
    const int32_t* lo = std::lower_bound(begin, end, c0);
    const int32_t* hi = std::lower_bound(lo, end, c1);
    for (const int32_t* p = lo; p != hi; ++p) {
      m.col_idx.push_back(localize ? *p - c0 : *p);
      m.values.push_back(a.values[a.row_ptr[r] + (p - begin)]);
    }
    m.row_ptr[r + 1] = static_cast<int64_t>(m.col_idx.size());
  }
  return m;
}

TiledMatrix BuildTiling(const CsrMatrix& a, const TilingOptions& options) {
  std::vector<int64_t> col_lengths = a.ColLengths();
  // Precondition: columns sorted by decreasing length.
  TILESPMV_DCHECK(
      std::is_sorted(col_lengths.begin(), col_lengths.end(),
                     [](int64_t x, int64_t y) { return x > y; }));

  int max_tiles = static_cast<int>(
      (static_cast<int64_t>(a.cols) + options.tile_width - 1) /
      options.tile_width);
  int num_tiles = options.num_tiles >= 0
                      ? std::min(options.num_tiles, max_tiles)
                      : HeuristicNumTiles(col_lengths, options.tile_width);

  TiledMatrix tiled;
  tiled.rows = a.rows;
  tiled.cols = a.cols;
  for (int t = 0; t < num_tiles; ++t) {
    TileSlice slice;
    slice.col_begin = t * options.tile_width;
    slice.col_end =
        std::min<int64_t>(a.cols, static_cast<int64_t>(slice.col_begin) +
                                      options.tile_width);
    slice.local =
        SliceColumns(a, slice.col_begin, slice.col_end, /*localize=*/true);
    tiled.dense_tiles.push_back(std::move(slice));
  }
  tiled.dense_col_end = static_cast<int32_t>(std::min<int64_t>(
      a.cols, static_cast<int64_t>(num_tiles) * options.tile_width));
  tiled.sparse_part =
      SliceColumns(a, tiled.dense_col_end, a.cols, /*localize=*/false);
  return tiled;
}

}  // namespace tilespmv
