#include "core/perf_model.h"

#include <algorithm>

#include "gpusim/cost_model.h"
#include "util/check.h"

namespace tilespmv {
namespace {

uint64_t Key(int32_t w, int32_t h, bool cached) {
  return (static_cast<uint64_t>(cached) << 62) |
         (static_cast<uint64_t>(w) << 31) | static_cast<uint64_t>(h);
}

}  // namespace

double PerfModel::ComputeThroughput(int32_t w, int32_t h, bool cached) const {
  Workload wl = MakeWorkload(0, w, h, spec_);
  WorkloadCost cost = CostOfWorkload(wl, spec_);
  gpusim::WarpWork warp;
  warp.issue_cycles = cost.issue_cycles;
  warp.global_bytes = cost.matrix_bytes;
  // x-gather cost. The paper builds this table by timing real synthetic
  // workloads, which naturally includes cache behavior; the analytic
  // equivalent charges the full miss cost without the texture cache and a
  // small residual miss rate with it (compulsory fills, associativity
  // conflicts, inter-warp interference).
  double miss_rate = cached ? 0.03 : 1.0;
  warp.scattered_bytes += static_cast<uint64_t>(
      miss_rate * wl.PaddedFloats() * spec_.min_transaction_bytes);
  warp.issue_cycles += static_cast<uint64_t>(
      miss_rate * wl.PaddedFloats() * spec_.tex_miss_stall_cycles);
  // Scattered y write per row.
  warp.scattered_bytes +=
      static_cast<uint64_t>(wl.h) * spec_.min_transaction_bytes;
  // The synthetic benchmark lays workloads out with the camping pad, so the
  // traffic spreads uniformly over partitions.
  warp.start_address = gpusim::kNoAddress;

  gpusim::KernelLaunch launch;
  launch.warps.assign(static_cast<size_t>(spec_.MaxActiveWarps()), warp);
  gpusim::CostModel model(spec_);
  gpusim::LaunchEstimate est = model.EstimateLaunch(launch);
  double wave_seconds = est.seconds - spec_.kernel_launch_overhead_us * 1e-6;
  TILESPMV_CHECK(wave_seconds > 0);
  return static_cast<double>(spec_.MaxActiveWarps()) *
         static_cast<double>(wl.PaddedFloats()) / wave_seconds;
}

double PerfModel::Performance(int32_t w, int32_t h, bool cached) const {
  uint64_t key = Key(w, h, cached);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(key);
    if (it != table_.end()) return it->second;
  }
  // Computed outside the lock: concurrent first queries for the same shape
  // may duplicate work, but the result is deterministic either way.
  double p = ComputeThroughput(w, h, cached);
  std::lock_guard<std::mutex> lock(mu_);
  table_.emplace(key, p);
  return p;
}

size_t PerfModel::BuildTable(int64_t max_workload_size) {
  for (bool cached : {false, true}) {
    for (int32_t h = 1; h <= max_workload_size; ++h) {
      int64_t max_w = max_workload_size / h;
      if (max_w < 1) break;
      if (h % spec_.warp_size == 0) {
        // Column-major shapes: any width.
        for (int32_t w = 1; w <= max_w; ++w) Performance(w, h, cached);
      } else {
        // Row-major shapes: width must be a warp-size multiple.
        for (int32_t w = spec_.warp_size; w <= max_w;
             w += spec_.warp_size) {
          Performance(w, h, cached);
        }
      }
    }
  }
  return table_size();
}

double PerfModel::PredictTileSeconds(const std::vector<int64_t>& sorted_lens,
                                     int64_t workload_size,
                                     bool cached) const {
  if (sorted_lens.empty()) return 0.0;
  TILESPMV_CHECK(workload_size >= 1);
  const int64_t max_act = spec_.MaxActiveWarps();
  std::vector<double> perf_sum;
  std::vector<double> size_sum;
  std::vector<int64_t> count;

  const int64_t n = static_cast<int64_t>(sorted_lens.size());
  int64_t i = 0;  // Row position.
  int64_t j = 0;  // Warp index.
  while (i < n) {
    int32_t w = static_cast<int32_t>(sorted_lens[i]);
    // Algorithm 3 line 9: h = WL / w (at least one row, at most what's left).
    int64_t h64 = std::max<int64_t>(1, workload_size / std::max(w, 1));
    h64 = std::min(h64, n - i);
    int32_t h = static_cast<int32_t>(h64);
    Workload wl = MakeWorkload(0, w, h, spec_);
    size_t iter = static_cast<size_t>(j / max_act);
    if (iter >= perf_sum.size()) {
      perf_sum.push_back(0.0);
      size_sum.push_back(0.0);
      count.push_back(0);
    }
    perf_sum[iter] += Performance(wl.w, wl.h, cached);
    size_sum[iter] += static_cast<double>(wl.PaddedFloats());
    ++count[iter];
    ++j;
    i += h;
  }

  // Equations 2-5: each iteration contributes Size(i) / average performance.
  double total = spec_.kernel_launch_overhead_us * 1e-6;
  for (size_t it = 0; it < perf_sum.size(); ++it) {
    double avg = perf_sum[it] / static_cast<double>(count[it]);
    // The table holds full-occupancy throughput; a partial iteration lacks
    // the memory-level parallelism to saturate DRAM (same rule, same 1/4
    // floor as the execution model).
    double mlp = std::clamp(static_cast<double>(count[it]) /
                                std::max(1, spec_.bw_saturation_warps),
                            0.25, 1.0);
    total += size_sum[it] / (avg * mlp);
  }
  return total;
}

}  // namespace tilespmv
