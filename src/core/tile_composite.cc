#include "core/tile_composite.h"

#include <algorithm>

#include "kernels/gpu_common.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "robust/fault_injection.h"

namespace tilespmv {

Status TileCompositeKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  rows_ = a.rows;
  cols_ = a.cols;
  tiles_.clear();
  workload_sizes_.clear();
  predicted_seconds_ = 0.0;

  obs::TraceSpan setup_span("preprocess", "preprocess/setup");
  if (setup_span.active()) {
    setup_span.Arg("rows", static_cast<int64_t>(a.rows));
    setup_span.Arg("nnz", a.nnz());
  }
  Permutation perm;
  {
    obs::TraceSpan span("preprocess", "preprocess/sort_columns");
    perm = SortColumnsByLengthDesc(a);
  }
  CsrMatrix sorted;
  {
    obs::TraceSpan span("preprocess", "preprocess/relabel");
    if (a.rows == a.cols) {
      sorted = ApplySymmetricPermutation(a, perm);
      row_perm_ = perm;
      col_perm_ = perm;
    } else {
      sorted = ApplyColumnPermutation(a, perm);
      row_perm_.clear();
      col_perm_ = perm;
    }
  }
  TiledMatrix tiled;
  {
    obs::TraceSpan span("preprocess", "preprocess/tiling");
    tiled = BuildTiling(sorted, options_.tiling);
    num_dense_tiles_ = static_cast<int>(tiled.dense_tiles.size());
    if (span.active()) span.Arg("dense_tiles", num_dense_tiles_);
  }

  // Pick each tile's workload size (Algorithm 2) and build the composite
  // storage, one pool chunk per tile. The sparse remainder becomes one
  // final, uncached tile. Results land in per-tile slots and are compacted
  // in tile order afterwards, so tiles_ / workload_sizes_ /
  // predicted_seconds_ come out identical to the old sequential build.
  struct TileInput {
    const CsrMatrix* csr;
    int32_t col_begin;
    bool cached;
  };
  std::vector<TileInput> inputs;
  inputs.reserve(tiled.dense_tiles.size() + 1);
  for (const TileSlice& slice : tiled.dense_tiles) {
    inputs.push_back({&slice.local, slice.col_begin, /*cached=*/true});
  }
  inputs.push_back({&tiled.sparse_part, /*col_begin=*/0, /*cached=*/false});

  struct TileOutput {
    BuiltTile bt;
    int64_t wl = 0;
    double predicted = 0.0;
    bool used = false;
  };
  std::vector<TileOutput> outputs(inputs.size());
  par::LoopOptions tile_opts;
  tile_opts.grain = 1;
  tile_opts.chunking = par::Chunking::kGuided;
  tile_opts.label = "par/composite_build";
  par::ParallelFor(
      0, static_cast<int64_t>(inputs.size()), tile_opts,
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const TileInput& in = inputs[i];
          obs::TraceSpan span("preprocess", "preprocess/composite_tile");
          std::vector<int64_t> lens = SortedOccupiedRowLengths(*in.csr);
          if (lens.empty()) continue;
          if (span.active()) {
            span.Arg("tile", i);
            span.Arg("cached", static_cast<int64_t>(in.cached ? 1 : 0));
            span.Arg("nnz", in.csr->nnz());
          }
          TileOutput& out = outputs[i];
          int64_t wl = options_.forced_workload;
          if (wl <= 0) {
            TileAutotune tuned = ChooseWorkloadSize(lens, in.cached, model_);
            wl = tuned.workload_size;
            out.predicted = tuned.predicted_seconds;
          } else {
            wl = std::max(wl, lens.front());  // Longest row cannot be split.
            out.predicted = model_.PredictTileSeconds(lens, wl, in.cached);
          }
          out.bt.col_begin = in.col_begin;
          out.bt.cached = in.cached;
          out.bt.ct =
              BuildComposite(*in.csr, wl, spec_, options_.camping_padding);
          out.wl = wl;
          out.used = true;
        }
      });
  for (TileOutput& out : outputs) {
    if (!out.used) continue;
    predicted_seconds_ += out.predicted;
    workload_sizes_.push_back(out.wl);
    tiles_.push_back(std::move(out.bt));
  }

  // Freeze the dataflow decomposition Multiply replays (core/tile_dag.h).
  // The dag holds pointers into tiles_, which is immutable from here on.
  {
    obs::TraceSpan span("preprocess", "preprocess/tile_dag");
    dag_ = std::make_unique<TileDag>();
    std::vector<TileDag::TileRef> refs;
    refs.reserve(tiles_.size());
    for (const BuiltTile& bt : tiles_) {
      refs.push_back(TileDag::TileRef{bt.col_begin, &bt.ct});
    }
    dag_->Build(std::move(refs), rows_, cols_);
    if (span.active()) {
      span.Arg("chunks", dag_->num_chunks());
      span.Arg("blocks", dag_->num_blocks());
    }
  }

  // ---- Simulate one multiply. ----
  obs::TraceSpan sim_span("kernel", "kernel/simulate");
  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }
  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());

  bool first = true;
  for (const BuiltTile& bt : tiles_) {
    const CompositeTile& ct = bt.ct;
    Result<gpu::DeviceArray> col_arr = ctx.Alloc(ct.total_padded_floats * 4);
    Result<gpu::DeviceArray> val_arr = ctx.Alloc(ct.total_padded_floats * 4);
    for (const auto* r : {&col_arr, &val_arr}) {
      if (!r->ok()) return r->status();
    }
    const uint64_t x_base =
        x_arr.value().addr + 4 * static_cast<uint64_t>(bt.col_begin);
    ctx.FlushTexture();  // The texture binding moves to this tile's segment.

    ctx.BeginLaunch();
    for (const Workload& wl : ct.workloads) {
      WorkloadCost cost = CostOfWorkload(wl, spec_);
      gpusim::WarpWork warp;
      warp.issue_cycles = cost.issue_cycles;
      warp.global_bytes = cost.matrix_bytes;
      warp.start_address =
          val_arr.value().addr + 4 * static_cast<uint64_t>(wl.storage_offset);
      // x gathers for the real entries of the rectangle; padded slots re-use
      // the workload's first column (always resident after first touch).
      for (int32_t p = wl.first_pos; p < wl.first_pos + wl.h; ++p) {
        int64_t start = ct.row_start[p];
        for (int64_t k = 0; k < ct.row_len[p]; ++k) {
          ctx.TexFetch(x_base, ct.cols[start + k], &warp);
        }
      }
      if (ct.row_len[wl.first_pos] > 0) {
        ctx.TexFetch(x_base, ct.cols[ct.row_start[wl.first_pos]], &warp);
      }
      // Scattered partial-y updates (accumulating after the first tile).
      warp.scattered_bytes +=
          ctx.ScatterBytes(static_cast<uint64_t>(wl.h)) * (first ? 1 : 2);
      ctx.AddWarp(warp);
    }
    timing_.useful_bytes += static_cast<uint64_t>(ct.total_padded_floats) * 8 +
                            static_cast<uint64_t>(ct.nnz) * 4 +
                            static_cast<uint64_t>(ct.occupied_rows()) * 4;
    first = false;
  }
  ctx.Finalize(&timing_);
  return Status::OK();
}

std::vector<TileCompositeKernel::TileView> TileCompositeKernel::tile_views()
    const {
  std::vector<TileView> views;
  views.reserve(tiles_.size());
  for (const BuiltTile& bt : tiles_) {
    views.push_back(TileView{bt.col_begin, bt.cached, &bt.ct});
  }
  return views;
}

void TileCompositeKernel::Multiply(const std::vector<float>& x,
                                   std::vector<float>* y) const {
  // Dataflow execution (core/tile_dag.h): chunk tasks fill per-position
  // partial sums, per-block reduction tasks fold them into y in tile order
  // as soon as the chunks feeding their rows finish — no barrier between
  // tiles. Each y row still receives one partial per tile, ascending, so
  // the result is bitwise identical to the old sequential tile loop at
  // every thread count. Per-call scratch keeps Multiply thread-safe on a
  // shared plan (kernels/spmv.h).
  y->resize(rows_);
  std::vector<float> partial(static_cast<size_t>(dag_->partial_size()));
  const int32_t num_chunks = static_cast<int32_t>(dag_->num_chunks());
  const float* xd = x.data();
  float* pd = partial.data();
  float* yd = y->data();
  par::RunTaskGraph(dag_->multiply_graph(), [&](int32_t t) {
    if (t < num_chunks) {
      dag_->RunChunk(t, xd, pd);
    } else {
      dag_->ReduceBlock(t - num_chunks, pd, yd);
    }
  });
}

}  // namespace tilespmv
