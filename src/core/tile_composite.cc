#include "core/tile_composite.h"

#include <algorithm>

#include "kernels/gpu_common.h"
#include "obs/trace.h"

namespace tilespmv {

Status TileCompositeKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  rows_ = a.rows;
  cols_ = a.cols;
  tiles_.clear();
  workload_sizes_.clear();
  predicted_seconds_ = 0.0;

  obs::TraceSpan setup_span("preprocess", "preprocess/setup");
  if (setup_span.active()) {
    setup_span.Arg("rows", static_cast<int64_t>(a.rows));
    setup_span.Arg("nnz", a.nnz());
  }
  Permutation perm;
  {
    obs::TraceSpan span("preprocess", "preprocess/sort_columns");
    perm = SortColumnsByLengthDesc(a);
  }
  CsrMatrix sorted;
  {
    obs::TraceSpan span("preprocess", "preprocess/relabel");
    if (a.rows == a.cols) {
      sorted = ApplySymmetricPermutation(a, perm);
      row_perm_ = perm;
      col_perm_ = perm;
    } else {
      sorted = ApplyColumnPermutation(a, perm);
      row_perm_.clear();
      col_perm_ = perm;
    }
  }
  TiledMatrix tiled;
  {
    obs::TraceSpan span("preprocess", "preprocess/tiling");
    tiled = BuildTiling(sorted, options_.tiling);
    num_dense_tiles_ = static_cast<int>(tiled.dense_tiles.size());
    if (span.active()) span.Arg("dense_tiles", num_dense_tiles_);
  }

  // Pick each tile's workload size (Algorithm 2) and build the composite
  // storage. The sparse remainder becomes one final, uncached tile.
  auto build_tile = [&](const CsrMatrix& tile_csr, int32_t col_begin,
                        bool cached) -> Status {
    obs::TraceSpan span("preprocess", "preprocess/composite_tile");
    std::vector<int64_t> lens = SortedOccupiedRowLengths(tile_csr);
    if (lens.empty()) return Status::OK();
    if (span.active()) {
      span.Arg("tile", static_cast<int64_t>(tiles_.size()));
      span.Arg("cached", static_cast<int64_t>(cached ? 1 : 0));
      span.Arg("nnz", tile_csr.nnz());
    }
    int64_t wl = options_.forced_workload;
    if (wl <= 0) {
      TileAutotune tuned = ChooseWorkloadSize(lens, cached, model_);
      wl = tuned.workload_size;
      predicted_seconds_ += tuned.predicted_seconds;
    } else {
      wl = std::max(wl, lens.front());  // The longest row cannot be split.
      predicted_seconds_ += model_.PredictTileSeconds(lens, wl, cached);
    }
    BuiltTile bt;
    bt.col_begin = col_begin;
    bt.cached = cached;
    bt.ct = BuildComposite(tile_csr, wl, spec_, options_.camping_padding);
    workload_sizes_.push_back(wl);
    tiles_.push_back(std::move(bt));
    return Status::OK();
  };
  for (const TileSlice& slice : tiled.dense_tiles) {
    TILESPMV_RETURN_IF_ERROR(
        build_tile(slice.local, slice.col_begin, /*cached=*/true));
  }
  TILESPMV_RETURN_IF_ERROR(
      build_tile(tiled.sparse_part, /*col_begin=*/0, /*cached=*/false));

  // ---- Simulate one multiply. ----
  obs::TraceSpan sim_span("kernel", "kernel/simulate");
  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }
  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());

  bool first = true;
  for (const BuiltTile& bt : tiles_) {
    const CompositeTile& ct = bt.ct;
    Result<gpu::DeviceArray> col_arr = ctx.Alloc(ct.total_padded_floats * 4);
    Result<gpu::DeviceArray> val_arr = ctx.Alloc(ct.total_padded_floats * 4);
    for (const auto* r : {&col_arr, &val_arr}) {
      if (!r->ok()) return r->status();
    }
    const uint64_t x_base =
        x_arr.value().addr + 4 * static_cast<uint64_t>(bt.col_begin);
    ctx.FlushTexture();  // The texture binding moves to this tile's segment.

    ctx.BeginLaunch();
    for (const Workload& wl : ct.workloads) {
      WorkloadCost cost = CostOfWorkload(wl, spec_);
      gpusim::WarpWork warp;
      warp.issue_cycles = cost.issue_cycles;
      warp.global_bytes = cost.matrix_bytes;
      warp.start_address =
          val_arr.value().addr + 4 * static_cast<uint64_t>(wl.storage_offset);
      // x gathers for the real entries of the rectangle; padded slots re-use
      // the workload's first column (always resident after first touch).
      for (int32_t p = wl.first_pos; p < wl.first_pos + wl.h; ++p) {
        int64_t start = ct.row_start[p];
        for (int64_t k = 0; k < ct.row_len[p]; ++k) {
          ctx.TexFetch(x_base, ct.cols[start + k], &warp);
        }
      }
      if (ct.row_len[wl.first_pos] > 0) {
        ctx.TexFetch(x_base, ct.cols[ct.row_start[wl.first_pos]], &warp);
      }
      // Scattered partial-y updates (accumulating after the first tile).
      warp.scattered_bytes +=
          ctx.ScatterBytes(static_cast<uint64_t>(wl.h)) * (first ? 1 : 2);
      ctx.AddWarp(warp);
    }
    timing_.useful_bytes += static_cast<uint64_t>(ct.total_padded_floats) * 8 +
                            static_cast<uint64_t>(ct.nnz) * 4 +
                            static_cast<uint64_t>(ct.occupied_rows()) * 4;
    first = false;
  }
  ctx.Finalize(&timing_);
  return Status::OK();
}

void TileCompositeKernel::Multiply(const std::vector<float>& x,
                                   std::vector<float>* y) const {
  y->assign(rows_, 0.0f);
  for (const BuiltTile& bt : tiles_) {
    const CompositeTile& ct = bt.ct;
    for (size_t p = 0; p < ct.row_order.size(); ++p) {
      float sum = 0.0f;
      int64_t start = ct.row_start[p];
      for (int64_t k = 0; k < ct.row_len[p]; ++k) {
        sum += ct.vals[start + k] * x[bt.col_begin + ct.cols[start + k]];
      }
      (*y)[ct.row_order[p]] += sum;
    }
  }
}

}  // namespace tilespmv
