#ifndef TILESPMV_CORE_DYNAMIC_H_
#define TILESPMV_CORE_DYNAMIC_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "kernels/spmv.h"
#include "sparse/csr.h"

namespace tilespmv {

/// Options for the dynamic wrapper.
struct DynamicOptions {
  /// Re-run the full preprocessing (reorder + tile + pack + tune) once the
  /// staged delta exceeds this fraction of the base non-zeros.
  double rebuild_fraction = 0.05;
  /// Kernel used for the preprocessed base matrix.
  std::string base_kernel = "tile-composite";
};

/// Incremental SpMV over an evolving graph — an extension beyond the paper,
/// which preprocesses once and assumes a static matrix. Real mining
/// pipelines ingest edges continuously; re-sorting after every insertion
/// would forfeit the amortization argument of Section 3.1.
///
/// Design: updates accumulate in a COO *delta* alongside the preprocessed
/// base. A multiply runs the tuned base kernel plus a small COO pass over
/// the delta (which is exactly what the delta would cost on the device —
/// the COO kernel is insensitive to its shape). When the delta grows past
/// `rebuild_fraction` of the base, the wrapper re-preprocesses, restoring
/// the tuned layout. All indices are in the original (caller) space.
class DynamicTileComposite {
 public:
  DynamicTileComposite(const gpusim::DeviceSpec& spec,
                       const DynamicOptions& options)
      : spec_(spec), options_(options) {}
  explicit DynamicTileComposite(const gpusim::DeviceSpec& spec)
      : DynamicTileComposite(spec, DynamicOptions{}) {}

  /// Preprocesses the initial matrix.
  Status Init(const CsrMatrix& a);

  /// Stages `weight` to be added to entry (row, col); creates the entry if
  /// absent. Triggers an automatic rebuild when the staged delta crosses
  /// the threshold.
  Status AddEdge(int32_t row, int32_t col, float weight);

  /// y = (base + delta) * x, original index space.
  void Multiply(const std::vector<float>& x, std::vector<float>* y) const;

  /// Modeled device cost of one Multiply (base kernel + delta COO pass).
  double seconds_per_multiply() const;

  /// Folds the delta into the base and re-preprocesses.
  Status Rebuild();

  int64_t delta_nnz() const { return static_cast<int64_t>(delta_.size()); }
  int64_t base_nnz() const { return base_.nnz(); }
  int rebuilds() const { return rebuilds_; }
  bool NeedsRebuild() const {
    return static_cast<double>(delta_.size()) >
           options_.rebuild_fraction * static_cast<double>(base_.nnz());
  }

 private:
  gpusim::DeviceSpec spec_;
  DynamicOptions options_;
  CsrMatrix base_;
  std::unique_ptr<SpMVKernel> kernel_;
  // (row << 32 | col) -> staged weight.
  std::unordered_map<uint64_t, float> delta_;
  int rebuilds_ = 0;
};

}  // namespace tilespmv

#endif  // TILESPMV_CORE_DYNAMIC_H_
