#include "core/autotune.h"

#include <algorithm>
#include <limits>

#include "obs/trace.h"
#include "util/check.h"

namespace tilespmv {

std::vector<int64_t> SortedOccupiedRowLengths(const CsrMatrix& tile) {
  std::vector<int64_t> lens;
  lens.reserve(tile.rows);
  for (int32_t r = 0; r < tile.rows; ++r) {
    int64_t len = tile.RowLength(r);
    if (len > 0) lens.push_back(len);
  }
  std::sort(lens.begin(), lens.end(), std::greater<int64_t>());
  return lens;
}

TileAutotune ChooseWorkloadSize(const std::vector<int64_t>& sorted_lens,
                                bool cached, const PerfModel& model) {
  obs::TraceSpan span("autotune", "autotune/choose_workload");
  TileAutotune result;
  if (sorted_lens.empty()) return result;
  int64_t nnz = 0;
  for (int64_t len : sorted_lens) nnz += len;

  const int64_t wl_low = sorted_lens.front();
  const int64_t wl_up =
      std::max(wl_low, nnz / model.spec().MaxActiveWarps());
  // The search steps by the first row's length (Algorithm 2 line 11); cap
  // the candidate count so degenerate tiles (one-element first row, huge
  // nnz) stay tractable.
  constexpr int kMaxCandidates = 512;
  int64_t num_steps = (wl_up - wl_low) / wl_low + 1;
  int64_t stride = wl_low * std::max<int64_t>(1, num_steps / kMaxCandidates);

  double best_time = std::numeric_limits<double>::infinity();
  for (int64_t wl = wl_low; wl <= wl_up; wl += stride) {
    double t = model.PredictTileSeconds(sorted_lens, wl, cached);
    ++result.candidates_tried;
    if (t < best_time) {
      best_time = t;
      result.workload_size = wl;
    }
  }
  result.predicted_seconds = best_time;
  if (span.active()) {
    span.Arg("candidates", result.candidates_tried);
    span.Arg("workload", result.workload_size);
    span.Arg("predicted_us", best_time * 1e6);
  }
  return result;
}

AutotunePlan AutotuneTileComposite(const CsrMatrix& sorted,
                                   const TilingOptions& options,
                                   const PerfModel& model) {
  obs::TraceSpan span("autotune", "autotune/plan");
  AutotunePlan plan;
  TilingOptions opts = options;
  if (opts.num_tiles < 0) {
    std::vector<int64_t> col_lengths = sorted.ColLengths();
    opts.num_tiles = HeuristicNumTiles(col_lengths, opts.tile_width);
  }
  plan.num_tiles = opts.num_tiles;
  TiledMatrix tiled = BuildTiling(sorted, opts);
  for (const TileSlice& slice : tiled.dense_tiles) {
    std::vector<int64_t> lens = SortedOccupiedRowLengths(slice.local);
    plan.tiles.push_back(ChooseWorkloadSize(lens, /*cached=*/true, model));
    plan.predicted_seconds += plan.tiles.back().predicted_seconds;
  }
  std::vector<int64_t> sparse_lens =
      SortedOccupiedRowLengths(tiled.sparse_part);
  plan.sparse = ChooseWorkloadSize(sparse_lens, /*cached=*/false, model);
  plan.predicted_seconds += plan.sparse.predicted_seconds;
  return plan;
}

}  // namespace tilespmv
