#include "core/tile_coo.h"

#include "kernels/walks.h"
#include "par/pool.h"

namespace tilespmv {

Status TileCooKernel::Setup(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  rows_ = a.rows;
  cols_ = a.cols;

  // One-off preprocessing (amortized across power-method iterations): sort
  // columns by length; square matrices are relabeled symmetrically so
  // iterative algorithms never re-permute between iterations.
  Permutation perm = SortColumnsByLengthDesc(a);
  CsrMatrix sorted;
  if (a.rows == a.cols) {
    sorted = ApplySymmetricPermutation(a, perm);
    row_perm_ = perm;
    col_perm_ = perm;
  } else {
    sorted = ApplyColumnPermutation(a, perm);
    row_perm_.clear();
    col_perm_ = perm;
  }
  tiled_ = BuildTiling(sorted, options_);

  gpu::SimContext ctx(spec_);
  Result<gpu::DeviceArray> x_arr = ctx.Alloc(static_cast<int64_t>(a.cols) * 4);
  Result<gpu::DeviceArray> y_arr = ctx.Alloc(static_cast<int64_t>(a.rows) * 4);
  for (const auto* r : {&x_arr, &y_arr}) {
    if (!r->ok()) return r->status();
  }

  timing_ = KernelTiming{};
  timing_.flops = 2 * static_cast<uint64_t>(a.nnz());

  // One COO launch per dense tile; the texture binding moves to the tile's x
  // segment (it fits the cache entirely), so the cache is flushed between
  // launches. Tiles after the first accumulate into y.
  bool first = true;
  for (const TileSlice& slice : tiled_.dense_tiles) {
    CooMatrix tile_coo = CooFromCsr(slice.local);
    ctx.FlushTexture();
    TILESPMV_RETURN_IF_ERROR(gpu::SimulateCooLaunch(
        tile_coo, x_arr.value().addr + 4 * static_cast<uint64_t>(slice.col_begin),
        y_arr.value().addr, /*accumulate_into_y=*/!first, &ctx));
    timing_.useful_bytes += gpu::CooUsefulBytes(tile_coo);
    first = false;
  }
  // Sparse remainder under HYB (the paper: "the computation in the sparser
  // matrix is run under the HYB kernel, because HYB has the best
  // performance").
  if (tiled_.sparse_part.nnz() > 0) {
    HybMatrix hyb = HybFromCsr(tiled_.sparse_part);
    ctx.FlushTexture();
    TILESPMV_RETURN_IF_ERROR(gpu::SimulateEllLaunch(
        hyb.ell, x_arr.value().addr, y_arr.value().addr, &ctx));
    TILESPMV_RETURN_IF_ERROR(gpu::SimulateCooLaunch(
        hyb.coo, x_arr.value().addr, y_arr.value().addr,
        /*accumulate_into_y=*/!first, &ctx));
    timing_.useful_bytes +=
        gpu::EllUsefulBytes(hyb.ell) + gpu::CooUsefulBytes(hyb.coo);
  }
  ctx.Finalize(&timing_);
  return Status::OK();
}

void TileCooKernel::Multiply(const std::vector<float>& x,
                             std::vector<float>* y) const {
  y->assign(rows_, 0.0f);
  // Tiles stay sequential (each accumulates into y from its predecessors);
  // rows within a tile are independent, so each tile's loop is
  // row-parallel. The per-row += order — one sum per tile, in tile order —
  // is unchanged, so the result is bitwise identical.
  par::LoopOptions options;
  options.grain = 256;
  options.chunking = par::Chunking::kGuided;
  options.label = "par/tile_coo_multiply";
  for (const TileSlice& slice : tiled_.dense_tiles) {
    const CsrMatrix& t = slice.local;
    par::ParallelFor(0, t.rows, options, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        float sum = 0.0f;
        for (int64_t k = t.row_ptr[r]; k < t.row_ptr[r + 1]; ++k) {
          sum += t.values[k] * x[slice.col_begin + t.col_idx[k]];
        }
        (*y)[r] += sum;
      }
    });
  }
  const CsrMatrix& s = tiled_.sparse_part;
  par::ParallelFor(0, s.rows, options, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float sum = 0.0f;
      for (int64_t k = s.row_ptr[r]; k < s.row_ptr[r + 1]; ++k) {
        sum += s.values[k] * x[s.col_idx[k]];
      }
      (*y)[r] += sum;
    }
  });
}

}  // namespace tilespmv
