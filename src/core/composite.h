#ifndef TILESPMV_CORE_COMPOSITE_H_
#define TILESPMV_CORE_COMPOSITE_H_

#include <cstdint>
#include <vector>

#include "gpusim/device_spec.h"
#include "sparse/csr.h"
#include "sparse/permute.h"

namespace tilespmv {

/// One rectangular workload of the composite storage scheme (Solution 3):
/// `h` consecutive rows (in tile row-length order), each padded to the width
/// `w` of its longest (first) row. Row-major rectangles (w >= h) run
/// CSR-vector style; column-major ones (w < h) run ELL style. One workload
/// is executed by exactly one warp.
struct Workload {
  int32_t first_pos = 0;  ///< First row position in the tile's sorted order.
  int32_t h = 0;          ///< Rows packed into the rectangle.
  int32_t w = 0;          ///< Width = length of the first (longest) row.
  bool row_major = false; ///< w >= h: stored row-major, CSR-vector execution.
  int32_t padded_w = 0;   ///< w rounded up to warp size if row-major.
  int32_t padded_h = 0;   ///< h rounded up to warp size if column-major.
  int64_t storage_offset = 0;  ///< Float offset of this rectangle's storage.

  int64_t PaddedFloats() const {
    return static_cast<int64_t>(padded_w) * padded_h;
  }
};

/// Issue cycles and matrix-stream traffic of one workload warp (x gathers
/// and y writes are accounted separately because they depend on the data).
/// This same recipe backs both the kernel simulation and the offline
/// benchmark table of the performance model — as in the paper, where the
/// lookup table is built by running the real kernel on synthetic workloads.
struct WorkloadCost {
  uint64_t issue_cycles = 0;
  uint64_t matrix_bytes = 0;
};
WorkloadCost CostOfWorkload(const Workload& wl,
                            const gpusim::DeviceSpec& spec);

/// Pads a (w, h) rectangle per the storage rule: row-major if w >= h, then
/// w (or h) rounded up to a warp-size multiple.
Workload MakeWorkload(int32_t first_pos, int32_t w, int32_t h,
                      const gpusim::DeviceSpec& spec);

/// A tile in composite storage: rows reordered by decreasing in-tile length
/// and packed into workloads of ~`workload_size` non-zeros.
struct CompositeTile {
  Permutation row_order;          ///< position -> row id in the tile matrix.
  std::vector<int64_t> row_len;   ///< length per position (non-increasing).
  std::vector<int64_t> row_start; ///< offset into cols/vals per position.
  std::vector<int32_t> cols;      ///< concatenated column indices.
  std::vector<float> vals;        ///< concatenated values.
  std::vector<Workload> workloads;
  int64_t workload_size = 0;
  int64_t total_padded_floats = 0;  ///< Storage incl. padding + camping pad.
  int64_t nnz = 0;

  /// Rows with at least one non-zero (rows past this are not stored).
  int32_t occupied_rows() const {
    return static_cast<int32_t>(row_order.size());
  }
};

/// Greedy workload packing (Section 3.1, Figure 1(d)): walk rows from
/// longest to shortest, pack rows into the current workload until adding the
/// next row would exceed `workload_size`. With `camping_padding`, a 256-byte
/// pad is appended after any workload whose padded size is a multiple of 512
/// floats, so consecutive workloads never start in the same memory partition
/// ("Elimination of Partition Camping").
CompositeTile BuildComposite(const CsrMatrix& tile, int64_t workload_size,
                             const gpusim::DeviceSpec& spec,
                             bool camping_padding);

/// The workload shapes the greedy packer would produce for a row-length
/// ranking, without materializing storage (used by exhaustive searches).
std::vector<Workload> PackWorkloads(const std::vector<int64_t>& sorted_lens,
                                    int64_t workload_size,
                                    const gpusim::DeviceSpec& spec,
                                    bool camping_padding);

}  // namespace tilespmv

#endif  // TILESPMV_CORE_COMPOSITE_H_
