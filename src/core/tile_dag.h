#ifndef TILESPMV_CORE_TILE_DAG_H_
#define TILESPMV_CORE_TILE_DAG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/composite.h"
#include "par/pool.h"
#include "par/taskgraph.h"

namespace tilespmv {

/// Dataflow decomposition of one tile-composite multiply, built once at
/// kernel Setup and replayed through par::TaskGraph (docs/PARALLELISM.md).
///
/// The fork-join multiply ran the tiles sequentially — tile t+1's row loop
/// could not start until every row of tile t had accumulated into y. Here
/// the tiles' position ranges are cut into chunk tasks that each write
/// per-position partial sums into a private slot (no two chunks share an
/// output), and fixed row-blocks of y are produced by reduction tasks that
/// fold the partials of their rows in tile order. A reduction task depends
/// only on the chunks that feed its rows, so it fires as soon as those
/// tiles' pieces finish — while unrelated chunks are still running.
///
/// Determinism: the partial for (tile, position) is the same float sum the
/// sequential loop computed, and each y row still accumulates one partial
/// per tile in ascending tile order inside its reduction task. The chunk
/// boundaries cannot change any value (partials are per-position), and the
/// reduction blocks are fixed at par::kReduceBlock rows — so the result is
/// bitwise identical to the sequential tile loop at every thread count.
///
/// The same structure also runs dense panels (the SpMM sibling): the panel
/// stage bodies keep one accumulator per column, reproducing each column's
/// scalar order exactly.
class TileDag {
 public:
  /// A slice of one tile's position range, executed by one chunk task.
  struct Chunk {
    int32_t tile = 0;
    int64_t p0 = 0;            ///< First position (within the tile).
    int64_t p1 = 0;            ///< One past the last position.
    int64_t partial_base = 0;  ///< Partial slot of position p0.
    /// Exact global-column read range [col_lo, col_hi) of the chunk's x
    /// gathers — what the pipelined power graphs use to start next-iteration
    /// chunks as soon as the blocks they read are updated.
    int64_t col_lo = 0;
    int64_t col_hi = 0;
  };

  /// One (partial slot, destination row) pair of a reduction block. Entries
  /// are stored sorted by partial index, i.e. by (tile, position) — the
  /// accumulation order of the sequential tile loop.
  struct Entry {
    int64_t partial = 0;
    int32_t row = 0;
  };

  /// A lightweight view of one built tile (mirrors
  /// TileCompositeKernel::TileView without the include cycle).
  struct TileRef {
    int32_t col_begin = 0;
    const CompositeTile* ct = nullptr;
  };

  TileDag() = default;
  TileDag(const TileDag&) = delete;
  TileDag& operator=(const TileDag&) = delete;

  /// Builds chunks, per-block reduction recipes, and the frozen multiply
  /// graph. The CompositeTile pointers must stay valid for the life of the
  /// dag (they point into the owning kernel's tile storage).
  void Build(std::vector<TileRef> tiles, int32_t rows, int32_t cols);

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  int64_t num_chunks() const { return static_cast<int64_t>(chunks_.size()); }
  /// Row blocks of par::kReduceBlock rows — the same partition every
  /// deterministic reduction in the graph loops uses.
  int64_t num_blocks() const { return num_blocks_; }
  /// Slots in the per-multiply partial buffer (one per occupied position).
  int64_t partial_size() const { return partial_size_; }
  const Chunk& chunk(int64_t c) const {
    return chunks_[static_cast<size_t>(c)];
  }
  int64_t block_row_begin(int64_t b) const { return b * par::kReduceBlock; }
  int64_t block_row_end(int64_t b) const {
    const int64_t hi = (b + 1) * par::kReduceBlock;
    return hi < rows_ ? hi : rows_;
  }
  /// Chunk ids whose rows intersect block `b`, ascending.
  const std::vector<int32_t>& chunks_feeding(int64_t b) const {
    return block_chunks_[static_cast<size_t>(b)];
  }

  // ---- Stage bodies (all const, callable concurrently). ----

  /// partial[slot] = this chunk's per-position row sums over x.
  void RunChunk(int64_t c, const float* x, float* partial) const;
  /// y rows of block `b`: zeroed, then accumulated from partials in tile
  /// order. Covers every row of the block (rows no chunk feeds stay 0).
  void ReduceBlock(int64_t b, const float* partial, float* y) const;
  /// Panel variants: x/y are row-major interleaved panels of width `k`
  /// (spmm::DenseBlock layout), partial holds k floats per slot.
  void RunChunkPanel(int64_t c, const float* x, int k, float* partial) const;
  void ReduceBlockPanel(int64_t b, const float* partial, int k,
                        float* y) const;

  /// The frozen one-multiply graph: task ids [0, num_chunks()) are chunks
  /// ("spmv/tile_chunk"), [num_chunks(), num_chunks() + num_blocks()) are
  /// reductions ("spmv/block_reduce") for block id - num_chunks().
  const par::TaskGraph& multiply_graph() const { return multiply_graph_; }

  // ---- Pipelined power-iteration pair graphs (docs/PARALLELISM.md). ----

  /// Which power loop a pair graph drives. PageRank and RWR share the
  /// axpy-style update shape but carry their own task labels; HITS inserts
  /// the two-half normalization between reduce and update.
  enum class PowerKind { kPageRank, kRwr, kHits };

  struct PowerTask {
    int iter = 0;  ///< 0 or 1 within the unrolled pair.
    enum class Stage { kChunk, kReduce, kHalf, kNorm, kUpdate } stage =
        Stage::kChunk;
    int64_t index = 0;  ///< Chunk or block id (0 for kNorm).
  };

  /// Two power iterations unrolled into one graph so iteration i+1's chunks
  /// start as soon as the vector blocks they read are updated — the
  /// barrier-free pipeline. Requires a square matrix (rows() == cols()).
  /// Built lazily on first use per kind, cached, thread-safe.
  ///
  /// Edges beyond the per-iteration multiply + update chain:
  ///   chunk(1,c)  <- update(0,b)  for blocks b the chunk's columns read
  ///                               (flow: the chunk reads the new iterate),
  ///   update(1,b) <- chunk(0,c)   for chunks c reading block b
  ///                               (anti: update(1) overwrites the buffer
  ///                               iteration 0's chunks gather from),
  ///   update(1,b) <- update(0,b)  (flow: reads the block it rewrites).
  const par::TaskGraph& PowerPairGraph(PowerKind kind) const;
  PowerTask DecodePowerTask(PowerKind kind, int32_t task) const;

 private:
  std::unique_ptr<par::TaskGraph> BuildPowerPairGraph(PowerKind kind) const;

  std::vector<TileRef> tiles_;
  int32_t rows_ = 0;
  int32_t cols_ = 0;
  int64_t num_blocks_ = 0;
  int64_t partial_size_ = 0;
  std::vector<Chunk> chunks_;
  std::vector<std::vector<int32_t>> block_chunks_;
  /// Per-block reduction recipes: entries_[entry_offsets_[b] ..
  /// entry_offsets_[b+1]) sorted by partial index.
  std::vector<int64_t> entry_offsets_;
  std::vector<Entry> entries_;
  par::TaskGraph multiply_graph_;

  mutable std::mutex power_mu_;
  mutable std::unique_ptr<par::TaskGraph> power_graphs_[3];
};

}  // namespace tilespmv

#endif  // TILESPMV_CORE_TILE_DAG_H_
