#include "core/composite.h"

#include <algorithm>

#include "kernels/gpu_common.h"
#include "util/check.h"

namespace tilespmv {
namespace {

int32_t RoundUp(int32_t v, int32_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

}  // namespace

Workload MakeWorkload(int32_t first_pos, int32_t w, int32_t h,
                      const gpusim::DeviceSpec& spec) {
  TILESPMV_CHECK(w >= 1 && h >= 1);
  Workload wl;
  wl.first_pos = first_pos;
  wl.w = w;
  wl.h = h;
  wl.row_major = w >= h;
  const int32_t ws = spec.warp_size;
  wl.padded_w = wl.row_major ? RoundUp(w, ws) : w;
  wl.padded_h = wl.row_major ? h : RoundUp(h, ws);
  return wl;
}

WorkloadCost CostOfWorkload(const Workload& wl,
                            const gpusim::DeviceSpec& spec) {
  WorkloadCost cost;
  uint64_t instrs = gpu::InstrCosts::kWarpSetup;
  if (wl.row_major) {
    // CSR-vector execution: the warp sweeps each padded row in 32-wide
    // strides, then reduces — with no same-row checks, every operand in the
    // rectangle belongs to a known row.
    uint64_t strides = static_cast<uint64_t>(wl.padded_w) / spec.warp_size;
    instrs += static_cast<uint64_t>(wl.h) *
              (strides * gpu::InstrCosts::kSpmvInner +
               5 * gpu::InstrCosts::kReduceStep + gpu::InstrCosts::kRowEpilogue);
  } else {
    // ELL execution: one thread per row, all rows the same padded width, so
    // the warp iterates the columns in hardware lockstep.
    uint64_t row_chunks = static_cast<uint64_t>(wl.padded_h) / spec.warp_size;
    instrs += row_chunks * (static_cast<uint64_t>(wl.w) *
                                gpu::InstrCosts::kSpmvInner +
                            gpu::InstrCosts::kRowEpilogue);
  }
  cost.issue_cycles = instrs * static_cast<uint64_t>(spec.cycles_per_warp_instr);
  // col + val streams over the padded rectangle, fully coalesced.
  cost.matrix_bytes = static_cast<uint64_t>(wl.PaddedFloats()) * 8;
  return cost;
}

std::vector<Workload> PackWorkloads(const std::vector<int64_t>& sorted_lens,
                                    int64_t workload_size,
                                    const gpusim::DeviceSpec& spec,
                                    bool camping_padding) {
  TILESPMV_DCHECK(std::is_sorted(sorted_lens.begin(), sorted_lens.end(),
                                 [](int64_t a, int64_t b) { return a > b; }));
  std::vector<Workload> workloads;
  const int32_t n = static_cast<int32_t>(sorted_lens.size());
  int64_t offset = 0;
  int32_t i = 0;
  while (i < n) {
    TILESPMV_CHECK(sorted_lens[i] >= 1);
    int32_t w = static_cast<int32_t>(sorted_lens[i]);
    int64_t packed = sorted_lens[i];
    int32_t h = 1;
    while (i + h < n && packed + sorted_lens[i + h] <= workload_size) {
      packed += sorted_lens[i + h];
      ++h;
    }
    Workload wl = MakeWorkload(i, w, h, spec);
    wl.storage_offset = offset;
    offset += wl.PaddedFloats();
    // Partition-camping elimination: if this rectangle is a multiple of 512
    // floats (2048 B — exactly the partition interleave period), pad 256 B
    // so the next workload starts in a different partition.
    if (camping_padding && wl.PaddedFloats() % 512 == 0) {
      offset += 64;
    }
    workloads.push_back(wl);
    i += h;
  }
  return workloads;
}

CompositeTile BuildComposite(const CsrMatrix& tile, int64_t workload_size,
                             const gpusim::DeviceSpec& spec,
                             bool camping_padding) {
  TILESPMV_CHECK(workload_size >= 1);
  CompositeTile ct;
  ct.workload_size = workload_size;
  ct.nnz = tile.nnz();

  // Rank rows by length (counting sort; zero rows are dropped — they carry
  // no work and would only dilute the packing).
  Permutation all_rows = SortRowsByLengthDesc(tile);
  for (int32_t pos : all_rows) {
    if (tile.RowLength(pos) > 0) ct.row_order.push_back(pos);
  }
  ct.row_len.reserve(ct.row_order.size());
  ct.row_start.reserve(ct.row_order.size());
  for (int32_t r : ct.row_order) {
    ct.row_start.push_back(static_cast<int64_t>(ct.cols.size()));
    ct.row_len.push_back(tile.RowLength(r));
    for (int64_t k = tile.row_ptr[r]; k < tile.row_ptr[r + 1]; ++k) {
      ct.cols.push_back(tile.col_idx[k]);
      ct.vals.push_back(tile.values[k]);
    }
  }
  ct.workloads =
      PackWorkloads(ct.row_len, workload_size, spec, camping_padding);
  if (!ct.workloads.empty()) {
    const Workload& last = ct.workloads.back();
    ct.total_padded_floats = last.storage_offset + last.PaddedFloats();
  }
  return ct;
}

}  // namespace tilespmv
