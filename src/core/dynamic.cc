#include "core/dynamic.h"

#include "util/check.h"

namespace tilespmv {
namespace {

// Modeled cost of one COO pass over `delta_nnz` scattered entries: stream
// the three arrays, gather x uncached, scatter-accumulate y.
double DeltaPassSeconds(int64_t delta_nnz, const gpusim::DeviceSpec& spec) {
  if (delta_nnz == 0) return 0.0;
  double bytes = static_cast<double>(delta_nnz) *
                 (12.0 + spec.min_transaction_bytes +  // arrays + x miss.
                  2.0 * spec.min_transaction_bytes);   // y read-modify-write.
  return spec.kernel_launch_overhead_us * 1e-6 +
         bytes / spec.BandwidthBytesPerSec();
}

}  // namespace

Status DynamicTileComposite::Init(const CsrMatrix& a) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  base_ = a;
  delta_.clear();
  kernel_ = CreateKernel(options_.base_kernel, spec_);
  if (kernel_ == nullptr) {
    return Status::InvalidArgument("unknown kernel: " + options_.base_kernel);
  }
  return kernel_->Setup(base_);
}

Status DynamicTileComposite::AddEdge(int32_t row, int32_t col, float weight) {
  if (kernel_ == nullptr) return Status::Internal("Init not called");
  if (row < 0 || row >= base_.rows || col < 0 || col >= base_.cols) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(row)) << 32) |
                 static_cast<uint32_t>(col);
  delta_[key] += weight;
  if (NeedsRebuild()) return Rebuild();
  return Status::OK();
}

void DynamicTileComposite::Multiply(const std::vector<float>& x,
                                    std::vector<float>* y) const {
  TILESPMV_CHECK(kernel_ != nullptr);
  MultiplyOriginal(*kernel_, x, y);
  for (const auto& [key, w] : delta_) {
    int32_t row = static_cast<int32_t>(key >> 32);
    int32_t col = static_cast<int32_t>(key & 0xffffffffu);
    (*y)[row] += w * x[col];
  }
}

double DynamicTileComposite::seconds_per_multiply() const {
  TILESPMV_CHECK(kernel_ != nullptr);
  return kernel_->timing().seconds +
         DeltaPassSeconds(delta_nnz(), spec_);
}

Status DynamicTileComposite::Rebuild() {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(base_.nnz()) + delta_.size());
  for (int32_t r = 0; r < base_.rows; ++r) {
    for (int64_t k = base_.row_ptr[r]; k < base_.row_ptr[r + 1]; ++k) {
      triplets.push_back(Triplet{r, base_.col_idx[k], base_.values[k]});
    }
  }
  for (const auto& [key, w] : delta_) {
    triplets.push_back(Triplet{static_cast<int32_t>(key >> 32),
                               static_cast<int32_t>(key & 0xffffffffu), w});
  }
  base_ = CsrMatrix::FromTriplets(base_.rows, base_.cols, std::move(triplets));
  delta_.clear();
  ++rebuilds_;
  return kernel_->Setup(base_);
}

}  // namespace tilespmv
