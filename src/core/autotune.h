#ifndef TILESPMV_CORE_AUTOTUNE_H_
#define TILESPMV_CORE_AUTOTUNE_H_

#include <cstdint>
#include <vector>

#include "core/perf_model.h"
#include "core/tiling.h"
#include "sparse/csr.h"

namespace tilespmv {

/// Result of Algorithm 2 for one tile.
struct TileAutotune {
  int64_t workload_size = 0;
  double predicted_seconds = 0.0;
  int candidates_tried = 0;
};

/// Algorithm 2: searches workload sizes between the tile's longest row
/// (lower bound — the first row cannot be split) and nnz / MAX_ACT_WARP
/// (upper bound — enough warps to fill the device), stepping by the first
/// row's length, and returns the size the performance model predicts
/// fastest. `sorted_lens` are the tile's occupied row lengths,
/// non-increasing.
TileAutotune ChooseWorkloadSize(const std::vector<int64_t>& sorted_lens,
                                bool cached, const PerfModel& model);

/// A full tuning plan for the tile-composite kernel on one matrix.
struct AutotunePlan {
  int num_tiles = 0;
  std::vector<TileAutotune> tiles;  ///< Per dense tile.
  TileAutotune sparse;              ///< The sparse remainder as one tile.
  double predicted_seconds = 0.0;   ///< Model's total per-multiply estimate.
};

/// Algorithms 1 + 2 end to end: pick the tile count by the single-element-
/// column heuristic, then tune each tile's workload size with the
/// performance model. `sorted` must have its columns sorted by decreasing
/// length.
AutotunePlan AutotuneTileComposite(const CsrMatrix& sorted,
                                   const TilingOptions& options,
                                   const PerfModel& model);

/// Non-increasing lengths of the occupied rows of `tile` (helper shared by
/// the tuner and the kernel).
std::vector<int64_t> SortedOccupiedRowLengths(const CsrMatrix& tile);

}  // namespace tilespmv

#endif  // TILESPMV_CORE_AUTOTUNE_H_
