#ifndef TILESPMV_CORE_TILING_H_
#define TILESPMV_CORE_TILING_H_

#include <cstdint>
#include <vector>

#include "gpusim/device_spec.h"
#include "sparse/csr.h"
#include "sparse/permute.h"

namespace tilespmv {

/// Tiling configuration (Solutions 1 + 2).
struct TilingOptions {
  /// Columns per tile. 64K columns x 4 B = 256 KB = the texture cache, the
  /// width the paper's probe benchmark located (Section 3.1).
  int32_t tile_width = 64 * 1024;
  /// Number of dense tiles; -1 applies Algorithm 1's heuristic (stop when a
  /// tile's first column has <= 1 non-zero).
  int num_tiles = -1;
};

/// One fixed-width column tile of the reordered matrix, stored as CSR with
/// tile-local column indices (0 .. width).
struct TileSlice {
  int32_t col_begin = 0;  ///< First column (reordered space), inclusive.
  int32_t col_end = 0;    ///< Last column, exclusive.
  CsrMatrix local;        ///< cols == col_end - col_begin.
};

/// The reordered-and-partitioned matrix: columns sorted by decreasing
/// length, a dense prefix cut into fixed-width tiles, and the sparse
/// remainder kept whole (its column indices stay in reordered-global space).
struct TiledMatrix {
  int32_t rows = 0;
  int32_t cols = 0;
  std::vector<TileSlice> dense_tiles;
  CsrMatrix sparse_part;  ///< cols == cols; only columns >= boundary occupied.
  int32_t dense_col_end = 0;  ///< Boundary column between dense and sparse.

  int64_t dense_nnz() const;
  int64_t nnz() const { return dense_nnz() + sparse_part.nnz(); }
};

/// Tiling options adapted to a device: the tile width is exactly the number
/// of x floats the device's texture cache holds (64K on the C1060 — the
/// probe result of Section 3.1; 192K on a Fermi C2050). This is what the
/// spec-only kernel constructors use, keeping the approach self-tuning
/// across architectures.
TilingOptions TilingOptionsForDevice(const gpusim::DeviceSpec& spec);

/// Algorithm 1's tile-count heuristic: with columns sorted by decreasing
/// length, count tiles while the tile's first column still has more than one
/// non-zero (a single-element first column means no x reuse anywhere in the
/// tile).
int HeuristicNumTiles(const std::vector<int64_t>& sorted_col_lengths,
                      int32_t tile_width);

/// Splits `a` (whose columns MUST already be sorted by decreasing length —
/// see SortColumnsByLengthDesc) into dense tiles plus the sparse remainder.
TiledMatrix BuildTiling(const CsrMatrix& a, const TilingOptions& options);

/// Extracts columns [c0, c1) of `a` as CSR; when `localize` is true the
/// result's column indices are shifted by -c0 and cols = c1 - c0.
CsrMatrix SliceColumns(const CsrMatrix& a, int32_t c0, int32_t c1,
                       bool localize);

}  // namespace tilespmv

#endif  // TILESPMV_CORE_TILING_H_
