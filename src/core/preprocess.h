#ifndef TILESPMV_CORE_PREPROCESS_H_
#define TILESPMV_CORE_PREPROCESS_H_

#include <string>

#include "gpusim/device_spec.h"
#include "sparse/csr.h"
#include "util/status.h"

namespace tilespmv {

/// Cost accounting for the one-time preprocessing of Section 3.1's
/// "Sorting Cost" paragraph: "we only need to perform the sorting once as a
/// data preprocessing step. In applications such as the power method where
/// the SpMV kernel is called iteratively until the result converges, the
/// cost of sorting can be amortized."
///
/// Host-side stage times are real wall-clock measurements on this machine;
/// the per-iteration gain compares the modeled tile-composite kernel
/// against a baseline kernel, yielding the break-even iteration count.
struct PreprocessReport {
  double sort_columns_seconds = 0.0;  ///< Counting sort of column lengths.
  double relabel_seconds = 0.0;       ///< Symmetric permutation of A.
  double tiling_seconds = 0.0;        ///< Column slicing into tiles.
  double composite_seconds = 0.0;     ///< Row ranking + workload packing
                                      ///< (auto-tuned) for every tile.
  double total_seconds = 0.0;

  double baseline_iteration_seconds = 0.0;  ///< Modeled, e.g. HYB.
  double tile_iteration_seconds = 0.0;      ///< Modeled tile-composite.
  /// Iterations after which preprocessing has paid for itself in modeled
  /// device time; infinity if the tile kernel is not faster.
  double breakeven_iterations = 0.0;
};

/// Measures the preprocessing pipeline on `a` and the per-iteration gain
/// over `baseline_kernel`.
Result<PreprocessReport> MeasurePreprocessing(
    const CsrMatrix& a, const gpusim::DeviceSpec& spec,
    const std::string& baseline_kernel = "hyb");

}  // namespace tilespmv

#endif  // TILESPMV_CORE_PREPROCESS_H_
