#ifndef TILESPMV_CORE_TILE_COO_H_
#define TILESPMV_CORE_TILE_COO_H_

#include "core/tiling.h"
#include "kernels/spmv.h"
#include "sparse/hyb.h"

namespace tilespmv {

/// TILE-COO (the paper's first optimized kernel): columns reordered by
/// decreasing length, the dense prefix cut into texture-cache-sized tiles
/// computed with the COO kernel (one launch per tile, partial y results
/// accumulated), and the sparse remainder computed with HYB. Isolates the
/// benefit of tiling alone — the tile-coo vs COO gap in Figure 2 is pure
/// Solution 1+2.
class TileCooKernel : public SpMVKernel {
 public:
  TileCooKernel(const gpusim::DeviceSpec& spec, const TilingOptions& options)
      : SpMVKernel(spec), options_(options) {}
  /// Spec-only construction adapts the tile width to the device's cache.
  explicit TileCooKernel(const gpusim::DeviceSpec& spec)
      : TileCooKernel(spec, TilingOptionsForDevice(spec)) {}

  std::string_view name() const override { return "tile-coo"; }
  Status Setup(const CsrMatrix& a) override;
  void Multiply(const std::vector<float>& x,
                std::vector<float>* y) const override;

  const Permutation& row_permutation() const override { return row_perm_; }
  const Permutation& col_permutation() const override { return col_perm_; }
  int num_tiles() const {
    return static_cast<int>(tiled_.dense_tiles.size());
  }

 private:
  TilingOptions options_;
  Permutation row_perm_;
  Permutation col_perm_;
  TiledMatrix tiled_;
};

}  // namespace tilespmv

#endif  // TILESPMV_CORE_TILE_COO_H_
