#include "core/kernel_select.h"

#include <algorithm>
#include <memory>

#include "core/autotune.h"
#include "kernels/spmv.h"
#include "simd/caps.h"
#include "sparse/permute.h"

namespace tilespmv {

std::vector<KernelPrediction> PredictKernelChoices(const CsrMatrix& a,
                                                   const PerfModel& model) {
  const gpusim::DeviceSpec& spec = model.spec();
  std::vector<KernelPrediction> out;

  // Whether a single binding of the whole x vector enjoys the texture cache.
  bool whole_x_cached =
      static_cast<int64_t>(a.cols) * 4 <= spec.texture_cache_bytes;

  std::vector<int64_t> lens = SortedOccupiedRowLengths(a);
  if (lens.empty()) {
    out.push_back({"tile-composite", 0.0});
    return out;
  }

  // CSR-vector == tile-composite with one un-tiled tile where every
  // workload is a single row-major row (workload size 1 forces h = 1).
  out.push_back({"csr-vector",
                 model.PredictTileSeconds(lens, 1, whole_x_cached)});

  // ELL == one column-major rectangle per 32 rows, every row padded to the
  // longest row. Skip when the padding cannot fit device memory.
  int64_t max_len = lens.front();
  int64_t padded_bytes = static_cast<int64_t>(a.rows) * max_len * 8;
  if (padded_bytes <= spec.global_mem_bytes) {
    std::vector<int64_t> uniform(lens.size(), max_len);
    out.push_back(
        {"ell", model.PredictTileSeconds(uniform, 32 * max_len,
                                         whole_x_cached)});
  }

  // The tuned tile-composite plan itself.
  Permutation perm = SortColumnsByLengthDesc(a);
  CsrMatrix sorted = ApplyColumnPermutation(a, perm);
  AutotunePlan plan = AutotuneTileComposite(sorted, TilingOptions{}, model);
  out.push_back({"tile-composite", plan.predicted_seconds});

  std::sort(out.begin(), out.end(),
            [](const KernelPrediction& x, const KernelPrediction& y) {
              return x.predicted_seconds < y.predicted_seconds;
            });
  return out;
}

std::string SelectKernel(const CsrMatrix& a, const PerfModel& model) {
  return PredictKernelChoices(a, model).front().kernel;
}

std::vector<KernelPrediction> PredictHostKernelChoices(const CsrMatrix& a) {
  struct Candidate {
    KernelPrediction pred;
    int lanes;
  };
  std::vector<Candidate> ranked;
  const gpusim::DeviceSpec spec{};  // Host kernels model on CpuSpec only.
  for (const std::string& name : HostKernelNames()) {
    std::unique_ptr<SpMVKernel> kernel = CreateKernel(name, spec);
    if (kernel == nullptr || !kernel->Setup(a).ok()) continue;
    int lanes = 1;
    Result<simd::Tier> tier = simd::ParseTier(std::string(kernel->simd_tier()));
    if (tier.ok()) lanes = simd::LaneWidth(tier.value());
    ranked.push_back({{name, kernel->timing().seconds}, lanes});
  }
  // The CpuSpec model often lands on the memory bound, where scalar and
  // vector variants tie; break ties toward the wider vector tier — on real
  // hosts the matrix stream is usually cache-resident at serving sizes and
  // the measured win is real (bench_serve host_spmv section).
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Candidate& x, const Candidate& y) {
                     if (x.pred.predicted_seconds != y.pred.predicted_seconds)
                       return x.pred.predicted_seconds <
                              y.pred.predicted_seconds;
                     return x.lanes > y.lanes;
                   });
  std::vector<KernelPrediction> out;
  out.reserve(ranked.size());
  for (Candidate& c : ranked) out.push_back(std::move(c.pred));
  return out;
}

std::string SelectHostKernel(const CsrMatrix& a) {
  std::vector<KernelPrediction> choices = PredictHostKernelChoices(a);
  return choices.empty() ? "cpu-csr" : choices.front().kernel;
}

}  // namespace tilespmv
