#ifndef TILESPMV_CORE_KERNEL_SELECT_H_
#define TILESPMV_CORE_KERNEL_SELECT_H_

#include <string>
#include <vector>

#include "core/perf_model.h"
#include "sparse/csr.h"

namespace tilespmv {

/// Prediction for one candidate kernel.
struct KernelPrediction {
  std::string kernel;
  double predicted_seconds = 0.0;
};

/// Section 5's generalization of the performance model: "the CSR,
/// CSR-vector and ELL kernels from NVIDIA can be modeled as special cases of
/// our tile-composite kernel ... The best predicted kernel can be chosen to
/// perform real computation of the data."
///
/// - csr-vector ~ a single un-tiled tile whose every workload is one
///   row-major row rectangle (warp per row);
/// - ell        ~ a single un-tiled tile with one column-major rectangle of
///   width max-row-length (thread per row, full padding);
/// - tile-composite ~ the tuned plan (Algorithms 1 + 2).
///
/// Returns predictions sorted fastest-first. The ELL candidate is skipped
/// when its padding would not fit device memory (it could never run).
std::vector<KernelPrediction> PredictKernelChoices(const CsrMatrix& a,
                                                   const PerfModel& model);

/// The fastest-predicted kernel name for `a` ("tile-composite",
/// "csr-vector" or "ell"). Use with CreateKernel to run it.
std::string SelectKernel(const CsrMatrix& a, const PerfModel& model);

/// Host-backend analogue of PredictKernelChoices: ranks the host kernels
/// (HostKernelNames(): cpu-csr and the SIMD variants) by their modeled
/// host-execution timing at the currently resolved SIMD tier
/// (simd::ResolvedTier). Returns predictions sorted fastest-first;
/// kernels whose Setup fails are skipped.
std::vector<KernelPrediction> PredictHostKernelChoices(const CsrMatrix& a);

/// The fastest-predicted host kernel for `a`. Ties keep HostKernelNames()
/// order, so at the scalar tier the plain "cpu-csr" reference wins.
std::string SelectHostKernel(const CsrMatrix& a);

}  // namespace tilespmv

#endif  // TILESPMV_CORE_KERNEL_SELECT_H_
