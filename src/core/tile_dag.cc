#include "core/tile_dag.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "robust/fault_injection.h"

namespace tilespmv {
namespace {

/// Chunk sizing caps. Chunk boundaries cannot change any result (partials
/// are per-position), so these are pure scheduling knobs: small enough that
/// chunks of different tiles interleave and reduction tasks fire early, big
/// enough that task overhead stays negligible.
constexpr int64_t kChunkNnz = 8192;
constexpr int64_t kChunkPositions = 4096;

/// Matches spmm::kMaxBlockCols (core cannot include the spmm layer).
constexpr int kMaxPanelCols = 16;

}  // namespace

void TileDag::Build(std::vector<TileRef> tiles, int32_t rows, int32_t cols) {
  tiles_ = std::move(tiles);
  rows_ = rows;
  cols_ = cols;
  num_blocks_ = rows_ > 0 ? (rows_ + par::kReduceBlock - 1) / par::kReduceBlock
                          : 0;
  partial_size_ = 0;
  chunks_.clear();

  for (size_t t = 0; t < tiles_.size(); ++t) {
    const TileRef& tr = tiles_[t];
    const CompositeTile& ct = *tr.ct;
    const int64_t positions = static_cast<int64_t>(ct.row_order.size());
    int64_t p = 0;
    while (p < positions) {
      Chunk ch;
      ch.tile = static_cast<int32_t>(t);
      ch.p0 = p;
      ch.partial_base = partial_size_ + p;
      int64_t nnz = 0;
      int64_t col_lo = cols_;
      int64_t col_hi = 0;
      while (p < positions && nnz < kChunkNnz && p - ch.p0 < kChunkPositions) {
        const int64_t start = ct.row_start[p];
        const int64_t len = ct.row_len[p];
        for (int64_t k = 0; k < len; ++k) {
          const int64_t col = tr.col_begin + ct.cols[start + k];
          col_lo = std::min(col_lo, col);
          col_hi = std::max(col_hi, col + 1);
        }
        nnz += len;
        ++p;
      }
      ch.p1 = p;
      ch.col_lo = std::min(col_lo, col_hi);
      ch.col_hi = col_hi;
      chunks_.push_back(ch);
    }
    partial_size_ += positions;
  }

  // Per-block reduction recipes: every (slot, row) pair bucketed by row
  // block with a stable counting sort, so entries within a block stay in
  // ascending slot — i.e. (tile, position) — order, the accumulation order
  // of the sequential tile loop.
  block_chunks_.assign(static_cast<size_t>(num_blocks_), {});
  entry_offsets_.assign(static_cast<size_t>(num_blocks_) + 1, 0);
  entries_.resize(static_cast<size_t>(partial_size_));
  {
    for (const TileRef& tr : tiles_) {
      for (int32_t row : tr.ct->row_order) {
        ++entry_offsets_[static_cast<size_t>(row / par::kReduceBlock) + 1];
      }
    }
    for (int64_t b = 0; b < num_blocks_; ++b) {
      entry_offsets_[static_cast<size_t>(b) + 1] +=
          entry_offsets_[static_cast<size_t>(b)];
    }
    std::vector<int64_t> cursor(entry_offsets_.begin(),
                                entry_offsets_.end() - 1);
    int64_t slot = 0;
    for (const TileRef& tr : tiles_) {
      for (int32_t row : tr.ct->row_order) {
        const int64_t b = row / par::kReduceBlock;
        entries_[static_cast<size_t>(cursor[static_cast<size_t>(b)]++)] =
            Entry{slot, row};
        ++slot;
      }
    }
  }

  // Chunk -> row-block incidence (which reductions each chunk feeds).
  std::vector<int64_t> touched;
  for (size_t c = 0; c < chunks_.size(); ++c) {
    const Chunk& ch = chunks_[c];
    const CompositeTile& ct = *tiles_[static_cast<size_t>(ch.tile)].ct;
    touched.clear();
    for (int64_t p = ch.p0; p < ch.p1; ++p) {
      touched.push_back(ct.row_order[p] / par::kReduceBlock);
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    for (int64_t b : touched) {
      block_chunks_[static_cast<size_t>(b)].push_back(
          static_cast<int32_t>(c));
    }
  }

  // The one-multiply graph: chunks [0, C), reductions [C, C + B).
  const int64_t C = num_chunks();
  for (int64_t c = 0; c < C; ++c) {
    multiply_graph_.AddTask("spmv/tile_chunk");
  }
  for (int64_t b = 0; b < num_blocks_; ++b) {
    const int32_t reduce = multiply_graph_.AddTask("spmv/block_reduce");
    for (int32_t c : block_chunks_[static_cast<size_t>(b)]) {
      multiply_graph_.AddDep(reduce, c);
    }
  }
  multiply_graph_.Freeze();
}

void TileDag::RunChunk(int64_t c, const float* x, float* partial) const {
  TILESPMV_FAULT_STALL("kernel/tile_slow");
  const Chunk& ch = chunks_[static_cast<size_t>(c)];
  const TileRef& tr = tiles_[static_cast<size_t>(ch.tile)];
  const CompositeTile& ct = *tr.ct;
  for (int64_t p = ch.p0; p < ch.p1; ++p) {
    float sum = 0.0f;
    const int64_t start = ct.row_start[p];
    for (int64_t k = 0; k < ct.row_len[p]; ++k) {
      sum += ct.vals[start + k] * x[tr.col_begin + ct.cols[start + k]];
    }
    partial[ch.partial_base + (p - ch.p0)] = sum;
  }
}

void TileDag::ReduceBlock(int64_t b, const float* partial, float* y) const {
  const int64_t r0 = block_row_begin(b);
  const int64_t r1 = block_row_end(b);
  for (int64_t r = r0; r < r1; ++r) y[r] = 0.0f;
  for (int64_t e = entry_offsets_[static_cast<size_t>(b)];
       e < entry_offsets_[static_cast<size_t>(b) + 1]; ++e) {
    const Entry& entry = entries_[static_cast<size_t>(e)];
    y[entry.row] += partial[entry.partial];
  }
}

void TileDag::RunChunkPanel(int64_t c, const float* x, int k,
                            float* partial) const {
  TILESPMV_FAULT_STALL("kernel/tile_slow");
  const Chunk& ch = chunks_[static_cast<size_t>(c)];
  const TileRef& tr = tiles_[static_cast<size_t>(ch.tile)];
  const CompositeTile& ct = *tr.ct;
  float acc[kMaxPanelCols];
  for (int64_t p = ch.p0; p < ch.p1; ++p) {
    for (int j = 0; j < k; ++j) acc[j] = 0.0f;
    const int64_t start = ct.row_start[p];
    for (int64_t e = 0; e < ct.row_len[p]; ++e) {
      const float v = ct.vals[start + e];
      const float* xs =
          &x[static_cast<size_t>(tr.col_begin + ct.cols[start + e]) *
             static_cast<size_t>(k)];
      for (int j = 0; j < k; ++j) acc[j] += v * xs[j];
    }
    float* ps = &partial[static_cast<size_t>(ch.partial_base + (p - ch.p0)) *
                         static_cast<size_t>(k)];
    for (int j = 0; j < k; ++j) ps[j] = acc[j];
  }
}

void TileDag::ReduceBlockPanel(int64_t b, const float* partial, int k,
                               float* y) const {
  const int64_t r0 = block_row_begin(b);
  const int64_t r1 = block_row_end(b);
  std::fill(y + r0 * k, y + r1 * k, 0.0f);
  for (int64_t e = entry_offsets_[static_cast<size_t>(b)];
       e < entry_offsets_[static_cast<size_t>(b) + 1]; ++e) {
    const Entry& entry = entries_[static_cast<size_t>(e)];
    float* ys = &y[static_cast<size_t>(entry.row) * static_cast<size_t>(k)];
    const float* ps =
        &partial[static_cast<size_t>(entry.partial) * static_cast<size_t>(k)];
    for (int j = 0; j < k; ++j) ys[j] += ps[j];
  }
}

const par::TaskGraph& TileDag::PowerPairGraph(PowerKind kind) const {
  const size_t slot = static_cast<size_t>(kind);
  std::lock_guard<std::mutex> lock(power_mu_);
  if (power_graphs_[slot] == nullptr) {
    power_graphs_[slot] = BuildPowerPairGraph(kind);
  }
  return *power_graphs_[slot];
}

std::unique_ptr<par::TaskGraph> TileDag::BuildPowerPairGraph(
    PowerKind kind) const {
  if (rows_ != cols_) {
    std::fprintf(stderr,
                 "TileDag::PowerPairGraph needs a square matrix (%d x %d)\n",
                 rows_, cols_);
    std::abort();
  }
  auto graph = std::make_unique<par::TaskGraph>();
  const int64_t C = num_chunks();
  const int64_t B = num_blocks_;
  const bool hits = kind == PowerKind::kHits;
  const char* update_label = kind == PowerKind::kPageRank
                                 ? "reduction/pagerank_update"
                                 : kind == PowerKind::kRwr
                                       ? "reduction/rwr_update"
                                       : "reduction/hits_update";

  // Task-id layout per iteration (stride = C + 2B, or C + 3B + 1 for HITS):
  // chunks, reduces, [halves, norm,] updates. DecodePowerTask mirrors it.
  int32_t chunk0[2] = {0, 0}, reduce0[2] = {0, 0}, half0[2] = {0, 0};
  int32_t norm[2] = {0, 0}, update0[2] = {0, 0};
  for (int iter = 0; iter < 2; ++iter) {
    chunk0[iter] = graph->num_tasks();
    for (int64_t c = 0; c < C; ++c) graph->AddTask("spmv/tile_chunk");
    reduce0[iter] = graph->num_tasks();
    for (int64_t b = 0; b < B; ++b) graph->AddTask("spmv/block_reduce");
    if (hits) {
      half0[iter] = graph->num_tasks();
      for (int64_t b = 0; b < B; ++b) graph->AddTask("reduction/hits_half");
      norm[iter] = graph->AddTask("reduction/hits_normalize");
    }
    update0[iter] = graph->num_tasks();
    for (int64_t b = 0; b < B; ++b) graph->AddTask(update_label);

    for (int64_t b = 0; b < B; ++b) {
      for (int32_t c : block_chunks_[static_cast<size_t>(b)]) {
        graph->AddDep(reduce0[iter] + static_cast<int32_t>(b),
                      chunk0[iter] + c);
      }
      if (hits) {
        graph->AddDep(half0[iter] + static_cast<int32_t>(b),
                      reduce0[iter] + static_cast<int32_t>(b));
        graph->AddDep(norm[iter], half0[iter] + static_cast<int32_t>(b));
        graph->AddDep(update0[iter] + static_cast<int32_t>(b), norm[iter]);
      } else {
        graph->AddDep(update0[iter] + static_cast<int32_t>(b),
                      reduce0[iter] + static_cast<int32_t>(b));
      }
    }
  }

  // Cross-iteration pipelining edges (see the header comment).
  for (int64_t c = 0; c < C; ++c) {
    const Chunk& ch = chunks_[static_cast<size_t>(c)];
    if (ch.col_hi <= ch.col_lo) continue;
    const int64_t cb0 = ch.col_lo / par::kReduceBlock;
    const int64_t cb1 = (ch.col_hi - 1) / par::kReduceBlock;
    for (int64_t b = cb0; b <= cb1; ++b) {
      graph->AddDep(chunk0[1] + static_cast<int32_t>(c),
                    update0[0] + static_cast<int32_t>(b));
      graph->AddDep(update0[1] + static_cast<int32_t>(b),
                    chunk0[0] + static_cast<int32_t>(c));
    }
  }
  for (int64_t b = 0; b < B; ++b) {
    graph->AddDep(update0[1] + static_cast<int32_t>(b),
                  update0[0] + static_cast<int32_t>(b));
  }
  graph->Freeze();
  return graph;
}

TileDag::PowerTask TileDag::DecodePowerTask(PowerKind kind,
                                            int32_t task) const {
  const int64_t C = num_chunks();
  const int64_t B = num_blocks_;
  const bool hits = kind == PowerKind::kHits;
  const int64_t stride = hits ? C + 3 * B + 1 : C + 2 * B;
  PowerTask out;
  int64_t local = task;
  if (local >= stride) {
    out.iter = 1;
    local -= stride;
  }
  if (local < C) {
    out.stage = PowerTask::Stage::kChunk;
    out.index = local;
  } else if (local < C + B) {
    out.stage = PowerTask::Stage::kReduce;
    out.index = local - C;
  } else if (!hits) {
    out.stage = PowerTask::Stage::kUpdate;
    out.index = local - C - B;
  } else if (local < C + 2 * B) {
    out.stage = PowerTask::Stage::kHalf;
    out.index = local - C - B;
  } else if (local == C + 2 * B) {
    out.stage = PowerTask::Stage::kNorm;
    out.index = 0;
  } else {
    out.stage = PowerTask::Stage::kUpdate;
    out.index = local - C - 2 * B - 1;
  }
  return out;
}

}  // namespace tilespmv
