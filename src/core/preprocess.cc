#include "core/preprocess.h"

#include <limits>
#include <memory>

#include "core/autotune.h"
#include "core/composite.h"
#include "core/tiling.h"
#include "kernels/spmv.h"
#include "obs/trace.h"
#include "sparse/permute.h"
#include "util/timer.h"

namespace tilespmv {

Result<PreprocessReport> MeasurePreprocessing(
    const CsrMatrix& a, const gpusim::DeviceSpec& spec,
    const std::string& baseline_kernel) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  PreprocessReport report;

  WallTimer timer;
  Permutation perm;
  {
    obs::TraceSpan span("preprocess", "preprocess/sort_columns");
    perm = SortColumnsByLengthDesc(a);
  }
  report.sort_columns_seconds = timer.Seconds();

  timer.Reset();
  CsrMatrix sorted;
  {
    obs::TraceSpan span("preprocess", "preprocess/relabel");
    sorted = a.rows == a.cols ? ApplySymmetricPermutation(a, perm)
                              : ApplyColumnPermutation(a, perm);
  }
  report.relabel_seconds = timer.Seconds();

  timer.Reset();
  TiledMatrix tiled;
  {
    obs::TraceSpan span("preprocess", "preprocess/tiling");
    tiled = BuildTiling(sorted, TilingOptionsForDevice(spec));
  }
  report.tiling_seconds = timer.Seconds();

  timer.Reset();
  {
    obs::TraceSpan span("preprocess", "preprocess/composite");
    PerfModel model(spec);
    for (const TileSlice& slice : tiled.dense_tiles) {
      std::vector<int64_t> lens = SortedOccupiedRowLengths(slice.local);
      if (lens.empty()) continue;
      TileAutotune tuned = ChooseWorkloadSize(lens, /*cached=*/true, model);
      BuildComposite(slice.local, tuned.workload_size, spec, true);
    }
    std::vector<int64_t> sparse_lens =
        SortedOccupiedRowLengths(tiled.sparse_part);
    if (!sparse_lens.empty()) {
      TileAutotune tuned = ChooseWorkloadSize(sparse_lens, /*cached=*/false,
                                              model);
      BuildComposite(tiled.sparse_part, tuned.workload_size, spec, true);
    }
  }
  report.composite_seconds = timer.Seconds();
  report.total_seconds = report.sort_columns_seconds +
                         report.relabel_seconds + report.tiling_seconds +
                         report.composite_seconds;

  // Per-iteration gain on the modeled device.
  std::unique_ptr<SpMVKernel> baseline = CreateKernel(baseline_kernel, spec);
  if (baseline == nullptr) {
    return Status::InvalidArgument("unknown kernel: " + baseline_kernel);
  }
  TILESPMV_RETURN_IF_ERROR(baseline->Setup(a));
  std::unique_ptr<SpMVKernel> tile = CreateKernel("tile-composite", spec);
  TILESPMV_RETURN_IF_ERROR(tile->Setup(a));
  report.baseline_iteration_seconds = baseline->timing().seconds;
  report.tile_iteration_seconds = tile->timing().seconds;
  double gain =
      report.baseline_iteration_seconds - report.tile_iteration_seconds;
  report.breakeven_iterations =
      gain > 0 ? report.total_seconds / gain
               : std::numeric_limits<double>::infinity();
  return report;
}

}  // namespace tilespmv
