#include "core/preprocess.h"

#include <limits>
#include <memory>

#include "core/autotune.h"
#include "core/composite.h"
#include "core/tiling.h"
#include "kernels/spmv.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "sparse/permute.h"
#include "util/timer.h"

namespace tilespmv {

Result<PreprocessReport> MeasurePreprocessing(
    const CsrMatrix& a, const gpusim::DeviceSpec& spec,
    const std::string& baseline_kernel) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  PreprocessReport report;

  WallTimer timer;
  Permutation perm;
  {
    obs::TraceSpan span("preprocess", "preprocess/sort_columns");
    perm = SortColumnsByLengthDesc(a);
  }
  report.sort_columns_seconds = timer.Seconds();

  timer.Reset();
  CsrMatrix sorted;
  {
    obs::TraceSpan span("preprocess", "preprocess/relabel");
    sorted = a.rows == a.cols ? ApplySymmetricPermutation(a, perm)
                              : ApplyColumnPermutation(a, perm);
  }
  report.relabel_seconds = timer.Seconds();

  timer.Reset();
  TiledMatrix tiled;
  {
    obs::TraceSpan span("preprocess", "preprocess/tiling");
    tiled = BuildTiling(sorted, TilingOptionsForDevice(spec));
  }
  report.tiling_seconds = timer.Seconds();

  timer.Reset();
  {
    obs::TraceSpan span("preprocess", "preprocess/composite");
    PerfModel model(spec);
    // One pool chunk per tile; the sparse remainder rides along as the
    // final entry. Mirrors TileCompositeKernel::Setup's concurrent build.
    const int64_t num_tiles = static_cast<int64_t>(tiled.dense_tiles.size());
    par::LoopOptions tile_opts;
    tile_opts.grain = 1;
    tile_opts.chunking = par::Chunking::kGuided;
    tile_opts.label = "par/measure_composite";
    par::ParallelFor(0, num_tiles + 1, tile_opts, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const bool cached = i < num_tiles;
        const CsrMatrix& tile_csr =
            cached ? tiled.dense_tiles[i].local : tiled.sparse_part;
        std::vector<int64_t> lens = SortedOccupiedRowLengths(tile_csr);
        if (lens.empty()) continue;
        TileAutotune tuned = ChooseWorkloadSize(lens, cached, model);
        BuildComposite(tile_csr, tuned.workload_size, spec, true);
      }
    });
  }
  report.composite_seconds = timer.Seconds();
  report.total_seconds = report.sort_columns_seconds +
                         report.relabel_seconds + report.tiling_seconds +
                         report.composite_seconds;

  // Per-iteration gain on the modeled device.
  std::unique_ptr<SpMVKernel> baseline = CreateKernel(baseline_kernel, spec);
  if (baseline == nullptr) {
    return Status::InvalidArgument("unknown kernel: " + baseline_kernel);
  }
  TILESPMV_RETURN_IF_ERROR(baseline->Setup(a));
  std::unique_ptr<SpMVKernel> tile = CreateKernel("tile-composite", spec);
  TILESPMV_RETURN_IF_ERROR(tile->Setup(a));
  report.baseline_iteration_seconds = baseline->timing().seconds;
  report.tile_iteration_seconds = tile->timing().seconds;
  double gain =
      report.baseline_iteration_seconds - report.tile_iteration_seconds;
  report.breakeven_iterations =
      gain > 0 ? report.total_seconds / gain
               : std::numeric_limits<double>::infinity();
  return report;
}

}  // namespace tilespmv
