#include "sparse/pkt.h"

#include <algorithm>
#include <unordered_map>

namespace tilespmv {

int64_t PktMatrix::nnz() const {
  int64_t n = 0;
  for (const Packet& p : packets) n += p.nnz();
  return n;
}

Result<PktMatrix> PktFromCsr(const CsrMatrix& a, int32_t shared_floats,
                             double imbalance_limit) {
  PktMatrix m;
  m.rows = a.rows;
  m.cols = a.cols;

  std::unordered_map<int32_t, int32_t> col_to_local;
  Packet current;
  auto flush = [&]() {
    if (!current.rows.empty()) {
      m.packets.push_back(std::move(current));
      current = Packet{};
      col_to_local.clear();
    }
  };

  for (int32_t r = 0; r < a.rows; ++r) {
    // Distinct new columns this row would add to the packet footprint.
    int64_t row_len = a.RowLength(r);
    if (row_len > shared_floats) {
      return Status::UnsupportedFormat(
          "row " + std::to_string(r) + " touches " + std::to_string(row_len) +
          " columns, exceeding the shared-memory packet budget of " +
          std::to_string(shared_floats));
    }
    int64_t new_cols = 0;
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      if (!col_to_local.count(a.col_idx[k])) ++new_cols;
    }
    if (static_cast<int64_t>(current.x_columns.size()) + new_cols >
        shared_floats) {
      flush();
    }
    if (current.rows.empty()) current.row_ptr.push_back(0);
    current.rows.push_back(r);
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      int32_t c = a.col_idx[k];
      auto [it, inserted] = col_to_local.emplace(
          c, static_cast<int32_t>(current.x_columns.size()));
      if (inserted) current.x_columns.push_back(c);
      current.local_col.push_back(it->second);
      current.values.push_back(a.values[k]);
    }
    current.row_ptr.push_back(static_cast<int64_t>(current.values.size()));
  }
  flush();

  if (m.packets.size() > 1) {
    int64_t max_nnz = 0;
    for (const Packet& p : m.packets) max_nnz = std::max(max_nnz, p.nnz());
    double mean = static_cast<double>(m.nnz()) /
                  static_cast<double>(m.packets.size());
    if (mean > 0 && static_cast<double>(max_nnz) > imbalance_limit * mean) {
      return Status::UnsupportedFormat(
          "packet partitioning too imbalanced (max " +
          std::to_string(max_nnz) + " nnz vs mean " +
          std::to_string(static_cast<int64_t>(mean)) +
          "); PKT kernel cannot balance this matrix");
    }
  }
  return m;
}

}  // namespace tilespmv
