#include "sparse/dia.h"

#include <algorithm>
#include <map>

namespace tilespmv {

Status DiaMatrix::Validate() const {
  if (values.size() != static_cast<size_t>(PaddedEntries()))
    return Status::InvalidArgument("DIA values size != diagonals * rows");
  if (!std::is_sorted(offsets.begin(), offsets.end()))
    return Status::InvalidArgument("DIA offsets not ascending");
  return Status::OK();
}

Result<DiaMatrix> DiaFromCsr(const CsrMatrix& a, int32_t max_diagonals,
                             int64_t max_bytes) {
  std::map<int32_t, int32_t> offset_to_slot;
  for (int32_t r = 0; r < a.rows; ++r) {
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      offset_to_slot.emplace(a.col_idx[k] - r, 0);
      if (static_cast<int32_t>(offset_to_slot.size()) > max_diagonals) {
        return Status::UnsupportedFormat(
            "matrix has more than " + std::to_string(max_diagonals) +
            " occupied diagonals; DIA is only applicable to banded matrices");
      }
    }
  }
  DiaMatrix m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.offsets.reserve(offset_to_slot.size());
  int32_t slot = 0;
  for (auto& [offset, s] : offset_to_slot) {
    s = slot++;
    m.offsets.push_back(offset);
  }
  int64_t padded = m.PaddedEntries();
  if (padded * 4 > max_bytes) {
    return Status::ResourceExhausted(
        "DIA padded storage of " + std::to_string(padded * 4) +
        " bytes exceeds limit");
  }
  m.values.assign(static_cast<size_t>(padded), 0.0f);
  for (int32_t r = 0; r < a.rows; ++r) {
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      int32_t d = offset_to_slot[a.col_idx[k] - r];
      m.values[static_cast<size_t>(d) * a.rows + r] = a.values[k];
    }
  }
  return m;
}

}  // namespace tilespmv
