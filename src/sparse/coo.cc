#include "sparse/coo.h"

namespace tilespmv {

Status CooMatrix::Validate() const {
  if (row_idx.size() != values.size() || col_idx.size() != values.size())
    return Status::InvalidArgument("COO array size mismatch");
  int32_t prev_row = -1;
  int32_t prev_col = -1;
  for (size_t i = 0; i < values.size(); ++i) {
    int32_t r = row_idx[i];
    int32_t c = col_idx[i];
    if (r < 0 || r >= rows || c < 0 || c >= cols)
      return Status::InvalidArgument("COO index out of range");
    if (r < prev_row || (r == prev_row && c <= prev_col))
      return Status::InvalidArgument("COO entries not sorted by (row, col)");
    prev_row = r;
    prev_col = c;
  }
  return Status::OK();
}

CooMatrix CooFromCsr(const CsrMatrix& a) {
  CooMatrix m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.row_idx.reserve(a.nnz());
  m.col_idx = a.col_idx;
  m.values = a.values;
  for (int32_t r = 0; r < a.rows; ++r) {
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      m.row_idx.push_back(r);
    }
  }
  return m;
}

CsrMatrix CsrFromCoo(const CooMatrix& a) {
  CsrMatrix m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.row_ptr.assign(static_cast<size_t>(a.rows) + 1, 0);
  m.col_idx = a.col_idx;
  m.values = a.values;
  for (int32_t r : a.row_idx) ++m.row_ptr[r + 1];
  for (int32_t r = 0; r < a.rows; ++r) m.row_ptr[r + 1] += m.row_ptr[r];
  return m;
}

}  // namespace tilespmv
