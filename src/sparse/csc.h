#ifndef TILESPMV_SPARSE_CSC_H_
#define TILESPMV_SPARSE_CSC_H_

#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace tilespmv {

/// Compressed Sparse Column storage: the column-major dual of CSR. Used by
/// the column-distribution analysis (Section 3.2) and by the scatter-style
/// SpMV kernel, whose per-column x broadcast is the access pattern column
/// partitioning forces on every node.
struct CscMatrix {
  int32_t rows = 0;
  int32_t cols = 0;
  std::vector<int64_t> col_ptr;  ///< size cols + 1.
  std::vector<int32_t> row_idx;  ///< size nnz, sorted within each column.
  std::vector<float> values;     ///< size nnz.

  int64_t nnz() const { return static_cast<int64_t>(row_idx.size()); }
  int64_t ColLength(int32_t c) const { return col_ptr[c + 1] - col_ptr[c]; }
  Status Validate() const;
};

/// Converts CSR to CSC.
CscMatrix CscFromCsr(const CsrMatrix& a);

/// Converts CSC back to CSR.
CsrMatrix CsrFromCsc(const CscMatrix& a);

/// Reference y = A * x computed column-wise (scatter order): y += x[c] *
/// A(:, c). Bit-for-bit different summation order from CsrMultiply but the
/// same result up to rounding.
void CscMultiply(const CscMatrix& a, const std::vector<float>& x,
                 std::vector<float>* y);

}  // namespace tilespmv

#endif  // TILESPMV_SPARSE_CSC_H_
