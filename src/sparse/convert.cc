#include "sparse/convert.h"

#include "util/check.h"

namespace tilespmv {

CsrMatrix Transpose(const CsrMatrix& a) {
  CsrMatrix t;
  t.rows = a.cols;
  t.cols = a.rows;
  t.row_ptr.assign(static_cast<size_t>(a.cols) + 1, 0);
  t.col_idx.resize(a.col_idx.size());
  t.values.resize(a.values.size());
  for (int32_t c : a.col_idx) ++t.row_ptr[c + 1];
  for (int32_t c = 0; c < a.cols; ++c) t.row_ptr[c + 1] += t.row_ptr[c];
  std::vector<int64_t> next(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (int32_t r = 0; r < a.rows; ++r) {
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      int64_t pos = next[a.col_idx[k]]++;
      t.col_idx[pos] = r;
      t.values[pos] = a.values[k];
    }
  }
  return t;
}

CsrMatrix RowNormalize(const CsrMatrix& a) {
  CsrMatrix m = a;
  for (int32_t r = 0; r < m.rows; ++r) {
    double sum = 0.0;
    for (int64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k)
      sum += m.values[k];
    if (sum != 0.0) {
      float inv = static_cast<float>(1.0 / sum);
      for (int64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k)
        m.values[k] *= inv;
    }
  }
  return m;
}

CsrMatrix ColNormalize(const CsrMatrix& a) {
  CsrMatrix m = a;
  std::vector<double> col_sum(a.cols, 0.0);
  for (int64_t k = 0; k < a.nnz(); ++k) col_sum[a.col_idx[k]] += a.values[k];
  for (int64_t k = 0; k < a.nnz(); ++k) {
    double s = col_sum[m.col_idx[k]];
    if (s != 0.0) m.values[k] = static_cast<float>(m.values[k] / s);
  }
  return m;
}

CsrMatrix Symmetrize(const CsrMatrix& a) {
  TILESPMV_CHECK(a.rows == a.cols);
  CsrMatrix t = Transpose(a);
  // Structural union, values reset to 1 (undirected adjacency).
  std::vector<Triplet> triplets;
  triplets.reserve(2 * static_cast<size_t>(a.nnz()));
  auto add_all = [&](const CsrMatrix& m) {
    for (int32_t r = 0; r < m.rows; ++r) {
      for (int64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
        triplets.push_back(Triplet{r, m.col_idx[k], 1.0f});
      }
    }
  };
  add_all(a);
  add_all(t);
  CsrMatrix sym = CsrMatrix::FromTriplets(a.rows, a.cols, std::move(triplets));
  // Duplicate (i, j) entries were summed to 2; clamp back to 1.
  for (float& v : sym.values) v = 1.0f;
  return sym;
}

CsrMatrix BuildHitsMatrix(const CsrMatrix& a) {
  TILESPMV_CHECK(a.rows == a.cols);
  const int32_t n = a.rows;
  CsrMatrix t = Transpose(a);
  CsrMatrix m;
  m.rows = 2 * n;
  m.cols = 2 * n;
  m.row_ptr.assign(static_cast<size_t>(2 * n) + 1, 0);
  m.col_idx.reserve(2 * static_cast<size_t>(a.nnz()));
  m.values.reserve(2 * static_cast<size_t>(a.nnz()));
  // Top half: rows [0, n) hold A^T shifted to columns [n, 2n).
  for (int32_t r = 0; r < n; ++r) {
    for (int64_t k = t.row_ptr[r]; k < t.row_ptr[r + 1]; ++k) {
      m.col_idx.push_back(t.col_idx[k] + n);
      m.values.push_back(t.values[k]);
    }
    m.row_ptr[r + 1] = static_cast<int64_t>(m.col_idx.size());
  }
  // Bottom half: rows [n, 2n) hold A in columns [0, n).
  for (int32_t r = 0; r < n; ++r) {
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      m.col_idx.push_back(a.col_idx[k]);
      m.values.push_back(a.values[k]);
    }
    m.row_ptr[n + r + 1] = static_cast<int64_t>(m.col_idx.size());
  }
  return m;
}

}  // namespace tilespmv
