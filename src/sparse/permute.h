#ifndef TILESPMV_SPARSE_PERMUTE_H_
#define TILESPMV_SPARSE_PERMUTE_H_

#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace tilespmv {

/// A permutation stored as new_index -> old_index. perm[i] = j means the
/// element at old position j moves to new position i.
using Permutation = std::vector<int32_t>;

/// Returns the inverse permutation (old_index -> new_index).
Permutation InvertPermutation(const Permutation& perm);

/// True if `perm` is a bijection over [0, perm.size()).
bool IsValidPermutation(const Permutation& perm);

/// Permutation ordering columns by decreasing column length (non-zero
/// count), ties broken by original index; stable and computed with a
/// counting sort, which is the linear-time path the paper's "Sorting Cost"
/// paragraph relies on.
Permutation SortColumnsByLengthDesc(const CsrMatrix& a);

/// Permutation ordering rows by decreasing row length (counting sort).
Permutation SortRowsByLengthDesc(const CsrMatrix& a);

/// Reorders columns: result(:, i) = a(:, perm[i]). Column indices inside
/// each row are re-sorted.
CsrMatrix ApplyColumnPermutation(const CsrMatrix& a, const Permutation& perm);

/// Reorders rows: result(i, :) = a(perm[i], :).
CsrMatrix ApplyRowPermutation(const CsrMatrix& a, const Permutation& perm);

/// Symmetric relabeling for square matrices: result(i, j) =
/// a(perm[i], perm[j]). Graph algorithms run in the relabeled space and
/// un-permute their result vectors at the end.
CsrMatrix ApplySymmetricPermutation(const CsrMatrix& a,
                                    const Permutation& perm);

/// Gathers x into permuted order: out[i] = x[perm[i]].
void PermuteVector(const Permutation& perm, const std::vector<float>& x,
                   std::vector<float>* out);

/// Scatters y back to original order: out[perm[i]] = y[i].
void UnpermuteVector(const Permutation& perm, const std::vector<float>& y,
                     std::vector<float>* out);

}  // namespace tilespmv

#endif  // TILESPMV_SPARSE_PERMUTE_H_
