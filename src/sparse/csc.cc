#include "sparse/csc.h"

#include "util/check.h"

namespace tilespmv {

Status CscMatrix::Validate() const {
  if (rows < 0 || cols < 0)
    return Status::InvalidArgument("negative dimensions");
  if (col_ptr.size() != static_cast<size_t>(cols) + 1)
    return Status::InvalidArgument("col_ptr size != cols + 1");
  if (row_idx.size() != values.size())
    return Status::InvalidArgument("row_idx/values size mismatch");
  if (!col_ptr.empty() && (col_ptr.front() != 0 || col_ptr.back() != nnz()))
    return Status::InvalidArgument("col_ptr endpoints wrong");
  for (int32_t c = 0; c < cols; ++c) {
    if (col_ptr[c + 1] < col_ptr[c])
      return Status::InvalidArgument("col_ptr not monotone");
    for (int64_t k = col_ptr[c] + 1; k < col_ptr[c + 1]; ++k) {
      if (row_idx[k] <= row_idx[k - 1])
        return Status::InvalidArgument("row indices not sorted in column");
    }
  }
  for (int32_t r : row_idx) {
    if (r < 0 || r >= rows)
      return Status::InvalidArgument("row index out of range");
  }
  return Status::OK();
}

CscMatrix CscFromCsr(const CsrMatrix& a) {
  CscMatrix m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.col_ptr.assign(static_cast<size_t>(a.cols) + 1, 0);
  m.row_idx.resize(a.col_idx.size());
  m.values.resize(a.values.size());
  for (int32_t c : a.col_idx) ++m.col_ptr[c + 1];
  for (int32_t c = 0; c < a.cols; ++c) m.col_ptr[c + 1] += m.col_ptr[c];
  std::vector<int64_t> next(m.col_ptr.begin(), m.col_ptr.end() - 1);
  for (int32_t r = 0; r < a.rows; ++r) {
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      int64_t pos = next[a.col_idx[k]]++;
      m.row_idx[pos] = r;
      m.values[pos] = a.values[k];
    }
  }
  return m;
}

CsrMatrix CsrFromCsc(const CscMatrix& a) {
  CsrMatrix m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.row_ptr.assign(static_cast<size_t>(a.rows) + 1, 0);
  m.col_idx.resize(a.row_idx.size());
  m.values.resize(a.values.size());
  for (int32_t r : a.row_idx) ++m.row_ptr[r + 1];
  for (int32_t r = 0; r < a.rows; ++r) m.row_ptr[r + 1] += m.row_ptr[r];
  std::vector<int64_t> next(m.row_ptr.begin(), m.row_ptr.end() - 1);
  for (int32_t c = 0; c < a.cols; ++c) {
    for (int64_t k = a.col_ptr[c]; k < a.col_ptr[c + 1]; ++k) {
      int64_t pos = next[a.row_idx[k]]++;
      m.col_idx[pos] = c;
      m.values[pos] = a.values[k];
    }
  }
  return m;
}

void CscMultiply(const CscMatrix& a, const std::vector<float>& x,
                 std::vector<float>* y) {
  TILESPMV_CHECK(x.size() == static_cast<size_t>(a.cols));
  y->assign(a.rows, 0.0f);
  for (int32_t c = 0; c < a.cols; ++c) {
    float xc = x[c];
    if (xc == 0.0f) continue;
    for (int64_t k = a.col_ptr[c]; k < a.col_ptr[c + 1]; ++k) {
      (*y)[a.row_idx[k]] += a.values[k] * xc;
    }
  }
}

}  // namespace tilespmv
