#include "sparse/permute.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace tilespmv {
namespace {

/// Counting sort of indices [0, n) by key descending, stable. Runs in
/// O(n + max_key) — linear for the power-law tails the paper describes.
Permutation CountingSortDesc(const std::vector<int64_t>& keys) {
  int64_t max_key = 0;
  for (int64_t k : keys) max_key = std::max(max_key, k);
  std::vector<int64_t> bucket_start(max_key + 2, 0);
  // bucket for key k (descending): position max_key - k.
  for (int64_t k : keys) ++bucket_start[max_key - k + 1];
  for (size_t i = 1; i < bucket_start.size(); ++i)
    bucket_start[i] += bucket_start[i - 1];
  Permutation perm(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    perm[bucket_start[max_key - keys[i]]++] = static_cast<int32_t>(i);
  }
  return perm;
}

}  // namespace

Permutation InvertPermutation(const Permutation& perm) {
  Permutation inv(perm.size());
  for (size_t i = 0; i < perm.size(); ++i)
    inv[perm[i]] = static_cast<int32_t>(i);
  return inv;
}

bool IsValidPermutation(const Permutation& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (int32_t p : perm) {
    if (p < 0 || static_cast<size_t>(p) >= perm.size() || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

Permutation SortColumnsByLengthDesc(const CsrMatrix& a) {
  return CountingSortDesc(a.ColLengths());
}

Permutation SortRowsByLengthDesc(const CsrMatrix& a) {
  return CountingSortDesc(a.RowLengths());
}

CsrMatrix ApplyColumnPermutation(const CsrMatrix& a, const Permutation& perm) {
  TILESPMV_CHECK(perm.size() == static_cast<size_t>(a.cols));
  Permutation inv = InvertPermutation(perm);
  CsrMatrix m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.row_ptr = a.row_ptr;
  m.col_idx.resize(a.col_idx.size());
  m.values.resize(a.values.size());
  std::vector<std::pair<int32_t, float>> row_buf;
  for (int32_t r = 0; r < a.rows; ++r) {
    row_buf.clear();
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      row_buf.emplace_back(inv[a.col_idx[k]], a.values[k]);
    }
    std::sort(row_buf.begin(), row_buf.end());
    int64_t k = a.row_ptr[r];
    for (const auto& [c, v] : row_buf) {
      m.col_idx[k] = c;
      m.values[k] = v;
      ++k;
    }
  }
  return m;
}

CsrMatrix ApplyRowPermutation(const CsrMatrix& a, const Permutation& perm) {
  TILESPMV_CHECK(perm.size() == static_cast<size_t>(a.rows));
  CsrMatrix m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.row_ptr.assign(static_cast<size_t>(a.rows) + 1, 0);
  m.col_idx.reserve(a.col_idx.size());
  m.values.reserve(a.values.size());
  for (int32_t i = 0; i < a.rows; ++i) {
    int32_t r = perm[i];
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      m.col_idx.push_back(a.col_idx[k]);
      m.values.push_back(a.values[k]);
    }
    m.row_ptr[i + 1] =
        m.row_ptr[i] + (a.row_ptr[r + 1] - a.row_ptr[r]);
  }
  return m;
}

CsrMatrix ApplySymmetricPermutation(const CsrMatrix& a,
                                    const Permutation& perm) {
  TILESPMV_CHECK(a.rows == a.cols);
  return ApplyColumnPermutation(ApplyRowPermutation(a, perm), perm);
}

void PermuteVector(const Permutation& perm, const std::vector<float>& x,
                   std::vector<float>* out) {
  TILESPMV_CHECK(perm.size() == x.size());
  out->resize(x.size());
  for (size_t i = 0; i < perm.size(); ++i) (*out)[i] = x[perm[i]];
}

void UnpermuteVector(const Permutation& perm, const std::vector<float>& y,
                     std::vector<float>* out) {
  TILESPMV_CHECK(perm.size() == y.size());
  out->resize(y.size());
  for (size_t i = 0; i < perm.size(); ++i) (*out)[perm[i]] = y[i];
}

}  // namespace tilespmv
