#include "sparse/permute.h"

#include <algorithm>
#include <numeric>

#include "par/pool.h"
#include "util/check.h"

namespace tilespmv {
namespace {

/// Counting sort of indices [0, n) by key descending, stable. Runs in
/// O(n + max_key) — linear for the power-law tails the paper describes.
///
/// Parallel form: the index range is cut into blocks, each block histograms
/// its keys, a serial scan over (bucket, block) assigns every block its
/// start offset per bucket, and the blocks scatter concurrently. Stability
/// fully determines the output permutation, so this produces exactly the
/// serial result. Per-block histograms cost blocks * (max_key + 1) words;
/// when that is disproportionate to n the sort runs serially instead.
Permutation CountingSortDesc(const std::vector<int64_t>& keys) {
  const int64_t n = static_cast<int64_t>(keys.size());
  int64_t max_key = par::ParallelReduce<int64_t>(
      0, n, par::kReduceBlock, 0,
      [&](int64_t lo, int64_t hi) {
        int64_t m = 0;
        for (int64_t i = lo; i < hi; ++i) m = std::max(m, keys[i]);
        return m;
      },
      [](int64_t a, int64_t b) { return std::max(a, b); },
      "par/counting_sort_max");
  const int64_t buckets = max_key + 1;

  int64_t num_blocks = par::ThreadPool::Global().num_threads();
  const int64_t kMinBlockItems = 1 << 14;
  num_blocks = std::min(num_blocks, (n + kMinBlockItems - 1) / kMinBlockItems);
  // Keep the histogram matrix within a small multiple of the input size.
  while (num_blocks > 1 && num_blocks * buckets > std::max<int64_t>(n, 1) * 4) {
    num_blocks /= 2;
  }
  Permutation perm(keys.size());
  if (num_blocks <= 1) {
    std::vector<int64_t> bucket_start(buckets + 1, 0);
    // bucket for key k (descending): position max_key - k.
    for (int64_t k : keys) ++bucket_start[max_key - k + 1];
    for (size_t i = 1; i < bucket_start.size(); ++i)
      bucket_start[i] += bucket_start[i - 1];
    for (size_t i = 0; i < keys.size(); ++i) {
      perm[bucket_start[max_key - keys[i]]++] = static_cast<int32_t>(i);
    }
    return perm;
  }

  auto block_range = [&](int64_t b, int64_t* lo, int64_t* hi) {
    *lo = n * b / num_blocks;
    *hi = n * (b + 1) / num_blocks;
  };
  std::vector<int64_t> counts(static_cast<size_t>(num_blocks * buckets), 0);
  par::LoopOptions block_opts;
  block_opts.grain = 1;
  block_opts.label = "par/counting_sort_histogram";
  par::ParallelFor(0, num_blocks, block_opts, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      int64_t lo, hi;
      block_range(b, &lo, &hi);
      int64_t* local = counts.data() + b * buckets;
      for (int64_t i = lo; i < hi; ++i) ++local[max_key - keys[i]];
    }
  });
  // counts[b][bucket] -> start offset: buckets outermost (descending key),
  // blocks innermost (ascending index), i.e. the stable order.
  int64_t running = 0;
  for (int64_t bucket = 0; bucket < buckets; ++bucket) {
    for (int64_t b = 0; b < num_blocks; ++b) {
      int64_t& slot = counts[static_cast<size_t>(b * buckets + bucket)];
      int64_t c = slot;
      slot = running;
      running += c;
    }
  }
  block_opts.label = "par/counting_sort_scatter";
  par::ParallelFor(0, num_blocks, block_opts, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      int64_t lo, hi;
      block_range(b, &lo, &hi);
      int64_t* local = counts.data() + b * buckets;
      for (int64_t i = lo; i < hi; ++i) {
        perm[local[max_key - keys[i]]++] = static_cast<int32_t>(i);
      }
    }
  });
  return perm;
}

}  // namespace

Permutation InvertPermutation(const Permutation& perm) {
  Permutation inv(perm.size());
  for (size_t i = 0; i < perm.size(); ++i)
    inv[perm[i]] = static_cast<int32_t>(i);
  return inv;
}

bool IsValidPermutation(const Permutation& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (int32_t p : perm) {
    if (p < 0 || static_cast<size_t>(p) >= perm.size() || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

Permutation SortColumnsByLengthDesc(const CsrMatrix& a) {
  return CountingSortDesc(a.ColLengths());
}

Permutation SortRowsByLengthDesc(const CsrMatrix& a) {
  return CountingSortDesc(a.RowLengths());
}

CsrMatrix ApplyColumnPermutation(const CsrMatrix& a, const Permutation& perm) {
  TILESPMV_CHECK(perm.size() == static_cast<size_t>(a.cols));
  Permutation inv = InvertPermutation(perm);
  CsrMatrix m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.row_ptr = a.row_ptr;
  m.col_idx.resize(a.col_idx.size());
  m.values.resize(a.values.size());
  // Each row rewrites only its own [row_ptr[r], row_ptr[r+1]) segment, so
  // rows scatter concurrently; the row buffer is per-chunk scratch.
  par::LoopOptions options;
  options.grain = 256;
  options.chunking = par::Chunking::kGuided;
  options.label = "par/apply_col_perm";
  par::ParallelFor(0, a.rows, options, [&](int64_t r0, int64_t r1) {
    std::vector<std::pair<int32_t, float>> row_buf;
    for (int64_t r = r0; r < r1; ++r) {
      row_buf.clear();
      for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
        row_buf.emplace_back(inv[a.col_idx[k]], a.values[k]);
      }
      std::sort(row_buf.begin(), row_buf.end());
      int64_t k = a.row_ptr[r];
      for (const auto& [c, v] : row_buf) {
        m.col_idx[k] = c;
        m.values[k] = v;
        ++k;
      }
    }
  });
  return m;
}

CsrMatrix ApplyRowPermutation(const CsrMatrix& a, const Permutation& perm) {
  TILESPMV_CHECK(perm.size() == static_cast<size_t>(a.rows));
  CsrMatrix m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.row_ptr.assign(static_cast<size_t>(a.rows) + 1, 0);
  // Row lengths then a serial prefix give every output row its offset, so
  // the per-row copies are disjoint and run concurrently.
  for (int32_t i = 0; i < a.rows; ++i) {
    int32_t r = perm[i];
    m.row_ptr[i + 1] = m.row_ptr[i] + (a.row_ptr[r + 1] - a.row_ptr[r]);
  }
  m.col_idx.resize(a.col_idx.size());
  m.values.resize(a.values.size());
  par::LoopOptions options;
  options.grain = 256;
  options.chunking = par::Chunking::kGuided;
  options.label = "par/apply_row_perm";
  par::ParallelFor(0, a.rows, options, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      int32_t r = perm[i];
      int64_t out = m.row_ptr[i];
      for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k, ++out) {
        m.col_idx[out] = a.col_idx[k];
        m.values[out] = a.values[k];
      }
    }
  });
  return m;
}

CsrMatrix ApplySymmetricPermutation(const CsrMatrix& a,
                                    const Permutation& perm) {
  TILESPMV_CHECK(a.rows == a.cols);
  return ApplyColumnPermutation(ApplyRowPermutation(a, perm), perm);
}

void PermuteVector(const Permutation& perm, const std::vector<float>& x,
                   std::vector<float>* out) {
  TILESPMV_CHECK(perm.size() == x.size());
  out->resize(x.size());
  par::LoopOptions options;
  options.grain = 4096;
  options.label = "par/permute_vector";
  par::ParallelFor(0, static_cast<int64_t>(perm.size()), options,
                   [&](int64_t i0, int64_t i1) {
                     for (int64_t i = i0; i < i1; ++i) (*out)[i] = x[perm[i]];
                   });
}

void UnpermuteVector(const Permutation& perm, const std::vector<float>& y,
                     std::vector<float>* out) {
  TILESPMV_CHECK(perm.size() == y.size());
  out->resize(y.size());
  par::LoopOptions options;
  options.grain = 4096;
  options.label = "par/unpermute_vector";
  par::ParallelFor(0, static_cast<int64_t>(perm.size()), options,
                   [&](int64_t i0, int64_t i1) {
                     for (int64_t i = i0; i < i1; ++i) (*out)[perm[i]] = y[i];
                   });
}

}  // namespace tilespmv
