#ifndef TILESPMV_SPARSE_COO_H_
#define TILESPMV_SPARSE_COO_H_

#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace tilespmv {

/// Coordinate storage: three parallel arrays (row, col, value), kept sorted
/// by (row, col). Matches the layout NVIDIA's COO kernel consumes: the warp
/// strides over equal-length intervals of the arrays and performs a
/// segmented reduction keyed on the row index.
struct CooMatrix {
  int32_t rows = 0;
  int32_t cols = 0;
  std::vector<int32_t> row_idx;
  std::vector<int32_t> col_idx;
  std::vector<float> values;

  int64_t nnz() const { return static_cast<int64_t>(values.size()); }
  Status Validate() const;
};

/// Converts CSR to COO (keeps row-major order).
CooMatrix CooFromCsr(const CsrMatrix& a);

/// Converts COO back to CSR.
CsrMatrix CsrFromCoo(const CooMatrix& a);

}  // namespace tilespmv

#endif  // TILESPMV_SPARSE_COO_H_
