#ifndef TILESPMV_SPARSE_CSR_H_
#define TILESPMV_SPARSE_CSR_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace tilespmv {

/// One non-zero entry (row, col, value). The interchange unit between
/// generators, I/O and format builders.
struct Triplet {
  int32_t row = 0;
  int32_t col = 0;
  float value = 0.0f;
};

/// Compressed Sparse Row storage: non-zeros of a row are contiguous;
/// `row_ptr[r] .. row_ptr[r+1]` index into `col_idx` / `values`. This is the
/// library's canonical host format — every other format converts from it.
struct CsrMatrix {
  int32_t rows = 0;
  int32_t cols = 0;
  std::vector<int64_t> row_ptr;  ///< size rows + 1.
  std::vector<int32_t> col_idx;  ///< size nnz, sorted within each row.
  std::vector<float> values;     ///< size nnz.

  int64_t nnz() const { return static_cast<int64_t>(col_idx.size()); }
  int64_t RowLength(int32_t r) const { return row_ptr[r + 1] - row_ptr[r]; }

  /// Length (non-zero count) of every row.
  std::vector<int64_t> RowLengths() const;
  /// Length (non-zero count) of every column.
  std::vector<int64_t> ColLengths() const;

  /// Structural well-formedness check (monotone row_ptr, in-range columns,
  /// array sizes consistent).
  Status Validate() const;

  /// Builds a CSR matrix from unordered triplets. Duplicate (row, col)
  /// entries are summed. Triplets are consumed (sorted in place).
  static CsrMatrix FromTriplets(int32_t rows, int32_t cols,
                                std::vector<Triplet> triplets);
};

/// Reference y = A * x used for correctness checks and the CPU baseline
/// kernel's inner loop.
void CsrMultiply(const CsrMatrix& a, const std::vector<float>& x,
                 std::vector<float>* y);

/// 64-bit content fingerprint: dimensions, nnz, and an FNV-1a hash over the
/// row_ptr, col_idx and values arrays. Matrices that differ structurally
/// (permuted, edited, resized) get distinct fingerprints with overwhelming
/// probability. One O(nnz) pass — cheap next to any preprocessing — computed
/// once per loaded graph and used as the serving layer's PlanCache key.
uint64_t FingerprintCsr(const CsrMatrix& a);

}  // namespace tilespmv

#endif  // TILESPMV_SPARSE_CSR_H_
