#ifndef TILESPMV_SPARSE_HYB_H_
#define TILESPMV_SPARSE_HYB_H_

#include <cstdint>

#include "sparse/coo.h"
#include "sparse/ell.h"

namespace tilespmv {

/// NVIDIA's hybrid format: the first `ell.width` entries of each row in ELL,
/// the long-row overflow in COO. The ELL width is chosen by Bell & Garland's
/// heuristic so that padding stays bounded even on skewed row lengths —
/// which is why HYB is the strongest library kernel on power-law matrices.
struct HybMatrix {
  EllMatrix ell;
  CooMatrix coo;

  int64_t nnz() const { return ell.nnz() + coo.nnz(); }
};

/// Bell & Garland's width heuristic: the largest K such that at least
/// `occupancy_threshold` (default 1/3) of rows have length >= K. Returns 0
/// for an empty matrix.
int32_t HybEllWidth(const CsrMatrix& a, double occupancy_threshold = 1.0 / 3);

/// Builds HYB from CSR using HybEllWidth.
HybMatrix HybFromCsr(const CsrMatrix& a);

}  // namespace tilespmv

#endif  // TILESPMV_SPARSE_HYB_H_
