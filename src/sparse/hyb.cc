#include "sparse/hyb.h"

#include <algorithm>

namespace tilespmv {

int32_t HybEllWidth(const CsrMatrix& a, double occupancy_threshold) {
  if (a.rows == 0 || a.nnz() == 0) return 0;
  // Histogram of row lengths, then walk from K=1 upward while enough rows
  // still reach K.
  int64_t max_len = 0;
  std::vector<int64_t> lengths = a.RowLengths();
  for (int64_t len : lengths) max_len = std::max(max_len, len);
  std::vector<int64_t> count_ge(max_len + 2, 0);
  for (int64_t len : lengths) ++count_ge[len];
  // Suffix-sum: count_ge[k] = number of rows with length >= k.
  for (int64_t k = max_len - 1; k >= 0; --k) count_ge[k] += count_ge[k + 1];
  int64_t need = std::max<int64_t>(
      1, static_cast<int64_t>(occupancy_threshold * a.rows));
  int32_t width = 0;
  for (int64_t k = 1; k <= max_len; ++k) {
    if (count_ge[k] >= need) width = static_cast<int32_t>(k);
  }
  // Every matrix keeps at least width 1 so the ELL part is never empty.
  return std::max(width, 1);
}

HybMatrix HybFromCsr(const CsrMatrix& a) {
  HybMatrix m;
  int32_t width = HybEllWidth(a);
  std::vector<Triplet> overflow;
  m.ell = EllFromCsrTruncated(a, width, &overflow);
  CsrMatrix coo_part = CsrMatrix::FromTriplets(a.rows, a.cols,
                                               std::move(overflow));
  m.coo = CooFromCsr(coo_part);
  return m;
}

}  // namespace tilespmv
