#include "sparse/matrix_stats.h"

#include <cstdio>

namespace tilespmv {

std::string MatrixStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%dx%d nnz=%lld nnz/row=%.1f nnz/col=%.1f max_row=%lld "
                "max_col=%lld alpha=%.2f power_law=%s",
                rows, cols, static_cast<long long>(nnz), row_dist.mean,
                col_dist.mean, static_cast<long long>(row_dist.max),
                static_cast<long long>(col_dist.max), col_dist.powerlaw_alpha,
                power_law ? "yes" : "no");
  return buf;
}

MatrixStats ComputeStats(const CsrMatrix& a) {
  MatrixStats s;
  s.rows = a.rows;
  s.cols = a.cols;
  s.nnz = a.nnz();
  s.row_dist = AnalyzeLengths(a.RowLengths());
  s.col_dist = AnalyzeLengths(a.ColLengths());
  s.power_law = LooksPowerLaw(s.row_dist) || LooksPowerLaw(s.col_dist);
  return s;
}

}  // namespace tilespmv
