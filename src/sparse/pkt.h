#ifndef TILESPMV_SPARSE_PKT_H_
#define TILESPMV_SPARSE_PKT_H_

#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace tilespmv {

/// One packet: a cluster of rows whose touched x entries fit in an SM's
/// shared memory, processed by one thread block.
struct Packet {
  std::vector<int32_t> rows;        ///< Row ids in this packet.
  std::vector<int32_t> x_columns;   ///< Distinct columns the packet touches.
  /// CSR-like storage local to the packet; col entries index x_columns.
  std::vector<int64_t> row_ptr;
  std::vector<int32_t> local_col;
  std::vector<float> values;

  int64_t nnz() const { return static_cast<int64_t>(values.size()); }
};

/// Packet (PKT) format: rows clustered so each cluster's x footprint fits in
/// shared memory. The paper's PKT uses Metis; this builder uses contiguous
/// row blocks greedily grown under the footprint budget — equivalent for the
/// structured matrices PKT succeeds on, and it fails the same way on
/// power-law inputs (a single hub row overflows shared memory, or the
/// packets come out too imbalanced for the kernel's static partitioning).
struct PktMatrix {
  int32_t rows = 0;
  int32_t cols = 0;
  std::vector<Packet> packets;

  int64_t nnz() const;
};

/// Builds PKT. `shared_floats` is the per-packet x footprint budget (shared
/// memory capacity in floats). Fails with UNSUPPORTED_FORMAT when a single
/// row exceeds the budget or packet sizes are too imbalanced
/// (max > imbalance_limit * mean), matching the paper's observed kernel
/// failures on power-law matrices.
Result<PktMatrix> PktFromCsr(const CsrMatrix& a, int32_t shared_floats,
                             double imbalance_limit = 2.5);

}  // namespace tilespmv

#endif  // TILESPMV_SPARSE_PKT_H_
