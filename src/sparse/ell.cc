#include "sparse/ell.h"

#include <algorithm>

namespace tilespmv {

int64_t EllMatrix::nnz() const {
  int64_t n = 0;
  for (int32_t c : col_idx) {
    if (c != kEllPad) ++n;
  }
  return n;
}

Status EllMatrix::Validate() const {
  int64_t expect = PaddedEntries();
  if (col_idx.size() != static_cast<size_t>(expect) ||
      values.size() != static_cast<size_t>(expect))
    return Status::InvalidArgument("ELL array size != rows * width");
  for (int32_t c : col_idx) {
    if (c != kEllPad && (c < 0 || c >= cols))
      return Status::InvalidArgument("ELL column index out of range");
  }
  return Status::OK();
}

Result<EllMatrix> EllFromCsr(const CsrMatrix& a, int64_t max_bytes) {
  int64_t width = 0;
  for (int32_t r = 0; r < a.rows; ++r)
    width = std::max(width, a.RowLength(r));
  int64_t padded = static_cast<int64_t>(a.rows) * width;
  // 4 B column index + 4 B value per slot.
  if (padded * 8 > max_bytes) {
    return Status::ResourceExhausted(
        "ELL padding explodes: " + std::to_string(padded) + " slots (" +
        std::to_string(padded * 8) + " bytes) for " + std::to_string(a.nnz()) +
        " non-zeros");
  }
  std::vector<Triplet> overflow;
  EllMatrix m = EllFromCsrTruncated(a, static_cast<int32_t>(width), &overflow);
  return m;
}

EllMatrix EllFromCsrTruncated(const CsrMatrix& a, int32_t width,
                              std::vector<Triplet>* overflow) {
  EllMatrix m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.width = width;
  m.col_idx.assign(static_cast<size_t>(a.rows) * width, EllMatrix::kEllPad);
  m.values.assign(static_cast<size_t>(a.rows) * width, 0.0f);
  for (int32_t r = 0; r < a.rows; ++r) {
    int64_t len = a.RowLength(r);
    int64_t in_ell = std::min<int64_t>(len, width);
    for (int64_t j = 0; j < in_ell; ++j) {
      int64_t k = a.row_ptr[r] + j;
      // Column-major: slot j of row r lives at j * rows + r.
      size_t slot = static_cast<size_t>(j) * a.rows + r;
      m.col_idx[slot] = a.col_idx[k];
      m.values[slot] = a.values[k];
    }
    if (overflow != nullptr) {
      for (int64_t j = in_ell; j < len; ++j) {
        int64_t k = a.row_ptr[r] + j;
        overflow->push_back(Triplet{r, a.col_idx[k], a.values[k]});
      }
    }
  }
  return m;
}

}  // namespace tilespmv
