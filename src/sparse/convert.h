#ifndef TILESPMV_SPARSE_CONVERT_H_
#define TILESPMV_SPARSE_CONVERT_H_

#include <vector>

#include "sparse/csr.h"

namespace tilespmv {

/// Transpose of a CSR matrix (CSC view materialized as CSR).
CsrMatrix Transpose(const CsrMatrix& a);

/// Divides each non-zero by its row sum (rows summing to 0 are left
/// untouched). PageRank's W is the row-normalized adjacency matrix.
CsrMatrix RowNormalize(const CsrMatrix& a);

/// Divides each non-zero by its column sum. RWR's W is the column-normalized
/// adjacency matrix.
CsrMatrix ColNormalize(const CsrMatrix& a);

/// Makes the matrix symmetric by adding A^T (duplicates summed... structural
/// union with value max 1 for adjacency use: value becomes 1 for any edge in
/// either direction). Used by RWR, which operates on undirected graphs.
CsrMatrix Symmetrize(const CsrMatrix& a);

/// Builds the HITS matrix [[0, A^T], [A, 0]] of size 2n x 2n.
CsrMatrix BuildHitsMatrix(const CsrMatrix& a);

}  // namespace tilespmv

#endif  // TILESPMV_SPARSE_CONVERT_H_
