#ifndef TILESPMV_SPARSE_MATRIX_STATS_H_
#define TILESPMV_SPARSE_MATRIX_STATS_H_

#include <string>

#include "sparse/csr.h"
#include "util/stats.h"

namespace tilespmv {

/// Distributional profile of a matrix — the properties the paper's
/// optimizations key on (Observations 2 and 5).
struct MatrixStats {
  int32_t rows = 0;
  int32_t cols = 0;
  int64_t nnz = 0;
  LengthDistribution row_dist;
  LengthDistribution col_dist;
  bool power_law = false;  ///< Table 2's "Power-law?" column.

  std::string ToString() const;
};

/// Computes the profile of `a`.
MatrixStats ComputeStats(const CsrMatrix& a);

}  // namespace tilespmv

#endif  // TILESPMV_SPARSE_MATRIX_STATS_H_
