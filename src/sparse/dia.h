#ifndef TILESPMV_SPARSE_DIA_H_
#define TILESPMV_SPARSE_DIA_H_

#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace tilespmv {

/// Diagonal storage: one dense column per occupied diagonal. Only viable for
/// banded matrices — the builder fails on anything with many distinct
/// diagonals, reproducing the paper's note that DIA "is only applicable to
/// matrices in which all non-zeros fall into a band around the diagonal".
struct DiaMatrix {
  int32_t rows = 0;
  int32_t cols = 0;
  std::vector<int32_t> offsets;  ///< Diagonal offsets (col - row), ascending.
  /// values[d * rows + r] = A(r, r + offsets[d]); 0 where out of range or no
  /// entry.
  std::vector<float> values;

  int64_t PaddedEntries() const {
    return static_cast<int64_t>(offsets.size()) * rows;
  }
  Status Validate() const;
};

/// Converts CSR to DIA. Fails with UNSUPPORTED_FORMAT when the number of
/// occupied diagonals exceeds `max_diagonals` or the padded size exceeds
/// `max_bytes`.
Result<DiaMatrix> DiaFromCsr(const CsrMatrix& a, int32_t max_diagonals,
                             int64_t max_bytes);

}  // namespace tilespmv

#endif  // TILESPMV_SPARSE_DIA_H_
