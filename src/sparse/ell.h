#ifndef TILESPMV_SPARSE_ELL_H_
#define TILESPMV_SPARSE_ELL_H_

#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace tilespmv {

/// ELLPACK storage: every row is padded to a common `width`; entries are laid
/// out column-major (`col_idx[c * rows + r]`), which is what lets one thread
/// per row read global memory fully coalesced. Padding slots carry
/// col = kEllPad and value 0.
struct EllMatrix {
  static constexpr int32_t kEllPad = -1;

  int32_t rows = 0;
  int32_t cols = 0;
  int32_t width = 0;               ///< Padded row length.
  std::vector<int32_t> col_idx;    ///< size rows * width, column-major.
  std::vector<float> values;       ///< size rows * width, column-major.

  int64_t PaddedEntries() const {
    return static_cast<int64_t>(rows) * width;
  }
  /// Real (non-padding) entries.
  int64_t nnz() const;
  Status Validate() const;
};

/// Converts CSR to ELL with the matrix's maximum row length as width.
/// Fails with RESOURCE_EXHAUSTED when the padded size exceeds `max_bytes`
/// (power-law matrices blow up here — the paper's reason ELL alone cannot be
/// used for graph mining).
Result<EllMatrix> EllFromCsr(const CsrMatrix& a, int64_t max_bytes);

/// Converts the first min(row length, width) entries of each row to ELL;
/// entries beyond `width` are returned as overflow triplets (used by HYB).
EllMatrix EllFromCsrTruncated(const CsrMatrix& a, int32_t width,
                              std::vector<Triplet>* overflow);

}  // namespace tilespmv

#endif  // TILESPMV_SPARSE_ELL_H_
