#include "sparse/csr.h"

#include <algorithm>
#include <cstring>

#include "par/pool.h"
#include "util/check.h"

namespace tilespmv {
namespace {

// FNV-1a, 64-bit.
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
uint64_t FnvMixVector(uint64_t h, const std::vector<T>& v) {
  return FnvMix(h, v.data(), v.size() * sizeof(T));
}

}  // namespace

std::vector<int64_t> CsrMatrix::RowLengths() const {
  std::vector<int64_t> lengths(rows);
  for (int32_t r = 0; r < rows; ++r) lengths[r] = RowLength(r);
  return lengths;
}

std::vector<int64_t> CsrMatrix::ColLengths() const {
  std::vector<int64_t> lengths(cols, 0);
  for (int32_t c : col_idx) ++lengths[c];
  return lengths;
}

Status CsrMatrix::Validate() const {
  if (rows < 0 || cols < 0)
    return Status::InvalidArgument("negative dimensions");
  if (row_ptr.size() != static_cast<size_t>(rows) + 1)
    return Status::InvalidArgument("row_ptr size != rows + 1");
  if (col_idx.size() != values.size())
    return Status::InvalidArgument("col_idx/values size mismatch");
  if (!row_ptr.empty()) {
    if (row_ptr.front() != 0)
      return Status::InvalidArgument("row_ptr[0] != 0");
    if (row_ptr.back() != nnz())
      return Status::InvalidArgument("row_ptr[rows] != nnz");
  }
  for (int32_t r = 0; r < rows; ++r) {
    if (row_ptr[r + 1] < row_ptr[r])
      return Status::InvalidArgument("row_ptr not monotone");
  }
  for (int32_t c : col_idx) {
    if (c < 0 || c >= cols)
      return Status::InvalidArgument("column index out of range");
  }
  return Status::OK();
}

CsrMatrix CsrMatrix::FromTriplets(int32_t rows, int32_t cols,
                                  std::vector<Triplet> triplets) {
  TILESPMV_CHECK(rows >= 0 && cols >= 0);
  const int64_t n = static_cast<int64_t>(triplets.size());

  // Two-pass counting sort over rows — O(n + rows) instead of the
  // comparator sort's O(n log n) — then an independent per-row sort by
  // column. The counting scatter is stable, so duplicate (row, col)
  // entries are summed in input order.
  std::vector<int64_t> row_start(static_cast<size_t>(rows) + 1, 0);
  for (const Triplet& t : triplets) {
    TILESPMV_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols);
    ++row_start[t.row + 1];
  }
  for (int32_t r = 0; r < rows; ++r) row_start[r + 1] += row_start[r];
  std::vector<Triplet> by_row(static_cast<size_t>(n));
  {
    std::vector<int64_t> cursor(row_start.begin(), row_start.end() - 1);
    for (const Triplet& t : triplets) {
      by_row[static_cast<size_t>(cursor[t.row]++)] = t;
    }
  }
  triplets.clear();
  triplets.shrink_to_fit();

  // Per row: stable-sort by column, merge duplicates in place at the front
  // of the row's range, record the merged length. Rows are independent.
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.assign(static_cast<size_t>(rows) + 1, 0);
  par::LoopOptions row_opts;
  row_opts.grain = 256;
  row_opts.chunking = par::Chunking::kGuided;
  row_opts.label = "par/from_triplets_rows";
  par::ParallelFor(0, rows, row_opts, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      Triplet* first = by_row.data() + row_start[r];
      Triplet* last = by_row.data() + row_start[r + 1];
      std::stable_sort(first, last, [](const Triplet& a, const Triplet& b) {
        return a.col < b.col;
      });
      Triplet* out = first;
      for (Triplet* p = first; p != last;) {
        int32_t col = p->col;
        float sum = p->value;
        for (++p; p != last && p->col == col; ++p) sum += p->value;
        out->col = col;
        out->value = sum;
        ++out;
      }
      m.row_ptr[r + 1] = out - first;
    }
  });
  for (int32_t r = 0; r < rows; ++r) m.row_ptr[r + 1] += m.row_ptr[r];

  const int64_t nnz = m.row_ptr.empty() ? 0 : m.row_ptr.back();
  m.col_idx.resize(static_cast<size_t>(nnz));
  m.values.resize(static_cast<size_t>(nnz));
  par::LoopOptions copy_opts;
  copy_opts.grain = 256;
  copy_opts.label = "par/from_triplets_pack";
  par::ParallelFor(0, rows, copy_opts, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const Triplet* src = by_row.data() + row_start[r];
      int64_t out = m.row_ptr[r];
      const int64_t len = m.row_ptr[r + 1] - out;
      for (int64_t k = 0; k < len; ++k) {
        m.col_idx[static_cast<size_t>(out + k)] = src[k].col;
        m.values[static_cast<size_t>(out + k)] = src[k].value;
      }
    }
  });
  return m;
}

uint64_t FingerprintCsr(const CsrMatrix& a) {
  uint64_t h = kFnvOffset;
  int64_t header[3] = {a.rows, a.cols, a.nnz()};
  h = FnvMix(h, header, sizeof(header));
  h = FnvMixVector(h, a.row_ptr);
  h = FnvMixVector(h, a.col_idx);
  h = FnvMixVector(h, a.values);
  return h;
}

void CsrMultiply(const CsrMatrix& a, const std::vector<float>& x,
                 std::vector<float>* y) {
  TILESPMV_CHECK(x.size() == static_cast<size_t>(a.cols));
  y->assign(a.rows, 0.0f);
  // Rows are independent and each row's accumulation order is unchanged,
  // so the result is bitwise identical at every thread count. Guided
  // chunking absorbs power-law row-length skew.
  par::LoopOptions options;
  options.grain = 256;
  options.chunking = par::Chunking::kGuided;
  options.label = "par/csr_multiply";
  par::ParallelFor(0, a.rows, options, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float sum = 0.0f;
      for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
        sum += a.values[k] * x[a.col_idx[k]];
      }
      (*y)[r] = sum;
    }
  });
}

}  // namespace tilespmv
