#include "sparse/csr.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace tilespmv {
namespace {

// FNV-1a, 64-bit.
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
uint64_t FnvMixVector(uint64_t h, const std::vector<T>& v) {
  return FnvMix(h, v.data(), v.size() * sizeof(T));
}

}  // namespace

std::vector<int64_t> CsrMatrix::RowLengths() const {
  std::vector<int64_t> lengths(rows);
  for (int32_t r = 0; r < rows; ++r) lengths[r] = RowLength(r);
  return lengths;
}

std::vector<int64_t> CsrMatrix::ColLengths() const {
  std::vector<int64_t> lengths(cols, 0);
  for (int32_t c : col_idx) ++lengths[c];
  return lengths;
}

Status CsrMatrix::Validate() const {
  if (rows < 0 || cols < 0)
    return Status::InvalidArgument("negative dimensions");
  if (row_ptr.size() != static_cast<size_t>(rows) + 1)
    return Status::InvalidArgument("row_ptr size != rows + 1");
  if (col_idx.size() != values.size())
    return Status::InvalidArgument("col_idx/values size mismatch");
  if (!row_ptr.empty()) {
    if (row_ptr.front() != 0)
      return Status::InvalidArgument("row_ptr[0] != 0");
    if (row_ptr.back() != nnz())
      return Status::InvalidArgument("row_ptr[rows] != nnz");
  }
  for (int32_t r = 0; r < rows; ++r) {
    if (row_ptr[r + 1] < row_ptr[r])
      return Status::InvalidArgument("row_ptr not monotone");
  }
  for (int32_t c : col_idx) {
    if (c < 0 || c >= cols)
      return Status::InvalidArgument("column index out of range");
  }
  return Status::OK();
}

CsrMatrix CsrMatrix::FromTriplets(int32_t rows, int32_t cols,
                                  std::vector<Triplet> triplets) {
  TILESPMV_CHECK(rows >= 0 && cols >= 0);
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_idx.reserve(triplets.size());
  m.values.reserve(triplets.size());
  size_t i = 0;
  while (i < triplets.size()) {
    const Triplet& t = triplets[i];
    TILESPMV_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols);
    float sum = t.value;
    size_t j = i + 1;
    while (j < triplets.size() && triplets[j].row == t.row &&
           triplets[j].col == t.col) {
      sum += triplets[j].value;
      ++j;
    }
    m.col_idx.push_back(t.col);
    m.values.push_back(sum);
    ++m.row_ptr[t.row + 1];
    i = j;
  }
  for (int32_t r = 0; r < rows; ++r) m.row_ptr[r + 1] += m.row_ptr[r];
  return m;
}

uint64_t FingerprintCsr(const CsrMatrix& a) {
  uint64_t h = kFnvOffset;
  int64_t header[3] = {a.rows, a.cols, a.nnz()};
  h = FnvMix(h, header, sizeof(header));
  h = FnvMixVector(h, a.row_ptr);
  h = FnvMixVector(h, a.col_idx);
  h = FnvMixVector(h, a.values);
  return h;
}

void CsrMultiply(const CsrMatrix& a, const std::vector<float>& x,
                 std::vector<float>* y) {
  TILESPMV_CHECK(x.size() == static_cast<size_t>(a.cols));
  y->assign(a.rows, 0.0f);
  for (int32_t r = 0; r < a.rows; ++r) {
    float sum = 0.0f;
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      sum += a.values[k] * x[a.col_idx[k]];
    }
    (*y)[r] = sum;
  }
}

}  // namespace tilespmv
