#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tilespmv {

std::string LogLogHistogram(const std::vector<int64_t>& lengths,
                            int max_width) {
  int64_t max_len = 0;
  for (int64_t len : lengths) max_len = std::max(max_len, len);
  if (max_len <= 0) return "(no non-zero degrees)\n";

  // Bin b holds degrees in [2^b, 2^(b+1)).
  int num_bins = 1;
  while ((1LL << num_bins) <= max_len) ++num_bins;
  std::vector<int64_t> counts(num_bins, 0);
  for (int64_t len : lengths) {
    if (len <= 0) continue;
    int b = 0;
    while ((1LL << (b + 1)) <= len) ++b;
    ++counts[b];
  }
  int64_t max_count = *std::max_element(counts.begin(), counts.end());
  double log_max = std::log10(static_cast<double>(std::max<int64_t>(
      max_count, 2)));

  std::string out;
  char buf[128];
  for (int b = 0; b < num_bins; ++b) {
    if (counts[b] == 0) continue;
    double frac =
        std::log10(static_cast<double>(counts[b]) + 1.0) / (log_max + 0.302);
    int bar = std::max(1, static_cast<int>(frac * max_width));
    std::snprintf(buf, sizeof(buf), "%8lld-%-8lld |",
                  static_cast<long long>(1LL << b),
                  static_cast<long long>((1LL << (b + 1)) - 1));
    out += buf;
    out.append(static_cast<size_t>(bar), '#');
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(counts[b]));
    out += buf;
  }
  out +=
      "(log-binned degrees; log-scaled bars — a straight staircase is a "
      "power law)\n";
  return out;
}

std::string LogSparkline(const std::vector<double>& series) {
  if (series.empty()) return "(empty series)";
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  double lo = 1e300, hi = 0;
  for (double v : series) {
    if (v > 0) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi <= 0) return "(all zero)";
  double log_lo = std::log10(lo), log_hi = std::log10(hi);
  double span = std::max(1e-9, log_hi - log_lo);

  std::string out;
  for (double v : series) {
    int level = 0;
    if (v > 0) {
      level = static_cast<int>((std::log10(v) - log_lo) / span * 7.0);
      level = std::clamp(level, 0, 7);
    }
    out += kLevels[level];
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  [%.3g .. %.3g, log scale]", lo, hi);
  out += buf;
  return out;
}

}  // namespace tilespmv
