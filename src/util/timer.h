#ifndef TILESPMV_UTIL_TIMER_H_
#define TILESPMV_UTIL_TIMER_H_

#include <chrono>

namespace tilespmv {

/// Simple wall-clock timer. Used only for host-side measurements (CPU
/// baseline kernel, preprocessing cost); GPU timings come from the gpusim
/// cost model.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tilespmv

#endif  // TILESPMV_UTIL_TIMER_H_
