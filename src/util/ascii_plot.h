#ifndef TILESPMV_UTIL_ASCII_PLOT_H_
#define TILESPMV_UTIL_ASCII_PLOT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tilespmv {

/// Terminal visualizations for the CLI and examples — enough to eyeball the
/// two plots this project lives on: a degree distribution on log-log axes
/// (is it a power law?) and a convergence track (is the power method
/// contracting?).

/// Renders a log-binned degree histogram with log-scaled bars. Bins double
/// in width ([1], [2,3], [4,7], ...); bar length ~ log10(count). Returns a
/// multi-line string ending in '\n'; empty input yields a short notice.
std::string LogLogHistogram(const std::vector<int64_t>& lengths,
                            int max_width = 60);

/// Renders a one-line sparkline of a positive series on a log scale —
/// geometric decay (power-method convergence) shows as a straight ramp
/// down. Returns the sparkline plus min/max annotations.
std::string LogSparkline(const std::vector<double>& series);

}  // namespace tilespmv

#endif  // TILESPMV_UTIL_ASCII_PLOT_H_
