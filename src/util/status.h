#ifndef TILESPMV_UTIL_STATUS_H_
#define TILESPMV_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace tilespmv {

/// Error category for a failed operation. Mirrors the small set of failure
/// modes the library can hit: bad user input, a format that cannot represent
/// the given matrix (e.g. DIA on a power-law graph), resource exhaustion
/// (device memory, or overload sheds with a retry-after hint), I/O failures,
/// and — for the serving layer — requests shed by admission control
/// (kUnavailable) or expired in queue / cancelled mid-solve
/// (kDeadlineExceeded). Iterative solvers additionally report numerical
/// blow-ups (kNumericalError: NaN/Inf or residual divergence) and, when the
/// caller demands convergence, kDidNotConverge. docs/ROBUSTNESS.md has the
/// full taxonomy.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kUnsupportedFormat,
  kResourceExhausted,
  kIoError,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
  kNumericalError,
  kDidNotConverge,
};

/// Arrow/RocksDB-style status object. The library does not throw across API
/// boundaries; fallible operations return Status (or Result<T>).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status UnsupportedFormat(std::string msg) {
    return Status(StatusCode::kUnsupportedFormat, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status DidNotConverge(std::string msg) {
    return Status(StatusCode::kDidNotConverge, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<CODE>: <message>" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(value_); }
  const Status& status() const { return std::get<Status>(value_); }
  T& value() { return std::get<T>(value_); }
  const T& value() const { return std::get<T>(value_); }
  T&& take() { return std::move(std::get<T>(value_)); }

 private:
  std::variant<T, Status> value_;
};

#define TILESPMV_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::tilespmv::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace tilespmv

#endif  // TILESPMV_UTIL_STATUS_H_
