#ifndef TILESPMV_UTIL_CHECK_H_
#define TILESPMV_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant checks. TILESPMV_CHECK aborts with a message on violation; it is
/// used for programming errors (broken invariants), never for user input —
/// user input errors surface as Status.
#define TILESPMV_CHECK(cond)                                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define TILESPMV_CHECK_OK(expr)                                              \
  do {                                                                       \
    ::tilespmv::Status _st = (expr);                                         \
    if (!_st.ok()) {                                                         \
      std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, _st.ToString().c_str());                        \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define TILESPMV_DCHECK(cond) TILESPMV_CHECK(cond)
#else
#define TILESPMV_DCHECK(cond) \
  do {                        \
  } while (0)
#endif

#endif  // TILESPMV_UTIL_CHECK_H_
