#ifndef TILESPMV_UTIL_RANDOM_H_
#define TILESPMV_UTIL_RANDOM_H_

#include <cstdint>

namespace tilespmv {

/// PCG32: small, fast, reproducible PRNG (O'Neill 2014). Deterministic across
/// platforms, which matters because generated datasets stand in for the
/// paper's real graphs and must be identical run-to-run.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed, uint64_t stream = 0x853c49e6748fea9bULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    NextU32();
    state_ += seed;
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform value in [0, bound) without modulo bias.
  uint32_t NextBounded(uint32_t bound) {
    if (bound <= 1) return 0;
    uint32_t threshold = (~bound + 1u) % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return NextU32() * (1.0 / 4294967296.0); }

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace tilespmv

#endif  // TILESPMV_UTIL_RANDOM_H_
