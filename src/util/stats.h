#ifndef TILESPMV_UTIL_STATS_H_
#define TILESPMV_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace tilespmv {

/// Summary statistics of a length distribution (row or column lengths).
struct LengthDistribution {
  int64_t count = 0;      ///< Number of rows/columns.
  int64_t total = 0;      ///< Sum of lengths (= nnz).
  int64_t max = 0;        ///< Longest row/column.
  double mean = 0.0;
  double median = 0.0;
  /// Fraction of total nnz concentrated in the densest 1% of rows/columns.
  /// Near-uniform matrices are ~0.01; power-law graphs are typically > 0.1.
  double top1pct_mass = 0.0;
  /// Maximum-likelihood power-law exponent alpha for the tail (lengths >=
  /// xmin); 0 if the distribution is degenerate.
  double powerlaw_alpha = 0.0;
};

/// Computes summary statistics for a vector of non-negative lengths.
LengthDistribution AnalyzeLengths(const std::vector<int64_t>& lengths);

/// Continuous MLE estimate of the power-law exponent (Newman 2005, eq. 5):
/// alpha = 1 + n / sum(ln(x_i / xmin)) over x_i >= xmin. Returns 0 if fewer
/// than 10 samples qualify.
double EstimatePowerLawAlpha(const std::vector<int64_t>& lengths,
                             int64_t xmin);

/// Heuristic power-law detector used to classify datasets the way the paper's
/// Table 2 does: skewed length distribution with a heavy tail.
bool LooksPowerLaw(const LengthDistribution& dist);

/// Linearly-interpolated q-th percentile (q in [0, 100]) of a sample, taken
/// by value because it sorts. Returns 0 for an empty sample. Used by the
/// serving layer for latency p50/p95/p99.
double Percentile(std::vector<double> values, double q);

}  // namespace tilespmv

#endif  // TILESPMV_UTIL_STATS_H_
