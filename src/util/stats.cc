#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace tilespmv {

LengthDistribution AnalyzeLengths(const std::vector<int64_t>& lengths) {
  LengthDistribution d;
  d.count = static_cast<int64_t>(lengths.size());
  if (d.count == 0) return d;

  std::vector<int64_t> sorted = lengths;
  std::sort(sorted.begin(), sorted.end());
  for (int64_t len : sorted) d.total += len;
  d.max = sorted.back();
  d.mean = static_cast<double>(d.total) / static_cast<double>(d.count);
  d.median = static_cast<double>(sorted[sorted.size() / 2]);

  int64_t top_n = std::max<int64_t>(1, d.count / 100);
  int64_t top_mass = 0;
  for (int64_t i = d.count - top_n; i < d.count; ++i) top_mass += sorted[i];
  d.top1pct_mass =
      d.total > 0 ? static_cast<double>(top_mass) / static_cast<double>(d.total)
                  : 0.0;

  // Use a small xmin so the bulk of the tail participates in the fit.
  int64_t xmin = std::max<int64_t>(2, static_cast<int64_t>(d.mean));
  d.powerlaw_alpha = EstimatePowerLawAlpha(lengths, xmin);
  return d;
}

double EstimatePowerLawAlpha(const std::vector<int64_t>& lengths,
                             int64_t xmin) {
  if (xmin < 1) xmin = 1;
  double log_sum = 0.0;
  int64_t n = 0;
  for (int64_t len : lengths) {
    if (len >= xmin) {
      log_sum += std::log(static_cast<double>(len) /
                          (static_cast<double>(xmin) - 0.5));
      ++n;
    }
  }
  if (n < 10 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 100.0);
  double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

bool LooksPowerLaw(const LengthDistribution& dist) {
  if (dist.count < 100 || dist.total <= 0) return false;
  // A heavy tail: the densest 1% of rows/columns carries far more than 1% of
  // the mass, and the max is much larger than the mean.
  bool heavy_tail = dist.top1pct_mass > 0.08;
  bool skewed_max = dist.max > 20.0 * std::max(1.0, dist.mean);
  return heavy_tail && skewed_max;
}

}  // namespace tilespmv
