#include "util/status.h"

namespace tilespmv {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnsupportedFormat:
      return "UNSUPPORTED_FORMAT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kNumericalError:
      return "NUMERICAL_ERROR";
    case StatusCode::kDidNotConverge:
      return "DID_NOT_CONVERGE";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace tilespmv
