#ifndef TILESPMV_SIMD_KERNELS_H_
#define TILESPMV_SIMD_KERNELS_H_

#include <cstdint>

#include "simd/caps.h"

namespace tilespmv::simd {

/// CSR row-range kernel: y[r] = dot(row r of A, x) for r in [r0, r1).
///
/// Determinism: the vector tiers accumulate each row in LaneWidth partial
/// sums combined by a fixed pairwise tree (and use FMA inside the body), so
/// for a given tier the result is identical at every thread count and on
/// every run — but NOT bitwise-equal to the sequential scalar sum. Kernels
/// built on this are tolerance class (docs/SIMD.md).
using CsrRowsFn = void (*)(const int64_t* row_ptr, const int32_t* col_idx,
                           const float* values, const float* x, float* y,
                           int64_t r0, int64_t r1);

/// SpMM panel micro-kernel over a row-major-interleaved dense panel of
/// width k (1..16): y[r*k + j] = sum_e values[e] * x[col_idx[e]*k + j].
///
/// Determinism: the matrix value is broadcast across the panel row and
/// combined with separate mul and add ops (never contracted to FMA), so the
/// per-lane operation order matches the scalar panel loop exactly — every
/// tier is bitwise identical to scalar.
using SpmmRowsFn = void (*)(const int64_t* row_ptr, const int32_t* col_idx,
                            const float* values, const float* x, float* y,
                            int k, int64_t r0, int64_t r1);

/// SELL-C slice storage view (built by SellSimdKernel::Setup). Rows are
/// grouped into slices of `c` consecutive rows; within a slice the storage
/// is column-major — entry (lane, j) of slice s lives at
/// slice_off[s] + j*c + lane — padded to the slice's widest row. Rows
/// inside a slice are sorted by descending length (the sigma window sort),
/// so the lanes still active at column j form a prefix whose length is
/// active[slice_off[s]/c + j]. Padding lanes carry col 0 / value 0 but are
/// never active.
struct SellView {
  int c = 1;              ///< Slice height (= LaneWidth of the build tier).
  int32_t rows = 0;       ///< Logical rows (last slice may be partial).
  int64_t num_slices = 0;
  const int64_t* slice_off = nullptr;    ///< num_slices + 1 entry offsets.
  const int32_t* slice_width = nullptr;  ///< Padded row length per slice.
  const int32_t* active = nullptr;       ///< Active lane count per column.
  const int32_t* cols = nullptr;
  const float* vals = nullptr;
};

/// SELL slice-range kernel: computes y for the rows of slices [s0, s1).
///
/// Determinism: lane = row, so each row's accumulation order equals its
/// storage (CSR entry) order; inactive lanes are preserved with a blend /
/// masked add, never an add-of-zero. Every tier is bitwise identical to
/// the scalar reference. Vector tiers require m.c == LaneWidth(tier).
using SellSlicesFn = void (*)(const SellView& m, const float* x, float* y,
                              int64_t s0, int64_t s1);

/// Dispatch: the best implementation for `t`, falling back to scalar when
/// the tier's translation unit is compiled out of this binary.
CsrRowsFn CsrRowsForTier(Tier t);
SpmmRowsFn SpmmRowsForTier(Tier t);
SellSlicesFn SellSlicesForTier(Tier t);

// Per-ISA entry points (internal; use the ForTier dispatchers). Each lives
// in a translation unit compiled with that ISA's flags and
// -ffp-contract=off, so the bitwise contracts above survive optimization.
void CsrRowsScalar(const int64_t* row_ptr, const int32_t* col_idx,
                   const float* values, const float* x, float* y, int64_t r0,
                   int64_t r1);
void SpmmRowsScalar(const int64_t* row_ptr, const int32_t* col_idx,
                    const float* values, const float* x, float* y, int k,
                    int64_t r0, int64_t r1);
void SellSlicesScalar(const SellView& m, const float* x, float* y, int64_t s0,
                      int64_t s1);
#if defined(TILESPMV_HAVE_AVX2)
void CsrRowsAvx2(const int64_t* row_ptr, const int32_t* col_idx,
                 const float* values, const float* x, float* y, int64_t r0,
                 int64_t r1);
void SpmmRowsAvx2(const int64_t* row_ptr, const int32_t* col_idx,
                  const float* values, const float* x, float* y, int k,
                  int64_t r0, int64_t r1);
void SellSlicesAvx2(const SellView& m, const float* x, float* y, int64_t s0,
                    int64_t s1);
#endif
#if defined(TILESPMV_HAVE_AVX512)
void CsrRowsAvx512(const int64_t* row_ptr, const int32_t* col_idx,
                   const float* values, const float* x, float* y, int64_t r0,
                   int64_t r1);
void SpmmRowsAvx512(const int64_t* row_ptr, const int32_t* col_idx,
                    const float* values, const float* x, float* y, int k,
                    int64_t r0, int64_t r1);
void SellSlicesAvx512(const SellView& m, const float* x, float* y, int64_t s0,
                      int64_t s1);
#endif

}  // namespace tilespmv::simd

#endif  // TILESPMV_SIMD_KERNELS_H_
