// AVX2 (8 x f32) implementations. Compiled with -mavx2 -mfma
// -ffp-contract=off: FMA is used only where written explicitly (the
// tolerance-class CSR dot products), never injected by the compiler into
// the bitwise-contract kernels (SpMM panels, SELL slices).
#include "simd/kernels.h"

#if defined(TILESPMV_HAVE_AVX2)

#include <immintrin.h>

namespace tilespmv::simd {
namespace {

/// Fixed pairwise reduction tree over 8 lanes:
/// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)). The tree shape is part of the
/// kernel's determinism contract — it never varies with row length or
/// thread count.
inline float Hsum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);                 // lane i + lane i+4
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));        // + lane i+2
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));  // + lane 1
  return _mm_cvtss_f32(s);
}

/// masks[n] has the low n 32-bit lanes all-ones — the maskload/maskstore
/// and blend operand for an n-lane prefix.
inline __m256i PrefixMask(int n) {
  alignas(32) static const int32_t kRows[9][8] = {
      {0, 0, 0, 0, 0, 0, 0, 0},
      {-1, 0, 0, 0, 0, 0, 0, 0},
      {-1, -1, 0, 0, 0, 0, 0, 0},
      {-1, -1, -1, 0, 0, 0, 0, 0},
      {-1, -1, -1, -1, 0, 0, 0, 0},
      {-1, -1, -1, -1, -1, 0, 0, 0},
      {-1, -1, -1, -1, -1, -1, 0, 0},
      {-1, -1, -1, -1, -1, -1, -1, 0},
      {-1, -1, -1, -1, -1, -1, -1, -1},
  };
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(kRows[n]));
}

}  // namespace

void CsrRowsAvx2(const int64_t* row_ptr, const int32_t* col_idx,
                 const float* values, const float* x, float* y, int64_t r0,
                 int64_t r1) {
  for (int64_t r = r0; r < r1; ++r) {
    const int64_t b = row_ptr[r];
    const int64_t e = row_ptr[r + 1];
    const int64_t n = e - b;
    // Degree 0..8 — the bulk of a power-law distribution — is one masked
    // lane-parallel pass with no inner branch: consecutive rows have no data
    // dependency, so their gathers and reduction trees pipeline across loop
    // iterations instead of serializing on a per-element scalar chain.
    if (n <= 8) {
      const __m256i mask = PrefixMask(static_cast<int>(n));
      const __m256i c = _mm256_maskload_epi32(col_idx + b, mask);
      const __m256 g = _mm256_mask_i32gather_ps(
          _mm256_setzero_ps(), x, c, _mm256_castsi256_ps(mask), 4);
      y[r] = Hsum8(_mm256_mul_ps(_mm256_maskload_ps(values + b, mask), g));
      continue;
    }
    // Degree 9..16: one full vector plus one masked remainder, still
    // branch-free inside the row.
    if (n <= 16) {
      const __m256i c0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col_idx + b));
      __m256 acc = _mm256_mul_ps(_mm256_loadu_ps(values + b),
                                 _mm256_i32gather_ps(x, c0, 4));
      const __m256i mask = PrefixMask(static_cast<int>(n - 8));
      const __m256i c1 = _mm256_maskload_epi32(col_idx + b + 8, mask);
      const __m256 g1 = _mm256_mask_i32gather_ps(
          _mm256_setzero_ps(), x, c1, _mm256_castsi256_ps(mask), 4);
      acc = _mm256_fmadd_ps(_mm256_maskload_ps(values + b + 8, mask), g1,
                            acc);
      y[r] = Hsum8(acc);
      continue;
    }
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    int64_t i = b;
    // Two independent accumulators per 16 entries break the FP add latency
    // chain that bounds the scalar loop.
    for (; i + 16 <= e; i += 16) {
      _mm_prefetch(reinterpret_cast<const char*>(col_idx + i) + 256,
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(values + i) + 256,
                   _MM_HINT_T0);
      if (i + 32 <= e) {
        // Warm the x gathers one block ahead; two touches per block cover
        // the common case of column locality within a row.
        _mm_prefetch(reinterpret_cast<const char*>(x + col_idx[i + 16]),
                     _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(x + col_idx[i + 24]),
                     _MM_HINT_T0);
      }
      const __m256i c0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col_idx + i));
      const __m256i c1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(col_idx + i + 8));
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(values + i),
                             _mm256_i32gather_ps(x, c0, 4), acc0);
      acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(values + i + 8),
                             _mm256_i32gather_ps(x, c1, 4), acc1);
    }
    for (; i + 8 <= e; i += 8) {
      const __m256i c =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col_idx + i));
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(values + i),
                             _mm256_i32gather_ps(x, c, 4), acc0);
    }
    const int tail = static_cast<int>(e - i);
    if (tail > 0) {
      // Masked tail: maskload suppresses the out-of-row element loads and
      // the masked gather only touches x for active lanes.
      const __m256i mask = PrefixMask(tail);
      const __m256i c = _mm256_maskload_epi32(col_idx + i, mask);
      const __m256 g = _mm256_mask_i32gather_ps(
          _mm256_setzero_ps(), x, c, _mm256_castsi256_ps(mask), 4);
      acc1 = _mm256_fmadd_ps(_mm256_maskload_ps(values + i, mask), g, acc1);
    }
    y[r] = Hsum8(_mm256_add_ps(acc0, acc1));
  }
}

void SpmmRowsAvx2(const int64_t* row_ptr, const int32_t* col_idx,
                  const float* values, const float* x, float* y, int k,
                  int64_t r0, int64_t r1) {
  // Every arm pairs _mm*_mul_ps with _mm*_add_ps — with contraction off the
  // per-lane order is exactly acc[j] += v * xs[j], keeping the panel
  // bitwise identical to SpmmRowsScalar.
  switch (k) {
    case 16:
      for (int64_t r = r0; r < r1; ++r) {
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        const int64_t e1 = row_ptr[r + 1];
        for (int64_t e = row_ptr[r]; e < e1; ++e) {
          if (e + 1 < e1) {
            _mm_prefetch(reinterpret_cast<const char*>(
                             x + static_cast<size_t>(col_idx[e + 1]) * 16),
                         _MM_HINT_T0);
          }
          const __m256 v = _mm256_set1_ps(values[e]);
          const float* xs = x + static_cast<size_t>(col_idx[e]) * 16;
          acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(v, _mm256_loadu_ps(xs)));
          acc1 =
              _mm256_add_ps(acc1, _mm256_mul_ps(v, _mm256_loadu_ps(xs + 8)));
        }
        _mm256_storeu_ps(y + static_cast<size_t>(r) * 16, acc0);
        _mm256_storeu_ps(y + static_cast<size_t>(r) * 16 + 8, acc1);
      }
      return;
    case 8:
      for (int64_t r = r0; r < r1; ++r) {
        __m256 acc = _mm256_setzero_ps();
        const int64_t e1 = row_ptr[r + 1];
        for (int64_t e = row_ptr[r]; e < e1; ++e) {
          if (e + 1 < e1) {
            _mm_prefetch(reinterpret_cast<const char*>(
                             x + static_cast<size_t>(col_idx[e + 1]) * 8),
                         _MM_HINT_T0);
          }
          const __m256 v = _mm256_set1_ps(values[e]);
          const float* xs = x + static_cast<size_t>(col_idx[e]) * 8;
          acc = _mm256_add_ps(acc, _mm256_mul_ps(v, _mm256_loadu_ps(xs)));
        }
        _mm256_storeu_ps(y + static_cast<size_t>(r) * 8, acc);
      }
      return;
    case 4:
      for (int64_t r = r0; r < r1; ++r) {
        __m128 acc = _mm_setzero_ps();
        const int64_t e1 = row_ptr[r + 1];
        for (int64_t e = row_ptr[r]; e < e1; ++e) {
          const __m128 v = _mm_set1_ps(values[e]);
          const float* xs = x + static_cast<size_t>(col_idx[e]) * 4;
          acc = _mm_add_ps(acc, _mm_mul_ps(v, _mm_loadu_ps(xs)));
        }
        _mm_storeu_ps(y + static_cast<size_t>(r) * 4, acc);
      }
      return;
    default:
      // k = 1/2 (and any irregular width): the panel is too narrow for a
      // vector register; the scalar loop is already the right shape.
      SpmmRowsScalar(row_ptr, col_idx, values, x, y, k, r0, r1);
      return;
  }
}

void SellSlicesAvx2(const SellView& m, const float* x, float* y, int64_t s0,
                    int64_t s1) {
  if (m.c != 8) {
    SellSlicesScalar(m, x, y, s0, s1);
    return;
  }
  for (int64_t s = s0; s < s1; ++s) {
    const int64_t off = m.slice_off[s];
    const int32_t width = m.slice_width[s];
    const int64_t active_base = off / 8;
    const int64_t base_row = s * 8;
    const int live =
        static_cast<int>(base_row + 8 <= m.rows ? 8 : m.rows - base_row);
    __m256 acc = _mm256_setzero_ps();
    for (int32_t j = 0; j < width; ++j) {
      const int64_t col_off = off + static_cast<int64_t>(j) * 8;
      _mm_prefetch(reinterpret_cast<const char*>(m.cols + col_off) + 256,
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(m.vals + col_off) + 256,
                   _MM_HINT_T0);
      const int act = m.active[active_base + j];
      const __m256i c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(m.cols + col_off));
      const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(m.vals + col_off),
                                        _mm256_i32gather_ps(x, c, 4));
      if (act == 8) {
        acc = _mm256_add_ps(acc, prod);
      } else {
        // Blend after the add: lanes whose row ended before column j keep
        // their accumulator bit-for-bit (an add of +0.0 would flip -0.0).
        acc = _mm256_blendv_ps(acc, _mm256_add_ps(acc, prod),
                               _mm256_castsi256_ps(PrefixMask(act)));
      }
    }
    if (live == 8) {
      _mm256_storeu_ps(y + base_row, acc);
    } else {
      _mm256_maskstore_ps(y + base_row, PrefixMask(live), acc);
    }
  }
}

}  // namespace tilespmv::simd

#endif  // TILESPMV_HAVE_AVX2
