#ifndef TILESPMV_SIMD_CAPS_H_
#define TILESPMV_SIMD_CAPS_H_

#include <string>

#include "util/status.h"

namespace tilespmv::obs {
class MetricsRegistry;
}  // namespace tilespmv::obs

namespace tilespmv::simd {

/// Host vector ISA tier a kernel can execute at. Ordered: a higher tier
/// strictly implies the lower ones, so clamping down is always safe.
enum class Tier {
  kScalar = 0,  ///< Portable reference path — always available.
  kAvx2 = 1,    ///< 8 x f32 lanes (AVX2 + FMA-capable hardware; see SIMD.md).
  kAvx512 = 2,  ///< 16 x f32 lanes (requires F + DQ + BW + VL).
};

/// "scalar" | "avx2" | "avx512".
const char* TierName(Tier t);

/// f32 lanes per vector register at `t`: 1 / 8 / 16.
int LaneWidth(Tier t);

/// Parses a tier spelling. Accepts "off" and "scalar" (both -> kScalar),
/// "avx2", "avx512", and "auto" (-> best available).
Result<Tier> ParseTier(const std::string& text);

/// What this host and this binary can run.
struct Caps {
  bool avx2 = false;            ///< CPU reports AVX2.
  bool avx512 = false;          ///< CPU reports AVX-512 F+DQ+BW+VL.
  bool compiled_avx2 = false;   ///< Binary contains the AVX2 kernels.
  bool compiled_avx512 = false; ///< Binary contains the AVX-512 kernels.

  /// Highest tier both detected on the CPU and compiled into the binary.
  Tier best() const;
  /// True when `t` is runnable here (scalar always is).
  bool Supports(Tier t) const;
};

/// cpuid-backed capability probe; detection runs once and is cached.
const Caps& DetectCaps();

/// The tier SIMD-aware kernels freeze into their plan at Setup() time.
/// Precedence: SetTierOverride() (spmv_cli --simd=) > the TILESPMV_SIMD
/// env var > auto-detection. Env requests above the host's capability are
/// clamped down (so TILESPMV_SIMD=avx512 degrades gracefully on an AVX2
/// CI runner); an unparsable env value is ignored. Explicit overrides are
/// validated strictly by SetTierOverride instead.
Tier ResolvedTier();

/// Forces ResolvedTier() to `t`. Fails (kInvalidArgument) when the host or
/// the binary cannot run `t`; kScalar is always accepted.
Status SetTierOverride(Tier t);

/// Reverts SetTierOverride; ResolvedTier() falls back to env/auto.
void ClearTierOverride();

/// Publishes tilespmv_simd_tier (0=scalar 1=avx2 2=avx512) and the
/// per-tier availability gauges to `registry` (nullptr = the global
/// registry). The serving engine refreshes these into its own registry so
/// the /metrics export carries the tier its plans resolve at.
void PublishMetrics(obs::MetricsRegistry* registry = nullptr);

}  // namespace tilespmv::simd

#endif  // TILESPMV_SIMD_CAPS_H_
