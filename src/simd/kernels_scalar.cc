// Portable reference implementations of the SIMD kernel entry points, plus
// the runtime dispatch tables. This TU is compiled with the project's
// default flags (no ISA extensions, no contraction), so the scalar loops
// here are bit-for-bit the same code the pre-SIMD kernels ran.
#include "simd/kernels.h"

namespace tilespmv::simd {

void CsrRowsScalar(const int64_t* row_ptr, const int32_t* col_idx,
                   const float* values, const float* x, float* y, int64_t r0,
                   int64_t r1) {
  for (int64_t r = r0; r < r1; ++r) {
    float sum = 0.0f;
    for (int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      sum += values[e] * x[col_idx[e]];
    }
    y[r] = sum;
  }
}

void SpmmRowsScalar(const int64_t* row_ptr, const int32_t* col_idx,
                    const float* values, const float* x, float* y, int k,
                    int64_t r0, int64_t r1) {
  float acc[16];
  for (int64_t r = r0; r < r1; ++r) {
    for (int j = 0; j < k; ++j) acc[j] = 0.0f;
    for (int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const float v = values[e];
      const float* xs = &x[static_cast<size_t>(col_idx[e]) * k];
      for (int j = 0; j < k; ++j) acc[j] += v * xs[j];
    }
    float* ys = &y[static_cast<size_t>(r) * k];
    for (int j = 0; j < k; ++j) ys[j] = acc[j];
  }
}

void SellSlicesScalar(const SellView& m, const float* x, float* y, int64_t s0,
                      int64_t s1) {
  float acc[16];  // c never exceeds LaneWidth(kAvx512) == 16.
  for (int64_t s = s0; s < s1; ++s) {
    const int64_t off = m.slice_off[s];
    const int32_t width = m.slice_width[s];
    const int64_t active_base = off / m.c;
    const int64_t base_row = s * m.c;
    const int live =
        static_cast<int>(base_row + m.c <= m.rows ? m.c : m.rows - base_row);
    for (int lane = 0; lane < live; ++lane) acc[lane] = 0.0f;
    for (int32_t j = 0; j < width; ++j) {
      const int act = m.active[active_base + j];
      const int64_t col_off = off + static_cast<int64_t>(j) * m.c;
      for (int lane = 0; lane < act; ++lane) {
        acc[lane] += m.vals[col_off + lane] * x[m.cols[col_off + lane]];
      }
    }
    for (int lane = 0; lane < live; ++lane) y[base_row + lane] = acc[lane];
  }
}

CsrRowsFn CsrRowsForTier(Tier t) {
  switch (t) {
#if defined(TILESPMV_HAVE_AVX512)
    case Tier::kAvx512:
      return &CsrRowsAvx512;
#endif
#if defined(TILESPMV_HAVE_AVX2)
    case Tier::kAvx2:
      return &CsrRowsAvx2;
#endif
    default:
      return &CsrRowsScalar;
  }
}

SpmmRowsFn SpmmRowsForTier(Tier t) {
  switch (t) {
#if defined(TILESPMV_HAVE_AVX512)
    case Tier::kAvx512:
      return &SpmmRowsAvx512;
#endif
#if defined(TILESPMV_HAVE_AVX2)
    case Tier::kAvx2:
      return &SpmmRowsAvx2;
#endif
    default:
      return &SpmmRowsScalar;
  }
}

SellSlicesFn SellSlicesForTier(Tier t) {
  switch (t) {
#if defined(TILESPMV_HAVE_AVX512)
    case Tier::kAvx512:
      return &SellSlicesAvx512;
#endif
#if defined(TILESPMV_HAVE_AVX2)
    case Tier::kAvx2:
      return &SellSlicesAvx2;
#endif
    default:
      return &SellSlicesScalar;
  }
}

}  // namespace tilespmv::simd
