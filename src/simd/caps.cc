#include "simd/caps.h"

#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"

namespace tilespmv::simd {
namespace {

/// -1 = no override; otherwise the Tier forced by SetTierOverride.
std::atomic<int> g_override{-1};

Tier DetectFromCpu(const Caps& caps) { return caps.best(); }

/// Env request, parsed once. Invalid spellings fall back to auto; requests
/// the host cannot satisfy clamp down to the best runnable tier.
Tier EnvOrAutoTier() {
  static const Tier cached = [] {
    const Caps& caps = DetectCaps();
    if (const char* env = std::getenv("TILESPMV_SIMD")) {
      Result<Tier> parsed = ParseTier(env);
      if (parsed.ok()) {
        Tier want = parsed.value();
        while (!caps.Supports(want)) {
          want = static_cast<Tier>(static_cast<int>(want) - 1);
        }
        return want;
      }
    }
    return DetectFromCpu(caps);
  }();
  return cached;
}

}  // namespace

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "scalar";
}

int LaneWidth(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return 1;
    case Tier::kAvx2:
      return 8;
    case Tier::kAvx512:
      return 16;
  }
  return 1;
}

Result<Tier> ParseTier(const std::string& text) {
  if (text == "off" || text == "scalar") return Tier::kScalar;
  if (text == "avx2") return Tier::kAvx2;
  if (text == "avx512") return Tier::kAvx512;
  if (text == "auto") return DetectCaps().best();
  return Status::InvalidArgument(
      "unknown SIMD tier '" + text + "' (want off|scalar|avx2|avx512|auto)");
}

Tier Caps::best() const {
  if (avx512 && compiled_avx512) return Tier::kAvx512;
  if (avx2 && compiled_avx2) return Tier::kAvx2;
  return Tier::kScalar;
}

bool Caps::Supports(Tier t) const {
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return avx2 && compiled_avx2;
    case Tier::kAvx512:
      return avx512 && compiled_avx512;
  }
  return false;
}

const Caps& DetectCaps() {
  static const Caps caps = [] {
    Caps c;
#if defined(TILESPMV_HAVE_AVX2)
    c.compiled_avx2 = true;
#endif
#if defined(TILESPMV_HAVE_AVX512)
    c.compiled_avx512 = true;
#endif
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    // The AVX2 CSR kernel uses FMA intrinsics, so both bits are required.
    c.avx2 = __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    // The f32 kernels use masked ops (VL/BW/DQ), not just the F foundation.
    c.avx512 = __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512dq") &&
               __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512vl");
#endif
    return c;
  }();
  return caps;
}

Tier ResolvedTier() {
  int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  return EnvOrAutoTier();
}

Status SetTierOverride(Tier t) {
  if (!DetectCaps().Supports(t)) {
    return Status::InvalidArgument(
        std::string("SIMD tier '") + TierName(t) +
        "' is not available on this host/binary (best: " +
        TierName(DetectCaps().best()) + ")");
  }
  g_override.store(static_cast<int>(t), std::memory_order_relaxed);
  return Status::OK();
}

void ClearTierOverride() {
  g_override.store(-1, std::memory_order_relaxed);
}

void PublishMetrics(obs::MetricsRegistry* into) {
  obs::MetricsRegistry& registry =
      into != nullptr ? *into : obs::MetricsRegistry::Global();
  registry
      .GetGauge("tilespmv_simd_tier",
                "Resolved host SIMD tier (0=scalar 1=avx2 2=avx512)")
      ->Set(static_cast<double>(static_cast<int>(ResolvedTier())));
  const Caps& caps = DetectCaps();
  registry
      .GetGauge("tilespmv_simd_avx2_available",
                "1 when the AVX2 kernels are compiled in and the CPU "
                "reports AVX2")
      ->Set(caps.Supports(Tier::kAvx2) ? 1.0 : 0.0);
  registry
      .GetGauge("tilespmv_simd_avx512_available",
                "1 when the AVX-512 kernels are compiled in and the CPU "
                "reports AVX-512 F+DQ+BW+VL")
      ->Set(caps.Supports(Tier::kAvx512) ? 1.0 : 0.0);
}

}  // namespace tilespmv::simd
