// AVX-512 (16 x f32) implementations. Requires F+DQ+BW+VL (masked f32 ops).
// Compiled with -ffp-contract=off: FMA appears only where written (the
// tolerance-class CSR dot products), never inside the bitwise-contract
// kernels (SpMM panels, SELL slices).
#include "simd/kernels.h"

#if defined(TILESPMV_HAVE_AVX512)

#include <immintrin.h>

namespace tilespmv::simd {
namespace {

/// Fixed pairwise tree: halves 512 -> 256 -> the 8-lane tree. The shape is
/// part of the determinism contract.
inline float Hsum16(__m512 v) {
  __m256 lo = _mm512_castps512_ps256(v);
  __m256 hi = _mm512_extractf32x8_ps(v, 1);
  __m256 s8 = _mm256_add_ps(lo, hi);             // lane i + lane i+8
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(s8),
                        _mm256_extractf128_ps(s8, 1));  // + lane i+4
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));        // + lane i+2
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));  // + lane 1
  return _mm_cvtss_f32(s);
}

inline __mmask16 PrefixMask16(int n) {
  return static_cast<__mmask16>((1u << n) - 1u);
}

/// The 8-lane tree from the AVX2 kernel, reused for short rows where a
/// 256-bit masked pass beats a half-empty 512-bit one.
inline float Hsum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);                 // lane i + lane i+4
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));        // + lane i+2
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));  // + lane 1
  return _mm_cvtss_f32(s);
}

}  // namespace

void CsrRowsAvx512(const int64_t* row_ptr, const int32_t* col_idx,
                   const float* values, const float* x, float* y, int64_t r0,
                   int64_t r1) {
  for (int64_t r = r0; r < r1; ++r) {
    const int64_t b = row_ptr[r];
    const int64_t e = row_ptr[r + 1];
    const int64_t n = e - b;
    // Degree 0..8 — the bulk of a power-law distribution — runs as one
    // masked 256-bit pass (AVX-512VL): a half-empty 512-bit gather and the
    // deeper Hsum16 tree would only add latency. No inner branch, so
    // independent rows pipeline their gathers across loop iterations.
    if (n <= 8) {
      const __mmask8 mask = static_cast<__mmask8>((1u << n) - 1u);
      const __m256i c = _mm256_maskz_loadu_epi32(mask, col_idx + b);
      const __m256 g =
          _mm256_mmask_i32gather_ps(_mm256_setzero_ps(), mask, c, x, 4);
      y[r] = Hsum8(_mm256_mul_ps(_mm256_maskz_loadu_ps(mask, values + b), g));
      continue;
    }
    // Degree 9..16: one masked 16-lane pass, still branch-free in the row.
    if (n <= 16) {
      const __mmask16 mask = PrefixMask16(static_cast<int>(n));
      const __m512i c = _mm512_maskz_loadu_epi32(mask, col_idx + b);
      const __m512 g =
          _mm512_mask_i32gather_ps(_mm512_setzero_ps(), mask, c, x, 4);
      y[r] = Hsum16(_mm512_mul_ps(_mm512_maskz_loadu_ps(mask, values + b), g));
      continue;
    }
    // Degree 17..32: one full vector plus one masked remainder.
    if (n <= 32) {
      const __m512i c0 = _mm512_loadu_si512(col_idx + b);
      __m512 acc = _mm512_mul_ps(_mm512_loadu_ps(values + b),
                                 _mm512_i32gather_ps(c0, x, 4));
      const __mmask16 mask = PrefixMask16(static_cast<int>(n - 16));
      const __m512i c1 = _mm512_maskz_loadu_epi32(mask, col_idx + b + 16);
      const __m512 g1 =
          _mm512_mask_i32gather_ps(_mm512_setzero_ps(), mask, c1, x, 4);
      acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, values + b + 16), g1,
                            acc);
      y[r] = Hsum16(acc);
      continue;
    }
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    int64_t i = b;
    for (; i + 32 <= e; i += 32) {
      _mm_prefetch(reinterpret_cast<const char*>(col_idx + i) + 512,
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(values + i) + 512,
                   _MM_HINT_T0);
      if (i + 64 <= e) {
        _mm_prefetch(reinterpret_cast<const char*>(x + col_idx[i + 32]),
                     _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(x + col_idx[i + 48]),
                     _MM_HINT_T0);
      }
      const __m512i c0 = _mm512_loadu_si512(col_idx + i);
      const __m512i c1 = _mm512_loadu_si512(col_idx + i + 16);
      acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(values + i),
                             _mm512_i32gather_ps(c0, x, 4), acc0);
      acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(values + i + 16),
                             _mm512_i32gather_ps(c1, x, 4), acc1);
    }
    for (; i + 16 <= e; i += 16) {
      const __m512i c = _mm512_loadu_si512(col_idx + i);
      acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(values + i),
                             _mm512_i32gather_ps(c, x, 4), acc0);
    }
    const int tail = static_cast<int>(e - i);
    if (tail > 0) {
      const __mmask16 mask = PrefixMask16(tail);
      const __m512i c = _mm512_maskz_loadu_epi32(mask, col_idx + i);
      const __m512 g = _mm512_mask_i32gather_ps(_mm512_setzero_ps(), mask, c,
                                                x, 4);
      acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, values + i), g,
                             acc1);
    }
    y[r] = Hsum16(_mm512_add_ps(acc0, acc1));
  }
}

void SpmmRowsAvx512(const int64_t* row_ptr, const int32_t* col_idx,
                    const float* values, const float* x, float* y, int k,
                    int64_t r0, int64_t r1) {
  switch (k) {
    case 16:
      for (int64_t r = r0; r < r1; ++r) {
        __m512 acc = _mm512_setzero_ps();
        const int64_t e1 = row_ptr[r + 1];
        for (int64_t e = row_ptr[r]; e < e1; ++e) {
          if (e + 1 < e1) {
            _mm_prefetch(reinterpret_cast<const char*>(
                             x + static_cast<size_t>(col_idx[e + 1]) * 16),
                         _MM_HINT_T0);
          }
          const __m512 v = _mm512_set1_ps(values[e]);
          const float* xs = x + static_cast<size_t>(col_idx[e]) * 16;
          acc = _mm512_add_ps(acc, _mm512_mul_ps(v, _mm512_loadu_ps(xs)));
        }
        _mm512_storeu_ps(y + static_cast<size_t>(r) * 16, acc);
      }
      return;
    default:
      // Narrower panels use the 256/128-bit arms, identical to AVX2.
#if defined(TILESPMV_HAVE_AVX2)
      SpmmRowsAvx2(row_ptr, col_idx, values, x, y, k, r0, r1);
#else
      SpmmRowsScalar(row_ptr, col_idx, values, x, y, k, r0, r1);
#endif
      return;
  }
}

void SellSlicesAvx512(const SellView& m, const float* x, float* y, int64_t s0,
                      int64_t s1) {
  if (m.c != 16) {
    SellSlicesScalar(m, x, y, s0, s1);
    return;
  }
  for (int64_t s = s0; s < s1; ++s) {
    const int64_t off = m.slice_off[s];
    const int32_t width = m.slice_width[s];
    const int64_t active_base = off / 16;
    const int64_t base_row = s * 16;
    const int live =
        static_cast<int>(base_row + 16 <= m.rows ? 16 : m.rows - base_row);
    __m512 acc = _mm512_setzero_ps();
    for (int32_t j = 0; j < width; ++j) {
      const int64_t col_off = off + static_cast<int64_t>(j) * 16;
      _mm_prefetch(reinterpret_cast<const char*>(m.cols + col_off) + 512,
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(m.vals + col_off) + 512,
                   _MM_HINT_T0);
      const int act = m.active[active_base + j];
      const __mmask16 mask = PrefixMask16(act);
      const __m512i c = _mm512_loadu_si512(m.cols + col_off);
      const __m512 prod = _mm512_mul_ps(_mm512_loadu_ps(m.vals + col_off),
                                        _mm512_i32gather_ps(c, x, 4));
      // Masked add preserves ended-row lanes bit-for-bit.
      acc = _mm512_mask_add_ps(acc, mask, acc, prod);
    }
    if (live == 16) {
      _mm512_storeu_ps(y + base_row, acc);
    } else {
      _mm512_mask_storeu_ps(y + base_row, PrefixMask16(live), acc);
    }
  }
}

}  // namespace tilespmv::simd

#endif  // TILESPMV_HAVE_AVX512
