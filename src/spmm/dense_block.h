#ifndef TILESPMV_SPMM_DENSE_BLOCK_H_
#define TILESPMV_SPMM_DENSE_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tilespmv::spmm {

/// Supported panel widths. Fixed so every blocked kernel's inner loop is a
/// small compile-time-friendly trip count and so autotuning sweeps a short
/// discrete axis (mirroring the paper's fixed workload-size grid).
inline constexpr int kBlockWidths[] = {1, 2, 4, 8, 16};
inline constexpr int kMaxBlockCols = 16;

/// Returns true when `k` is one of kBlockWidths.
bool IsValidBlockCols(int k);

/// The largest valid width <= `limit` (at least 1).
int LargestBlockColsAtMost(int limit);

/// A dense panel of `cols` vectors of length `rows`, stored row-major
/// (`data[r * cols + j]` is row r of vector j). Row-major interleaving is
/// the point of the subsystem: one gather of a matrix column touches the k
/// panel entries contiguously, so the per-nonzero x traffic a blocked sweep
/// pays is one cache line instead of k scattered floats.
struct DenseBlock {
  int32_t rows = 0;
  int cols = 0;
  std::vector<float> data;

  DenseBlock() = default;
  DenseBlock(int32_t r, int c) { Resize(r, c); }

  void Resize(int32_t r, int c, float value = 0.0f) {
    rows = r;
    cols = c;
    data.assign(static_cast<size_t>(r) * static_cast<size_t>(c), value);
  }

  float& at(int32_t r, int j) {
    return data[static_cast<size_t>(r) * cols + static_cast<size_t>(j)];
  }
  float at(int32_t r, int j) const {
    return data[static_cast<size_t>(r) * cols + static_cast<size_t>(j)];
  }

  /// Copies vector `j` out as a plain std::vector (the SpMV-compatible
  /// view used by the agreement tests and the serving result path).
  void ExtractColumn(int j, std::vector<float>* out) const;

  /// Overwrites vector `j` from a plain std::vector of length `rows`.
  void SetColumn(int j, const std::vector<float>& in);
};

/// Packs `columns.size()` vectors (all the same length) into one panel.
DenseBlock PackColumns(const std::vector<std::vector<float>>& columns);

}  // namespace tilespmv::spmm

#endif  // TILESPMV_SPMM_DENSE_BLOCK_H_
