#include "spmm/spmm.h"

#include "sparse/permute.h"
#include "spmm/spmm_cpu_csr.h"
#include "spmm/spmm_ell.h"
#include "spmm/spmm_hyb.h"
#include "spmm/spmm_tile_composite.h"

namespace tilespmv::spmm {

const Permutation SpMMKernel::kIdentityPerm = {};

Status SpMMKernel::FinishSetup(const KernelTiming& spmv, int block_cols) {
  if (!IsValidBlockCols(block_cols)) {
    return Status::InvalidArgument(
        "block_cols must be one of {1, 2, 4, 8, 16}, got " +
        std::to_string(block_cols));
  }
  block_cols_ = block_cols;
  spmv_timing_ = spmv;
  timing_ = TimingForBlockCols(block_cols);
  return Status::OK();
}

KernelTiming SpMMKernel::TimingForBlockCols(int k) const {
  gpusim::SpmmSweepInputs in;
  in.spmv_seconds = spmv_timing_.seconds;
  in.flops = spmv_timing_.flops;
  in.useful_bytes = spmv_timing_.useful_bytes;
  in.global_bytes = spmv_timing_.global_bytes;
  in.tex_misses = spmv_timing_.tex_misses;
  in.rows = rows_;
  gpusim::SpmmSweepCost cost = gpusim::EstimateSpmmSweep(in, k, spec_);
  KernelTiming t = spmv_timing_;  // Hits/launch details are structure-only.
  t.seconds = cost.seconds;
  t.flops = cost.flops;
  t.useful_bytes = cost.useful_bytes;
  t.global_bytes = cost.global_bytes;
  return t;
}

double SpMMKernel::ArithmeticIntensity(int k) const {
  gpusim::SpmmSweepInputs in;
  in.spmv_seconds = spmv_timing_.seconds;
  in.flops = spmv_timing_.flops;
  in.useful_bytes = spmv_timing_.useful_bytes;
  in.global_bytes = spmv_timing_.global_bytes;
  in.tex_misses = spmv_timing_.tex_misses;
  in.rows = rows_;
  return gpusim::EstimateSpmmSweep(in, k, spec_).arithmetic_intensity;
}

std::unique_ptr<SpMMKernel> CreateSpMMKernel(std::string_view name,
                                             const gpusim::DeviceSpec& spec) {
  if (name == "spmm-cpu-csr") return std::make_unique<SpmmCpuCsrKernel>(spec);
  if (name == "spmm-cpu-csr-simd")
    return std::make_unique<SpmmCsrSimdKernel>(spec);
  if (name == "spmm-ell") return std::make_unique<SpmmEllKernel>(spec);
  if (name == "spmm-hyb") return std::make_unique<SpmmHybKernel>(spec);
  if (name == "spmm-tile-composite")
    return std::make_unique<SpmmTileCompositeKernel>(spec);
  return nullptr;
}

const std::vector<std::string>& AllSpMMKernelNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "spmm-cpu-csr", "spmm-cpu-csr-simd", "spmm-ell", "spmm-hyb",
      "spmm-tile-composite"};
  return *kNames;
}

std::string SpmmKernelNameForSpmv(std::string_view spmv_name) {
  if (spmv_name == "cpu-csr") return "spmm-cpu-csr";
  if (spmv_name == "cpu-csr-simd") return "spmm-cpu-csr-simd";
  if (spmv_name == "ell") return "spmm-ell";
  if (spmv_name == "hyb") return "spmm-hyb";
  if (spmv_name == "tile-composite") return "spmm-tile-composite";
  return "";
}

std::string SpmvKernelNameForSpmm(std::string_view spmm_name) {
  if (spmm_name == "spmm-cpu-csr") return "cpu-csr";
  if (spmm_name == "spmm-cpu-csr-simd") return "cpu-csr-simd";
  if (spmm_name == "spmm-ell") return "ell";
  if (spmm_name == "spmm-hyb") return "hyb";
  if (spmm_name == "spmm-tile-composite") return "tile-composite";
  return "";
}

void MultiplyOriginal(const SpMMKernel& kernel, const DenseBlock& x,
                      DenseBlock* y) {
  const Permutation& col_perm = kernel.col_permutation();
  const Permutation& row_perm = kernel.row_permutation();
  if (col_perm.empty() && row_perm.empty()) {
    kernel.Multiply(x, y);
    return;
  }
  DenseBlock x_internal;
  const DenseBlock* xp = &x;
  std::vector<float> column, permuted;
  if (!col_perm.empty()) {
    x_internal.Resize(x.rows, x.cols);
    for (int j = 0; j < x.cols; ++j) {
      x.ExtractColumn(j, &column);
      PermuteVector(col_perm, column, &permuted);
      x_internal.SetColumn(j, permuted);
    }
    xp = &x_internal;
  }
  if (row_perm.empty()) {
    kernel.Multiply(*xp, y);
    return;
  }
  DenseBlock y_internal;
  kernel.Multiply(*xp, &y_internal);
  y->Resize(y_internal.rows, y_internal.cols);
  for (int j = 0; j < y_internal.cols; ++j) {
    y_internal.ExtractColumn(j, &column);
    UnpermuteVector(row_perm, column, &permuted);
    y->SetColumn(j, permuted);
  }
}

}  // namespace tilespmv::spmm
