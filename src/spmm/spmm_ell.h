#ifndef TILESPMV_SPMM_SPMM_ELL_H_
#define TILESPMV_SPMM_SPMM_ELL_H_

#include "kernels/spmv_ell.h"
#include "spmm/spmm.h"

namespace tilespmv::spmm {

/// Blocked ELL: one sweep of the padded column-major storage applied to the
/// whole panel. Each row takes its slots in increasing-j order (padding
/// skipped) with one accumulator per panel column, matching
/// EllKernel::Multiply bit for bit. Inherits ELL's RESOURCE_EXHAUSTED
/// rejection of power-law matrices from the inner kernel's Setup.
class SpmmEllKernel : public SpMMKernel {
 public:
  explicit SpmmEllKernel(const gpusim::DeviceSpec& spec)
      : SpMMKernel(spec), inner_(spec) {}

  std::string_view name() const override { return "spmm-ell"; }
  Status Setup(const CsrMatrix& a, int block_cols) override;
  void Multiply(const DenseBlock& x, DenseBlock* y) const override;

 private:
  EllKernel inner_;
};

}  // namespace tilespmv::spmm

#endif  // TILESPMV_SPMM_SPMM_ELL_H_
