#ifndef TILESPMV_SPMM_SPMM_HYB_H_
#define TILESPMV_SPMM_SPMM_HYB_H_

#include "kernels/spmv_hyb.h"
#include "spmm/spmm.h"

namespace tilespmv::spmm {

/// Blocked HYB: per-row fusion of the ELL prefix (increasing-j slot order)
/// and the row-sorted COO tail (entry order), with one accumulator per panel
/// column — the widened mirror of HybKernel::Multiply, bit for bit per
/// column.
class SpmmHybKernel : public SpMMKernel {
 public:
  explicit SpmmHybKernel(const gpusim::DeviceSpec& spec)
      : SpMMKernel(spec), inner_(spec) {}

  std::string_view name() const override { return "spmm-hyb"; }
  Status Setup(const CsrMatrix& a, int block_cols) override;
  void Multiply(const DenseBlock& x, DenseBlock* y) const override;

 private:
  HybKernel inner_;
};

}  // namespace tilespmv::spmm

#endif  // TILESPMV_SPMM_SPMM_HYB_H_
