#include "spmm/block_select.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace tilespmv::spmm {

bool ParseBlockCols(const std::string& s, int* out) {
  // strtol skips leading whitespace and accepts a sign; a width is a bare
  // decimal digit string, nothing else.
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  if (v < 1 || v > kMaxBlockCols || !IsValidBlockCols(static_cast<int>(v))) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

Result<int> BlockColsFromEnv(int fallback) {
  const char* env = std::getenv(kBlockColsEnvVar);
  if (env == nullptr || env[0] == '\0') return fallback;
  int k = 0;
  if (!ParseBlockCols(env, &k)) {
    return Status::InvalidArgument(std::string(kBlockColsEnvVar) + "=\"" +
                                   env + "\" is not a valid block width " +
                                   "(want one of 1, 2, 4, 8, 16)");
  }
  return k;
}

int ChooseBlockCols(const SpMMKernel& kernel, int max_block_cols) {
  int best_k = 1;
  double best_per_vector = 0.0;
  for (int k : kBlockWidths) {
    if (k > max_block_cols) break;
    double per_vector = kernel.TimingForBlockCols(k).seconds / k;
    if (k == 1 || per_vector < best_per_vector) {
      best_k = k;
      best_per_vector = per_vector;
    }
  }
  return best_k;
}

std::vector<SpmmChoice> PredictSpmmChoices(const CsrMatrix& a,
                                           const gpusim::DeviceSpec& spec,
                                           int max_block_cols) {
  std::vector<SpmmChoice> choices;
  const int setup_k = LargestBlockColsAtMost(max_block_cols);
  for (const std::string& name : AllSpMMKernelNames()) {
    std::unique_ptr<SpMMKernel> kernel = CreateSpMMKernel(name, spec);
    if (kernel == nullptr) continue;
    if (!kernel->Setup(a, setup_k).ok()) continue;  // Format rejected it.
    SpmmChoice c;
    c.kernel = name;
    c.block_cols = ChooseBlockCols(*kernel, max_block_cols);
    c.sweep_seconds = kernel->TimingForBlockCols(c.block_cols).seconds;
    c.seconds_per_vector = c.sweep_seconds / c.block_cols;
    c.arithmetic_intensity = kernel->ArithmeticIntensity(c.block_cols);
    choices.push_back(std::move(c));
  }
  std::stable_sort(choices.begin(), choices.end(),
                   [](const SpmmChoice& a, const SpmmChoice& b) {
                     return a.seconds_per_vector < b.seconds_per_vector;
                   });
  return choices;
}

Result<SpmmChoice> SelectSpmmPlan(const CsrMatrix& a,
                                  const gpusim::DeviceSpec& spec,
                                  int max_block_cols) {
  std::vector<SpmmChoice> choices = PredictSpmmChoices(a, spec, max_block_cols);
  if (choices.empty()) {
    return Status::InvalidArgument(
        "no blocked kernel accepts this matrix");
  }
  return choices.front();
}

}  // namespace tilespmv::spmm
