#ifndef TILESPMV_SPMM_SPMM_H_
#define TILESPMV_SPMM_SPMM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kernels/spmv.h"
#include "spmm/dense_block.h"

namespace tilespmv::spmm {

/// A blocked SpMM kernel: one sweep of the matrix applied to a dense panel
/// of up to block_cols() vectors — the multi-vector sibling of SpMVKernel.
/// The matrix stream (the paper's bottleneck resource) is paid once per
/// sweep and amortized over the panel; only the x gathers, y writes and MAD
/// work repeat per vector.
///
/// Determinism contract (what lets the serving layer route coalesced
/// batches through this path without changing results): column j of
/// Multiply's output is bitwise identical to the underlying single-vector
/// SpMV kernel's Multiply on column j alone, at every pool thread count.
/// Implementations guarantee it by accumulating each (row, column) sum over
/// matrix entries in exactly the per-element order of the paired SpMV
/// kernel, with one independent accumulator per panel column.
/// determinism() reports the one relaxation: kernels paired with a
/// tolerance-class SpMV sibling (spmm-cpu-csr-simd, whose pair reduces each
/// row through a SIMD partial-sum tree) keep their columns bitwise equal to
/// the *scalar* reference, and therefore agree with their pair only within
/// the documented tolerance (docs/SIMD.md).
///
/// Thread-safety matches SpMVKernel: Setup() is not thread-safe; after a
/// successful Setup every const member is, and Multiply keeps all per-call
/// state in the caller-provided y panel.
class SpMMKernel {
 public:
  explicit SpMMKernel(const gpusim::DeviceSpec& spec) : spec_(spec) {}
  virtual ~SpMMKernel() = default;

  SpMMKernel(const SpMMKernel&) = delete;
  SpMMKernel& operator=(const SpMMKernel&) = delete;

  virtual std::string_view name() const = 0;

  /// Builds device structures for panels of up to `block_cols` vectors
  /// (must be one of kBlockWidths), simulates one blocked sweep, records
  /// timing(). Delegates the structural build to the paired SpMV kernel, so
  /// permutations and format rejections (e.g. ELL padding blow-up) are
  /// identical to the single-vector path.
  virtual Status Setup(const CsrMatrix& a, int block_cols) = 0;

  /// y = A * x for a panel in internal index space. x.cols may be any width
  /// in [1, block_cols()] — the ragged final panel of a batch runs at its
  /// actual width. Requires a successful Setup.
  virtual void Multiply(const DenseBlock& x, DenseBlock* y) const = 0;

  /// Modeled cost of one blocked sweep at block_cols() vectors.
  const KernelTiming& timing() const { return timing_; }

  /// Modeled cost of one sweep at width `k` (any value in [1,
  /// block_cols()]), derived from the Setup-time single-vector walk via
  /// gpusim::EstimateSpmmSweep. Lets callers evaluate the whole width axis
  /// without re-running Setup — the block-width autotuner and the ragged
  /// final panel both use it.
  KernelTiming TimingForBlockCols(int k) const;

  /// Arithmetic intensity (flops per modeled DRAM byte) of one sweep at
  /// width `k` — the Fig. 2-style reporting axis for SpMM.
  double ArithmeticIntensity(int k) const;

  /// The single-vector timing the blocked cost is derived from.
  const KernelTiming& spmv_timing() const { return spmv_timing_; }

  virtual const Permutation& row_permutation() const { return kIdentityPerm; }
  virtual const Permutation& col_permutation() const { return kIdentityPerm; }

  /// "host" | "gpusim" — mirrors SpMVKernel::backend().
  virtual std::string_view backend() const { return "gpusim"; }

  /// Relationship of each panel column to the paired SpMV kernel's
  /// Multiply (see the class comment).
  virtual DeterminismClass determinism() const {
    return DeterminismClass::kBitwise;
  }

  /// SIMD tier frozen at Setup ("none" for kernels without a SIMD path).
  virtual std::string_view simd_tier() const { return "none"; }

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  int block_cols() const { return block_cols_; }
  const gpusim::DeviceSpec& spec() const { return spec_; }

 protected:
  static const Permutation kIdentityPerm;  // empty vector

  /// Validates `block_cols` and derives timing_ for it from `spmv` (the
  /// paired kernel's Setup-time timing). Every implementation calls this at
  /// the end of Setup.
  Status FinishSetup(const KernelTiming& spmv, int block_cols);

  gpusim::DeviceSpec spec_;
  KernelTiming timing_;       ///< One blocked sweep at block_cols_.
  KernelTiming spmv_timing_;  ///< One single-vector sweep.
  int32_t rows_ = 0;
  int32_t cols_ = 0;
  int block_cols_ = 1;
};

/// Creates a blocked kernel by name. Known names: "spmm-cpu-csr",
/// "spmm-cpu-csr-simd", "spmm-ell", "spmm-hyb", "spmm-tile-composite".
/// Returns nullptr for unknown names.
std::unique_ptr<SpMMKernel> CreateSpMMKernel(std::string_view name,
                                             const gpusim::DeviceSpec& spec);

/// All blocked kernel names.
const std::vector<std::string>& AllSpMMKernelNames();

/// The blocked sibling of an SpMV kernel name ("tile-composite" ->
/// "spmm-tile-composite"), or "" when no blocked implementation exists.
/// The pairing is what preserves serving dedup semantics: a plan built for
/// SpMV kernel X may only execute batches through SpmmKernelNameForSpmv(X),
/// whose columns are bitwise identical to X.
std::string SpmmKernelNameForSpmv(std::string_view spmv_name);

/// The SpMV kernel a blocked kernel pairs with ("spmm-ell" -> "ell"), or ""
/// for unknown names.
std::string SpmvKernelNameForSpmm(std::string_view spmm_name);

/// Original-index-space panel multiply: permutes every panel column into the
/// kernel's internal space, multiplies, and un-permutes the result — the
/// SpMM sibling of tilespmv::MultiplyOriginal.
void MultiplyOriginal(const SpMMKernel& kernel, const DenseBlock& x,
                      DenseBlock* y);

}  // namespace tilespmv::spmm

#endif  // TILESPMV_SPMM_SPMM_H_
