#include "spmm/spmm_hyb.h"

#include <algorithm>

#include "par/pool.h"
#include "util/check.h"

namespace tilespmv::spmm {

Status SpmmHybKernel::Setup(const CsrMatrix& a, int block_cols) {
  TILESPMV_RETURN_IF_ERROR(inner_.Setup(a));
  rows_ = inner_.rows();
  cols_ = inner_.cols();
  return FinishSetup(inner_.timing(), block_cols);
}

void SpmmHybKernel::Multiply(const DenseBlock& x, DenseBlock* y) const {
  const HybMatrix& m = inner_.hyb();
  const EllMatrix& e = m.ell;
  const int k = x.cols;
  TILESPMV_CHECK(x.rows == cols_);
  TILESPMV_CHECK(k >= 1 && k <= block_cols_);
  y->Resize(rows_, k);
  par::LoopOptions options;
  options.grain = 512;
  options.label = "par/spmm_hyb_multiply";
  par::ParallelFor(0, rows_, options, [&](int64_t r0, int64_t r1) {
    const int32_t* coo_rows = m.coo.row_idx.data();
    const int64_t coo_nnz = m.coo.nnz();
    int64_t t = std::lower_bound(coo_rows, coo_rows + coo_nnz,
                                 static_cast<int32_t>(r0)) -
                coo_rows;
    float acc[kMaxBlockCols];
    for (int64_t r = r0; r < r1; ++r) {
      for (int j = 0; j < k; ++j) acc[j] = 0.0f;
      for (int32_t w = 0; w < e.width; ++w) {
        size_t slot = static_cast<size_t>(w) * e.rows + static_cast<size_t>(r);
        int32_t c = e.col_idx[slot];
        if (c != EllMatrix::kEllPad) {
          const float v = e.values[slot];
          const float* xs = &x.data[static_cast<size_t>(c) * k];
          for (int j = 0; j < k; ++j) acc[j] += v * xs[j];
        }
      }
      for (; t < coo_nnz && coo_rows[t] == r; ++t) {
        const float v = m.coo.values[t];
        const float* xs = &x.data[static_cast<size_t>(m.coo.col_idx[t]) * k];
        for (int j = 0; j < k; ++j) acc[j] += v * xs[j];
      }
      float* ys = &y->data[static_cast<size_t>(r) * k];
      for (int j = 0; j < k; ++j) ys[j] = acc[j];
    }
  });
}

}  // namespace tilespmv::spmm
