#ifndef TILESPMV_SPMM_SPMM_CPU_CSR_H_
#define TILESPMV_SPMM_SPMM_CPU_CSR_H_

#include "kernels/cpu_csr.h"
#include "spmm/spmm.h"

namespace tilespmv::spmm {

/// Blocked CPU CSR: the scalar baseline swept once per panel. Each row walks
/// its CSR entries in order with one accumulator per panel column, so column
/// j matches CpuCsrKernel::Multiply (and CsrMultiply) bit for bit.
class SpmmCpuCsrKernel : public SpMMKernel {
 public:
  explicit SpmmCpuCsrKernel(const gpusim::DeviceSpec& spec)
      : SpMMKernel(spec), inner_(spec) {}

  std::string_view name() const override { return "spmm-cpu-csr"; }
  Status Setup(const CsrMatrix& a, int block_cols) override;
  void Multiply(const DenseBlock& x, DenseBlock* y) const override;

 private:
  CpuCsrKernel inner_;
};

}  // namespace tilespmv::spmm

#endif  // TILESPMV_SPMM_SPMM_CPU_CSR_H_
