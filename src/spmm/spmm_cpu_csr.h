#ifndef TILESPMV_SPMM_SPMM_CPU_CSR_H_
#define TILESPMV_SPMM_SPMM_CPU_CSR_H_

#include "kernels/cpu_csr.h"
#include "kernels/cpu_csr_simd.h"
#include "simd/caps.h"
#include "simd/kernels.h"
#include "spmm/spmm.h"

namespace tilespmv::spmm {

/// Blocked CPU CSR: the host baseline swept once per panel. Execution goes
/// through the simd::SpmmRows* panel micro-kernels — the matrix value is
/// broadcast across the panel row with separate mul/add ops — so every tier
/// keeps column j bitwise identical to CpuCsrKernel::Multiply (and
/// CsrMultiply) on column j alone. The tier is frozen at Setup.
class SpmmCpuCsrKernel : public SpMMKernel {
 public:
  explicit SpmmCpuCsrKernel(const gpusim::DeviceSpec& spec)
      : SpMMKernel(spec), inner_(spec), tier_(simd::ResolvedTier()) {}

  std::string_view name() const override { return "spmm-cpu-csr"; }
  std::string_view backend() const override { return "host"; }
  std::string_view simd_tier() const override {
    return simd::TierName(tier_);
  }
  Status Setup(const CsrMatrix& a, int block_cols) override;
  void Multiply(const DenseBlock& x, DenseBlock* y) const override;

 private:
  CpuCsrKernel inner_;
  simd::Tier tier_;
  simd::SpmmRowsFn panel_fn_ = &simd::SpmmRowsScalar;
};

/// Blocked sibling of cpu-csr-simd ("spmm-cpu-csr-simd"). The panel path is
/// the same bitwise micro-kernel as SpmmCpuCsrKernel; what changes is the
/// pairing: its paired SpMV kernel reduces rows through a SIMD tree, so
/// panel columns agree with the pair within tolerance, not bitwise
/// (determinism() == kTolerance when a vector tier is active). Setup
/// delegates to CsrSimdKernel, so modeled timing reflects the SIMD host.
class SpmmCsrSimdKernel : public SpMMKernel {
 public:
  explicit SpmmCsrSimdKernel(const gpusim::DeviceSpec& spec)
      : SpMMKernel(spec), inner_(spec), tier_(simd::ResolvedTier()) {}

  std::string_view name() const override { return "spmm-cpu-csr-simd"; }
  std::string_view backend() const override { return "host"; }
  DeterminismClass determinism() const override {
    return tier_ == simd::Tier::kScalar ? DeterminismClass::kBitwise
                                        : DeterminismClass::kTolerance;
  }
  std::string_view simd_tier() const override {
    return simd::TierName(tier_);
  }
  Status Setup(const CsrMatrix& a, int block_cols) override;
  void Multiply(const DenseBlock& x, DenseBlock* y) const override;

 private:
  CsrSimdKernel inner_;
  simd::Tier tier_;
  simd::SpmmRowsFn panel_fn_ = &simd::SpmmRowsScalar;
};

}  // namespace tilespmv::spmm

#endif  // TILESPMV_SPMM_SPMM_CPU_CSR_H_
