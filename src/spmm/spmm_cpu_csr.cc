#include "spmm/spmm_cpu_csr.h"

#include "par/pool.h"
#include "util/check.h"

namespace tilespmv::spmm {
namespace {

/// Shared CSR panel sweep: one parallel pass over the rows through a
/// tier-resolved simd::SpmmRows* micro-kernel. Column j of the result is
/// bitwise identical to the scalar loop on column j alone at every tier
/// and thread count (see simd/kernels.h).
void CsrPanelMultiply(const CsrMatrix& a, simd::SpmmRowsFn panel_fn,
                      int block_cols, const DenseBlock& x, DenseBlock* y) {
  const int k = x.cols;
  TILESPMV_CHECK(x.rows == a.cols);
  TILESPMV_CHECK(k >= 1 && k <= block_cols);
  y->Resize(a.rows, k);
  par::LoopOptions options;
  options.grain = 256;
  options.chunking = par::Chunking::kGuided;
  options.label = "par/spmm_csr_multiply";
  par::ParallelFor(0, a.rows, options, [&](int64_t r0, int64_t r1) {
    panel_fn(a.row_ptr.data(), a.col_idx.data(), a.values.data(),
             x.data.data(), y->data.data(), k, r0, r1);
  });
}

}  // namespace

Status SpmmCpuCsrKernel::Setup(const CsrMatrix& a, int block_cols) {
  TILESPMV_RETURN_IF_ERROR(inner_.Setup(a));
  rows_ = inner_.rows();
  cols_ = inner_.cols();
  tier_ = simd::ResolvedTier();
  panel_fn_ = simd::SpmmRowsForTier(tier_);
  return FinishSetup(inner_.timing(), block_cols);
}

void SpmmCpuCsrKernel::Multiply(const DenseBlock& x, DenseBlock* y) const {
  CsrPanelMultiply(inner_.csr(), panel_fn_, block_cols_, x, y);
}

Status SpmmCsrSimdKernel::Setup(const CsrMatrix& a, int block_cols) {
  TILESPMV_RETURN_IF_ERROR(inner_.Setup(a));
  rows_ = inner_.rows();
  cols_ = inner_.cols();
  tier_ = inner_.tier();
  panel_fn_ = simd::SpmmRowsForTier(tier_);
  return FinishSetup(inner_.timing(), block_cols);
}

void SpmmCsrSimdKernel::Multiply(const DenseBlock& x, DenseBlock* y) const {
  CsrPanelMultiply(inner_.csr(), panel_fn_, block_cols_, x, y);
}

}  // namespace tilespmv::spmm
