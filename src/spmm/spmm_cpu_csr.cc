#include "spmm/spmm_cpu_csr.h"

#include "par/pool.h"
#include "util/check.h"

namespace tilespmv::spmm {

Status SpmmCpuCsrKernel::Setup(const CsrMatrix& a, int block_cols) {
  TILESPMV_RETURN_IF_ERROR(inner_.Setup(a));
  rows_ = inner_.rows();
  cols_ = inner_.cols();
  return FinishSetup(inner_.timing(), block_cols);
}

void SpmmCpuCsrKernel::Multiply(const DenseBlock& x, DenseBlock* y) const {
  const CsrMatrix& a = inner_.csr();
  const int k = x.cols;
  TILESPMV_CHECK(x.rows == a.cols);
  TILESPMV_CHECK(k >= 1 && k <= block_cols_);
  y->Resize(a.rows, k);
  // Same shape as CsrMultiply, widened: each row walks its entries in CSR
  // order with one accumulator per panel column, so column j is bitwise
  // identical to the scalar loop on column j alone.
  par::LoopOptions options;
  options.grain = 256;
  options.chunking = par::Chunking::kGuided;
  options.label = "par/spmm_csr_multiply";
  par::ParallelFor(0, a.rows, options, [&](int64_t r0, int64_t r1) {
    float acc[kMaxBlockCols];
    for (int64_t r = r0; r < r1; ++r) {
      for (int j = 0; j < k; ++j) acc[j] = 0.0f;
      for (int64_t e = a.row_ptr[r]; e < a.row_ptr[r + 1]; ++e) {
        const float v = a.values[e];
        const float* xs = &x.data[static_cast<size_t>(a.col_idx[e]) * k];
        for (int j = 0; j < k; ++j) acc[j] += v * xs[j];
      }
      float* ys = &y->data[static_cast<size_t>(r) * k];
      for (int j = 0; j < k; ++j) ys[j] = acc[j];
    }
  });
}

}  // namespace tilespmv::spmm
