#include "spmm/spmm_tile_composite.h"

#include "core/tile_dag.h"
#include "par/taskgraph.h"
#include "util/check.h"

namespace tilespmv::spmm {

Status SpmmTileCompositeKernel::Setup(const CsrMatrix& a, int block_cols) {
  TILESPMV_RETURN_IF_ERROR(inner_.Setup(a));
  rows_ = inner_.rows();
  cols_ = inner_.cols();
  return FinishSetup(inner_.timing(), block_cols);
}

void SpmmTileCompositeKernel::Multiply(const DenseBlock& x,
                                       DenseBlock* y) const {
  const int k = x.cols;
  TILESPMV_CHECK(x.rows == cols_);
  TILESPMV_CHECK(k >= 1 && k <= block_cols_);
  y->Resize(rows_, k);
  // The panel sweep rides the inner kernel's dataflow graph
  // (core/tile_dag.h): the same chunk/reduce tasks, with one accumulator
  // per panel column, so column j reproduces TileCompositeKernel's per-row
  // += sequence exactly — bitwise identical to k single-vector runs at
  // every thread count. Per-call scratch keeps Multiply thread-safe.
  const TileDag& dag = *inner_.tile_dag();
  std::vector<float> partial(static_cast<size_t>(dag.partial_size()) *
                             static_cast<size_t>(k));
  const int32_t num_chunks = static_cast<int32_t>(dag.num_chunks());
  const float* xd = x.data.data();
  float* pd = partial.data();
  float* yd = y->data.data();
  par::RunTaskGraph(dag.multiply_graph(), [&](int32_t t) {
    if (t < num_chunks) {
      dag.RunChunkPanel(t, xd, k, pd);
    } else {
      dag.ReduceBlockPanel(t - num_chunks, pd, k, yd);
    }
  });
}

}  // namespace tilespmv::spmm
