#include "spmm/spmm_tile_composite.h"

#include "par/pool.h"
#include "util/check.h"

namespace tilespmv::spmm {

Status SpmmTileCompositeKernel::Setup(const CsrMatrix& a, int block_cols) {
  TILESPMV_RETURN_IF_ERROR(inner_.Setup(a));
  rows_ = inner_.rows();
  cols_ = inner_.cols();
  return FinishSetup(inner_.timing(), block_cols);
}

void SpmmTileCompositeKernel::Multiply(const DenseBlock& x,
                                       DenseBlock* y) const {
  const int k = x.cols;
  TILESPMV_CHECK(x.rows == cols_);
  TILESPMV_CHECK(k >= 1 && k <= block_cols_);
  y->Resize(rows_, k);
  par::LoopOptions options;
  options.grain = 256;
  options.chunking = par::Chunking::kGuided;
  options.label = "par/spmm_tile_composite_multiply";
  for (const TileCompositeKernel::TileView& tv : inner_.tile_views()) {
    const CompositeTile& ct = *tv.ct;
    par::ParallelFor(
        0, static_cast<int64_t>(ct.row_order.size()), options,
        [&](int64_t p0, int64_t p1) {
          float acc[kMaxBlockCols];
          for (int64_t p = p0; p < p1; ++p) {
            for (int j = 0; j < k; ++j) acc[j] = 0.0f;
            int64_t start = ct.row_start[p];
            for (int64_t e = 0; e < ct.row_len[p]; ++e) {
              const float v = ct.vals[start + e];
              const float* xs =
                  &x.data[static_cast<size_t>(tv.col_begin + ct.cols[start + e]) *
                          k];
              for (int j = 0; j < k; ++j) acc[j] += v * xs[j];
            }
            float* ys = &y->data[static_cast<size_t>(ct.row_order[p]) * k];
            for (int j = 0; j < k; ++j) ys[j] += acc[j];
          }
        });
  }
}

}  // namespace tilespmv::spmm
