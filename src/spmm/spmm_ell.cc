#include "spmm/spmm_ell.h"

#include "par/pool.h"
#include "util/check.h"

namespace tilespmv::spmm {

Status SpmmEllKernel::Setup(const CsrMatrix& a, int block_cols) {
  TILESPMV_RETURN_IF_ERROR(inner_.Setup(a));
  rows_ = inner_.rows();
  cols_ = inner_.cols();
  return FinishSetup(inner_.timing(), block_cols);
}

void SpmmEllKernel::Multiply(const DenseBlock& x, DenseBlock* y) const {
  const EllMatrix& m = inner_.ell();
  const int k = x.cols;
  TILESPMV_CHECK(x.rows == cols_);
  TILESPMV_CHECK(k >= 1 && k <= block_cols_);
  y->Resize(m.rows, k);
  par::LoopOptions options;
  options.grain = 512;
  options.label = "par/spmm_ell_multiply";
  par::ParallelFor(0, m.rows, options, [&](int64_t r0, int64_t r1) {
    float acc[kMaxBlockCols];
    for (int64_t r = r0; r < r1; ++r) {
      for (int j = 0; j < k; ++j) acc[j] = 0.0f;
      for (int32_t w = 0; w < m.width; ++w) {
        size_t slot = static_cast<size_t>(w) * m.rows + static_cast<size_t>(r);
        int32_t c = m.col_idx[slot];
        if (c != EllMatrix::kEllPad) {
          const float v = m.values[slot];
          const float* xs = &x.data[static_cast<size_t>(c) * k];
          for (int j = 0; j < k; ++j) acc[j] += v * xs[j];
        }
      }
      float* ys = &y->data[static_cast<size_t>(r) * k];
      for (int j = 0; j < k; ++j) ys[j] = acc[j];
    }
  });
}

}  // namespace tilespmv::spmm
