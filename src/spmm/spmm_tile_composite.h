#ifndef TILESPMV_SPMM_SPMM_TILE_COMPOSITE_H_
#define TILESPMV_SPMM_SPMM_TILE_COMPOSITE_H_

#include "core/tile_composite.h"
#include "spmm/spmm.h"

namespace tilespmv::spmm {

/// Blocked tile/composite: the paper's kernel swept over a panel. Tiles stay
/// sequential (each accumulates into the y written by its predecessors);
/// within a tile, each occupied row contributes one per-column partial sum
/// in tile entry order — so column j reproduces TileCompositeKernel's
/// per-row += sequence exactly. Operates in the inner kernel's permuted
/// index space; callers permute panels with row/col_permutation().
class SpmmTileCompositeKernel : public SpMMKernel {
 public:
  explicit SpmmTileCompositeKernel(const gpusim::DeviceSpec& spec)
      : SpMMKernel(spec), inner_(spec) {}

  std::string_view name() const override { return "spmm-tile-composite"; }
  Status Setup(const CsrMatrix& a, int block_cols) override;
  void Multiply(const DenseBlock& x, DenseBlock* y) const override;

  const Permutation& row_permutation() const override {
    return inner_.row_permutation();
  }
  const Permutation& col_permutation() const override {
    return inner_.col_permutation();
  }

 private:
  TileCompositeKernel inner_;
};

}  // namespace tilespmv::spmm

#endif  // TILESPMV_SPMM_SPMM_TILE_COMPOSITE_H_
