#include "spmm/dense_block.h"

#include "util/check.h"

namespace tilespmv::spmm {

bool IsValidBlockCols(int k) {
  for (int w : kBlockWidths) {
    if (k == w) return true;
  }
  return false;
}

int LargestBlockColsAtMost(int limit) {
  int best = 1;
  for (int w : kBlockWidths) {
    if (w <= limit) best = w;
  }
  return best;
}

void DenseBlock::ExtractColumn(int j, std::vector<float>* out) const {
  TILESPMV_CHECK(j >= 0 && j < cols);
  out->resize(static_cast<size_t>(rows));
  for (int32_t r = 0; r < rows; ++r) (*out)[r] = at(r, j);
}

void DenseBlock::SetColumn(int j, const std::vector<float>& in) {
  TILESPMV_CHECK(j >= 0 && j < cols);
  TILESPMV_CHECK(static_cast<int64_t>(in.size()) == rows);
  for (int32_t r = 0; r < rows; ++r) at(r, j) = in[r];
}

DenseBlock PackColumns(const std::vector<std::vector<float>>& columns) {
  DenseBlock block;
  if (columns.empty()) return block;
  block.Resize(static_cast<int32_t>(columns[0].size()),
               static_cast<int>(columns.size()));
  for (int j = 0; j < block.cols; ++j) {
    block.SetColumn(j, columns[static_cast<size_t>(j)]);
  }
  return block;
}

}  // namespace tilespmv::spmm
