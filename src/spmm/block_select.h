#ifndef TILESPMV_SPMM_BLOCK_SELECT_H_
#define TILESPMV_SPMM_BLOCK_SELECT_H_

#include <string>
#include <vector>

#include "sparse/csr.h"
#include "spmm/spmm.h"

namespace tilespmv::spmm {

/// Environment variable consulted for the default panel width (same
/// convention as TILESPMV_THREADS). A set-but-invalid value is an error,
/// never silently ignored.
inline constexpr char kBlockColsEnvVar[] = "TILESPMV_BLOCK_COLS";

/// Strict parse of a block-cols string: the whole string must be an integer
/// AND one of kBlockWidths. Returns false (leaving *out untouched)
/// otherwise — callers reject "8x", "0", "3", "" outright.
bool ParseBlockCols(const std::string& s, int* out);

/// The panel width to use when the caller gave none: kBlockColsEnvVar if
/// set, else `fallback`. A set-but-invalid value returns InvalidArgument so
/// a typo can't silently change results batching.
Result<int> BlockColsFromEnv(int fallback);

/// The width in kBlockWidths (<= max_block_cols) minimizing the kernel's
/// modeled per-vector seconds. Wider panels amortize the matrix stream, so
/// this is usually the largest allowed width; ties break toward the
/// narrower panel (less batching latency for the same throughput).
int ChooseBlockCols(const SpMMKernel& kernel, int max_block_cols);

/// One candidate from the blocked autotune sweep.
struct SpmmChoice {
  std::string kernel;  ///< Blocked kernel name (CreateSpMMKernel-compatible).
  int block_cols = 1;
  double sweep_seconds = 0.0;        ///< One sweep at block_cols.
  double seconds_per_vector = 0.0;   ///< sweep_seconds / block_cols.
  double arithmetic_intensity = 0.0; ///< Flops per modeled DRAM byte.
};

/// kernel_select's blocked sibling: sets up every blocked kernel on `a`
/// (skipping ones whose format rejects it, e.g. ELL padding blow-up), picks
/// each one's best width <= max_block_cols, and returns the candidates
/// sorted by modeled per-vector seconds, fastest first.
std::vector<SpmmChoice> PredictSpmmChoices(const CsrMatrix& a,
                                           const gpusim::DeviceSpec& spec,
                                           int max_block_cols);

/// The fastest candidate from PredictSpmmChoices, or InvalidArgument when
/// every blocked kernel rejected the matrix (cannot happen in practice:
/// spmm-cpu-csr accepts anything CSR-valid).
Result<SpmmChoice> SelectSpmmPlan(const CsrMatrix& a,
                                  const gpusim::DeviceSpec& spec,
                                  int max_block_cols);

}  // namespace tilespmv::spmm

#endif  // TILESPMV_SPMM_BLOCK_SELECT_H_
