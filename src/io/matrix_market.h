#ifndef TILESPMV_IO_MATRIX_MARKET_H_
#define TILESPMV_IO_MATRIX_MARKET_H_

#include <string>

#include "sparse/csr.h"
#include "util/status.h"

namespace tilespmv {

/// Reads a MatrixMarket coordinate file (`%%MatrixMarket matrix coordinate
/// real|pattern|integer general|symmetric`). Pattern entries get value 1;
/// symmetric files are expanded. Users with the paper's real datasets (e.g.
/// the UbiCrawler web graphs converted to .mtx) load them through this.
Result<CsrMatrix> ReadMatrixMarket(const std::string& path);

/// Writes `a` as a general real coordinate MatrixMarket file.
Status WriteMatrixMarket(const CsrMatrix& a, const std::string& path);

}  // namespace tilespmv

#endif  // TILESPMV_IO_MATRIX_MARKET_H_
