#include "io/binary_cache.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "robust/fault_injection.h"

namespace tilespmv {
namespace {

constexpr uint64_t kMagic = 0x74696c65736d7631ULL;  // "tilesmv1".

template <typename T>
bool WriteRaw(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  return static_cast<bool>(out);
}

template <typename T>
bool WriteVec(std::ofstream& out, const std::vector<T>& v) {
  uint64_t n = v.size();
  if (!WriteRaw(out, n)) return false;
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadRaw(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVec(std::ifstream& in, std::vector<T>* v, uint64_t max_elems) {
  uint64_t n = 0;
  if (!ReadRaw(in, &n) || n > max_elems) return false;
  v->resize(n);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status WriteBinaryMatrix(const CsrMatrix& a, const std::string& path) {
  TILESPMV_RETURN_IF_ERROR(a.Validate());
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  bool ok = WriteRaw(out, kMagic) && WriteRaw(out, a.rows) &&
            WriteRaw(out, a.cols) && WriteVec(out, a.row_ptr) &&
            WriteVec(out, a.col_idx) && WriteVec(out, a.values);
  if (!ok) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<CsrMatrix> ReadBinaryMatrix(const std::string& path) {
  if (TILESPMV_FAULT_POINT("io/binary_read")) {
    return Status::IoError("injected fault: binary matrix read failed");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  // The on-disk size bounds every claimed vector length below: a corrupt
  // header claiming billions of elements must fail the length check, not
  // allocate billions of elements and then hit EOF.
  in.seekg(0, std::ios::end);
  const int64_t file_size = static_cast<int64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (file_size < 0) return Status::IoError("cannot stat " + path);
  uint64_t magic = 0;
  if (!ReadRaw(in, &magic) || magic != kMagic) {
    return Status::IoError("not a tilespmv binary matrix: " + path);
  }
  CsrMatrix m;
  const uint64_t max_elems = static_cast<uint64_t>(file_size) / 4;
  if (!ReadRaw(in, &m.rows) || !ReadRaw(in, &m.cols) || m.rows < 0 ||
      m.cols < 0 || !ReadVec(in, &m.row_ptr, max_elems) ||
      !ReadVec(in, &m.col_idx, max_elems) ||
      !ReadVec(in, &m.values, max_elems)) {
    return Status::IoError("truncated or corrupt binary matrix: " + path);
  }
  Status st = m.Validate();
  if (!st.ok()) {
    return Status::IoError("corrupt binary matrix " + path + ": " +
                           st.message());
  }
  return m;
}

Result<CsrMatrix> LoadOrBuild(const std::string& path,
                              Result<CsrMatrix> (*make)()) {
  Result<CsrMatrix> cached = ReadBinaryMatrix(path);
  if (cached.ok()) return cached;
  Result<CsrMatrix> built = make();
  if (!built.ok()) return built;
  // A failed cache write is not fatal — the matrix is still usable.
  Status st = WriteBinaryMatrix(built.value(), path);
  if (!st.ok()) {
    std::fprintf(stderr, "warning: could not cache matrix: %s\n",
                 st.ToString().c_str());
  }
  return built;
}

}  // namespace tilespmv
