#include "io/matrix_market.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "robust/fault_injection.h"

namespace tilespmv {

Result<CsrMatrix> ReadMatrixMarket(const std::string& path) {
  if (TILESPMV_FAULT_POINT("io/matrix_market_read")) {
    return Status::IoError("injected fault: matrix market read failed");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::IoError("empty file: " + path);
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix")
    return Status::IoError("not a MatrixMarket matrix file: " + path);
  if (format != "coordinate")
    return Status::UnsupportedFormat("only coordinate format is supported");
  bool pattern = field == "pattern";
  bool symmetric = symmetry == "symmetric";
  if (!pattern && field != "real" && field != "integer")
    return Status::UnsupportedFormat("unsupported field type: " + field);
  if (!symmetric && symmetry != "general")
    return Status::UnsupportedFormat("unsupported symmetry: " + symmetry);

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  int64_t rows = 0, cols = 0, nnz = 0;
  {
    std::istringstream sizes(line);
    if (!(sizes >> rows >> cols >> nnz))
      return Status::IoError("bad size line in " + path);
  }
  if (rows < 0 || cols < 0 || rows > INT32_MAX || cols > INT32_MAX)
    return Status::InvalidArgument("matrix dimensions out of range");
  // rows/cols are both <= INT32_MAX here, so the product fits in int64.
  if (nnz < 0 || nnz > rows * cols)
    return Status::InvalidArgument("implausible nnz " + std::to_string(nnz) +
                                   " in " + path);

  std::vector<Triplet> triplets;
  // Reserve from the claimed nnz, but cap the up-front allocation: a huge
  // claimed count in a tiny (truncated) file must fail with a typed error at
  // the first missing entry, not OOM on this reserve.
  triplets.reserve(static_cast<size_t>(
      std::min<int64_t>(symmetric ? 2 * nnz : nnz, int64_t{1} << 26)));
  for (int64_t i = 0; i < nnz; ++i) {
    int64_t r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) return Status::IoError("truncated entries in " + path);
    if (!pattern) {
      // Parse the value via strtod rather than operator>> so literal
      // "nan"/"inf" tokens are read as non-finite doubles (and rejected
      // below) instead of failing extraction and masquerading as EOF.
      std::string token;
      if (!(in >> token)) return Status::IoError("truncated value in " + path);
      char* endp = nullptr;
      v = std::strtod(token.c_str(), &endp);
      if (endp == token.c_str() || *endp != '\0')
        return Status::InvalidArgument("malformed value \"" + token + "\" in " +
                                       path);
    }
    if (r < 1 || r > rows || c < 1 || c > cols)
      return Status::InvalidArgument("entry index out of range in " + path);
    if (!std::isfinite(v))
      return Status::InvalidArgument("non-finite value in " + path);
    triplets.push_back(Triplet{static_cast<int32_t>(r - 1),
                               static_cast<int32_t>(c - 1),
                               static_cast<float>(v)});
    if (symmetric && r != c) {
      triplets.push_back(Triplet{static_cast<int32_t>(c - 1),
                                 static_cast<int32_t>(r - 1),
                                 static_cast<float>(v)});
    }
  }
  return CsrMatrix::FromTriplets(static_cast<int32_t>(rows),
                                 static_cast<int32_t>(cols),
                                 std::move(triplets));
}

Status WriteMatrixMarket(const CsrMatrix& a, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows << " " << a.cols << " " << a.nnz() << "\n";
  for (int32_t r = 0; r < a.rows; ++r) {
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      out << (r + 1) << " " << (a.col_idx[k] + 1) << " " << a.values[k]
          << "\n";
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace tilespmv
