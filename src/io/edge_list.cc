#include "io/edge_list.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "robust/fault_injection.h"

namespace tilespmv {

Result<CsrMatrix> ReadEdgeList(const std::string& path,
                               const EdgeListOptions& options) {
  if (TILESPMV_FAULT_POINT("io/edge_list_read")) {
    return Status::IoError("injected fault: edge list read failed");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  std::unordered_map<int64_t, int32_t> remap;
  auto map_id = [&](int64_t raw) -> int32_t {
    if (!options.compact_ids) return static_cast<int32_t>(raw);
    auto [it, inserted] =
        remap.emplace(raw, static_cast<int32_t>(remap.size()));
    return it->second;
  };

  std::vector<Triplet> triplets;
  int64_t max_id = -1;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    int64_t u = 0, v = 0;
    double w = options.default_weight;
    if (!(ss >> u >> v)) {
      return Status::IoError("malformed edge at " + path + ":" +
                             std::to_string(line_no));
    }
    if (!(ss >> w)) {  // Optional weight.
      // Distinguish "no weight column" (hit end of line) from a present but
      // unparseable token such as "nan" or "x" — the latter is corrupt data,
      // not an unweighted edge.
      if (!ss.eof()) {
        return Status::InvalidArgument("malformed edge weight at " + path +
                                       ":" + std::to_string(line_no));
      }
      w = options.default_weight;
    }
    if (u < 0 || v < 0) {
      return Status::InvalidArgument("negative node id at " + path + ":" +
                                     std::to_string(line_no));
    }
    // >= INT32_MAX (not >): node count max_id + 1 must itself fit in int32.
    if (!options.compact_ids && (u >= INT32_MAX || v >= INT32_MAX)) {
      return Status::InvalidArgument(
          "node id exceeds int32 range; use compact_ids");
    }
    if (!std::isfinite(w)) {
      return Status::InvalidArgument("non-finite edge weight at " + path +
                                     ":" + std::to_string(line_no));
    }
    int32_t mu = map_id(u);
    int32_t mv = map_id(v);
    max_id = std::max({max_id, static_cast<int64_t>(mu),
                       static_cast<int64_t>(mv)});
    triplets.push_back(Triplet{mu, mv, static_cast<float>(w)});
    if (options.symmetrize && mu != mv) {
      triplets.push_back(Triplet{mv, mu, static_cast<float>(w)});
    }
  }
  int32_t n = static_cast<int32_t>(max_id + 1);
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

Status WriteEdgeList(const CsrMatrix& a, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# " << a.rows << " nodes, " << a.nnz() << " edges\n";
  for (int32_t r = 0; r < a.rows; ++r) {
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      out << r << " " << a.col_idx[k] << " " << a.values[k] << "\n";
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace tilespmv
