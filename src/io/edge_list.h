#ifndef TILESPMV_IO_EDGE_LIST_H_
#define TILESPMV_IO_EDGE_LIST_H_

#include <string>

#include "sparse/csr.h"
#include "util/status.h"

namespace tilespmv {

/// Options for reading whitespace-separated edge lists ("u v" or "u v w"
/// per line, '#' or '%' comments) — the format SNAP and most web-graph
/// distributions use, including the datasets the paper evaluates on
/// (Flickr, LiveJournal, Youtube, the UbiCrawler web graphs).
struct EdgeListOptions {
  /// Nodes are renumbered densely in first-seen order when true; otherwise
  /// ids are used as indices directly (the matrix is sized by the max id).
  bool compact_ids = false;
  /// Add the reverse of every edge (undirected graphs).
  bool symmetrize = false;
  /// Value assigned to edges without an explicit weight.
  float default_weight = 1.0f;
};

/// Reads an edge list file into an adjacency matrix. Duplicate edges are
/// merged (weights summed).
Result<CsrMatrix> ReadEdgeList(const std::string& path,
                               const EdgeListOptions& options = {});

/// Writes `a` as "row col weight" lines.
Status WriteEdgeList(const CsrMatrix& a, const std::string& path);

}  // namespace tilespmv

#endif  // TILESPMV_IO_EDGE_LIST_H_
