#ifndef TILESPMV_IO_BINARY_CACHE_H_
#define TILESPMV_IO_BINARY_CACHE_H_

#include <string>

#include "sparse/csr.h"
#include "util/status.h"

namespace tilespmv {

/// Compact binary serialization of a CSR matrix (magic + dims + raw
/// arrays). Parsing a multi-gigabyte MatrixMarket or edge-list file
/// dominates experiment turnaround on web-scale graphs; the binary cache
/// loads at disk speed. Format is host-endian and versioned.
Status WriteBinaryMatrix(const CsrMatrix& a, const std::string& path);

/// Loads a matrix written by WriteBinaryMatrix; validates header and
/// structure.
Result<CsrMatrix> ReadBinaryMatrix(const std::string& path);

/// Loads `path` if it exists, otherwise builds the matrix with `make`,
/// writes it to `path`, and returns it. The caching pattern every bench and
/// tool uses for repeated runs on the same dataset.
Result<CsrMatrix> LoadOrBuild(const std::string& path,
                              Result<CsrMatrix> (*make)());

}  // namespace tilespmv

#endif  // TILESPMV_IO_BINARY_CACHE_H_
