#include "graph/hits.h"

#include <cmath>

#include "graph/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "robust/fault_injection.h"
#include "sparse/convert.h"
#include "util/check.h"

namespace tilespmv {

Result<HitsScores> RunHits(const CsrMatrix& adjacency, SpMVKernel* kernel,
                           const HitsOptions& options) {
  TILESPMV_CHECK(kernel != nullptr);
  if (adjacency.rows != adjacency.cols)
    return Status::InvalidArgument("HITS needs a square adjacency matrix");
  if (adjacency.rows == 0) return Status::InvalidArgument("empty graph");
  TILESPMV_RETURN_IF_ERROR(kernel->Setup(BuildHitsMatrix(adjacency)));
  return RunHitsPrepared(*kernel, options);
}

Result<HitsScores> RunHitsPrepared(const SpMVKernel& kernel,
                                   const HitsOptions& options) {
  const int32_t n2 = kernel.rows();
  const int32_t n = n2 / 2;
  if (n == 0) return Status::InvalidArgument("empty graph");
  const Permutation& row_perm = kernel.row_permutation();

  // In internal (possibly relabeled) space, remember which positions belong
  // to the authority half [0, n) so the two halves normalize separately.
  std::vector<char> is_authority(n2);
  for (int32_t i = 0; i < n2; ++i) {
    int32_t orig = row_perm.empty() ? i : row_perm[i];
    is_authority[i] = orig < n ? 1 : 0;
  }

  std::vector<float> v(n2, 1.0f / static_cast<float>(n));
  std::vector<float> y;

  const gpusim::DeviceSpec& spec = kernel.spec();
  const double aux_seconds = 3 * ReductionSeconds(n2, spec) +
                             2 * ElementwiseSeconds(n2, n2, spec);
  HitsScores out;
  out.stats.seconds_per_iteration = kernel.timing().seconds + aux_seconds;

  bool pipelined = false;
  if (options.pipeline) {
    PipelineLoopParams params;
    params.max_iterations = options.max_iterations;
    params.tolerance = options.tolerance;
    params.cancel = options.cancel;
    params.divergence_factor = options.divergence_factor;
    pipelined = PipelineHitsLoop(kernel, is_authority, params, &v, &out.stats);
  }
  ResidualGuard guard(options.divergence_factor);
  for (int it = 0; !pipelined && it < options.max_iterations; ++it) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      out.stats.health = IterativeHealth::kCancelled;
      break;
    }
    TILESPMV_FAULT_STALL("graph/iteration_slow");
    obs::TraceSpan iter_span("graph", "hits/iteration");
    double delta = 0.0;
    {
      obs::TraceSpan spmv_span("spmv", "spmv/multiply");
      kernel.Multiply(v, &y);
    }
    if (TILESPMV_FAULT_POINT("graph/hits_nan")) y[0] = NAN;
    {
      obs::TraceSpan red_span("reduction", "reduction/hits_normalize");
      // Both reductions use the fixed-block recipe (see par/pool.h), so
      // sums and delta are bitwise identical at every thread count.
      struct HalfSums {
        double a = 0.0, h = 0.0;
      };
      HalfSums sums = par::ParallelReduce<HalfSums>(
          0, n2, par::kReduceBlock, HalfSums{},
          [&](int64_t lo, int64_t hi) {
            HalfSums local;
            for (int64_t i = lo; i < hi; ++i) {
              (is_authority[i] ? local.a : local.h) += std::fabs(y[i]);
            }
            return local;
          },
          [](HalfSums x, HalfSums w) {
            x.a += w.a;
            x.h += w.h;
            return x;
          },
          "par/hits_half_sums");
      float inv_a = sums.a > 0 ? static_cast<float>(1.0 / sums.a) : 0.0f;
      float inv_h = sums.h > 0 ? static_cast<float>(1.0 / sums.h) : 0.0f;
      delta = par::ParallelReduce<double>(
          0, n2, par::kReduceBlock, 0.0,
          [&](int64_t lo, int64_t hi) {
            double local = 0.0;
            for (int64_t i = lo; i < hi; ++i) {
              float next = y[i] * (is_authority[i] ? inv_a : inv_h);
              local += std::fabs(static_cast<double>(next) - v[i]);
              v[i] = next;
            }
            return local;
          },
          [](double a, double b) { return a + b; },
          "par/hits_update");
    }
    ++out.stats.iterations;
    out.stats.delta_history.push_back(delta);
    if (iter_span.active()) {
      iter_span.Arg("iter", it);
      iter_span.Arg("residual", delta);
    }
    if (!guard.Update(delta)) {
      out.stats.health = IterativeHealth::kNumericalError;
      break;
    }
    if (delta < options.tolerance) {
      out.stats.converged = true;
      break;
    }
  }
  if (!out.stats.converged && out.stats.health == IterativeHealth::kHealthy &&
      options.require_convergence) {
    out.stats.health = IterativeHealth::kDidNotConverge;
  }
  obs::MetricsRegistry::Global()
      .GetHistogram("tilespmv_hits_iterations",
                    "Iterations to convergence per HITS run",
                    obs::ExponentialBuckets(1, 2.0, 10))
      ->Observe(out.stats.iterations);
  out.stats.gpu_seconds =
      out.stats.seconds_per_iteration * out.stats.iterations;
  out.stats.flops = static_cast<uint64_t>(out.stats.iterations) *
                    (kernel.timing().flops + 6ULL * n2);
  out.stats.useful_bytes = static_cast<uint64_t>(out.stats.iterations) *
                           (kernel.timing().useful_bytes + 28ULL * n2);

  std::vector<float> combined;
  if (!row_perm.empty()) {
    UnpermuteVector(row_perm, v, &combined);
  } else {
    combined = std::move(v);
  }
  out.authority.assign(combined.begin(), combined.begin() + n);
  out.hub.assign(combined.begin() + n, combined.end());
  return out;
}

void HitsReference(const CsrMatrix& adjacency, int iterations,
                   std::vector<double>* authority, std::vector<double>* hub) {
  const int32_t n = adjacency.rows;
  CsrMatrix at = Transpose(adjacency);
  std::vector<double> a(n, 1.0 / n), h(n, 1.0 / n);
  std::vector<double> a2(n), h2(n);
  for (int it = 0; it < iterations; ++it) {
    // a' = A^T h ; h' = A a.
    for (int32_t r = 0; r < n; ++r) {
      double sum = 0.0;
      for (int64_t k = at.row_ptr[r]; k < at.row_ptr[r + 1]; ++k) {
        sum += static_cast<double>(at.values[k]) * h[at.col_idx[k]];
      }
      a2[r] = sum;
    }
    for (int32_t r = 0; r < n; ++r) {
      double sum = 0.0;
      for (int64_t k = adjacency.row_ptr[r]; k < adjacency.row_ptr[r + 1];
           ++k) {
        sum += static_cast<double>(adjacency.values[k]) * a[adjacency.col_idx[k]];
      }
      h2[r] = sum;
    }
    double sum_a = 0.0, sum_h = 0.0;
    for (int32_t i = 0; i < n; ++i) {
      sum_a += std::fabs(a2[i]);
      sum_h += std::fabs(h2[i]);
    }
    for (int32_t i = 0; i < n; ++i) {
      a[i] = sum_a > 0 ? a2[i] / sum_a : 0.0;
      h[i] = sum_h > 0 ? h2[i] / sum_h : 0.0;
    }
  }
  *authority = std::move(a);
  *hub = std::move(h);
}

}  // namespace tilespmv
