#ifndef TILESPMV_GRAPH_CENTRALITY_H_
#define TILESPMV_GRAPH_CENTRALITY_H_

#include "graph/power_method.h"
#include "sparse/csr.h"
#include "util/status.h"

namespace tilespmv {

/// Additional power-method centralities in the same family as Appendix F's
/// algorithms — every one is an iterated SpMV, so the paper's kernel
/// optimizations apply unchanged.

/// Katz centrality parameters: x <- alpha * A^T x + beta * 1, converging
/// when alpha is below 1 / lambda_max. alpha <= 0 picks a safe value
/// automatically from the spectral bound lambda_max <= sqrt(||A||_1 *
/// ||A||_inf) (0.85 of the bound's reciprocal).
struct KatzOptions {
  float alpha = 0.0f;  ///< <= 0: auto.
  float beta = 1.0f;
  int max_iterations = 200;
  float tolerance = 1e-5f;
};

/// Runs Katz centrality with `kernel` on the adjacency matrix.
Result<IterativeResult> RunKatz(const CsrMatrix& adjacency,
                                SpMVKernel* kernel,
                                const KatzOptions& options);

/// Double-precision host reference.
std::vector<double> KatzReference(const CsrMatrix& adjacency, double alpha,
                                  double beta, int iterations);

/// SALSA (Lempel & Moran): the stochastic cousin of HITS — authority and
/// hub chains on the row/column-normalized bipartite support. One combined
/// 2n x 2n SpMV per iteration, exactly like the paper's HITS formulation.
struct SalsaOptions {
  int max_iterations = 200;
  float tolerance = 1e-5f;
};

struct SalsaScores {
  std::vector<float> authority;
  std::vector<float> hub;
  IterativeResult stats;
};

/// Runs SALSA with `kernel` on the adjacency matrix.
Result<SalsaScores> RunSalsa(const CsrMatrix& adjacency, SpMVKernel* kernel,
                             const SalsaOptions& options);

}  // namespace tilespmv

#endif  // TILESPMV_GRAPH_CENTRALITY_H_
