#ifndef TILESPMV_GRAPH_PAGERANK_H_
#define TILESPMV_GRAPH_PAGERANK_H_

#include "graph/power_method.h"
#include "robust/cancel.h"
#include "sparse/csr.h"
#include "util/status.h"

namespace tilespmv {

/// PageRank parameters (Appendix F, Equation 6).
struct PageRankOptions {
  float damping = 0.85f;      ///< c in the paper.
  int max_iterations = 100;
  float tolerance = 1e-5f;    ///< L1 change per iteration to declare converged.
  /// Optional personalization (topic-sensitive) vector replacing the uniform
  /// p0 of Equation 6; must have one entry per node and sum to ~1. Not owned;
  /// must outlive the call. nullptr = classic uniform restart.
  const std::vector<float>* personalization = nullptr;
  /// Checked at each iteration boundary; a fired token aborts the solve with
  /// health kCancelled and the partial iteration count. Not owned; must
  /// outlive the call. nullptr = not cancellable.
  const robust::CancelToken* cancel = nullptr;
  /// When set, exhausting max_iterations without meeting `tolerance` reports
  /// health kDidNotConverge instead of a healthy partial result.
  bool require_convergence = false;
  /// Residual-divergence trip factor for the ResidualGuard (<= 0 disables
  /// divergence tracking; NaN/Inf detection is always on).
  double divergence_factor = 1e6;
  /// Run the iteration loop on the kernel's task graph when it exposes one
  /// (graph/pipeline.h): iteration i+1's SpMV chunks start while iteration
  /// i's update blocks finish, with bitwise-identical results. false forces
  /// the fork-join loop (ablation / bench baseline).
  bool pipeline = true;
};

/// Runs PageRank on the directed adjacency matrix `adjacency` using `kernel`
/// for the W^T * p products: p <- c W^T p + (1-c) p0 until convergence.
/// The kernel is Setup() on W^T inside; modeled time counts the SpMV plus
/// the axpy and convergence-reduction kernels of each iteration.
Result<IterativeResult> RunPageRank(const CsrMatrix& adjacency,
                                    SpMVKernel* kernel,
                                    const PageRankOptions& options);

/// The matrix PageRank iterates with: W^T, where W is the row-normalized
/// adjacency matrix (Equation 6). Exposed so a serving layer can Setup() a
/// kernel on it once and reuse the plan across queries.
CsrMatrix PageRankMatrix(const CsrMatrix& adjacency);

/// The iteration loop of RunPageRank on a kernel already Setup() on
/// PageRankMatrix(adjacency). Only const kernel methods are touched, so one
/// shared plan serves any number of concurrent callers (each call varies
/// damping / tolerance / personalization freely).
Result<IterativeResult> RunPageRankPrepared(const SpMVKernel& kernel,
                                            const PageRankOptions& options);

/// Double-precision host reference for correctness checks.
std::vector<double> PageRankReference(const CsrMatrix& adjacency,
                                      double damping, int iterations);

}  // namespace tilespmv

#endif  // TILESPMV_GRAPH_PAGERANK_H_
