#ifndef TILESPMV_GRAPH_POWER_METHOD_H_
#define TILESPMV_GRAPH_POWER_METHOD_H_

#include <cstdint>
#include <vector>

#include "gpusim/device_spec.h"
#include "kernels/spmv.h"

namespace tilespmv {

/// Outcome of an iterative graph-mining run (PageRank / HITS / RWR): the
/// converged vector (original index space), the iteration count, and the
/// modeled device time. gflops()/gbps() are the metrics of Figures 3 and 8;
/// `gpu_seconds` is what Tables 1/4/5 report.
struct IterativeResult {
  std::vector<float> result;
  int iterations = 0;
  bool converged = false;
  double gpu_seconds = 0.0;
  double seconds_per_iteration = 0.0;
  uint64_t flops = 0;
  uint64_t useful_bytes = 0;
  /// L1 change of the iterate after each iteration — the convergence track
  /// a monitoring caller would plot.
  std::vector<double> delta_history;

  double gflops() const {
    return gpu_seconds > 0
               ? static_cast<double>(flops) / gpu_seconds * 1e-9
               : 0.0;
  }
  double gbps() const {
    return gpu_seconds > 0
               ? static_cast<double>(useful_bytes) / gpu_seconds * 1e-9
               : 0.0;
  }
};

/// Cost model for the auxiliary element-wise kernels the power method needs
/// around each SpMV (vector axpy/scale, parallel reductions for
/// normalization and convergence checks). These are perfectly coalesced
/// streaming kernels: bandwidth-bound with one launch overhead each.
double StreamKernelSeconds(uint64_t bytes, const gpusim::DeviceSpec& spec);

/// Seconds for one parallel reduction over n floats.
double ReductionSeconds(int64_t n, const gpusim::DeviceSpec& spec);

/// Seconds for one element-wise pass reading `reads` and writing `writes`
/// floats (axpy reads 2n writes n; scale reads n writes n).
double ElementwiseSeconds(int64_t reads, int64_t writes,
                          const gpusim::DeviceSpec& spec);

}  // namespace tilespmv

#endif  // TILESPMV_GRAPH_POWER_METHOD_H_
