#ifndef TILESPMV_GRAPH_POWER_METHOD_H_
#define TILESPMV_GRAPH_POWER_METHOD_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "gpusim/device_spec.h"
#include "kernels/spmv.h"

namespace tilespmv {

/// Health of an iterative solve, carried alongside the (possibly partial)
/// result instead of being thrown away. The serving engine maps non-healthy
/// values to typed statuses (kDeadlineExceeded / kNumericalError /
/// kDidNotConverge) while keeping iterations-used in the response; batch
/// paths track one health per query column. See docs/ROBUSTNESS.md.
enum class IterativeHealth {
  kHealthy = 0,      ///< Converged, or ran its iteration budget cleanly.
  kCancelled,        ///< CancelToken fired (deadline/shed) mid-solve.
  kNumericalError,   ///< NaN/Inf iterate or diverging residual.
  kDidNotConverge,   ///< Budget exhausted with require_convergence set.
};

/// Stable lowercase name ("healthy", "cancelled", ...), for logs and JSON.
const char* IterativeHealthName(IterativeHealth health);

/// Residual-divergence and NaN/Inf watchdog for power-method loops. Feed it
/// the per-iteration L1 delta; it trips on any non-finite delta (the delta
/// reduction sums the whole iterate, so a single NaN/Inf entry poisons it —
/// one isfinite check covers the vector) or when the residual has grown
/// `divergence_factor`x above the best delta seen while also being > 1
/// absolute (so pre-convergence wobble on tiny residuals never trips it).
class ResidualGuard {
 public:
  /// `divergence_factor` <= 0 disables divergence tracking (NaN/Inf is
  /// always checked).
  explicit ResidualGuard(double divergence_factor = 1e6)
      : factor_(divergence_factor) {}

  /// Returns false when the solve should abort with kNumericalError.
  bool Update(double delta) {
    if (!std::isfinite(delta)) return false;
    if (factor_ > 0.0) {
      if (delta < min_delta_) min_delta_ = delta;
      double floor = min_delta_ < 1e-300 ? 1e-300 : min_delta_;
      if (delta > factor_ * floor && delta > 1.0) return false;
    }
    return true;
  }

 private:
  double factor_;
  double min_delta_ = 1e300;
};

/// Outcome of an iterative graph-mining run (PageRank / HITS / RWR): the
/// converged vector (original index space), the iteration count, and the
/// modeled device time. gflops()/gbps() are the metrics of Figures 3 and 8;
/// `gpu_seconds` is what Tables 1/4/5 report.
struct IterativeResult {
  std::vector<float> result;
  int iterations = 0;
  bool converged = false;
  IterativeHealth health = IterativeHealth::kHealthy;
  double gpu_seconds = 0.0;
  double seconds_per_iteration = 0.0;
  uint64_t flops = 0;
  uint64_t useful_bytes = 0;
  /// L1 change of the iterate after each iteration — the convergence track
  /// a monitoring caller would plot.
  std::vector<double> delta_history;

  double gflops() const {
    return gpu_seconds > 0
               ? static_cast<double>(flops) / gpu_seconds * 1e-9
               : 0.0;
  }
  double gbps() const {
    return gpu_seconds > 0
               ? static_cast<double>(useful_bytes) / gpu_seconds * 1e-9
               : 0.0;
  }
};

/// Cost model for the auxiliary element-wise kernels the power method needs
/// around each SpMV (vector axpy/scale, parallel reductions for
/// normalization and convergence checks). These are perfectly coalesced
/// streaming kernels: bandwidth-bound with one launch overhead each.
double StreamKernelSeconds(uint64_t bytes, const gpusim::DeviceSpec& spec);

/// Seconds for one parallel reduction over n floats.
double ReductionSeconds(int64_t n, const gpusim::DeviceSpec& spec);

/// Seconds for one element-wise pass reading `reads` and writing `writes`
/// floats (axpy reads 2n writes n; scale reads n writes n).
double ElementwiseSeconds(int64_t reads, int64_t writes,
                          const gpusim::DeviceSpec& spec);

}  // namespace tilespmv

#endif  // TILESPMV_GRAPH_POWER_METHOD_H_
