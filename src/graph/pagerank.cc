#include "graph/pagerank.h"

#include <cmath>

#include "graph/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "robust/fault_injection.h"
#include "sparse/convert.h"
#include "util/check.h"
#include "util/timer.h"

namespace tilespmv {

CsrMatrix PageRankMatrix(const CsrMatrix& adjacency) {
  // Equation 6 multiplies by W^T, W the row-normalized adjacency matrix.
  return Transpose(RowNormalize(adjacency));
}

Result<IterativeResult> RunPageRank(const CsrMatrix& adjacency,
                                    SpMVKernel* kernel,
                                    const PageRankOptions& options) {
  TILESPMV_CHECK(kernel != nullptr);
  if (adjacency.rows != adjacency.cols)
    return Status::InvalidArgument("PageRank needs a square adjacency matrix");
  if (adjacency.rows == 0) return Status::InvalidArgument("empty graph");
  TILESPMV_RETURN_IF_ERROR(kernel->Setup(PageRankMatrix(adjacency)));
  return RunPageRankPrepared(*kernel, options);
}

Result<IterativeResult> RunPageRankPrepared(const SpMVKernel& kernel,
                                            const PageRankOptions& options) {
  const int32_t n = kernel.rows();
  if (n == 0) return Status::InvalidArgument("empty graph");
  // For relabeling kernels the whole loop runs in internal space; a uniform
  // p0 is permutation-invariant, and the result is unpermuted at the end.
  const Permutation& row_perm = kernel.row_permutation();
  TILESPMV_CHECK(row_perm.size() == kernel.col_permutation().size());

  const float c = options.damping;
  // Restart vector in internal index space. The uniform default is
  // permutation-invariant; a personalization vector must be relabeled.
  std::vector<float> p0(n, 1.0f / static_cast<float>(n));
  if (options.personalization != nullptr) {
    if (options.personalization->size() != static_cast<size_t>(n)) {
      return Status::InvalidArgument(
          "personalization vector size != node count");
    }
    if (row_perm.empty()) {
      p0 = *options.personalization;
    } else {
      PermuteVector(row_perm, *options.personalization, &p0);
    }
  }
  std::vector<float> p = p0;
  std::vector<float> y;

  const double aux_seconds =
      ElementwiseSeconds(2 * n, n, kernel.spec()) +  // axpy with p0.
      ReductionSeconds(n, kernel.spec());            // convergence check.
  IterativeResult out;
  out.seconds_per_iteration = kernel.timing().seconds + aux_seconds;

  WallTimer run_timer;
  bool pipelined = false;
  if (options.pipeline) {
    // Barrier-free loop on the kernel's task graph (graph/pipeline.h). The
    // addend folds the restart term once up front: c*y[i] + (1-c)*p0[i]
    // with addend[i] = (1-c)*p0[i] evaluates the exact fork-join
    // expression, so the iterates stay bitwise identical.
    std::vector<float> addend(static_cast<size_t>(n));
    for (int32_t i = 0; i < n; ++i) addend[i] = (1.0f - c) * p0[i];
    PipelineLoopParams params;
    params.max_iterations = options.max_iterations;
    params.tolerance = options.tolerance;
    params.cancel = options.cancel;
    params.divergence_factor = options.divergence_factor;
    pipelined = PipelineAxpyLoop(kernel, TileDag::PowerKind::kPageRank, c,
                                 addend, params, "pagerank/iteration",
                                 "graph/pagerank_nan", &p, &out);
  }
  ResidualGuard guard(options.divergence_factor);
  for (int it = 0; !pipelined && it < options.max_iterations; ++it) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      out.health = IterativeHealth::kCancelled;
      break;
    }
    TILESPMV_FAULT_STALL("graph/iteration_slow");
    obs::TraceSpan iter_span("graph", "pagerank/iteration");
    double delta = 0.0;
    {
      obs::TraceSpan spmv_span("spmv", "spmv/multiply");
      kernel.Multiply(p, &y);
    }
    if (TILESPMV_FAULT_POINT("graph/pagerank_nan")) y[0] = NAN;
    {
      obs::TraceSpan red_span("reduction", "reduction/pagerank_update");
      // Fixed-block reduction: each block updates its slice of p and sums
      // its residual contribution serially; partials combine in block
      // order, so delta is bitwise identical at every thread count.
      delta = par::ParallelReduce<double>(
          0, n, par::kReduceBlock, 0.0,
          [&](int64_t lo, int64_t hi) {
            double local = 0.0;
            for (int64_t i = lo; i < hi; ++i) {
              float next = c * y[i] + (1.0f - c) * p0[i];
              local += std::fabs(static_cast<double>(next) - p[i]);
              p[i] = next;
            }
            return local;
          },
          [](double a, double b) { return a + b; },
          "par/pagerank_update");
    }
    ++out.iterations;
    out.delta_history.push_back(delta);
    if (iter_span.active()) {
      iter_span.Arg("iter", it);
      iter_span.Arg("residual", delta);
    }
    if (!guard.Update(delta)) {
      out.health = IterativeHealth::kNumericalError;
      break;
    }
    if (delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  if (!out.converged && out.health == IterativeHealth::kHealthy &&
      options.require_convergence) {
    out.health = IterativeHealth::kDidNotConverge;
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics
      .GetHistogram("tilespmv_pagerank_iterations",
                    "Iterations to convergence per PageRank run",
                    obs::ExponentialBuckets(1, 2.0, 10))
      ->Observe(out.iterations);
  metrics
      .GetHistogram("tilespmv_pagerank_host_seconds",
                    "Host wall time of the PageRank iteration loop",
                    obs::ExponentialBuckets(1e-4, 4.0, 12))
      ->Observe(run_timer.Seconds());
  out.gpu_seconds = out.seconds_per_iteration * out.iterations;
  out.flops = static_cast<uint64_t>(out.iterations) *
              (kernel.timing().flops + 3ULL * n);
  out.useful_bytes = static_cast<uint64_t>(out.iterations) *
                     (kernel.timing().useful_bytes + 16ULL * n);
  if (!row_perm.empty()) {
    UnpermuteVector(row_perm, p, &out.result);
  } else {
    out.result = std::move(p);
  }
  return out;
}

std::vector<double> PageRankReference(const CsrMatrix& adjacency,
                                      double damping, int iterations) {
  const int32_t n = adjacency.rows;
  CsrMatrix wt = Transpose(RowNormalize(adjacency));
  std::vector<double> p(n, 1.0 / n);
  std::vector<double> y(n);
  for (int it = 0; it < iterations; ++it) {
    for (int32_t r = 0; r < n; ++r) {
      double sum = 0.0;
      for (int64_t k = wt.row_ptr[r]; k < wt.row_ptr[r + 1]; ++k) {
        sum += static_cast<double>(wt.values[k]) * p[wt.col_idx[k]];
      }
      y[r] = damping * sum + (1.0 - damping) / n;
    }
    p.swap(y);
  }
  return p;
}

}  // namespace tilespmv
