#ifndef TILESPMV_GRAPH_PIPELINE_H_
#define TILESPMV_GRAPH_PIPELINE_H_

#include <vector>

#include "core/tile_dag.h"
#include "graph/power_method.h"
#include "kernels/spmv.h"
#include "robust/cancel.h"

namespace tilespmv {

/// Iteration-control knobs shared by the pipelined loop runners (the subset
/// of PageRankOptions / HitsOptions / RwrOptions the loop itself consumes).
struct PipelineLoopParams {
  int max_iterations = 0;
  float tolerance = 0.0f;
  const robust::CancelToken* cancel = nullptr;
  double divergence_factor = 1e6;
};

/// Barrier-free power-method loops over a kernel's TileDag
/// (docs/PARALLELISM.md): two iterations are unrolled into one task graph,
/// so iteration i+1's tile chunks start while iteration i's update blocks
/// are still finishing. Every update keeps the fork-join recipe exactly —
/// the same per-element expressions and the same fixed par::kReduceBlock
/// delta blocks combined in block order — so the iterates, residuals and
/// final vector are bitwise identical to the fork-join loop at every thread
/// count. Convergence/cancel/guard checks run at iteration granularity when
/// the deltas are consumed; on an odd stop the speculative second iteration
/// is discarded (its writes only touch the ping-pong buffer the result is
/// not taken from).
///
/// Each runner returns false — touching nothing — when the kernel has no
/// TileDag or the matrix is not square; the caller then runs its fork-join
/// loop. On true, `p` holds the final iterate (internal index space) and
/// `out`'s iterations / delta_history / converged / health are filled; the
/// caller keeps ownership of timing metrics and unpermutation.

/// The axpy-style loop shared by PageRank and RWR:
///   p <- scale * (A p) + addend,  delta = L1(p_next - p_cur).
/// PageRank passes addend[i] = (1 - c) * p0[i]; RWR passes the restart
/// one-hot (1 - c at the query node, 0 elsewhere — the fork-join loop also
/// adds its ternary operand unconditionally, so the expression shape
/// matches). `iter_span_name` ("pagerank/iteration" / "rwr/iteration") is
/// recorded retroactively per consumed iteration; `nan_point` is the
/// existing per-iteration fault-injection point, fired inside block 0's
/// update task.
bool PipelineAxpyLoop(const SpMVKernel& kernel, TileDag::PowerKind kind,
                      float scale, const std::vector<float>& addend,
                      const PipelineLoopParams& params,
                      const char* iter_span_name, const char* nan_point,
                      std::vector<float>* p, IterativeResult* out);

/// The HITS loop: y = A v, the two halves' L1 norms reduced per block and
/// combined by a single normalize task, then v <- y scaled by the half
/// inverses. `is_authority` marks the authority positions in internal
/// space (as built by RunHitsPrepared).
bool PipelineHitsLoop(const SpMVKernel& kernel,
                      const std::vector<char>& is_authority,
                      const PipelineLoopParams& params, std::vector<float>* v,
                      IterativeResult* out);

}  // namespace tilespmv

#endif  // TILESPMV_GRAPH_PIPELINE_H_
