#include "graph/centrality.h"

#include <cmath>

#include "sparse/convert.h"
#include "util/check.h"

namespace tilespmv {

Result<IterativeResult> RunKatz(const CsrMatrix& adjacency,
                                SpMVKernel* kernel,
                                const KatzOptions& options) {
  TILESPMV_CHECK(kernel != nullptr);
  if (adjacency.rows != adjacency.cols)
    return Status::InvalidArgument("Katz needs a square adjacency matrix");
  const int32_t n = adjacency.rows;
  if (n == 0) return Status::InvalidArgument("empty graph");

  CsrMatrix at = Transpose(adjacency);
  TILESPMV_RETURN_IF_ERROR(kernel->Setup(at));
  const Permutation& row_perm = kernel->row_permutation();

  float alpha = options.alpha;
  if (alpha <= 0) {
    // lambda_max <= sqrt(||A||_1 ||A||_inf) = sqrt(max col sum * max row
    // sum) for non-negative A; stay safely inside 1/lambda_max.
    double max_row = 1, max_col = 1;
    for (int32_t r = 0; r < n; ++r) {
      double row_sum = 0;
      for (int64_t k = adjacency.row_ptr[r]; k < adjacency.row_ptr[r + 1];
           ++k) {
        row_sum += std::fabs(adjacency.values[k]);
      }
      max_row = std::max(max_row, row_sum);
    }
    std::vector<double> col_sum(n, 0.0);
    for (int64_t k = 0; k < adjacency.nnz(); ++k) {
      col_sum[adjacency.col_idx[k]] += std::fabs(adjacency.values[k]);
    }
    for (double s : col_sum) max_col = std::max(max_col, s);
    alpha = static_cast<float>(0.85 / std::sqrt(max_row * max_col));
  }
  const float beta = options.beta;
  std::vector<float> x(n, beta);
  std::vector<float> y;

  const double aux_seconds =
      ElementwiseSeconds(2 * n, n, kernel->spec()) +
      ReductionSeconds(n, kernel->spec());
  IterativeResult out;
  out.seconds_per_iteration = kernel->timing().seconds + aux_seconds;

  for (int it = 0; it < options.max_iterations; ++it) {
    kernel->Multiply(x, &y);
    double delta = 0.0;
    for (int32_t i = 0; i < n; ++i) {
      float next = alpha * y[i] + beta;
      delta += std::fabs(static_cast<double>(next) - x[i]);
      x[i] = next;
    }
    ++out.iterations;
    out.delta_history.push_back(delta);
    if (!std::isfinite(delta) || delta > 1e30) {
      return Status::InvalidArgument(
          "Katz iteration diverged: alpha exceeds 1/lambda_max");
    }
    if (delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.gpu_seconds = out.seconds_per_iteration * out.iterations;
  out.flops = static_cast<uint64_t>(out.iterations) *
              (kernel->timing().flops + 2ULL * n);
  out.useful_bytes = static_cast<uint64_t>(out.iterations) *
                     (kernel->timing().useful_bytes + 12ULL * n);
  if (!row_perm.empty()) {
    UnpermuteVector(row_perm, x, &out.result);
  } else {
    out.result = std::move(x);
  }
  return out;
}

std::vector<double> KatzReference(const CsrMatrix& adjacency, double alpha,
                                  double beta, int iterations) {
  const int32_t n = adjacency.rows;
  CsrMatrix at = Transpose(adjacency);
  std::vector<double> x(n, beta), y(n);
  for (int it = 0; it < iterations; ++it) {
    for (int32_t r = 0; r < n; ++r) {
      double sum = 0.0;
      for (int64_t k = at.row_ptr[r]; k < at.row_ptr[r + 1]; ++k) {
        sum += static_cast<double>(at.values[k]) * x[at.col_idx[k]];
      }
      y[r] = alpha * sum + beta;
    }
    x.swap(y);
  }
  return x;
}

Result<SalsaScores> RunSalsa(const CsrMatrix& adjacency, SpMVKernel* kernel,
                             const SalsaOptions& options) {
  TILESPMV_CHECK(kernel != nullptr);
  if (adjacency.rows != adjacency.cols)
    return Status::InvalidArgument("SALSA needs a square adjacency matrix");
  const int32_t n = adjacency.rows;
  if (n == 0) return Status::InvalidArgument("empty graph");

  // SALSA's combined matrix: [[0, Wr^T], [Wc, 0]] where Wr is the
  // row-normalized and Wc the column-normalized adjacency matrix; the
  // authority chain is the alternating product. Same 2n x 2n structure as
  // Equation 8 with the stochastic normalizations baked in.
  CsrMatrix wr = RowNormalize(adjacency);
  CsrMatrix wc = ColNormalize(adjacency);
  CsrMatrix t = Transpose(wr);
  std::vector<Triplet> triplets;
  triplets.reserve(2 * static_cast<size_t>(adjacency.nnz()));
  for (int32_t r = 0; r < n; ++r) {
    for (int64_t k = t.row_ptr[r]; k < t.row_ptr[r + 1]; ++k) {
      triplets.push_back(Triplet{r, t.col_idx[k] + n, t.values[k]});
    }
    for (int64_t k = wc.row_ptr[r]; k < wc.row_ptr[r + 1]; ++k) {
      triplets.push_back(Triplet{r + n, wc.col_idx[k], wc.values[k]});
    }
  }
  CsrMatrix m = CsrMatrix::FromTriplets(2 * n, 2 * n, std::move(triplets));
  TILESPMV_RETURN_IF_ERROR(kernel->Setup(m));
  const Permutation& row_perm = kernel->row_permutation();

  const int32_t n2 = 2 * n;
  std::vector<char> is_authority(n2);
  for (int32_t i = 0; i < n2; ++i) {
    int32_t orig = row_perm.empty() ? i : row_perm[i];
    is_authority[i] = orig < n ? 1 : 0;
  }
  std::vector<float> v(n2, 1.0f / static_cast<float>(n));
  std::vector<float> y;

  const gpusim::DeviceSpec& spec = kernel->spec();
  const double aux_seconds = 3 * ReductionSeconds(n2, spec) +
                             2 * ElementwiseSeconds(n2, n2, spec);
  SalsaScores out;
  out.stats.seconds_per_iteration = kernel->timing().seconds + aux_seconds;

  for (int it = 0; it < options.max_iterations; ++it) {
    kernel->Multiply(v, &y);
    double sum_a = 0.0, sum_h = 0.0;
    for (int32_t i = 0; i < n2; ++i) {
      (is_authority[i] ? sum_a : sum_h) += std::fabs(y[i]);
    }
    float inv_a = sum_a > 0 ? static_cast<float>(1.0 / sum_a) : 0.0f;
    float inv_h = sum_h > 0 ? static_cast<float>(1.0 / sum_h) : 0.0f;
    double delta = 0.0;
    for (int32_t i = 0; i < n2; ++i) {
      float next = y[i] * (is_authority[i] ? inv_a : inv_h);
      delta += std::fabs(static_cast<double>(next) - v[i]);
      v[i] = next;
    }
    ++out.stats.iterations;
    out.stats.delta_history.push_back(delta);
    if (delta < options.tolerance) {
      out.stats.converged = true;
      break;
    }
  }
  out.stats.gpu_seconds =
      out.stats.seconds_per_iteration * out.stats.iterations;
  out.stats.flops = static_cast<uint64_t>(out.stats.iterations) *
                    (kernel->timing().flops + 6ULL * n2);
  out.stats.useful_bytes = static_cast<uint64_t>(out.stats.iterations) *
                           (kernel->timing().useful_bytes + 28ULL * n2);

  std::vector<float> combined;
  if (!row_perm.empty()) {
    UnpermuteVector(row_perm, v, &combined);
  } else {
    combined = std::move(v);
  }
  out.authority.assign(combined.begin(), combined.begin() + n);
  out.hub.assign(combined.begin() + n, combined.end());
  return out;
}

}  // namespace tilespmv
