#ifndef TILESPMV_GRAPH_HITS_H_
#define TILESPMV_GRAPH_HITS_H_

#include "graph/power_method.h"
#include "robust/cancel.h"
#include "sparse/csr.h"
#include "util/status.h"

namespace tilespmv {

/// HITS parameters (Appendix F, Equations 7-8).
struct HitsOptions {
  int max_iterations = 100;
  float tolerance = 1e-5f;
  /// Checked at each iteration boundary; fires -> health kCancelled with the
  /// partial iteration count. Not owned. nullptr = not cancellable.
  const robust::CancelToken* cancel = nullptr;
  /// Report kDidNotConverge when the iteration budget runs out unconverged.
  bool require_convergence = false;
  /// ResidualGuard divergence trip factor (<= 0 disables).
  double divergence_factor = 1e6;
  /// Pipelined task-graph loop when the kernel exposes a TileDag
  /// (graph/pipeline.h); false forces the fork-join loop.
  bool pipeline = true;
};

/// Converged authority and hub scores (original index space, each summing
/// to 1).
struct HitsScores {
  std::vector<float> authority;
  std::vector<float> hub;
  IterativeResult stats;  ///< stats.result is left empty; scores live here.
};

/// Runs HITS by the power method on the combined 2n x 2n matrix
/// [[0, A^T], [A, 0]] (Equation 8). Each iteration costs one SpMV, three
/// reductions (two normalizations + convergence) and two vector scalings,
/// exactly the kernel inventory in Appendix F.
Result<HitsScores> RunHits(const CsrMatrix& adjacency, SpMVKernel* kernel,
                           const HitsOptions& options);

/// The iteration loop of RunHits on a kernel already Setup() on
/// BuildHitsMatrix(adjacency) (so kernel.rows() == 2n). Only const kernel
/// methods are touched; one shared plan serves concurrent callers.
Result<HitsScores> RunHitsPrepared(const SpMVKernel& kernel,
                                   const HitsOptions& options);

/// Double-precision host reference.
void HitsReference(const CsrMatrix& adjacency, int iterations,
                   std::vector<double>* authority, std::vector<double>* hub);

}  // namespace tilespmv

#endif  // TILESPMV_GRAPH_HITS_H_
