#include "graph/pipeline.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "obs/trace.h"
#include "par/taskgraph.h"
#include "robust/fault_injection.h"

namespace tilespmv {
namespace {

/// Retroactively records one "<alg>/iteration" span. The pipelined loop has
/// no per-iteration scope to wrap a TraceSpan around (the two iterations of
/// a pair overlap), so the pair's wall window is split evenly — the same
/// pattern the serving engine uses for query lifetime events.
void RecordIterationEvent(const char* name, double ts_us, double dur_us,
                          int iter, double residual) {
  obs::Tracer& tracer = obs::Tracer::Global();
  if (!tracer.enabled()) return;
  obs::TraceEvent event;
  event.name = name;
  event.cat = "graph";
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"iter\":%d,\"residual\":%.6g", iter,
                residual);
  event.args = buf;
  tracer.Record(std::move(event));
}

/// Which ping-pong buffer holds the final iterate: 0 = the caller's p (the
/// pair input / iteration 1 output), 1 = the intermediate buffer (iteration
/// 0 output).
struct PairLoopOutcome {
  int final_buf = 0;
};

/// The pair-at-a-time driver shared by the axpy and HITS runners: runs the
/// frozen two-iteration graph, then consumes the two deltas at iteration
/// granularity — combining each iteration's fixed-block partials in block
/// order, exactly like par::ParallelReduce — against the guard, tolerance,
/// budget and cancel token. Fills out->iterations / delta_history /
/// converged / health.
PairLoopOutcome DrivePairs(const par::TaskGraph& graph,
                           const std::function<void(int32_t)>& body,
                           std::vector<double> delta_parts[2],
                           const PipelineLoopParams& params,
                           const char* iter_span_name, IterativeResult* out) {
  PairLoopOutcome outcome;
  obs::Tracer& tracer = obs::Tracer::Global();
  ResidualGuard guard(params.divergence_factor);
  const auto combine = [&](int iter) {
    double acc = 0.0;
    for (double part : delta_parts[iter]) acc += part;
    return acc;
  };
  int it = 0;
  while (it < params.max_iterations) {
    if (params.cancel != nullptr && params.cancel->cancelled()) {
      out->health = IterativeHealth::kCancelled;
      return outcome;  // Result is the pair input buffer.
    }
    TILESPMV_FAULT_STALL("graph/iteration_slow");
    const double t0 = tracer.enabled() ? tracer.NowMicros() : 0.0;
    par::RunTaskGraph(graph, body);
    const double half_us =
        tracer.enabled() ? (tracer.NowMicros() - t0) / 2.0 : 0.0;

    // Iteration 0 of the pair (output: the intermediate buffer).
    const double delta0 = combine(0);
    ++it;
    ++out->iterations;
    out->delta_history.push_back(delta0);
    RecordIterationEvent(iter_span_name, t0, half_us, it - 1, delta0);
    outcome.final_buf = 1;
    if (!guard.Update(delta0)) {
      out->health = IterativeHealth::kNumericalError;
      return outcome;
    }
    if (delta0 < params.tolerance) {
      out->converged = true;
      return outcome;
    }
    if (it >= params.max_iterations) return outcome;

    // Iteration 1 (output: back in the caller's buffer). The work is
    // already done — these checks just decide whether to consume it, so
    // cancellation keeps iteration granularity.
    if (params.cancel != nullptr && params.cancel->cancelled()) {
      out->health = IterativeHealth::kCancelled;
      return outcome;
    }
    TILESPMV_FAULT_STALL("graph/iteration_slow");
    const double delta1 = combine(1);
    ++it;
    ++out->iterations;
    out->delta_history.push_back(delta1);
    RecordIterationEvent(iter_span_name, t0 + half_us, half_us, it - 1,
                         delta1);
    outcome.final_buf = 0;
    if (!guard.Update(delta1)) {
      out->health = IterativeHealth::kNumericalError;
      return outcome;
    }
    if (delta1 < params.tolerance) {
      out->converged = true;
      return outcome;
    }
  }
  return outcome;
}

}  // namespace

bool PipelineAxpyLoop(const SpMVKernel& kernel, TileDag::PowerKind kind,
                      float scale, const std::vector<float>& addend,
                      const PipelineLoopParams& params,
                      const char* iter_span_name, const char* nan_point,
                      std::vector<float>* p, IterativeResult* out) {
  const TileDag* dag = kernel.tile_dag();
  const int32_t n = kernel.rows();
  if (dag == nullptr || kernel.cols() != n || n == 0) return false;
  const par::TaskGraph& graph = dag->PowerPairGraph(kind);
  const int64_t B = dag->num_blocks();

  std::vector<float>& pa = *p;  // Pair input; iteration 1 output.
  std::vector<float> pb(static_cast<size_t>(n));
  std::vector<float> y[2] = {std::vector<float>(static_cast<size_t>(n)),
                             std::vector<float>(static_cast<size_t>(n))};
  std::vector<float> partial[2] = {
      std::vector<float>(static_cast<size_t>(dag->partial_size())),
      std::vector<float>(static_cast<size_t>(dag->partial_size()))};
  std::vector<double> delta_parts[2] = {
      std::vector<double>(static_cast<size_t>(B)),
      std::vector<double>(static_cast<size_t>(B))};

  const auto body = [&](int32_t t) {
    const TileDag::PowerTask pt = dag->DecodePowerTask(kind, t);
    const float* x_in = pt.iter == 0 ? pa.data() : pb.data();
    float* yd = y[pt.iter].data();
    switch (pt.stage) {
      case TileDag::PowerTask::Stage::kChunk:
        dag->RunChunk(pt.index, x_in, partial[pt.iter].data());
        break;
      case TileDag::PowerTask::Stage::kReduce:
        dag->ReduceBlock(pt.index, partial[pt.iter].data(), yd);
        break;
      case TileDag::PowerTask::Stage::kUpdate: {
        if (pt.index == 0 && TILESPMV_FAULT_POINT(nan_point)) yd[0] = NAN;
        const float* cur = x_in;
        float* next = pt.iter == 0 ? pb.data() : pa.data();
        const int64_t r0 = dag->block_row_begin(pt.index);
        const int64_t r1 = dag->block_row_end(pt.index);
        double local = 0.0;
        for (int64_t i = r0; i < r1; ++i) {
          float nv = scale * yd[i] + addend[static_cast<size_t>(i)];
          local += std::fabs(static_cast<double>(nv) - cur[i]);
          next[i] = nv;
        }
        delta_parts[pt.iter][static_cast<size_t>(pt.index)] = local;
        break;
      }
      default:
        break;
    }
  };

  const PairLoopOutcome outcome =
      DrivePairs(graph, body, delta_parts, params, iter_span_name, out);
  if (outcome.final_buf == 1) pa.swap(pb);
  return true;
}

bool PipelineHitsLoop(const SpMVKernel& kernel,
                      const std::vector<char>& is_authority,
                      const PipelineLoopParams& params, std::vector<float>* v,
                      IterativeResult* out) {
  const TileDag* dag = kernel.tile_dag();
  const int32_t n = kernel.rows();
  if (dag == nullptr || kernel.cols() != n || n == 0) return false;
  const par::TaskGraph& graph =
      dag->PowerPairGraph(TileDag::PowerKind::kHits);
  const int64_t B = dag->num_blocks();

  std::vector<float>& va = *v;
  std::vector<float> vb(static_cast<size_t>(n));
  std::vector<float> y[2] = {std::vector<float>(static_cast<size_t>(n)),
                             std::vector<float>(static_cast<size_t>(n))};
  std::vector<float> partial[2] = {
      std::vector<float>(static_cast<size_t>(dag->partial_size())),
      std::vector<float>(static_cast<size_t>(dag->partial_size()))};
  std::vector<double> delta_parts[2] = {
      std::vector<double>(static_cast<size_t>(B)),
      std::vector<double>(static_cast<size_t>(B))};
  std::vector<double> half_a[2] = {
      std::vector<double>(static_cast<size_t>(B)),
      std::vector<double>(static_cast<size_t>(B))};
  std::vector<double> half_h[2] = {
      std::vector<double>(static_cast<size_t>(B)),
      std::vector<double>(static_cast<size_t>(B))};
  float inv_a[2] = {0.0f, 0.0f};
  float inv_h[2] = {0.0f, 0.0f};

  const auto body = [&](int32_t t) {
    const TileDag::PowerTask pt =
        dag->DecodePowerTask(TileDag::PowerKind::kHits, t);
    const float* x_in = pt.iter == 0 ? va.data() : vb.data();
    float* yd = y[pt.iter].data();
    const int64_t r0 = dag->block_row_begin(pt.index);
    const int64_t r1 = dag->block_row_end(pt.index);
    switch (pt.stage) {
      case TileDag::PowerTask::Stage::kChunk:
        dag->RunChunk(pt.index, x_in, partial[pt.iter].data());
        break;
      case TileDag::PowerTask::Stage::kReduce:
        dag->ReduceBlock(pt.index, partial[pt.iter].data(), yd);
        break;
      case TileDag::PowerTask::Stage::kHalf: {
        // The per-iteration NaN fault lands before the first norm partial,
        // poisoning the half sums exactly like the fork-join injection.
        if (pt.index == 0 && TILESPMV_FAULT_POINT("graph/hits_nan")) {
          yd[0] = NAN;
        }
        double a = 0.0, h = 0.0;
        for (int64_t i = r0; i < r1; ++i) {
          (is_authority[static_cast<size_t>(i)] ? a : h) += std::fabs(yd[i]);
        }
        half_a[pt.iter][static_cast<size_t>(pt.index)] = a;
        half_h[pt.iter][static_cast<size_t>(pt.index)] = h;
        break;
      }
      case TileDag::PowerTask::Stage::kNorm: {
        // Half partials combined in block order — the ParallelReduce
        // recipe, so the sums (and the inverses) are bitwise identical.
        double a = 0.0, h = 0.0;
        for (int64_t b = 0; b < B; ++b) {
          a += half_a[pt.iter][static_cast<size_t>(b)];
          h += half_h[pt.iter][static_cast<size_t>(b)];
        }
        inv_a[pt.iter] = a > 0 ? static_cast<float>(1.0 / a) : 0.0f;
        inv_h[pt.iter] = h > 0 ? static_cast<float>(1.0 / h) : 0.0f;
        break;
      }
      case TileDag::PowerTask::Stage::kUpdate: {
        const float* cur = x_in;
        float* next = pt.iter == 0 ? vb.data() : va.data();
        double local = 0.0;
        for (int64_t i = r0; i < r1; ++i) {
          float nv = yd[i] * (is_authority[static_cast<size_t>(i)]
                                  ? inv_a[pt.iter]
                                  : inv_h[pt.iter]);
          local += std::fabs(static_cast<double>(nv) - cur[i]);
          next[i] = nv;
        }
        delta_parts[pt.iter][static_cast<size_t>(pt.index)] = local;
        break;
      }
    }
  };

  const PairLoopOutcome outcome =
      DrivePairs(graph, body, delta_parts, params, "hits/iteration", out);
  if (outcome.final_buf == 1) va.swap(vb);
  return true;
}

}  // namespace tilespmv
