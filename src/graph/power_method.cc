#include "graph/power_method.h"

namespace tilespmv {

const char* IterativeHealthName(IterativeHealth health) {
  switch (health) {
    case IterativeHealth::kHealthy:
      return "healthy";
    case IterativeHealth::kCancelled:
      return "cancelled";
    case IterativeHealth::kNumericalError:
      return "numerical_error";
    case IterativeHealth::kDidNotConverge:
      return "did_not_converge";
  }
  return "unknown";
}

double StreamKernelSeconds(uint64_t bytes, const gpusim::DeviceSpec& spec) {
  return spec.kernel_launch_overhead_us * 1e-6 +
         static_cast<double>(bytes) / spec.BandwidthBytesPerSec();
}

double ReductionSeconds(int64_t n, const gpusim::DeviceSpec& spec) {
  // First pass reads n floats and writes one partial per block; the small
  // follow-up passes are dominated by launch overhead, folded into one extra
  // launch cost.
  return StreamKernelSeconds(static_cast<uint64_t>(n) * 4, spec) +
         spec.kernel_launch_overhead_us * 1e-6;
}

double ElementwiseSeconds(int64_t reads, int64_t writes,
                          const gpusim::DeviceSpec& spec) {
  return StreamKernelSeconds(static_cast<uint64_t>(reads + writes) * 4, spec);
}

}  // namespace tilespmv
