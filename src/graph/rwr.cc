#include "graph/rwr.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "sparse/convert.h"
#include "util/check.h"

namespace tilespmv {

Status RwrEngine::Init(const CsrMatrix& adjacency, const RwrOptions& options) {
  TILESPMV_CHECK(kernel_ != nullptr);
  if (adjacency.rows != adjacency.cols)
    return Status::InvalidArgument("RWR needs a square adjacency matrix");
  options_ = options;
  n_ = adjacency.rows;
  CsrMatrix w = ColNormalize(Symmetrize(adjacency));
  TILESPMV_RETURN_IF_ERROR(kernel_->Setup(w));
  const Permutation& row_perm = kernel_->row_permutation();
  inv_row_perm_ = row_perm.empty() ? Permutation{}
                                   : InvertPermutation(row_perm);
  return Status::OK();
}

Result<RwrResult> RwrEngine::Query(int32_t node) const {
  return Query(node, options_);
}

Result<RwrResult> RwrEngine::Query(int32_t node,
                                   const RwrOptions& options) const {
  if (node < 0 || node >= n_)
    return Status::InvalidArgument("query node out of range");
  const int32_t internal_node =
      inv_row_perm_.empty() ? node : inv_row_perm_[node];
  const float c = options.restart;

  std::vector<float> r(n_, 0.0f);
  r[internal_node] = 1.0f;
  std::vector<float> y;

  const gpusim::DeviceSpec& spec = kernel_->spec();
  const double aux_seconds = ElementwiseSeconds(2 * n_, n_, spec) +
                             ReductionSeconds(n_, spec);
  RwrResult out;
  out.stats.seconds_per_iteration = kernel_->timing().seconds + aux_seconds;

  for (int it = 0; it < options.max_iterations; ++it) {
    obs::TraceSpan iter_span("graph", "rwr/iteration");
    double delta = 0.0;
    {
      obs::TraceSpan spmv_span("spmv", "spmv/multiply");
      kernel_->Multiply(r, &y);
    }
    {
      obs::TraceSpan red_span("reduction", "reduction/rwr_update");
      // Fixed-block reduction (see par/pool.h): delta is bitwise identical
      // at every thread count.
      delta = par::ParallelReduce<double>(
          0, n_, par::kReduceBlock, 0.0,
          [&](int64_t lo, int64_t hi) {
            double local = 0.0;
            for (int64_t i = lo; i < hi; ++i) {
              float next =
                  c * y[i] + (i == internal_node ? 1.0f - c : 0.0f);
              local += std::fabs(static_cast<double>(next) - r[i]);
              r[i] = next;
            }
            return local;
          },
          [](double a, double b) { return a + b; },
          "par/rwr_update");
    }
    ++out.stats.iterations;
    out.stats.delta_history.push_back(delta);
    if (iter_span.active()) {
      iter_span.Arg("iter", it);
      iter_span.Arg("residual", delta);
    }
    if (delta < options.tolerance) {
      out.stats.converged = true;
      break;
    }
  }
  obs::MetricsRegistry::Global()
      .GetHistogram("tilespmv_rwr_iterations",
                    "Iterations to convergence per RWR query",
                    obs::ExponentialBuckets(1, 2.0, 10))
      ->Observe(out.stats.iterations);
  out.stats.gpu_seconds =
      out.stats.seconds_per_iteration * out.stats.iterations;
  out.stats.flops = static_cast<uint64_t>(out.stats.iterations) *
                    (kernel_->timing().flops + 3ULL * n_);
  out.stats.useful_bytes = static_cast<uint64_t>(out.stats.iterations) *
                           (kernel_->timing().useful_bytes + 16ULL * n_);
  const Permutation& row_perm = kernel_->row_permutation();
  if (!row_perm.empty()) {
    UnpermuteVector(row_perm, r, &out.scores);
  } else {
    out.scores = std::move(r);
  }
  return out;
}

double RwrEngine::BatchIterationSeconds(int batch_size) const {
  TILESPMV_CHECK(kernel_ != nullptr);
  const gpusim::DeviceSpec& spec = kernel_->spec();
  const KernelTiming& t = kernel_->timing();
  // Matrix traffic is read once per iteration regardless of batch size;
  // every additional vector re-pays the x-gather misses (known from the
  // kernel's cache simulation), the y updates, and its own axpy/reduction.
  double extra_bytes =
      static_cast<double>(t.tex_misses) * spec.texture_cache_line_bytes +
      8.0 * n_;
  double per_extra =
      extra_bytes / spec.BandwidthBytesPerSec() +
      ElementwiseSeconds(2 * n_, n_, spec) + ReductionSeconds(n_, spec);
  return t.seconds + ElementwiseSeconds(2 * n_, n_, spec) +
         ReductionSeconds(n_, spec) + (batch_size - 1) * per_extra;
}

Result<std::vector<RwrResult>> RwrEngine::QueryBatch(
    const std::vector<int32_t>& nodes) const {
  return QueryBatch(nodes, options_);
}

Result<std::vector<RwrResult>> RwrEngine::QueryBatch(
    const std::vector<int32_t>& nodes, const RwrOptions& options) const {
  if (nodes.empty()) return std::vector<RwrResult>{};
  const int k = static_cast<int>(nodes.size());
  std::vector<std::vector<float>> r(k);
  std::vector<RwrResult> out(k);
  for (int q = 0; q < k; ++q) {
    if (nodes[q] < 0 || nodes[q] >= n_)
      return Status::InvalidArgument("query node out of range");
    int32_t internal =
        inv_row_perm_.empty() ? nodes[q] : inv_row_perm_[nodes[q]];
    r[q].assign(n_, 0.0f);
    r[q][internal] = 1.0f;
  }
  const float c = options.restart;
  const double iter_seconds = BatchIterationSeconds(k);
  std::vector<bool> done(k, false);
  std::vector<float> y;
  int active = k;
  for (int it = 0; it < options.max_iterations && active > 0; ++it) {
    obs::TraceSpan iter_span("graph", "rwr/batch_iteration");
    if (iter_span.active()) {
      iter_span.Arg("iter", it);
      iter_span.Arg("active_queries", active);
    }
    for (int q = 0; q < k; ++q) {
      if (done[q]) continue;
      int32_t internal =
          inv_row_perm_.empty() ? nodes[q] : inv_row_perm_[nodes[q]];
      {
        obs::TraceSpan spmv_span("spmv", "spmv/multiply");
        kernel_->Multiply(r[q], &y);
      }
      obs::TraceSpan red_span("reduction", "reduction/rwr_update");
      std::vector<float>& rq = r[q];
      double delta = par::ParallelReduce<double>(
          0, n_, par::kReduceBlock, 0.0,
          [&](int64_t lo, int64_t hi) {
            double local = 0.0;
            for (int64_t i = lo; i < hi; ++i) {
              float next = c * y[i] + (i == internal ? 1.0f - c : 0.0f);
              local += std::fabs(static_cast<double>(next) - rq[i]);
              rq[i] = next;
            }
            return local;
          },
          [](double a, double b) { return a + b; },
          "par/rwr_batch_update");
      ++out[q].stats.iterations;
      out[q].stats.delta_history.push_back(delta);
      if (delta < options.tolerance) {
        done[q] = true;
        --active;
        out[q].stats.converged = true;
      }
    }
  }
  const Permutation& row_perm = kernel_->row_permutation();
  for (int q = 0; q < k; ++q) {
    // Bill each query its share of the batched iterations.
    out[q].stats.seconds_per_iteration = iter_seconds / k;
    out[q].stats.gpu_seconds =
        out[q].stats.seconds_per_iteration * out[q].stats.iterations;
    out[q].stats.flops = static_cast<uint64_t>(out[q].stats.iterations) *
                         (kernel_->timing().flops / k + 3ULL * n_);
    out[q].stats.useful_bytes =
        static_cast<uint64_t>(out[q].stats.iterations) *
        (kernel_->timing().useful_bytes / k + 16ULL * n_);
    if (!row_perm.empty()) {
      UnpermuteVector(row_perm, r[q], &out[q].scores);
    } else {
      out[q].scores = std::move(r[q]);
    }
  }
  return out;
}

std::vector<double> RwrReference(const CsrMatrix& adjacency, int32_t node,
                                 double restart, int iterations) {
  CsrMatrix w = ColNormalize(Symmetrize(adjacency));
  const int32_t n = w.rows;
  std::vector<double> r(n, 0.0);
  r[node] = 1.0;
  std::vector<double> y(n);
  for (int it = 0; it < iterations; ++it) {
    for (int32_t row = 0; row < n; ++row) {
      double sum = 0.0;
      for (int64_t k = w.row_ptr[row]; k < w.row_ptr[row + 1]; ++k) {
        sum += static_cast<double>(w.values[k]) * r[w.col_idx[k]];
      }
      y[row] = restart * sum + (row == node ? 1.0 - restart : 0.0);
    }
    r.swap(y);
  }
  return r;
}

}  // namespace tilespmv
