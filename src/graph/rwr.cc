#include "graph/rwr.h"

#include <algorithm>
#include <cmath>

#include "graph/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "robust/fault_injection.h"
#include "sparse/convert.h"
#include "util/check.h"

namespace tilespmv {

Status RwrEngine::Init(const CsrMatrix& adjacency, const RwrOptions& options) {
  TILESPMV_CHECK(kernel_ != nullptr);
  if (adjacency.rows != adjacency.cols)
    return Status::InvalidArgument("RWR needs a square adjacency matrix");
  options_ = options;
  n_ = adjacency.rows;
  CsrMatrix w = ColNormalize(Symmetrize(adjacency));
  TILESPMV_RETURN_IF_ERROR(kernel_->Setup(w));
  if (spmm_kernel_ != nullptr) {
    if (spmm::SpmvKernelNameForSpmm(spmm_kernel_->name()) != kernel_->name()) {
      return Status::InvalidArgument(
          "SpMM kernel " + std::string(spmm_kernel_->name()) +
          " does not pair with SpMV kernel " + std::string(kernel_->name()) +
          "; panel columns would not match the scalar path");
    }
    if (!spmm::IsValidBlockCols(options.block_cols)) {
      return Status::InvalidArgument(
          "RwrOptions::block_cols must be one of {1, 2, 4, 8, 16} when an "
          "SpMM kernel is attached, got " +
          std::to_string(options.block_cols));
    }
    TILESPMV_RETURN_IF_ERROR(spmm_kernel_->Setup(w, options.block_cols));
  }
  const Permutation& row_perm = kernel_->row_permutation();
  inv_row_perm_ = row_perm.empty() ? Permutation{}
                                   : InvertPermutation(row_perm);
  return Status::OK();
}

Result<RwrResult> RwrEngine::Query(int32_t node) const {
  return Query(node, options_);
}

Result<RwrResult> RwrEngine::Query(int32_t node,
                                   const RwrOptions& options) const {
  if (node < 0 || node >= n_)
    return Status::InvalidArgument("query node out of range");
  const int32_t internal_node =
      inv_row_perm_.empty() ? node : inv_row_perm_[node];
  const float c = options.restart;

  std::vector<float> r(n_, 0.0f);
  r[internal_node] = 1.0f;
  std::vector<float> y;

  const gpusim::DeviceSpec& spec = kernel_->spec();
  const double aux_seconds = ElementwiseSeconds(2 * n_, n_, spec) +
                             ReductionSeconds(n_, spec);
  RwrResult out;
  out.stats.seconds_per_iteration = kernel_->timing().seconds + aux_seconds;

  bool pipelined = false;
  if (options.pipeline) {
    // Restart one-hot as an addend vector: the fork-join loop also adds its
    // ternary operand unconditionally, so c*y[i] + addend[i] is the exact
    // same float expression and the iterates stay bitwise identical.
    std::vector<float> addend(static_cast<size_t>(n_), 0.0f);
    addend[internal_node] = 1.0f - c;
    PipelineLoopParams params;
    params.max_iterations = options.max_iterations;
    params.tolerance = options.tolerance;
    params.cancel = options.cancel;
    params.divergence_factor = options.divergence_factor;
    pipelined = PipelineAxpyLoop(*kernel_, TileDag::PowerKind::kRwr, c,
                                 addend, params, "rwr/iteration",
                                 "graph/rwr_nan", &r, &out.stats);
  }
  ResidualGuard guard(options.divergence_factor);
  for (int it = 0; !pipelined && it < options.max_iterations; ++it) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      out.stats.health = IterativeHealth::kCancelled;
      break;
    }
    TILESPMV_FAULT_STALL("graph/iteration_slow");
    obs::TraceSpan iter_span("graph", "rwr/iteration");
    double delta = 0.0;
    {
      obs::TraceSpan spmv_span("spmv", "spmv/multiply");
      kernel_->Multiply(r, &y);
    }
    if (TILESPMV_FAULT_POINT("graph/rwr_nan")) y[0] = NAN;
    {
      obs::TraceSpan red_span("reduction", "reduction/rwr_update");
      // Fixed-block reduction (see par/pool.h): delta is bitwise identical
      // at every thread count.
      delta = par::ParallelReduce<double>(
          0, n_, par::kReduceBlock, 0.0,
          [&](int64_t lo, int64_t hi) {
            double local = 0.0;
            for (int64_t i = lo; i < hi; ++i) {
              float next =
                  c * y[i] + (i == internal_node ? 1.0f - c : 0.0f);
              local += std::fabs(static_cast<double>(next) - r[i]);
              r[i] = next;
            }
            return local;
          },
          [](double a, double b) { return a + b; },
          "par/rwr_update");
    }
    ++out.stats.iterations;
    out.stats.delta_history.push_back(delta);
    if (iter_span.active()) {
      iter_span.Arg("iter", it);
      iter_span.Arg("residual", delta);
    }
    if (!guard.Update(delta)) {
      out.stats.health = IterativeHealth::kNumericalError;
      break;
    }
    if (delta < options.tolerance) {
      out.stats.converged = true;
      break;
    }
  }
  if (!out.stats.converged && out.stats.health == IterativeHealth::kHealthy &&
      options.require_convergence) {
    out.stats.health = IterativeHealth::kDidNotConverge;
  }
  obs::MetricsRegistry::Global()
      .GetHistogram("tilespmv_rwr_iterations",
                    "Iterations to convergence per RWR query",
                    obs::ExponentialBuckets(1, 2.0, 10))
      ->Observe(out.stats.iterations);
  out.stats.gpu_seconds =
      out.stats.seconds_per_iteration * out.stats.iterations;
  out.stats.flops = static_cast<uint64_t>(out.stats.iterations) *
                    (kernel_->timing().flops + 3ULL * n_);
  out.stats.useful_bytes = static_cast<uint64_t>(out.stats.iterations) *
                           (kernel_->timing().useful_bytes + 16ULL * n_);
  const Permutation& row_perm = kernel_->row_permutation();
  if (!row_perm.empty()) {
    UnpermuteVector(row_perm, r, &out.scores);
  } else {
    out.scores = std::move(r);
  }
  return out;
}

double RwrEngine::BatchIterationSeconds(int batch_size) const {
  TILESPMV_CHECK(kernel_ != nullptr);
  const gpusim::DeviceSpec& spec = kernel_->spec();
  const KernelTiming& t = kernel_->timing();
  // Matrix traffic is read once per iteration regardless of batch size;
  // every additional vector re-pays the x-gather misses (known from the
  // kernel's cache simulation), the y updates, and its own axpy/reduction.
  double extra_bytes =
      static_cast<double>(t.tex_misses) * spec.texture_cache_line_bytes +
      8.0 * n_;
  double per_extra =
      extra_bytes / spec.BandwidthBytesPerSec() +
      ElementwiseSeconds(2 * n_, n_, spec) + ReductionSeconds(n_, spec);
  return t.seconds + ElementwiseSeconds(2 * n_, n_, spec) +
         ReductionSeconds(n_, spec) + (batch_size - 1) * per_extra;
}

double RwrEngine::BlockIterationSeconds(int width) const {
  TILESPMV_CHECK(spmm_kernel_ != nullptr);
  const gpusim::DeviceSpec& spec = spmm_kernel_->spec();
  // One shared matrix sweep at panel width, then each vector's own
  // axpy/reduction work.
  return spmm_kernel_->TimingForBlockCols(width).seconds +
         width * (ElementwiseSeconds(2 * n_, n_, spec) +
                  ReductionSeconds(n_, spec));
}

Result<std::vector<RwrResult>> RwrEngine::QueryBatch(
    const std::vector<int32_t>& nodes) const {
  return QueryBatch(nodes, options_, nullptr);
}

Result<std::vector<RwrResult>> RwrEngine::QueryBatch(
    const std::vector<int32_t>& nodes, const RwrOptions& options) const {
  return QueryBatch(nodes, options, nullptr);
}

Result<std::vector<RwrResult>> RwrEngine::QueryBatch(
    const std::vector<int32_t>& nodes, const RwrOptions& options,
    RwrBatchExecution* exec) const {
  if (exec != nullptr) *exec = RwrBatchExecution{};
  if (nodes.empty()) return std::vector<RwrResult>{};
  const int k = static_cast<int>(nodes.size());
  std::vector<int32_t> internal(k);
  for (int q = 0; q < k; ++q) {
    if (nodes[q] < 0 || nodes[q] >= n_)
      return Status::InvalidArgument("query node out of range");
    internal[q] = inv_row_perm_.empty() ? nodes[q] : inv_row_perm_[nodes[q]];
  }
  if (spmm_kernel_ != nullptr) return QueryBatchBlocked(internal, options, exec);

  std::vector<std::vector<float>> r(k);
  std::vector<RwrResult> out(k);
  for (int q = 0; q < k; ++q) {
    r[q].assign(n_, 0.0f);
    r[q][internal[q]] = 1.0f;
  }
  const float c = options.restart;
  const double iter_seconds = BatchIterationSeconds(k);
  std::vector<bool> done(k, false);
  std::vector<float> y;
  int active = k;
  if (exec != nullptr) {
    exec->blocked = false;
    exec->block_cols = 1;
    // Scalar path: every query is its own width-1 "panel".
    exec->queries.resize(k);
    for (int q = 0; q < k; ++q) exec->queries[q].panel_index = q;
  }
  std::vector<ResidualGuard> guards(k, ResidualGuard(options.divergence_factor));
  bool batch_cancelled = false;
  for (int it = 0; it < options.max_iterations && active > 0; ++it) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      batch_cancelled = true;
      break;
    }
    TILESPMV_FAULT_STALL("graph/iteration_slow");
    obs::TraceSpan iter_span("graph", "rwr/batch_iteration");
    if (iter_span.active()) {
      iter_span.Arg("iter", it);
      iter_span.Arg("active_queries", active);
    }
    for (int q = 0; q < k; ++q) {
      if (done[q]) continue;
      const int32_t internal_node = internal[q];
      {
        obs::TraceSpan spmv_span("spmv", "spmv/multiply");
        kernel_->Multiply(r[q], &y);
      }
      if (TILESPMV_FAULT_POINT("graph/rwr_nan")) y[0] = NAN;
      if (exec != nullptr) {
        ++exec->sweeps;
        ++exec->vectors;
      }
      obs::TraceSpan red_span("reduction", "reduction/rwr_update");
      std::vector<float>& rq = r[q];
      double delta = par::ParallelReduce<double>(
          0, n_, par::kReduceBlock, 0.0,
          [&](int64_t lo, int64_t hi) {
            double local = 0.0;
            for (int64_t i = lo; i < hi; ++i) {
              float next = c * y[i] + (i == internal_node ? 1.0f - c : 0.0f);
              local += std::fabs(static_cast<double>(next) - rq[i]);
              rq[i] = next;
            }
            return local;
          },
          [](double a, double b) { return a + b; },
          "par/rwr_batch_update");
      ++out[q].stats.iterations;
      out[q].stats.delta_history.push_back(delta);
      if (!guards[q].Update(delta)) {
        done[q] = true;
        --active;
        out[q].stats.health = IterativeHealth::kNumericalError;
      } else if (delta < options.tolerance) {
        done[q] = true;
        --active;
        out[q].stats.converged = true;
      }
    }
  }
  for (int q = 0; q < k; ++q) {
    if (out[q].stats.converged ||
        out[q].stats.health != IterativeHealth::kHealthy) {
      continue;
    }
    if (batch_cancelled) {
      out[q].stats.health = IterativeHealth::kCancelled;
    } else if (options.require_convergence) {
      out[q].stats.health = IterativeHealth::kDidNotConverge;
    }
  }
  const Permutation& row_perm = kernel_->row_permutation();
  for (int q = 0; q < k; ++q) {
    // Bill each query its share of the batched iterations.
    out[q].stats.seconds_per_iteration = iter_seconds / k;
    out[q].stats.gpu_seconds =
        out[q].stats.seconds_per_iteration * out[q].stats.iterations;
    out[q].stats.flops = static_cast<uint64_t>(out[q].stats.iterations) *
                         (kernel_->timing().flops / k + 3ULL * n_);
    out[q].stats.useful_bytes =
        static_cast<uint64_t>(out[q].stats.iterations) *
        (kernel_->timing().useful_bytes / k + 16ULL * n_);
    if (!row_perm.empty()) {
      UnpermuteVector(row_perm, r[q], &out[q].scores);
    } else {
      out[q].scores = std::move(r[q]);
    }
  }
  return out;
}

Result<std::vector<RwrResult>> RwrEngine::QueryBatchBlocked(
    const std::vector<int32_t>& internal, const RwrOptions& options,
    RwrBatchExecution* exec) const {
  const int k = static_cast<int>(internal.size());
  const int bw = spmm_kernel_->block_cols();
  // The brownout ladder may cap the sweep width below the plan's block_cols;
  // the SpMM kernels already sweep ragged (narrower) panels, so no rebuild.
  const int bw_eff = options.max_panel_width > 0
                         ? std::max(1, std::min(bw, options.max_panel_width))
                         : bw;
  const float c = options.restart;
  const Permutation& row_perm = kernel_->row_permutation();
  std::vector<RwrResult> out(k);
  if (exec != nullptr) {
    exec->blocked = true;
    exec->block_cols = bw;
    exec->queries.resize(k);
  }
  spmm::DenseBlock x, y;
  std::vector<float> column;
  for (int p0 = 0; p0 < k; p0 += bw_eff) {
    // The final panel may be ragged; it sweeps at its actual width.
    const int w = std::min(bw_eff, k - p0);
    if (exec != nullptr) {
      for (int j = 0; j < w; ++j) {
        RwrQueryExecution& qe = exec->queries[p0 + j];
        qe.panel_index = p0 / bw_eff;
        qe.panel_width = w;
        qe.panel_column = j;
        qe.ragged_tail = w < bw;
      }
    }
    x.Resize(n_, w);
    for (int j = 0; j < w; ++j) x.at(internal[p0 + j], j) = 1.0f;
    std::vector<bool> done(w, false);
    std::vector<ResidualGuard> guards(w,
                                      ResidualGuard(options.divergence_factor));
    int active = w;
    bool panel_cancelled = false;
    const double iter_seconds = BlockIterationSeconds(w);
    for (int it = 0; it < options.max_iterations && active > 0; ++it) {
      if (options.cancel != nullptr && options.cancel->cancelled()) {
        panel_cancelled = true;
        break;
      }
      TILESPMV_FAULT_STALL("spmm/sweep_slow");
      obs::TraceSpan iter_span("graph", "rwr/block_iteration");
      if (iter_span.active()) {
        iter_span.Arg("iter", it);
        iter_span.Arg("active_queries", active);
        iter_span.Arg("block_cols", w);
      }
      {
        obs::TraceSpan spmm_span("spmm", "spmm/multiply");
        spmm_kernel_->Multiply(x, &y);
      }
      if (TILESPMV_FAULT_POINT("graph/rwr_nan")) {
        // Row 0 is interleaved as data[0..w): poison every panel column, so
        // one injected fault hits every rider of the shared sweep.
        for (int j = 0; j < w; ++j) y.data[j] = NAN;
      }
      if (exec != nullptr) {
        ++exec->sweeps;
        exec->vectors += w;
      }
      for (int j = 0; j < w; ++j) {
        // Converged columns keep their scores: the sweep still computes
        // them (the matrix read is shared) but the update is skipped, so
        // each column's iterate history matches its standalone run.
        if (done[j]) continue;
        const int q = p0 + j;
        const int32_t internal_node = internal[q];
        obs::TraceSpan red_span("reduction", "reduction/rwr_update");
        // Fixed-block reduction over one interleaved column: the same
        // per-element order as the scalar path, so delta — and every
        // iterate — is bitwise identical at every thread count.
        double delta = par::ParallelReduce<double>(
            0, n_, par::kReduceBlock, 0.0,
            [&](int64_t lo, int64_t hi) {
              double local = 0.0;
              for (int64_t i = lo; i < hi; ++i) {
                const size_t s = static_cast<size_t>(i) * w + j;
                float next =
                    c * y.data[s] + (i == internal_node ? 1.0f - c : 0.0f);
                local += std::fabs(static_cast<double>(next) - x.data[s]);
                x.data[s] = next;
              }
              return local;
            },
            [](double a, double b) { return a + b; },
            "par/rwr_block_update");
        ++out[q].stats.iterations;
        out[q].stats.delta_history.push_back(delta);
        if (!guards[j].Update(delta)) {
          done[j] = true;
          --active;
          out[q].stats.health = IterativeHealth::kNumericalError;
        } else if (delta < options.tolerance) {
          done[j] = true;
          --active;
          out[q].stats.converged = true;
        }
      }
    }
    for (int j = 0; j < w; ++j) {
      const int q = p0 + j;
      if (out[q].stats.converged ||
          out[q].stats.health != IterativeHealth::kHealthy) {
        continue;
      }
      if (panel_cancelled) {
        out[q].stats.health = IterativeHealth::kCancelled;
      } else if (options.require_convergence) {
        out[q].stats.health = IterativeHealth::kDidNotConverge;
      }
    }
    const KernelTiming sweep = spmm_kernel_->TimingForBlockCols(w);
    for (int j = 0; j < w; ++j) {
      const int q = p0 + j;
      // Bill each query its share of the shared panel sweeps.
      out[q].stats.seconds_per_iteration = iter_seconds / w;
      out[q].stats.gpu_seconds =
          out[q].stats.seconds_per_iteration * out[q].stats.iterations;
      out[q].stats.flops = static_cast<uint64_t>(out[q].stats.iterations) *
                           (sweep.flops / w + 3ULL * n_);
      out[q].stats.useful_bytes =
          static_cast<uint64_t>(out[q].stats.iterations) *
          (sweep.useful_bytes / w + 16ULL * n_);
      x.ExtractColumn(j, &column);
      if (!row_perm.empty()) {
        UnpermuteVector(row_perm, column, &out[q].scores);
      } else {
        out[q].scores = column;
      }
    }
  }
  return out;
}

std::vector<double> RwrReference(const CsrMatrix& adjacency, int32_t node,
                                 double restart, int iterations) {
  CsrMatrix w = ColNormalize(Symmetrize(adjacency));
  const int32_t n = w.rows;
  std::vector<double> r(n, 0.0);
  r[node] = 1.0;
  std::vector<double> y(n);
  for (int it = 0; it < iterations; ++it) {
    for (int32_t row = 0; row < n; ++row) {
      double sum = 0.0;
      for (int64_t k = w.row_ptr[row]; k < w.row_ptr[row + 1]; ++k) {
        sum += static_cast<double>(w.values[k]) * r[w.col_idx[k]];
      }
      y[row] = restart * sum + (row == node ? 1.0 - restart : 0.0);
    }
    r.swap(y);
  }
  return r;
}

}  // namespace tilespmv
