#ifndef TILESPMV_GRAPH_RWR_H_
#define TILESPMV_GRAPH_RWR_H_

#include "graph/power_method.h"
#include "robust/cancel.h"
#include "sparse/csr.h"
#include "spmm/spmm.h"
#include "util/status.h"

namespace tilespmv {

/// Random Walk with Restart parameters (Appendix F, Equation 9).
struct RwrOptions {
  float restart = 0.9f;  ///< c: probability of continuing the walk.
  int max_iterations = 100;
  float tolerance = 1e-5f;
  /// Panel width for batched queries. A plan property read at Init: when the
  /// engine was constructed with a paired SpMM kernel this must be one of
  /// spmm::kBlockWidths and QueryBatch runs panels of up to this many
  /// vectors per matrix sweep. Ignored (left 0) on scalar-only engines.
  int block_cols = 0;
  /// Per-call cap on the sweep width of blocked batches (> 0 caps panels at
  /// min(block_cols, max_panel_width); 0 = plan width). The brownout ladder
  /// uses this to shrink panels under deadline pressure without rebuilding
  /// the plan — narrower panels finish sooner at a higher per-query cost.
  int max_panel_width = 0;
  /// Checked at each iteration boundary (per panel on the blocked path); a
  /// fired token marks every unfinished query kCancelled with its partial
  /// iteration count. Not owned. nullptr = not cancellable.
  const robust::CancelToken* cancel = nullptr;
  /// Report kDidNotConverge when the iteration budget runs out unconverged.
  bool require_convergence = false;
  /// ResidualGuard divergence trip factor (<= 0 disables).
  double divergence_factor = 1e6;
  /// Pipelined task-graph loop for single queries when the kernel exposes a
  /// TileDag (graph/pipeline.h); false forces the fork-join loop. Batched
  /// paths pipeline inside each matrix sweep instead (the panel itself is
  /// the overlap).
  bool pipeline = true;
};

/// Where one query of a batch actually ran: which SpMM panel, at what width,
/// in which column slot — the attribution the serving layer threads into
/// per-query records and trace spans.
struct RwrQueryExecution {
  int panel_index = 0;   ///< Which panel of the batch (0 on the scalar path).
  int panel_width = 1;   ///< Actual sweep width of that panel.
  int panel_column = 0;  ///< The query's column slot within the panel.
  bool ragged_tail = false;  ///< Panel swept narrower than the plan width.
};

/// How a QueryBatch call actually executed — the serving layer feeds this
/// into its SpMM metrics.
struct RwrBatchExecution {
  bool blocked = false;  ///< Batch ran through the SpMM panel path.
  int block_cols = 0;    ///< Setup-time panel width (1 on the scalar path).
  int64_t sweeps = 0;    ///< Matrix sweeps executed (SpMM or SpMV calls).
  int64_t vectors = 0;   ///< Vector-iterations summed over all sweeps.
  /// Per-query placement, indexed like the QueryBatch `nodes` argument.
  std::vector<RwrQueryExecution> queries;
};

/// Per-query relevance scores plus run statistics.
struct RwrResult {
  std::vector<float> scores;  ///< Relevance of every node to the query node.
  IterativeResult stats;
};

/// A reusable RWR engine: the graph is symmetrized (RWR operates on
/// undirected graphs), column-normalized and Setup() once; each Query(i)
/// then iterates r <- c W r + (1-c) e_i — the interactive usage pattern the
/// paper times over 25 random query nodes.
class RwrEngine {
 public:
  explicit RwrEngine(SpMVKernel* kernel) : kernel_(kernel) {}

  /// An engine with a blocked sibling attached: QueryBatch sweeps the matrix
  /// once per panel of options.block_cols vectors instead of once per query.
  /// `spmm_kernel` must pair with `kernel` (spmm::SpmvKernelNameForSpmm) so
  /// every panel column stays bitwise identical to the scalar path — that
  /// equivalence is what lets serving dedup cache results across both paths.
  RwrEngine(SpMVKernel* kernel, spmm::SpMMKernel* spmm_kernel)
      : kernel_(kernel), spmm_kernel_(spmm_kernel) {}

  /// Builds W = colnorm(sym(A)) and sets the kernel up on it. W depends only
  /// on the graph, so after Init the engine is an immutable plan: every
  /// Query / QueryBatch below is const and thread-safe (see the SpMVKernel
  /// thread-safety contract), and the per-call overloads let one shared plan
  /// serve queries with different restart / tolerance parameters.
  Status Init(const CsrMatrix& adjacency, const RwrOptions& options);

  /// Runs one query to convergence with the Init-time options.
  Result<RwrResult> Query(int32_t node) const;
  /// Runs one query with per-call options (plan-independent parameters).
  Result<RwrResult> Query(int32_t node, const RwrOptions& options) const;

  /// Runs a batch of queries simultaneously as a multi-vector power method
  /// (extension beyond the paper, which serves queries one at a time). On
  /// the device the matrix stream is shared across the whole batch — only
  /// the x gathers and vector updates repeat per query — so the modeled
  /// per-query cost drops steeply with batch size. Each query still
  /// converges (and is billed) individually.
  Result<std::vector<RwrResult>> QueryBatch(
      const std::vector<int32_t>& nodes) const;
  /// QueryBatch with per-call options.
  Result<std::vector<RwrResult>> QueryBatch(const std::vector<int32_t>& nodes,
                                            const RwrOptions& options) const;
  /// QueryBatch that also reports how the batch executed (sweeps, panel
  /// width). `exec` may be null.
  Result<std::vector<RwrResult>> QueryBatch(const std::vector<int32_t>& nodes,
                                            const RwrOptions& options,
                                            RwrBatchExecution* exec) const;

  /// Modeled per-iteration cost of a batch of size k: the kernel's full
  /// cost once plus the per-extra-vector gather/update traffic.
  double BatchIterationSeconds(int batch_size) const;

  /// Modeled per-iteration cost of one blocked panel of `width` vectors:
  /// the SpMM sweep plus each vector's own update/reduction work. Only
  /// valid on engines with an SpMM kernel attached.
  double BlockIterationSeconds(int width) const;

  /// Node count of the Init-time graph (0 before Init).
  int32_t num_nodes() const { return n_; }

  /// Setup-time panel width, or 0 on scalar-only engines.
  int block_cols() const {
    return spmm_kernel_ != nullptr ? spmm_kernel_->block_cols() : 0;
  }

 private:
  /// The SpMM path: panels of block_cols() queries iterate together, all
  /// columns updated per matrix sweep. `internal` holds already-permuted
  /// seed indices.
  Result<std::vector<RwrResult>> QueryBatchBlocked(
      const std::vector<int32_t>& internal, const RwrOptions& options,
      RwrBatchExecution* exec) const;

  SpMVKernel* kernel_;
  spmm::SpMMKernel* spmm_kernel_ = nullptr;
  RwrOptions options_;
  int32_t n_ = 0;
  Permutation inv_row_perm_;  // old -> new, empty when identity.
};

/// Double-precision host reference for one query.
std::vector<double> RwrReference(const CsrMatrix& adjacency, int32_t node,
                                 double restart, int iterations);

}  // namespace tilespmv

#endif  // TILESPMV_GRAPH_RWR_H_
