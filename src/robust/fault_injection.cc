#include "robust/fault_injection.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace tilespmv::robust {
namespace {

/// splitmix64: tiny, seedable, good enough for fire/no-fire decisions and
/// fully deterministic for a given seed + hit sequence.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double UnitRandom(uint64_t* state) {
  return static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t at = s.find(sep, start);
    if (at == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, at - start));
    start = at + 1;
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    const char* env = std::getenv("TILESPMV_FAULTS");
    if (env != nullptr && env[0] != '\0') {
      Status st = inj->Configure(env);
      if (!st.ok()) {
        std::fprintf(stderr, "warning: ignoring TILESPMV_FAULTS: %s\n",
                     st.ToString().c_str());
      }
    }
    return inj;
  }();
  return *injector;
}

Status FaultInjector::Configure(const std::string& spec) {
  std::unordered_map<std::string, Rule> rules;
  std::vector<std::pair<std::string, Rule>> prefix_rules;
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (const std::string& raw_entry : Split(spec, ';')) {
    std::string entry = Trim(raw_entry);
    if (entry.empty()) continue;
    std::vector<std::string> parts = Split(entry, ':');
    std::string name = Trim(parts[0]);
    if (name.rfind("seed=", 0) == 0) {
      if (parts.size() != 1 || !ParseUint(name.substr(5), &seed)) {
        return Status::InvalidArgument("fault spec: bad seed in \"" + entry +
                                       "\"");
      }
      continue;
    }
    if (name.empty() || name.find('=') != std::string::npos) {
      return Status::InvalidArgument("fault spec: bad point name in \"" +
                                     entry + "\"");
    }
    Rule rule;
    bool has_trigger = false;
    for (size_t i = 1; i < parts.size(); ++i) {
      std::string param = Trim(parts[i]);
      if (param == "always") {
        rule.always = true;
        has_trigger = true;
      } else if (param.rfind("p=", 0) == 0) {
        if (!ParseDouble(param.substr(2), &rule.probability) ||
            rule.probability < 0.0 || rule.probability > 1.0) {
          return Status::InvalidArgument(
              "fault spec: p must be in [0,1] in \"" + entry + "\"");
        }
        has_trigger = true;
      } else if (param.rfind("n=", 0) == 0) {
        if (!ParseUint(param.substr(2), &rule.nth) || rule.nth == 0) {
          return Status::InvalidArgument(
              "fault spec: n must be a positive integer in \"" + entry +
              "\"");
        }
        has_trigger = true;
      } else if (param.rfind("sleep_ms=", 0) == 0) {
        if (!ParseDouble(param.substr(9), &rule.sleep_ms) ||
            rule.sleep_ms < 0.0) {
          return Status::InvalidArgument(
              "fault spec: sleep_ms must be >= 0 in \"" + entry + "\"");
        }
      } else {
        return Status::InvalidArgument("fault spec: unknown param \"" +
                                       param + "\" in \"" + entry + "\"");
      }
    }
    // A bare point name means "always": `--faults=plan_cache/build` reads
    // naturally in one-off repro runs.
    if (!has_trigger) rule.always = true;
    if (!name.empty() && name.back() == '*') {
      prefix_rules.emplace_back(name.substr(0, name.size() - 1), rule);
    } else {
      rules[name] = rule;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  rules_ = std::move(rules);
  prefix_rules_ = std::move(prefix_rules);
  points_.clear();
  fires_total_ = 0;
  rng_state_ = seed;
  armed_.store(!rules_.empty() || !prefix_rules_.empty(),
               std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  prefix_rules_.clear();
  points_.clear();
  fires_total_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

const FaultInjector::Rule* FaultInjector::FindRule(
    const std::string& point) const {
  auto it = rules_.find(point);
  if (it != rules_.end()) return &it->second;
  const Rule* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, rule] : prefix_rules_) {
    if (point.rfind(prefix, 0) == 0 &&
        (best == nullptr || prefix.size() >= best_len)) {
      best = &rule;
      best_len = prefix.size();
    }
  }
  return best;
}

bool FaultInjector::FireLocked(const std::string& point,
                               const Rule** rule_out) {
  const Rule* rule = FindRule(point);
  if (rule_out != nullptr) *rule_out = rule;
  if (rule == nullptr) return false;
  PointState& state = points_[point];
  ++state.hits;
  bool fire = rule->always || (rule->nth > 0 && state.hits == rule->nth) ||
              (rule->probability > 0.0 &&
               UnitRandom(&rng_state_) < rule->probability);
  if (fire) {
    ++state.fires;
    ++fires_total_;
  }
  return fire;
}

bool FaultInjector::ShouldFire(const char* point) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return FireLocked(point, nullptr);
}

double FaultInjector::ShouldStallMs(const char* point) {
  if (!armed_.load(std::memory_order_relaxed)) return 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  const Rule* rule = nullptr;
  if (!FireLocked(point, &rule)) return 0.0;
  return rule->sleep_ms;
}

std::vector<FaultPointStats> FaultInjector::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultPointStats> out;
  out.reserve(points_.size());
  for (const auto& [point, state] : points_) {
    out.push_back(FaultPointStats{point, state.hits, state.fires});
  }
  return out;
}

uint64_t FaultInjector::fires_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_total_;
}

void InjectStall(const char* point) {
  double ms = FaultInjector::Global().ShouldStallMs(point);
  if (ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms));
  }
}

}  // namespace tilespmv::robust
