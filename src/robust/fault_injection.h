#ifndef TILESPMV_ROBUST_FAULT_INJECTION_H_
#define TILESPMV_ROBUST_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace tilespmv::robust {

/// Whether fault-injection call sites were compiled into this binary
/// (cmake -DTILESPMV_FAULTS=ON). When false the TILESPMV_FAULT_* macros
/// below expand to constants and the injector never sees a hit, so the
/// production build pays nothing for the instrumentation.
constexpr bool FaultInjectionCompiledIn() {
#if defined(TILESPMV_FAULTS_ENABLED)
  return true;
#else
  return false;
#endif
}

/// Per-point hit/fire counters, for stats JSON and test assertions.
struct FaultPointStats {
  std::string point;
  uint64_t hits = 0;   ///< Times the call site was reached.
  uint64_t fires = 0;  ///< Times the fault actually triggered.
};

/// Deterministic, seedable fault injector behind the TILESPMV_FAULT_* macros
/// (docs/ROBUSTNESS.md lists the registered points). Rules are configured
/// from a spec string — the TILESPMV_FAULTS environment variable or
/// `spmv_cli --faults=` — of the form
///
///   point[:param[:param...]] ; point ... ; seed=N
///
/// where each param is one of
///   p=F          fire with probability F per hit (deterministic RNG),
///   n=K          fire exactly on the K-th hit of the point,
///   always       fire on every hit,
///   sleep_ms=F   the stall duration TILESPMV_FAULT_STALL points inject.
///
/// A point name ending in '*' is a prefix wildcard ("graph/*" matches every
/// graph-loop point). All methods are thread-safe; the fast path when no
/// rules are armed is one relaxed atomic load.
class FaultInjector {
 public:
  /// Process-wide injector. On first access it arms itself from the
  /// TILESPMV_FAULTS environment variable (a malformed value is reported to
  /// stderr once and ignored — the CLI path validates strictly instead).
  static FaultInjector& Global();

  FaultInjector() = default;

  /// Replaces the rule set from `spec` (see the grammar above). An empty
  /// spec disarms the injector. Returns kInvalidArgument on a malformed
  /// spec, leaving the previous rules in place.
  Status Configure(const std::string& spec);

  /// Drops every rule and counter.
  void Reset();

  /// True when at least one rule is armed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Counts a hit at `point` and decides whether its fault fires now.
  /// Always false when no rule matches.
  bool ShouldFire(const char* point);

  /// Like ShouldFire, but returns the rule's sleep_ms (default 1.0) when it
  /// fires and 0.0 otherwise — the stall variant for slowness points.
  double ShouldStallMs(const char* point);

  /// Snapshot of every point touched since the last Reset/Configure.
  std::vector<FaultPointStats> Stats() const;

  /// Total fires across all points.
  uint64_t fires_total() const;

 private:
  struct Rule {
    double probability = 0.0;  ///< Fire with this chance per hit.
    uint64_t nth = 0;          ///< Fire exactly on this hit (1-based).
    bool always = false;
    double sleep_ms = 1.0;  ///< Stall duration for TILESPMV_FAULT_STALL.
  };
  struct PointState {
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  /// Exact match first, then the longest '*' prefix rule. nullptr when no
  /// rule covers `point`. Caller holds mu_.
  const Rule* FindRule(const std::string& point) const;
  bool FireLocked(const std::string& point, const Rule** rule_out);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;
  std::unordered_map<std::string, Rule> rules_;      ///< Exact-name rules.
  std::vector<std::pair<std::string, Rule>> prefix_rules_;  ///< '*' rules.
  std::unordered_map<std::string, PointState> points_;
  uint64_t fires_total_ = 0;
};

/// Sleeps for the stall duration when the slowness rule at `point` fires.
/// Used by the TILESPMV_FAULT_STALL macro; callable directly from tests.
void InjectStall(const char* point);

}  // namespace tilespmv::robust

// Scoped injection-point macros. Compiled out (constant-folded away) unless
// the build sets TILESPMV_FAULTS_ENABLED (cmake -DTILESPMV_FAULTS=ON);
// docs/ROBUSTNESS.md catalogs the registered point names.
#if defined(TILESPMV_FAULTS_ENABLED)
#define TILESPMV_FAULT_POINT(name) \
  (::tilespmv::robust::FaultInjector::Global().ShouldFire(name))
#define TILESPMV_FAULT_STALL(name) ::tilespmv::robust::InjectStall(name)
#else
#define TILESPMV_FAULT_POINT(name) (false)
#define TILESPMV_FAULT_STALL(name) ((void)0)
#endif

#endif  // TILESPMV_ROBUST_FAULT_INJECTION_H_
