#ifndef TILESPMV_ROBUST_CANCEL_H_
#define TILESPMV_ROBUST_CANCEL_H_

#include <atomic>
#include <chrono>

namespace tilespmv::robust {

/// Cooperative cancellation token checked at power-iteration and tile-sweep
/// boundaries. A token can be cancelled explicitly (shed, shutdown) or by an
/// attached deadline; either way `cancelled()` flips true and the solver
/// aborts with its partial iteration count instead of burning the pool.
///
/// Checks are cheap — one relaxed atomic load, plus a steady_clock read when
/// a deadline is attached — so once-per-iteration polling costs nothing
/// measurable next to an SpMV sweep. Tokens are passed by const pointer
/// (nullptr means "not cancellable") and must outlive the solve.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Attaches a deadline; the token reports cancelled once it passes.
  void SetDeadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Cancels explicitly, independent of any deadline.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ && Clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace tilespmv::robust

#endif  // TILESPMV_ROBUST_CANCEL_H_
