#ifndef TILESPMV_ROBUST_BROWNOUT_H_
#define TILESPMV_ROBUST_BROWNOUT_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace tilespmv::robust {

/// Tuning for the graceful-degradation ladder (docs/ROBUSTNESS.md).
/// The controller watches a sliding window of request outcomes and the
/// queue-occupancy fraction, and maps sustained deadline pressure to a
/// level 0–3:
///   0  healthy — no degradation.
///   1  drop SpMM panel width (halve the blocked-RWR panel).
///   2  additionally relax RWR tolerance, but only within the caller's
///      max_tolerance bound.
///   3  additionally shed new work with kResourceExhausted + retry-after.
struct BrownoutOptions {
  bool enabled = true;
  /// Pin the level for tests/drills (-1 = automatic).
  int force_level = -1;
  /// Sliding window of recent request outcomes.
  int window = 64;
  /// Automatic mode stays at level 0 until this many outcomes are seen.
  int min_samples = 16;
  /// Deadline-miss-rate thresholds for levels 1/2/3.
  double level1_miss_rate = 0.2;
  double level2_miss_rate = 0.4;
  double level3_miss_rate = 0.7;
  /// Queue occupancy (pending / max_pending) that bumps the level by one.
  double queue_pressure = 0.9;
  /// Tolerance the engine relaxes RWR queries toward at level >= 2
  /// (still clamped to the caller's max_tolerance).
  float relaxed_tolerance = 1e-3f;
  /// Retry-after hint attached to level-3 sheds.
  double retry_after_seconds = 0.05;
};

/// Sliding-window brownout level controller. Thread-safe; Level() is called
/// on every admission and batch flush, RecordOutcome on every completion.
class BrownoutController {
 public:
  explicit BrownoutController(const BrownoutOptions& options = {});

  /// Feeds one finished request into the window.
  void RecordOutcome(bool deadline_missed);

  /// Feeds the current queue occupancy (pending / max_pending, in [0,1]).
  void RecordQueueFraction(double fraction);

  /// Current ladder level in [0,3].
  int Level() const;

  const BrownoutOptions& options() const { return options_; }

 private:
  BrownoutOptions options_;
  mutable std::mutex mu_;
  std::vector<uint8_t> window_;  ///< Ring of outcomes, 1 = deadline miss.
  int window_next_ = 0;
  int window_count_ = 0;
  int window_misses_ = 0;
  double queue_fraction_ = 0.0;
};

}  // namespace tilespmv::robust

#endif  // TILESPMV_ROBUST_BROWNOUT_H_
