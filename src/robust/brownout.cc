#include "robust/brownout.h"

#include <algorithm>

namespace tilespmv::robust {

BrownoutController::BrownoutController(const BrownoutOptions& options)
    : options_(options) {
  options_.window = std::max(1, options_.window);
  options_.min_samples = std::max(1, options_.min_samples);
  window_.assign(static_cast<size_t>(options_.window), 0);
}

void BrownoutController::RecordOutcome(bool deadline_missed) {
  std::lock_guard<std::mutex> lock(mu_);
  uint8_t& slot = window_[static_cast<size_t>(window_next_)];
  if (window_count_ == options_.window) {
    window_misses_ -= slot;  // evict the slot being overwritten
  } else {
    ++window_count_;
  }
  slot = deadline_missed ? 1 : 0;
  window_misses_ += slot;
  window_next_ = (window_next_ + 1) % options_.window;
}

void BrownoutController::RecordQueueFraction(double fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_fraction_ = std::clamp(fraction, 0.0, 1.0);
}

int BrownoutController::Level() const {
  if (!options_.enabled) return 0;
  if (options_.force_level >= 0) return std::min(options_.force_level, 3);
  std::lock_guard<std::mutex> lock(mu_);
  int level = 0;
  if (window_count_ >= options_.min_samples) {
    double miss_rate =
        static_cast<double>(window_misses_) / static_cast<double>(window_count_);
    if (miss_rate >= options_.level3_miss_rate) {
      level = 3;
    } else if (miss_rate >= options_.level2_miss_rate) {
      level = 2;
    } else if (miss_rate >= options_.level1_miss_rate) {
      level = 1;
    }
  }
  if (queue_fraction_ >= options_.queue_pressure) level = std::min(level + 1, 3);
  return level;
}

}  // namespace tilespmv::robust
