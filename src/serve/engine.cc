#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/tile_dag.h"
#include "graph/hits.h"
#include "graph/pagerank.h"
#include "obs/trace.h"
#include "robust/cancel.h"
#include "robust/fault_injection.h"
#include "simd/caps.h"
#include "sparse/convert.h"
#include "util/timer.h"

namespace tilespmv::serve {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

Clock::duration DurationFromSeconds(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

PlanWorkload WorkloadFor(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPageRank:
      return PlanWorkload::kPageRank;
    case QueryKind::kHits:
      return PlanWorkload::kHits;
    case QueryKind::kRwr:
      return PlanWorkload::kRwr;
  }
  return PlanWorkload::kPageRank;
}

/// Modeled footprint of a plan: the kernel's device structures plus the x/y
/// vectors it needs resident.
uint64_t PlanResidentBytes(const SpMVKernel& kernel) {
  uint64_t vectors =
      4ULL * (static_cast<uint64_t>(kernel.rows()) + kernel.cols());
  return std::max<uint64_t>(kernel.timing().device_bytes, 1) + vectors;
}

/// Maps a solve's health (carried as data through the OK Result) to the
/// typed status the response reports. Keeping the two separate lets the
/// engine return iterations-used and partial stats alongside the error.
Status StatusFromHealth(IterativeHealth health) {
  switch (health) {
    case IterativeHealth::kHealthy:
      return Status::OK();
    case IterativeHealth::kCancelled:
      return Status::DeadlineExceeded("deadline expired mid-solve");
    case IterativeHealth::kNumericalError:
      return Status::NumericalError(
          "solve produced non-finite values or diverged");
    case IterativeHealth::kDidNotConverge:
      return Status::DidNotConverge(
          "iteration budget exhausted without convergence");
  }
  return Status::OK();
}

/// Plan-build failures worth retrying with backoff: transient conditions
/// (including injected ones) as opposed to deterministic bad input.
bool TransientBuildFailure(StatusCode code) {
  return code == StatusCode::kInternal ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kIoError || code == StatusCode::kUnavailable;
}

obs::QueryJournal::Options JournalOptions(const EngineOptions& options) {
  obs::QueryJournal::Options jo;
  jo.capacity = options.query_journal_capacity;
  jo.slow_seconds = options.slow_query_seconds;
  jo.dump_on_deadline_miss = options.flight_recorder;
  jo.dump_path = options.flight_dump_path;
  return jo;
}

}  // namespace

std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPageRank:
      return "pagerank";
    case QueryKind::kHits:
      return "hits";
    case QueryKind::kRwr:
      return "rwr";
  }
  return "unknown";
}

size_t Engine::DedupKeyHash::operator()(const DedupKey& k) const {
  size_t h = std::hash<uint64_t>{}(k.fingerprint);
  auto mix = [&h](size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<size_t>(k.kind));
  mix(std::hash<std::string>{}(k.device));
  mix(std::hash<std::string>{}(k.kernel));
  mix(std::hash<float>{}(k.damping));
  mix(std::hash<float>{}(k.tolerance));
  mix(static_cast<size_t>(k.max_iterations));
  return h;
}

Engine::Engine(const EngineOptions& options)
    : options_(options),
      plan_cache_(options.plan_cache_bytes),
      stats_(options.metrics),
      journal_(JournalOptions(options)),
      brownout_(options.brownout) {
  options_.num_threads = std::max(1, options_.num_threads);
  options_.max_pending = std::max(1, options_.max_pending);
  options_.max_batch = std::max(1, options_.max_batch);
  // Resolve the RWR panel width: an explicit value rounds down to a valid
  // width, 0 auto-selects the largest width the batch cap can fill.
  if (options_.spmm_block_cols <= 0) {
    options_.spmm_block_cols = spmm::LargestBlockColsAtMost(
        std::min(options_.max_batch, spmm::kMaxBlockCols));
  } else {
    options_.spmm_block_cols = spmm::LargestBlockColsAtMost(
        std::min(options_.spmm_block_cols, spmm::kMaxBlockCols));
  }
  // The resolved SIMD tier is plan metadata: surface it (and the per-tier
  // availability gauges) in this engine's metrics export from the start.
  simd::PublishMetrics(stats_.registry());
  workers_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Engine::~Engine() { Shutdown(); }

Status Engine::AddGraph(const std::string& name, CsrMatrix graph) {
  TILESPMV_RETURN_IF_ERROR(graph.Validate());
  if (graph.rows != graph.cols) {
    return Status::InvalidArgument(
        "serving requires a square adjacency matrix");
  }
  if (graph.rows == 0) return Status::InvalidArgument("empty graph");
  auto entry = std::make_shared<GraphEntry>();
  entry->fingerprint = FingerprintCsr(graph);
  entry->matrix = std::move(graph);
  std::lock_guard<std::mutex> lock(graphs_mu_);
  graphs_[name] = std::move(entry);
  return Status::OK();
}

std::future<QueryResponse> Engine::Submit(const std::string& graph,
                                          QueryKind kind,
                                          const QueryParams& params) {
  // Per-request identity is assigned at the door: every outcome, including
  // rejections, lands in the query journal under this id.
  const TimePoint t_enqueue = Clock::now();
  const uint64_t query_id = journal_.NextId();
  const double enqueue_ts_us = obs::Tracer::Global().enabled()
                                   ? obs::Tracer::Global().NowMicros()
                                   : 0.0;
  obs::TraceSpan span("serve", "serve/submit");
  if (span.active()) {
    span.Arg("graph", graph);
    span.Arg("kind", std::string(QueryKindName(kind)));
    span.Arg("query_id", static_cast<int64_t>(query_id));
  }
  auto reject = [&](Status status) {
    return FinishEarly(kind, std::move(status), query_id, enqueue_ts_us,
                       t_enqueue);
  };
  if (stopping_.load(std::memory_order_relaxed)) {
    return reject(Status::Unavailable("engine is shut down"));
  }
  std::shared_ptr<const GraphEntry> entry;
  {
    std::lock_guard<std::mutex> lock(graphs_mu_);
    auto it = graphs_.find(graph);
    if (it != graphs_.end()) entry = it->second;
  }
  if (entry == nullptr) {
    return reject(Status::InvalidArgument("unknown graph \"" + graph + "\""));
  }

  QueryParams resolved = params;
  if (resolved.kernel.empty()) resolved.kernel = options_.default_kernel;
  if (resolved.device.empty()) resolved.device = options_.default_device;
  gpusim::DeviceSpec spec;
  if (!gpusim::DeviceSpecByName(resolved.device, &spec)) {
    return reject(Status::InvalidArgument("unknown device " + resolved.device));
  }
  if (CreateKernel(resolved.kernel, spec) == nullptr) {
    return reject(Status::InvalidArgument("unknown kernel " + resolved.kernel));
  }
  // Host fast path: upgrade to the SIMD sibling before the name reaches the
  // plan cache / dedup keys / coalescing buckets, so every consumer of the
  // resolved name agrees on the variant actually served.
  if (options_.prefer_simd_host &&
      simd::ResolvedTier() != simd::Tier::kScalar) {
    std::string simd_name = SimdHostKernelFor(resolved.kernel);
    if (!simd_name.empty()) resolved.kernel = std::move(simd_name);
  }
  if (kind == QueryKind::kRwr &&
      (resolved.node < 0 || resolved.node >= entry->matrix.rows)) {
    return reject(Status::InvalidArgument("rwr query node out of range"));
  }

  // Brownout level 3: the engine is persistently missing deadlines, so
  // queueing more work would only manufacture more misses. Shed with a
  // backoff hint instead (docs/ROBUSTNESS.md).
  if (brownout_.Level() >= 3) {
    stats_.SetBrownoutLevel(brownout_.Level());
    stats_.RecordShed(StatusCode::kResourceExhausted);
    return FinishEarly(kind,
                       Status::ResourceExhausted("brownout: shedding load"),
                       query_id, enqueue_ts_us, t_enqueue,
                       brownout_.options().retry_after_seconds);
  }
  if (TILESPMV_FAULT_POINT("serve/admit_alloc")) {
    stats_.RecordShed(StatusCode::kResourceExhausted);
    return reject(Status::ResourceExhausted(
        "injected fault: admission allocation failed"));
  }

  // Admission control: bound total in-flight requests instead of queueing
  // unboundedly.
  if (pending_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.RecordShed(StatusCode::kUnavailable);
    return reject(Status::Unavailable("admission control: queue full"));
  }
  brownout_.RecordQueueFraction(
      static_cast<double>(pending_.load(std::memory_order_relaxed)) /
      static_cast<double>(options_.max_pending));

  const TimePoint now = Clock::now();
  double deadline_seconds = resolved.deadline_seconds > 0
                                ? resolved.deadline_seconds
                                : options_.default_deadline_seconds;
  const bool has_deadline = deadline_seconds > 0;
  const TimePoint deadline =
      has_deadline ? now + DurationFromSeconds(deadline_seconds) : now;

  // RWR queries coalesce: park in the batcher and let a flush task drain
  // the bucket after the batch window.
  if (kind == QueryKind::kRwr && options_.batch_window_seconds > 0 &&
      options_.max_batch > 1) {
    RwrBatchKey key;
    key.fingerprint = entry->fingerprint;
    key.device = resolved.device;
    key.kernel = resolved.kernel;
    key.restart = resolved.restart;
    key.tolerance = resolved.tolerance;
    key.max_iterations = resolved.max_iterations;
    key.max_tolerance = resolved.max_tolerance;

    RwrPendingQuery sub;
    sub.node = resolved.node;
    sub.enqueue_time = t_enqueue;
    sub.deadline = deadline;
    sub.has_deadline = has_deadline;
    sub.query_id = query_id;
    sub.enqueue_ts_us = enqueue_ts_us;
    sub.admitted = now;
    std::future<QueryResponse> future = sub.promise.get_future();
    if (coalescer_.Add(key, std::move(sub))) {
      Task task;
      task.kind = Task::Kind::kFlushBatch;
      task.batch_key = std::move(key);
      task.batch_graph = entry;
      task.not_before = now + DurationFromSeconds(
                                  options_.batch_window_seconds);
      EnqueueTask(std::move(task));
    }
    return future;
  }

  auto request = std::make_shared<Request>();
  request->kind = kind;
  request->graph = entry;
  request->params = std::move(resolved);
  request->enqueue_time = t_enqueue;
  request->deadline = deadline;
  request->has_deadline = has_deadline;
  request->query_id = query_id;
  request->enqueue_ts_us = enqueue_ts_us;
  request->admitted = now;
  std::future<QueryResponse> future = request->promise.get_future();

  // Identical PageRank/HITS requests already in flight are answered once:
  // later arrivals attach to the running computation.
  if (kind == QueryKind::kPageRank || kind == QueryKind::kHits) {
    request->dedup_key =
        DedupKey{entry->fingerprint,           kind,
                 request->params.device,       request->params.kernel,
                 request->params.damping,      request->params.tolerance,
                 request->params.max_iterations};
    request->deduplicable = true;
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(request->dedup_key);
    if (it != inflight_.end()) {
      it->second->waiters.push_back(Request::Waiter{
          std::move(request->promise), t_enqueue, query_id, enqueue_ts_us,
          now});
      stats_.RecordDedupHit();
      return future;
    }
    inflight_[request->dedup_key] = request;
  }

  Task task;
  task.kind = Task::Kind::kExec;
  task.request = std::move(request);
  EnqueueTask(std::move(task));
  return future;
}

QueryResponse Engine::Query(const std::string& graph, QueryKind kind,
                            const QueryParams& params) {
  return Submit(graph, kind, params).get();
}

ServerStatsSnapshot Engine::stats() const {
  ServerStatsSnapshot s = stats_.Snapshot();
  PlanCacheStats cache = plan_cache_.stats();
  s.plan_hits = cache.hits;
  s.plan_misses = cache.misses;
  s.plan_evictions = cache.evictions;
  s.plan_resident_bytes = cache.resident_bytes;
  s.plan_entries = cache.entries;
  s.plan_failed_builds = cache.failed_builds;
  s.plan_failure_memo_hits = cache.failure_memo_hits;
  s.fault_fires = robust::FaultInjector::Global().fires_total();
  s.flight_dumps = journal_.dumped_total();
  s.journal_records = journal_.size();
  s.journal_dropped = journal_.dropped();
  s.simd_tier = simd::TierName(simd::ResolvedTier());
  return s;
}

std::string Engine::MetricsText() const {
  obs::MetricsRegistry* registry = stats_.registry();
  PlanCacheStats cache = plan_cache_.stats();
  registry->GetGauge("tilespmv_serve_plan_hits", "Plan-cache hits")
      ->Set(static_cast<double>(cache.hits));
  registry->GetGauge("tilespmv_serve_plan_misses", "Plan-cache misses")
      ->Set(static_cast<double>(cache.misses));
  registry->GetGauge("tilespmv_serve_plan_evictions", "Plan-cache evictions")
      ->Set(static_cast<double>(cache.evictions));
  registry
      ->GetGauge("tilespmv_serve_plan_resident_bytes",
                 "Modeled bytes of resident plans")
      ->Set(static_cast<double>(cache.resident_bytes));
  registry->GetGauge("tilespmv_serve_plan_entries", "Resident plan count")
      ->Set(static_cast<double>(cache.entries));
  registry->GetGauge("tilespmv_serve_uptime_seconds", "Engine uptime")
      ->Set(stats_.Snapshot().uptime_seconds);
  // Refresh: a --simd override or env change between engines re-resolves.
  simd::PublishMetrics(registry);
  return registry->ToPrometheusText();
}

void Engine::EnqueueTask(Task task) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void Engine::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task.kind == Task::Kind::kExec) {
      ExecuteSingle(task.request);
    } else {
      FlushBatch(task);
    }
  }
}

Result<std::shared_ptr<const Plan>> Engine::GetPlan(
    const GraphEntry& graph, QueryKind kind, const std::string& kernel,
    const std::string& device, bool* cache_hit, double* build_seconds) {
  PlanKey key;
  key.fingerprint = graph.fingerprint;
  key.device = device;
  key.kernel = kernel;
  key.workload = WorkloadFor(kind);

  auto builder = [&]() -> Result<Plan> {
        if (TILESPMV_FAULT_POINT("plan_cache/build")) {
          return Status::Internal("injected fault: plan build failed");
        }
        obs::TraceSpan build_span("serve", "serve/plan_build");
        if (build_span.active()) {
          build_span.Arg("kernel", kernel);
          build_span.Arg("device", device);
          build_span.Arg("workload", std::string(QueryKindName(kind)));
        }
        gpusim::DeviceSpec spec;
        if (!gpusim::DeviceSpecByName(device, &spec)) {
          return Status::InvalidArgument("unknown device " + device);
        }
        std::unique_ptr<SpMVKernel> k = CreateKernel(kernel, spec);
        if (k == nullptr) {
          return Status::InvalidArgument("unknown kernel " + kernel);
        }
        WallTimer timer;
        Plan built;
        built.nodes = graph.matrix.rows;
        switch (key.workload) {
          case PlanWorkload::kPageRank: {
            Status st = k->Setup(PageRankMatrix(graph.matrix));
            if (!st.ok()) return st;
            // Prebuild the pipelined iteration graph as part of the plan:
            // every query replays the frozen graph instead of paying the
            // one-time build on first use.
            if (options_.pipeline && k->tile_dag() != nullptr) {
              k->tile_dag()->PowerPairGraph(TileDag::PowerKind::kPageRank);
            }
            break;
          }
          case PlanWorkload::kHits: {
            Status st = k->Setup(BuildHitsMatrix(graph.matrix));
            if (!st.ok()) return st;
            if (options_.pipeline && k->tile_dag() != nullptr) {
              k->tile_dag()->PowerPairGraph(TileDag::PowerKind::kHits);
            }
            break;
          }
          case PlanWorkload::kRwr: {
            // Attach the blocked sibling when the kernel has one and the
            // engine coalesces: batches then pay one matrix sweep per panel
            // of spmm_block_cols queries instead of one per query.
            RwrOptions ropts;
            const std::string spmm_name = spmm::SpmmKernelNameForSpmv(kernel);
            if (!spmm_name.empty() && options_.max_batch > 1 &&
                options_.batch_window_seconds > 0) {
              built.spmm = spmm::CreateSpMMKernel(spmm_name, spec);
              ropts.block_cols = options_.spmm_block_cols;
              built.rwr =
                  std::make_unique<RwrEngine>(k.get(), built.spmm.get());
            } else {
              built.rwr = std::make_unique<RwrEngine>(k.get());
            }
            Status st = built.rwr->Init(graph.matrix, ropts);
            if (!st.ok()) return st;
            break;
          }
        }
        built.resident_bytes = PlanResidentBytes(*k);
        if (built.spmm != nullptr) {
          // The blocked path keeps x/y panels resident instead of single
          // vectors.
          built.resident_bytes +=
              8ULL * static_cast<uint64_t>(built.spmm->block_cols()) *
              static_cast<uint64_t>(graph.matrix.rows);
        }
        built.kernel = std::move(k);
        built.build_seconds = timer.Seconds();
        return built;
      };
  Result<std::shared_ptr<const Plan>> plan =
      plan_cache_.GetOrBuild(key, builder, cache_hit);
  // Transient build failures retry with jittered exponential backoff: the
  // failure memo is cleared so the rebuild actually runs, and the jitter
  // decorrelates concurrent retriers hammering the same key.
  for (int attempt = 0;
       !plan.ok() && TransientBuildFailure(plan.status().code()) &&
       attempt < options_.plan_build_retries && !stopping_.load(std::memory_order_relaxed);
       ++attempt) {
    stats_.RecordPlanBuildRetry();
    plan_cache_.Invalidate(key);
    uint64_t z = retry_jitter_state_.fetch_add(0x9e3779b97f4a7c15ULL,
                                               std::memory_order_relaxed) +
                 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double unit = static_cast<double>(z >> 11) * 0x1.0p-53;
    const double backoff = options_.plan_build_retry_base_seconds *
                           static_cast<double>(1 << attempt) *
                           (0.5 + 0.5 * unit);
    if (backoff > 0) {
      std::this_thread::sleep_for(DurationFromSeconds(backoff));
    }
    plan = plan_cache_.GetOrBuild(key, builder, cache_hit);
  }
  if (plan.ok() && build_seconds != nullptr) {
    *build_seconds = *cache_hit ? 0.0 : plan.value()->build_seconds;
  }
  return plan;
}

void Engine::ExecuteSingle(const std::shared_ptr<Request>& request) {
  const TimePoint start = Clock::now();
  // The execution span and the query's lifetime event share this flow id:
  // dedup waiters link to the same span as the leader they rode.
  const uint64_t exec_id = journal_.NextId();
  obs::TraceSpan span("serve", "serve/execute");
  RequestTiming timing;
  timing.query_id = request->query_id;
  timing.enqueue_ts_us = request->enqueue_ts_us;
  timing.kind = request->kind;
  timing.enqueue = request->enqueue_time;
  timing.admitted = request->admitted;
  timing.exec_start = start;
  timing.exec_span_id = exec_id;
  QueryResponse response;
  response.kind = request->kind;
  response.queue_seconds = SecondsBetween(request->enqueue_time, start);
  if (span.active()) {
    span.Arg("kind", std::string(QueryKindName(request->kind)));
    span.Arg("queue_ms", response.queue_seconds * 1e3);
    span.Arg("query_id", static_cast<int64_t>(request->query_id));
    span.FlowOut(exec_id);
  }

  if (request->has_deadline && start > request->deadline) {
    response.status =
        Status::DeadlineExceeded("request expired while queued");
    FinishRequest(request, std::move(response), timing);
    return;
  }
  TILESPMV_FAULT_STALL("serve/execute_slow");

  bool cache_hit = false;
  double build_seconds = 0.0;
  Result<std::shared_ptr<const Plan>> plan =
      GetPlan(*request->graph, request->kind, request->params.kernel,
              request->params.device, &cache_hit, &build_seconds);
  timing.plan_ready = Clock::now();
  if (!plan.ok()) {
    response.status = plan.status();
    FinishRequest(request, std::move(response), timing);
    return;
  }
  response.plan_cache_hit = cache_hit;
  response.plan_build_seconds = build_seconds;
  response.simd_tier = std::string(plan.value()->kernel->simd_tier());

  const QueryParams& p = request->params;
  // Deadline-aware solves: the token is checked at iteration boundaries, so
  // a deadline expiring mid-solve aborts the loop instead of running the
  // full budget against a request nobody is waiting for.
  robust::CancelToken cancel;
  if (request->has_deadline) cancel.SetDeadline(request->deadline);
  // Brownout rung 2: relax tolerance within the caller-approved bound.
  const int level = brownout_.Level();
  float tolerance = p.tolerance;
  if (level >= 2 && p.max_tolerance > tolerance) {
    tolerance = p.max_tolerance;
    stats_.RecordBrownoutToleranceRelaxed(1);
  }
  response.brownout_level = level;
  response.tolerance_used = tolerance;
  switch (request->kind) {
    case QueryKind::kPageRank: {
      PageRankOptions opts;
      opts.damping = p.damping;
      opts.max_iterations = p.max_iterations;
      opts.tolerance = tolerance;
      opts.cancel = &cancel;
      opts.require_convergence = options_.strict_convergence;
      opts.pipeline = options_.pipeline;
      Result<IterativeResult> r =
          RunPageRankPrepared(*plan.value()->kernel, opts);
      if (!r.ok()) {
        response.status = r.status();
        break;
      }
      IterativeResult stats = r.take();
      response.scores = std::move(stats.result);
      stats.result.clear();
      response.stats = std::move(stats);
      break;
    }
    case QueryKind::kHits: {
      HitsOptions opts;
      opts.max_iterations = p.max_iterations;
      opts.tolerance = tolerance;
      opts.cancel = &cancel;
      opts.require_convergence = options_.strict_convergence;
      opts.pipeline = options_.pipeline;
      Result<HitsScores> r = RunHitsPrepared(*plan.value()->kernel, opts);
      if (!r.ok()) {
        response.status = r.status();
        break;
      }
      HitsScores scores = r.take();
      response.authority = std::move(scores.authority);
      response.hub = std::move(scores.hub);
      response.stats = std::move(scores.stats);
      break;
    }
    case QueryKind::kRwr: {
      RwrOptions opts;
      opts.restart = p.restart;
      opts.max_iterations = p.max_iterations;
      opts.tolerance = tolerance;
      opts.cancel = &cancel;
      opts.require_convergence = options_.strict_convergence;
      opts.pipeline = options_.pipeline;
      Result<RwrResult> r = plan.value()->rwr->Query(p.node, opts);
      if (!r.ok()) {
        response.status = r.status();
        break;
      }
      RwrResult result = r.take();
      response.scores = std::move(result.scores);
      response.stats = std::move(result.stats);
      break;
    }
  }
  // Non-healthy solves come back through the OK Result (iterations-used and
  // partial stats intact); map the health to the response's typed status.
  if (response.status.ok() &&
      response.stats.health != IterativeHealth::kHealthy) {
    response.cancelled =
        response.stats.health == IterativeHealth::kCancelled;
    response.status = StatusFromHealth(response.stats.health);
  }
  timing.compute_done = Clock::now();
  FinishRequest(request, std::move(response), timing);
}

void Engine::FlushBatch(const Task& task) {
  // Let the batch window close so companions can pile in — unless the
  // engine is shutting down, in which case flush immediately.
  while (!stopping_.load(std::memory_order_relaxed) &&
         Clock::now() < task.not_before) {
    std::this_thread::sleep_until(task.not_before);
  }

  obs::TraceSpan batch_span("serve", "serve/flush_batch");
  bool has_more = false;
  std::vector<RwrPendingQuery> subs =
      coalescer_.Take(task.batch_key, options_.max_batch, &has_more);
  if (has_more) {
    // Leftovers beyond max_batch flush immediately as the next batch.
    Task next = task;
    next.not_before = Clock::now();
    EnqueueTask(std::move(next));
  }
  if (subs.empty()) return;

  const TimePoint start = Clock::now();
  // One flow id for the whole flush: every query in the batch links its
  // lifetime event to this shared execution span.
  const uint64_t exec_id = journal_.NextId();
  auto timing_for = [&](const RwrPendingQuery& sub) {
    RequestTiming timing;
    timing.query_id = sub.query_id;
    timing.enqueue_ts_us = sub.enqueue_ts_us;
    timing.kind = QueryKind::kRwr;
    timing.enqueue = sub.enqueue_time;
    timing.admitted = sub.admitted;
    timing.exec_start = start;
    timing.coalesced = true;
    timing.exec_span_id = exec_id;
    return timing;
  };
  std::vector<RwrPendingQuery*> live;
  live.reserve(subs.size());
  for (RwrPendingQuery& sub : subs) {
    if (sub.has_deadline && start > sub.deadline) {
      QueryResponse response;
      response.kind = QueryKind::kRwr;
      response.queue_seconds = SecondsBetween(sub.enqueue_time, start);
      response.status =
          Status::DeadlineExceeded("request expired while queued");
      Respond(&sub.promise, std::move(response), timing_for(sub));
    } else {
      live.push_back(&sub);
    }
  }
  if (live.empty()) return;

  auto fail_all = [&](const Status& status) {
    for (RwrPendingQuery* sub : live) {
      QueryResponse response;
      response.kind = QueryKind::kRwr;
      response.queue_seconds = SecondsBetween(sub->enqueue_time, start);
      response.status = status;
      Respond(&sub->promise, std::move(response), timing_for(*sub));
    }
  };

  bool cache_hit = false;
  double build_seconds = 0.0;
  Result<std::shared_ptr<const Plan>> plan =
      GetPlan(*task.batch_graph, QueryKind::kRwr, task.batch_key.kernel,
              task.batch_key.device, &cache_hit, &build_seconds);
  const TimePoint plan_ready = Clock::now();
  if (!plan.ok()) {
    fail_all(plan.status());
    return;
  }

  std::vector<int32_t> nodes;
  nodes.reserve(live.size());
  for (RwrPendingQuery* sub : live) nodes.push_back(sub->node);

  // Batch-wide cancellation: the token carries the latest deadline, but only
  // when every member has one — a single open-ended query keeps the batch
  // running to completion (cancelling it on a companion's deadline would be
  // wrong).
  robust::CancelToken cancel;
  bool all_deadlines = true;
  TimePoint latest_deadline = TimePoint::min();
  for (RwrPendingQuery* sub : live) {
    if (!sub->has_deadline) {
      all_deadlines = false;
      break;
    }
    latest_deadline = std::max(latest_deadline, sub->deadline);
  }
  if (all_deadlines) cancel.SetDeadline(latest_deadline);

  const int level = brownout_.Level();
  RwrOptions opts;
  opts.restart = task.batch_key.restart;
  opts.tolerance = task.batch_key.tolerance;
  opts.max_iterations = task.batch_key.max_iterations;
  opts.cancel = all_deadlines ? &cancel : nullptr;
  opts.require_convergence = options_.strict_convergence;
  // Brownout rung 1: halve the SpMM panel width so each sweep retires
  // sooner (the blocked kernels already handle ragged panels, no rebuild).
  if (level >= 1 && plan.value()->spmm != nullptr) {
    opts.max_panel_width = std::max(1, plan.value()->spmm->block_cols() / 2);
    stats_.RecordBrownoutPanelDrop();
  }
  // Brownout rung 2: relax tolerance within the batch's caller-approved
  // bound (part of the batch key, so it holds for every member).
  if (level >= 2 && task.batch_key.max_tolerance > opts.tolerance) {
    opts.tolerance = task.batch_key.max_tolerance;
    stats_.RecordBrownoutToleranceRelaxed(live.size());
  }
  RwrBatchExecution exec;
  Result<std::vector<RwrResult>> results =
      plan.value()->rwr->QueryBatch(nodes, opts, &exec);
  const TimePoint compute_done = Clock::now();
  if (!results.ok()) {
    fail_all(results.status());
    return;
  }

  const int batch_size = static_cast<int>(live.size());
  const std::string batch_simd_tier(plan.value()->kernel->simd_tier());
  stats_.RecordRwrBatch(batch_size);
  if (exec.sweeps > 0 && exec.blocked) {
    stats_.RecordSpmmExecution(exec.sweeps, exec.vectors);
  }
  if (batch_span.active()) {
    batch_span.Arg("batch_size", batch_size);
    batch_span.Arg("blocked", exec.blocked ? 1 : 0);
    batch_span.Arg("block_cols", exec.block_cols);
    batch_span.Arg("spmm_sweeps", static_cast<double>(exec.sweeps));
    batch_span.FlowOut(exec_id);
  }
  for (size_t i = 0; i < live.size(); ++i) {
    RwrPendingQuery* sub = live[i];
    QueryResponse response;
    response.kind = QueryKind::kRwr;
    // Health is tracked per query column: one diverging column fails with
    // kNumericalError while its batchmates still succeed.
    const IterativeHealth health = results.value()[i].stats.health;
    response.status = StatusFromHealth(health);
    response.cancelled = health == IterativeHealth::kCancelled;
    response.brownout_level = level;
    response.tolerance_used = opts.tolerance;
    response.scores = std::move(results.value()[i].scores);
    response.stats = std::move(results.value()[i].stats);
    response.plan_cache_hit = cache_hit;
    response.plan_build_seconds = i == 0 ? build_seconds : 0.0;
    response.simd_tier = batch_simd_tier;
    response.batch_size = batch_size;
    response.queue_seconds = SecondsBetween(sub->enqueue_time, start);
    if (exec.blocked && i < exec.queries.size()) {
      // SpMM panel placement: which panel column this query occupied, at
      // what actual sweep width, and whether that panel was the ragged tail.
      response.panel_width = exec.queries[i].panel_width;
      response.panel_column = exec.queries[i].panel_column;
      response.ragged_tail = exec.queries[i].ragged_tail;
    }
    RequestTiming timing = timing_for(*sub);
    timing.plan_ready = plan_ready;
    timing.compute_done = compute_done;
    timing.post_done = Clock::now();
    Respond(&sub->promise, std::move(response), timing);
  }
}

void Engine::FinishRequest(const std::shared_ptr<Request>& request,
                           QueryResponse response, RequestTiming timing) {
  std::vector<Request::Waiter> waiters;
  if (request->deduplicable) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(request->dedup_key);
    if (it != inflight_.end() && it->second == request) inflight_.erase(it);
    waiters = std::move(request->waiters);
    request->waiters.clear();
  }
  timing.post_done = Clock::now();
  for (Request::Waiter& waiter : waiters) {
    QueryResponse copy = response;
    copy.deduped = true;
    copy.plan_build_seconds = 0.0;
    // Waiters share the leader's execution timeline but own their entry
    // boundaries; stage clamping in RecordOutcome bills a waiter that
    // attached mid-run only for the portion it actually waited.
    RequestTiming waiter_timing = timing;
    waiter_timing.query_id = waiter.query_id;
    waiter_timing.enqueue_ts_us = waiter.enqueue_ts_us;
    waiter_timing.enqueue = waiter.enqueue_time;
    waiter_timing.admitted = waiter.admitted;
    Respond(&waiter.promise, std::move(copy), waiter_timing);
  }
  Respond(&request->promise, std::move(response), timing);
}

void Engine::RecordOutcome(QueryResponse* response,
                           const RequestTiming& timing) {
  const TimePoint now = Clock::now();
  // Telescoping breakdown: consecutive differences of one boundary sequence
  // sum to the total latency exactly. The running max collapses unset (or
  // leader-owned, pre-attach) boundaries onto their predecessor, keeping
  // every stage non-negative without breaking the telescope (the endpoints
  // are this request's own enqueue and reply times).
  TimePoint b[7] = {timing.enqueue,      timing.admitted, timing.exec_start,
                    timing.plan_ready,   timing.compute_done,
                    timing.post_done,    now};
  for (int i = 1; i < 7; ++i) b[i] = std::max(b[i - 1], b[i]);
  obs::QueryStages stages;
  stages[obs::QueryStage::kAdmission] = SecondsBetween(b[0], b[1]);
  stages[timing.coalesced ? obs::QueryStage::kCoalesce
                          : obs::QueryStage::kQueue] =
      SecondsBetween(b[1], b[2]);
  stages[obs::QueryStage::kPlan] = SecondsBetween(b[2], b[3]);
  stages[obs::QueryStage::kExecute] = SecondsBetween(b[3], b[4]);
  stages[obs::QueryStage::kPostprocess] = SecondsBetween(b[4], b[5]);
  stages[obs::QueryStage::kReply] = SecondsBetween(b[5], b[6]);
  const double total = SecondsBetween(b[0], b[6]);

  response->query_id = timing.query_id;
  response->stages = stages;
  response->latency_seconds = total;

  obs::QueryRecord record;
  record.query_id = timing.query_id;
  record.kind = std::string(QueryKindName(timing.kind));
  record.code = response->status.code();
  record.stages = stages;
  record.total_seconds = total;
  record.enqueue_ts_us = timing.enqueue_ts_us;
  record.deadline_missed = record.code == StatusCode::kDeadlineExceeded;
  record.cancelled = response->cancelled;
  record.iterations = response->stats.iterations;
  record.brownout_level = response->brownout_level;
  record.deduped = response->deduped;
  record.coalesced = timing.coalesced;
  record.plan_cache_hit = response->plan_cache_hit;
  record.simd_tier = response->simd_tier;
  record.batch_size = response->batch_size;
  record.panel_width = response->panel_width;
  record.panel_column = response->panel_column;
  record.ragged_tail = response->ragged_tail;
  record.exec_span_id = timing.exec_span_id;

  // The query's lifetime trace event: one span covering enqueue to reply,
  // flow-linked (bind_id) to the shared execution span it rode, with the
  // stage breakdown in its args. Recorded retroactively — the tracer must
  // have been enabled when the request was submitted.
  if (timing.enqueue_ts_us > 0 && obs::Tracer::Global().enabled()) {
    obs::TraceEvent event;
    event.name = "query/";
    event.name += record.kind;
    event.cat = "query";
    event.ts_us = timing.enqueue_ts_us;
    event.dur_us = total * 1e6;
    std::string args = "\"query_id\":" + std::to_string(record.query_id);
    args += ",\"status\":\"";
    args += obs::StatusCodeName(record.code);
    args += '"';
    char buf[64];
    for (int i = 0; i < obs::kNumQueryStages; ++i) {
      std::snprintf(buf, sizeof(buf), ",\"%s_ms\":%.4f",
                    obs::QueryStageName(i), stages.seconds[i] * 1e3);
      args += buf;
    }
    args += ",\"simd_tier\":\"" + record.simd_tier + '"';
    args += ",\"batch_size\":" + std::to_string(record.batch_size);
    args += ",\"panel_width\":" + std::to_string(record.panel_width);
    args += ",\"panel_column\":" + std::to_string(record.panel_column);
    args += ",\"ragged_tail\":";
    args += record.ragged_tail ? "true" : "false";
    args += ",\"deduped\":";
    args += record.deduped ? "true" : "false";
    args += ",\"coalesced\":";
    args += record.coalesced ? "true" : "false";
    args += ",\"deadline_missed\":";
    args += record.deadline_missed ? "true" : "false";
    event.args = std::move(args);
    if (record.exec_span_id != 0) {
      event.bind_id = record.exec_span_id;
      event.flow_in = true;
    }
    obs::Tracer::Global().Record(std::move(event));
  }

  journal_.Record(std::move(record));
}

void Engine::Respond(std::promise<QueryResponse>* promise,
                     QueryResponse response, RequestTiming timing) {
  RecordOutcome(&response, timing);
  const StatusCode code = response.status.code();
  // Feed the brownout controller: each finished request is one sample of
  // "did we miss its deadline", and the gauge mirrors the resulting level.
  brownout_.RecordOutcome(code == StatusCode::kDeadlineExceeded);
  stats_.SetBrownoutLevel(brownout_.Level());
  if (code == StatusCode::kDeadlineExceeded) {
    if (response.cancelled) {
      stats_.RecordCancelled();
    } else {
      stats_.RecordShed(code);
    }
    stats_.RecordStages(response.stages);
  } else if (code == StatusCode::kUnavailable ||
             code == StatusCode::kResourceExhausted) {
    stats_.RecordShed(code);
  } else {
    if (code == StatusCode::kNumericalError) stats_.RecordNumericalError();
    if (code == StatusCode::kDidNotConverge) stats_.RecordDidNotConverge();
    stats_.RecordCompletion(response.latency_seconds,
                            response.stats.gpu_seconds, response.status.ok());
    stats_.RecordStages(response.stages);
  }
  promise->set_value(std::move(response));
  pending_.fetch_sub(1, std::memory_order_acq_rel);
}

std::future<QueryResponse> Engine::FinishEarly(QueryKind kind, Status status,
                                               uint64_t query_id,
                                               double enqueue_ts_us,
                                               TimePoint enqueue,
                                               double retry_after_seconds) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  QueryResponse response;
  response.kind = kind;
  response.status = std::move(status);
  response.retry_after_seconds = retry_after_seconds;
  RequestTiming timing;
  timing.query_id = query_id;
  timing.enqueue_ts_us = enqueue_ts_us;
  timing.kind = kind;
  timing.enqueue = enqueue;
  timing.admitted = Clock::now();  // The whole rejection is admission work.
  RecordOutcome(&response, timing);
  promise.set_value(std::move(response));
  return future;
}

void Engine::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  stopping_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Coalescer invariant: every non-empty bucket has a queued flush task, and
  // the queue is drained before workers exit — but answer any stragglers
  // defensively rather than leaving futures hanging.
  for (RwrPendingQuery& sub : coalescer_.TakeAll()) {
    QueryResponse response;
    response.kind = QueryKind::kRwr;
    response.status = Status::Unavailable("engine is shut down");
    RequestTiming timing;
    timing.query_id = sub.query_id;
    timing.enqueue_ts_us = sub.enqueue_ts_us;
    timing.kind = QueryKind::kRwr;
    timing.enqueue = sub.enqueue_time;
    timing.admitted = sub.admitted;
    timing.coalesced = true;
    Respond(&sub.promise, std::move(response), timing);
  }
}

}  // namespace tilespmv::serve
