#include "serve/coalescer.h"

#include <algorithm>
#include <utility>

namespace tilespmv::serve {

size_t RwrBatchKeyHash::operator()(const RwrBatchKey& k) const {
  size_t h = std::hash<uint64_t>{}(k.fingerprint);
  auto mix = [&h](size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::string>{}(k.device));
  mix(std::hash<std::string>{}(k.kernel));
  mix(std::hash<float>{}(k.restart));
  mix(std::hash<float>{}(k.tolerance));
  mix(static_cast<size_t>(k.max_iterations));
  mix(std::hash<float>{}(k.max_tolerance));
  return h;
}

bool RwrCoalescer::Add(const RwrBatchKey& key, RwrPendingQuery query) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RwrPendingQuery>& bucket = buckets_[key];
  bucket.push_back(std::move(query));
  return bucket.size() == 1;
}

std::vector<RwrPendingQuery> RwrCoalescer::Take(const RwrBatchKey& key,
                                                int max_batch,
                                                bool* has_more) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RwrPendingQuery> taken;
  auto it = buckets_.find(key);
  if (it == buckets_.end()) {
    if (has_more != nullptr) *has_more = false;
    return taken;
  }
  std::vector<RwrPendingQuery>& bucket = it->second;
  size_t n = std::min<size_t>(bucket.size(),
                              max_batch > 0 ? static_cast<size_t>(max_batch)
                                            : bucket.size());
  taken.reserve(n);
  for (size_t i = 0; i < n; ++i) taken.push_back(std::move(bucket[i]));
  bucket.erase(bucket.begin(), bucket.begin() + static_cast<int64_t>(n));
  if (bucket.empty()) {
    buckets_.erase(it);
    if (has_more != nullptr) *has_more = false;
  } else {
    if (has_more != nullptr) *has_more = true;
  }
  return taken;
}

std::vector<RwrPendingQuery> RwrCoalescer::TakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RwrPendingQuery> all;
  for (auto& [key, bucket] : buckets_) {
    for (RwrPendingQuery& q : bucket) all.push_back(std::move(q));
  }
  buckets_.clear();
  return all;
}

}  // namespace tilespmv::serve
