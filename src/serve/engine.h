#ifndef TILESPMV_SERVE_ENGINE_H_
#define TILESPMV_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "robust/brownout.h"
#include "serve/coalescer.h"
#include "serve/plan_cache.h"
#include "serve/request.h"
#include "serve/server_stats.h"
#include "sparse/csr.h"

namespace tilespmv::serve {

/// Engine configuration. The defaults suit an interactive mixed workload;
/// docs/SERVING.md discusses tuning.
struct EngineOptions {
  /// Request workers (queries executing concurrently). Numeric loops inside
  /// a query (kernel Multiply, preprocessing, graph reductions) additionally
  /// fan out over the process-global par::ThreadPool, which is shared by all
  /// engine workers: each loop is an independent pool region, and results
  /// stay bitwise identical regardless of either thread count (see
  /// docs/PARALLELISM.md), so dedup/coalescing semantics are unaffected.
  int num_threads = 4;
  /// Admission control: total requests in flight (queued + executing +
  /// waiting in a coalescing bucket). Submissions beyond it are shed with
  /// kUnavailable instead of queueing unboundedly.
  int max_pending = 256;
  /// Plan cache budget in modeled resident bytes.
  uint64_t plan_cache_bytes = 512ULL << 20;
  /// Default per-request deadline; 0 = no deadline unless the request sets
  /// one.
  double default_deadline_seconds = 0.0;
  /// How long an RWR query may wait for companions before its batch is
  /// flushed. 0 disables coalescing.
  double batch_window_seconds = 0.002;
  /// Largest coalesced RWR batch.
  int max_batch = 16;
  /// Panel width RWR plans are set up with for blocked (SpMM) batch
  /// execution: one of spmm::kBlockWidths, or 0 to auto-select the largest
  /// width <= max_batch. Values are normalized in the constructor (rounded
  /// down to a valid width); the CLI rejects invalid input before it gets
  /// here.
  int spmm_block_cols = 0;
  std::string default_kernel = "tile-composite";
  std::string default_device = "c1060";
  /// Upgrade host-kernel requests ("cpu-csr") to their SIMD sibling
  /// (SimdHostKernelFor) when simd::ResolvedTier() is above scalar. The
  /// upgrade happens at Submit resolution, so the plan cache, dedup keys
  /// and coalescing buckets all see the upgraded name. Off = serve exactly
  /// the kernel the request named.
  bool prefer_simd_host = true;
  /// Query-journal ring capacity (finished-request records retained).
  size_t query_journal_capacity = 4096;
  /// Flight recorder: dump the full stage breakdown of any request whose
  /// deadline was missed. Slow-query dumps additionally trigger when
  /// slow_query_seconds > 0 and a request's total latency reaches it.
  bool flight_recorder = true;
  double slow_query_seconds = 0.0;
  /// When non-empty, flight-recorder dumps are appended to this file as JSON
  /// lines as they happen (spmv_cli serve --flight-dump).
  std::string flight_dump_path;
  /// Registry the engine's tilespmv_serve_* instruments live in. nullptr
  /// gives the engine a private registry (readable via MetricsText());
  /// pass &obs::MetricsRegistry::Global() to fold serving metrics into a
  /// process-wide export (spmv_cli serve does).
  obs::MetricsRegistry* metrics = nullptr;
  /// Graceful-degradation ladder configuration (docs/ROBUSTNESS.md). The
  /// controller watches deadline misses and queue pressure; levels 1-3
  /// progressively halve SpMM panel width, relax RWR tolerance within each
  /// caller's max_tolerance, and shed with kResourceExhausted.
  robust::BrownoutOptions brownout;
  /// Run single-query PageRank/HITS/RWR iteration loops on the plan
  /// kernel's task graph when it exposes one (graph/pipeline.h): the plan
  /// captures the prebuilt two-iteration graph and every query replays it,
  /// overlapping each iteration's tail with the next one's first SpMV
  /// chunks. Results are bitwise identical either way; off forces the
  /// fork-join loops (ablation / bench baseline).
  bool pipeline = true;
  /// Transiently failed plan builds (kInternal/kResourceExhausted/kIoError/
  /// kUnavailable) are retried up to this many times with jittered
  /// exponential backoff before the error is returned. 0 disables retry.
  int plan_build_retries = 2;
  double plan_build_retry_base_seconds = 0.001;
  /// Map iteration loops that exhaust max_iterations without reaching
  /// tolerance to kDidNotConverge instead of returning the best-effort
  /// result as OK. Off by default: fixed-iteration callers (tolerance 0)
  /// never converge by definition.
  bool strict_convergence = false;
};

/// A long-running, thread-safe graph-analytics serving engine layered on the
/// batch stack. Graphs are registered once; queries against them reuse
/// cached preprocessed plans (PlanCache), run on a bounded thread pool with
/// admission control and deadlines, and concurrent RWR queries on the same
/// graph coalesce into one QueryBatch call. All public methods are
/// thread-safe.
class Engine {
 public:
  explicit Engine(const EngineOptions& options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a graph under `name` (fingerprinted for plan caching).
  /// Re-registering an existing name replaces the graph; plans for the old
  /// content age out of the cache by LRU.
  Status AddGraph(const std::string& name, CsrMatrix graph);

  /// Submits a query. The returned future always completes — with a result,
  /// or with a typed error Status in QueryResponse::status: kUnavailable
  /// when shed by admission control or shutdown, kDeadlineExceeded when the
  /// deadline expired in queue, kInvalidArgument for bad requests.
  std::future<QueryResponse> Submit(const std::string& graph, QueryKind kind,
                                    const QueryParams& params = {});

  /// Blocking convenience wrapper around Submit.
  QueryResponse Query(const std::string& graph, QueryKind kind,
                      const QueryParams& params = {});

  /// Snapshot of the serving counters, including plan-cache stats, per-stage
  /// latency attribution, and flight-recorder counters.
  ServerStatsSnapshot stats() const;

  /// The engine's query journal: one record per finished request with the
  /// per-stage latency breakdown, plus the flight-recorder dump ring.
  const obs::QueryJournal& journal() const { return journal_; }

  /// Prometheus text exposition of the engine's metrics registry — the
  /// GET /metrics payload a fronting HTTP server would return. Plan-cache
  /// gauges are refreshed from the PlanCache at call time.
  std::string MetricsText() const;

  PlanCacheStats plan_cache_stats() const { return plan_cache_.stats(); }

  const EngineOptions& options() const { return options_; }

  /// Drains in-flight work and joins the worker threads. Called by the
  /// destructor; safe to call more than once. Requests still waiting when
  /// shutdown begins are answered (the queue is drained, not dropped), but
  /// new submissions are shed with kUnavailable.
  void Shutdown();

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  struct GraphEntry {
    CsrMatrix matrix;
    uint64_t fingerprint = 0;
  };

  /// Key for deduplicating identical PageRank/HITS requests in flight.
  struct DedupKey {
    uint64_t fingerprint = 0;
    QueryKind kind = QueryKind::kPageRank;
    std::string device;
    std::string kernel;
    float damping = 0.0f;
    float tolerance = 0.0f;
    int max_iterations = 0;

    bool operator==(const DedupKey&) const = default;
  };
  struct DedupKeyHash {
    size_t operator()(const DedupKey& k) const;
  };

  struct Request {
    QueryKind kind = QueryKind::kPageRank;
    std::shared_ptr<const GraphEntry> graph;
    QueryParams params;  // kernel/device resolved to concrete names.
    TimePoint enqueue_time;
    TimePoint deadline;
    bool has_deadline = false;
    std::promise<QueryResponse> promise;
    DedupKey dedup_key;
    bool deduplicable = false;
    uint64_t query_id = 0;       ///< Journal-assigned id.
    double enqueue_ts_us = 0.0;  ///< Trace clock at Submit (0 = tracing off).
    TimePoint admitted;          ///< Submit-side work done, queued for a worker.
    /// Identical requests that attached while this one was in flight; they
    /// receive copies of the result (marked deduped), each billed its own
    /// queue latency.
    struct Waiter {
      std::promise<QueryResponse> promise;
      TimePoint enqueue_time;
      uint64_t query_id = 0;
      double enqueue_ts_us = 0.0;
      TimePoint admitted;
    };
    std::vector<Waiter> waiters;  // Guarded by Engine::inflight_mu_.
  };

  /// The timestamp sequence one request moved through, shared boundaries
  /// between adjacent stages so the per-stage durations telescope to the
  /// total latency exactly. Unset points collapse to their predecessor
  /// (RecordOutcome takes a running max), so early-exit paths bill the
  /// skipped stages zero.
  struct RequestTiming {
    uint64_t query_id = 0;
    double enqueue_ts_us = 0.0;  ///< Trace clock at Submit (0 = tracing off).
    QueryKind kind = QueryKind::kPageRank;
    TimePoint enqueue;       ///< Submit entry.
    TimePoint admitted;      ///< Validation + admission control done.
    TimePoint exec_start;    ///< Worker picked it up / batch flush started.
    TimePoint plan_ready;    ///< Plan fetched (or built + autotuned).
    TimePoint compute_done;  ///< Kernel / panel iterations finished.
    TimePoint post_done;     ///< Scores unpermuted + response assembled.
    bool coalesced = false;  ///< Bills the pre-exec wait to kCoalesce.
    /// Flow id linking the query's lifetime trace event to the shared
    /// execution span that served it (0 = none).
    uint64_t exec_span_id = 0;
  };

  struct Task {
    enum class Kind { kExec, kFlushBatch };
    Kind kind = Kind::kExec;
    std::shared_ptr<Request> request;              // kExec.
    RwrBatchKey batch_key;                         // kFlushBatch.
    std::shared_ptr<const GraphEntry> batch_graph; // kFlushBatch.
    TimePoint not_before;                          // kFlushBatch.
  };

  void WorkerLoop();
  void ExecuteSingle(const std::shared_ptr<Request>& request);
  void FlushBatch(const Task& task);
  /// Fulfills the request's promise plus any dedup waiters.
  void FinishRequest(const std::shared_ptr<Request>& request,
                     QueryResponse response, RequestTiming timing);
  Result<std::shared_ptr<const Plan>> GetPlan(const GraphEntry& graph,
                                              QueryKind kind,
                                              const std::string& kernel,
                                              const std::string& device,
                                              bool* cache_hit,
                                              double* build_seconds);
  /// Computes the per-stage breakdown from `timing`, fills the response's
  /// attribution fields, journals the record (triggering a flight-recorder
  /// dump when it qualifies), and emits the query's lifetime trace event.
  void RecordOutcome(QueryResponse* response, const RequestTiming& timing);
  /// Fulfills one promise and records stats + journal for it.
  void Respond(std::promise<QueryResponse>* promise, QueryResponse response,
               RequestTiming timing);
  /// Terminal outcome decided inside Submit (invalid request, shed,
  /// shutdown): journals the record and returns a ready future. Does not
  /// touch pending_ or the shed counters — the caller owns those.
  /// `retry_after_seconds` > 0 sets the response's backoff hint (brownout
  /// sheds).
  std::future<QueryResponse> FinishEarly(QueryKind kind, Status status,
                                         uint64_t query_id,
                                         double enqueue_ts_us,
                                         TimePoint enqueue,
                                         double retry_after_seconds = 0.0);
  void EnqueueTask(Task task);

  EngineOptions options_;
  PlanCache plan_cache_;
  RwrCoalescer coalescer_;
  ServerStats stats_;
  obs::QueryJournal journal_;
  robust::BrownoutController brownout_;
  /// splitmix64 state for plan-build retry backoff jitter (decorrelates
  /// concurrent retriers; not used for anything result-affecting).
  std::atomic<uint64_t> retry_jitter_state_{0x853c49e6748fea9bULL};

  mutable std::mutex graphs_mu_;
  std::unordered_map<std::string, std::shared_ptr<const GraphEntry>> graphs_;

  std::mutex inflight_mu_;
  std::unordered_map<DedupKey, std::shared_ptr<Request>, DedupKeyHash>
      inflight_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;
  bool stop_ = false;  // Guarded by queue_mu_; pairs with queue_cv_.

  /// Lock-free view of shutdown for admission and batch-window waits.
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mu_;  ///< Serializes Shutdown() callers.
  std::atomic<int> pending_{0};
  std::vector<std::thread> workers_;
};

}  // namespace tilespmv::serve

#endif  // TILESPMV_SERVE_ENGINE_H_
