#ifndef TILESPMV_SERVE_COALESCER_H_
#define TILESPMV_SERVE_COALESCER_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/request.h"

namespace tilespmv::serve {

/// Identifies RWR queries that can legally share one QueryBatch call: same
/// graph (by content fingerprint), same plan (device + kernel), and the same
/// iteration parameters, so every member of the batch walks the same matrix
/// with the same restart/tolerance schedule.
struct RwrBatchKey {
  uint64_t fingerprint = 0;
  std::string device;
  std::string kernel;
  float restart = 0.9f;
  float tolerance = 1e-5f;
  int max_iterations = 100;
  /// Caller-approved relaxation bound (QueryParams::max_tolerance). Part of
  /// the key so a brownout tolerance relaxation applies uniformly to every
  /// member of a batch without exceeding any member's bound.
  float max_tolerance = 0.0f;

  bool operator==(const RwrBatchKey&) const = default;
};

struct RwrBatchKeyHash {
  size_t operator()(const RwrBatchKey& k) const;
};

/// One RWR query waiting to be flushed as part of a batch.
struct RwrPendingQuery {
  int32_t node = -1;
  std::promise<QueryResponse> promise;
  std::chrono::steady_clock::time_point enqueue_time;
  std::chrono::steady_clock::time_point deadline;
  bool has_deadline = false;
  /// Attribution carried through the coalescer (see Engine::RequestTiming):
  /// the journal-assigned id, the trace-clock submit timestamp, and when
  /// Submit-side admission finished (the coalesce wait starts here).
  uint64_t query_id = 0;
  double enqueue_ts_us = 0.0;
  std::chrono::steady_clock::time_point admitted;
};

/// Groups concurrent RWR queries per batch key so the engine can serve them
/// with one RwrEngine::QueryBatch call. The matrix stream is shared across
/// the whole batch on the device, so the modeled per-query cost drops
/// steeply with batch size (RwrEngine::BatchIterationSeconds quantifies it).
/// The coalescer only buffers; the engine owns the flush timing (a batch
/// window) and execution.
class RwrCoalescer {
 public:
  /// Adds a pending query. Returns true when this query opened a new bucket
  /// — the caller must then schedule a flush for `key`.
  bool Add(const RwrBatchKey& key, RwrPendingQuery query);

  /// Removes and returns up to `max_batch` queries for `key`, oldest first.
  /// `*has_more` reports whether the bucket still holds queries (the caller
  /// should schedule another flush).
  std::vector<RwrPendingQuery> Take(const RwrBatchKey& key, int max_batch,
                                    bool* has_more);

  /// Drains every bucket (shutdown path). Returns all pending queries.
  std::vector<RwrPendingQuery> TakeAll();

 private:
  std::mutex mu_;
  std::unordered_map<RwrBatchKey, std::vector<RwrPendingQuery>,
                     RwrBatchKeyHash>
      buckets_;
};

}  // namespace tilespmv::serve

#endif  // TILESPMV_SERVE_COALESCER_H_
