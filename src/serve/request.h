#ifndef TILESPMV_SERVE_REQUEST_H_
#define TILESPMV_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/power_method.h"
#include "obs/query_log.h"
#include "util/status.h"

namespace tilespmv::serve {

/// The graph-mining queries the engine serves — the paper's three iterative
/// workloads (Appendix F), each executed against a cached preprocessed plan.
enum class QueryKind { kPageRank, kHits, kRwr };

std::string_view QueryKindName(QueryKind kind);

/// Per-request parameters. Kernel and device select the plan (empty = the
/// engine's defaults); the numeric knobs are iteration-time only and do not
/// fragment the plan cache.
struct QueryParams {
  std::string kernel;  ///< SpMV kernel name; empty = engine default.
  std::string device;  ///< "c1060" / "c2050"; empty = engine default.
  float damping = 0.85f;    ///< PageRank only.
  float restart = 0.9f;     ///< RWR only: probability of continuing the walk.
  float tolerance = 1e-5f;
  int max_iterations = 100;
  int32_t node = -1;  ///< RWR only: the query node.
  /// Seconds from submission until the request is worthless; expired
  /// requests are answered with kDeadlineExceeded instead of executing.
  /// 0 uses the engine default (which may be "no deadline").
  double deadline_seconds = 0.0;
  /// Caller-approved brownout bound: when the engine is degrading (level >=
  /// 2, docs/ROBUSTNESS.md) it may relax this request's tolerance up to this
  /// value. 0 forbids relaxation — the request always runs at `tolerance`.
  float max_tolerance = 0.0f;
};

/// What the engine hands back, successful or not. `stats` carries the
/// modeled device cost exactly as the batch tools report it; the serving
/// metadata below it tells the client what the engine did on its behalf.
struct QueryResponse {
  Status status;
  QueryKind kind = QueryKind::kPageRank;
  std::vector<float> scores;     ///< PageRank / RWR result vector.
  std::vector<float> authority;  ///< HITS only.
  std::vector<float> hub;        ///< HITS only.
  IterativeResult stats;         ///< Iterations + modeled time (result empty).

  bool plan_cache_hit = false;  ///< Plan served from cache (no preprocessing).
  /// SIMD tier frozen into the plan's kernel ("scalar"/"avx2"/"avx512" for
  /// host kernels, "none" for modeled device kernels or when no plan was
  /// reached).
  std::string simd_tier = "none";
  bool deduped = false;   ///< Answered by an identical in-flight computation.
  int batch_size = 1;     ///< >1 when served from a coalesced RWR batch.
  double queue_seconds = 0.0;       ///< Time spent waiting for a worker.
  double plan_build_seconds = 0.0;  ///< Preprocessing paid by this request.

  /// Request-scoped attribution (docs/OBSERVABILITY.md, "Query journal").
  uint64_t query_id = 0;  ///< Engine-assigned id, matches the query journal.
  /// Per-stage latency breakdown; stages.Sum() == latency_seconds within
  /// timer resolution for every response, successful or not.
  obs::QueryStages stages;
  double latency_seconds = 0.0;  ///< Submit to response, as billed to stats.
  /// SpMM panel placement when the query rode a blocked coalesced batch:
  /// the actual sweep width, this query's column slot, and whether it was
  /// the ragged tail panel. panel_width 0 = no panel (scalar execution).
  int panel_width = 0;
  int panel_column = -1;
  bool ragged_tail = false;

  /// Robustness attribution (docs/ROBUSTNESS.md). `cancelled` marks a solve
  /// aborted mid-iteration by its deadline (status kDeadlineExceeded with
  /// stats.iterations < max_iterations); `tolerance_used` is the tolerance
  /// the solve actually ran at (differs from params.tolerance only when
  /// brownout relaxed it); `retry_after_seconds` accompanies
  /// kResourceExhausted sheds as a backoff hint.
  bool cancelled = false;
  int brownout_level = 0;         ///< Ladder level when the request executed.
  float tolerance_used = 0.0f;
  double retry_after_seconds = 0.0;
};

}  // namespace tilespmv::serve

#endif  // TILESPMV_SERVE_REQUEST_H_
