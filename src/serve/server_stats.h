#ifndef TILESPMV_SERVE_SERVER_STATS_H_
#define TILESPMV_SERVE_SERVER_STATS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "util/status.h"
#include "util/timer.h"

namespace tilespmv::serve {

/// Point-in-time view of a running Engine, dumpable as JSON (the schema is
/// documented in docs/SERVING.md). Latency percentiles cover the most recent
/// ServerStats::kLatencyWindow completed requests; `modeled_gpu_seconds` is
/// the billed device time, which coalescing shrinks even when host wall time
/// does not.
struct ServerStatsSnapshot {
  double uptime_seconds = 0.0;
  uint64_t completed = 0;  ///< Responses delivered with OK status.
  uint64_t failed = 0;     ///< Non-OK responses other than sheds.
  uint64_t shed_queue_full = 0;  ///< Admission-control rejections.
  uint64_t shed_deadline = 0;    ///< Requests expired before/while queued.
  uint64_t shed_overload = 0;    ///< Brownout level-3 sheds (kResourceExhausted).
  uint64_t cancelled = 0;  ///< Solves aborted mid-iteration by a CancelToken.
  uint64_t numerical_errors = 0;   ///< kNumericalError responses.
  uint64_t did_not_converge = 0;   ///< kDidNotConverge responses.
  uint64_t dedup_hits = 0;  ///< Requests answered by an identical in-flight run.
  uint64_t rwr_batches = 0;          ///< Coalesced RWR batch executions.
  uint64_t rwr_batched_queries = 0;  ///< RWR queries served through them.
  double rwr_batch_width_mean = 0.0;  ///< Mean coalesced batch width.
  double rwr_batch_width_p95 = 0.0;   ///< p95 coalesced batch width.
  uint64_t spmm_sweeps = 0;   ///< Blocked matrix sweeps executed.
  uint64_t spmm_vectors = 0;  ///< Vector-iterations carried by those sweeps.
  /// Matrix-stream amortization actually achieved: spmm_vectors /
  /// spmm_sweeps (0 if no blocked execution happened).
  double spmm_vectors_per_sweep = 0.0;
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_evictions = 0;
  uint64_t plan_resident_bytes = 0;
  uint64_t plan_entries = 0;
  uint64_t plan_failed_builds = 0;      ///< Plan builds that errored.
  uint64_t plan_failure_memo_hits = 0;  ///< Requests failed fast by the memo.
  uint64_t plan_build_retries = 0;      ///< Transient-failure build retries.
  /// Brownout ladder state (docs/ROBUSTNESS.md): current level and how often
  /// each degradation rung was applied.
  int brownout_level = 0;
  uint64_t brownout_panel_drops = 0;        ///< Batches run at reduced width.
  uint64_t brownout_tolerance_relaxed = 0;  ///< Queries with relaxed tolerance.
  /// Fault-injection fires since arming (0 when injection is compiled out or
  /// disarmed). Filled by Engine::stats().
  uint64_t fault_fires = 0;
  double qps = 0.0;  ///< Completed requests per second of uptime.
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double modeled_gpu_seconds = 0.0;
  /// Average RWR batch size: rwr_batched_queries / rwr_batches (0 if none).
  double coalesce_factor = 0.0;
  /// Per-stage latency attribution over the same sample window as the
  /// latency percentiles, indexed by obs::QueryStage. Stage durations of one
  /// request sum to its total latency, so e.g. stage_p99_ms decomposes where
  /// slow requests spend their time.
  double stage_mean_ms[obs::kNumQueryStages] = {};
  double stage_p95_ms[obs::kNumQueryStages] = {};
  double stage_p99_ms[obs::kNumQueryStages] = {};
  /// Flight recorder / query journal counters (filled by Engine::stats()).
  uint64_t flight_dumps = 0;     ///< Deadline-miss / slow-query dumps taken.
  uint64_t journal_records = 0;  ///< Records currently retained.
  uint64_t journal_dropped = 0;  ///< Records lost to ring wrap-around.
  /// Host SIMD tier host-kernel plans resolve at (simd::ResolvedTier),
  /// filled by Engine::stats(): "scalar" | "avx2" | "avx512".
  std::string simd_tier = "scalar";

  std::string ToJson() const;
};

/// Thread-safe serving counters behind Engine::stats(), implemented as a
/// view over an obs::MetricsRegistry: every Record* call updates registry
/// instruments (tilespmv_serve_* names, see docs/OBSERVABILITY.md), so the
/// snapshot and the Prometheus export of Engine::MetricsText() are two
/// renderings of the same numbers. The plan-cache fields of the snapshot are
/// filled in by the Engine from its PlanCache.
class ServerStats {
 public:
  /// Latency sample window: percentiles in the snapshot (and the registry
  /// histogram's window percentiles) cover the most recent kLatencyWindow
  /// completed requests, ring-buffer style. This constant is the single
  /// source of truth; docs/SERVING.md references it.
  static constexpr size_t kLatencyWindow = 8192;

  /// `registry` is where the instruments live; nullptr makes the stats own
  /// a private registry (the Engine passes its own, or the global one, via
  /// EngineOptions::metrics).
  explicit ServerStats(obs::MetricsRegistry* registry = nullptr);

  void RecordCompletion(double latency_seconds, double modeled_gpu_seconds,
                        bool ok);
  /// Routes by code: kDeadlineExceeded -> shed_deadline,
  /// kResourceExhausted -> shed_overload, anything else -> shed_queue_full.
  void RecordShed(StatusCode code);
  /// A solve aborted mid-iteration by its CancelToken (counted separately
  /// from queue-expiry sheds: the request burned execute time).
  void RecordCancelled();
  void RecordNumericalError();
  void RecordDidNotConverge();
  void RecordBrownoutPanelDrop();
  void RecordBrownoutToleranceRelaxed(uint64_t queries);
  void RecordPlanBuildRetry();
  void SetBrownoutLevel(int level);
  void RecordDedupHit();
  /// Also feeds the tilespmv_serve_rwr_batch_width distribution.
  void RecordRwrBatch(int queries);
  /// Accounts one batch's blocked execution: `sweeps` SpMM matrix sweeps
  /// carrying `vectors` total vector-iterations.
  void RecordSpmmExecution(int64_t sweeps, int64_t vectors);
  /// Feeds one request's per-stage breakdown into the
  /// tilespmv_serve_stage_<name>_seconds histograms (completed and
  /// deadline-exceeded requests; sheds have no stages to attribute).
  void RecordStages(const obs::QueryStages& stages);

  ServerStatsSnapshot Snapshot() const;

  obs::MetricsRegistry* registry() const { return registry_; }

 private:
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;
  WallTimer uptime_;
  obs::Counter* completed_;
  obs::Counter* failed_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_deadline_;
  obs::Counter* shed_overload_;
  obs::Counter* cancelled_;
  obs::Counter* numerical_errors_;
  obs::Counter* did_not_converge_;
  obs::Counter* brownout_panel_drops_;
  obs::Counter* brownout_tolerance_relaxed_;
  obs::Counter* plan_build_retries_;
  obs::Gauge* brownout_level_;
  obs::Counter* dedup_hits_;
  obs::Counter* rwr_batches_;
  obs::Counter* rwr_batched_queries_;
  obs::Counter* spmm_sweeps_;
  obs::Counter* spmm_vectors_;
  obs::Gauge* modeled_gpu_seconds_;
  obs::Histogram* latency_;
  obs::Histogram* rwr_batch_width_;
  obs::Histogram* stage_[obs::kNumQueryStages];
};

}  // namespace tilespmv::serve

#endif  // TILESPMV_SERVE_SERVER_STATS_H_
