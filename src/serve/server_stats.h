#ifndef TILESPMV_SERVE_SERVER_STATS_H_
#define TILESPMV_SERVE_SERVER_STATS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/timer.h"

namespace tilespmv::serve {

/// Point-in-time view of a running Engine, dumpable as JSON (the schema is
/// documented in docs/SERVING.md). Latency percentiles cover the most recent
/// window of completed requests; `modeled_gpu_seconds` is the billed device
/// time, which coalescing shrinks even when host wall time does not.
struct ServerStatsSnapshot {
  double uptime_seconds = 0.0;
  uint64_t completed = 0;  ///< Responses delivered with OK status.
  uint64_t failed = 0;     ///< Non-OK responses other than sheds.
  uint64_t shed_queue_full = 0;  ///< Admission-control rejections.
  uint64_t shed_deadline = 0;    ///< Requests expired before/while queued.
  uint64_t dedup_hits = 0;  ///< Requests answered by an identical in-flight run.
  uint64_t rwr_batches = 0;          ///< Coalesced RWR batch executions.
  uint64_t rwr_batched_queries = 0;  ///< RWR queries served through them.
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_evictions = 0;
  uint64_t plan_resident_bytes = 0;
  uint64_t plan_entries = 0;
  double qps = 0.0;  ///< Completed requests per second of uptime.
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double modeled_gpu_seconds = 0.0;
  /// Average RWR batch size: rwr_batched_queries / rwr_batches (0 if none).
  double coalesce_factor = 0.0;

  std::string ToJson() const;
};

/// Thread-safe accumulator behind Engine::stats(). The plan-cache fields of
/// the snapshot are filled in by the Engine from its PlanCache.
class ServerStats {
 public:
  void RecordCompletion(double latency_seconds, double modeled_gpu_seconds,
                        bool ok);
  void RecordShed(StatusCode code);
  void RecordDedupHit();
  void RecordRwrBatch(int queries);

  ServerStatsSnapshot Snapshot() const;

 private:
  /// Latency reservoir size; old samples are overwritten ring-buffer style.
  static constexpr size_t kLatencyWindow = 8192;

  mutable std::mutex mu_;
  WallTimer uptime_;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t shed_queue_full_ = 0;
  uint64_t shed_deadline_ = 0;
  uint64_t dedup_hits_ = 0;
  uint64_t rwr_batches_ = 0;
  uint64_t rwr_batched_queries_ = 0;
  double modeled_gpu_seconds_ = 0.0;
  double latency_sum_ = 0.0;
  uint64_t latency_count_ = 0;
  std::vector<double> latencies_;
  size_t latency_next_ = 0;
};

}  // namespace tilespmv::serve

#endif  // TILESPMV_SERVE_SERVER_STATS_H_
