#include "serve/server_stats.h"

#include <cstdio>

namespace tilespmv::serve {

ServerStats::ServerStats(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  completed_ = registry_->GetCounter("tilespmv_serve_completed_total",
                                     "Responses delivered with OK status");
  failed_ = registry_->GetCounter("tilespmv_serve_failed_total",
                                  "Non-OK responses other than sheds");
  shed_queue_full_ =
      registry_->GetCounter("tilespmv_serve_shed_queue_full_total",
                            "Admission-control rejections");
  shed_deadline_ =
      registry_->GetCounter("tilespmv_serve_shed_deadline_total",
                            "Requests expired before/while queued");
  shed_overload_ =
      registry_->GetCounter("tilespmv_serve_shed_overload_total",
                            "Brownout level-3 sheds (kResourceExhausted)");
  cancelled_ = registry_->GetCounter(
      "tilespmv_serve_cancelled_total",
      "Solves aborted mid-iteration by a cancel token");
  numerical_errors_ = registry_->GetCounter(
      "tilespmv_serve_numerical_errors_total",
      "Responses failed with kNumericalError (NaN/Inf or divergence)");
  did_not_converge_ =
      registry_->GetCounter("tilespmv_serve_did_not_converge_total",
                            "Responses failed with kDidNotConverge");
  brownout_panel_drops_ = registry_->GetCounter(
      "tilespmv_serve_brownout_panel_drops_total",
      "Coalesced batches executed at reduced SpMM panel width");
  brownout_tolerance_relaxed_ = registry_->GetCounter(
      "tilespmv_serve_brownout_tolerance_relaxed_total",
      "RWR queries served with brownout-relaxed tolerance");
  plan_build_retries_ =
      registry_->GetCounter("tilespmv_serve_plan_build_retries_total",
                            "Plan builds retried after a transient failure");
  brownout_level_ = registry_->GetGauge(
      "tilespmv_serve_brownout_level", "Current brownout ladder level (0-3)");
  dedup_hits_ = registry_->GetCounter(
      "tilespmv_serve_dedup_hits_total",
      "Requests answered by an identical in-flight run");
  rwr_batches_ = registry_->GetCounter("tilespmv_serve_rwr_batches_total",
                                       "Coalesced RWR batch executions");
  rwr_batched_queries_ =
      registry_->GetCounter("tilespmv_serve_rwr_batched_queries_total",
                            "RWR queries served through coalesced batches");
  spmm_sweeps_ = registry_->GetCounter(
      "tilespmv_spmm_sweeps_total",
      "Blocked SpMM matrix sweeps executed by batched RWR");
  spmm_vectors_ = registry_->GetCounter(
      "tilespmv_spmm_vectors_per_sweep",
      "Vector-iterations carried by blocked SpMM sweeps; divide by "
      "tilespmv_spmm_sweeps_total for the achieved panel width");
  rwr_batch_width_ = registry_->GetHistogram(
      "tilespmv_serve_rwr_batch_width",
      "Coalesced RWR batch width (queries per QueryBatch call)",
      obs::ExponentialBuckets(1, 2.0, 7));
  modeled_gpu_seconds_ =
      registry_->GetGauge("tilespmv_serve_modeled_gpu_seconds",
                          "Total billed modeled device time");
  // 100us..~14s in 18 exponential buckets; exact percentiles come from the
  // histogram's kLatencyWindow-sample window, not the buckets.
  latency_ = registry_->GetHistogram(
      "tilespmv_serve_request_latency_seconds",
      "End-to-end request latency (submit to response)",
      obs::ExponentialBuckets(1e-4, 2.0, 18), kLatencyWindow);
  for (int i = 0; i < obs::kNumQueryStages; ++i) {
    stage_[i] = registry_->GetHistogram(
        std::string("tilespmv_serve_stage_") + obs::QueryStageName(i) +
            "_seconds",
        std::string("Per-request latency attributed to the ") +
            obs::QueryStageName(i) + " stage",
        obs::ExponentialBuckets(1e-6, 4.0, 14), kLatencyWindow);
  }
}

void ServerStats::RecordCompletion(double latency_seconds,
                                   double modeled_gpu_seconds, bool ok) {
  (ok ? completed_ : failed_)->Increment();
  modeled_gpu_seconds_->Add(modeled_gpu_seconds);
  latency_->Observe(latency_seconds);
}

void ServerStats::RecordShed(StatusCode code) {
  if (code == StatusCode::kDeadlineExceeded) {
    shed_deadline_->Increment();
  } else if (code == StatusCode::kResourceExhausted) {
    shed_overload_->Increment();
  } else {
    shed_queue_full_->Increment();
  }
}

void ServerStats::RecordCancelled() { cancelled_->Increment(); }

void ServerStats::RecordNumericalError() { numerical_errors_->Increment(); }

void ServerStats::RecordDidNotConverge() { did_not_converge_->Increment(); }

void ServerStats::RecordBrownoutPanelDrop() {
  brownout_panel_drops_->Increment();
}

void ServerStats::RecordBrownoutToleranceRelaxed(uint64_t queries) {
  brownout_tolerance_relaxed_->Increment(queries);
}

void ServerStats::RecordPlanBuildRetry() { plan_build_retries_->Increment(); }

void ServerStats::SetBrownoutLevel(int level) {
  brownout_level_->Set(static_cast<double>(level));
}

void ServerStats::RecordDedupHit() { dedup_hits_->Increment(); }

void ServerStats::RecordRwrBatch(int queries) {
  rwr_batches_->Increment();
  rwr_batched_queries_->Increment(static_cast<uint64_t>(queries));
  rwr_batch_width_->Observe(static_cast<double>(queries));
}

void ServerStats::RecordSpmmExecution(int64_t sweeps, int64_t vectors) {
  spmm_sweeps_->Increment(static_cast<uint64_t>(sweeps));
  spmm_vectors_->Increment(static_cast<uint64_t>(vectors));
}

void ServerStats::RecordStages(const obs::QueryStages& stages) {
  for (int i = 0; i < obs::kNumQueryStages; ++i) {
    stage_[i]->Observe(stages.seconds[i]);
  }
}

ServerStatsSnapshot ServerStats::Snapshot() const {
  ServerStatsSnapshot s;
  s.uptime_seconds = uptime_.Seconds();
  s.completed = completed_->Value();
  s.failed = failed_->Value();
  s.shed_queue_full = shed_queue_full_->Value();
  s.shed_deadline = shed_deadline_->Value();
  s.shed_overload = shed_overload_->Value();
  s.cancelled = cancelled_->Value();
  s.numerical_errors = numerical_errors_->Value();
  s.did_not_converge = did_not_converge_->Value();
  s.brownout_panel_drops = brownout_panel_drops_->Value();
  s.brownout_tolerance_relaxed = brownout_tolerance_relaxed_->Value();
  s.plan_build_retries = plan_build_retries_->Value();
  s.brownout_level = static_cast<int>(brownout_level_->Value());
  s.dedup_hits = dedup_hits_->Value();
  s.rwr_batches = rwr_batches_->Value();
  s.rwr_batched_queries = rwr_batched_queries_->Value();
  s.rwr_batch_width_mean = rwr_batch_width_->Mean();
  s.rwr_batch_width_p95 = rwr_batch_width_->Percentile(95.0);
  s.spmm_sweeps = spmm_sweeps_->Value();
  s.spmm_vectors = spmm_vectors_->Value();
  s.spmm_vectors_per_sweep =
      s.spmm_sweeps > 0 ? static_cast<double>(s.spmm_vectors) /
                              static_cast<double>(s.spmm_sweeps)
                        : 0.0;
  s.qps = s.uptime_seconds > 0
              ? static_cast<double>(s.completed) / s.uptime_seconds
              : 0.0;
  s.modeled_gpu_seconds = modeled_gpu_seconds_->Value();
  s.coalesce_factor =
      s.rwr_batches > 0 ? static_cast<double>(s.rwr_batched_queries) /
                              static_cast<double>(s.rwr_batches)
                        : 0.0;
  s.latency_mean_ms = latency_->Mean() * 1e3;
  s.latency_p50_ms = latency_->Percentile(50.0) * 1e3;
  s.latency_p95_ms = latency_->Percentile(95.0) * 1e3;
  s.latency_p99_ms = latency_->Percentile(99.0) * 1e3;
  for (int i = 0; i < obs::kNumQueryStages; ++i) {
    s.stage_mean_ms[i] = stage_[i]->Mean() * 1e3;
    s.stage_p95_ms[i] = stage_[i]->Percentile(95.0) * 1e3;
    s.stage_p99_ms[i] = stage_[i]->Percentile(99.0) * 1e3;
  }
  return s;
}

std::string ServerStatsSnapshot::ToJson() const {
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\"uptime_seconds\": %.3f, \"qps\": %.2f, \"completed\": %llu, "
      "\"failed\": %llu, \"shed_queue_full\": %llu, \"shed_deadline\": %llu, "
      "\"dedup_hits\": %llu, \"latency_ms\": {\"mean\": %.3f, \"p50\": %.3f, "
      "\"p95\": %.3f, \"p99\": %.3f}, \"plan_cache\": {\"hits\": %llu, "
      "\"misses\": %llu, \"evictions\": %llu, \"resident_bytes\": %llu, "
      "\"entries\": %llu, \"hit_rate\": %.3f}, \"coalescing\": "
      "{\"rwr_batches\": %llu, \"rwr_batched_queries\": %llu, "
      "\"coalesce_factor\": %.2f, \"batch_width\": {\"mean\": %.2f, "
      "\"p95\": %.2f}}, \"spmm\": {\"sweeps\": %llu, \"vectors\": %llu, "
      "\"vectors_per_sweep\": %.2f}, \"modeled_gpu_seconds\": %.6f}",
      uptime_seconds, qps, static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(shed_queue_full),
      static_cast<unsigned long long>(shed_deadline),
      static_cast<unsigned long long>(dedup_hits), latency_mean_ms,
      latency_p50_ms, latency_p95_ms, latency_p99_ms,
      static_cast<unsigned long long>(plan_hits),
      static_cast<unsigned long long>(plan_misses),
      static_cast<unsigned long long>(plan_evictions),
      static_cast<unsigned long long>(plan_resident_bytes),
      static_cast<unsigned long long>(plan_entries),
      plan_hits + plan_misses > 0
          ? static_cast<double>(plan_hits) /
                static_cast<double>(plan_hits + plan_misses)
          : 0.0,
      static_cast<unsigned long long>(rwr_batches),
      static_cast<unsigned long long>(rwr_batched_queries), coalesce_factor,
      rwr_batch_width_mean, rwr_batch_width_p95,
      static_cast<unsigned long long>(spmm_sweeps),
      static_cast<unsigned long long>(spmm_vectors), spmm_vectors_per_sweep,
      modeled_gpu_seconds);
  // The per-stage attribution and flight-recorder sections grow with the
  // stage count, so they are appended dynamically rather than squeezed into
  // the fixed snprintf above.
  std::string out(buf);
  out.pop_back();  // Reopen the object (drop the trailing '}').
  out += ", \"stages_ms\": {";
  for (int i = 0; i < obs::kNumQueryStages; ++i) {
    char stage_buf[160];
    std::snprintf(stage_buf, sizeof(stage_buf),
                  "%s\"%s\": {\"mean\": %.4f, \"p95\": %.4f, \"p99\": %.4f}",
                  i > 0 ? ", " : "", obs::QueryStageName(i), stage_mean_ms[i],
                  stage_p95_ms[i], stage_p99_ms[i]);
    out += stage_buf;
  }
  char tail[1024];
  std::snprintf(
      tail, sizeof(tail),
      "}, \"flight_recorder\": {\"dumps\": %llu, "
      "\"journal_records\": %llu, \"journal_dropped\": %llu}, "
      "\"robustness\": {\"shed_overload\": %llu, \"cancelled\": %llu, "
      "\"numerical_errors\": %llu, \"did_not_converge\": %llu, "
      "\"brownout_level\": %d, \"brownout_panel_drops\": %llu, "
      "\"brownout_tolerance_relaxed\": %llu, \"plan_build_retries\": %llu, "
      "\"plan_failed_builds\": %llu, \"plan_failure_memo_hits\": %llu, "
      "\"fault_fires\": %llu}, "
      "\"simd_tier\": \"%s\"}",
      static_cast<unsigned long long>(flight_dumps),
      static_cast<unsigned long long>(journal_records),
      static_cast<unsigned long long>(journal_dropped),
      static_cast<unsigned long long>(shed_overload),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(numerical_errors),
      static_cast<unsigned long long>(did_not_converge), brownout_level,
      static_cast<unsigned long long>(brownout_panel_drops),
      static_cast<unsigned long long>(brownout_tolerance_relaxed),
      static_cast<unsigned long long>(plan_build_retries),
      static_cast<unsigned long long>(plan_failed_builds),
      static_cast<unsigned long long>(plan_failure_memo_hits),
      static_cast<unsigned long long>(fault_fires), simd_tier.c_str());
  out += tail;
  return out;
}

}  // namespace tilespmv::serve
