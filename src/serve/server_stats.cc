#include "serve/server_stats.h"

#include <cstdio>

#include "util/stats.h"

namespace tilespmv::serve {

void ServerStats::RecordCompletion(double latency_seconds,
                                   double modeled_gpu_seconds, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    ++completed_;
  } else {
    ++failed_;
  }
  modeled_gpu_seconds_ += modeled_gpu_seconds;
  latency_sum_ += latency_seconds;
  ++latency_count_;
  if (latencies_.size() < kLatencyWindow) {
    latencies_.push_back(latency_seconds);
  } else {
    latencies_[latency_next_] = latency_seconds;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

void ServerStats::RecordShed(StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  if (code == StatusCode::kDeadlineExceeded) {
    ++shed_deadline_;
  } else {
    ++shed_queue_full_;
  }
}

void ServerStats::RecordDedupHit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++dedup_hits_;
}

void ServerStats::RecordRwrBatch(int queries) {
  std::lock_guard<std::mutex> lock(mu_);
  ++rwr_batches_;
  rwr_batched_queries_ += static_cast<uint64_t>(queries);
}

ServerStatsSnapshot ServerStats::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStatsSnapshot s;
  s.uptime_seconds = uptime_.Seconds();
  s.completed = completed_;
  s.failed = failed_;
  s.shed_queue_full = shed_queue_full_;
  s.shed_deadline = shed_deadline_;
  s.dedup_hits = dedup_hits_;
  s.rwr_batches = rwr_batches_;
  s.rwr_batched_queries = rwr_batched_queries_;
  s.qps = s.uptime_seconds > 0
              ? static_cast<double>(completed_) / s.uptime_seconds
              : 0.0;
  s.modeled_gpu_seconds = modeled_gpu_seconds_;
  s.coalesce_factor =
      rwr_batches_ > 0 ? static_cast<double>(rwr_batched_queries_) /
                             static_cast<double>(rwr_batches_)
                       : 0.0;
  s.latency_mean_ms =
      latency_count_ > 0
          ? latency_sum_ / static_cast<double>(latency_count_) * 1e3
          : 0.0;
  s.latency_p50_ms = Percentile(latencies_, 50.0) * 1e3;
  s.latency_p95_ms = Percentile(latencies_, 95.0) * 1e3;
  s.latency_p99_ms = Percentile(latencies_, 99.0) * 1e3;
  return s;
}

std::string ServerStatsSnapshot::ToJson() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"uptime_seconds\": %.3f, \"qps\": %.2f, \"completed\": %llu, "
      "\"failed\": %llu, \"shed_queue_full\": %llu, \"shed_deadline\": %llu, "
      "\"dedup_hits\": %llu, \"latency_ms\": {\"mean\": %.3f, \"p50\": %.3f, "
      "\"p95\": %.3f, \"p99\": %.3f}, \"plan_cache\": {\"hits\": %llu, "
      "\"misses\": %llu, \"evictions\": %llu, \"resident_bytes\": %llu, "
      "\"entries\": %llu, \"hit_rate\": %.3f}, \"coalescing\": "
      "{\"rwr_batches\": %llu, \"rwr_batched_queries\": %llu, "
      "\"coalesce_factor\": %.2f}, \"modeled_gpu_seconds\": %.6f}",
      uptime_seconds, qps, static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(shed_queue_full),
      static_cast<unsigned long long>(shed_deadline),
      static_cast<unsigned long long>(dedup_hits), latency_mean_ms,
      latency_p50_ms, latency_p95_ms, latency_p99_ms,
      static_cast<unsigned long long>(plan_hits),
      static_cast<unsigned long long>(plan_misses),
      static_cast<unsigned long long>(plan_evictions),
      static_cast<unsigned long long>(plan_resident_bytes),
      static_cast<unsigned long long>(plan_entries),
      plan_hits + plan_misses > 0
          ? static_cast<double>(plan_hits) /
                static_cast<double>(plan_hits + plan_misses)
          : 0.0,
      static_cast<unsigned long long>(rwr_batches),
      static_cast<unsigned long long>(rwr_batched_queries), coalesce_factor,
      modeled_gpu_seconds);
  return buf;
}

}  // namespace tilespmv::serve
