#include "serve/plan_cache.h"

#include <utility>

namespace tilespmv::serve {

std::string_view PlanWorkloadName(PlanWorkload w) {
  switch (w) {
    case PlanWorkload::kPageRank:
      return "pagerank";
    case PlanWorkload::kHits:
      return "hits";
    case PlanWorkload::kRwr:
      return "rwr";
  }
  return "unknown";
}

size_t PlanKeyHash::operator()(const PlanKey& k) const {
  size_t h = std::hash<uint64_t>{}(k.fingerprint);
  auto mix = [&h](size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::string>{}(k.device));
  mix(std::hash<std::string>{}(k.kernel));
  mix(static_cast<size_t>(k.workload));
  return h;
}

Result<std::shared_ptr<const Plan>> PlanCache::GetOrBuild(
    const PlanKey& key, const Builder& builder, bool* cache_hit) {
  std::shared_ptr<Building> build;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      if (cache_hit != nullptr) *cache_hit = true;
      return it->second->plan;
    }
    // A build of this key failed moments ago: fail fast with the same typed
    // status instead of rebuilding the poisoned entry back-to-back. The memo
    // expires on its own, or Invalidate() clears it for an explicit retry.
    auto fit = failed_.find(key);
    if (fit != failed_.end()) {
      if (std::chrono::steady_clock::now() < fit->second.until) {
        ++failure_memo_hits_;
        if (cache_hit != nullptr) *cache_hit = false;
        return fit->second.status;
      }
      failed_.erase(fit);
    }
    auto bit = building_.find(key);
    if (bit != building_.end()) {
      // Another thread is already building this plan: count it as a hit —
      // this caller pays no preprocessing, which is what the hit rate
      // measures — and share the build's outcome below.
      ++hits_;
      if (cache_hit != nullptr) *cache_hit = true;
      build = bit->second;
    } else {
      ++misses_;
      if (cache_hit != nullptr) *cache_hit = false;
      build = std::make_shared<Building>();
      building_.emplace(key, build);
      owner = true;
    }
  }

  if (!owner) {
    std::unique_lock<std::mutex> lock(build->mu);
    build->cv.wait(lock, [&] { return build->done; });
    if (!build->status.ok()) return build->status;
    return build->plan;
  }

  Result<Plan> built = builder();
  std::shared_ptr<const Plan> plan;
  if (built.ok()) {
    plan = std::make_shared<const Plan>(std::move(built.value()));
    std::lock_guard<std::mutex> lock(mu_);
    lru_.push_front(Entry{key, plan});
    map_[key] = lru_.begin();
    resident_bytes_ += plan->resident_bytes;
    // Evict from the cold end; never the entry just inserted.
    while (resident_bytes_ > byte_budget_ && lru_.size() > 1) {
      Entry& victim = lru_.back();
      resident_bytes_ -= victim.plan->resident_bytes;
      map_.erase(victim.key);
      lru_.pop_back();
      ++evictions_;
    }
  }
  {
    std::lock_guard<std::mutex> cache_lock(mu_);
    building_.erase(key);
    if (!built.ok()) {
      ++failed_builds_;
      if (failure_memo_seconds_ > 0) {
        failed_[key] = FailureMemo{
            built.status(),
            std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(failure_memo_seconds_))};
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(build->mu);
    build->done = true;
    if (built.ok()) {
      build->plan = plan;
    } else {
      build->status = built.status();
    }
  }
  build->cv.notify_all();
  if (!built.ok()) return built.status();
  return plan;
}

void PlanCache::Invalidate(const PlanKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  failed_.erase(key);
  auto it = map_.find(key);
  if (it != map_.end()) {
    resident_bytes_ -= it->second->plan->resident_bytes;
    lru_.erase(it->second);
    map_.erase(it);
  }
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident_bytes = resident_bytes_;
  s.entries = lru_.size();
  s.failed_builds = failed_builds_;
  s.failure_memo_hits = failure_memo_hits_;
  return s;
}

}  // namespace tilespmv::serve
