#ifndef TILESPMV_SERVE_PLAN_CACHE_H_
#define TILESPMV_SERVE_PLAN_CACHE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "graph/rwr.h"
#include "kernels/spmv.h"

namespace tilespmv::serve {

/// The algorithm family a plan was preprocessed for. Each family multiplies
/// by a different derived matrix (PageRank by W^T, HITS by the 2n x 2n
/// bipartite matrix, RWR by colnorm(sym(A))), so the plan must be keyed on
/// it in addition to the graph itself.
enum class PlanWorkload { kPageRank, kHits, kRwr };

std::string_view PlanWorkloadName(PlanWorkload w);

/// Cache key: matrix content fingerprint + device + kernel + workload.
/// Iteration-time parameters (damping, restart, tolerance, deadlines) are
/// deliberately NOT part of the key — they vary per call against the same
/// plan.
struct PlanKey {
  uint64_t fingerprint = 0;
  std::string device;
  std::string kernel;
  PlanWorkload workload = PlanWorkload::kPageRank;

  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const;
};

/// An immutable preprocessed plan: the Setup() kernel (reorder + tiling +
/// packing + tuning already paid) plus, for RWR, the query engine wrapping
/// it. After construction only const methods are used, so one plan may be
/// executed by any number of server threads concurrently (the SpMVKernel
/// thread-safety contract). This is exactly the amortization the paper's
/// Section 3.1 pipeline assumes: preprocessing is one-off, queries are many.
struct Plan {
  std::unique_ptr<SpMVKernel> kernel;
  /// Blocked sibling of `kernel`, set up at the plan's panel width. Non-null
  /// only for RWR plans whose kernel has one (spmm::SpmmKernelNameForSpmv)
  /// and whose engine coalesces; `rwr` then executes batches through it.
  std::unique_ptr<spmm::SpMMKernel> spmm;
  /// Non-null iff workload == kRwr; Init()ed on the same kernel (and, when
  /// present, the SpMM kernel).
  std::unique_ptr<RwrEngine> rwr;
  int32_t nodes = 0;  ///< Graph node count in original index space.
  /// Modeled device memory the plan's structures occupy — the unit of the
  /// cache's byte budget.
  uint64_t resident_bytes = 0;
  double build_seconds = 0.0;  ///< Host preprocessing wall time.
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t resident_bytes = 0;
  uint64_t entries = 0;
  uint64_t failed_builds = 0;      ///< Builder invocations that errored.
  uint64_t failure_memo_hits = 0;  ///< Callers short-circuited by the memo.
};

/// Thread-safe LRU cache of preprocessed plans, bounded by total resident
/// bytes. Concurrent misses for the same key build the plan once: the first
/// requester runs the builder while the rest block on its completion and
/// share the result (builds of *different* keys proceed in parallel).
class PlanCache {
 public:
  /// `failure_memo_seconds` is how long a failed build's Status is memoized:
  /// callers arriving inside the window get the same typed error immediately
  /// instead of re-running the poisoned builder back-to-back. 0 disables
  /// memoization (every caller may retry the build).
  explicit PlanCache(uint64_t byte_budget, double failure_memo_seconds = 0.25)
      : byte_budget_(byte_budget),
        failure_memo_seconds_(failure_memo_seconds) {}

  using Builder = std::function<Result<Plan>()>;

  /// Returns the cached plan for `key`, or runs `builder` to create and
  /// insert it. Inserting evicts least-recently-used plans until the budget
  /// holds again (the newly inserted plan itself is never evicted, so a plan
  /// larger than the whole budget still serves — alone). A failed build is
  /// not cached as a plan; its Status propagates exactly once to every
  /// waiter of that build, and is memoized for failure_memo_seconds so
  /// immediate re-requests fail fast instead of rebuilding. `cache_hit`, if
  /// non-null, reports whether this caller avoided preprocessing: true for a
  /// resident plan and for waiters sharing an in-progress build, false only
  /// for the caller that actually ran the builder (or hit the failure memo).
  Result<std::shared_ptr<const Plan>> GetOrBuild(const PlanKey& key,
                                                 const Builder& builder,
                                                 bool* cache_hit = nullptr);

  /// Drops `key`'s resident plan (if any) and its failure memo, forcing the
  /// next GetOrBuild to rebuild. The engine's retry-with-backoff path calls
  /// this between attempts. Does not count as an eviction.
  void Invalidate(const PlanKey& key);

  PlanCacheStats stats() const;

  uint64_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    PlanKey key;
    std::shared_ptr<const Plan> plan;
  };
  /// Build-in-progress state shared between the builder and its waiters.
  struct Building {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;                          // Failure, if any.
    std::shared_ptr<const Plan> plan;       // Success, if any.
  };
  /// A recently failed build: the typed error and when the memo expires.
  struct FailureMemo {
    Status status;
    std::chrono::steady_clock::time_point until;
  };

  mutable std::mutex mu_;
  uint64_t byte_budget_;
  double failure_memo_seconds_;
  uint64_t resident_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t failed_builds_ = 0;
  uint64_t failure_memo_hits_ = 0;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> map_;
  std::unordered_map<PlanKey, std::shared_ptr<Building>, PlanKeyHash>
      building_;
  std::unordered_map<PlanKey, FailureMemo, PlanKeyHash> failed_;
};

}  // namespace tilespmv::serve

#endif  // TILESPMV_SERVE_PLAN_CACHE_H_
