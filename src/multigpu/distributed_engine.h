#ifndef TILESPMV_MULTIGPU_DISTRIBUTED_ENGINE_H_
#define TILESPMV_MULTIGPU_DISTRIBUTED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "kernels/spmv.h"
#include "multigpu/cluster.h"
#include "multigpu/partition.h"
#include "util/status.h"

namespace tilespmv {

/// The generic multi-GPU SpMV of Section 3.2, reusable by every power-method
/// algorithm: "Any SpMV kernel can be plugged into this multi-GPU
/// framework to perform local computation." The iteration matrix is
/// row-partitioned with bitonic dealing, each node runs its own tuned
/// kernel on its slice, and every Multiply ends with the modeled allgather
/// of y. The paper only distributes PageRank; HITS / RWR / Katz run through
/// this engine unchanged because they are the same loop around a different
/// matrix.
class DistributedSpmv {
 public:
  explicit DistributedSpmv(const ClusterSpec& cluster) : cluster_(cluster) {}

  /// Partitions the square iteration matrix `m` over `num_gpus` nodes and
  /// sets up `kernel_name` on every slice. Fails with RESOURCE_EXHAUSTED if
  /// any slice misses the modeled device memory.
  Status Init(const CsrMatrix& m, int num_gpus,
              const std::string& kernel_name,
              PartitionScheme scheme = PartitionScheme::kBitonic);

  /// y = M * x across the cluster, original index space.
  void Multiply(const std::vector<float>& x, std::vector<float>* y) const;

  /// Modeled wall time of one distributed multiply: slowest node's compute
  /// partially overlapped with the y allgather.
  double seconds_per_multiply() const;

  double compute_seconds() const { return compute_seconds_; }
  double comm_seconds() const { return comm_seconds_; }
  int num_gpus() const { return static_cast<int>(kernels_.size()); }
  const PartitionBalance& balance() const { return balance_; }
  uint64_t flops_per_multiply() const { return flops_; }

 private:
  ClusterSpec cluster_;
  RowPartition partition_;
  PartitionBalance balance_;
  std::vector<std::unique_ptr<SpMVKernel>> kernels_;
  std::vector<CsrMatrix> locals_;
  double compute_seconds_ = 0.0;
  double comm_seconds_ = 0.0;
  uint64_t flops_ = 0;
  int32_t n_ = 0;
};

}  // namespace tilespmv

#endif  // TILESPMV_MULTIGPU_DISTRIBUTED_ENGINE_H_
