#include "multigpu/distributed_engine.h"

#include <algorithm>

#include "graph/power_method.h"
#include "obs/trace.h"
#include "util/check.h"

namespace tilespmv {

Status DistributedSpmv::Init(const CsrMatrix& m, int num_gpus,
                             const std::string& kernel_name,
                             PartitionScheme scheme) {
  TILESPMV_RETURN_IF_ERROR(m.Validate());
  if (num_gpus < 1) return Status::InvalidArgument("num_gpus must be >= 1");
  n_ = m.rows;
  {
    obs::TraceSpan span("multigpu", "multigpu/partition");
    partition_ = PartitionRows(m, num_gpus, scheme);
    balance_ = AnalyzeBalance(m, partition_);
    if (span.active()) {
      span.Arg("num_gpus", num_gpus);
      span.Arg("nnz_imbalance", balance_.nnz_imbalance);
    }
  }
  kernels_.clear();
  locals_.clear();
  compute_seconds_ = 0.0;
  flops_ = 0;
  for (int p = 0; p < num_gpus; ++p) {
    obs::TraceSpan span("multigpu", "multigpu/setup_node");
    locals_.push_back(ExtractRows(m, partition_.owner_rows[p]));
    std::unique_ptr<SpMVKernel> kernel =
        CreateKernel(kernel_name, cluster_.gpu);
    if (kernel == nullptr) {
      return Status::InvalidArgument("unknown kernel: " + kernel_name);
    }
    TILESPMV_RETURN_IF_ERROR(kernel->Setup(locals_.back()));
    compute_seconds_ = std::max(compute_seconds_, kernel->timing().seconds);
    flops_ += kernel->timing().flops;
    if (span.active()) {
      span.Arg("gpu", p);
      span.Arg("local_nnz", locals_.back().nnz());
      span.Arg("modeled_us", kernel->timing().seconds * 1e6);
    }
    kernels_.push_back(std::move(kernel));
  }
  {
    obs::TraceSpan span("multigpu", "multigpu/exchange");
    comm_seconds_ =
        AllGatherSeconds(n_, num_gpus, cluster_) +
        ElementwiseSeconds(2 * (n_ / num_gpus), n_ / num_gpus, cluster_.gpu);
    if (span.active()) span.Arg("modeled_us", comm_seconds_ * 1e6);
  }
  return Status::OK();
}

void DistributedSpmv::Multiply(const std::vector<float>& x,
                               std::vector<float>* y) const {
  TILESPMV_CHECK(!kernels_.empty());
  y->assign(n_, 0.0f);
  std::vector<float> y_local;
  for (size_t p = 0; p < kernels_.size(); ++p) {
    MultiplyOriginal(*kernels_[p], x, &y_local);
    const auto& rows = partition_.owner_rows[p];
    for (size_t i = 0; i < rows.size(); ++i) (*y)[rows[i]] = y_local[i];
  }
}

double DistributedSpmv::seconds_per_multiply() const {
  // Allgather partially overlapped with tile computation (as in
  // RunDistributedPageRank).
  double longer = std::max(compute_seconds_, comm_seconds_);
  double shorter = std::min(compute_seconds_, comm_seconds_);
  return longer + 0.5 * shorter;
}

}  // namespace tilespmv
