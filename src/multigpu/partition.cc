#include "multigpu/partition.h"

#include <algorithm>

#include "sparse/permute.h"
#include "util/check.h"

namespace tilespmv {

RowPartition PartitionRows(const CsrMatrix& a, int num_parts,
                           PartitionScheme scheme) {
  TILESPMV_CHECK(num_parts >= 1);
  RowPartition part;
  part.owner_rows.resize(num_parts);
  switch (scheme) {
    case PartitionScheme::kRoundRobin: {
      for (int32_t r = 0; r < a.rows; ++r) {
        part.owner_rows[r % num_parts].push_back(r);
      }
      break;
    }
    case PartitionScheme::kBlockRows: {
      // Contiguous blocks cut at ~equal running nnz.
      int64_t total = a.nnz();
      int64_t target = (total + num_parts - 1) / num_parts;
      int p = 0;
      int64_t acc = 0;
      for (int32_t r = 0; r < a.rows; ++r) {
        if (acc >= target && p + 1 < num_parts) {
          ++p;
          acc = 0;
        }
        part.owner_rows[p].push_back(r);
        acc += a.RowLength(r);
      }
      break;
    }
    case PartitionScheme::kBitonic: {
      // Bitonic partitioning [Parthasarathy et al.]: sort rows by length,
      // then deal P rows per round in serpentine order so the node that got
      // the longest row in one round gets the shortest in the next. Rows and
      // non-zeros both come out balanced.
      Permutation by_len = SortRowsByLengthDesc(a);
      for (size_t i = 0; i < by_len.size(); ++i) {
        int round = static_cast<int>(i / num_parts);
        int slot = static_cast<int>(i % num_parts);
        int node = (round % 2 == 0) ? slot : num_parts - 1 - slot;
        part.owner_rows[node].push_back(by_len[i]);
      }
      for (auto& rows : part.owner_rows) std::sort(rows.begin(), rows.end());
      break;
    }
  }
  return part;
}

PartitionBalance AnalyzeBalance(const CsrMatrix& a,
                                const RowPartition& partition) {
  PartitionBalance b;
  b.min_nnz = a.nnz();
  b.min_rows = a.rows;
  int64_t total_nnz = 0;
  int64_t total_rows = 0;
  for (const auto& rows : partition.owner_rows) {
    int64_t nnz = 0;
    for (int32_t r : rows) nnz += a.RowLength(r);
    b.max_nnz = std::max(b.max_nnz, nnz);
    b.min_nnz = std::min(b.min_nnz, nnz);
    b.max_rows = std::max<int64_t>(b.max_rows,
                                   static_cast<int64_t>(rows.size()));
    b.min_rows = std::min<int64_t>(b.min_rows,
                                   static_cast<int64_t>(rows.size()));
    total_nnz += nnz;
    total_rows += static_cast<int64_t>(rows.size());
  }
  int parts = partition.num_parts();
  if (parts > 0 && total_nnz > 0) {
    b.nnz_imbalance = static_cast<double>(b.max_nnz) /
                      (static_cast<double>(total_nnz) / parts);
  }
  if (parts > 0 && total_rows > 0) {
    b.row_imbalance = static_cast<double>(b.max_rows) /
                      (static_cast<double>(total_rows) / parts);
  }
  return b;
}

CsrMatrix ExtractRows(const CsrMatrix& a, const std::vector<int32_t>& rows) {
  CsrMatrix m;
  m.rows = static_cast<int32_t>(rows.size());
  m.cols = a.cols;
  m.row_ptr.assign(rows.size() + 1, 0);
  int64_t nnz = 0;
  for (int32_t r : rows) nnz += a.RowLength(r);
  m.col_idx.reserve(nnz);
  m.values.reserve(nnz);
  for (size_t i = 0; i < rows.size(); ++i) {
    int32_t r = rows[i];
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      m.col_idx.push_back(a.col_idx[k]);
      m.values.push_back(a.values[k]);
    }
    m.row_ptr[i + 1] = static_cast<int64_t>(m.col_idx.size());
  }
  return m;
}

}  // namespace tilespmv
