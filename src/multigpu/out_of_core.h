#ifndef TILESPMV_MULTIGPU_OUT_OF_CORE_H_
#define TILESPMV_MULTIGPU_OUT_OF_CORE_H_

#include <string>

#include "gpusim/device_spec.h"
#include "sparse/csr.h"
#include "util/status.h"

namespace tilespmv {

/// Outcome of the single-GPU out-of-core strategy Section 3.2 considers and
/// rejects: "use a single GPU to work on chunks of the matrix in serial ...
/// the bandwidth of the PCI-Express bus from CPU to GPU (8 GB/s) will
/// become the performance bottleneck, because our best kernel can
/// comfortably achieve 40 GB/s".
struct OutOfCoreResult {
  int num_chunks = 0;
  double compute_seconds = 0.0;   ///< Sum of per-chunk kernel time.
  double transfer_seconds = 0.0;  ///< Sum of per-chunk PCIe upload time.
  /// Per-iteration time with transfers overlapped against compute (double
  /// buffering): max of the two streams plus the pipeline fill.
  double seconds_per_iteration = 0.0;
  uint64_t flops = 0;
  bool pcie_bound = false;

  double gflops() const {
    return seconds_per_iteration > 0
               ? static_cast<double>(flops) / seconds_per_iteration * 1e-9
               : 0.0;
  }
};

/// Models one out-of-core SpMV iteration: the matrix is cut into contiguous
/// row chunks that fit the device next to the x/y vectors; every iteration
/// each chunk is re-uploaded over PCIe and multiplied with `kernel_name`.
/// Fails if even a single row's data plus the vectors exceed device memory.
Result<OutOfCoreResult> ModelOutOfCoreSpmv(const CsrMatrix& a,
                                           const std::string& kernel_name,
                                           const gpusim::DeviceSpec& spec);

}  // namespace tilespmv

#endif  // TILESPMV_MULTIGPU_OUT_OF_CORE_H_
