#include "multigpu/comm_analysis.h"

#include <cmath>

#include "util/check.h"

namespace tilespmv {

CommCost AnalyzeCommunication(int64_t n, int num_nodes,
                              DistributionLayout layout) {
  TILESPMV_CHECK(n >= 0 && num_nodes >= 1);
  CommCost cost;
  const int64_t p = num_nodes;
  switch (layout) {
    case DistributionLayout::kByRows:
      // Each node computes y for its N/P rows and broadcasts that slice;
      // it receives everyone else's slices to rebuild x. No reduction.
      cost.elements_sent_per_node = (n + p - 1) / p;
      cost.elements_received_per_node = n - cost.elements_sent_per_node;
      cost.needs_reduction = false;
      break;
    case DistributionLayout::kByColumns:
      // Each node holds N/P columns and produces a *partial* y of length N
      // that must be summed across all nodes: N elements out per node, and
      // a reduction pass before anyone can form the next x.
      cost.elements_sent_per_node = n;
      cost.elements_received_per_node = n;
      cost.needs_reduction = true;
      break;
    case DistributionLayout::kByGrid: {
      // sqrt(P) x sqrt(P) blocks: partial y of length N/sqrt(P) reduced
      // along each block row, then the reduced slices allgathered along
      // block columns — better than columns, worse than rows.
      int64_t q = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(std::sqrt(
                 static_cast<double>(p)))));
      cost.elements_sent_per_node = (n + q - 1) / q;
      cost.elements_received_per_node = (n + q - 1) / q + n / std::max<int64_t>(1, p);
      cost.needs_reduction = true;
      break;
    }
  }
  return cost;
}

const char* LayoutName(DistributionLayout layout) {
  switch (layout) {
    case DistributionLayout::kByRows:
      return "by-rows";
    case DistributionLayout::kByColumns:
      return "by-columns";
    case DistributionLayout::kByGrid:
      return "by-grid";
  }
  return "unknown";
}

}  // namespace tilespmv
