#ifndef TILESPMV_MULTIGPU_CLUSTER_H_
#define TILESPMV_MULTIGPU_CLUSTER_H_

#include <cstdint>

#include "gpusim/device_spec.h"

namespace tilespmv {

/// The modeled MPI cluster of Section 3.2 / Appendix C: one GPU used per
/// node, PCIe between GPU and host, an interconnect between nodes.
struct ClusterSpec {
  gpusim::DeviceSpec gpu = gpusim::DeviceSpec::TeslaC1060();
  /// Effective point-to-point MPI bandwidth per node (2008-era cluster).
  double interconnect_gbps = 1.0;
  double interconnect_latency_us = 50.0;
};

/// Per-iteration communication time: every node broadcasts its slice of the
/// result vector y so all nodes can rebuild their local x (ring allgather of
/// `total_floats` floats over `num_nodes` nodes), plus the PCIe hops between
/// each GPU and its host NIC. With row partitioning each node sends N/P
/// elements — the communication argument for rows over columns in the paper.
double AllGatherSeconds(int64_t total_floats, int num_nodes,
                        const ClusterSpec& cluster);

}  // namespace tilespmv

#endif  // TILESPMV_MULTIGPU_CLUSTER_H_
