#include "multigpu/cluster.h"

namespace tilespmv {

double AllGatherSeconds(int64_t total_floats, int num_nodes,
                        const ClusterSpec& cluster) {
  if (num_nodes <= 1) return 0.0;
  const double bytes = static_cast<double>(total_floats) * 4.0;
  // Ring allgather: P-1 steps, each moving the vector's 1/P share per node.
  double wire_seconds = bytes * (num_nodes - 1) / num_nodes /
                        (cluster.interconnect_gbps * 1e9);
  double latency_seconds =
      (num_nodes - 1) * cluster.interconnect_latency_us * 1e-6;
  // GPU -> host before sending, host -> GPU after receiving. Each node moves
  // its 1/P slice up and the whole rebuilt vector down.
  double pcie_seconds =
      (bytes / num_nodes + bytes) / (cluster.gpu.pcie_bandwidth_gbps * 1e9);
  return wire_seconds + latency_seconds + pcie_seconds;
}

}  // namespace tilespmv
