#include "multigpu/out_of_core.h"

#include <algorithm>
#include <memory>

#include "kernels/spmv.h"
#include "multigpu/partition.h"

namespace tilespmv {

Result<OutOfCoreResult> ModelOutOfCoreSpmv(const CsrMatrix& a,
                                           const std::string& kernel_name,
                                           const gpusim::DeviceSpec& spec) {
  // Budget for matrix data: device memory minus the resident x and y
  // vectors (x must be complete for arbitrary column accesses).
  int64_t vector_bytes = 4LL * (static_cast<int64_t>(a.cols) + a.rows);
  int64_t budget = spec.global_mem_bytes - vector_bytes;
  if (budget <= 0) {
    return Status::ResourceExhausted(
        "x/y vectors alone exceed device memory");
  }
  // Rough per-edge footprint to size chunks; the kernel's real footprint is
  // verified by its own Setup below.
  constexpr int64_t kBytesPerEdge = 16;
  int64_t edges_per_chunk = std::max<int64_t>(1, budget / kBytesPerEdge);

  OutOfCoreResult out;
  out.flops = 2 * static_cast<uint64_t>(a.nnz());

  int32_t row = 0;
  while (row < a.rows) {
    // Grow the chunk row range until the edge budget is hit.
    int64_t chunk_edges = 0;
    int32_t end = row;
    while (end < a.rows) {
      int64_t len = a.RowLength(end);
      if (chunk_edges + len > edges_per_chunk && chunk_edges > 0) break;
      if (len > edges_per_chunk) {
        return Status::ResourceExhausted(
            "row " + std::to_string(end) +
            " alone exceeds the device chunk budget");
      }
      chunk_edges += len;
      ++end;
    }
    std::vector<int32_t> rows(end - row);
    for (int32_t r = row; r < end; ++r) rows[r - row] = r;
    CsrMatrix chunk = ExtractRows(a, rows);

    std::unique_ptr<SpMVKernel> kernel = CreateKernel(kernel_name, spec);
    if (kernel == nullptr) {
      return Status::InvalidArgument("unknown kernel: " + kernel_name);
    }
    TILESPMV_RETURN_IF_ERROR(kernel->Setup(chunk));
    out.compute_seconds += kernel->timing().seconds;
    // Every iteration this chunk's device image crosses PCIe again (minus
    // the resident vectors, which stay).
    uint64_t chunk_bytes = kernel->timing().device_bytes -
                           static_cast<uint64_t>(vector_bytes);
    out.transfer_seconds +=
        static_cast<double>(chunk_bytes) / (spec.pcie_bandwidth_gbps * 1e9);
    ++out.num_chunks;
    row = end;
  }

  // Double buffering overlaps upload i+1 with compute i; the slower stream
  // dominates, plus the first upload that cannot be hidden.
  double fill = out.num_chunks > 0
                    ? out.transfer_seconds / out.num_chunks
                    : 0.0;
  out.seconds_per_iteration =
      std::max(out.compute_seconds, out.transfer_seconds) + fill;
  out.pcie_bound = out.transfer_seconds > out.compute_seconds;
  return out;
}

}  // namespace tilespmv
