#include "multigpu/distributed_pagerank.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "obs/trace.h"
#include "par/taskgraph.h"
#include "sparse/convert.h"
#include "util/check.h"

namespace tilespmv {

Result<DistributedRunResult> RunDistributedPageRank(
    const CsrMatrix& adjacency, int num_gpus,
    const DistributedPageRankOptions& options, const ClusterSpec& cluster) {
  if (adjacency.rows != adjacency.cols)
    return Status::InvalidArgument("PageRank needs a square adjacency matrix");
  if (num_gpus < 1) return Status::InvalidArgument("num_gpus must be >= 1");
  const int32_t n = adjacency.rows;

  CsrMatrix wt = Transpose(RowNormalize(adjacency));
  DistributedRunResult out;
  out.num_gpus = num_gpus;
  RowPartition partition;
  {
    obs::TraceSpan span("multigpu", "multigpu/partition");
    partition = PartitionRows(wt, num_gpus, options.scheme);
    out.balance = AnalyzeBalance(wt, partition);
    if (span.active()) {
      span.Arg("num_gpus", num_gpus);
      span.Arg("nnz_imbalance", out.balance.nnz_imbalance);
    }
  }

  // Set up each node's local kernel; any node that cannot fit its slice
  // fails the whole configuration.
  std::vector<std::unique_ptr<SpMVKernel>> kernels(num_gpus);
  std::vector<CsrMatrix> locals(num_gpus);
  for (int p = 0; p < num_gpus; ++p) {
    obs::TraceSpan span("multigpu", "multigpu/setup_node");
    locals[p] = ExtractRows(wt, partition.owner_rows[p]);
    kernels[p] = CreateKernel(options.kernel_name, cluster.gpu);
    if (kernels[p] == nullptr)
      return Status::InvalidArgument("unknown kernel: " + options.kernel_name);
    TILESPMV_RETURN_IF_ERROR(kernels[p]->Setup(locals[p]));
    out.compute_seconds_per_iteration =
        std::max(out.compute_seconds_per_iteration,
                 kernels[p]->timing().seconds);
    out.flops_per_iteration += kernels[p]->timing().flops;
    if (span.active()) {
      span.Arg("gpu", p);
      span.Arg("local_nnz", locals[p].nnz());
      span.Arg("modeled_us", kernels[p]->timing().seconds * 1e6);
    }
  }
  {
    obs::TraceSpan span("multigpu", "multigpu/exchange");
    out.comm_seconds_per_iteration =
        AllGatherSeconds(n, num_gpus, cluster) +
        ElementwiseSeconds(2 * (n / std::max(1, num_gpus)),
                           n / std::max(1, num_gpus), cluster.gpu);
    if (span.active()) {
      span.Arg("modeled_us", out.comm_seconds_per_iteration * 1e6);
    }
  }
  // Dataflow execution broadcasts each node's finished slice while the
  // remaining nodes are still computing, so per-slice pipelining hides more
  // of the shorter phase as the node count grows: only the last slice's
  // share is exposed.
  double longer = std::max(out.compute_seconds_per_iteration,
                           out.comm_seconds_per_iteration);
  double shorter = std::min(out.compute_seconds_per_iteration,
                            out.comm_seconds_per_iteration);
  out.seconds_per_iteration =
      longer + shorter / std::max(2, num_gpus);

  const float c = options.pagerank.damping;
  const float p0 = 1.0f / static_cast<float>(n);
  if (options.run_functional) {
    // One iteration as a task graph, frozen once and replayed: each node's
    // compute feeds only its own slice broadcast, so node B's SpMV overlaps
    // node A's scatter into `next`. Slices write disjoint rows, so the
    // result is bitwise identical to the old serial node loop at any
    // thread count.
    par::TaskGraph graph;
    std::vector<int32_t> compute_ids(num_gpus), scatter_ids(num_gpus);
    for (int node = 0; node < num_gpus; ++node) {
      compute_ids[node] = graph.AddTask("multigpu/node_compute");
    }
    for (int node = 0; node < num_gpus; ++node) {
      scatter_ids[node] = graph.AddTask("multigpu/slice_broadcast");
      graph.AddDep(scatter_ids[node], compute_ids[node]);
    }
    graph.Freeze();

    std::vector<float> p(n, p0);
    std::vector<float> next(n);
    std::vector<std::vector<float>> y_locals(num_gpus);
    for (int it = 0; it < options.pagerank.max_iterations; ++it) {
      obs::TraceSpan iter_span("graph", "pagerank/distributed_iteration");
      par::RunTaskGraph(graph, [&](int32_t t) {
        const int node = t % num_gpus;
        if (t < num_gpus) {
          MultiplyOriginal(*kernels[node], p, &y_locals[node]);
        } else {
          const auto& rows = partition.owner_rows[node];
          const std::vector<float>& y_local = y_locals[node];
          for (size_t i = 0; i < rows.size(); ++i) {
            next[rows[i]] = c * y_local[i] + (1.0f - c) * p0;
          }
        }
      });
      double delta = 0.0;
      for (int32_t i = 0; i < n; ++i) {
        delta += std::fabs(static_cast<double>(next[i]) - p[i]);
      }
      p.swap(next);
      ++out.iterations;
      if (delta < options.pagerank.tolerance) break;
    }
    out.result = std::move(p);
  } else {
    out.iterations = options.pagerank.max_iterations;
  }
  out.gpu_seconds = out.seconds_per_iteration * out.iterations;
  return out;
}

}  // namespace tilespmv
