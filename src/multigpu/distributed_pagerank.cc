#include "multigpu/distributed_pagerank.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "obs/trace.h"
#include "sparse/convert.h"
#include "util/check.h"

namespace tilespmv {

Result<DistributedRunResult> RunDistributedPageRank(
    const CsrMatrix& adjacency, int num_gpus,
    const DistributedPageRankOptions& options, const ClusterSpec& cluster) {
  if (adjacency.rows != adjacency.cols)
    return Status::InvalidArgument("PageRank needs a square adjacency matrix");
  if (num_gpus < 1) return Status::InvalidArgument("num_gpus must be >= 1");
  const int32_t n = adjacency.rows;

  CsrMatrix wt = Transpose(RowNormalize(adjacency));
  DistributedRunResult out;
  out.num_gpus = num_gpus;
  RowPartition partition;
  {
    obs::TraceSpan span("multigpu", "multigpu/partition");
    partition = PartitionRows(wt, num_gpus, options.scheme);
    out.balance = AnalyzeBalance(wt, partition);
    if (span.active()) {
      span.Arg("num_gpus", num_gpus);
      span.Arg("nnz_imbalance", out.balance.nnz_imbalance);
    }
  }

  // Set up each node's local kernel; any node that cannot fit its slice
  // fails the whole configuration.
  std::vector<std::unique_ptr<SpMVKernel>> kernels(num_gpus);
  std::vector<CsrMatrix> locals(num_gpus);
  for (int p = 0; p < num_gpus; ++p) {
    obs::TraceSpan span("multigpu", "multigpu/setup_node");
    locals[p] = ExtractRows(wt, partition.owner_rows[p]);
    kernels[p] = CreateKernel(options.kernel_name, cluster.gpu);
    if (kernels[p] == nullptr)
      return Status::InvalidArgument("unknown kernel: " + options.kernel_name);
    TILESPMV_RETURN_IF_ERROR(kernels[p]->Setup(locals[p]));
    out.compute_seconds_per_iteration =
        std::max(out.compute_seconds_per_iteration,
                 kernels[p]->timing().seconds);
    out.flops_per_iteration += kernels[p]->timing().flops;
    if (span.active()) {
      span.Arg("gpu", p);
      span.Arg("local_nnz", locals[p].nnz());
      span.Arg("modeled_us", kernels[p]->timing().seconds * 1e6);
    }
  }
  {
    obs::TraceSpan span("multigpu", "multigpu/exchange");
    out.comm_seconds_per_iteration =
        AllGatherSeconds(n, num_gpus, cluster) +
        ElementwiseSeconds(2 * (n / std::max(1, num_gpus)),
                           n / std::max(1, num_gpus), cluster.gpu);
    if (span.active()) {
      span.Arg("modeled_us", out.comm_seconds_per_iteration * 1e6);
    }
  }
  // The allgather of finished y slices overlaps the computation of tiles
  // that do not consume them; model half the shorter phase as hidden.
  double longer = std::max(out.compute_seconds_per_iteration,
                           out.comm_seconds_per_iteration);
  double shorter = std::min(out.compute_seconds_per_iteration,
                            out.comm_seconds_per_iteration);
  out.seconds_per_iteration = longer + 0.5 * shorter;

  const float c = options.pagerank.damping;
  const float p0 = 1.0f / static_cast<float>(n);
  if (options.run_functional) {
    std::vector<float> p(n, p0);
    std::vector<float> next(n);
    std::vector<float> y_local;
    for (int it = 0; it < options.pagerank.max_iterations; ++it) {
      obs::TraceSpan iter_span("graph", "pagerank/distributed_iteration");
      // Each node computes its owned slice of W^T p; the allgather then
      // rebuilds the full vector everywhere.
      for (int node = 0; node < num_gpus; ++node) {
        MultiplyOriginal(*kernels[node], p, &y_local);
        const auto& rows = partition.owner_rows[node];
        for (size_t i = 0; i < rows.size(); ++i) {
          next[rows[i]] = c * y_local[i] + (1.0f - c) * p0;
        }
      }
      double delta = 0.0;
      for (int32_t i = 0; i < n; ++i) {
        delta += std::fabs(static_cast<double>(next[i]) - p[i]);
      }
      p.swap(next);
      ++out.iterations;
      if (delta < options.pagerank.tolerance) break;
    }
    out.result = std::move(p);
  } else {
    out.iterations = options.pagerank.max_iterations;
  }
  out.gpu_seconds = out.seconds_per_iteration * out.iterations;
  return out;
}

}  // namespace tilespmv
