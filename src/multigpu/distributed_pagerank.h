#ifndef TILESPMV_MULTIGPU_DISTRIBUTED_PAGERANK_H_
#define TILESPMV_MULTIGPU_DISTRIBUTED_PAGERANK_H_

#include <string>
#include <vector>

#include "graph/pagerank.h"
#include "multigpu/cluster.h"
#include "multigpu/partition.h"
#include "util/status.h"

namespace tilespmv {

/// Configuration of a distributed PageRank run.
struct DistributedPageRankOptions {
  PageRankOptions pagerank;
  PartitionScheme scheme = PartitionScheme::kBitonic;
  /// Local SpMV kernel per node ("any SpMV kernel can be plugged into this
  /// multi-GPU framework").
  std::string kernel_name = "tile-composite";
  /// Verify functionally by actually iterating (slower); when false only the
  /// timing model runs with a fixed iteration count.
  bool run_functional = true;
};

/// Outcome of one (graph, #GPUs) configuration — the data behind one point
/// of Figure 4.
struct DistributedRunResult {
  int num_gpus = 0;
  int iterations = 0;
  double seconds_per_iteration = 0.0;
  double compute_seconds_per_iteration = 0.0;  ///< max over nodes.
  double comm_seconds_per_iteration = 0.0;
  double gpu_seconds = 0.0;
  uint64_t flops_per_iteration = 0;
  PartitionBalance balance;
  std::vector<float> result;  ///< PageRank vector (empty if !run_functional).

  double gflops() const {
    return seconds_per_iteration > 0
               ? static_cast<double>(flops_per_iteration) /
                     seconds_per_iteration * 1e-9
               : 0.0;
  }
};

/// Runs (or models) PageRank on `adjacency` spread over `num_gpus` nodes:
/// W^T is row-partitioned, each node runs the configured kernel on its local
/// slice, and every iteration ends with the y allgather. Fails with
/// RESOURCE_EXHAUSTED when a node's slice does not fit the modeled GPU
/// memory — the reason Figure 4's sk-2005 and uk-union curves start at 3 and
/// 6 GPUs.
Result<DistributedRunResult> RunDistributedPageRank(
    const CsrMatrix& adjacency, int num_gpus,
    const DistributedPageRankOptions& options, const ClusterSpec& cluster);

}  // namespace tilespmv

#endif  // TILESPMV_MULTIGPU_DISTRIBUTED_PAGERANK_H_
