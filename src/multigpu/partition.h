#ifndef TILESPMV_MULTIGPU_PARTITION_H_
#define TILESPMV_MULTIGPU_PARTITION_H_

#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace tilespmv {

/// Matrix partitioning schemes for the multi-GPU kernel (Section 3.2). The
/// paper argues rows beat columns and grids on communication volume, and
/// uses bitonic partitioning to balance rows *and* non-zeros simultaneously.
enum class PartitionScheme {
  kBlockRows,  ///< Contiguous row blocks of ~equal nnz.
  kBitonic,    ///< Sort rows by length, deal in serpentine order.
  kRoundRobin, ///< Row i -> node i % P (baseline).
};

/// Row ownership: owner_rows[p] lists the rows assigned to node p.
struct RowPartition {
  std::vector<std::vector<int32_t>> owner_rows;

  int num_parts() const { return static_cast<int>(owner_rows.size()); }
};

/// Balance diagnostics of a partition.
struct PartitionBalance {
  int64_t max_nnz = 0;
  int64_t min_nnz = 0;
  int64_t max_rows = 0;
  int64_t min_rows = 0;
  /// max_nnz / mean_nnz; 1.0 = perfect.
  double nnz_imbalance = 1.0;
  /// max_rows / mean_rows; row balance controls communication balance.
  double row_imbalance = 1.0;
};

/// Partitions the rows of `a` over `num_parts` nodes.
RowPartition PartitionRows(const CsrMatrix& a, int num_parts,
                           PartitionScheme scheme);

/// Computes balance diagnostics.
PartitionBalance AnalyzeBalance(const CsrMatrix& a,
                                const RowPartition& partition);

/// Materializes node p's local matrix: the owned rows, compacted, over the
/// full column span.
CsrMatrix ExtractRows(const CsrMatrix& a, const std::vector<int32_t>& rows);

}  // namespace tilespmv

#endif  // TILESPMV_MULTIGPU_PARTITION_H_
