#ifndef TILESPMV_MULTIGPU_COMM_ANALYSIS_H_
#define TILESPMV_MULTIGPU_COMM_ANALYSIS_H_

#include <cstdint>
#include <string>

#include "sparse/csr.h"

namespace tilespmv {

/// Matrix-distribution layouts compared in Section 3.2. The paper: "The
/// communication cost is lower if the matrix is partitioned by rows rather
/// than by columns. Suppose we have N rows and P processors. If the matrix
/// is partitioned by rows, each processor only needs to send out N/P
/// elements of vector x. But if partitioned by columns, all processors need
/// to send out N elements. ... partitioning by rows is superior to
/// partitioning by grids."
enum class DistributionLayout {
  kByRows,     ///< Node owns N/P rows; sends its N/P slice of y.
  kByColumns,  ///< Node owns N/P columns; sends N partial sums to reduce.
  kByGrid,     ///< sqrt(P) x sqrt(P) blocks; row + column collectives.
};

/// Per-iteration communication demands of one layout.
struct CommCost {
  /// Vector elements each node sends per iteration.
  int64_t elements_sent_per_node = 0;
  /// Vector elements each node receives per iteration.
  int64_t elements_received_per_node = 0;
  /// Whether remote partial sums must be reduced before y is usable (adds a
  /// reduction pass the row layout avoids: "partitioning by rows does not
  /// necessitate any reduction operations after vector x is gathered").
  bool needs_reduction = false;

  int64_t TotalTrafficBytes(int num_nodes) const {
    return 4 * elements_sent_per_node * num_nodes;
  }
};

/// Communication cost of distributing an n x n matrix over `num_nodes`
/// nodes under `layout` (Section 3.2's accounting).
CommCost AnalyzeCommunication(int64_t n, int num_nodes,
                              DistributionLayout layout);

const char* LayoutName(DistributionLayout layout);

}  // namespace tilespmv

#endif  // TILESPMV_MULTIGPU_COMM_ANALYSIS_H_
