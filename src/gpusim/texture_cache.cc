#include "gpusim/texture_cache.h"

#include "util/check.h"

namespace tilespmv::gpusim {
namespace {

int Log2Floor(uint64_t v) {
  int r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

TextureCache::TextureCache(int64_t total_bytes, int line_bytes, int assoc)
    : line_bytes_(line_bytes), assoc_(assoc) {
  TILESPMV_CHECK(total_bytes > 0 && line_bytes > 0 && assoc > 0);
  TILESPMV_CHECK(IsPowerOfTwo(static_cast<uint64_t>(line_bytes)));
  line_shift_ = Log2Floor(static_cast<uint64_t>(line_bytes));
  num_sets_ = static_cast<uint64_t>(total_bytes) / line_bytes / assoc;
  TILESPMV_CHECK(num_sets_ >= 1);
  sets_pow2_ = IsPowerOfTwo(num_sets_);
  tags_.assign(num_sets_ * assoc_, 0);
  stamps_.assign(num_sets_ * assoc_, 0);
}

bool TextureCache::Access(uint64_t addr) {
  uint64_t line = addr >> line_shift_;
  uint64_t set = sets_pow2_ ? (line & (num_sets_ - 1)) : (line % num_sets_);
  uint64_t tag = line + 1;  // 0 is reserved for "empty".
  uint64_t* tags = &tags_[set * assoc_];
  uint64_t* stamps = &stamps_[set * assoc_];
  ++tick_;
  int victim = 0;
  uint64_t victim_stamp = stamps[0];
  for (int w = 0; w < assoc_; ++w) {
    if (tags[w] == tag) {
      stamps[w] = tick_;
      ++hits_;
      return true;
    }
    if (stamps[w] < victim_stamp) {
      victim_stamp = stamps[w];
      victim = w;
    }
  }
  tags[victim] = tag;
  stamps[victim] = tick_;
  ++misses_;
  return false;
}

void TextureCache::Flush() {
  tags_.assign(tags_.size(), 0);
  stamps_.assign(stamps_.size(), 0);
}

}  // namespace tilespmv::gpusim
