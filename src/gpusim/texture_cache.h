#ifndef TILESPMV_GPUSIM_TEXTURE_CACHE_H_
#define TILESPMV_GPUSIM_TEXTURE_CACHE_H_

#include <cstdint>
#include <vector>

#include "gpusim/device_spec.h"

namespace tilespmv::gpusim {

/// Set-associative LRU simulation of the read-only texture cache. Kernels
/// bind the x vector (or a tile's segment of it) to texture memory and route
/// every x access through this cache; a miss charges a line fill against
/// global memory bandwidth, a hit is free of memory traffic. This is the
/// mechanism behind the paper's Solution 1: a 64K-column tile's x segment
/// (64K * 4 B = 256 KB) exactly fits the cache, so within a tile every reuse
/// of x hits.
class TextureCache {
 public:
  /// Builds a cache of `total_bytes` capacity with `line_bytes` lines and
  /// `assoc`-way sets. The set count need not be a power of two (Fermi-class
  /// caches are not); line_bytes must be.
  TextureCache(int64_t total_bytes, int line_bytes, int assoc);

  /// Convenience: cache with the spec's texture parameters.
  explicit TextureCache(const DeviceSpec& spec)
      : TextureCache(spec.texture_cache_bytes, spec.texture_cache_line_bytes,
                     spec.texture_cache_assoc) {}

  /// Simulates one access to byte address `addr`. Returns true on hit.
  bool Access(uint64_t addr);

  /// Invalidates all lines (e.g. between kernel launches when the binding
  /// changes; note real texture caches are not coherent across writes).
  void Flush();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  int line_bytes() const { return line_bytes_; }
  double HitRate() const {
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }
  void ResetCounters() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  int line_bytes_;
  int line_shift_;
  int assoc_;
  uint64_t num_sets_;
  bool sets_pow2_ = true;  ///< Fast set-index path when sets are 2^k.
  // tags_[set * assoc_ + way]; 0 means empty (tag values are line+1).
  std::vector<uint64_t> tags_;
  // LRU stamps parallel to tags_.
  std::vector<uint64_t> stamps_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tilespmv::gpusim

#endif  // TILESPMV_GPUSIM_TEXTURE_CACHE_H_
