#include "gpusim/cost_model.h"

#include <algorithm>

#include "gpusim/memory_system.h"

namespace tilespmv::gpusim {

LaunchEstimate CostModel::EstimateLaunch(const KernelLaunch& launch) const {
  LaunchEstimate est;
  est.seconds = spec_.kernel_launch_overhead_us * 1e-6;
  const int cap = spec_.MaxActiveWarps();
  const size_t n = launch.warps.size();
  est.waves = static_cast<int>((n + cap - 1) / cap);

  std::vector<uint64_t> sm_cycles(spec_.num_sms);
  std::vector<double> partition_bytes(spec_.num_partitions);

  for (size_t wave_start = 0; wave_start < n;
       wave_start += static_cast<size_t>(cap)) {
    size_t wave_end = std::min(n, wave_start + static_cast<size_t>(cap));
    std::fill(sm_cycles.begin(), sm_cycles.end(), 0);
    std::fill(partition_bytes.begin(), partition_bytes.end(), 0.0);

    double total_bytes = 0.0;
    for (size_t i = wave_start; i < wave_end; ++i) {
      const WarpWork& w = launch.warps[i];
      sm_cycles[(i - wave_start) % spec_.num_sms] += w.issue_cycles;
      total_bytes +=
          static_cast<double>(w.global_bytes + w.scattered_bytes);
      // Random-address traffic spreads over all partitions.
      double share =
          static_cast<double>(w.scattered_bytes) / spec_.num_partitions;
      if (w.start_address == kNoAddress) {
        // No lockstep stream either: everything spreads.
        share += static_cast<double>(w.global_bytes) / spec_.num_partitions;
      } else {
        // Concurrent warps advance in lockstep through their streams, so the
        // instantaneous partition pressure follows the start partitions.
        partition_bytes[PartitionOf(w.start_address, spec_)] +=
            static_cast<double>(w.global_bytes);
      }
      for (int p = 0; p < spec_.num_partitions; ++p)
        partition_bytes[p] += share;
    }

    uint64_t busiest_sm = *std::max_element(sm_cycles.begin(), sm_cycles.end());
    double compute_s = static_cast<double>(busiest_sm) / spec_.ClockHz();
    double busiest_partition =
        *std::max_element(partition_bytes.begin(), partition_bytes.end());
    // An under-occupied wave lacks the memory-level parallelism to keep
    // DRAM busy: effective bandwidth scales with warps in flight up to the
    // saturation point, floored at 1/4 (even a single warp streaming large
    // coalesced blocks keeps several requests outstanding).
    double mlp = std::clamp(
        static_cast<double>(wave_end - wave_start) /
            std::max(1, spec_.bw_saturation_warps),
        0.25, 1.0);
    double memory_s =
        busiest_partition / (spec_.PartitionBandwidthBytesPerSec() * mlp);

    if (total_bytes > 0) {
      double uniform_s = total_bytes / spec_.BandwidthBytesPerSec();
      est.worst_camping_factor = std::max(
          est.worst_camping_factor, uniform_s > 0 ? memory_s / uniform_s : 1.0);
    }
    est.compute_seconds += compute_s;
    est.memory_seconds += memory_s;
    est.seconds += std::max(compute_s, memory_s);
  }
  return est;
}

SpmmSweepCost EstimateSpmmSweep(const SpmmSweepInputs& in, int block_cols,
                                const DeviceSpec& spec) {
  SpmmSweepCost out;
  const int k = std::max(1, block_cols);
  out.flops = in.flops * static_cast<uint64_t>(k);

  // Per-extra-vector traffic: the x-gather misses repeat per column (cache
  // behavior depends only on the access pattern, which is the matrix
  // structure), and each column writes its own y. The matrix stream itself —
  // everything else in global_bytes — is paid once.
  const uint64_t per_vector_bytes =
      in.tex_misses * static_cast<uint64_t>(spec.texture_cache_line_bytes) +
      static_cast<uint64_t>(in.rows) * 4;
  // Per-extra-vector compute: the MAD work scales with k. 8 SPs per SM, one
  // MAD (2 flops) per SP per core clock.
  const double peak_flops = spec.ClockHz() * spec.num_sms * 8 * 2;
  const double per_vector_compute =
      peak_flops > 0 ? static_cast<double>(in.flops) / peak_flops : 0.0;
  const double per_vector_seconds =
      static_cast<double>(per_vector_bytes) / spec.BandwidthBytesPerSec() +
      per_vector_compute;

  out.seconds = in.spmv_seconds + (k - 1) * per_vector_seconds;
  out.seconds_per_vector = out.seconds / k;
  out.global_bytes =
      in.global_bytes + static_cast<uint64_t>(k - 1) * per_vector_bytes;
  // Algorithmic traffic: matrix once, x/y vectors per column. The
  // single-vector useful_bytes already contains one set of vector traffic
  // (4 bytes per nnz for x, 4 per row for y).
  out.useful_bytes =
      in.useful_bytes +
      static_cast<uint64_t>(k - 1) *
          (in.flops * 2 + static_cast<uint64_t>(in.rows) * 4);
  out.arithmetic_intensity =
      out.global_bytes > 0
          ? static_cast<double>(out.flops) / static_cast<double>(out.global_bytes)
          : 0.0;
  return out;
}

LaunchEstimate CostModel::EstimateLaunches(
    const std::vector<KernelLaunch>& launches) const {
  LaunchEstimate total;
  for (const KernelLaunch& l : launches) {
    LaunchEstimate e = EstimateLaunch(l);
    total.seconds += e.seconds;
    total.compute_seconds += e.compute_seconds;
    total.memory_seconds += e.memory_seconds;
    total.waves += e.waves;
    total.worst_camping_factor =
        std::max(total.worst_camping_factor, e.worst_camping_factor);
  }
  return total;
}

}  // namespace tilespmv::gpusim
