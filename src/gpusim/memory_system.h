#ifndef TILESPMV_GPUSIM_MEMORY_SYSTEM_H_
#define TILESPMV_GPUSIM_MEMORY_SYSTEM_H_

#include <cstdint>

#include "gpusim/device_spec.h"
#include "util/status.h"

namespace tilespmv::gpusim {

/// Bump allocator over the modeled device address space. Kernels allocate
/// their arrays here so that every simulated access has a concrete address —
/// that is what makes coalescing, partition camping and texture caching
/// computable instead of assumed.
class DeviceAllocator {
 public:
  explicit DeviceAllocator(const DeviceSpec& spec)
      : capacity_(spec.global_mem_bytes) {}

  /// Allocates `bytes` aligned to `align` (default: one partition stripe).
  /// Fails with RESOURCE_EXHAUSTED when device memory is exceeded — this is
  /// how e.g. ELL on a power-law matrix reports the same failure the paper
  /// observed.
  Result<uint64_t> Allocate(int64_t bytes, int64_t align = 256);

  int64_t allocated_bytes() const { return next_; }
  int64_t capacity() const { return capacity_; }

 private:
  int64_t capacity_;
  int64_t next_ = 0;
};

/// Result of coalescing one half-warp memory request.
struct CoalesceResult {
  uint64_t transactions = 0;  ///< Memory transactions issued.
  uint64_t bytes = 0;         ///< Bytes moved over the bus.
};

/// Applies the compute-capability-1.3 coalescing rules to a half-warp request
/// of `n` addresses (each accessing `word_bytes` bytes): addresses falling in
/// the same 128-byte segment merge into one transaction, whose size shrinks
/// to 64 or 32 bytes when the touched span allows.
CoalesceResult CoalesceHalfWarp(const uint64_t* addrs, int n, int word_bytes,
                                const DeviceSpec& spec);

/// Traffic for a fully sequential access of `bytes` starting at `start`
/// (rounded out to whole segments).
CoalesceResult SequentialTraffic(uint64_t start, uint64_t bytes,
                                 const DeviceSpec& spec);

/// Global-memory partition that byte address `addr` falls in (partition
/// stripes are `partition_width_bytes` wide and interleave round-robin).
int PartitionOf(uint64_t addr, const DeviceSpec& spec);

}  // namespace tilespmv::gpusim

#endif  // TILESPMV_GPUSIM_MEMORY_SYSTEM_H_
