#ifndef TILESPMV_GPUSIM_DEVICE_SPEC_H_
#define TILESPMV_GPUSIM_DEVICE_SPEC_H_

#include <cstdint>
#include <string_view>

namespace tilespmv::gpusim {

/// Architectural parameters of the modeled GPU. Defaults describe the NVIDIA
/// Tesla C1060 used throughout the paper (30 SMs x 8 SPs, compute capability
/// 1.3). Every cost in the execution model derives from these numbers, so a
/// different device can be modeled by constructing a different spec.
struct DeviceSpec {
  int num_sms = 30;                   ///< Streaming multiprocessors.
  int warp_size = 32;                 ///< Threads per warp (SIMT width).
  int half_warp = 16;                 ///< Memory requests are per half-warp.
  int max_active_warps_per_sm = 32;   ///< Full occupancy (=> 960 device-wide).
  double core_clock_ghz = 1.296;      ///< SP clock.
  double mem_bandwidth_gbps = 102.0;  ///< Peak global memory bandwidth.
  int num_partitions = 8;             ///< Global memory partitions.
  int partition_width_bytes = 256;    ///< Width of one partition stripe.
  int coalesce_segment_bytes = 128;   ///< Segment size for 4/8-byte words.
  int min_transaction_bytes = 32;     ///< Smallest memory transaction.
  int64_t global_mem_bytes = 4LL << 30;  ///< 4 GB device memory.
  int64_t texture_cache_bytes = 256 << 10;  ///< As estimated in Section 3.1.
  int texture_cache_line_bytes = 32;
  int texture_cache_assoc = 8;
  int shared_mem_bytes_per_sm = 16 << 10;
  double kernel_launch_overhead_us = 5.0;  ///< Per kernel launch.
  /// SM issue cycles a warp loses per texture miss (latency not hidden by
  /// multithreading at full occupancy).
  int tex_miss_stall_cycles = 8;
  /// Concurrent warps needed to saturate DRAM bandwidth; waves with fewer
  /// warps in flight achieve proportionally less (memory-level parallelism).
  int bw_saturation_warps = 16;
  double pcie_bandwidth_gbps = 8.0;        ///< Host <-> device bus.
  /// Issue cost of one warp-wide instruction in SM cycles (8 SPs execute 32
  /// threads over 4 clocks).
  int cycles_per_warp_instr = 4;

  /// Max concurrently active warps device-wide (960 on the C1060).
  int MaxActiveWarps() const { return num_sms * max_active_warps_per_sm; }
  double ClockHz() const { return core_clock_ghz * 1e9; }
  double BandwidthBytesPerSec() const { return mem_bandwidth_gbps * 1e9; }
  double PartitionBandwidthBytesPerSec() const {
    return BandwidthBytesPerSec() / num_partitions;
  }

  /// The device the paper evaluates on (these are also the defaults).
  static DeviceSpec TeslaC1060();

  /// A Fermi-generation Tesla C2050: fewer, wider SMs, higher bandwidth, a
  /// larger read-only cache. Used to demonstrate that the tiling width and
  /// auto-tuner adapt to the device instead of hard-coding Tesla numbers
  /// (the "next generation hybrid architectures" remark in Section 1).
  static DeviceSpec FermiC2050();
};

/// Looks up a spec by the short name the CLI and serving layer use
/// ("c1060", "c2050"). Returns false for unknown names, leaving *spec
/// untouched.
bool DeviceSpecByName(std::string_view name, DeviceSpec* spec);

}  // namespace tilespmv::gpusim

#endif  // TILESPMV_GPUSIM_DEVICE_SPEC_H_
