#include "gpusim/device_spec.h"

namespace tilespmv::gpusim {

DeviceSpec DeviceSpec::TeslaC1060() { return DeviceSpec{}; }

DeviceSpec DeviceSpec::FermiC2050() {
  DeviceSpec spec;
  spec.num_sms = 14;
  spec.max_active_warps_per_sm = 48;
  spec.core_clock_ghz = 1.15;
  spec.mem_bandwidth_gbps = 144.0;
  spec.num_partitions = 6;  // Six 64-bit GDDR5 channels.
  spec.global_mem_bytes = 3LL << 30;
  spec.texture_cache_bytes = 768 << 10;  // Unified L2 serves read-only data.
  spec.shared_mem_bytes_per_sm = 48 << 10;
  spec.cycles_per_warp_instr = 2;  // 32 cores per SM, dual issue.
  return spec;
}

bool DeviceSpecByName(std::string_view name, DeviceSpec* spec) {
  if (name == "c1060") {
    *spec = DeviceSpec::TeslaC1060();
    return true;
  }
  if (name == "c2050") {
    *spec = DeviceSpec::FermiC2050();
    return true;
  }
  return false;
}

}  // namespace tilespmv::gpusim
