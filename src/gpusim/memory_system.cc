#include "gpusim/memory_system.h"

#include <algorithm>

#include "util/check.h"

namespace tilespmv::gpusim {

Result<uint64_t> DeviceAllocator::Allocate(int64_t bytes, int64_t align) {
  TILESPMV_CHECK(bytes >= 0 && align > 0);
  int64_t base = (next_ + align - 1) / align * align;
  if (base + bytes > capacity_) {
    return Status::ResourceExhausted(
        "device memory exhausted: need " + std::to_string(base + bytes) +
        " bytes, capacity " + std::to_string(capacity_));
  }
  next_ = base + bytes;
  return static_cast<uint64_t>(base);
}

CoalesceResult CoalesceHalfWarp(const uint64_t* addrs, int n, int word_bytes,
                                const DeviceSpec& spec) {
  CoalesceResult r;
  if (n <= 0) return r;
  const uint64_t seg = static_cast<uint64_t>(spec.coalesce_segment_bytes);
  // Half-warps have at most 16 lanes; track touched segments in a small
  // fixed array (distinct segments <= n).
  uint64_t seg_id[32];
  uint64_t lo[32];
  uint64_t hi[32];
  int num_segs = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t s = addrs[i] / seg;
    uint64_t end = addrs[i] + static_cast<uint64_t>(word_bytes);
    int j = 0;
    for (; j < num_segs; ++j) {
      if (seg_id[j] == s) {
        lo[j] = std::min(lo[j], addrs[i]);
        hi[j] = std::max(hi[j], end);
        break;
      }
    }
    if (j == num_segs) {
      seg_id[num_segs] = s;
      lo[num_segs] = addrs[i];
      hi[num_segs] = end;
      ++num_segs;
    }
  }
  for (int j = 0; j < num_segs; ++j) {
    // Shrink the transaction to the smallest aligned power-of-two block
    // (>= min_transaction_bytes) covering the touched span, per the CC 1.2+
    // rules.
    uint64_t size = static_cast<uint64_t>(spec.min_transaction_bytes);
    while (size < seg) {
      uint64_t block_lo = lo[j] / size * size;
      if (hi[j] <= block_lo + size) break;
      size *= 2;
    }
    r.transactions += 1;
    r.bytes += size;
  }
  return r;
}

CoalesceResult SequentialTraffic(uint64_t start, uint64_t bytes,
                                 const DeviceSpec& spec) {
  CoalesceResult r;
  if (bytes == 0) return r;
  const uint64_t seg = static_cast<uint64_t>(spec.coalesce_segment_bytes);
  uint64_t first = start / seg;
  uint64_t last = (start + bytes - 1) / seg;
  r.transactions = last - first + 1;
  r.bytes = r.transactions * seg;
  return r;
}

int PartitionOf(uint64_t addr, const DeviceSpec& spec) {
  return static_cast<int>(
      (addr / static_cast<uint64_t>(spec.partition_width_bytes)) %
      static_cast<uint64_t>(spec.num_partitions));
}

}  // namespace tilespmv::gpusim
