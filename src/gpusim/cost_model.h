#ifndef TILESPMV_GPUSIM_COST_MODEL_H_
#define TILESPMV_GPUSIM_COST_MODEL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "gpusim/device_spec.h"

namespace tilespmv::gpusim {

/// Sentinel for warps with no dominant streaming address (their traffic is
/// assumed spread uniformly over memory partitions).
inline constexpr uint64_t kNoAddress = std::numeric_limits<uint64_t>::max();

/// The resource demand of one warp within a kernel launch, as recorded by a
/// kernel's execution walk: SM issue slots consumed (divergence-serialized
/// instructions included) and coalesced global-memory traffic.
struct WarpWork {
  uint64_t issue_cycles = 0;   ///< SM cycles of instruction issue.
  /// Post-coalescing traffic of the warp's sequential streams (matrix
  /// arrays). Attributed to the start partition for camping purposes.
  uint64_t global_bytes = 0;
  /// Traffic from random-address accesses (x-gather cache fills, scattered
  /// y updates). Spread uniformly over partitions — gathers don't camp.
  uint64_t scattered_bytes = 0;
  /// Address where this warp's streaming accesses start. Because concurrent
  /// warps advance in near-lockstep, the distribution of *start* partitions
  /// determines partition camping (Section 3.1 "Elimination of Partition
  /// Camping").
  uint64_t start_address = kNoAddress;
};

/// One simulated kernel launch: the warps it spawns.
struct KernelLaunch {
  std::vector<WarpWork> warps;
};

/// Cost breakdown returned by CostModel::EstimateLaunch.
struct LaunchEstimate {
  double seconds = 0.0;          ///< Includes launch overhead.
  double compute_seconds = 0.0;  ///< Sum over waves of issue-bound time.
  double memory_seconds = 0.0;   ///< Sum over waves of bandwidth-bound time.
  int waves = 0;                 ///< ceil(warps / max active warps).
  double worst_camping_factor = 1.0;  ///< 1 = uniform, 8 = fully camped.
};

/// Converts per-warp work records into time on the modeled device.
///
/// Warps execute in waves of at most MaxActiveWarps() (Equation 1 of the
/// paper is exactly this wave count). Within a wave, warps are dealt
/// round-robin to SMs; a wave's compute time is the busiest SM's issue time,
/// its memory time is the busiest partition's queue drain time, and the wave
/// takes the max of the two (bandwidth-bound kernels hide issue latency and
/// vice versa). Launches pay a fixed driver overhead — the reason tiling the
/// *whole* matrix with one launch per tile fails (Observation 2).
class CostModel {
 public:
  explicit CostModel(const DeviceSpec& spec) : spec_(spec) {}

  LaunchEstimate EstimateLaunch(const KernelLaunch& launch) const;

  /// Estimates a sequence of launches (sums times; each pays overhead).
  LaunchEstimate EstimateLaunches(const std::vector<KernelLaunch>& launches) const;

  const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

}  // namespace tilespmv::gpusim

#endif  // TILESPMV_GPUSIM_COST_MODEL_H_
