#ifndef TILESPMV_GPUSIM_COST_MODEL_H_
#define TILESPMV_GPUSIM_COST_MODEL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "gpusim/device_spec.h"

namespace tilespmv::gpusim {

/// Sentinel for warps with no dominant streaming address (their traffic is
/// assumed spread uniformly over memory partitions).
inline constexpr uint64_t kNoAddress = std::numeric_limits<uint64_t>::max();

/// The resource demand of one warp within a kernel launch, as recorded by a
/// kernel's execution walk: SM issue slots consumed (divergence-serialized
/// instructions included) and coalesced global-memory traffic.
struct WarpWork {
  uint64_t issue_cycles = 0;   ///< SM cycles of instruction issue.
  /// Post-coalescing traffic of the warp's sequential streams (matrix
  /// arrays). Attributed to the start partition for camping purposes.
  uint64_t global_bytes = 0;
  /// Traffic from random-address accesses (x-gather cache fills, scattered
  /// y updates). Spread uniformly over partitions — gathers don't camp.
  uint64_t scattered_bytes = 0;
  /// Address where this warp's streaming accesses start. Because concurrent
  /// warps advance in near-lockstep, the distribution of *start* partitions
  /// determines partition camping (Section 3.1 "Elimination of Partition
  /// Camping").
  uint64_t start_address = kNoAddress;
};

/// One simulated kernel launch: the warps it spawns.
struct KernelLaunch {
  std::vector<WarpWork> warps;
};

/// Cost breakdown returned by CostModel::EstimateLaunch.
struct LaunchEstimate {
  double seconds = 0.0;          ///< Includes launch overhead.
  double compute_seconds = 0.0;  ///< Sum over waves of issue-bound time.
  double memory_seconds = 0.0;   ///< Sum over waves of bandwidth-bound time.
  int waves = 0;                 ///< ceil(warps / max active warps).
  double worst_camping_factor = 1.0;  ///< 1 = uniform, 8 = fully camped.
};

/// Single-vector cost inputs for scaling an SpMV walk to a blocked SpMM
/// sweep (see EstimateSpmmSweep). All numbers come straight out of the
/// kernel's KernelTiming after a normal Setup; they are kept primitive here
/// so gpusim stays below the kernel layer in the include graph.
struct SpmmSweepInputs {
  double spmv_seconds = 0.0;     ///< One y = A*x sweep.
  uint64_t flops = 0;            ///< 2 * nnz.
  uint64_t useful_bytes = 0;     ///< Algorithmic traffic of one sweep.
  uint64_t global_bytes = 0;     ///< Modeled DRAM traffic of one sweep.
  uint64_t tex_misses = 0;       ///< x-gather cache misses of one sweep.
  int64_t rows = 0;              ///< Output vector length.
};

/// Modeled cost of one blocked SpMM sweep: y-panel = A * x-panel with
/// `block_cols` dense vectors per matrix read.
struct SpmmSweepCost {
  double seconds = 0.0;
  uint64_t flops = 0;         ///< block_cols * 2 * nnz.
  uint64_t useful_bytes = 0;  ///< Matrix once + per-vector x/y traffic.
  uint64_t global_bytes = 0;  ///< Modeled DRAM traffic of the sweep.
  /// flops / global_bytes — the Fig. 2-style arithmetic-intensity axis. A
  /// single-vector SpMV sits near 0.25 flop/byte; blocking raises it because
  /// the matrix stream (the dominant traffic) is amortized over the panel.
  double arithmetic_intensity = 0.0;
  /// Modeled time divided by block_cols — the per-user amortized cost the
  /// serving layer optimizes for.
  double seconds_per_vector = 0.0;
};

/// Scales a single-vector SpMV cost to a k-wide blocked sweep. The matrix
/// stream (val/col/row structure) is read once regardless of k; every
/// additional vector re-pays its x-gather misses (the cache behavior is
/// structure-only, so the miss count is identical per column), its y writes,
/// and its MAD work. This is the same amortization argument as
/// RwrEngine::BatchIterationSeconds, centralized so kernels, autotuning and
/// the Fig. 2 sweeps all report one model.
SpmmSweepCost EstimateSpmmSweep(const SpmmSweepInputs& in, int block_cols,
                                const DeviceSpec& spec);

/// Converts per-warp work records into time on the modeled device.
///
/// Warps execute in waves of at most MaxActiveWarps() (Equation 1 of the
/// paper is exactly this wave count). Within a wave, warps are dealt
/// round-robin to SMs; a wave's compute time is the busiest SM's issue time,
/// its memory time is the busiest partition's queue drain time, and the wave
/// takes the max of the two (bandwidth-bound kernels hide issue latency and
/// vice versa). Launches pay a fixed driver overhead — the reason tiling the
/// *whole* matrix with one launch per tile fails (Observation 2).
class CostModel {
 public:
  explicit CostModel(const DeviceSpec& spec) : spec_(spec) {}

  LaunchEstimate EstimateLaunch(const KernelLaunch& launch) const;

  /// Estimates a sequence of launches (sums times; each pays overhead).
  LaunchEstimate EstimateLaunches(const std::vector<KernelLaunch>& launches) const;

  const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

}  // namespace tilespmv::gpusim

#endif  // TILESPMV_GPUSIM_COST_MODEL_H_
