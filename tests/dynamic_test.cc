#include <gtest/gtest.h>

#include <cmath>

#include "core/dynamic.h"
#include "gen/power_law.h"
#include "util/random.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

CsrMatrix BaseGraph(uint64_t seed = 141) {
  return GenerateRmat(3000, 24000, RmatOptions{.seed = seed});
}

void ExpectMatchesDense(const DynamicTileComposite& dyn,
                        const CsrMatrix& expected) {
  Pcg32 rng(142);
  std::vector<float> x(expected.cols);
  for (float& v : x) v = rng.NextFloat();
  std::vector<float> want, got;
  CsrMultiply(expected, x, &want);
  dyn.Multiply(x, &got);
  double max_abs = 1.0;
  for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-4 * max_abs) << i;
  }
}

TEST(DynamicTest, InitMatchesStaticKernel) {
  DeviceSpec spec;
  DynamicTileComposite dyn(spec);
  CsrMatrix a = BaseGraph();
  ASSERT_TRUE(dyn.Init(a).ok());
  EXPECT_EQ(dyn.delta_nnz(), 0);
  ExpectMatchesDense(dyn, a);
}

TEST(DynamicTest, AddedEdgesVisibleImmediately) {
  DeviceSpec spec;
  DynamicTileComposite dyn(spec);
  CsrMatrix a = BaseGraph(143);
  ASSERT_TRUE(dyn.Init(a).ok());

  std::vector<Triplet> extra = {{5, 17, 2.5f}, {100, 0, -1.0f},
                                {5, 17, 0.5f}};  // Duplicate accumulates.
  std::vector<Triplet> merged;
  for (int32_t r = 0; r < a.rows; ++r) {
    for (int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      merged.push_back(Triplet{r, a.col_idx[k], a.values[k]});
    }
  }
  for (const Triplet& t : extra) {
    ASSERT_TRUE(dyn.AddEdge(t.row, t.col, t.value).ok());
    merged.push_back(t);
  }
  EXPECT_EQ(dyn.delta_nnz(), 2);  // (5,17) coalesced in the delta.
  CsrMatrix expected =
      CsrMatrix::FromTriplets(a.rows, a.cols, std::move(merged));
  ExpectMatchesDense(dyn, expected);
}

TEST(DynamicTest, AutoRebuildAtThreshold) {
  DeviceSpec spec;
  DynamicOptions opts;
  opts.rebuild_fraction = 0.001;  // Rebuild after ~24 staged edges.
  DynamicTileComposite dyn(spec, opts);
  CsrMatrix a = BaseGraph(144);
  ASSERT_TRUE(dyn.Init(a).ok());

  Pcg32 rng(145);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(dyn.AddEdge(static_cast<int32_t>(rng.NextBounded(3000)),
                            static_cast<int32_t>(rng.NextBounded(3000)),
                            1.0f)
                    .ok());
  }
  EXPECT_GE(dyn.rebuilds(), 1);
  // After a rebuild the delta is folded into the base.
  EXPECT_GT(dyn.base_nnz(), a.nnz());
  EXPECT_LT(dyn.delta_nnz(), 30);
}

TEST(DynamicTest, DeltaCostGrowsThenRebuildRestoresIt) {
  DeviceSpec spec;
  DynamicOptions opts;
  opts.rebuild_fraction = 1.0;  // Never auto-rebuild.
  DynamicTileComposite dyn(spec, opts);
  CsrMatrix a = BaseGraph(146);
  ASSERT_TRUE(dyn.Init(a).ok());
  double clean = dyn.seconds_per_multiply();

  Pcg32 rng(147);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(dyn.AddEdge(static_cast<int32_t>(rng.NextBounded(3000)),
                            static_cast<int32_t>(rng.NextBounded(3000)),
                            0.1f)
                    .ok());
  }
  double dirty = dyn.seconds_per_multiply();
  EXPECT_GT(dirty, clean);
  ASSERT_TRUE(dyn.Rebuild().ok());
  EXPECT_EQ(dyn.delta_nnz(), 0);
  // Post-rebuild the per-multiply cost drops back near the tuned baseline
  // (the matrix grew a little, so allow some slack).
  EXPECT_LT(dyn.seconds_per_multiply(), 0.9 * dirty);
}

TEST(DynamicTest, RejectsBadEdges) {
  DeviceSpec spec;
  DynamicTileComposite dyn(spec);
  CsrMatrix a = BaseGraph(148);
  ASSERT_TRUE(dyn.Init(a).ok());
  EXPECT_FALSE(dyn.AddEdge(-1, 0, 1.0f).ok());
  EXPECT_FALSE(dyn.AddEdge(0, 999999, 1.0f).ok());
}

}  // namespace
}  // namespace tilespmv
