#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "gen/power_law.h"
#include "kernels/cpu_csr.h"
#include "kernels/spmv.h"
#include "simd/caps.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

uint32_t Bits(float f) {
  uint32_t b;
  std::memcpy(&b, &f, sizeof(b));
  return b;
}

/// Runs `kernel_name` at every runnable SIMD tier against the serial
/// CsrMultiply reference: bitwise when the kernel's contract is bitwise,
/// within the documented tolerance otherwise (docs/SIMD.md).
void CheckSimdTiersAgainstSerial(const CsrMatrix& a, const char* kernel_name) {
  DeviceSpec spec;
  std::vector<float> x(static_cast<size_t>(a.cols));
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.25f + static_cast<float>(i % 13) * 0.125f -
           static_cast<float>(i % 5) * 0.375f;
  }
  std::vector<float> want;
  CsrMultiply(a, x, &want);
  double max_abs = 1.0;
  for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));

  for (simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (!simd::DetectCaps().Supports(tier)) continue;
    ASSERT_TRUE(simd::SetTierOverride(tier).ok());
    auto kernel = CreateKernel(kernel_name, spec);
    ASSERT_TRUE(kernel->Setup(a).ok()) << kernel_name;
    std::vector<float> got;
    MultiplyOriginal(*kernel, x, &got);
    ASSERT_EQ(got.size(), want.size()) << kernel_name;
    const bool bitwise =
        kernel->determinism() == DeterminismClass::kBitwise;
    for (size_t i = 0; i < want.size(); ++i) {
      if (bitwise) {
        ASSERT_EQ(Bits(got[i]), Bits(want[i]))
            << kernel_name << " tier " << simd::TierName(tier) << " row "
            << i << ": " << got[i] << " != " << want[i];
      } else {
        ASSERT_NEAR(got[i], want[i], 2e-4 * max_abs)
            << kernel_name << " tier " << simd::TierName(tier) << " row "
            << i;
      }
    }
  }
  simd::ClearTierOverride();
}

TEST(CpuKernelTest, CacheResidentXIsFaster) {
  // Same nnz, one matrix with x inside the 1 MB L2 and one far outside:
  // the gather misses must show up in the model.
  DeviceSpec spec;
  CsrMatrix small_x = GenerateRmat(50000, 800000, RmatOptions{.seed = 181});
  CsrMatrix big_x = GenerateRmat(800000, 800000, RmatOptions{.seed = 182});
  CpuCsrKernel k1(spec), k2(spec);
  ASSERT_TRUE(k1.Setup(small_x).ok());
  ASSERT_TRUE(k2.Setup(big_x).ok());
  EXPECT_GT(k1.timing().TexHitRate(), k2.timing().TexHitRate());
  EXPECT_GT(k1.timing().gflops(), 1.5 * k2.timing().gflops());
}

TEST(CpuKernelTest, SpecParametersScaleTheModel) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(200000, 2000000, RmatOptions{.seed = 183});
  CpuSpec slow;
  CpuSpec fast;
  fast.mem_bandwidth_gbps = 4 * slow.mem_bandwidth_gbps;
  fast.clock_ghz = 4 * slow.clock_ghz;
  CpuCsrKernel k_slow(spec, slow), k_fast(spec, fast);
  ASSERT_TRUE(k_slow.Setup(a).ok());
  ASSERT_TRUE(k_fast.Setup(a).ok());
  EXPECT_NEAR(k_fast.timing().gflops() / k_slow.timing().gflops(), 4.0,
              0.2);
}

TEST(CpuKernelTest, HostLoopIsExact) {
  DeviceSpec spec;
  CpuCsrKernel kernel(spec);
  CsrMatrix a = CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 2.0f}, {0, 2, 1.0f}, {2, 1, -3.0f}});
  ASSERT_TRUE(kernel.Setup(a).ok());
  std::vector<float> y;
  kernel.Multiply({1, 2, 3}, &y);
  EXPECT_EQ(y, (std::vector<float>{5, 0, -6}));
  EXPECT_TRUE(kernel.row_permutation().empty());
  EXPECT_EQ(kernel.timing().device_bytes, 0u);  // Host kernel.
}

TEST(CpuKernelTest, EraAppropriateThroughput) {
  // The modeled Opteron must land in the sub-GFLOPS-to-~2-GFLOPS band the
  // 2008-2011 SpMV literature reports for single cores.
  DeviceSpec spec;
  CpuCsrKernel kernel(spec);
  CsrMatrix a = GenerateRmat(300000, 3000000, RmatOptions{.seed = 184});
  ASSERT_TRUE(kernel.Setup(a).ok());
  EXPECT_GT(kernel.timing().gflops(), 0.05);
  EXPECT_LT(kernel.timing().gflops(), 2.5);
}

TEST(CpuKernelTest, SimdKernelsHandleRaggedRows) {
  // Row lengths hit every branch tier of the vector CSR kernels: empty
  // rows, sub-lane rows (1..7), exact lane multiples (8, 16, 32), and
  // ragged tails (9, 17, 23, 33, 40) that exercise the masked remainders.
  const int kLens[] = {0, 1,  3,  0,  5,  7,  8,  9,  11, 15,
                       16, 17, 23, 31, 32, 33, 40, 2,  0,  6};
  const int32_t cols = 64;
  std::vector<Triplet> t;
  int32_t r = 0;
  for (int len : kLens) {
    for (int j = 0; j < len; ++j) {
      // Stride-1 walk from a per-row offset: distinct columns, no merges.
      const int32_t c = static_cast<int32_t>((r * 5 + j) % cols);
      t.push_back(Triplet{r, c,
                          0.5f + 0.25f * static_cast<float>((r + j) % 8) -
                              0.125f * static_cast<float>(j % 3)});
    }
    ++r;
  }
  CsrMatrix a = CsrMatrix::FromTriplets(r, cols, std::move(t));
  ASSERT_TRUE(a.Validate().ok());
  CheckSimdTiersAgainstSerial(a, "cpu-csr-simd");
  CheckSimdTiersAgainstSerial(a, "cpu-sell-simd");
}

TEST(CpuKernelTest, SimdKernelsHandleMatrixNarrowerThanVector) {
  // n and the x vector are both smaller than one vector of lanes; the
  // masked loads/gathers must not touch past either array.
  CsrMatrix a = CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 2.0f}, {0, 2, 1.0f}, {2, 1, -3.0f}});
  ASSERT_TRUE(a.Validate().ok());
  CheckSimdTiersAgainstSerial(a, "cpu-csr-simd");
  CheckSimdTiersAgainstSerial(a, "cpu-sell-simd");
}

}  // namespace
}  // namespace tilespmv
