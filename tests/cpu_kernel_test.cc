#include <gtest/gtest.h>

#include "gen/power_law.h"
#include "kernels/cpu_csr.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

TEST(CpuKernelTest, CacheResidentXIsFaster) {
  // Same nnz, one matrix with x inside the 1 MB L2 and one far outside:
  // the gather misses must show up in the model.
  DeviceSpec spec;
  CsrMatrix small_x = GenerateRmat(50000, 800000, RmatOptions{.seed = 181});
  CsrMatrix big_x = GenerateRmat(800000, 800000, RmatOptions{.seed = 182});
  CpuCsrKernel k1(spec), k2(spec);
  ASSERT_TRUE(k1.Setup(small_x).ok());
  ASSERT_TRUE(k2.Setup(big_x).ok());
  EXPECT_GT(k1.timing().TexHitRate(), k2.timing().TexHitRate());
  EXPECT_GT(k1.timing().gflops(), 1.5 * k2.timing().gflops());
}

TEST(CpuKernelTest, SpecParametersScaleTheModel) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(200000, 2000000, RmatOptions{.seed = 183});
  CpuSpec slow;
  CpuSpec fast;
  fast.mem_bandwidth_gbps = 4 * slow.mem_bandwidth_gbps;
  fast.clock_ghz = 4 * slow.clock_ghz;
  CpuCsrKernel k_slow(spec, slow), k_fast(spec, fast);
  ASSERT_TRUE(k_slow.Setup(a).ok());
  ASSERT_TRUE(k_fast.Setup(a).ok());
  EXPECT_NEAR(k_fast.timing().gflops() / k_slow.timing().gflops(), 4.0,
              0.2);
}

TEST(CpuKernelTest, HostLoopIsExact) {
  DeviceSpec spec;
  CpuCsrKernel kernel(spec);
  CsrMatrix a = CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 2.0f}, {0, 2, 1.0f}, {2, 1, -3.0f}});
  ASSERT_TRUE(kernel.Setup(a).ok());
  std::vector<float> y;
  kernel.Multiply({1, 2, 3}, &y);
  EXPECT_EQ(y, (std::vector<float>{5, 0, -6}));
  EXPECT_TRUE(kernel.row_permutation().empty());
  EXPECT_EQ(kernel.timing().device_bytes, 0u);  // Host kernel.
}

TEST(CpuKernelTest, EraAppropriateThroughput) {
  // The modeled Opteron must land in the sub-GFLOPS-to-~2-GFLOPS band the
  // 2008-2011 SpMV literature reports for single cores.
  DeviceSpec spec;
  CpuCsrKernel kernel(spec);
  CsrMatrix a = GenerateRmat(300000, 3000000, RmatOptions{.seed = 184});
  ASSERT_TRUE(kernel.Setup(a).ok());
  EXPECT_GT(kernel.timing().gflops(), 0.05);
  EXPECT_LT(kernel.timing().gflops(), 2.5);
}

}  // namespace
}  // namespace tilespmv
