#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "gen/power_law.h"
#include "graph/pagerank.h"
#include "multigpu/cluster.h"
#include "multigpu/distributed_pagerank.h"
#include "multigpu/partition.h"

namespace tilespmv {
namespace {

CsrMatrix TestGraph(uint64_t seed = 91) {
  return GenerateRmat(4000, 40000, RmatOptions{.seed = seed});
}

class PartitionSchemeTest : public ::testing::TestWithParam<PartitionScheme> {
};

TEST_P(PartitionSchemeTest, EveryRowOwnedExactlyOnce) {
  CsrMatrix a = TestGraph();
  for (int parts : {1, 2, 3, 7, 10}) {
    RowPartition p = PartitionRows(a, parts, GetParam());
    ASSERT_EQ(p.num_parts(), parts);
    std::set<int32_t> seen;
    for (const auto& rows : p.owner_rows) {
      for (int32_t r : rows) {
        EXPECT_TRUE(seen.insert(r).second) << "row " << r << " owned twice";
      }
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(a.rows));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionSchemeTest,
                         ::testing::Values(PartitionScheme::kBlockRows,
                                           PartitionScheme::kBitonic,
                                           PartitionScheme::kRoundRobin),
                         [](const auto& info) {
                           switch (info.param) {
                             case PartitionScheme::kBlockRows:
                               return "block_rows";
                             case PartitionScheme::kBitonic:
                               return "bitonic";
                             case PartitionScheme::kRoundRobin:
                               return "round_robin";
                           }
                           return "unknown";
                         });

TEST(BitonicTest, BalancesBothRowsAndNnzOnPowerLaw) {
  CsrMatrix a = GenerateRmat(20000, 300000, RmatOptions{.seed = 92});
  RowPartition bitonic = PartitionRows(a, 8, PartitionScheme::kBitonic);
  PartitionBalance b = AnalyzeBalance(a, bitonic);
  EXPECT_LT(b.nnz_imbalance, 1.05);
  EXPECT_LT(b.row_imbalance, 1.05);

  // Round-robin balances rows but not nnz on skewed degrees.
  RowPartition rr = PartitionRows(a, 8, PartitionScheme::kRoundRobin);
  PartitionBalance rb = AnalyzeBalance(a, rr);
  EXPECT_GT(rb.nnz_imbalance, b.nnz_imbalance);
}

TEST(ExtractRowsTest, LocalMatrixMatchesSource) {
  CsrMatrix a = TestGraph(93);
  std::vector<int32_t> rows = {5, 17, 100, 3999};
  CsrMatrix local = ExtractRows(a, rows);
  EXPECT_EQ(local.rows, 4);
  EXPECT_EQ(local.cols, a.cols);
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(local.RowLength(static_cast<int32_t>(i)),
              a.RowLength(rows[i]));
  }
}

TEST(AllGatherTest, GrowsWithNodesAndVectorSize) {
  ClusterSpec cluster;
  EXPECT_DOUBLE_EQ(AllGatherSeconds(1000000, 1, cluster), 0.0);
  double t2 = AllGatherSeconds(1000000, 2, cluster);
  double t8 = AllGatherSeconds(1000000, 8, cluster);
  EXPECT_GT(t8, t2);
  EXPECT_GT(AllGatherSeconds(2000000, 4, cluster),
            AllGatherSeconds(1000000, 4, cluster));
}

TEST(DistributedPageRankTest, MatchesSingleNodeResult) {
  CsrMatrix a = TestGraph(94);
  ClusterSpec cluster;
  DistributedPageRankOptions opts;
  opts.kernel_name = "hyb";
  opts.pagerank.max_iterations = 40;
  Result<DistributedRunResult> dist =
      RunDistributedPageRank(a, 4, opts, cluster);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();

  auto kernel = CreateKernel("hyb", cluster.gpu);
  PageRankOptions popts;
  popts.max_iterations = 40;
  Result<IterativeResult> single = RunPageRank(a, kernel.get(), popts);
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(dist.value().result.size(), single.value().result.size());
  for (size_t i = 0; i < dist.value().result.size(); ++i) {
    EXPECT_NEAR(dist.value().result[i], single.value().result[i], 1e-5);
  }
}

TEST(DistributedPageRankTest, TileCompositeWorksAsLocalKernel) {
  CsrMatrix a = TestGraph(95);
  ClusterSpec cluster;
  DistributedPageRankOptions opts;
  opts.kernel_name = "tile-composite";
  opts.pagerank.max_iterations = 30;
  Result<DistributedRunResult> dist =
      RunDistributedPageRank(a, 3, opts, cluster);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  std::vector<double> ref = PageRankReference(a, 0.85, 30);
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(dist.value().result[i], ref[i], 1e-4 + 0.02 * ref[i]);
  }
}

TEST(DistributedPageRankTest, ComputeShrinksCommGrowsWithNodes) {
  CsrMatrix a = GenerateRmat(30000, 500000, RmatOptions{.seed = 96});
  ClusterSpec cluster;
  DistributedPageRankOptions opts;
  opts.kernel_name = "hyb";
  opts.run_functional = false;
  opts.pagerank.max_iterations = 1;
  Result<DistributedRunResult> r2 = RunDistributedPageRank(a, 2, opts, cluster);
  Result<DistributedRunResult> r8 = RunDistributedPageRank(a, 8, opts, cluster);
  ASSERT_TRUE(r2.ok() && r8.ok());
  EXPECT_LT(r8.value().compute_seconds_per_iteration,
            r2.value().compute_seconds_per_iteration);
  EXPECT_GT(r8.value().comm_seconds_per_iteration,
            r2.value().comm_seconds_per_iteration);
}

TEST(DistributedPageRankTest, MemoryGateFailsSmallConfigs) {
  // Shrink the modeled GPU memory so the graph only fits when split 3+ ways
  // — the Figure 4 "sk-2005 starts at 3 GPUs" effect.
  CsrMatrix a = GenerateRmat(30000, 600000, RmatOptions{.seed = 97});
  ClusterSpec cluster;
  cluster.gpu.global_mem_bytes = 4 << 20;  // 4 MB.
  DistributedPageRankOptions opts;
  opts.kernel_name = "coo";
  opts.run_functional = false;
  opts.pagerank.max_iterations = 1;
  Result<DistributedRunResult> r1 = RunDistributedPageRank(a, 1, opts, cluster);
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kResourceExhausted);
  Result<DistributedRunResult> r4 = RunDistributedPageRank(a, 4, opts, cluster);
  EXPECT_TRUE(r4.ok()) << r4.status().ToString();
}

TEST(DistributedPageRankTest, RejectsBadArguments) {
  CsrMatrix a = TestGraph(98);
  ClusterSpec cluster;
  DistributedPageRankOptions opts;
  EXPECT_FALSE(RunDistributedPageRank(a, 0, opts, cluster).ok());
  opts.kernel_name = "no-such-kernel";
  EXPECT_FALSE(RunDistributedPageRank(a, 2, opts, cluster).ok());
}

}  // namespace
}  // namespace tilespmv
