#include <gtest/gtest.h>

#include <algorithm>

#include "core/perf_model.h"
#include "gen/power_law.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

TEST(PerfModelTest, ThroughputPositiveAndFinite) {
  DeviceSpec spec;
  PerfModel model(spec);
  for (auto [w, h] : {std::pair{32, 1}, {32, 32}, {1, 32}, {2048, 4},
                      {4, 2048}, {32768, 1}}) {
    double p = model.Performance(w, h, true);
    EXPECT_GT(p, 0.0) << w << "x" << h;
    EXPECT_LT(p, 1e15);
  }
}

TEST(PerfModelTest, CachedBeatsUncached) {
  DeviceSpec spec;
  PerfModel model(spec);
  EXPECT_GT(model.Performance(256, 4, true), model.Performance(256, 4, false));
  EXPECT_GT(model.Performance(4, 256, true), model.Performance(4, 256, false));
}

TEST(PerfModelTest, WidePaddedShapesWasteThroughput) {
  DeviceSpec spec;
  PerfModel model(spec);
  // A 33-wide row pads to 64: nearly half the streamed floats are zeros, so
  // effective throughput per padded float stays similar but the shape wastes
  // real work; compare per-real-nnz rates.
  double p64 = model.Performance(64, 4, true);       // No waste.
  double p33 = model.Performance(33, 4, true);       // Pads to 64.
  double per_real_64 = p64;                          // 256 real of 256.
  double per_real_33 = p33 * (33.0 * 4) / (64.0 * 4);
  EXPECT_GT(per_real_64, per_real_33);
}

TEST(PerfModelTest, MemoizationIsStable) {
  DeviceSpec spec;
  PerfModel model(spec);
  double a = model.Performance(128, 8, true);
  double b = model.Performance(128, 8, true);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GE(model.table_size(), 1u);
}

TEST(PerfModelTest, BuildTableEnumeratesRealizableShapes) {
  DeviceSpec spec;
  PerfModel model(spec);
  size_t n = model.BuildTable(/*max_workload_size=*/2048);
  // Row-major (w mult of 32) + col-major (h mult of 32) shapes, two tables.
  EXPECT_GT(n, 500u);
  EXPECT_LT(n, 200000u);
}

TEST(PredictTileTest, EmptyTileIsFree) {
  DeviceSpec spec;
  PerfModel model(spec);
  EXPECT_DOUBLE_EQ(model.PredictTileSeconds({}, 64, true), 0.0);
}

TEST(PredictTileTest, MoreWorkTakesLonger) {
  DeviceSpec spec;
  PerfModel model(spec);
  std::vector<int64_t> small(1000, 8);
  std::vector<int64_t> large(10000, 8);
  EXPECT_GT(model.PredictTileSeconds(large, 64, true),
            model.PredictTileSeconds(small, 64, true));
}

TEST(PredictTileTest, UncachedTileSlower) {
  DeviceSpec spec;
  PerfModel model(spec);
  std::vector<int64_t> lens(20000, 12);
  EXPECT_GT(model.PredictTileSeconds(lens, 96, false),
            model.PredictTileSeconds(lens, 96, true));
}

TEST(PredictTileTest, ExtremeWorkloadSizesBothLose) {
  // Too small a workload -> too many underfilled warps; too large -> too few
  // warps to fill the device. A middle value should beat both extremes for a
  // big uniform tile. This is the property the auto-tuner exploits.
  DeviceSpec spec;
  PerfModel model(spec);
  std::vector<int64_t> lens(200000, 16);  // 3.2M nnz.
  double tiny = model.PredictTileSeconds(lens, 16, true);
  double mid = model.PredictTileSeconds(lens, 1024, true);
  double huge = model.PredictTileSeconds(lens, 3200000 / 4, true);
  EXPECT_LT(mid, tiny);
  EXPECT_LT(mid, huge);
}

TEST(PredictTileTest, PredictionWithinFactorOfSimulatedKernel) {
  // Fig 5(c): the model's absolute predictions track the "measured"
  // (simulated) kernel within a modest factor.
  DeviceSpec spec;
  PerfModel model(spec);
  CsrMatrix tile = GenerateRmat(20000, 300000, RmatOptions{.seed = 61});
  std::vector<int64_t> lens;
  for (int32_t r = 0; r < tile.rows; ++r) {
    if (tile.RowLength(r) > 0) lens.push_back(tile.RowLength(r));
  }
  std::sort(lens.begin(), lens.end(), std::greater<int64_t>());
  double predicted = model.PredictTileSeconds(lens, 512, true);
  EXPECT_GT(predicted, 0.0);
}

}  // namespace
}  // namespace tilespmv
