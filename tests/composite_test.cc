#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/composite.h"
#include "gen/power_law.h"
#include "util/random.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

TEST(MakeWorkloadTest, RowMajorPadsWidth) {
  DeviceSpec spec;
  Workload wl = MakeWorkload(0, 40, 3, spec);  // w >= h.
  EXPECT_TRUE(wl.row_major);
  EXPECT_EQ(wl.padded_w, 64);
  EXPECT_EQ(wl.padded_h, 3);
  EXPECT_EQ(wl.PaddedFloats(), 192);
}

TEST(MakeWorkloadTest, ColumnMajorPadsHeight) {
  DeviceSpec spec;
  Workload wl = MakeWorkload(0, 3, 40, spec);  // w < h.
  EXPECT_FALSE(wl.row_major);
  EXPECT_EQ(wl.padded_w, 3);
  EXPECT_EQ(wl.padded_h, 64);
}

TEST(MakeWorkloadTest, SquareBoundaryIsRowMajor) {
  DeviceSpec spec;
  EXPECT_TRUE(MakeWorkload(0, 5, 5, spec).row_major);
}

TEST(PackTest, EveryRowInExactlyOneWorkload) {
  DeviceSpec spec;
  Pcg32 rng(51);
  std::vector<int64_t> lens;
  for (int i = 0; i < 5000; ++i) lens.push_back(1 + rng.NextBounded(300));
  std::sort(lens.begin(), lens.end(), std::greater<int64_t>());
  std::vector<Workload> wls = PackWorkloads(lens, 512, spec, true);
  int64_t covered = 0;
  int32_t next = 0;
  for (const Workload& wl : wls) {
    EXPECT_EQ(wl.first_pos, next);
    next += wl.h;
    covered += wl.h;
  }
  EXPECT_EQ(covered, static_cast<int64_t>(lens.size()));
}

TEST(PackTest, WorkloadWidthIsFirstRowLength) {
  DeviceSpec spec;
  std::vector<int64_t> lens = {100, 90, 10, 9, 8, 1, 1, 1};
  std::vector<Workload> wls = PackWorkloads(lens, 100, spec, true);
  for (const Workload& wl : wls) {
    EXPECT_EQ(wl.w, lens[wl.first_pos]);
    // Packed nnz never exceeds the workload size unless a single row does.
    int64_t packed = 0;
    for (int32_t i = wl.first_pos; i < wl.first_pos + wl.h; ++i)
      packed += lens[i];
    if (wl.h > 1) EXPECT_LE(packed, 100);
  }
}

TEST(PackTest, PaperFigure1dExample) {
  // Figure 1(d): row lengths 3, 2, 1, 1, 1, 1 with workload size 4 packs as
  // (3+... no: rows 0 and 1 -> 5 > 4, so first workload is {3}, then {2,1,1},
  // then {1,1}. The paper's fictitious 2-thread warp differs; with our
  // warp-size padding the shapes still follow w-vs-h.
  DeviceSpec spec;
  std::vector<int64_t> lens = {3, 2, 1, 1, 1, 1};
  std::vector<Workload> wls = PackWorkloads(lens, 4, spec, false);
  ASSERT_EQ(wls.size(), 3u);
  EXPECT_EQ(wls[0].h, 1);
  EXPECT_EQ(wls[1].first_pos, 1);
  EXPECT_EQ(wls[1].h, 3);   // 2 + 1 + 1 = 4 fits.
  EXPECT_EQ(wls[2].h, 2);
  EXPECT_FALSE(wls[1].row_major);  // w=2 < h=3 -> ELL-style.
}

TEST(PackTest, OffsetsStrictlyIncreaseAndCoverStorage) {
  DeviceSpec spec;
  Pcg32 rng(52);
  std::vector<int64_t> lens;
  for (int i = 0; i < 2000; ++i) lens.push_back(1 + rng.NextBounded(64));
  std::sort(lens.begin(), lens.end(), std::greater<int64_t>());
  std::vector<Workload> wls = PackWorkloads(lens, 256, spec, true);
  int64_t prev_end = 0;
  for (const Workload& wl : wls) {
    EXPECT_GE(wl.storage_offset, prev_end);
    prev_end = wl.storage_offset + wl.PaddedFloats();
  }
}

TEST(PackTest, CampingPadBreaksAlignment) {
  DeviceSpec spec;
  // Uniform rows of 512: every workload is exactly 512 floats (one row,
  // since 2*512 > 512), a multiple of 512 -> pad inserted.
  std::vector<int64_t> lens(64, 512);
  std::vector<Workload> padded = PackWorkloads(lens, 512, spec, true);
  std::vector<Workload> unpadded = PackWorkloads(lens, 512, spec, false);
  ASSERT_EQ(padded.size(), unpadded.size());
  // Without padding all workloads start 512 floats (2048 B) apart -> same
  // partition; with padding the starts drift across partitions.
  std::set<int64_t> partitions_padded, partitions_unpadded;
  for (const Workload& wl : padded)
    partitions_padded.insert((wl.storage_offset * 4 / 256) % 8);
  for (const Workload& wl : unpadded)
    partitions_unpadded.insert((wl.storage_offset * 4 / 256) % 8);
  EXPECT_EQ(partitions_unpadded.size(), 1u);
  EXPECT_GT(partitions_padded.size(), 4u);
}

TEST(CostTest, RowMajorCostScalesWithRows) {
  DeviceSpec spec;
  WorkloadCost c1 = CostOfWorkload(MakeWorkload(0, 64, 2, spec), spec);
  WorkloadCost c2 = CostOfWorkload(MakeWorkload(0, 64, 4, spec), spec);
  EXPECT_GT(c2.issue_cycles, c1.issue_cycles);
  EXPECT_EQ(c2.matrix_bytes, 2 * c1.matrix_bytes);
}

TEST(CostTest, EllStyleCheaperPerRowForShortRows) {
  DeviceSpec spec;
  // 32 rows of length 2: ELL-style (w=2, h=32) vs row-major (forced shape
  // 2x32 doesn't arise, but compare against 32 one-row CSR-vector loads).
  WorkloadCost ell = CostOfWorkload(MakeWorkload(0, 2, 32, spec), spec);
  WorkloadCost one_row = CostOfWorkload(MakeWorkload(0, 32, 1, spec), spec);
  EXPECT_LT(ell.issue_cycles, 32 * one_row.issue_cycles);
}

TEST(BuildCompositeTest, RowsRankedAndDataPreserved) {
  DeviceSpec spec;
  CsrMatrix tile = GenerateRmat(1000, 8000, RmatOptions{.seed = 53});
  CompositeTile ct = BuildComposite(tile, 256, spec, true);
  EXPECT_EQ(ct.nnz, tile.nnz());
  EXPECT_TRUE(std::is_sorted(ct.row_len.begin(), ct.row_len.end(),
                             [](int64_t a, int64_t b) { return a > b; }));
  // Sum of workload rows == occupied rows.
  int64_t rows = 0;
  for (const Workload& wl : ct.workloads) rows += wl.h;
  EXPECT_EQ(rows, ct.occupied_rows());
  // Row data matches the source matrix.
  for (size_t p = 0; p < ct.row_order.size(); ++p) {
    int32_t r = ct.row_order[p];
    ASSERT_EQ(ct.row_len[p], tile.RowLength(r));
    for (int64_t k = 0; k < ct.row_len[p]; ++k) {
      EXPECT_EQ(ct.cols[ct.row_start[p] + k],
                tile.col_idx[tile.row_ptr[r] + k]);
    }
  }
}

TEST(BuildCompositeTest, EmptyTileYieldsNoWorkloads) {
  DeviceSpec spec;
  CsrMatrix tile;
  tile.rows = 10;
  tile.cols = 10;
  tile.row_ptr.assign(11, 0);
  CompositeTile ct = BuildComposite(tile, 64, spec, true);
  EXPECT_TRUE(ct.workloads.empty());
  EXPECT_EQ(ct.total_padded_floats, 0);
}

TEST(BuildCompositeTest, PaddingOverheadBounded) {
  DeviceSpec spec;
  CsrMatrix tile = GenerateRmat(5000, 50000, RmatOptions{.seed = 54});
  CompositeTile ct = BuildComposite(tile, 2048, spec, true);
  // Composite padding should stay within a small factor of the raw nnz —
  // that is the whole point versus ELL.
  EXPECT_LT(ct.total_padded_floats, 4 * ct.nnz);
}

}  // namespace
}  // namespace tilespmv
