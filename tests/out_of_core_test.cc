#include <gtest/gtest.h>

#include "gen/power_law.h"
#include "kernels/spmv.h"
#include "multigpu/out_of_core.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

TEST(OutOfCoreTest, InCoreMatrixIsOneChunk) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(20000, 200000, RmatOptions{.seed = 51});
  Result<OutOfCoreResult> r = ModelOutOfCoreSpmv(a, "hyb", spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_chunks, 1);
  EXPECT_GT(r.value().transfer_seconds, 0.0);
}

TEST(OutOfCoreTest, SmallDeviceForcesChunking) {
  DeviceSpec spec;
  spec.global_mem_bytes = 2 << 20;  // 2 MB.
  CsrMatrix a = GenerateRmat(30000, 500000, RmatOptions{.seed = 52});
  Result<OutOfCoreResult> r = ModelOutOfCoreSpmv(a, "coo", spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().num_chunks, 2);
}

TEST(OutOfCoreTest, PcieBecomesTheBottleneck) {
  // Section 3.2's argument: the kernel sustains tens of GB/s, the bus 8.
  // Out-of-core SpMV must come out PCIe-bound with throughput well under
  // the in-core kernel's.
  DeviceSpec spec;
  spec.global_mem_bytes = 8 << 20;
  CsrMatrix a = GenerateRmat(50000, 1000000, RmatOptions{.seed = 53});
  Result<OutOfCoreResult> r = ModelOutOfCoreSpmv(a, "tile-composite", spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().pcie_bound);
  EXPECT_GT(r.value().transfer_seconds, r.value().compute_seconds);

  DeviceSpec big;  // Same kernel with everything resident, for contrast.
  auto kernel = CreateKernel("tile-composite", big);
  ASSERT_TRUE(kernel->Setup(a).ok());
  double in_core_gflops = kernel->timing().gflops();
  EXPECT_LT(r.value().gflops(), 0.6 * in_core_gflops);
}

TEST(OutOfCoreTest, VectorsAloneTooBigFails) {
  DeviceSpec spec;
  spec.global_mem_bytes = 64 << 10;  // 64 KB.
  CsrMatrix a = GenerateRmat(100000, 200000, RmatOptions{.seed = 54});
  Result<OutOfCoreResult> r = ModelOutOfCoreSpmv(a, "coo", spec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(OutOfCoreTest, UnknownKernelRejected) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(1000, 5000, RmatOptions{.seed = 55});
  EXPECT_FALSE(ModelOutOfCoreSpmv(a, "no-such-kernel", spec).ok());
}

TEST(OutOfCoreTest, FlopsAccountedOnce) {
  DeviceSpec spec;
  spec.global_mem_bytes = 4 << 20;
  CsrMatrix a = GenerateRmat(20000, 300000, RmatOptions{.seed = 56});
  Result<OutOfCoreResult> r = ModelOutOfCoreSpmv(a, "hyb", spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().flops, 2 * static_cast<uint64_t>(a.nnz()));
}

}  // namespace
}  // namespace tilespmv
