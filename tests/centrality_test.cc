#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gen/power_law.h"
#include "graph/centrality.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

CsrMatrix TestGraph(uint64_t seed = 131) {
  return GenerateRmat(1500, 12000, RmatOptions{.seed = seed});
}

TEST(KatzTest, MatchesReferenceWithExplicitAlpha) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph();
  auto kernel = CreateKernel("tile-composite", spec);
  KatzOptions opts;
  opts.alpha = 0.002f;  // Safely convergent.
  opts.tolerance = 0;
  opts.max_iterations = 25;
  Result<IterativeResult> r = RunKatz(a, kernel.get(), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<double> ref = KatzReference(a, 0.002, 1.0, 25);
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(r.value().result[i], ref[i], 1e-3 + 0.01 * ref[i]) << i;
  }
}

TEST(KatzTest, AutoAlphaConverges) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph(132);
  auto kernel = CreateKernel("hyb", spec);
  Result<IterativeResult> r = RunKatz(a, kernel.get(), KatzOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().converged);
  for (float v : r.value().result) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_GE(v, 1.0f);  // beta * 1 is a lower bound.
  }
}

TEST(KatzTest, DivergentAlphaReported) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph(133);
  auto kernel = CreateKernel("coo", spec);
  KatzOptions opts;
  opts.alpha = 0.9f;  // Far past 1 / lambda_max.
  Result<IterativeResult> r = RunKatz(a, kernel.get(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(KatzTest, HighInDegreeNodesScoreHigh) {
  // Star: everything points at node 0.
  std::vector<Triplet> t;
  for (int32_t v = 1; v < 400; ++v) t.push_back({v, 0, 1.0f});
  CsrMatrix a = CsrMatrix::FromTriplets(400, 400, std::move(t));
  DeviceSpec spec;
  auto kernel = CreateKernel("hyb", spec);
  Result<IterativeResult> r = RunKatz(a, kernel.get(), KatzOptions{});
  ASSERT_TRUE(r.ok());
  for (int32_t v = 1; v < 400; ++v) {
    ASSERT_GT(r.value().result[0], r.value().result[v]);
  }
}

TEST(SalsaTest, ScoresNormalizedAndConsistentAcrossKernels) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph(134);
  auto k1 = CreateKernel("cpu-csr", spec);
  auto k2 = CreateKernel("tile-composite", spec);
  Result<SalsaScores> r1 = RunSalsa(a, k1.get(), SalsaOptions{});
  Result<SalsaScores> r2 = RunSalsa(a, k2.get(), SalsaOptions{});
  ASSERT_TRUE(r1.ok() && r2.ok());
  double sum_a = 0;
  for (float v : r1.value().authority) sum_a += std::fabs(v);
  EXPECT_NEAR(sum_a, 1.0, 1e-3);
  for (size_t i = 0; i < r1.value().authority.size(); ++i) {
    ASSERT_NEAR(r1.value().authority[i], r2.value().authority[i], 2e-4) << i;
    ASSERT_NEAR(r1.value().hub[i], r2.value().hub[i], 2e-4) << i;
  }
}

TEST(SalsaTest, AuthorityFollowsInDegreeWithinComponent) {
  // One component: pages 2..51 cite both 0 and 1; pages 52..101 cite only
  // 0. SALSA authority within a component is proportional to in-degree, so
  // node 0 (in-degree 100) outranks node 1 (in-degree 50) ~2:1.
  std::vector<Triplet> t;
  for (int32_t v = 2; v < 52; ++v) {
    t.push_back({v, 0, 1.0f});
    t.push_back({v, 1, 1.0f});
  }
  for (int32_t v = 52; v < 102; ++v) t.push_back({v, 0, 1.0f});
  CsrMatrix a = CsrMatrix::FromTriplets(102, 102, std::move(t));
  DeviceSpec spec;
  auto kernel = CreateKernel("coo", spec);
  Result<SalsaScores> r = RunSalsa(a, kernel.get(), SalsaOptions{});
  ASSERT_TRUE(r.ok());
  float a0 = r.value().authority[0];
  float a1 = r.value().authority[1];
  EXPECT_GT(a1, 0.0f);
  EXPECT_NEAR(a0 / a1, 2.0f, 0.2f);
}

TEST(SalsaTest, RectangularRejected) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmatRect(100, 200, 500, RmatOptions{.seed = 135});
  auto kernel = CreateKernel("coo", spec);
  EXPECT_FALSE(RunSalsa(a, kernel.get(), SalsaOptions{}).ok());
  EXPECT_FALSE(RunKatz(a, kernel.get(), KatzOptions{}).ok());
}

}  // namespace
}  // namespace tilespmv
