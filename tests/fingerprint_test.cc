// Tests for the CSR content fingerprint that keys the serving plan cache:
// identical content must agree, and any structural difference — edited
// values, permuted entries, changed dimensions — must (with overwhelming
// probability) disagree.
#include <gtest/gtest.h>

#include <utility>

#include "gen/power_law.h"
#include "sparse/csr.h"

namespace tilespmv {
namespace {

CsrMatrix TestGraph(uint64_t seed = 151) {
  return GenerateRmat(2500, 20000, RmatOptions{.seed = seed});
}

TEST(FingerprintCsrTest, IdenticalContentAgrees) {
  CsrMatrix a = TestGraph();
  CsrMatrix b = TestGraph();
  EXPECT_EQ(FingerprintCsr(a), FingerprintCsr(b));

  CsrMatrix copy = a;
  EXPECT_EQ(FingerprintCsr(a), FingerprintCsr(copy));
}

TEST(FingerprintCsrTest, DifferentGraphsDisagree) {
  EXPECT_NE(FingerprintCsr(TestGraph(151)), FingerprintCsr(TestGraph(152)));
}

TEST(FingerprintCsrTest, SingleValueEditDisagrees) {
  CsrMatrix a = TestGraph();
  CsrMatrix b = a;
  b.values[b.values.size() / 2] += 1.0f;
  EXPECT_NE(FingerprintCsr(a), FingerprintCsr(b));
}

TEST(FingerprintCsrTest, SingleColumnEditDisagrees) {
  CsrMatrix a = TestGraph();
  CsrMatrix b = a;
  // Move one entry to a different column (stays in range; ordering within
  // the row is irrelevant to the hash, which covers raw bytes).
  b.col_idx[0] = (b.col_idx[0] + 1) % b.cols;
  EXPECT_NE(FingerprintCsr(a), FingerprintCsr(b));
}

TEST(FingerprintCsrTest, PermutedEntriesDisagree) {
  CsrMatrix a = TestGraph();
  // Find a row with at least two entries and swap them (values too): the
  // logical matrix is unchanged, but the stored layout — what preprocessing
  // consumes — is not, so the fingerprint must differ.
  CsrMatrix b = a;
  for (int32_t r = 0; r < b.rows; ++r) {
    int64_t lo = b.row_ptr[r], hi = b.row_ptr[r + 1];
    if (hi - lo >= 2 && b.col_idx[lo] != b.col_idx[lo + 1]) {
      std::swap(b.col_idx[lo], b.col_idx[lo + 1]);
      std::swap(b.values[lo], b.values[lo + 1]);
      break;
    }
  }
  EXPECT_NE(FingerprintCsr(a), FingerprintCsr(b));
}

TEST(FingerprintCsrTest, ResizedMatrixDisagrees) {
  CsrMatrix a = TestGraph();
  // Append one empty row: same nnz, same entry arrays, different shape.
  CsrMatrix b = a;
  b.rows += 1;
  b.row_ptr.push_back(b.row_ptr.back());
  ASSERT_EQ(b.Validate().code(), StatusCode::kOk);
  EXPECT_NE(FingerprintCsr(a), FingerprintCsr(b));
}

TEST(FingerprintCsrTest, DimensionsAloneDistinguishEmptyMatrices) {
  CsrMatrix a;
  a.rows = 3;
  a.cols = 3;
  a.row_ptr.assign(4, 0);
  CsrMatrix b;
  b.rows = 4;
  b.cols = 4;
  b.row_ptr.assign(5, 0);
  EXPECT_NE(FingerprintCsr(a), FingerprintCsr(b));
}

}  // namespace
}  // namespace tilespmv
