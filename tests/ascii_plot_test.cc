#include <gtest/gtest.h>

#include <cmath>

#include "util/ascii_plot.h"

namespace tilespmv {
namespace {

TEST(LogLogHistogramTest, BinsDoubleAndCountsMatch) {
  // Degrees: 3x1, 2x2, 1x5, 1x100.
  std::string plot = LogLogHistogram({1, 1, 1, 2, 2, 5, 100});
  EXPECT_NE(plot.find("1-1"), std::string::npos);
  EXPECT_NE(plot.find(" 3\n"), std::string::npos);   // Count of the 1-bin.
  EXPECT_NE(plot.find("4-7"), std::string::npos);    // 5 falls here.
  EXPECT_NE(plot.find("64-127"), std::string::npos); // 100 falls here.
}

TEST(LogLogHistogramTest, EmptyAndZeroInputs) {
  EXPECT_NE(LogLogHistogram({}).find("no non-zero"), std::string::npos);
  EXPECT_NE(LogLogHistogram({0, 0}).find("no non-zero"), std::string::npos);
}

TEST(LogLogHistogramTest, BarsBoundedByWidth) {
  std::vector<int64_t> lengths(100000, 1);
  std::string plot = LogLogHistogram(lengths, 40);
  // No line's bar exceeds the width (+ label slack).
  size_t pos = 0;
  while ((pos = plot.find('|', pos)) != std::string::npos) {
    size_t end = plot.find('\n', pos);
    size_t hashes = 0;
    for (size_t i = pos; i < end; ++i) {
      if (plot[i] == '#') ++hashes;
    }
    EXPECT_LE(hashes, 40u);
    pos = end;
  }
}

TEST(LogSparklineTest, GeometricDecayRampsDown) {
  std::vector<double> decay;
  for (int i = 0; i < 20; ++i) decay.push_back(std::pow(0.5, i));
  std::string line = LogSparkline(decay);
  // First char is the densest level, and the annotation carries the range.
  EXPECT_EQ(line[0], '#');
  EXPECT_NE(line.find("log scale"), std::string::npos);
}

TEST(LogSparklineTest, DegenerateInputs) {
  EXPECT_NE(LogSparkline({}).find("empty"), std::string::npos);
  EXPECT_NE(LogSparkline({0.0, 0.0}).find("all zero"), std::string::npos);
  // A constant series renders without crashing.
  std::string flat = LogSparkline({1.0, 1.0, 1.0});
  EXPECT_FALSE(flat.empty());
}

}  // namespace
}  // namespace tilespmv
