#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "gen/power_law.h"
#include "gen/structured.h"
#include "kernels/spmv.h"
#include "util/random.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

std::vector<float> RandomVector(int32_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> x(n);
  for (float& v : x) v = rng.NextFloat();
  return x;
}

struct TestMatrix {
  const char* name;
  CsrMatrix (*make)();
};

CsrMatrix MakePowerLaw() {
  return GenerateRmat(3000, 24000, RmatOptions{.seed = 101});
}
CsrMatrix MakeBanded() { return GenerateBanded(2000, 6, 102); }
CsrMatrix MakeDenseSmall() { return GenerateDense(96); }
CsrMatrix MakeUniformRandom() {
  Pcg32 rng(103);
  std::vector<Triplet> t;
  for (int i = 0; i < 12000; ++i) {
    t.push_back(Triplet{static_cast<int32_t>(rng.NextBounded(1500)),
                        static_cast<int32_t>(rng.NextBounded(1500)),
                        rng.NextFloat() + 0.1f});
  }
  return CsrMatrix::FromTriplets(1500, 1500, std::move(t));
}
CsrMatrix MakeRect() {
  return GenerateRmatRect(700, 2500, 8000, RmatOptions{.seed = 104});
}
CsrMatrix MakeWithEmptyRows() {
  // Rows 0 and last empty; scattered entries elsewhere.
  std::vector<Triplet> t;
  for (int32_t r = 1; r < 199; r += 2) {
    t.push_back(Triplet{r, (r * 17) % 200, 1.5f});
    t.push_back(Triplet{r, (r * 31) % 200, -0.5f});
  }
  return CsrMatrix::FromTriplets(200, 200, std::move(t));
}

// Kernels expected to set up successfully on every test matrix.
const char* const kRobustKernels[] = {
    "cpu-csr",   "csr",  "csr-vector",   "bsk-bdw",  "coo", "hyb",
    "merge-csr", "csr5", "sell-c-sigma", "tile-coo", "tile-composite"};

class KernelCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

const TestMatrix kMatrices[] = {
    {"powerlaw", MakePowerLaw}, {"banded", MakeBanded},
    {"dense", MakeDenseSmall},  {"uniform", MakeUniformRandom},
    {"rect", MakeRect},         {"empty_rows", MakeWithEmptyRows},
};

TEST_P(KernelCorrectnessTest, MatchesReference) {
  const char* kernel_name = std::get<0>(GetParam());
  const TestMatrix& tm = kMatrices[std::get<1>(GetParam())];
  CsrMatrix a = tm.make();
  DeviceSpec spec;
  std::unique_ptr<SpMVKernel> kernel = CreateKernel(kernel_name, spec);
  ASSERT_NE(kernel, nullptr);
  Status st = kernel->Setup(a);
  ASSERT_TRUE(st.ok()) << st.ToString();

  std::vector<float> x = RandomVector(a.cols, 105);
  std::vector<float> want;
  CsrMultiply(a, x, &want);
  std::vector<float> got;
  MultiplyOriginal(*kernel, x, &got);
  ASSERT_EQ(got.size(), want.size());
  double max_abs = 0;
  for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-4 * std::max(1.0, max_abs))
        << "row " << i << " kernel " << kernel_name << " matrix " << tm.name;
  }
}

TEST_P(KernelCorrectnessTest, TimingIsPopulated) {
  const char* kernel_name = std::get<0>(GetParam());
  const TestMatrix& tm = kMatrices[std::get<1>(GetParam())];
  CsrMatrix a = tm.make();
  DeviceSpec spec;
  std::unique_ptr<SpMVKernel> kernel = CreateKernel(kernel_name, spec);
  ASSERT_TRUE(kernel->Setup(a).ok());
  const KernelTiming& t = kernel->timing();
  EXPECT_GT(t.seconds, 0.0) << kernel_name;
  EXPECT_EQ(t.flops, 2 * static_cast<uint64_t>(a.nnz()));
  EXPECT_GT(t.useful_bytes, 0u);
  EXPECT_GT(t.gflops(), 0.0);
  // Nothing in this model should beat 100x the device's arithmetic rate.
  EXPECT_LT(t.gflops(), 1000.0) << kernel_name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllMatrices, KernelCorrectnessTest,
    ::testing::Combine(::testing::ValuesIn(kRobustKernels),
                       ::testing::Range(0, 6)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, int>>& info) {
      std::string s = std::string(std::get<0>(info.param)) + "_" +
                      kMatrices[std::get<1>(info.param)].name;
      std::replace(s.begin(), s.end(), '-', '_');
      return s;
    });

TEST(KernelRegistryTest, AllNamesCreate) {
  DeviceSpec spec;
  for (const std::string& name : AllKernelNames()) {
    EXPECT_NE(CreateKernel(name, spec), nullptr) << name;
  }
  EXPECT_EQ(CreateKernel("bogus", spec), nullptr);
}

TEST(KernelFailureTest, EllFailsOnPowerLaw) {
  // A hub of half a million out-links in a million-node graph (Flickr-scale
  // max degree): ELL pads every row to the hub's width and blows device
  // memory.
  DeviceSpec spec;
  auto kernel = CreateKernel("ell", spec);
  std::vector<Triplet> t;
  const int32_t n = 1000000;
  for (int32_t c = 0; c < 500000; ++c) t.push_back({0, c, 1.0f});
  for (int32_t r = 1; r < n; ++r) t.push_back({r, (r * 37) % n, 1.0f});
  CsrMatrix a = CsrMatrix::FromTriplets(n, n, std::move(t));
  Status st = kernel->Setup(a);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(KernelFailureTest, DiaFailsOnPowerLaw) {
  DeviceSpec spec;
  auto kernel = CreateKernel("dia", spec);
  CsrMatrix a = MakePowerLaw();
  Status st = kernel->Setup(a);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnsupportedFormat);
}

TEST(KernelFailureTest, PktFailsOnPowerLaw) {
  // Real power-law graphs have hubs whose neighbor set alone exceeds the
  // 16 KB shared-memory packet budget (Flickr's max degree is in the tens of
  // thousands); the packet builder must refuse.
  DeviceSpec spec;
  auto kernel = CreateKernel("pkt", spec);
  CsrMatrix base = GenerateRmat(1 << 15, 400000, RmatOptions{.seed = 107});
  std::vector<Triplet> t;
  for (int32_t r = 0; r < base.rows; ++r) {
    for (int64_t k = base.row_ptr[r]; k < base.row_ptr[r + 1]; ++k) {
      t.push_back({r, base.col_idx[k], base.values[k]});
    }
  }
  for (int32_t c = 0; c < 8192; ++c) t.push_back({77, c, 1.0f});  // Hub.
  CsrMatrix a = CsrMatrix::FromTriplets(base.rows, base.cols, std::move(t));
  Status st = kernel->Setup(a);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnsupportedFormat);
}

TEST(KernelFailureTest, DiaAndEllWorkOnBanded) {
  DeviceSpec spec;
  CsrMatrix a = MakeBanded();
  for (const char* name : {"dia", "ell"}) {
    auto kernel = CreateKernel(name, spec);
    Status st = kernel->Setup(a);
    ASSERT_TRUE(st.ok()) << name << ": " << st.ToString();
    std::vector<float> x = RandomVector(a.cols, 108);
    std::vector<float> want, got;
    CsrMultiply(a, x, &want);
    MultiplyOriginal(*kernel, x, &got);
    for (size_t i = 0; i < want.size(); ++i)
      ASSERT_NEAR(got[i], want[i], 1e-3) << name;
  }
}

TEST(KernelFailureTest, PktWorksOnBlockedMatrix) {
  DeviceSpec spec;
  CsrMatrix a = GenerateProtein(4000, 100, 1.0, 109);
  auto kernel = CreateKernel("pkt", spec);
  Status st = kernel->Setup(a);
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::vector<float> x = RandomVector(a.cols, 110);
  std::vector<float> want, got;
  CsrMultiply(a, x, &want);
  MultiplyOriginal(*kernel, x, &got);
  double max_abs = 1.0;
  for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));
  for (size_t i = 0; i < want.size(); ++i)
    ASSERT_NEAR(got[i], want[i], 1e-4 * max_abs);
}

TEST(KernelShapeTest, PowerLawRankingMatchesFigure2) {
  // On a power-law matrix the paper's ordering must emerge:
  // tile-composite > tile-coo > hyb >= coo > csr-vector-ish > csr, and every
  // GPU kernel beats the CPU baseline.
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(100000, 1200000, RmatOptions{.seed = 111});
  auto gf = [&](const char* name) {
    auto k = CreateKernel(name, spec);
    Status st = k->Setup(a);
    EXPECT_TRUE(st.ok()) << name << ": " << st.ToString();
    return k->timing().gflops();
  };
  double cpu = gf("cpu-csr");
  double csr = gf("csr");
  double coo = gf("coo");
  double hyb = gf("hyb");
  double tile_coo = gf("tile-coo");
  double tile_comp = gf("tile-composite");
  EXPECT_GT(tile_comp, tile_coo);
  EXPECT_GT(tile_coo, coo);
  EXPECT_GT(hyb, csr);
  EXPECT_GT(coo, cpu);
  EXPECT_GT(tile_comp, 1.2 * hyb);  // The headline speedup direction.
  EXPECT_GT(tile_comp, 5 * cpu);    // GPU >> CPU.
}

TEST(KernelShapeTest, TextureCacheHitsHigherWithTiling) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(200000, 1600000, RmatOptions{.seed = 112});
  auto coo = CreateKernel("coo", spec);
  ASSERT_TRUE(coo->Setup(a).ok());
  auto tile = CreateKernel("tile-coo", spec);
  ASSERT_TRUE(tile->Setup(a).ok());
  EXPECT_GT(tile->timing().TexHitRate(), coo->timing().TexHitRate());
}

TEST(KernelShapeTest, MultiplyOriginalIdentityForNonPermutingKernels) {
  DeviceSpec spec;
  auto kernel = CreateKernel("hyb", spec);
  CsrMatrix a = MakeUniformRandom();
  ASSERT_TRUE(kernel->Setup(a).ok());
  EXPECT_TRUE(kernel->row_permutation().empty());
  EXPECT_TRUE(kernel->col_permutation().empty());
}

TEST(KernelShapeTest, TileKernelsRelabelSquareMatricesSymmetrically) {
  DeviceSpec spec;
  auto kernel = CreateKernel("tile-composite", spec);
  CsrMatrix a = MakePowerLaw();
  ASSERT_TRUE(kernel->Setup(a).ok());
  EXPECT_EQ(kernel->row_permutation(), kernel->col_permutation());
  EXPECT_TRUE(IsValidPermutation(kernel->row_permutation()));
}

TEST(KernelShapeTest, TileKernelsOnlyPermuteColumnsOfRectangular) {
  DeviceSpec spec;
  auto kernel = CreateKernel("tile-composite", spec);
  CsrMatrix a = MakeRect();
  ASSERT_TRUE(kernel->Setup(a).ok());
  EXPECT_TRUE(kernel->row_permutation().empty());
  EXPECT_FALSE(kernel->col_permutation().empty());
}

TEST(CpuKernelTest, SlowerThanGpuAndBandwidthBound) {
  DeviceSpec spec;
  CsrMatrix a = MakePowerLaw();
  auto cpu = CreateKernel("cpu-csr", spec);
  ASSERT_TRUE(cpu->Setup(a).ok());
  EXPECT_LT(cpu->timing().gflops(), 2.0);
  EXPECT_GT(cpu->timing().gflops(), 0.01);
}

}  // namespace
}  // namespace tilespmv
