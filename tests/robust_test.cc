// Tests for the robustness subsystem (docs/ROBUSTNESS.md): the fault
// injector's spec grammar and deterministic firing, cooperative cancellation
// tokens, the brownout ladder controller, and the numerical-health guards.
// The engine-level fault-injection and chaos tests at the bottom require a
// -DTILESPMV_FAULTS=ON build and skip themselves elsewhere; CI runs them
// under AddressSanitizer (chaos job) and ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gen/power_law.h"
#include "graph/power_method.h"
#include "robust/brownout.h"
#include "robust/cancel.h"
#include "robust/fault_injection.h"
#include "serve/engine.h"
#include "util/status.h"

namespace tilespmv {
namespace {

using robust::BrownoutController;
using robust::BrownoutOptions;
using robust::CancelToken;
using robust::FaultInjector;
using robust::FaultPointStats;

// --- FaultInjector: spec grammar and firing semantics (always compiled;
// these drive a local injector instance, not the process-global one). ---

TEST(FaultInjectorTest, DisarmedByDefault) {
  FaultInjector fi;
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.ShouldFire("any/point"));
  EXPECT_EQ(fi.fires_total(), 0u);
}

TEST(FaultInjectorTest, AlwaysRuleFiresEveryHit) {
  FaultInjector fi;
  ASSERT_EQ(fi.Configure("io/read:always").code(), StatusCode::kOk);
  EXPECT_TRUE(fi.armed());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(fi.ShouldFire("io/read"));
  EXPECT_FALSE(fi.ShouldFire("other/point"));
  EXPECT_EQ(fi.fires_total(), 3u);

  std::vector<FaultPointStats> stats = fi.Stats();
  auto it = std::find_if(stats.begin(), stats.end(),
                         [](const FaultPointStats& s) {
                           return s.point == "io/read";
                         });
  ASSERT_NE(it, stats.end());
  EXPECT_EQ(it->hits, 3u);
  EXPECT_EQ(it->fires, 3u);
}

TEST(FaultInjectorTest, BarePointNameMeansAlways) {
  FaultInjector fi;
  ASSERT_EQ(fi.Configure("plan_cache/build").code(), StatusCode::kOk);
  EXPECT_TRUE(fi.ShouldFire("plan_cache/build"));
}

TEST(FaultInjectorTest, NthRuleFiresExactlyOnThatHit) {
  FaultInjector fi;
  ASSERT_EQ(fi.Configure("p:n=3").code(), StatusCode::kOk);
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(fi.ShouldFire("p"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false}));
  EXPECT_EQ(fi.fires_total(), 1u);
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicForSeed) {
  constexpr char kSpec[] = "p:p=0.5;seed=42";
  constexpr int kHits = 200;
  FaultInjector a, b;
  ASSERT_EQ(a.Configure(kSpec).code(), StatusCode::kOk);
  ASSERT_EQ(b.Configure(kSpec).code(), StatusCode::kOk);
  std::vector<bool> fires_a, fires_b;
  for (int i = 0; i < kHits; ++i) {
    fires_a.push_back(a.ShouldFire("p"));
    fires_b.push_back(b.ShouldFire("p"));
  }
  // Same seed, same hit sequence, same decisions — chaos runs reproduce.
  EXPECT_EQ(fires_a, fires_b);
  // And p=0.5 over 200 hits fires some but not all of the time.
  auto fired = static_cast<size_t>(
      std::count(fires_a.begin(), fires_a.end(), true));
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, static_cast<size_t>(kHits));

  // A different seed gives a different decision sequence.
  FaultInjector c;
  ASSERT_EQ(c.Configure("p:p=0.5;seed=43").code(), StatusCode::kOk);
  std::vector<bool> fires_c;
  for (int i = 0; i < kHits; ++i) fires_c.push_back(c.ShouldFire("p"));
  EXPECT_NE(fires_a, fires_c);
}

TEST(FaultInjectorTest, PrefixWildcardMatchesAndExactRuleWins) {
  FaultInjector fi;
  ASSERT_EQ(fi.Configure("graph/*:always;graph/special:n=100").code(),
            StatusCode::kOk);
  EXPECT_TRUE(fi.ShouldFire("graph/pagerank_nan"));
  EXPECT_TRUE(fi.ShouldFire("graph/rwr_nan"));
  EXPECT_FALSE(fi.ShouldFire("io/binary_read"));
  // The exact rule shadows the wildcard: n=100 does not fire on hit 1.
  EXPECT_FALSE(fi.ShouldFire("graph/special"));
}

TEST(FaultInjectorTest, StallRuleReturnsConfiguredSleep) {
  FaultInjector fi;
  ASSERT_EQ(fi.Configure("slow:always:sleep_ms=2.5").code(), StatusCode::kOk);
  EXPECT_DOUBLE_EQ(fi.ShouldStallMs("slow"), 2.5);
  EXPECT_DOUBLE_EQ(fi.ShouldStallMs("other"), 0.0);
}

TEST(FaultInjectorTest, MalformedSpecsRejectedWithoutDroppingRules) {
  FaultInjector fi;
  ASSERT_EQ(fi.Configure("a:always").code(), StatusCode::kOk);
  EXPECT_EQ(fi.Configure("a:p=nope").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fi.Configure("a:p=1.5").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fi.Configure("a:n=0").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fi.Configure("a:bogus=1").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fi.Configure("seed=abc").code(), StatusCode::kInvalidArgument);
  // The previous rule set survived every rejected Configure.
  EXPECT_TRUE(fi.armed());
  EXPECT_TRUE(fi.ShouldFire("a"));
}

TEST(FaultInjectorTest, EmptySpecDisarmsAndResetClears) {
  FaultInjector fi;
  ASSERT_EQ(fi.Configure("a:always").code(), StatusCode::kOk);
  EXPECT_TRUE(fi.ShouldFire("a"));
  ASSERT_EQ(fi.Configure("").code(), StatusCode::kOk);
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.ShouldFire("a"));

  ASSERT_EQ(fi.Configure("a:always").code(), StatusCode::kOk);
  EXPECT_TRUE(fi.ShouldFire("a"));
  fi.Reset();
  EXPECT_FALSE(fi.armed());
  EXPECT_EQ(fi.fires_total(), 0u);
  EXPECT_TRUE(fi.Stats().empty());
}

TEST(FaultInjectorTest, CompiledInMatchesBuildFlag) {
#if defined(TILESPMV_FAULTS_ENABLED)
  EXPECT_TRUE(robust::FaultInjectionCompiledIn());
#else
  EXPECT_FALSE(robust::FaultInjectionCompiledIn());
  // With injection compiled out the macros are constants: arming the global
  // injector cannot make a call site fire.
  EXPECT_FALSE(TILESPMV_FAULT_POINT("anything"));
#endif
}

// --- CancelToken. ---

TEST(CancelTokenTest, ExplicitCancelAndDeadlineBothTrip) {
  CancelToken plain;
  EXPECT_FALSE(plain.cancelled());
  plain.Cancel();
  EXPECT_TRUE(plain.cancelled());

  CancelToken expired;
  expired.SetDeadline(CancelToken::Clock::now() -
                      std::chrono::milliseconds(1));
  EXPECT_TRUE(expired.cancelled());

  CancelToken pending;
  pending.SetDeadline(CancelToken::Clock::now() +
                      std::chrono::milliseconds(20));
  EXPECT_FALSE(pending.cancelled());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(pending.cancelled());
  // The deadline latches: once tripped, always tripped.
  EXPECT_TRUE(pending.cancelled());
}

// --- BrownoutController. ---

BrownoutOptions SmallWindow() {
  BrownoutOptions o;
  o.window = 10;
  o.min_samples = 4;
  return o;
}

void Feed(BrownoutController* c, int misses, int hits) {
  for (int i = 0; i < misses; ++i) c->RecordOutcome(true);
  for (int i = 0; i < hits; ++i) c->RecordOutcome(false);
}

TEST(BrownoutControllerTest, HealthyTrafficStaysLevel0) {
  BrownoutController c{SmallWindow()};
  EXPECT_EQ(c.Level(), 0);
  Feed(&c, 0, 10);
  EXPECT_EQ(c.Level(), 0);
}

TEST(BrownoutControllerTest, MissRateClimbsTheLadder) {
  // Defaults: level1 at 20% misses, level2 at 40%, level3 at 70%.
  BrownoutController l1{SmallWindow()};
  Feed(&l1, 3, 7);
  EXPECT_EQ(l1.Level(), 1);

  BrownoutController l2{SmallWindow()};
  Feed(&l2, 5, 5);
  EXPECT_EQ(l2.Level(), 2);

  BrownoutController l3{SmallWindow()};
  Feed(&l3, 9, 1);
  EXPECT_EQ(l3.Level(), 3);
}

TEST(BrownoutControllerTest, NoVerdictBeforeMinSamples) {
  BrownoutController c{SmallWindow()};  // min_samples = 4.
  Feed(&c, 3, 0);  // 100% misses, but only 3 samples.
  EXPECT_EQ(c.Level(), 0);
  Feed(&c, 1, 0);  // Fourth sample: verdict allowed.
  EXPECT_EQ(c.Level(), 3);
}

TEST(BrownoutControllerTest, WindowSlidesPastOldMisses) {
  BrownoutController c{SmallWindow()};  // window = 10.
  Feed(&c, 10, 0);
  EXPECT_EQ(c.Level(), 3);
  // Ten clean outcomes push every miss out of the ring.
  Feed(&c, 0, 10);
  EXPECT_EQ(c.Level(), 0);
}

TEST(BrownoutControllerTest, QueuePressureBumpsOneLevel) {
  BrownoutController c{SmallWindow()};  // queue_pressure = 0.9.
  Feed(&c, 0, 10);
  EXPECT_EQ(c.Level(), 0);
  c.RecordQueueFraction(0.95);
  EXPECT_EQ(c.Level(), 1);
  c.RecordQueueFraction(0.2);
  EXPECT_EQ(c.Level(), 0);
}

TEST(BrownoutControllerTest, ForceLevelOverridesEverything) {
  BrownoutOptions o = SmallWindow();
  o.force_level = 2;
  BrownoutController c{o};
  Feed(&c, 0, 10);  // Perfectly healthy traffic.
  EXPECT_EQ(c.Level(), 2);

  BrownoutOptions off = SmallWindow();
  off.enabled = false;
  BrownoutController d{off};
  Feed(&d, 10, 0);  // Total meltdown, ladder disabled.
  EXPECT_EQ(d.Level(), 0);
}

// --- ResidualGuard and health names. ---

TEST(ResidualGuardTest, ConvergingResidualsPass) {
  ResidualGuard g;
  for (double d : {1.0, 0.5, 0.1, 0.01, 1e-6}) EXPECT_TRUE(g.Update(d));
}

TEST(ResidualGuardTest, NonFiniteResidualTrips) {
  ResidualGuard nan_guard;
  EXPECT_FALSE(nan_guard.Update(std::nan("")));
  ResidualGuard inf_guard;
  EXPECT_FALSE(inf_guard.Update(HUGE_VAL));
}

TEST(ResidualGuardTest, DivergenceTripsOnlyAboveAbsoluteFloor) {
  // 1e6x growth over the best delta, and > 1 absolute: trips.
  ResidualGuard g(1e6);
  EXPECT_TRUE(g.Update(1e-6));
  EXPECT_FALSE(g.Update(10.0));

  // The same ratio entirely below 1 absolute is pre-convergence wobble on a
  // tiny residual — never a numerical error.
  ResidualGuard tiny(1e6);
  EXPECT_TRUE(tiny.Update(1e-12));
  EXPECT_TRUE(tiny.Update(1e-4));

  // factor <= 0 disables divergence tracking but keeps the NaN check.
  ResidualGuard off(0.0);
  EXPECT_TRUE(off.Update(1e-6));
  EXPECT_TRUE(off.Update(1e12));
  EXPECT_FALSE(off.Update(std::nan("")));
}

TEST(IterativeHealthTest, NamesAreStable) {
  EXPECT_STREQ(IterativeHealthName(IterativeHealth::kHealthy), "healthy");
  EXPECT_STREQ(IterativeHealthName(IterativeHealth::kCancelled), "cancelled");
  EXPECT_STREQ(IterativeHealthName(IterativeHealth::kNumericalError),
               "numerical_error");
  EXPECT_STREQ(IterativeHealthName(IterativeHealth::kDidNotConverge),
               "did_not_converge");
}

// --- Engine-level fault injection and chaos (need -DTILESPMV_FAULTS=ON:
// the points below are compiled out of the default build). ---

#if defined(TILESPMV_FAULTS_ENABLED)

/// Arms the process-global injector for one test and guarantees it is
/// disarmed again even when assertions fail, so tests cannot leak faults
/// into each other.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    EXPECT_EQ(FaultInjector::Global().Configure(spec).code(), StatusCode::kOk)
        << spec;
  }
  ~ScopedFaults() { FaultInjector::Global().Reset(); }
};

CsrMatrix ChaosGraph() {
  return GenerateRmat(1500, 12000, RmatOptions{.seed = 151});
}

serve::QueryParams ChaosParams() {
  serve::QueryParams p;
  p.damping = 0.85f;
  p.restart = 0.9f;
  p.tolerance = 1e-5f;
  p.max_iterations = 60;
  return p;
}

TEST(FaultInjectionEngineTest, TransientPlanBuildFaultIsRetriedToSuccess) {
  ScopedFaults faults("plan_cache/build:n=1");  // First build fails, ever.
  serve::EngineOptions opts;
  opts.num_threads = 1;
  opts.plan_build_retries = 2;
  opts.plan_build_retry_base_seconds = 0.0005;
  serve::Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", ChaosGraph()).code(), StatusCode::kOk);

  serve::QueryResponse r =
      engine.Query("g", serve::QueryKind::kPageRank, ChaosParams());
  EXPECT_EQ(r.status.code(), StatusCode::kOk) << r.status.ToString();

  serve::ServerStatsSnapshot stats = engine.stats();
  EXPECT_GE(stats.plan_build_retries, 1u);
  EXPECT_GE(stats.plan_failed_builds, 1u);
  EXPECT_GE(stats.fault_fires, 1u);
}

TEST(FaultInjectionEngineTest, PersistentPlanBuildFaultReturnsTypedError) {
  ScopedFaults faults("plan_cache/build:always");
  serve::EngineOptions opts;
  opts.num_threads = 1;
  opts.plan_build_retries = 1;
  opts.plan_build_retry_base_seconds = 0.0002;
  serve::Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", ChaosGraph()).code(), StatusCode::kOk);

  serve::QueryResponse r =
      engine.Query("g", serve::QueryKind::kPageRank, ChaosParams());
  EXPECT_EQ(r.status.code(), StatusCode::kInternal) << r.status.ToString();
  // Initial attempt + one retry, both injected to fail.
  EXPECT_GE(engine.stats().plan_failed_builds, 2u);
}

TEST(FaultInjectionEngineTest, InjectedNanIsNeverReportedOk) {
  ScopedFaults faults("graph/pagerank_nan:always");
  serve::EngineOptions opts;
  opts.num_threads = 1;
  serve::Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", ChaosGraph()).code(), StatusCode::kOk);

  serve::QueryResponse r =
      engine.Query("g", serve::QueryKind::kPageRank, ChaosParams());
  EXPECT_EQ(r.status.code(), StatusCode::kNumericalError)
      << r.status.ToString();
  EXPECT_GE(engine.stats().numerical_errors, 1u);

  std::vector<obs::QueryRecord> records = engine.journal().Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].code, StatusCode::kNumericalError);
}

TEST(FaultInjectionEngineTest, InjectedNanInRwrBatchFailsEveryRider) {
  ScopedFaults faults("graph/rwr_nan:always");
  serve::EngineOptions opts;
  opts.num_threads = 1;
  opts.batch_window_seconds = 0.1;
  opts.max_batch = 8;
  serve::Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", ChaosGraph()).code(), StatusCode::kOk);

  std::vector<std::future<serve::QueryResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    serve::QueryParams p = ChaosParams();
    p.node = i;
    futures.push_back(engine.Submit("g", serve::QueryKind::kRwr, p));
  }
  for (auto& f : futures) {
    serve::QueryResponse r = f.get();
    EXPECT_EQ(r.status.code(), StatusCode::kNumericalError)
        << r.status.ToString();
  }
}

// The chaos drill: probabilistic faults and stalls across every layer, short
// deadlines, mixed workloads, 1/4/8 workers. The engine's contract under
// fire is exactly this: every future completes with a typed status from the
// documented set, OK responses are numerically clean, and the process
// neither hangs nor crashes. CI runs this under AddressSanitizer with
// injection compiled in.
class ChaosTest : public testing::TestWithParam<int> {};

TEST_P(ChaosTest, EveryFutureCompletesWithTypedStatus) {
  const int workers = GetParam();
  ScopedFaults faults(
      "plan_cache/build:p=0.3;"
      "serve/admit_alloc:p=0.05;"
      "graph/pagerank_nan:p=0.1;"
      "graph/hits_nan:p=0.1;"
      "graph/rwr_nan:p=0.1;"
      "serve/execute_slow:p=0.3:sleep_ms=2;"
      "graph/iteration_slow:p=0.01:sleep_ms=0.5;"
      "seed=7");
  serve::EngineOptions opts;
  opts.num_threads = workers;
  opts.batch_window_seconds = 0.001;
  opts.plan_build_retries = 1;
  opts.plan_build_retry_base_seconds = 0.0002;
  serve::Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", ChaosGraph()).code(), StatusCode::kOk);

  const std::set<StatusCode> kAllowed = {
      StatusCode::kOk,           StatusCode::kUnavailable,
      StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
      StatusCode::kNumericalError,    StatusCode::kDidNotConverge,
      StatusCode::kInternal,
  };

  constexpr int kClients = 4;
  constexpr int kRounds = 6;
  std::vector<std::future<serve::QueryResponse>> futures(
      kClients * kRounds * 3);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        const int base = (c * kRounds + round) * 3;
        serve::QueryParams pr = ChaosParams();
        pr.damping = 0.5f + 0.01f * static_cast<float>(c * kRounds + round);
        if (round % 2 == 0) pr.deadline_seconds = 0.02;
        futures[base] = engine.Submit("g", serve::QueryKind::kPageRank, pr);

        serve::QueryParams hits = ChaosParams();
        hits.tolerance = 1e-4f + 1e-6f * static_cast<float>(c);
        futures[base + 1] =
            engine.Submit("g", serve::QueryKind::kHits, hits);

        serve::QueryParams rwr = ChaosParams();
        rwr.node = (c * kRounds + round) * 7 % 1500;
        rwr.max_tolerance = (round % 3 == 0) ? 1e-3f : 0.0f;
        futures[base + 2] = engine.Submit("g", serve::QueryKind::kRwr, rwr);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  int ok = 0, faulted = 0;
  for (auto& f : futures) {
    serve::QueryResponse r = f.get();  // A hang here is a test failure.
    const StatusCode code = r.status.code();
    EXPECT_TRUE(kAllowed.count(code) > 0)
        << "untyped or unexpected status: " << r.status.ToString();
    if (code == StatusCode::kOk) {
      ++ok;
      // The acceptance bar: an injected NaN must surface as
      // kNumericalError, never inside an OK response.
      const std::vector<float>& scores =
          r.kind == serve::QueryKind::kHits ? r.authority : r.scores;
      EXPECT_FALSE(scores.empty());
      for (float v : scores) {
        ASSERT_TRUE(std::isfinite(v)) << "non-finite score in OK response";
      }
    } else {
      ++faulted;
      EXPECT_FALSE(r.status.message().empty());
    }
  }
  EXPECT_EQ(ok + faulted, kClients * kRounds * 3);

  // With these probabilities over 72 requests, faults fired essentially
  // surely; the counters must have seen them.
  serve::ServerStatsSnapshot stats = engine.stats();
  EXPECT_GT(stats.fault_fires, 0u);
  engine.Shutdown();  // Must drain cleanly with faults still armed.
}

INSTANTIATE_TEST_SUITE_P(Workers, ChaosTest, testing::Values(1, 4, 8));

#else  // !TILESPMV_FAULTS_ENABLED

TEST(FaultInjectionEngineTest, RequiresFaultBuild) {
  GTEST_SKIP() << "fault-injection points compiled out; configure with "
                  "-DTILESPMV_FAULTS=ON to run the injection and chaos tests";
}

#endif  // TILESPMV_FAULTS_ENABLED

}  // namespace
}  // namespace tilespmv
